/**
 * @file
 * Workload-definition and application-runner tests: Table VI values,
 * the five app topologies of Section VII-A, and the qualitative
 * relationships Fig. 10 depends on.
 */

#include <gtest/gtest.h>

#include "stack/app_runner.h"
#include "stack/workloads.h"

namespace pimsim {
namespace {

// ---------- Table VI ----------

TEST(Workloads, Table6Exact)
{
    const auto micros = table6Microbenchmarks();
    ASSERT_EQ(micros.size(), 8u);
    EXPECT_EQ(micros[0].name, "GEMV1");
    EXPECT_EQ(micros[0].m, 1024u);
    EXPECT_EQ(micros[0].n, 4096u);
    EXPECT_EQ(micros[3].m, 8192u);
    EXPECT_EQ(micros[3].n, 8192u);
    EXPECT_EQ(micros[4].name, "ADD1");
    EXPECT_EQ(micros[4].elements, 2u << 20);
    EXPECT_EQ(micros[7].elements, 16u << 20);
}

TEST(Workloads, Ds2Topology)
{
    // Section VII-A: 2 convolution layers, 6 bidirectional LSTM layers,
    // one fully connected layer.
    const AppSpec app = ds2App();
    unsigned convs = 0, lstms = 0, fcs = 0;
    for (const auto &l : app.layers) {
        convs += l.kind == LayerSpec::Kind::Conv;
        lstms += l.kind == LayerSpec::Kind::Lstm;
        fcs += l.kind == LayerSpec::Kind::Fc;
    }
    EXPECT_EQ(convs, 2u);
    EXPECT_EQ(lstms, 12u); // 6 bidirectional = 12 directions
    EXPECT_EQ(fcs, 1u);
    for (const auto &l : app.layers) {
        if (l.kind == LayerSpec::Kind::Lstm)
            EXPECT_TRUE(l.inputsAvailable); // encoder-style
    }
}

TEST(Workloads, GnmtHasDecoderStyleLayers)
{
    const AppSpec app = gnmtApp();
    unsigned enc = 0, dec = 0;
    for (const auto &l : app.layers) {
        if (l.kind == LayerSpec::Kind::Lstm) {
            if (l.inputsAvailable)
                ++enc;
            else
                ++dec;
        }
    }
    EXPECT_EQ(enc, 8u);
    EXPECT_EQ(dec, 8u);
}

TEST(Workloads, ResnetIsNotPimEligible)
{
    // Fig. 10: ResNet runs unmodified (PIM does not hurt compute-bound
    // applications); only the tiny FC is eligible.
    const AppSpec app = resnet50App();
    for (const auto &l : app.layers) {
        if (l.kind != LayerSpec::Kind::Fc)
            EXPECT_FALSE(l.pimEligible);
    }
}

TEST(Workloads, FiveApps)
{
    const auto apps = allApps();
    ASSERT_EQ(apps.size(), 5u);
    EXPECT_EQ(apps[0].name, "DS2");
    EXPECT_EQ(apps[4].name, "ResNet");
}

// ---------- runner, small configs for speed ----------

struct Runners
{
    Runners()
        : hbm_sys(SystemConfig::hbmSystem()),
          pim_sys(smallPim()),
          hbm_host(hbm_sys), pim_host(pim_sys), blas(pim_sys),
          hbm(hbm_host, nullptr), pim(pim_host, &blas)
    {
    }

    static SystemConfig smallPim()
    {
        SystemConfig c = SystemConfig::pimHbmSystem();
        return c;
    }

    PimSystem hbm_sys;
    PimSystem pim_sys;
    HostModel hbm_host;
    HostModel pim_host;
    PimBlas blas;
    AppRunner hbm;
    AppRunner pim;
};

TEST(AppRunner, MicroGemvPimBeatsHostAtBatch1)
{
    Runners r;
    const MicroSpec gemv{"GEMV1", MicroKind::Gemv, 1024, 4096, 0};
    const auto host = r.hbm.runMicro(gemv, 1);
    const auto pim = r.pim.runMicro(gemv, 1);
    EXPECT_GT(host.ns / pim.ns, 5.0);
    EXPECT_LT(host.ns / pim.ns, 20.0);
}

TEST(AppRunner, GemvSpeedupFallsWithBatch)
{
    Runners r;
    const MicroSpec gemv{"GEMV2", MicroKind::Gemv, 2048, 4096, 0};
    double prev = 1e18;
    for (unsigned b : {1u, 2u, 4u}) {
        const double ratio = r.hbm.runMicro(gemv, b).ns /
                             r.pim.runMicro(gemv, b).ns;
        EXPECT_LT(ratio, prev);
        prev = ratio;
    }
    // Level-3 BLAS territory: the host wins by batch 4 (Fig. 10).
    EXPECT_LT(prev, 1.0);
}

TEST(AppRunner, AddSpeedupNearPaperBand)
{
    Runners r;
    const MicroSpec add{"ADD3", MicroKind::Add, 0, 0, 8u << 20};
    const double ratio =
        r.hbm.runMicro(add, 1).ns / r.pim.runMicro(add, 1).ns;
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 2.3); // paper: ~1.6x
}

TEST(AppRunner, PimRunsAccumulateDeviceActivity)
{
    Runners r;
    const MicroSpec gemv{"GEMV1", MicroKind::Gemv, 1024, 4096, 0};
    const auto run = r.pim.runMicro(gemv, 1);
    EXPECT_GT(run.pimTriggers, 0u);
    EXPECT_GT(run.pimOps, 0u);
    EXPECT_GT(run.pimBankAccesses, 0u);
    // Each trigger executes one instruction on each of the 8 units.
    EXPECT_NEAR(static_cast<double>(run.pimOps),
                static_cast<double>(run.pimTriggers) * 8.0,
                static_cast<double>(run.pimOps) * 0.1);
}

TEST(AppRunner, ShapeMemoisationIsConsistent)
{
    Runners r;
    const MicroSpec gemv{"GEMV1", MicroKind::Gemv, 1024, 4096, 0};
    const auto first = r.pim.runMicro(gemv, 1);
    const auto second = r.pim.runMicro(gemv, 1);
    EXPECT_DOUBLE_EQ(first.ns, second.ns);
}

TEST(AppRunner, ResnetParityAndDs2Gain)
{
    Runners r;
    const AppSpec resnet = resnet50App();
    const double resnet_ratio =
        r.hbm.runApp(resnet, 1).ns / r.pim.runApp(resnet, 1).ns;
    EXPECT_NEAR(resnet_ratio, 1.0, 0.1);

    const AppSpec ds2 = ds2App();
    const double ds2_ratio =
        r.hbm.runApp(ds2, 1).ns / r.pim.runApp(ds2, 1).ns;
    EXPECT_GT(ds2_ratio, 3.0);
    EXPECT_LT(ds2_ratio, 7.0);
    EXPECT_GT(ds2_ratio, resnet_ratio);
}

TEST(AppRunner, GnmtGainsLessThanDs2)
{
    // Section VII-B: decoder kernel-call overhead limits GNMT.
    Runners r;
    const double ds2 =
        r.hbm.runApp(ds2App(), 1).ns / r.pim.runApp(ds2App(), 1).ns;
    const double gnmt =
        r.hbm.runApp(gnmtApp(), 1).ns / r.pim.runApp(gnmtApp(), 1).ns;
    EXPECT_LT(gnmt, ds2 * 0.6);
    EXPECT_GT(gnmt, 1.0);
}

TEST(AppRunner, LaunchOverheadDominatesGnmtDecoder)
{
    Runners r;
    const auto run = r.pim.runApp(gnmtApp(), 1);
    EXPECT_GT(run.launchNs, 0.3 * run.ns);
}

} // namespace
} // namespace pimsim
