/**
 * @file
 * Tests for the PIM program builder/runner and the device driver:
 * fence semantics, replicated execution, row allocation, preload.
 */

#include <gtest/gtest.h>

#include "stack/driver.h"
#include "stack/pim_program.h"

namespace pimsim {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1;
    c.geometry.rowsPerBank = 256;
    return c;
}

TEST(ProgramBuilder, BuildsOrderedSteps)
{
    ChannelProgram prog;
    ProgramBuilder b(prog);
    b.activate(5);
    b.read(5, 3);
    b.write(5, 4, Burst{});
    b.fence();
    b.precharge();
    b.prechargeAll();

    ASSERT_EQ(prog.size(), 5u);
    EXPECT_EQ(prog[0].request.type, RequestType::Activate);
    EXPECT_EQ(prog[1].request.type, RequestType::Read);
    EXPECT_EQ(prog[1].request.coord.col, 3u);
    EXPECT_EQ(prog[2].request.type, RequestType::Write);
    EXPECT_TRUE(prog[2].fenceAfter);
    EXPECT_EQ(prog[3].request.type, RequestType::Precharge);
    EXPECT_EQ(prog[4].request.type, RequestType::PrechargeAll);
    // Ids are sequential and all steps are ordered.
    for (std::size_t i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(prog[i].request.id, i);
        EXPECT_TRUE(prog[i].request.ordered);
    }
}

TEST(ProgramRunner, ExecutesAndTimes)
{
    PimSystem sys(tinyConfig());
    ChannelProgram prog;
    ProgramBuilder b(prog);
    Burst data{};
    data.fill(0x42);
    b.write(7, 2, data);
    b.fence();
    b.read(7, 2);
    b.prechargeAll();

    const PimRunResult r =
        runPimProgramReplicated(sys, prog, sys.numChannels(), true);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.commands,
              static_cast<std::uint64_t>(prog.size()) * sys.numChannels());
    EXPECT_EQ(r.fences, sys.numChannels());
    ASSERT_EQ(r.reads.size(), sys.numChannels());
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        ASSERT_EQ(r.reads[ch].size(), 1u);
        EXPECT_EQ(r.reads[ch][0].data, data);
    }
}

TEST(ProgramRunner, FenceSerialisesAgainstCompletion)
{
    // Time with a fence must exceed time without one.
    auto run_with = [&](bool fence) {
        PimSystem sys(tinyConfig());
        ChannelProgram prog;
        ProgramBuilder b(prog);
        for (unsigned i = 0; i < 64; ++i) {
            b.read(3, i % 32);
            if (fence)
                b.fence();
        }
        return runPimProgramReplicated(sys, prog, 1).cycles;
    };
    EXPECT_GT(run_with(true), run_with(false) + 64);
}

TEST(ProgramRunner, ChannelsRunConcurrently)
{
    // 16 channels running the same program take (nearly) the time of 1.
    auto run_on = [&](unsigned channels) {
        PimSystem sys(tinyConfig());
        ChannelProgram prog;
        ProgramBuilder b(prog);
        for (unsigned i = 0; i < 128; ++i)
            b.read(3, i % 32);
        b.prechargeAll();
        return runPimProgramReplicated(sys, prog, channels).cycles;
    };
    const Cycle one = run_on(1);
    const Cycle sixteen = run_on(16);
    EXPECT_LT(sixteen, one * 2);
}

TEST(ProgramRunner, EmptyProgramIsInstant)
{
    PimSystem sys(tinyConfig());
    ChannelProgram prog;
    const PimRunResult r = runPimProgramReplicated(sys, prog, 4);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.commands, 0u);
}

// ---------- driver ----------

TEST(PimDriver, AllocatesDisjointRowBlocks)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    PimRowBlock a, c;
    ASSERT_EQ(driver.allocRows(10, a), PimStatus::Ok);
    ASSERT_EQ(driver.allocRows(5, c), PimStatus::Ok);
    EXPECT_EQ(a.numRows, 10u);
    EXPECT_GE(c.firstRow, a.firstRow + a.numRows);
}

TEST(PimDriver, StaysBelowPimConfRows)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    const auto conf = PimConfMap::forRows(256);
    const unsigned total = driver.freeRows();
    PimRowBlock block;
    ASSERT_EQ(driver.allocRows(total, block), PimStatus::Ok);
    EXPECT_LE(block.firstRow + block.numRows, conf.firstReservedRow());
    EXPECT_EQ(driver.freeRows(), 0u);
}

TEST(PimDriver, ResetReclaims)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    const unsigned before = driver.freeRows();
    PimRowBlock block;
    ASSERT_EQ(driver.allocRows(20, block), PimStatus::Ok);
    driver.reset();
    EXPECT_EQ(driver.freeRows(), before);
}

TEST(PimDriver, PreloadPeekRoundTrip)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    Burst data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    driver.preload(3, 7, 42, 11, data);
    EXPECT_EQ(driver.peek(3, 7, 42, 11), data);
    // Other locations stay zero.
    EXPECT_EQ(driver.peek(3, 7, 42, 12), Burst{});
    EXPECT_EQ(driver.peek(4, 7, 42, 11), Burst{});
}

} // namespace
} // namespace pimsim
