/**
 * @file
 * SloMonitor / MetricsTimeseries tests: window binning, burn-rate
 * arithmetic, multi-window fire/resolve transitions, trace emission,
 * and windowed counter-rate / percentile series.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/slo.h"
#include "common/stats.h"
#include "common/trace.h"

namespace pimsim {
namespace {

SloMonitorConfig
oneRuleConfig(double window_ns, double threshold, unsigned long_w,
              unsigned short_w)
{
    SloMonitorConfig c;
    c.target = 0.99;
    c.windowNs = window_ns;
    c.rules.push_back(SloAlertRule{"page", threshold, long_w, short_w});
    return c;
}

// ------------------------------------------------------------------
// SloMonitor
// ------------------------------------------------------------------

TEST(SloMonitor, BinsObservationsByTheirOwnTimestamps)
{
    SloMonitor slo(oneRuleConfig(100.0, 10.0, 1, 1));
    // Deliberately unsorted: observations carry their own time, so one
    // post-run feed() must bin identically to an incremental one.
    std::vector<SloObservation> obs = {
        {250.0, false}, {50.0, true}, {150.0, false}, {60.0, true}};
    slo.feed(obs);
    slo.finish(300.0);

    EXPECT_EQ(slo.totalGood(), 2u);
    EXPECT_EQ(slo.totalBad(), 2u);
    EXPECT_EQ(slo.numWindows(), 4u); // finish(300) touches window 3
    // Window 0 is clean, windows 1 and 2 are all-bad.
    EXPECT_DOUBLE_EQ(slo.burnRate(0, 1), 0.0);
    EXPECT_NEAR(slo.burnRate(1, 1), 100.0, 1e-9);
    EXPECT_NEAR(slo.burnRate(2, 1), 100.0, 1e-9);
}

TEST(SloMonitor, BurnRateIsBadFractionOverErrorBudget)
{
    SloMonitor slo(oneRuleConfig(100.0, 10.0, 2, 1));
    // Window 0: 90 good, 10 bad -> badFrac 0.1 -> burn 10 at target .99.
    for (int i = 0; i < 90; ++i)
        slo.observe(10.0, true);
    for (int i = 0; i < 10; ++i)
        slo.observe(20.0, false);
    // Window 1: 100 good -> the 2-window burn halves.
    for (int i = 0; i < 100; ++i)
        slo.observe(110.0, true);
    slo.finish(200.0);

    EXPECT_NEAR(slo.burnRate(0, 1), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(slo.burnRate(1, 1), 0.0);
    EXPECT_NEAR(slo.burnRate(1, 2), 5.0, 1e-9);
    EXPECT_DOUBLE_EQ(slo.burnRate(5, 1), 0.0); // empty trailing window
}

TEST(SloMonitor, FiresDuringTheBurstAndResolvesAfter)
{
    // long=2 short=1: needs two consecutive hot windows to fire, one
    // cool window (plus the long tail draining) to resolve.
    SloMonitor slo(oneRuleConfig(100.0, 10.0, 2, 1));
    const auto fill = [&slo](int window, int good, int bad) {
        const double ts = window * 100.0 + 50.0;
        for (int i = 0; i < good; ++i)
            slo.observe(ts, true);
        for (int i = 0; i < bad; ++i)
            slo.observe(ts, false);
    };
    for (int w = 0; w < 4; ++w)
        fill(w, 100, 0); // steady state
    for (int w = 4; w < 8; ++w)
        fill(w, 50, 50); // burst: burn 50 >> threshold 10
    for (int w = 8; w < 12; ++w)
        fill(w, 100, 0); // recovered
    slo.finish(1200.0);

    ASSERT_EQ(slo.transitions().size(), 2u);
    const auto &fire = slo.transitions()[0];
    const auto &resolve = slo.transitions()[1];
    EXPECT_TRUE(fire.firing);
    // At window 4 the 2-window long burn is (0+50%)/2 budget-relative
    // = 25 >= 10 and the short burn is 50 >= 10: fires immediately.
    EXPECT_DOUBLE_EQ(fire.tsNs, 500.0); // end of window 4
    EXPECT_FALSE(resolve.firing);
    // At window 8 the long burn still sees hot window 7, but the
    // 1-window short burn drops to 0: the alert resolves fast.
    EXPECT_DOUBLE_EQ(resolve.tsNs, 900.0);

    EXPECT_TRUE(slo.firingBetween(400.0, 800.0));
    EXPECT_TRUE(slo.firingBetween("page", 600.0, 700.0));
    EXPECT_FALSE(slo.firingBetween(0.0, 400.0));    // steady state
    EXPECT_FALSE(slo.firingBetween(1000.0, 1200.0)); // recovered
    EXPECT_FALSE(slo.firingBetween("ticket", 0.0, 1200.0)); // no rule
}

TEST(SloMonitor, FinishIsIdempotentAndStillFiringClosesAtHorizon)
{
    SloMonitor slo(oneRuleConfig(100.0, 10.0, 1, 1));
    for (int i = 0; i < 10; ++i)
        slo.observe(150.0, false); // bad from window 1 on, never ends
    for (int i = 0; i < 10; ++i)
        slo.observe(250.0, false);
    slo.finish(299.0);
    const auto first = slo.transitions().size();
    slo.finish(299.0); // idempotent: re-evaluates from scratch
    EXPECT_EQ(slo.transitions().size(), first);
    ASSERT_EQ(first, 1u);
    EXPECT_TRUE(slo.transitions()[0].firing);
    EXPECT_DOUBLE_EQ(slo.transitions()[0].tsNs, 200.0);
    // Still firing at finish(): the interval closes at the horizon.
    EXPECT_TRUE(slo.firingBetween(250.0, 299.0));
    EXPECT_FALSE(slo.firingBetween(0.0, 200.0));
}

TEST(SloMonitor, DefaultRulesAreThePageTicketPair)
{
    SloMonitorConfig c;
    c.windowNs = 100.0;
    SloMonitor slo(c);
    ASSERT_EQ(slo.config().rules.size(), 2u);
    EXPECT_EQ(slo.config().rules[0].name, "page");
    EXPECT_EQ(slo.config().rules[1].name, "ticket");
}

TEST(SloMonitor, EmitsTraceInstantsAndValidJson)
{
    SloMonitor slo(oneRuleConfig(100.0, 10.0, 1, 1));
    for (int i = 0; i < 5; ++i)
        slo.observe(150.0, false);
    for (int i = 0; i < 5; ++i)
        slo.observe(250.0, true);
    slo.finish(300.0);

    TraceSession trace;
    slo.emitTrace(trace);
    int fires = 0, resolves = 0;
    for (const auto &e : trace.events()) {
        if (e.phase != TraceEvent::Phase::Instant)
            continue;
        EXPECT_EQ(e.pid, kTracePidSlo);
        if (e.name == "page-fire")
            ++fires;
        if (e.name == "page-resolve")
            ++resolves;
    }
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(resolves, 1);

    std::ostringstream os;
    JsonWriter w(os);
    slo.writeJson(w);
    std::string error;
    ASSERT_TRUE(validateJson(os.str(), &error)) << error << "\n" << os.str();
    EXPECT_NE(os.str().find("\"fired\""), std::string::npos);
    EXPECT_NE(os.str().find("\"transitions\""), std::string::npos);
}

// ------------------------------------------------------------------
// MetricsTimeseries
// ------------------------------------------------------------------

TEST(MetricsTimeseries, ReportsPerWindowCounterRates)
{
    StatGroup g("g");
    MetricsTimeseries ts(1e9); // 1s windows: rate == delta
    ts.trackCounter("ops", &g, "ops");

    g.add("ops", 100);
    ts.advanceTo(1e9); // closes window 0
    g.add("ops", 300);
    ts.advanceTo(2e9); // closes window 1
    ts.finish(2.5e9);  // partial half-second window: rate doubles

    const auto &rates = ts.counterRates("ops");
    ASSERT_EQ(rates.size(), 3u);
    EXPECT_DOUBLE_EQ(rates[0], 100.0);
    EXPECT_DOUBLE_EQ(rates[1], 300.0);
    EXPECT_DOUBLE_EQ(rates[2], 0.0);
    EXPECT_EQ(ts.numWindows(), 3u);
    EXPECT_TRUE(ts.counterRates("absent").empty());
}

TEST(MetricsTimeseries, WindowPercentilesTrackOnlyThatWindowsSamples)
{
    Histogram h(10, 64);
    MetricsTimeseries ts(100.0);
    ts.trackHistogram("lat", &h);

    for (int i = 0; i < 100; ++i)
        h.sample(15); // window 0: everything in the 10-20 bucket
    ts.advanceTo(100.0);
    for (int i = 0; i < 100; ++i)
        h.sample(255); // window 1: 25x slower
    ts.advanceTo(200.0);
    ts.finish(200.0);

    const auto p50 = ts.histogramPercentiles("lat", 0.50);
    ASSERT_EQ(p50.size(), 2u);
    EXPECT_GE(p50[0], 10.0);
    EXPECT_LE(p50[0], 20.0);
    // The cumulative histogram would smear this to ~20; the delta view
    // must place window 1's median in the 250-260 bucket.
    EXPECT_GE(p50[1], 250.0);
    EXPECT_LE(p50[1], 260.0);
    EXPECT_TRUE(ts.histogramPercentiles("absent", 0.5).empty());
}

TEST(MetricsTimeseries, EmitsValidJsonWithAllSeries)
{
    StatGroup g("g");
    Histogram h(10, 16);
    MetricsTimeseries ts(100.0);
    ts.trackCounter("ops", &g, "ops");
    ts.trackHistogram("lat", &h);

    g.add("ops", 5);
    h.sample(42);
    ts.advanceTo(100.0);
    ts.finish(150.0);

    std::ostringstream os;
    JsonWriter w(os);
    ts.writeJson(w);
    std::string error;
    ASSERT_TRUE(validateJson(os.str(), &error)) << error << "\n" << os.str();
    for (const char *key :
         {"\"window_ns\"", "\"counters\"", "\"ops\"", "\"histograms\"",
          "\"lat\"", "\"count\"", "\"p50\"", "\"p95\"", "\"p99\""})
        EXPECT_NE(os.str().find(key), std::string::npos) << key;
}

} // namespace
} // namespace pimsim
