/**
 * @file
 * Host-baseline model tests: stream bandwidth sanity, the GEMV issue
 * model's scaling behaviour, batch amortisation, and LLC miss-rate
 * trends (the Fig. 10 series).
 */

#include <gtest/gtest.h>

#include "host/host_model.h"

namespace pimsim {
namespace {

SystemConfig
hbm()
{
    return SystemConfig::hbmSystem();
}

TEST(HostStream, AchievesMostOfPeakOnReads)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const std::uint64_t bytes = 32ull << 20;
    const double ns = host.simulateStreamNs(bytes, 0.0);
    const double gbs = bytes / ns;
    EXPECT_GT(gbs, 0.75 * sys.config().offChipBandwidthGBs());
    EXPECT_LT(gbs, sys.config().offChipBandwidthGBs());
}

TEST(HostStream, WritesCostTurnarounds)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const std::uint64_t bytes = 16ull << 20;
    const double reads = host.simulateStreamNs(bytes, 0.0);
    const double mixed = host.simulateStreamNs(bytes + 1, 0.33);
    EXPECT_GT(mixed, reads);
    EXPECT_LT(mixed, reads * 1.6);
}

TEST(HostStream, ScalesWithBytes)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const double small = host.simulateStreamNs(4ull << 20, 0.0);
    const double large = host.simulateStreamNs(16ull << 20, 0.0);
    EXPECT_GT(large, small * 3.0);
    EXPECT_LT(large, small * 5.0);
}

TEST(HostStream, Memoised)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const double a = host.simulateStreamNs(8ull << 20, 0.0);
    const double b = host.simulateStreamNs(8ull << 20, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(HostGemv, SmallMCannotFillTheMachine)
{
    // 1024 rows occupy only 16 of 60 CUs; doubling M at fixed total
    // loads-per-row keeps time flat (more CUs absorb the extra work).
    PimSystem sys(hbm());
    HostModel host(sys);
    const auto small = host.gemv(1024, 4096, 1);
    const auto dbl = host.gemv(2048, 4096, 1);
    EXPECT_NEAR(dbl.ns, small.ns, small.ns * 0.05);
}

TEST(HostGemv, IssueBoundAtBatchOne)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const auto r = host.gemv(4096, 8192, 1);
    EXPECT_GT(r.issueNs, r.dramNs);
    EXPECT_GT(r.issueNs, r.computeNs);
}

TEST(HostGemv, BatchingAmortises)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const auto b1 = host.gemv(8192, 8192, 1);
    const auto b2 = host.gemv(8192, 8192, 2);
    const auto b4 = host.gemv(8192, 8192, 4);
    EXPECT_LT(b2.ns, b1.ns);
    EXPECT_LT(b4.ns, b2.ns);
    // Sub-linear amortisation: batch 4 is not 4x faster.
    EXPECT_GT(b4.ns, b1.ns / 4.0);
}

TEST(HostGemv, LlcMissRateFollowsFig10)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const double m1 = host.gemv(2048, 4096, 1).llcMissRate;
    const double m2 = host.gemv(2048, 4096, 2).llcMissRate;
    const double m4 = host.gemv(2048, 4096, 4).llcMissRate;
    EXPECT_GT(m1, 0.95);       // ~100% at batch 1
    EXPECT_LT(m2, m1);
    EXPECT_LT(m4, m2);
    EXPECT_GT(m4, 0.65);       // 70-80% at batch 4
    EXPECT_LT(m4, 0.85);
}

TEST(HostElementwise, StreamsAtFullMissRate)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const auto r = host.elementwise(8ull << 20, 4ull << 20);
    EXPECT_DOUBLE_EQ(r.llcMissRate, 1.0);
    EXPECT_GT(r.ns, 0.0);
}

TEST(HostCompute, LinearInFlops)
{
    PimSystem sys(hbm());
    HostModel host(sys);
    const auto one = host.computeBound(1e9);
    const auto two = host.computeBound(2e9);
    const double launch = sys.config().host.kernelLaunchNs;
    EXPECT_NEAR(two.ns - launch, 2.0 * (one.ns - launch),
                (one.ns - launch) * 0.01);
}

TEST(HostBandwidth, X4SystemStreamsFaster)
{
    PimSystem base(hbm());
    HostModel host_base(base);
    PimSystem x4(SystemConfig::hbmX4System());
    HostModel host_x4(x4);
    const std::uint64_t bytes = 64ull << 20;
    const double t_base = host_base.simulateStreamNs(bytes, 0.0);
    const double t_x4 = host_x4.simulateStreamNs(bytes, 0.0);
    EXPECT_LT(t_x4, t_base / 3.0);
}

} // namespace
} // namespace pimsim
