/**
 * @file
 * Parallel-epoch determinism: the multi-threaded simulation engine must
 * be bit-identical to the single-threaded one — same stats registry
 * dump, same trace, same error log — for any thread count and any mix
 * of step()/advance()/runUntilIdle() epochs, with scrubbing and ECC
 * faults in flight. These tests are the in-tree version of the CI TSan
 * stress job (see .github/workflows/ci.yml and DESIGN.md §14).
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/trace.h"
#include "host/host_model.h"
#include "reliability/fault_injector.h"
#include "sim/system.h"
#include "stack/blas.h"

namespace pimsim {
namespace {

/** Everything a run produces, stringified for exact comparison. */
struct Digest
{
    Cycle finalCycle = 0;
    std::uint64_t corrected = 0;
    std::uint64_t uncorrectable = 0;
    std::size_t errorEvents = 0;
    std::string statsJson;
    std::string trace;

    bool operator==(const Digest &o) const = default;
};

/**
 * A deterministic mixed workload: random reads and writes across every
 * channel, driven through random interleavings of step(), bounded
 * advance() and runUntilIdle() epochs, with scrubbing enabled and a
 * fault campaign corrupting the arrays mid-run. The driving sequence
 * depends only on `seed`, never on the thread count.
 */
Digest
runWorkload(unsigned threads, std::uint64_t seed)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1; // 16 channels: plenty of parallelism, fast test
    cfg.geometry.onDieEcc = true;
    cfg.controller.scrubEnabled = true;
    cfg.controller.scrubInterval = 700;
    cfg.controller.scrubBurstsPerStep = 8;

    PimSystem sys(cfg);
    sys.setThreads(threads);
    TraceSession trace;
    sys.setTraceSession(&trace);

    // Touch rows through the real BLAS path so demand reads and the
    // fault campaign have allocated rows to land on.
    PimBlas blas(sys);
    blas.setTrace(&trace);
    Fp16Vector warm(1024, Fp16(1.0f)), out;
    blas.relu(warm, out);

    FaultRates rates;
    rates.dramTransient = 2.0;
    rates.dramStuck = 0.5;
    FaultInjector injector(sys, rates, seed ^ 0x7a11);
    injector.runCampaign(/*interval=*/500, /*steps=*/4);

    Rng rng(seed);
    std::uint64_t next_id = 1;
    for (unsigned wave = 0; wave < 24; ++wave) {
        const unsigned burst = 8 + static_cast<unsigned>(rng.nextBelow(24));
        for (unsigned i = 0; i < burst; ++i) {
            MemRequest r;
            r.type = rng.nextBelow(3) ? RequestType::Read
                                      : RequestType::Write;
            r.coord.bankGroup = static_cast<unsigned>(rng.nextBelow(
                cfg.geometry.bankGroupsPerPch));
            r.coord.row = static_cast<unsigned>(rng.nextBelow(64));
            r.coord.col = static_cast<unsigned>(
                rng.nextBelow(cfg.geometry.colsPerRow));
            r.id = next_id++;
            const unsigned ch = static_cast<unsigned>(
                rng.nextBelow(sys.numChannels()));
            (void)sys.tryEnqueue(ch, r);
        }
        switch (rng.nextBelow(3)) {
          case 0:
            for (unsigned s = 0; s < 4 && sys.step(); ++s) {
            }
            break;
          case 1:
            sys.advance(50 + rng.nextBelow(900));
            break;
          default:
            sys.runUntilIdle();
            break;
        }
    }
    sys.runUntilIdle();
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch)
        (void)sys.drain(ch);

    Digest d;
    d.finalCycle = sys.now();
    d.corrected = sys.errorLog().corrected();
    d.uncorrectable = sys.errorLog().uncorrectable();
    d.errorEvents = sys.errorLog().recent().size();
    std::ostringstream stats;
    sys.dumpStatsJson(stats);
    d.statsJson = stats.str();
    std::ostringstream tr;
    trace.write(tr);
    d.trace = tr.str();
    return d;
}

TEST(ParallelEpochs, BitIdenticalAcrossThreadCounts)
{
    const Digest one = runWorkload(1, 0xcafe);
    EXPECT_GT(one.finalCycle, 0u);
    EXPECT_GT(one.errorEvents, 0u) // the campaign must actually bite
        << "fault campaign produced no ECC events; the determinism "
           "check would be vacuous";
    for (unsigned threads : {2u, 4u, 8u}) {
        const Digest n = runWorkload(threads, 0xcafe);
        EXPECT_EQ(one.finalCycle, n.finalCycle) << threads;
        EXPECT_EQ(one.corrected, n.corrected) << threads;
        EXPECT_EQ(one.uncorrectable, n.uncorrectable) << threads;
        EXPECT_EQ(one.errorEvents, n.errorEvents) << threads;
        EXPECT_EQ(one.statsJson, n.statsJson) << threads;
        EXPECT_EQ(one.trace, n.trace) << threads;
    }
}

TEST(ParallelEpochs, DistinctSeedsStayDeterministicPerSeed)
{
    // Two different seeds must differ (the workload is not degenerate)
    // while each seed reproduces itself at any thread count.
    const Digest a1 = runWorkload(1, 1);
    const Digest a4 = runWorkload(4, 1);
    const Digest b1 = runWorkload(1, 2);
    const Digest b4 = runWorkload(4, 2);
    EXPECT_EQ(a1, a4);
    EXPECT_EQ(b1, b4);
    EXPECT_NE(a1.statsJson, b1.statsJson);
}

TEST(ParallelEpochs, SetThreadsMidRunKeepsResultsIdentical)
{
    // Reconfiguring the pool between epochs must not disturb state.
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    auto run = [&](bool flip) {
        PimSystem sys(cfg);
        sys.setThreads(flip ? 1 : 4);
        Rng rng(99);
        std::uint64_t next_id = 1;
        for (unsigned wave = 0; wave < 8; ++wave) {
            for (unsigned i = 0; i < 16; ++i) {
                MemRequest r;
                r.type = RequestType::Read;
                r.coord.row = static_cast<unsigned>(rng.nextBelow(32));
                r.id = next_id++;
                (void)sys.tryEnqueue(
                    static_cast<unsigned>(rng.nextBelow(sys.numChannels())),
                    r);
            }
            if (flip)
                sys.setThreads(wave % 2 ? 1 : 4);
            sys.advance(200);
        }
        sys.runUntilIdle();
        std::ostringstream stats;
        sys.dumpStatsJson(stats);
        return stats.str();
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace pimsim
