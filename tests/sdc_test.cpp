/**
 * @file
 * Silent-data-corruption defense tests: ABFT-checked GEMV (checksum
 * detection, golden confirmation, fp16 tolerance band), the SdcMonitor
 * health state machine, the chaos campaign's deterministic SDC event
 * streams, and the serving engine's quarantine / degraded-capacity /
 * probation-readmission path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "pim/pim_channel.h"
#include "reliability/sdc_monitor.h"
#include "serve/chaos.h"
#include "serve/serving_engine.h"
#include "serve/shard.h"
#include "stack/blas.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

SystemConfig
abftSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 pseudo channels x 8 units = 128 GEMV tiles
    c.geometry.rowsPerBank = 512;
    return c;
}

/** Small-magnitude operands: keeps the fp16 tolerance band far below
 *  the planted fault magnitudes, so detection is unambiguous. */
void
fillSmall(Fp16Vector &v, Rng &rng)
{
    for (auto &e : v)
        e = Fp16(rng.nextFloat(-0.125f, 0.125f));
}

// ---------- ABFT-checked GEMV ----------

TEST(AbftGemv, CleanRunVerifiesEveryTileWithoutAlarms)
{
    setQuiet(true);
    PimSystem sys(abftSystem());
    PimBlas blas(sys);
    blas.setAbft(true);

    const unsigned m = 256, n = 256;
    Rng rng(0x5dc1);
    Fp16Vector w(std::size_t{m} * n), x(n), y;
    fillSmall(w, rng);
    fillSmall(x, rng);

    const BlasTiming t = blas.gemv(w, m, n, x, y);
    EXPECT_EQ(t.abftChecks, 128u); // every (channel, unit) tile
    EXPECT_EQ(t.abftMismatches, 0u);
    EXPECT_EQ(t.abftUnverifiable, 0u);
    EXPECT_EQ(t.sdcConfirmed, 0u);
    EXPECT_EQ(t.sdcFalseAlarms, 0u);
    EXPECT_FALSE(t.hostFallback);
    EXPECT_GT(t.abftNs, 0.0);

    const Fp16Vector golden = refGemv(w, m, n, x);
    ASSERT_EQ(y.size(), golden.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(y[i].bits(), golden[i].bits()) << "row " << i;
}

TEST(AbftGemv, CatchesPlantedAccumulatorFlipAndReturnsGolden)
{
    setQuiet(true);
    PimSystem sys(abftSystem());
    PimBlas blas(sys);
    blas.setAbft(true);

    // A one-strike monitor: a single confirmed corruption quarantines
    // the unit, so the attribution is visible after one kernel.
    SdcMonitorConfig mc;
    mc.window = 4;
    mc.minSamples = 1;
    mc.suspectScore = 0.25;
    mc.quarantineScore = 0.5;
    SdcMonitor monitor(sys.numChannels(), sys.config().pim.unitsPerPch, mc);
    blas.setSdcMonitor(&monitor);

    const unsigned m = 256, n = 256;
    Rng rng(0x5dc2);
    Fp16Vector w(std::size_t{m} * n), x(n), y;
    fillSmall(w, rng);
    fillSmall(x, rng);
    const Fp16Vector golden = refGemv(w, m, n, x);

    // Flip the exponent MSB of GRF_B[0] lane 0 on channel 0 / unit 0:
    // the accumulator starts at 2.0 instead of 0, so the first output
    // row of tile (0, 0) deviates by ~2.0 -- far above the band.
    sys.controller(0).pim()->unit(0).regs().flipGrfBit(1, 0, 14);

    const BlasTiming t = blas.gemv(w, m, n, x, y);

    // Ground truth: the datapath consumed the planted bits.
    EXPECT_GE(sys.controller(0).pim()->sdcExposed(), 1u);

    // The checksum tripped, golden confirmed, and the caller got the
    // corrected result -- never a silently wrong one.
    EXPECT_EQ(t.retries, 0u); // no reported error: this is the silent path
    EXPECT_GE(t.abftMismatches, 1u);
    EXPECT_GE(t.sdcConfirmed, 1u);
    EXPECT_TRUE(t.hostFallback);
    ASSERT_EQ(y.size(), golden.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(y[i].bits(), golden[i].bits()) << "row " << i;

    // The corruption was localized to (channel 0, unit 0).
    EXPECT_EQ(monitor.state(0, 0), UnitHealth::Quarantined);
    EXPECT_TRUE(monitor.channelWithdrawn(0));
    EXPECT_EQ(monitor.confirmed(), 1u);
    for (unsigned ch = 1; ch < sys.numChannels(); ++ch)
        EXPECT_FALSE(monitor.channelWithdrawn(ch)) << "channel " << ch;
}

TEST(AbftGemv, WithoutAbftThePlantedFlipPassesSilently)
{
    setQuiet(true);
    PimSystem sys(abftSystem());
    PimBlas blas(sys); // ABFT off (default)

    const unsigned m = 256, n = 256;
    Rng rng(0x5dc2); // same data as the detection test
    Fp16Vector w(std::size_t{m} * n), x(n), y;
    fillSmall(w, rng);
    fillSmall(x, rng);
    const Fp16Vector golden = refGemv(w, m, n, x);

    sys.controller(0).pim()->unit(0).regs().flipGrfBit(1, 0, 14);
    const BlasTiming t = blas.gemv(w, m, n, x, y);

    // Nothing reported, nothing checked: the wrong answer escapes.
    EXPECT_EQ(t.abftChecks, 0u);
    EXPECT_EQ(t.retries, 0u);
    EXPECT_FALSE(t.hostFallback);
    bool differs = false;
    for (std::size_t i = 0; i < y.size() && !differs; ++i)
        differs = y[i].bits() != golden[i].bits();
    EXPECT_TRUE(differs) << "the planted flip must corrupt the output";
}

TEST(AbftGemv, Fp16EdgeValuesNeverFalseAlarm)
{
    setQuiet(true);
    PimSystem sys(abftSystem());
    PimBlas blas(sys);
    blas.setAbft(true);

    // Every fp16 boundary case: zeros, the subnormal range edges, the
    // normal range edges (65504 products saturate -> the unverifiable
    // golden-compare path), exact powers of two and round-to-nearest
    // tie pins around 1.0.
    const std::vector<std::uint16_t> edges = {
        0x0000, 0x8000, // +/- zero
        0x0001, 0x8001, // smallest subnormal
        0x03ff, 0x83ff, // largest subnormal
        0x0400, 0x8400, // smallest normal
        0x7bff, 0xfbff, // largest normal (65504)
        0x3c00, 0xbc00, // +/- 1.0
        0x3bff, 0x3c01, // half-ulp neighbours of 1.0 (tie pins)
        0x3800, 0x4000, // 0.5, 2.0
    };

    const unsigned m = 256, n = 128;
    Fp16Vector w(std::size_t{m} * n), x(n), y;
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = Fp16::fromBits(edges[i % edges.size()]);
    for (std::size_t j = 0; j < x.size(); ++j)
        x[j] = Fp16::fromBits(edges[(j * 7 + 3) % edges.size()]);

    const BlasTiming t = blas.gemv(w, m, n, x, y);

    // Saturated tiles are allowed to be unverifiable (they go to the
    // golden bit-compare), but a clean run must never count a false
    // alarm or replace the result.
    EXPECT_EQ(t.sdcFalseAlarms, 0u);
    EXPECT_EQ(t.abftMismatches, 0u);
    EXPECT_EQ(t.sdcConfirmed, 0u);
    EXPECT_FALSE(t.hostFallback);

    const Fp16Vector golden = refGemv(w, m, n, x);
    ASSERT_EQ(y.size(), golden.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(y[i].bits(), golden[i].bits()) << "row " << i;
}

TEST(AbftGemv, ReplayIsBitIdenticalAcrossSimThreads)
{
    setQuiet(true);
    auto run = [](unsigned threads, Fp16Vector &y) {
        PimSystem sys(abftSystem());
        sys.setThreads(threads);
        PimBlas blas(sys);
        blas.setAbft(true);
        const unsigned m = 256, n = 256;
        Rng rng(0x5dc3);
        Fp16Vector w(std::size_t{m} * n), x(n);
        fillSmall(w, rng);
        fillSmall(x, rng);
        sys.controller(3).pim()->unit(5).regs().flipGrfBit(1, 1, 14);
        return blas.gemv(w, m, n, x, y);
    };

    Fp16Vector y1, y4;
    const BlasTiming t1 = run(1, y1);
    const BlasTiming t4 = run(4, y4);
    EXPECT_EQ(t1.ns, t4.ns);
    EXPECT_EQ(t1.abftChecks, t4.abftChecks);
    EXPECT_EQ(t1.abftMismatches, t4.abftMismatches);
    EXPECT_EQ(t1.sdcConfirmed, t4.sdcConfirmed);
    ASSERT_EQ(y1.size(), y4.size());
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_EQ(y1[i].bits(), y4[i].bits()) << "row " << i;
}

// ---------- SdcMonitorConfig validation ----------

TEST(SdcMonitorConfigDeathTest, RejectsBadThresholds)
{
    SdcMonitorConfig ok;
    ok.validate(); // the defaults are sane

    SdcMonitorConfig c = ok;
    c.window = 0;
    EXPECT_DEATH(c.validate(), "window");

    c = ok;
    c.minSamples = 0;
    EXPECT_DEATH(c.validate(), "minSamples");

    c = ok;
    c.minSamples = c.window + 1;
    EXPECT_DEATH(c.validate(), "minSamples");

    c = ok;
    c.suspectScore = c.quarantineScore; // must be strictly below
    EXPECT_DEATH(c.validate(), "suspect score");

    c = ok;
    c.suspectScore = 0.0;
    EXPECT_DEATH(c.validate(), "suspect score");

    c = ok;
    c.quarantineScore = 1.5;
    EXPECT_DEATH(c.validate(), "quarantine score");

    c = ok;
    c.probationDelayNs = -1.0;
    EXPECT_DEATH(c.validate(), "cool-down");

    c = ok;
    c.probationCanaries = 0;
    EXPECT_DEATH(c.validate(), "canary");
}

// ---------- SdcMonitor state machine ----------

SdcMonitorConfig
fastMonitor()
{
    SdcMonitorConfig c;
    c.window = 8;
    c.minSamples = 2;
    c.suspectScore = 0.25;
    c.quarantineScore = 0.5;
    c.probationDelayNs = 1000.0;
    c.probationCanaries = 2;
    return c;
}

TEST(SdcMonitor, QuarantineProbationHealthyRoundTrip)
{
    SdcMonitor mon(4, 8, fastMonitor());
    EXPECT_EQ(mon.state(1, 3), UnitHealth::Healthy);
    EXPECT_EQ(mon.nextEventNs(), std::numeric_limits<double>::infinity());

    mon.recordConfirmed(1, 3, 100.0);
    mon.recordConfirmed(1, 3, 200.0);
    EXPECT_EQ(mon.state(1, 3), UnitHealth::Quarantined);
    // Quarantine resets the outcome window: re-admission is decided by
    // the canary flow, not by stale scores.
    EXPECT_DOUBLE_EQ(mon.score(1, 3), 0.0);
    EXPECT_TRUE(mon.channelWithdrawn(1));
    EXPECT_FALSE(mon.channelWithdrawn(0));
    EXPECT_EQ(mon.withdrawnChannels(), std::vector<unsigned>{1});
    EXPECT_EQ(mon.quarantines(), 1u);
    EXPECT_DOUBLE_EQ(mon.nextEventNs(), 1200.0); // cool-down expiry

    // The cool-down holds, then expires into probation.
    mon.advanceTo(1100.0);
    EXPECT_EQ(mon.state(1, 3), UnitHealth::Quarantined);
    mon.advanceTo(1250.0);
    EXPECT_EQ(mon.state(1, 3), UnitHealth::Probation);
    EXPECT_TRUE(mon.channelOnProbation(1));
    EXPECT_TRUE(mon.channelWithdrawn(1)); // still fenced off serving

    // Two clean canaries re-admit the unit.
    mon.recordCanary(1, 3, true, 1300.0);
    EXPECT_EQ(mon.state(1, 3), UnitHealth::Probation);
    mon.recordCanary(1, 3, true, 1400.0);
    EXPECT_EQ(mon.state(1, 3), UnitHealth::Healthy);
    EXPECT_FALSE(mon.channelWithdrawn(1));
    EXPECT_EQ(mon.readmits(), 1u);
}

TEST(SdcMonitor, FailedCanaryRestartsTheQuarantine)
{
    SdcMonitor mon(2, 2, fastMonitor());
    mon.recordConfirmed(0, 0, 0.0);
    mon.recordConfirmed(0, 0, 10.0);
    mon.advanceTo(2000.0);
    ASSERT_EQ(mon.state(0, 0), UnitHealth::Probation);

    mon.recordCanary(0, 0, true, 2100.0);
    mon.recordCanary(0, 0, false, 2200.0); // strike: back to quarantine
    EXPECT_EQ(mon.state(0, 0), UnitHealth::Quarantined);
    EXPECT_GE(mon.quarantines(), 2u);
    EXPECT_EQ(mon.readmits(), 0u);

    // The canary-ok streak restarts from zero after the relapse.
    mon.advanceTo(4000.0);
    ASSERT_EQ(mon.state(0, 0), UnitHealth::Probation);
    mon.recordCanary(0, 0, true, 4100.0);
    EXPECT_EQ(mon.state(0, 0), UnitHealth::Probation);
    mon.recordCanary(0, 0, true, 4200.0);
    EXPECT_EQ(mon.state(0, 0), UnitHealth::Healthy);
    EXPECT_EQ(mon.readmits(), 1u);
}

TEST(SdcMonitor, SuspectRecoversWhenTheWindowCleans)
{
    SdcMonitor mon(1, 1, fastMonitor());
    // 1 error in 4 outcomes = 0.25: suspect, not quarantined. The clean
    // prefix keeps the score below the quarantine threshold while the
    // window fills (scores act on every outcome past minSamples).
    mon.recordClean(0, 0, 0.0);
    mon.recordClean(0, 0, 1.0);
    mon.recordClean(0, 0, 2.0);
    mon.recordConfirmed(0, 0, 3.0);
    EXPECT_EQ(mon.state(0, 0), UnitHealth::Suspect);
    EXPECT_FALSE(mon.channelWithdrawn(0)); // suspect still serves

    // Clean outcomes push the error out of the window.
    for (unsigned i = 0; i < 8; ++i)
        mon.recordClean(0, 0, 10.0 + i);
    EXPECT_EQ(mon.state(0, 0), UnitHealth::Healthy);
    EXPECT_DOUBLE_EQ(mon.score(0, 0), 0.0);
}

TEST(SdcMonitor, DetectionsAloneDoNotQuarantine)
{
    // False alarms and unconfirmed detections must not take capacity
    // away: only golden-confirmed corruption counts as an error.
    SdcMonitor mon(1, 1, fastMonitor());
    for (unsigned i = 0; i < 8; ++i) {
        mon.recordDetected(0, 0, static_cast<double>(i));
        mon.recordFalseAlarm(0, 0, static_cast<double>(i));
    }
    EXPECT_EQ(mon.state(0, 0), UnitHealth::Healthy);
    EXPECT_EQ(mon.detected(), 8u);
    EXPECT_EQ(mon.falseAlarms(), 8u);
    EXPECT_EQ(mon.quarantines(), 0u);
}

// ---------- shard row isolation ----------

TEST(ShardPlanDeathTest, OverlappingRowSlicesViolateIsolation)
{
    using serve::ShardSpec;
    std::vector<ShardSpec> ok = {
        ShardSpec{0, 8, 0, 100},
        ShardSpec{8, 8, 100, 100},
    };
    serve::assertDisjointRowRanges(ok); // disjoint: no death

    std::vector<ShardSpec> bad = {
        ShardSpec{0, 8, 0, 101}, // spills one row into the next slice
        ShardSpec{8, 8, 100, 100},
    };
    EXPECT_DEATH(serve::assertDisjointRowRanges(bad), "row isolation");
}

TEST(ShardPlan, QuarantineShrinksCapacityAndRestores)
{
    serve::ShardPlan plan = serve::ShardPlan::shared(16, 100, 1);
    EXPECT_EQ(plan.activeChannelsOf(0), 16u);
    EXPECT_DOUBLE_EQ(plan.capacityFraction(0), 1.0);

    plan.quarantineChannel(5);
    plan.quarantineChannel(5); // idempotent
    EXPECT_TRUE(plan.channelQuarantined(5));
    EXPECT_EQ(plan.activeChannelsOf(0), 15u);
    EXPECT_DOUBLE_EQ(plan.capacityFraction(0), 15.0 / 16.0);

    plan.restoreChannel(5);
    EXPECT_FALSE(plan.channelQuarantined(5));
    EXPECT_DOUBLE_EQ(plan.capacityFraction(0), 1.0);
}

// ---------- chaos campaign SDC streams ----------

TEST(ChaosSdc, StreamsAreDeterministicAndOrdered)
{
    serve::ChaosConfig cfg;
    cfg.sdcPerSec = 50'000.0; // dense enough to fill the window
    cfg.seed = 0xfeed;

    serve::ChaosCampaign a(cfg, 1), b(cfg, 1);
    a.configureSdc(4, 8);
    b.configureSdc(4, 8);

    for (unsigned ch = 0; ch < 4; ++ch) {
        const auto ea = a.sdcEvents(ch, 0.0, 1e6);
        const auto eb = b.sdcEvents(ch, 0.0, 1e6);
        ASSERT_EQ(ea.size(), eb.size()) << "channel " << ch;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].ns, eb[i].ns);
            EXPECT_EQ(ea[i].unit, eb[i].unit);
            EXPECT_LT(ea[i].unit, 8u);
            EXPECT_GE(ea[i].ns, 0.0);
            EXPECT_LT(ea[i].ns, 1e6);
            if (i > 0) {
                EXPECT_GE(ea[i].ns, ea[i - 1].ns);
            }
        }
    }

    // Windowed queries partition the stream: [0, t) + [t, T) == [0, T).
    const auto whole = a.sdcEvents(2, 0.0, 1e6);
    const auto lo = a.sdcEvents(2, 0.0, 4e5);
    const auto hi = a.sdcEvents(2, 4e5, 1e6);
    EXPECT_EQ(whole.size(), lo.size() + hi.size());
}

TEST(ChaosSdc, HotChannelDrawsTheMultipliedRate)
{
    serve::ChaosConfig cfg;
    cfg.sdcPerSec = 20'000.0;
    cfg.sdcHotChannel = 1;
    cfg.sdcHotFactor = 16.0;
    cfg.seed = 0xbeef;

    serve::ChaosCampaign chaos(cfg, 1);
    chaos.configureSdc(2, 8);
    const auto cold = chaos.sdcEvents(0, 0.0, 1e7);
    const auto hot = chaos.sdcEvents(1, 0.0, 1e7);
    // 200 vs 3200 expected events: the gap is far beyond Poisson noise.
    EXPECT_GT(hot.size(), 4 * cold.size());
}

// ---------- serving-layer quarantine and degraded capacity ----------

/** Scripted SDC source: one event on a fixed (channel, unit) every
 *  periodNs until cutoffNs, then silence. */
struct ScriptedSdc : public serve::SdcModel
{
    unsigned channel = 0;
    unsigned unit = 0;
    double periodNs = 50'000.0;
    double cutoffNs = 2'000'000.0;

    std::vector<serve::SdcEvent> sdcEvents(unsigned ch, double start_ns,
                                           double end_ns) override
    {
        std::vector<serve::SdcEvent> events;
        if (ch != channel)
            return events;
        double first = std::ceil(start_ns / periodNs) * periodNs;
        for (double t = first; t < end_ns && t < cutoffNs; t += periodNs)
            events.push_back(serve::SdcEvent{t, channel, unit});
        return events;
    }
};

AppSpec
sdcApp()
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = 256;
    fc.input = 256;
    fc.steps = 1;
    fc.pimEligible = true;

    AppSpec app;
    app.name = "sdc-fc";
    app.layers = {fc};
    return app;
}

serve::ServeConfig
sdcServeConfig(bool abft)
{
    serve::ServeConfig config;
    config.system = abftSystem();
    config.tenants = {serve::TenantSpec{"t0", sdcApp(), 1.0, 0.0}};
    config.queue.depth = 256;
    config.sched.maxBatch = 4;
    config.sdc.enabled = true;
    config.sdc.abft = abft;
    config.sdc.quarantine = true;
    config.sdc.monitor = fastMonitor();
    config.sdc.monitor.probationDelayNs = 200'000.0;
    config.sdc.canaryPeriodNs = 100'000.0;
    config.sdc.migrationNsPerRow = 0.0;
    return config;
}

serve::ServeReport
runScripted(serve::ServeConfig config, ScriptedSdc &sdc,
            double *final_capacity = nullptr,
            unsigned *final_active = nullptr)
{
    serve::ServingEngine engine(std::move(config));
    engine.setSdcModel(&sdc);
    for (double t = 0.0; t < 10e6; t += 50'000.0)
        engine.submit(0, std::max(t, engine.nowNs()));
    engine.drain();
    if (final_capacity)
        *final_capacity = engine.capacityFraction(0);
    if (final_active)
        *final_active = engine.activeChannels(0);
    serve::ServeReport report = engine.report();
    report.reconcile();
    return report;
}

TEST(ServingSdc, AbftDetectsQuarantinesAndReadmits)
{
    setQuiet(true);
    ScriptedSdc sdc; // strikes channel 0 / unit 0 for the first 2 ms
    double capacity = 0.0;
    unsigned active = 0;
    const serve::ServeReport report =
        runScripted(sdcServeConfig(/*abft=*/true), sdc, &capacity, &active);

    // Every struck batch was detected and re-run on the host golden
    // path: zero silently wrong completions, visible retries.
    EXPECT_GT(report.sdc.detected, 0u);
    EXPECT_GT(report.sdc.confirmed, 0u);
    EXPECT_EQ(report.total.silentlyWrong, 0u);
    EXPECT_GT(report.total.retries, 0u);
    EXPECT_EQ(report.total.completed, report.total.admitted);

    // The strikes localized to channel 0 and quarantined it; after the
    // stream went quiet the canaries re-admitted it.
    EXPECT_GE(report.sdc.quarantines, 1u);
    EXPECT_GE(report.sdc.readmits, 1u);
    EXPECT_TRUE(report.sdc.withdrawnChannels.empty());
    EXPECT_EQ(active, 16u);
    EXPECT_DOUBLE_EQ(capacity, 1.0);
}

TEST(ServingSdc, EndlessStrikesLeaveTheChannelWithdrawn)
{
    setQuiet(true);
    ScriptedSdc sdc;
    sdc.channel = 2;
    sdc.cutoffNs = std::numeric_limits<double>::infinity();
    double capacity = 0.0;
    unsigned active = 0;
    const serve::ServeReport report =
        runScripted(sdcServeConfig(/*abft=*/true), sdc, &capacity, &active);

    // The stream never goes quiet: canaries keep failing and the
    // channel stays out of the serving set at drain time.
    EXPECT_GE(report.sdc.quarantines, 1u);
    EXPECT_EQ(report.sdc.readmits, 0u);
    ASSERT_EQ(report.sdc.withdrawnChannels.size(), 1u);
    EXPECT_EQ(report.sdc.withdrawnChannels[0], 2u);
    EXPECT_EQ(active, 15u);
    EXPECT_DOUBLE_EQ(capacity, 15.0 / 16.0);
    // Degraded, not dead: requests still complete on the survivors.
    EXPECT_EQ(report.total.completed, report.total.admitted);
    EXPECT_EQ(report.total.silentlyWrong, 0u);
}

TEST(ServingSdc, WithoutAbftStrikesCompleteSilentlyWrong)
{
    setQuiet(true);
    ScriptedSdc sdc;
    const serve::ServeReport report =
        runScripted(sdcServeConfig(/*abft=*/false), sdc);

    // No detection feed -> no localization, no quarantine, and struck
    // batches complete with wrong results. This is the hazard the
    // defense exists to close.
    EXPECT_GT(report.total.silentlyWrong, 0u);
    EXPECT_EQ(report.sdc.detected, 0u);
    EXPECT_EQ(report.sdc.confirmed, 0u);
    EXPECT_EQ(report.sdc.quarantines, 0u);
    EXPECT_EQ(report.total.retries, 0u);
}

TEST(ServingSdc, MigrationHoldPausesButNeverStallsDrain)
{
    setQuiet(true);
    ScriptedSdc sdc;
    serve::ServeConfig config = sdcServeConfig(/*abft=*/true);
    config.sdc.migrationNsPerRow = 1000.0; // non-trivial re-stripe pause
    const serve::ServeReport report = runScripted(std::move(config), sdc);

    // drain() returned (no event-loop spin against the dispatch gate)
    // and the quarantine round trip still happened behind the hold.
    EXPECT_GE(report.sdc.quarantines, 1u);
    EXPECT_GE(report.sdc.readmits, 1u);
    EXPECT_EQ(report.total.completed, report.total.admitted);
}

TEST(ServingSdc, ReplayIsBitIdenticalAcrossSimThreads)
{
    setQuiet(true);
    auto digest = [](unsigned threads) {
        ScriptedSdc sdc;
        serve::ServeConfig config = sdcServeConfig(/*abft=*/true);
        config.simThreads = threads;
        serve::ServingEngine engine(std::move(config));
        engine.setSdcModel(&sdc);
        for (double t = 0.0; t < 10e6; t += 50'000.0)
            engine.submit(0, std::max(t, engine.nowNs()));
        engine.drain();
        serve::ServeReport report = engine.report();
        report.reconcile();
        double sum = 0.0;
        for (const serve::ServeRequest &r : engine.takeCompletions())
            sum += r.completeNs;
        return std::make_tuple(report.total.completed, report.total.retries,
                               report.sdc.detected, report.sdc.confirmed,
                               report.sdc.quarantines, report.sdc.readmits,
                               report.total.e2e.p99Ns, sum);
    };
    EXPECT_EQ(digest(1), digest(3));
}

} // namespace
} // namespace pimsim
