/**
 * @file
 * PIM execution unit and channel tests: mode FSM (Fig. 3), register-
 * mapped config access, instruction triggering, zero-cycle JUMP, AAM
 * reorder tolerance (Fig. 5), and the SIMD datapath.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/pseudo_channel.h"
#include "pim/pim_channel.h"

namespace pimsim {
namespace {

HbmGeometry
smallGeom()
{
    HbmGeometry g;
    g.rowsPerBank = 256;
    return g;
}

struct PimFixture : public ::testing::Test
{
    PimFixture()
        : pch(smallGeom(), timing), pim(PimConfig{}, pch),
          conf(pim.confMap())
    {
    }

    Cycle
    issue(const Command &cmd)
    {
        now = pch.earliestIssue(cmd, now);
        last = pch.issue(cmd, now);
        return now;
    }

    void
    enterAb()
    {
        issue(Command::act(0, 0, conf.abmrRow));
        issue(Command::pre(0, 0));
        ASSERT_EQ(pim.mode(), PimMode::Ab);
    }

    void
    loadProgram(const std::vector<PimInst> &insts)
    {
        for (unsigned u = 0; u < pim.numUnits(); ++u) {
            for (unsigned i = 0; i < insts.size(); ++i)
                pim.unit(u).regs().setCrf(i, insts[i].encode());
        }
    }

    void
    armPim()
    {
        issue(Command::act(0, 0, conf.configRow));
        Burst on{};
        on[0] = 1;
        issue(Command::wr(0, 0, pim.opModeCol(), on));
        issue(Command::preAll());
        ASSERT_EQ(pim.mode(), PimMode::AbPim);
    }

    void
    disarmPim()
    {
        issue(Command::preAll());
        issue(Command::act(0, 0, conf.configRow));
        issue(Command::wr(0, 0, pim.opModeCol(), Burst{}));
        issue(Command::preAll());
        ASSERT_EQ(pim.mode(), PimMode::Ab);
    }

    LaneVector
    lanesOf(std::initializer_list<float> values)
    {
        LaneVector v;
        std::size_t i = 0;
        for (float f : values)
            v[i++] = Fp16(f);
        while (i < kSimdLanes)
            v[i++] = Fp16();
        return v;
    }

    HbmTiming timing;
    PseudoChannel pch;
    PimChannel pim;
    PimConfMap conf;
    Cycle now = 0;
    IssueResult last;
};

TEST_F(PimFixture, StartsInSbMode)
{
    EXPECT_EQ(pim.mode(), PimMode::Sb);
    EXPECT_FALSE(pch.allBankMode());
}

TEST_F(PimFixture, AbmrSequenceEntersAbMode)
{
    enterAb();
    EXPECT_TRUE(pch.allBankMode());
    EXPECT_EQ(pim.stats().counter("mode.enterAb"), 1u);
}

TEST_F(PimFixture, SbmrSequenceReturnsToSbMode)
{
    enterAb();
    issue(Command::act(0, 0, conf.sbmrRow));
    issue(Command::preAll());
    EXPECT_EQ(pim.mode(), PimMode::Sb);
    EXPECT_FALSE(pch.allBankMode());
}

TEST_F(PimFixture, OrdinaryActDoesNotChangeMode)
{
    issue(Command::act(0, 0, 10));
    issue(Command::pre(0, 0));
    EXPECT_EQ(pim.mode(), PimMode::Sb);
}

TEST_F(PimFixture, OpModeTogglesAbPim)
{
    enterAb();
    armPim();
    EXPECT_EQ(pim.mode(), PimMode::AbPim);
    disarmPim();
    EXPECT_EQ(pim.mode(), PimMode::Ab);
}

TEST_F(PimFixture, CrfWritesBroadcastToAllUnits)
{
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    // One burst carries CRF[0..7].
    std::vector<PimInst> insts;
    for (unsigned i = 0; i < 8; ++i)
        insts.push_back(PimInst::nop(i + 1));
    Burst burst{};
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint32_t w = insts[i].encode();
        for (unsigned b = 0; b < 4; ++b)
            burst[4 * i + b] =
                static_cast<std::uint8_t>((w >> (8 * b)) & 0xff);
    }
    issue(Command::wr(0, 0, /*col=*/0, burst));
    for (unsigned u = 0; u < pim.numUnits(); ++u)
        for (unsigned i = 0; i < 8; ++i)
            EXPECT_EQ(pim.unit(u).regs().crf(i), insts[i].encode());
}

TEST_F(PimFixture, GrfConfigReadBack)
{
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    const LaneVector v = lanesOf({1.5f, -2.0f, 3.25f});
    issue(Command::wr(0, 0, pim.grfACol(3), lanesToBurst(v)));
    // Read back through the addressed bank (unit 1 = banks 2,3).
    issue(Command::rd(0, 2, pim.grfACol(3)));
    EXPECT_TRUE(last.intercepted);
    EXPECT_EQ(burstToLanes(last.data)[0].bits(), Fp16(1.5f).bits());
    EXPECT_EQ(burstToLanes(last.data)[1].bits(), Fp16(-2.0f).bits());
}

TEST_F(PimFixture, SrfConfigLoad)
{
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    Burst srf{};
    const Fp16 val(0.75f);
    srf[0] = static_cast<std::uint8_t>(val.bits() & 0xff);
    srf[1] = static_cast<std::uint8_t>(val.bits() >> 8);
    issue(Command::wr(0, 0, pim.srfMCol(), srf));
    for (unsigned u = 0; u < pim.numUnits(); ++u)
        EXPECT_EQ(pim.unit(u).regs().srf(0, 0).bits(), val.bits());
}

TEST_F(PimFixture, TriggeredMacComputesOnBankData)
{
    // Preload the even bank of every unit with known data at row 7.
    for (unsigned u = 0; u < pim.numUnits(); ++u) {
        LaneVector w;
        for (unsigned lane = 0; lane < kSimdLanes; ++lane)
            w[lane] = Fp16(0.25f * static_cast<float>(lane + u));
        pch.dataStore().write(2 * u, 7, 0, lanesToBurst(w));
    }

    loadProgram({
        PimInst::mac(OperandSpace::GrfB, 0, OperandSpace::EvenBank, 0,
                     OperandSpace::GrfA, 0),
        PimInst::exit(),
    });

    enterAb();
    // x broadcast into GRF_A[0] of every unit.
    issue(Command::act(0, 0, conf.configRow));
    const LaneVector x = broadcast(Fp16(2.0f));
    issue(Command::wr(0, 0, pim.grfACol(0), lanesToBurst(x)));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());

    issue(Command::act(0, 0, 7));
    issue(Command::rd(0, 0, 0)); // trigger: MAC
    EXPECT_TRUE(last.intercepted);

    for (unsigned u = 0; u < pim.numUnits(); ++u) {
        const LaneVector &acc = pim.unit(u).regs().grf(1, 0);
        for (unsigned lane = 0; lane < kSimdLanes; ++lane) {
            const Fp16 expect = fp16Mac(
                Fp16(0.25f * static_cast<float>(lane + u)), Fp16(2.0f),
                Fp16());
            EXPECT_EQ(acc[lane].bits(), expect.bits());
        }
        EXPECT_TRUE(pim.unit(u).halted());
    }
}

TEST_F(PimFixture, JumpRepeatsBodyExactly)
{
    loadProgram({
        PimInst::add(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                     OperandSpace::SrfA, 0),
        PimInst::jump(1, 5),
        PimInst::exit(),
    });
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    Burst srf{};
    const Fp16 one(1.0f);
    srf[0] = static_cast<std::uint8_t>(one.bits() & 0xff);
    srf[1] = static_cast<std::uint8_t>(one.bits() >> 8);
    issue(Command::wr(0, 0, pim.srfACol(), srf));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());

    issue(Command::act(0, 0, 3));
    for (unsigned i = 0; i < 5; ++i)
        issue(Command::rd(0, 0, i));

    // GRF_A[0] += 1 executed exactly 5 times.
    for (unsigned u = 0; u < pim.numUnits(); ++u) {
        EXPECT_EQ(pim.unit(u).regs().grf(0, 0)[0].bits(),
                  Fp16(5.0f).bits());
        EXPECT_TRUE(pim.unit(u).halted());
        EXPECT_EQ(pim.unit(u).executedCount(), 5u);
    }
}

TEST_F(PimFixture, NestedJumpLoops)
{
    // Inner x3 / outer x4: the body executes 12 times.
    loadProgram({
        PimInst::add(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                     OperandSpace::SrfA, 0),
        PimInst::jump(1, 3),
        PimInst::jump(2, 4),
        PimInst::exit(),
    });
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    Burst srf{};
    const Fp16 one(1.0f);
    srf[0] = static_cast<std::uint8_t>(one.bits() & 0xff);
    srf[1] = static_cast<std::uint8_t>(one.bits() >> 8);
    issue(Command::wr(0, 0, pim.srfACol(), srf));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());

    issue(Command::act(0, 0, 3));
    for (unsigned i = 0; i < 12; ++i)
        issue(Command::rd(0, 0, i % 8));
    EXPECT_EQ(pim.unit(0).regs().grf(0, 0)[0].bits(), Fp16(12.0f).bits());
    EXPECT_TRUE(pim.unit(0).halted());
}

TEST_F(PimFixture, MultiCycleNopConsumesTriggers)
{
    loadProgram({
        PimInst::nop(3),
        PimInst::add(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                     OperandSpace::SrfA, 0),
        PimInst::exit(),
    });
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    Burst srf{};
    const Fp16 one(1.0f);
    srf[0] = static_cast<std::uint8_t>(one.bits() & 0xff);
    srf[1] = static_cast<std::uint8_t>(one.bits() >> 8);
    issue(Command::wr(0, 0, pim.srfACol(), srf));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());
    issue(Command::act(0, 0, 3));

    for (unsigned i = 0; i < 3; ++i) {
        issue(Command::rd(0, 0, 0));
        EXPECT_EQ(pim.unit(0).regs().grf(0, 0)[0].bits(), Fp16().bits());
    }
    issue(Command::rd(0, 0, 0)); // 4th trigger executes the ADD
    EXPECT_EQ(pim.unit(0).regs().grf(0, 0)[0].bits(), Fp16(1.0f).bits());
}

TEST_F(PimFixture, WriteTriggerDeliversBusData)
{
    loadProgram({
        PimInst::fill(OperandSpace::GrfA, 2, OperandSpace::EvenBank, 0),
        PimInst::exit(),
    });
    enterAb();
    armPim();
    issue(Command::act(0, 0, 3));
    const LaneVector x = lanesOf({9.0f, -4.5f});
    issue(Command::wr(0, 0, 5, lanesToBurst(x)));
    for (unsigned u = 0; u < pim.numUnits(); ++u) {
        EXPECT_EQ(pim.unit(u).regs().grf(0, 2)[0].bits(), Fp16(9.0f).bits());
        EXPECT_EQ(pim.unit(u).regs().grf(0, 2)[1].bits(),
                  Fp16(-4.5f).bits());
    }
    // The bank itself was not written (AB-PIM consumes the command).
    EXPECT_EQ(pch.dataStore().read(0, 3, 5), Burst{});
}

TEST_F(PimFixture, MovReluFlushesNegativeLanes)
{
    loadProgram({
        PimInst::mov(OperandSpace::GrfB, 1, OperandSpace::GrfA, 0,
                     /*relu=*/true),
        PimInst::exit(),
    });
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    issue(Command::wr(0, 0, pim.grfACol(0),
                      lanesToBurst(lanesOf({1.0f, -1.0f, 0.5f, -0.5f}))));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());
    issue(Command::act(0, 0, 3));
    issue(Command::rd(0, 0, 0));

    const LaneVector &r = pim.unit(0).regs().grf(1, 1);
    EXPECT_EQ(r[0].bits(), Fp16(1.0f).bits());
    EXPECT_EQ(r[1].bits(), Fp16(0.0f).bits());
    EXPECT_EQ(r[2].bits(), Fp16(0.5f).bits());
    EXPECT_EQ(r[3].bits(), Fp16(0.0f).bits());
}

TEST_F(PimFixture, BankDestinationWritesThroughWriteDriver)
{
    loadProgram({
        PimInst::mov(OperandSpace::OddBank, 0, OperandSpace::GrfA, 1),
        PimInst::exit(),
    });
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    const LaneVector v = lanesOf({7.0f});
    issue(Command::wr(0, 0, pim.grfACol(1), lanesToBurst(v)));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());
    issue(Command::act(0, 0, 9));
    issue(Command::wr(0, 0, 6, Burst{})); // WR trigger, dst = odd bank
    for (unsigned u = 0; u < pim.numUnits(); ++u) {
        EXPECT_EQ(burstToLanes(
                      pch.dataStore().read(2 * u + 1, 9, 6))[0].bits(),
                  Fp16(7.0f).bits());
    }
}

TEST_F(PimFixture, MadUsesSrfPair)
{
    // GRF_A[aam] = EVEN_BANK * SRF_M[i] + SRF_A[i].
    for (unsigned u = 0; u < pim.numUnits(); ++u)
        pch.dataStore().write(2 * u, 4, 3,
                              lanesToBurst(broadcast(Fp16(3.0f))));
    loadProgram({
        PimInst::mad(OperandSpace::GrfA, 0, OperandSpace::EvenBank, 0,
                     OperandSpace::SrfM, 0, /*aam=*/true),
        PimInst::exit(),
    });
    enterAb();
    issue(Command::act(0, 0, conf.configRow));
    Burst srfm{};
    Burst srfa{};
    const Fp16 g(2.0f);
    const Fp16 b(0.5f);
    // Scalar index 3 (the AAM index of column 3).
    srfm[6] = static_cast<std::uint8_t>(g.bits() & 0xff);
    srfm[7] = static_cast<std::uint8_t>(g.bits() >> 8);
    srfa[6] = static_cast<std::uint8_t>(b.bits() & 0xff);
    srfa[7] = static_cast<std::uint8_t>(b.bits() >> 8);
    issue(Command::wr(0, 0, pim.srfMCol(), srfm));
    issue(Command::wr(0, 0, pim.srfACol(), srfa));
    Burst on{};
    on[0] = 1;
    issue(Command::wr(0, 0, pim.opModeCol(), on));
    issue(Command::preAll());
    issue(Command::act(0, 0, 4));
    issue(Command::rd(0, 0, 3)); // AAM index 3

    const Fp16 expect = fp16Mad(Fp16(3.0f), g, b);
    EXPECT_EQ(pim.unit(0).regs().grf(0, 3)[0].bits(), expect.bits());
}

TEST_F(PimFixture, AamToleratesReorderWithinWindow)
{
    // Fig. 5: with AAM, any permutation of the 8 column commands of one
    // GRF window produces the same architectural state.
    Rng rng(211);
    for (int trial = 0; trial < 8; ++trial) {
        PseudoChannel fresh(smallGeom(), timing);
        PimChannel fresh_pim(PimConfig{}, fresh);
        Cycle t = 0;
        auto issue_on = [&](const Command &cmd) {
            t = fresh.earliestIssue(cmd, t);
            fresh.issue(cmd, t);
        };

        for (unsigned u = 0; u < fresh_pim.numUnits(); ++u)
            for (unsigned c = 0; c < 8; ++c)
                fresh.dataStore().write(
                    2 * u, 2, c,
                    lanesToBurst(broadcast(Fp16(0.5f * (c + 1)))));

        for (unsigned u = 0; u < fresh_pim.numUnits(); ++u) {
            fresh_pim.unit(u).regs().setCrf(
                0, PimInst::fill(OperandSpace::GrfA, 0,
                                 OperandSpace::EvenBank, 0, true)
                       .encode());
            fresh_pim.unit(u).regs().setCrf(1,
                                            PimInst::jump(1, 8).encode());
            fresh_pim.unit(u).regs().setCrf(2, PimInst::exit().encode());
        }

        issue_on(Command::act(0, 0, fresh_pim.confMap().abmrRow));
        issue_on(Command::pre(0, 0));
        issue_on(Command::act(0, 0, fresh_pim.confMap().configRow));
        Burst on{};
        on[0] = 1;
        issue_on(Command::wr(0, 0, fresh_pim.opModeCol(), on));
        issue_on(Command::preAll());
        issue_on(Command::act(0, 0, 2));

        std::vector<unsigned> cols = {0, 1, 2, 3, 4, 5, 6, 7};
        for (std::size_t i = cols.size(); i > 1; --i)
            std::swap(cols[i - 1], cols[rng.nextBelow(i)]);
        for (unsigned c : cols)
            issue_on(Command::rd(0, 0, c));

        // Regardless of order, GRF_A[i] holds the column-i data.
        for (unsigned i = 0; i < 8; ++i) {
            EXPECT_EQ(fresh_pim.unit(0).regs().grf(0, i)[0].bits(),
                      Fp16(0.5f * (i + 1)).bits())
                << "trial " << trial << " reg " << i;
        }
    }
}

TEST_F(PimFixture, TriggersAfterExitAreCountedNotExecuted)
{
    loadProgram({PimInst::exit()});
    enterAb();
    armPim();
    issue(Command::act(0, 0, 3));
    issue(Command::rd(0, 0, 0));
    EXPECT_GE(pim.stats().counter("pim.triggerAfterExit"), 1u);
    EXPECT_EQ(pim.unit(0).executedCount(), 0u);
}

} // namespace
} // namespace pimsim
