/**
 * @file
 * Energy-model tests: breakdown arithmetic, Table I constants and the
 * structural estimate, Fig. 11 endpoint properties, the activity probe,
 * and the system power composition.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "energy/probe.h"
#include "energy/system_power.h"
#include "stack/blas.h"

namespace pimsim {
namespace {

TEST(EnergyBreakdown, SumAndScale)
{
    EnergyBreakdown a;
    a.cell = 10;
    a.phy = 5;
    EnergyBreakdown b;
    b.cell = 1;
    b.pimUnit = 2;
    a += b;
    EXPECT_DOUBLE_EQ(a.cell, 11);
    EXPECT_DOUBLE_EQ(a.pimUnit, 2);
    EXPECT_DOUBLE_EQ(a.total(), 18);
    const EnergyBreakdown scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled.total(), 36);
}

TEST(EnergyModel, ExternalBurstExercisesFullPath)
{
    EnergyModel model;
    ChannelActivity a;
    a.rdBursts = 1000;
    a.elapsedNs = 1.0; // negligible background
    const EnergyBreakdown e = model.channelEnergy(a);
    EXPECT_GT(e.cell, 0);
    EXPECT_GT(e.iosa, 0);
    EXPECT_GT(e.globalBus, 0);
    EXPECT_GT(e.phy, 0);
    EXPECT_DOUBLE_EQ(e.pimUnit, 0);
}

TEST(EnergyModel, PimBankAccessStopsAtBankIo)
{
    EnergyModel model;
    ChannelActivity a;
    a.pimBankReads = 1000;
    a.pimOps = 1000;
    a.elapsedNs = 1.0;
    const EnergyBreakdown e = model.channelEnergy(a);
    EXPECT_GT(e.cell, 0);
    EXPECT_GT(e.iosa, 0);
    EXPECT_DOUBLE_EQ(e.globalBus, 0); // the paper's key saving
    EXPECT_GT(e.pimUnit, 0);
}

TEST(EnergyModel, GatingRemovesBufferToggle)
{
    ChannelActivity a;
    a.pimTriggers = 1000;
    a.elapsedNs = 1.0;
    EnergyParams gated;
    gated.gateBufferIo = true;
    const double with_toggle = EnergyModel().channelEnergy(a).phy;
    const double without = EnergyModel(gated).channelEnergy(a).phy;
    EXPECT_GT(with_toggle, 0);
    EXPECT_DOUBLE_EQ(without, 0);
}

TEST(EnergyModel, Fig11Endpoints)
{
    // Analytic check of the calibration: steady-state HBM reads at
    // tCCD_S vs AB-PIM MACs at tCCD_L with 8 units.
    const HbmTiming t = HbmTiming::at12GHz();
    EnergyModel model;

    ChannelActivity hbm;
    hbm.rdBursts = 1000000;
    hbm.elapsedNs = 1000000 * t.tCCDS * t.tCKns;
    const double hbm_mw = model.averagePowerMw(hbm);

    ChannelActivity pim;
    pim.pimTriggers = 1000000;
    pim.pimBankReads = 8000000;
    pim.pimOps = 8000000;
    pim.elapsedNs = 1000000 * t.tCCDL * t.tCKns;
    const double pim_mw = model.averagePowerMw(pim);

    // Paper: 1.054x at 4x on-chip bandwidth; our calibration within 5%.
    EXPECT_NEAR(pim_mw / hbm_mw, 1.054, 0.055);

    EnergyParams gated_params;
    gated_params.gateBufferIo = true;
    const double gated_mw =
        EnergyModel(gated_params).averagePowerMw(pim);
    // Paper: gating the buffer-die I/O lands ~10% below HBM.
    EXPECT_LT(gated_mw, hbm_mw);
    EXPECT_NEAR(gated_mw / hbm_mw, 0.9, 0.08);
}

// ---------- Table I ----------

TEST(TableOne, PublishedConstants)
{
    EXPECT_DOUBLE_EQ(macRelativeArea(MacFormat::Int16Acc48), 1.0);
    EXPECT_DOUBLE_EQ(macRelativeArea(MacFormat::Fp32), 3.96);
    EXPECT_DOUBLE_EQ(macRelativeEnergy(MacFormat::Bf16), 1.04);
    // BF16 is smaller and cheaper than FP16 (Section III-C).
    EXPECT_LT(macRelativeArea(MacFormat::Bf16),
              macRelativeArea(MacFormat::Fp16));
    EXPECT_LT(macRelativeEnergy(MacFormat::Bf16),
              macRelativeEnergy(MacFormat::Fp16));
}

TEST(TableOne, ModelReproducesIntRowsExactly)
{
    for (MacFormat f : {MacFormat::Int16Acc48, MacFormat::Int8Acc48,
                        MacFormat::Int8Acc32}) {
        const auto [area, energy] = macModelEstimate(f);
        EXPECT_NEAR(area, macRelativeArea(f), 0.02) << macFormatName(f);
        EXPECT_NEAR(energy, macRelativeEnergy(f), 0.01)
            << macFormatName(f);
    }
}

TEST(TableOne, ModelPreservesFpOrdering)
{
    const auto fp16 = macModelEstimate(MacFormat::Fp16);
    const auto bf16 = macModelEstimate(MacFormat::Bf16);
    const auto fp32 = macModelEstimate(MacFormat::Fp32);
    // Area ordering and rough magnitude.
    EXPECT_LT(bf16.first, fp16.first);
    EXPECT_GT(fp32.first, 2.5 * fp16.first);
    EXPECT_NEAR(fp16.first, macRelativeArea(MacFormat::Fp16), 0.05);
    EXPECT_NEAR(bf16.first, macRelativeArea(MacFormat::Bf16), 0.05);
    // Energy: looser (documented in EXPERIMENTS.md).
    EXPECT_NEAR(fp16.second, macRelativeEnergy(MacFormat::Fp16), 0.15);
    EXPECT_NEAR(bf16.second, macRelativeEnergy(MacFormat::Bf16), 0.15);
}

// ---------- probe ----------

TEST(ActivityProbe, CountsPimKernelEvents)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    cfg.geometry.rowsPerBank = 512;
    PimSystem sys(cfg);
    PimBlas blas(sys);

    ActivityProbe probe(sys);
    Fp16Vector a(4096, Fp16(1.0f)), b(4096, Fp16(2.0f)), out;
    blas.add(a, b, out);
    const ChannelActivity delta = probe.delta();
    EXPECT_GT(delta.pimTriggers, 0u);
    EXPECT_GT(delta.pimBankReads, 0u);
    EXPECT_GT(delta.pimOps, 0u);
    EXPECT_GT(delta.acts, 0u);
    EXPECT_GT(delta.elapsedNs, 0.0);

    // Re-snapshot zeroes the delta.
    probe.snapshot();
    const ChannelActivity zero = probe.delta();
    EXPECT_EQ(zero.pimTriggers, 0u);
    EXPECT_EQ(zero.pimOps, 0u);
}

// ---------- system power ----------

TEST(SystemPower, TracePhasesIntegratesEnergy)
{
    // Two phases: 100 ns at 100 W then 100 ns at 50 W, sampled at 50 ns.
    const auto trace = SystemPowerModel::tracePhases(
        {{100.0, 100.0}, {100.0, 50.0}}, 50.0);
    ASSERT_EQ(trace.watts.size(), 4u);
    EXPECT_NEAR(trace.watts[0], 100.0, 1e-9);
    EXPECT_NEAR(trace.watts[1], 100.0, 1e-9);
    EXPECT_NEAR(trace.watts[2], 50.0, 1e-9);
    EXPECT_NEAR(trace.watts[3], 50.0, 1e-9);
}

TEST(SystemPower, TraceHandlesPhaseBoundariesInsideSamples)
{
    const auto trace = SystemPowerModel::tracePhases(
        {{75.0, 100.0}, {75.0, 0.0}}, 50.0);
    ASSERT_EQ(trace.watts.size(), 3u);
    EXPECT_NEAR(trace.watts[0], 100.0, 1e-9);
    EXPECT_NEAR(trace.watts[1], 50.0, 1e-9); // half hot, half idle
    EXPECT_NEAR(trace.watts[2], 0.0, 1e-9);
}

TEST(SystemPower, AppEnergyComposes)
{
    SystemPowerModel power(EnergyModel{}, HostPowerParams{}, 64);
    AppRunResult run;
    run.ns = 1e6;
    run.hostNs = 4e5;
    run.pimNs = 5e5;
    run.launchNs = 1e5;
    run.hostDramBytes = 1e8;
    run.pimTriggers = 1000000;
    run.pimBankAccesses = 8000000;
    run.pimOps = 8000000;
    const SystemEnergy e = power.appEnergy(run, true);
    EXPECT_GT(e.hostJ, 0.0);
    EXPECT_GT(e.memoryJ, 0.0);
    EXPECT_GT(e.avgPowerW(), 40.0);  // above idle
    EXPECT_LT(e.avgPowerW(), 300.0); // below silly
}

TEST(SystemPower, PimPathChargesDrivePower)
{
    SystemPowerModel power(EnergyModel{}, HostPowerParams{}, 64);
    AppRunResult run;
    run.ns = 1e6;
    run.pimNs = 1e6;
    const SystemEnergy pim = power.appEnergy(run, true);
    const SystemEnergy baseline = power.appEnergy(run, false);
    EXPECT_GT(pim.hostJ, baseline.hostJ);
}

} // namespace
} // namespace pimsim
