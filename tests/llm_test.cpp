/**
 * @file
 * LLM subsystem tests: decoder lowering, paged KV-cache accounting,
 * continuous-batching invariants (join/leave ledger, starvation-free
 * preemption, exact KV conservation), deadline handling, and
 * deterministic replay of the decode-serving engine.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "llm/batcher.h"
#include "llm/decoder.h"
#include "llm/engine.h"
#include "llm/kv_cache.h"
#include "llm/trace_gen.h"
#include "serve/chaos.h"
#include "serve/service_model.h"

namespace pimsim::llm {
namespace {

SystemConfig
smallSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 channels keeps tests fast
    c.geometry.rowsPerBank = 512;
    return c;
}

LlmEngineConfig
smallConfig(BatchPolicy policy = BatchPolicy::Continuous)
{
    LlmEngineConfig cfg;
    cfg.system = smallSystem();
    cfg.decoder = DecoderSpec::tiny();
    cfg.tenants = {LlmTenantSpec{"t0", 0.0, 0}};
    cfg.batcher.policy = policy;
    cfg.batcher.maxBatch = 4;
    cfg.timingCache = std::make_shared<serve::ServiceTimeCache>();
    return cfg;
}

// ------------------------------------------------------------------
// Decoder lowering
// ------------------------------------------------------------------

TEST(Decoder, SpecDerivedQuantities)
{
    const DecoderSpec spec = DecoderSpec::tiny();
    spec.validate();
    EXPECT_EQ(spec.headDim(), spec.hiddenDim / spec.heads);
    EXPECT_EQ(spec.kvDim(), spec.kvHeads * spec.headDim());
    // K + V, FP16, per layer.
    EXPECT_EQ(spec.kvBytesPerToken(),
              2ULL * spec.layers * spec.kvDim() * 2ULL);
    EXPECT_GT(spec.weightBytes(), 0u);
}

TEST(Decoder, CtxBucketRoundsUp)
{
    EXPECT_EQ(ctxBucket(1, 128), 128u);
    EXPECT_EQ(ctxBucket(128, 128), 128u);
    EXPECT_EQ(ctxBucket(129, 128), 256u);
    EXPECT_EQ(ctxBucket(0, 128), 128u); // minimum one granule
}

TEST(Decoder, FfnAppBatchesWithResidentWeights)
{
    const DecoderSpec spec = DecoderSpec::tiny();
    const AppSpec app = decodeFfnApp(spec);
    ASSERT_EQ(app.layers.size(), 4u); // QKV, out, FFN up, FFN down
    for (const auto &l : app.layers) {
        EXPECT_EQ(l.kind, LayerSpec::Kind::Fc);
        EXPECT_TRUE(l.pimEligible);
        // Resident weights: batches amortise launches, not re-staging.
        EXPECT_TRUE(l.inputsAvailable);
        EXPECT_EQ(l.steps, spec.layers);
    }
    // Fused QKV projection: hidden + 2x kvDim outputs.
    EXPECT_EQ(app.layers[0].hidden, spec.hiddenDim + 2 * spec.kvDim());
}

TEST(Decoder, AttnAppShapeGrowsWithContext)
{
    const DecoderSpec spec = DecoderSpec::tiny();
    const AppSpec a128 = decodeAttnApp(spec, 128);
    const AppSpec a256 = decodeAttnApp(spec, 256);
    EXPECT_NE(a128.name, a256.name); // distinct memo keys per bucket
    ASSERT_EQ(a128.layers.size(), 2u); // score + context GEMVs
    EXPECT_EQ(a128.layers[0].steps, spec.layers * spec.kvHeads);

    // Longer context must cost more through the real service model.
    serve::ShardServiceModel model(smallSystem(), 16, nullptr);
    EXPECT_GT(model.serviceNs(a256, 1), model.serviceNs(a128, 1));
}

// ------------------------------------------------------------------
// Paged KV cache
// ------------------------------------------------------------------

/** A KV manager over one (or more) partitions of a fresh system. */
struct KvFixture
{
    explicit KvFixture(unsigned tenants = 1, unsigned rows_per_tenant = 64,
                       std::vector<std::uint64_t> caps = {})
        : spec(DecoderSpec::tiny()), system(smallSystem())
    {
        base = std::make_unique<PimDriver>(system);
        rowBytes = system.config().geometry.bytesPerRow() *
                   system.config().geometry.banksPerPch() *
                   system.numChannels();
        std::vector<PimDriver *> parts;
        for (unsigned t = 0; t < tenants; ++t) {
            drivers.push_back(std::make_unique<PimDriver>(
                system, base->baseRow() + t * rows_per_tenant,
                rows_per_tenant));
            parts.push_back(drivers.back().get());
        }
        if (caps.empty())
            caps.assign(tenants, 0);
        kv = std::make_unique<KvCacheManager>(spec, KvCacheConfig{},
                                              rowBytes, parts, caps);
    }

    DecoderSpec spec;
    PimSystem system;
    std::unique_ptr<PimDriver> base;
    std::vector<std::unique_ptr<PimDriver>> drivers;
    std::uint64_t rowBytes = 0;
    std::unique_ptr<KvCacheManager> kv;
};

TEST(KvCache, BlocksForCeils)
{
    KvFixture f;
    const unsigned bt = f.kv->blockTokens();
    EXPECT_EQ(f.kv->blocksFor(0), 0u);
    EXPECT_EQ(f.kv->blocksFor(1), 1u);
    EXPECT_EQ(f.kv->blocksFor(bt), 1u);
    EXPECT_EQ(f.kv->blocksFor(bt + 1), 2u);
}

TEST(KvCache, ReserveGrowsAndReleaseFrees)
{
    KvFixture f;
    const KvSeqId s = f.kv->createSeq(0);
    ASSERT_TRUE(f.kv->reserve(s, 1));
    EXPECT_EQ(f.kv->seqBlocks(s), 1u);
    const unsigned bt = f.kv->blockTokens();
    ASSERT_TRUE(f.kv->reserve(s, 3 * bt));
    EXPECT_EQ(f.kv->seqBlocks(s), 3u);
    // Reserve is monotone: asking for less never shrinks.
    ASSERT_TRUE(f.kv->reserve(s, 1));
    EXPECT_EQ(f.kv->seqBlocks(s), 3u);
    EXPECT_EQ(f.kv->residentBlocks(), 3u);

    f.kv->release(s);
    EXPECT_EQ(f.kv->residentBlocks(), 0u);
    EXPECT_EQ(f.kv->liveSeqs(), 0u);
    EXPECT_EQ(f.kv->blocksAllocated(), f.kv->blocksFreed());
    f.kv->reconcile();
}

TEST(KvCache, AllOrNothingOnExhaustion)
{
    KvFixture f(1, /*rows_per_tenant=*/4);
    const std::uint64_t cap = f.kv->capBlocks(0);
    ASSERT_GE(cap, 1u);
    const KvSeqId s = f.kv->createSeq(0);
    ASSERT_TRUE(f.kv->reserve(s, cap * f.kv->blockTokens()));
    const std::uint64_t before = f.kv->blocksAllocated();

    const KvSeqId s2 = f.kv->createSeq(0);
    EXPECT_FALSE(f.kv->reserve(s2, 2 * f.kv->blockTokens()));
    // Failure must be side-effect free: nothing allocated or resident.
    EXPECT_EQ(f.kv->blocksAllocated(), before);
    EXPECT_EQ(f.kv->seqBlocks(s2), 0u);
    EXPECT_EQ(f.kv->allocFailures(), 1u);
    f.kv->release(s);
    f.kv->release(s2);
    f.kv->reconcile();
}

TEST(KvCache, PerTenantCapAndIsolation)
{
    KvFixture f(2, 64, {2, 0});
    EXPECT_EQ(f.kv->capBlocks(0), 2u);
    const KvSeqId a = f.kv->createSeq(0);
    EXPECT_TRUE(f.kv->reserve(a, 2 * f.kv->blockTokens()));
    EXPECT_FALSE(f.kv->reserve(a, 3 * f.kv->blockTokens()));
    // Tenant 1's partition is untouched by tenant 0's pressure.
    const KvSeqId b = f.kv->createSeq(1);
    EXPECT_TRUE(f.kv->reserve(b, 3 * f.kv->blockTokens()));
    EXPECT_EQ(f.kv->residentBlocks(0), 2u);
    EXPECT_EQ(f.kv->residentBlocks(1), 3u);
    f.kv->release(a);
    f.kv->release(b);
    f.kv->reconcile();
}

TEST(KvCacheDeathTest, DoubleReleaseAsserts)
{
    KvFixture f;
    const KvSeqId s = f.kv->createSeq(0);
    ASSERT_TRUE(f.kv->reserve(s, 1));
    f.kv->release(s);
    EXPECT_DEATH(f.kv->release(s), "");
}

// ------------------------------------------------------------------
// Batcher invariants
// ------------------------------------------------------------------

LlmRequest
makeReq(std::uint64_t id, double arrival_ns, unsigned prompt,
        unsigned output)
{
    LlmRequest r;
    r.id = id;
    r.tenant = 0;
    r.promptTokens = prompt;
    r.outputTokens = output;
    r.arrivalNs = arrival_ns;
    return r;
}

TEST(Batcher, JoinLeaveLedgerReconciles)
{
    KvFixture f;
    BatcherConfig cfg;
    cfg.maxBatch = 2;
    ContinuousBatcher b(cfg, *f.kv);
    ASSERT_TRUE(b.admit(makeReq(1, 0.0, 8, 2)));
    ASSERT_TRUE(b.admit(makeReq(2, 1.0, 8, 3)));
    ASSERT_TRUE(b.admit(makeReq(3, 2.0, 8, 1))); // waits for a slot

    std::vector<LlmRequest> joined;
    ASSERT_TRUE(b.beginIteration(10.0, joined));
    EXPECT_EQ(joined.size(), 2u); // maxBatch caps the join
    EXPECT_EQ(b.runningSize(), 2u);
    b.reconcile();

    // Drive to quiescence; ledger must reconcile at every boundary.
    double now = 10.0;
    while (!b.idle()) {
        b.finishIteration(now += 1.0);
        b.reconcile();
        b.beginIteration(now, joined);
    }
    EXPECT_EQ(b.joins(), 3u);
    EXPECT_EQ(b.leavesCompleted(), 3u);
    EXPECT_EQ(f.kv->liveSeqs(), 0u);
    f.kv->reconcile();
}

TEST(Batcher, AdmitOnceRefillsOnlyWhenEmpty)
{
    KvFixture f;
    BatcherConfig cfg;
    cfg.policy = BatchPolicy::AdmitOnce;
    cfg.maxBatch = 4;
    ContinuousBatcher b(cfg, *f.kv);
    ASSERT_TRUE(b.admit(makeReq(1, 0.0, 8, 3)));

    std::vector<LlmRequest> joined;
    ASSERT_TRUE(b.beginIteration(0.0, joined));
    EXPECT_EQ(b.runningSize(), 1u);

    // A later arrival must wait for the wave to drain.
    ASSERT_TRUE(b.admit(makeReq(2, 1.0, 8, 1)));
    b.finishIteration(1.0);
    ASSERT_TRUE(b.beginIteration(1.0, joined));
    EXPECT_TRUE(joined.empty());
    EXPECT_EQ(b.runningSize(), 1u);

    b.finishIteration(2.0);
    b.finishIteration(3.0); // request 1 done (3 tokens)
    ASSERT_TRUE(b.beginIteration(3.0, joined));
    EXPECT_EQ(joined.size(), 1u);
    EXPECT_EQ(joined[0].id, 2u);
    b.finishIteration(4.0);
    EXPECT_TRUE(b.idle());
    f.kv->reconcile();
}

TEST(Batcher, AdmitOncePadsWaveToLongestMember)
{
    KvFixture f;
    BatcherConfig cfg;
    cfg.policy = BatchPolicy::AdmitOnce;
    cfg.maxBatch = 4;
    ContinuousBatcher b(cfg, *f.kv);
    ASSERT_TRUE(b.admit(makeReq(1, 0.0, 8, 1)));
    ASSERT_TRUE(b.admit(makeReq(2, 1.0, 8, 4)));

    std::vector<LlmRequest> joined;
    ASSERT_TRUE(b.beginIteration(0.0, joined));
    EXPECT_EQ(b.costBatch(), 2u);
    b.finishIteration(1.0); // request 1 leaves...
    EXPECT_EQ(b.runningSize(), 1u);
    EXPECT_EQ(b.costBatch(), 2u); // ...but its slot stays padded
    ASSERT_TRUE(b.beginIteration(1.0, joined));
    EXPECT_EQ(b.costBatch(), 2u);
    for (double t = 2.0; !b.idle(); t += 1.0) {
        b.finishIteration(t);
        b.beginIteration(t, joined);
    }
    EXPECT_EQ(b.costBatch(), 0u); // wave drained, padding released
    f.kv->reconcile();
}

TEST(Batcher, ContinuousCostBatchTracksLiveBatch)
{
    KvFixture f;
    BatcherConfig cfg;
    cfg.maxBatch = 4;
    ContinuousBatcher b(cfg, *f.kv);
    ASSERT_TRUE(b.admit(makeReq(1, 0.0, 8, 1)));
    ASSERT_TRUE(b.admit(makeReq(2, 1.0, 8, 3)));
    std::vector<LlmRequest> joined;
    ASSERT_TRUE(b.beginIteration(0.0, joined));
    EXPECT_EQ(b.costBatch(), 2u);
    b.finishIteration(1.0); // request 1 leaves, slot reclaimed
    EXPECT_EQ(b.costBatch(), 1u);
    for (double t = 1.0; !b.idle(); t += 1.0) {
        b.beginIteration(t, joined);
        b.finishIteration(t + 0.5);
    }
    f.kv->reconcile();
}

TEST(Batcher, PreemptionIsStarvationFree)
{
    // A partition so tight that running requests fight for blocks:
    // sustained churn must still complete every request, and the oldest
    // must never lose its seat to a younger one.
    KvFixture f(1, /*rows_per_tenant=*/3 * 8); // few blocks
    const std::uint64_t cap = f.kv->capBlocks(0);
    ASSERT_GE(cap, 3u) << "fixture too tight to seat two requests";

    BatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxQueue = 64;
    ContinuousBatcher b(cfg, *f.kv);

    // Each request alone fits (feasibility), but two growing together
    // exhaust the pool and force evict-and-requeue.
    const unsigned bt = f.kv->blockTokens();
    const unsigned prompt = static_cast<unsigned>((cap / 2) * bt);
    const unsigned output = static_cast<unsigned>((cap / 2) * bt);
    ASSERT_LE(f.kv->blocksFor(prompt + output), cap);
    for (std::uint64_t id = 1; id <= 6; ++id)
        ASSERT_TRUE(b.admit(makeReq(id, static_cast<double>(id), prompt,
                                    output)));

    std::set<std::uint64_t> completed;
    double now = 10.0;
    std::vector<LlmRequest> joined;
    unsigned iterations = 0;
    while (!b.idle()) {
        ASSERT_LT(++iterations, 10'000u) << "batcher livelocked";
        ASSERT_TRUE(b.beginIteration(now, joined));
        // Starvation-freedom: the oldest unfinished request is seated.
        std::uint64_t oldest_waiting = ~0ULL;
        for (const LlmRequest &r : b.running())
            oldest_waiting = std::min(oldest_waiting, r.id);
        for (std::uint64_t id = 1; id <= 6; ++id)
            if (completed.count(id) == 0) {
                EXPECT_EQ(oldest_waiting, id)
                    << "oldest live request not running";
                break;
            }
        for (const LlmRequest &r : b.finishIteration(now += 1.0))
            completed.insert(r.id);
        b.reconcile();
        f.kv->reconcile();
    }
    EXPECT_EQ(completed.size(), 6u);
    EXPECT_GT(b.leavesPreempted(), 0u) << "fixture never forced churn";
    EXPECT_EQ(f.kv->liveSeqs(), 0u);
    EXPECT_EQ(f.kv->blocksAllocated(), f.kv->blocksFreed());
}

// ------------------------------------------------------------------
// Engine: deadlines, determinism, conservation
// ------------------------------------------------------------------

TEST(LlmEngine, CompletesAndReconciles)
{
    LlmEngine engine(smallConfig());
    ASSERT_TRUE(engine.submit(0, 0.0, 16, 4));
    ASSERT_TRUE(engine.submit(0, 100.0, 16, 8));
    engine.drain();
    const LlmReport r = engine.report();
    r.reconcile();
    EXPECT_EQ(r.total.submitted, 2u);
    EXPECT_EQ(r.total.completed, 2u);
    EXPECT_EQ(r.total.tokensOut, 12u);
    EXPECT_EQ(r.kvBlocksAllocated, r.kvBlocksFreed);
    EXPECT_GE(r.iterations, 8u); // at least one per output token
    const auto done = engine.takeCompletions();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GT(done[0].firstTokenNs, 0.0);
    EXPECT_GE(done[0].completeNs, done[0].firstTokenNs);
}

TEST(LlmEngine, RejectsInfeasibleRequests)
{
    LlmEngineConfig cfg = smallConfig();
    LlmEngine engine(cfg);
    // Beyond the context limit: cannot ever be seated.
    EXPECT_FALSE(
        engine.submit(0, 0.0, cfg.decoder.maxContextTokens, 1024));
    const LlmReport r = engine.report();
    EXPECT_EQ(r.total.rejected, 1u);
    r.reconcile();
}

TEST(LlmEngine, DeadlineShedsAndTimesOut)
{
    LlmEngineConfig cfg = smallConfig();
    cfg.tenants = {LlmTenantSpec{"slo", 1.0, 0}}; // 1 ns: hopeless
    LlmEngine engine(cfg);
    EXPECT_FALSE(engine.submit(0, 0.0, 16, 4)); // shed at admission
    LlmReport r = engine.report();
    EXPECT_EQ(r.total.shed, 1u);
    r.reconcile();

    // With admission shedding off, a doomed request queued behind a
    // long-running wave must time out instead of burning decode work.
    LlmEngineConfig cfg3 = smallConfig();
    cfg3.tenants = {LlmTenantSpec{"slo", 1.0, 0},
                    LlmTenantSpec{"free", 0.0, 0}};
    cfg3.deadlineAdmission = false;
    cfg3.batcher.policy = BatchPolicy::AdmitOnce; // no mid-wave joins
    LlmEngine e3(cfg3);
    ASSERT_TRUE(e3.submit(1, 0.0, 16, 64)); // seated immediately
    ASSERT_TRUE(e3.submit(0, 1.0, 16, 4));  // queued, deadline 2 ns
    e3.drain();
    LlmReport r3 = e3.report();
    EXPECT_EQ(r3.tenants[0].timedOut, 1u);
    EXPECT_EQ(r3.tenants[1].completed, 1u);
    r3.reconcile();
}

TEST(LlmEngine, SameSeedReplayIsBitIdentical)
{
    LlmTrafficSpec traffic;
    traffic.tenant = 0;
    traffic.ratePerSec = 2000.0;
    traffic.prompt = serve::LengthConfig{32.0, 0.5, 4, 128};
    traffic.output = serve::LengthConfig{16.0, 0.5, 2, 64};
    const auto arrivals = drawLlmTrace({traffic}, 50e6, 42);
    ASSERT_GT(arrivals.size(), 10u);

    const auto run = [&] {
        LlmEngine engine(smallConfig());
        return runOpenLoop(engine, arrivals);
    };
    const LlmReport a = run();
    const LlmReport b = run();
    EXPECT_EQ(a.total.completed, b.total.completed);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.total.tokensOut, b.total.tokensOut);
    EXPECT_EQ(a.kvBlocksAllocated, b.kvBlocksAllocated);
    EXPECT_EQ(a.horizonNs, b.horizonNs); // bit-identical virtual time
    EXPECT_EQ(a.total.e2e.p99Ns, b.total.e2e.p99Ns);
}

TEST(LlmEngine, FaultedIterationsWasteWorkButConserveKv)
{
    serve::ChaosConfig chaos_cfg;
    chaos_cfg.faultsPerSec = 2000.0; // virtual-seconds scale
    chaos_cfg.seed = 7;
    serve::ChaosCampaign chaos(chaos_cfg, 1);

    LlmEngine engine(smallConfig());
    engine.setFaultModel(&chaos);
    ASSERT_TRUE(engine.submit(0, 0.0, 16, 32));
    engine.drain();
    const LlmReport r = engine.report();
    r.reconcile();
    EXPECT_EQ(r.total.completed, 1u);
    // A faulted iteration re-runs the batch: iterations exceed tokens.
    EXPECT_GT(r.faultedIterations, 0u);
    EXPECT_GT(r.iterations, 32u);
    EXPECT_EQ(r.kvBlocksAllocated, r.kvBlocksFreed);
}

TEST(LlmEngine, ContinuousBeatsAdmitOnceTtftUnderConcurrency)
{
    // Two staggered requests: under AdmitOnce the second waits for the
    // whole first wave; under Continuous it joins the next iteration.
    const auto ttft = [](BatchPolicy policy) {
        LlmEngine engine(smallConfig(policy));
        EXPECT_TRUE(engine.submit(0, 0.0, 16, 64));
        EXPECT_TRUE(engine.submit(0, 1.0, 16, 4));
        engine.drain();
        double second_ttft = 0.0;
        for (const LlmRequest &r : engine.takeCompletions())
            if (r.arrivalNs > 0.0)
                second_ttft = r.firstTokenNs - r.arrivalNs;
        return second_ttft;
    };
    EXPECT_LT(ttft(BatchPolicy::Continuous),
              ttft(BatchPolicy::AdmitOnce));
}

} // namespace
} // namespace pimsim::llm
