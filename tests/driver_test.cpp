/**
 * @file
 * PIM driver row-allocator tests: status-returning allocation, free-list
 * coalescing, exhaustion-and-recover, and invalid-free rejection.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <vector>

#include "common/logging.h"
#include "stack/driver.h"

namespace pimsim {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1;
    c.geometry.rowsPerBank = 256;
    return c;
}

TEST(PimDriverAlloc, ZeroRowRequestSucceedsWithoutConsuming)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    const unsigned before = driver.freeRows();
    PimRowBlock block;
    EXPECT_EQ(driver.allocRows(0, block), PimStatus::Ok);
    EXPECT_EQ(block.numRows, 0u);
    EXPECT_EQ(driver.freeRows(), before);
    EXPECT_EQ(driver.freeBlock(block), PimStatus::Ok);
}

TEST(PimDriverAlloc, ExhaustionReturnsStatusAndRecoversAfterFree)
{
    setQuiet(true);
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    const unsigned capacity = driver.capacityRows();
    ASSERT_GT(capacity, 4u);

    // Exhaust the region in fixed-size blocks.
    std::vector<PimRowBlock> blocks;
    PimRowBlock b;
    while (driver.allocRows(4, b) == PimStatus::Ok)
        blocks.push_back(b);
    ASSERT_FALSE(blocks.empty());
    EXPECT_LT(driver.freeRows(), 4u);

    // Further requests fail with a status — no crash, no partial state.
    PimRowBlock overflow;
    EXPECT_EQ(driver.allocRows(4, overflow), PimStatus::OutOfRows);
    EXPECT_EQ(overflow.numRows, 0u);

    // Freeing one block makes exactly that much room again.
    const PimRowBlock released = blocks.back();
    blocks.pop_back();
    EXPECT_EQ(driver.freeBlock(released), PimStatus::Ok);
    PimRowBlock again;
    EXPECT_EQ(driver.allocRows(4, again), PimStatus::Ok);
    EXPECT_EQ(again.firstRow, released.firstRow); // first-fit reuses the hole
}

TEST(PimDriverAlloc, FreeCoalescesNeighbours)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    PimRowBlock a, b, c;
    ASSERT_EQ(driver.allocRows(8, a), PimStatus::Ok);
    ASSERT_EQ(driver.allocRows(8, b), PimStatus::Ok);
    ASSERT_EQ(driver.allocRows(8, c), PimStatus::Ok);
    const unsigned tail = driver.largestFreeExtent();

    // Free the outer blocks: two separate extents, neither adjacent to
    // the tail yet (b still sits between them).
    EXPECT_EQ(driver.freeBlock(a), PimStatus::Ok);
    EXPECT_EQ(driver.freeBlock(c), PimStatus::Ok);
    EXPECT_EQ(driver.largestFreeExtent(), tail + 8);

    // Freeing the middle block merges everything into one extent.
    EXPECT_EQ(driver.freeBlock(b), PimStatus::Ok);
    EXPECT_EQ(driver.largestFreeExtent(), driver.capacityRows());
    EXPECT_EQ(driver.freeRows(), driver.capacityRows());
}

TEST(PimDriverAlloc, DoubleFreeAndForeignBlockAreRejected)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    PimRowBlock a;
    ASSERT_EQ(driver.allocRows(6, a), PimStatus::Ok);
    EXPECT_EQ(driver.freeBlock(a), PimStatus::Ok);
    EXPECT_EQ(driver.freeBlock(a), PimStatus::InvalidBlock);

    PimRowBlock bogus;
    bogus.firstRow = 100;
    bogus.numRows = 3;
    EXPECT_EQ(driver.freeBlock(bogus), PimStatus::InvalidBlock);
}

TEST(PimDriverAlloc, FirstFitSkipsTooSmallHoles)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    PimRowBlock a, b, c;
    ASSERT_EQ(driver.allocRows(2, a), PimStatus::Ok);
    ASSERT_EQ(driver.allocRows(8, b), PimStatus::Ok);
    ASSERT_EQ(driver.allocRows(2, c), PimStatus::Ok);
    ASSERT_EQ(driver.freeBlock(b), PimStatus::Ok);

    // A request larger than the hole must come from the tail.
    PimRowBlock big;
    ASSERT_EQ(driver.allocRows(16, big), PimStatus::Ok);
    EXPECT_GE(big.firstRow, c.firstRow + c.numRows);

    // A request that fits the hole lands in it.
    PimRowBlock small;
    ASSERT_EQ(driver.allocRows(8, small), PimStatus::Ok);
    EXPECT_EQ(small.firstRow, b.firstRow);
}

TEST(PimDriverAlloc, ResetReclaimsEverythingIncludingLiveBlocks)
{
    PimSystem sys(tinyConfig());
    PimDriver driver(sys);
    PimRowBlock a, b;
    ASSERT_EQ(driver.allocRows(10, a), PimStatus::Ok);
    ASSERT_EQ(driver.allocRows(10, b), PimStatus::Ok);
    driver.reset();
    EXPECT_EQ(driver.freeRows(), driver.capacityRows());
    // Blocks from before the reset are no longer valid.
    EXPECT_EQ(driver.freeBlock(a), PimStatus::InvalidBlock);
    // And the whole region is allocatable again in one piece.
    PimRowBlock all;
    EXPECT_EQ(driver.allocRows(driver.capacityRows(), all), PimStatus::Ok);
}

TEST(PimDriverAlloc, StatusNamesAreStable)
{
    EXPECT_STREQ(pimStatusName(PimStatus::Ok), "Ok");
    EXPECT_STREQ(pimStatusName(PimStatus::OutOfRows), "OutOfRows");
    EXPECT_STREQ(pimStatusName(PimStatus::InvalidBlock), "InvalidBlock");
}

TEST(PimDriverAlloc, StatusNamesAreExhaustiveAndDistinct)
{
    // Every enumerator maps to a real name (never the "?" fallback the
    // switch leaves for out-of-range values) and no two names collide —
    // log lines stay unambiguous when new statuses are added.
    const PimStatus all[] = {PimStatus::Ok, PimStatus::OutOfRows,
                             PimStatus::InvalidBlock};
    for (std::size_t i = 0; i < std::size(all); ++i) {
        const char *name = pimStatusName(all[i]);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?");
        EXPECT_GT(std::strlen(name), 0u);
        for (std::size_t j = i + 1; j < std::size(all); ++j)
            EXPECT_STRNE(name, pimStatusName(all[j]));
    }
}

TEST(PimDriverPartition, ConfinesAllocationsToItsRowRange)
{
    PimSystem sys(tinyConfig());
    PimDriver whole(sys);
    const unsigned total = whole.capacityRows();
    ASSERT_GE(total, 8u);

    PimDriver low(sys, 0, total / 2);
    PimDriver high(sys, total / 2, total - total / 2);
    EXPECT_EQ(low.capacityRows() + high.capacityRows(), total);
    EXPECT_EQ(high.baseRow(), total / 2);

    PimRowBlock a{};
    ASSERT_EQ(low.allocRows(low.capacityRows(), a), PimStatus::Ok);
    EXPECT_EQ(a.firstRow, 0u);
    PimRowBlock b{};
    EXPECT_EQ(low.allocRows(1, b), PimStatus::OutOfRows);

    // The sibling partition is unaffected and stays in its own range.
    ASSERT_EQ(high.allocRows(4, b), PimStatus::Ok);
    EXPECT_GE(b.firstRow, total / 2);
    EXPECT_EQ(high.freeRows(), high.capacityRows() - 4);

    // reset() restores the partition, not the whole region.
    high.reset();
    EXPECT_EQ(high.freeRows(), high.capacityRows());
    EXPECT_EQ(high.largestFreeExtent(), high.capacityRows());
}

TEST(PimDriverPartition, OutOfRangeRequestsAreClamped)
{
    PimSystem sys(tinyConfig());
    PimDriver whole(sys);
    const unsigned total = whole.capacityRows();

    // A span reaching past the PIM region is clamped to it.
    PimDriver tail(sys, total - 2, 100);
    EXPECT_EQ(tail.capacityRows(), 2u);

    // A base beyond the region yields an empty (always-exhausted)
    // partition rather than touching reserved config rows.
    PimDriver empty(sys, total + 10, 5);
    EXPECT_EQ(empty.capacityRows(), 0u);
    PimRowBlock block{};
    EXPECT_EQ(empty.allocRows(1, block), PimStatus::OutOfRows);
}

} // namespace
} // namespace pimsim
