/**
 * @file
 * Serving-path resilience tests: retry backoff, circuit breakers,
 * chaos campaigns, deadlines, and the accounting invariant that every
 * submitted request ends in exactly one terminal state.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "serve/chaos.h"
#include "serve/load_gen.h"
#include "serve/resilience.h"
#include "serve/serving_engine.h"

namespace pimsim::serve {
namespace {

SystemConfig
smallSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 channels keeps tests fast
    c.geometry.rowsPerBank = 512;
    return c;
}

/** One small FC layer: a real PIM GEMV, but cheap to simulate. */
AppSpec
tinyApp(const std::string &name, unsigned dim = 256)
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = dim;
    fc.input = dim;
    fc.steps = 1;
    fc.pimEligible = true;

    AppSpec app;
    app.name = name;
    app.layers = {fc};
    return app;
}

/** Deterministic fault model: every PIM batch before `until_ns` fails. */
class FailUntil : public FaultModel
{
  public:
    explicit FailUntil(double until_ns) : untilNs_(until_ns) {}

    unsigned faultEvents(unsigned, double start_ns, double) override
    {
        return start_ns < untilNs_ ? 1u : 0u;
    }

  private:
    double untilNs_;
};

// ------------------------------------------------------------------
// Retry policy
// ------------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps)
{
    RetryPolicy policy;
    policy.baseBackoffNs = 100.0;
    policy.maxBackoffNs = 500.0;
    policy.jitterFrac = 0.0;
    Rng rng(1);

    EXPECT_DOUBLE_EQ(policy.backoffNs(1, rng), 100.0);
    EXPECT_DOUBLE_EQ(policy.backoffNs(2, rng), 200.0);
    EXPECT_DOUBLE_EQ(policy.backoffNs(3, rng), 400.0);
    EXPECT_DOUBLE_EQ(policy.backoffNs(4, rng), 500.0); // capped
    EXPECT_DOUBLE_EQ(policy.backoffNs(10, rng), 500.0);
}

TEST(RetryPolicy, JitterStaysInBandAndReplays)
{
    RetryPolicy policy;
    policy.baseBackoffNs = 1000.0;
    policy.maxBackoffNs = 1e9;
    policy.jitterFrac = 0.25;

    Rng a(42), b(42);
    for (unsigned retry = 1; retry <= 8; ++retry) {
        const double base = std::min(1000.0 * std::pow(2.0, retry - 1.0),
                                     policy.maxBackoffNs);
        const double da = policy.backoffNs(retry, a);
        EXPECT_GE(da, base * 0.75);
        EXPECT_LE(da, base * 1.25);
        EXPECT_DOUBLE_EQ(da, policy.backoffNs(retry, b));
    }
}

TEST(RetryPolicy, MaxJitterNeverSchedulesIntoThePast)
{
    // Regression: the delay is clamped to >= 0 even at the extreme
    // jitterFrac = 1, where an unlucky draw lands on the band's floor.
    RetryPolicy policy;
    policy.baseBackoffNs = 1000.0;
    policy.maxBackoffNs = 1e9;
    policy.jitterFrac = 1.0;

    Rng rng(7);
    for (unsigned retry = 1; retry <= 6; ++retry) {
        for (int i = 0; i < 10000; ++i) {
            const double d = policy.backoffNs(retry, rng);
            EXPECT_GE(d, 0.0);
            // Equal jitter, not full jitter: the band is centred on the
            // exponential delay, [base*(1-j), base*(1+j)).
            const double base =
                std::min(1000.0 * std::pow(2.0, retry - 1.0),
                         policy.maxBackoffNs);
            EXPECT_LE(d, base * 2.0);
        }
    }
}

TEST(RetryPolicy, ValidateAcceptsSaneConfigs)
{
    RetryPolicy policy; // defaults
    policy.validate();
    policy.jitterFrac = 0.0;
    policy.validate();
    policy.jitterFrac = 1.0;
    policy.validate();
}

TEST(RetryPolicyDeathTest, ValidateRejectsOutOfRangeJitter)
{
    RetryPolicy policy;
    policy.jitterFrac = 1.5;
    EXPECT_DEATH(policy.validate(), "jitterFrac");
    policy.jitterFrac = -0.1;
    EXPECT_DEATH(policy.validate(), "jitterFrac");
}

TEST(RetryPolicyDeathTest, ValidateRejectsNegativeBackoffs)
{
    RetryPolicy policy;
    policy.baseBackoffNs = -1.0;
    EXPECT_DEATH(policy.validate(), "baseBackoffNs");
    policy.baseBackoffNs = 50'000.0;
    policy.maxBackoffNs = -1.0;
    EXPECT_DEATH(policy.validate(), "maxBackoffNs");
}

// ------------------------------------------------------------------
// Circuit breaker
// ------------------------------------------------------------------

BreakerConfig
fastBreaker()
{
    BreakerConfig config;
    config.enabled = true;
    config.window = 8;
    config.minSamples = 4;
    config.errorThreshold = 0.5;
    config.openNs = 1000.0;
    return config;
}

TEST(CircuitBreaker, TripsAtErrorThreshold)
{
    CircuitBreaker breaker(fastBreaker());
    EXPECT_EQ(breaker.state(), BreakerState::Closed);

    // Three failures among three successes: below minSamples at first,
    // then exactly at the 50% threshold on the 6th sample... the trip
    // happens at the first window meeting both conditions.
    breaker.record(true, 0.0);
    breaker.record(true, 1.0);
    breaker.record(false, 2.0);
    EXPECT_EQ(breaker.state(), BreakerState::Closed); // only 3 samples
    breaker.record(false, 3.0);
    EXPECT_EQ(breaker.state(), BreakerState::Open); // 2/4 errors = 50%
    EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreaker, OpenRoutesToHostUntilCooldown)
{
    CircuitBreaker breaker(fastBreaker());
    for (unsigned i = 0; i < 4; ++i)
        breaker.record(false, static_cast<double>(i));
    ASSERT_EQ(breaker.state(), BreakerState::Open);

    EXPECT_EQ(breaker.route(10.0), DispatchRoute::Host);
    EXPECT_EQ(breaker.route(1002.9), DispatchRoute::Host);

    // Cooldown expires (tripped at t=3, openNs=1000): one probe only.
    EXPECT_EQ(breaker.route(1003.0), DispatchRoute::PimProbe);
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    EXPECT_EQ(breaker.route(1004.0), DispatchRoute::Host);
    EXPECT_EQ(breaker.probes(), 1u);
}

TEST(CircuitBreaker, ProbeVerdictDecides)
{
    CircuitBreaker ok(fastBreaker()), bad(fastBreaker());
    for (unsigned i = 0; i < 4; ++i) {
        ok.record(false, static_cast<double>(i));
        bad.record(false, static_cast<double>(i));
    }
    (void)ok.route(2000.0);
    (void)bad.route(2000.0);
    ASSERT_EQ(ok.state(), BreakerState::HalfOpen);

    ok.record(true, 2100.0);
    EXPECT_EQ(ok.state(), BreakerState::Closed);
    EXPECT_EQ(ok.closes(), 1u);
    // A healed breaker needs a fresh window to trip again.
    ok.record(false, 2200.0);
    EXPECT_EQ(ok.state(), BreakerState::Closed);

    bad.record(false, 2100.0);
    EXPECT_EQ(bad.state(), BreakerState::Open);
    EXPECT_EQ(bad.opens(), 2u);
    // The second cooldown restarts from the re-trip.
    EXPECT_EQ(bad.route(2500.0), DispatchRoute::Host);
    EXPECT_EQ(bad.route(3100.0), DispatchRoute::PimProbe);
}

TEST(CircuitBreaker, HalfOpenProbeExactlyAtWindowBoundary)
{
    // The open window is a half-open interval [trip, trip + openNs): a
    // request landing exactly at the boundary instant gets the probe,
    // one an epsilon earlier still routes to the host. A probe verdict
    // recorded at that same instant is honoured, and a failed probe
    // restarts the cooldown from the boundary itself.
    CircuitBreaker breaker(fastBreaker()); // openNs = 1000
    for (unsigned i = 0; i < 4; ++i)
        breaker.record(false, static_cast<double>(i)); // trips at t=3
    ASSERT_EQ(breaker.state(), BreakerState::Open);

    EXPECT_EQ(breaker.route(std::nextafter(1003.0, 0.0)),
              DispatchRoute::Host);
    EXPECT_EQ(breaker.route(1003.0), DispatchRoute::PimProbe);
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);

    // Probe fails at the very boundary instant: re-open, cooldown
    // restarting from 1003, so the next probe is at exactly 2003.
    breaker.record(false, 1003.0);
    ASSERT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.route(std::nextafter(2003.0, 0.0)),
              DispatchRoute::Host);
    EXPECT_EQ(breaker.route(2003.0), DispatchRoute::PimProbe);

    // Probe succeeds at the boundary: the breaker closes and starts a
    // fresh window (minSamples gate back in force before re-tripping).
    breaker.record(true, 2003.0);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    breaker.record(false, 2004.0);
    breaker.record(false, 2005.0);
    breaker.record(false, 2006.0);
    EXPECT_EQ(breaker.state(), BreakerState::Closed); // 3 < minSamples
    breaker.record(false, 2007.0);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 3u);
}

TEST(CircuitBreaker, DisabledNeverTrips)
{
    CircuitBreaker breaker; // default config: disabled
    for (unsigned i = 0; i < 100; ++i)
        breaker.record(false, static_cast<double>(i));
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.route(1000.0), DispatchRoute::Pim);
}

TEST(CircuitBreaker, StateNamesAreDistinct)
{
    EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen), "half-open");
}

// ------------------------------------------------------------------
// Chaos campaign
// ------------------------------------------------------------------

TEST(ChaosCampaign, ZeroRateGeneratesNothing)
{
    ChaosConfig config;
    ChaosCampaign chaos(config, 4);
    EXPECT_EQ(chaos.faultEvents(0, 0.0, 1e12), 0u);
    EXPECT_EQ(chaos.eventsGenerated(), 0u);
}

TEST(ChaosCampaign, RateMatchesPoissonExpectation)
{
    ChaosConfig config;
    config.faultsPerSec = 1000.0; // expect ~1000 events in 1 s
    config.seed = 7;
    ChaosCampaign chaos(config, 1);
    const unsigned n = chaos.faultEvents(0, 0.0, 1e9);
    EXPECT_GT(n, 850u);
    EXPECT_LT(n, 1150u);
}

TEST(ChaosCampaign, BurstWindowRaisesTheRate)
{
    ChaosConfig config;
    config.faultsPerSec = 100.0;
    config.burstStartNs = 1e9;
    config.burstEndNs = 2e9;
    config.burstFaultsPerSec = 10'000.0;
    config.seed = 11;
    ChaosCampaign chaos(config, 1);

    const unsigned before = chaos.faultEvents(0, 0.0, 1e9);
    const unsigned during = chaos.faultEvents(0, 1e9, 2e9);
    const unsigned after = chaos.faultEvents(0, 2e9, 3e9);
    EXPECT_LT(before, 200u);
    EXPECT_GT(during, 9000u);
    EXPECT_LT(during, 11000u);
    EXPECT_LT(after, 200u);
}

TEST(ChaosCampaign, ShardsAreDecorrelatedButReplayable)
{
    ChaosConfig config;
    config.faultsPerSec = 500.0;
    config.seed = 13;
    ChaosCampaign a(config, 2), b(config, 2);
    (void)a.faultEvents(0, 0.0, 1e9);
    (void)a.faultEvents(1, 0.0, 1e9);
    (void)b.faultEvents(0, 0.0, 1e9);
    (void)b.faultEvents(1, 0.0, 1e9);

    EXPECT_EQ(a.events(0), b.events(0)); // replayable
    EXPECT_EQ(a.events(1), b.events(1));
    EXPECT_NE(a.events(0), a.events(1)); // decorrelated
}

TEST(ChaosCampaign, QueryOrderDoesNotChangeTheStream)
{
    ChaosConfig config;
    config.faultsPerSec = 2000.0;
    config.seed = 17;
    ChaosCampaign once(config, 1), split(config, 1);
    const unsigned whole = once.faultEvents(0, 0.0, 1e9);
    unsigned sum = 0;
    for (unsigned i = 0; i < 10; ++i)
        sum += split.faultEvents(0, i * 1e8, (i + 1) * 1e8);
    EXPECT_EQ(whole, sum);
}

// ------------------------------------------------------------------
// Engine integration
// ------------------------------------------------------------------

ServeConfig
baseConfig(double deadline_ns = 0.0)
{
    ServeConfig config;
    config.system = smallSystem();
    TenantSpec tenant;
    tenant.name = "t0";
    tenant.app = tinyApp("tiny");
    tenant.deadlineNs = deadline_ns;
    config.tenants = {tenant};
    return config;
}

TEST(Resilience, FaultFreeRunMatchesBaseline)
{
    // A configured-but-unstruck resilience layer must not change the
    // outcome: no retries, no fallbacks, no sheds.
    ServeConfig config = baseConfig();
    config.breaker = fastBreaker();
    ServingEngine engine(config);
    ChaosConfig chaos_config; // zero rates
    ChaosCampaign chaos(chaos_config, engine.plan().numShards());
    engine.setFaultModel(&chaos);

    for (unsigned i = 0; i < 20; ++i)
        engine.submit(0, i * 1000.0);
    engine.drain();

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.completed, 20u);
    EXPECT_EQ(report.total.retries, 0u);
    EXPECT_EQ(report.total.fallbackCompleted, 0u);
    EXPECT_EQ(report.total.shed, 0u);
    EXPECT_EQ(report.total.timedOut, 0u);
    EXPECT_EQ(report.shards[0].opens, 0u);
}

TEST(Resilience, RetryRecoversFromTransientFault)
{
    ServeConfig config = baseConfig();
    config.retry.maxRetries = 3;
    config.retry.baseBackoffNs = 10'000.0;
    config.retry.jitterFrac = 0.0;
    ServingEngine engine(config);
    // The first attempt of the first batch fails; its retry (and all
    // later batches) succeed.
    FailUntil faults(1.0);
    engine.setFaultModel(&faults);

    engine.submit(0, 0.0);
    engine.drain();

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.completed, 1u);
    EXPECT_EQ(report.total.retries, 1u);
    EXPECT_EQ(report.total.fallbackCompleted, 0u);
    // The retried request's end-to-end latency covers both attempts
    // plus the backoff.
    EXPECT_GT(report.tenants[0].e2e.maxNs,
              report.tenants[0].service.maxNs);
}

TEST(Resilience, RetryBudgetExhaustionFallsBackToHost)
{
    ServeConfig config = baseConfig();
    config.retry.maxRetries = 2;
    config.retry.baseBackoffNs = 1000.0;
    config.retry.jitterFrac = 0.0;
    ServingEngine engine(config);
    FailUntil faults(1e15); // PIM never succeeds
    engine.setFaultModel(&faults);

    engine.submit(0, 0.0);
    engine.drain();

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.completed, 1u);
    EXPECT_EQ(report.total.fallbackCompleted, 1u);
    EXPECT_EQ(report.total.retries, 2u); // budget fully spent
    EXPECT_EQ(report.shards[0].batchFaults, 3u); // 1 try + 2 retries
}

TEST(Resilience, BreakerTripsRoutesToHostAndRecloses)
{
    // The issue's acceptance scenario: a 100%-failing shard trips the
    // breaker within the window; tenants keep completing via host
    // fallback with zero errors surfaced; once faults stop, a half-open
    // probe re-closes the breaker.
    ServeConfig config = baseConfig();
    config.retry.maxRetries = 0; // isolate the breaker path
    config.breaker = fastBreaker();
    config.breaker.minSamples = 2;
    config.breaker.window = 4;
    config.breaker.openNs = 50'000.0;
    ServingEngine engine(config);
    const double heal_ns = 1e6;
    FailUntil faults(heal_ns);
    engine.setFaultModel(&faults);

    unsigned submitted = 0;
    for (double t = 0.0; t < 4e6; t += 20'000.0, ++submitted)
        engine.submit(0, t);
    engine.drain();

    const ServeReport report = engine.report();
    // Every request completed; none were lost to the faulting shard.
    EXPECT_EQ(report.total.completed, submitted);
    EXPECT_EQ(report.total.timedOut, 0u);
    EXPECT_EQ(report.total.shed, 0u);
    // The breaker tripped and some traffic was served by the host.
    EXPECT_GE(report.shards[0].opens, 1u);
    EXPECT_GT(report.total.fallbackCompleted, 0u);
    // After the fault clears, a probe succeeded and the breaker closed
    // again; late batches ran on PIM.
    EXPECT_EQ(report.shards[0].state, BreakerState::Closed);
    EXPECT_GE(report.shards[0].closes, 1u);
    EXPECT_LT(report.total.fallbackCompleted, report.total.completed);
}

TEST(Resilience, DeadlineShedsUnreachableWork)
{
    // Deadline far below one service time: every request is shed at
    // admission and none occupy the device.
    ServeConfig config = baseConfig(10.0);
    ServingEngine engine(config);

    for (unsigned i = 0; i < 5; ++i)
        EXPECT_FALSE(engine.submit(0, i * 100.0));
    engine.drain();

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.shed, 5u);
    EXPECT_EQ(report.total.completed, 0u);
    EXPECT_EQ(report.total.batches, 0u);
}

TEST(Resilience, QueuedRequestsTimeOutAtTheirDeadline)
{
    // Admission is optimistic (disabled here) and the queue is deep:
    // requests that outlive their deadline behind a busy shard are
    // timed out, not served late.
    ServeConfig config = baseConfig(1.0);
    config.deadlineAdmission = false;
    ServingEngine engine(config);

    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(engine.submit(0, 0.0));
    engine.drain();

    const ServeReport report = engine.report();
    // With a 1 ns deadline nothing can finish in time; whatever was
    // dispatched immediately completes late (SLO violation), the rest
    // expire in the queue.
    EXPECT_EQ(report.total.completed + report.total.timedOut, 4u);
    EXPECT_GT(report.total.timedOut, 0u);
    EXPECT_EQ(report.total.sloViolations, report.total.completed);
}

TEST(Resilience, DeadlineEqualToServiceTimeIsAdmittedAndMet)
{
    // The admission estimate sheds strictly-unreachable deadlines
    // (estimate > deadline) and the SLO check flags strictly-late
    // completions (complete > deadline). A deadline exactly equal to
    // the batch-1 service time threads both boundaries: an idle engine
    // admits it and the completion, landing at the deadline instant,
    // is not a violation. An epsilon less and it is shed instead.
    auto cache = std::make_shared<ServiceTimeCache>();
    ShardServiceModel probe(smallSystem(), 16, cache);
    const double svc1_ns = probe.serviceNs(tinyApp("tiny"), 1);
    ASSERT_GT(svc1_ns, 0.0);

    ServeConfig config = baseConfig(svc1_ns);
    config.timingCache = cache;
    ServingEngine exact(config);
    EXPECT_TRUE(exact.submit(0, 0.0));
    exact.drain();
    const ServeReport met = exact.report();
    EXPECT_EQ(met.total.completed, 1u);
    EXPECT_EQ(met.total.shed, 0u);
    EXPECT_EQ(met.total.sloViolations, 0u);
    EXPECT_EQ(met.total.e2e.maxNs, svc1_ns); // bit-exact boundary

    config.tenants[0].deadlineNs = std::nextafter(svc1_ns, 0.0);
    ServingEngine tight(config);
    EXPECT_FALSE(tight.submit(0, 0.0));
    tight.drain();
    EXPECT_EQ(tight.report().total.shed, 1u);
    EXPECT_EQ(tight.report().total.completed, 0u);
}

TEST(Resilience, RetryBudgetExhaustionRacesQueueTimeoutExpiry)
{
    // Two requests arrive together on a always-failing shard. The
    // first is dispatched immediately; its deadline passes mid-service,
    // then its retry budget burns down through backoffs and it finally
    // completes on the host path, late (an SLO violation, never a
    // queue timeout: dispatch removes it from deadline-expiry reach).
    // The second stays queued behind it and its deadline event fires
    // during the first's backoff window (the race). Each request must
    // land in exactly one terminal state.
    auto cache = std::make_shared<ServiceTimeCache>();
    ShardServiceModel probe(smallSystem(), 16, cache);
    const double svc1_ns = probe.serviceNs(tinyApp("tiny"), 1);

    ServeConfig config = baseConfig(0.5 * svc1_ns);
    config.timingCache = cache;
    config.deadlineAdmission = false; // optimistic: let the race happen
    config.sched.maxBatch = 1;        // keep the second request queued
    config.retry.maxRetries = 2;
    config.retry.baseBackoffNs = 5.0 * svc1_ns;
    config.retry.jitterFrac = 0.0;
    ServingEngine engine(config);
    FailUntil faults(1e15); // PIM never succeeds
    engine.setFaultModel(&faults);

    EXPECT_TRUE(engine.submit(0, 0.0));
    EXPECT_TRUE(engine.submit(0, 0.0));
    engine.drain();

    const ServeReport report = engine.report();
    report.reconcile();
    EXPECT_EQ(report.total.submitted, 2u);
    EXPECT_EQ(report.total.completed, 1u);
    EXPECT_EQ(report.total.timedOut, 1u);
    EXPECT_EQ(report.total.retries, 2u); // budget fully spent
    EXPECT_EQ(report.total.fallbackCompleted, 1u);
    EXPECT_EQ(report.total.sloViolations, 1u);
    EXPECT_EQ(report.shards[0].batchFaults, 3u); // 1 try + 2 retries
}

TEST(Resilience, ChaosAccountingReconciles)
{
    // The PR's chaos regression: under a hostile fault process with
    // deadlines, retries and breakers all active, every submitted
    // request ends in exactly one terminal state and the report's
    // counters reconcile.
    ServeConfig config = baseConfig(5e6);
    config.queue.depth = 8;
    config.sched.policy = SchedPolicy::BatchTimeout;
    config.sched.maxBatch = 4;
    config.sched.batchTimeoutNs = 50'000.0;
    config.retry.maxRetries = 1;
    config.retry.baseBackoffNs = 20'000.0;
    config.breaker = fastBreaker();
    config.breaker.openNs = 200'000.0;
    ServingEngine engine(config);

    ChaosConfig chaos_config;
    chaos_config.faultsPerSec = 200'000.0; // ~1 fault per 5 us
    chaos_config.seed = 23;
    ChaosCampaign chaos(chaos_config, engine.plan().numShards());
    engine.setFaultModel(&chaos);

    const auto arrivals =
        poissonArrivals({{0, 100'000.0}}, 2e6, 0x5eed);
    for (const Arrival &a : arrivals)
        engine.submit(a.tenant, a.ns);
    engine.drain();
    const auto submitted = static_cast<unsigned>(arrivals.size());

    const ServeReport report = engine.report();
    ASSERT_GT(submitted, 0u);
    EXPECT_EQ(report.total.submitted, submitted);
    // Terminal states partition the submissions.
    EXPECT_EQ(report.total.submitted,
              report.total.completed + report.total.shed +
                  report.total.timedOut + report.total.rejected);
    // Admitted requests either completed or timed out in the queue.
    EXPECT_EQ(report.total.admitted,
              report.total.completed + report.total.timedOut);
    // Fallback completions are a subset of completions.
    EXPECT_LE(report.total.fallbackCompleted, report.total.completed);
    // The fault process actually struck.
    std::uint64_t batch_faults = 0;
    for (const auto &s : report.shards)
        batch_faults += s.batchFaults;
    EXPECT_GT(batch_faults, 0u);
}

TEST(Resilience, ChaosReplayIsBitIdentical)
{
    // Same seeds + same config => two engines replay the identical
    // ServeReport, chaos counters included.
    auto run = [] {
        ServeConfig config;
        config.system = smallSystem();
        TenantSpec a, b;
        a.name = "a";
        a.app = tinyApp("tiny");
        a.deadlineNs = 4e6;
        b.name = "b";
        b.app = tinyApp("tiny2", 512);
        config.tenants = {a, b};
        config.shardChannels = true;
        config.retry.maxRetries = 2;
        config.breaker = fastBreaker();
        ServingEngine engine(config);
        ChaosConfig chaos_config;
        chaos_config.faultsPerSec = 100'000.0;
        chaos_config.seed = 29;
        ChaosCampaign chaos(chaos_config, engine.plan().numShards());
        engine.setFaultModel(&chaos);
        const auto arrivals = poissonArrivals(
            {{0, 60'000.0}, {1, 40'000.0}}, 1.5e6, 0xfeed);
        return runOpenLoop(engine, arrivals);
    };

    const ServeReport x = run();
    const ServeReport y = run();

    EXPECT_EQ(x.horizonNs, y.horizonNs);
    ASSERT_EQ(x.tenants.size(), y.tenants.size());
    for (std::size_t t = 0; t < x.tenants.size(); ++t) {
        const TenantReport &p = x.tenants[t];
        const TenantReport &q = y.tenants[t];
        EXPECT_EQ(p.submitted, q.submitted);
        EXPECT_EQ(p.completed, q.completed);
        EXPECT_EQ(p.shed, q.shed);
        EXPECT_EQ(p.timedOut, q.timedOut);
        EXPECT_EQ(p.retries, q.retries);
        EXPECT_EQ(p.fallbackCompleted, q.fallbackCompleted);
        EXPECT_EQ(p.sloViolations, q.sloViolations);
        EXPECT_EQ(p.servedNs, q.servedNs); // bit-identical doubles
        EXPECT_EQ(p.e2e.meanNs, q.e2e.meanNs);
        EXPECT_EQ(p.e2e.p99Ns, q.e2e.p99Ns);
    }
    ASSERT_EQ(x.shards.size(), y.shards.size());
    for (std::size_t s = 0; s < x.shards.size(); ++s) {
        EXPECT_EQ(x.shards[s].opens, y.shards[s].opens);
        EXPECT_EQ(x.shards[s].closes, y.shards[s].closes);
        EXPECT_EQ(x.shards[s].probes, y.shards[s].probes);
        EXPECT_EQ(x.shards[s].batchFaults, y.shards[s].batchFaults);
        EXPECT_EQ(x.shards[s].state, y.shards[s].state);
    }
}

} // namespace
} // namespace pimsim::serve
