/**
 * @file
 * System assembly tests: configuration derivation (Tables IV/V), the
 * event loop's time-skipping, multi-channel concurrency, and stat
 * aggregation.
 */

#include <gtest/gtest.h>

#include "sim/system.h"

namespace pimsim {
namespace {

TEST(SystemConfig, PaperBandwidths)
{
    const SystemConfig c = SystemConfig::pimHbmSystem();
    EXPECT_EQ(c.numChannels(), 64u);
    EXPECT_NEAR(c.offChipBandwidthGBs(), 1228.8, 1.0);
    EXPECT_NEAR(c.onChipBandwidthGBs(), 4915.2, 5.0);
    EXPECT_NEAR(c.onChipBandwidthGBs() / c.offChipBandwidthGBs(), 4.0,
                0.01);
}

TEST(SystemConfig, HbmSystemHasNoPim)
{
    PimSystem sys(SystemConfig::hbmSystem());
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch)
        EXPECT_EQ(sys.controller(ch).pim(), nullptr);
}

TEST(SystemConfig, PimSystemHasUnits)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        ASSERT_NE(sys.controller(ch).pim(), nullptr);
        EXPECT_EQ(sys.controller(ch).pim()->numUnits(), 8u);
    }
}

TEST(SystemConfig, X4SystemQuadruplesChannels)
{
    EXPECT_EQ(SystemConfig::hbmX4System().numChannels(), 256u);
}

TEST(PimSystemLoop, IdleSystemDoesNotStep)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    EXPECT_FALSE(sys.step());
    EXPECT_TRUE(sys.allIdle());
    EXPECT_EQ(sys.now(), 0u);
}

TEST(PimSystemLoop, AdvanceMovesTimeExactly)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    sys.advance(1234);
    EXPECT_EQ(sys.now(), 1234u);
    EXPECT_NEAR(sys.nowNs(), 1234 * cfg.timing.tCKns, 1e-9);
}

TEST(PimSystemLoop, StepSkipsDeadTime)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    MemRequest r;
    r.type = RequestType::Read;
    r.coord.row = 3;
    ASSERT_TRUE(sys.tryEnqueue(0, r));
    // Run to completion; the number of step() calls must be far below
    // the elapsed cycles (the loop jumps over tRCD/tCL gaps).
    unsigned steps = 0;
    while (sys.step())
        ++steps;
    EXPECT_GT(sys.now(), 20u); // ACT + tRCD + RD + tCL elapsed
    EXPECT_LT(steps, 15u);
}

TEST(PimSystemLoop, ChannelsProgressIndependently)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    MemRequest r;
    r.type = RequestType::Read;
    r.coord.row = 1;
    ASSERT_TRUE(sys.tryEnqueue(0, r));
    r.coord.row = 2;
    r.id = 1;
    ASSERT_TRUE(sys.tryEnqueue(5, r));
    sys.runUntilIdle();
    EXPECT_EQ(sys.drain(0).size(), 1u);
    EXPECT_EQ(sys.drain(5).size(), 1u);
}

TEST(PimSystemLoop, EnqueueAfterIdleRestartsClock)
{
    // Regression: once a channel drains, its next-tick hint is cleared
    // (kNoCycle). A later enqueue must re-arm it, or step() would treat
    // the channel as forever idle and never serve the new request.
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    MemRequest r;
    r.type = RequestType::Read;
    r.coord.row = 1;
    ASSERT_TRUE(sys.tryEnqueue(0, r));
    sys.runUntilIdle();
    ASSERT_TRUE(sys.allIdle());
    const Cycle before = sys.now();

    r.coord.row = 2;
    r.id = 1;
    ASSERT_TRUE(sys.tryEnqueue(0, r));
    EXPECT_TRUE(sys.step()); // clock restarted, work observed
    sys.runUntilIdle();
    EXPECT_GT(sys.now(), before);
    EXPECT_EQ(sys.drain(0).size(), 2u);
}

TEST(PimSystemLoopDeathTest, DirectControllerEnqueueTripsInvariant)
{
    // The event loop's invariant: a non-idle channel always has a live
    // next-tick hint. Bypassing PimSystem::tryEnqueue violates it, and
    // step() must fail loudly instead of silently never serving the
    // request.
    EXPECT_DEATH(
        {
            SystemConfig cfg = SystemConfig::hbmSystem();
            cfg.numStacks = 1;
            PimSystem sys(cfg);
            MemRequest r;
            r.type = RequestType::Read;
            r.coord.row = 1;
            // Drain once so channel 0's hint is actually cleared (a
            // fresh system still carries the initial hint of cycle 0).
            (void)sys.tryEnqueue(0, r);
            sys.runUntilIdle();
            r.id = 1;
            sys.controller(0).enqueue(r); // wrong: bypasses the hint
            sys.step();
        },
        "cleared next-tick hint");
}

TEST(PimSystemLoop, StatAggregationSums)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    for (unsigned ch = 0; ch < 4; ++ch) {
        MemRequest r;
        r.type = RequestType::Read;
        r.coord.row = 1;
        r.id = ch;
        ASSERT_TRUE(sys.tryEnqueue(ch, r));
    }
    sys.runUntilIdle();
    EXPECT_EQ(sys.totalChannelStat("rd"), 4u);
    EXPECT_EQ(sys.totalPimStat("pim.trigger"), 0u); // no PIM attached
}

} // namespace
} // namespace pimsim
