/**
 * @file
 * Reliability subsystem tests: the machine-check error log, deterministic
 * fault-injection campaigns, ECC scrubbing over simulated time, CRF
 * corruption surviving as a fault (not a crash), register-file fault
 * injection, and the runtime's retry / host-fallback recovery policy.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dram/ecc.h"
#include "dram/pseudo_channel.h"
#include "pim/pim_channel.h"
#include "reliability/fault_injector.h"
#include "reliability/mem_error.h"
#include "stack/blas.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

SystemConfig
reliableConfig()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1;
    c.geometry.rowsPerBank = 256;
    c.geometry.onDieEcc = true;
    return c;
}

// ---------- MemErrorLog ----------

TEST(MemErrorLog, CountsTotalsAndPerChannel)
{
    MemErrorLog log;
    MemErrorEvent e;
    e.severity = MemErrorEvent::Severity::Corrected;
    e.channel = 3;
    log.record(e);
    log.record(e);
    e.severity = MemErrorEvent::Severity::Uncorrectable;
    e.channel = 1;
    log.record(e);

    EXPECT_EQ(log.corrected(), 2u);
    EXPECT_EQ(log.uncorrectable(), 1u);
    EXPECT_EQ(log.correctedOn(3), 2u);
    EXPECT_EQ(log.correctedOn(1), 0u);
    EXPECT_EQ(log.uncorrectableOn(1), 1u);
    EXPECT_EQ(log.uncorrectableOn(7), 0u); // never seen
    EXPECT_EQ(log.recent().size(), 3u);

    log.clear();
    EXPECT_EQ(log.corrected(), 0u);
    EXPECT_EQ(log.uncorrectable(), 0u);
    EXPECT_TRUE(log.recent().empty());
}

TEST(MemErrorLog, EventRingIsBoundedButCountersAreNot)
{
    MemErrorLog log(4);
    MemErrorEvent e;
    for (unsigned i = 0; i < 10; ++i) {
        e.row = i;
        log.record(e);
    }
    EXPECT_EQ(log.corrected(), 10u);
    ASSERT_EQ(log.recent().size(), 4u);
    // Oldest events were evicted; the ring holds the last four.
    EXPECT_EQ(log.recent().front().row, 6u);
    EXPECT_EQ(log.recent().back().row, 9u);
}

TEST(MemErrorLog, HandlerFiresSynchronously)
{
    MemErrorLog log;
    unsigned seen = 0;
    log.setHandler([&](const MemErrorEvent &event) {
        ++seen;
        EXPECT_EQ(event.bank, 5u);
    });
    MemErrorEvent e;
    e.bank = 5;
    log.record(e);
    log.record(e);
    EXPECT_EQ(seen, 2u);
}

// ---------- error propagation: DataStore -> controller -> system log ----

TEST(ErrorPropagation, DemandReadFaultLandsInSystemLog)
{
    PimSystem sys(reliableConfig());
    DataStore &store = sys.controller(2).channel().dataStore();
    Burst data{};
    data.fill(0xa5);
    store.write(1, 9, 4, data);
    store.injectBitFlip(1, 9, 4, 33);

    EccStatus ecc = EccStatus::Ok;
    EXPECT_EQ(store.read(1, 9, 4, &ecc), data);
    EXPECT_EQ(ecc, EccStatus::Corrected);

    EXPECT_EQ(sys.errorLog().corrected(), 1u);
    EXPECT_EQ(sys.errorLog().correctedOn(2), 1u);
    ASSERT_EQ(sys.errorLog().recent().size(), 1u);
    const MemErrorEvent &event = sys.errorLog().recent().front();
    EXPECT_EQ(event.origin, MemErrorEvent::Origin::Access);
    EXPECT_EQ(event.channel, 2u);
    EXPECT_EQ(event.bank, 1u);
    EXPECT_EQ(event.row, 9u);
    EXPECT_EQ(event.col, 4u);
}

// ---------- scrubber ----------

TEST(Scrubber, RepairsPlantedFaultDuringIdleTime)
{
    SystemConfig cfg = reliableConfig();
    cfg.controller.scrubEnabled = true;
    cfg.controller.scrubInterval = 100;
    cfg.controller.scrubBurstsPerStep = 64;
    PimSystem sys(cfg);

    DataStore &store = sys.controller(0).channel().dataStore();
    Burst data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(3 * i + 1);
    store.write(0, 5, 3, data);
    store.injectBitFlip(0, 5, 3, 17);
    ASSERT_NE(store.readRaw(0, 5, 3), data); // fault is in the array

    // Idle time passes; the patrol scrubber sweeps the touched row.
    sys.advance(5000);

    EXPECT_EQ(store.readRaw(0, 5, 3), data); // repaired in the array
    EXPECT_GE(sys.totalCtrlStat("scrub.corrected"), 1u);
    EXPECT_GE(sys.errorLog().corrected(), 1u);
    bool scrub_event = false;
    for (const auto &event : sys.errorLog().recent())
        scrub_event |= event.origin == MemErrorEvent::Origin::Scrub;
    EXPECT_TRUE(scrub_event);

    // A later demand read sees clean data and raises nothing new.
    const std::uint64_t corrected = sys.errorLog().corrected();
    EccStatus ecc = EccStatus::Ok;
    EXPECT_EQ(store.read(0, 5, 3, &ecc), data);
    EXPECT_EQ(ecc, EccStatus::Ok);
    EXPECT_EQ(sys.errorLog().corrected(), corrected);
}

TEST(Scrubber, DisabledScrubberNeverRuns)
{
    SystemConfig cfg = reliableConfig();
    cfg.controller.scrubEnabled = false;
    PimSystem sys(cfg);
    DataStore &store = sys.controller(0).channel().dataStore();
    Burst data{};
    data.fill(0x11);
    store.write(0, 1, 0, data);
    store.injectBitFlip(0, 1, 0, 3);
    sys.advance(1000000);
    EXPECT_NE(store.readRaw(0, 1, 0), data); // fault still in the array
    EXPECT_EQ(sys.totalCtrlStat("scrub.bursts"), 0u);
}

// ---------- fault injector ----------

TEST(FaultInjector, SameSeedSameCampaign)
{
    setQuiet(true);
    auto run = [](std::uint64_t seed) {
        SystemConfig cfg = reliableConfig();
        cfg.controller.scrubEnabled = true;
        cfg.controller.scrubInterval = 500;
        PimSystem sys(cfg);
        PimBlas blas(sys);

        Rng data(7);
        Fp16Vector a(1024), b(1024), out;
        for (auto &v : a)
            v = data.nextFp16();
        for (auto &v : b)
            v = data.nextFp16();
        blas.add(a, b, out); // touch storage so DRAM faults have targets

        FaultRates rates;
        rates.dramTransient = 1.5;
        rates.dramStuck = 0.5;
        rates.dramBurst = 0.25;
        rates.pimGrf = 0.5;
        rates.pimSrf = 0.25;
        rates.pimCrf = 0.25;
        FaultInjector injector(sys, rates, seed);
        injector.runCampaign(1000, 20);

        struct Snapshot
        {
            FaultCounts counts;
            std::uint64_t corrected;
            std::uint64_t uncorrectable;
            std::uint64_t scrubbed;
        };
        return Snapshot{injector.counts(), sys.errorLog().corrected(),
                        sys.errorLog().uncorrectable(),
                        sys.totalCtrlStat("scrub.corrected")};
    };

    const auto first = run(0xfeed);
    const auto second = run(0xfeed);
    EXPECT_EQ(first.counts.dramTransient, second.counts.dramTransient);
    EXPECT_EQ(first.counts.dramStuck, second.counts.dramStuck);
    EXPECT_EQ(first.counts.dramBurst, second.counts.dramBurst);
    EXPECT_EQ(first.counts.pimGrf, second.counts.pimGrf);
    EXPECT_EQ(first.counts.pimSrf, second.counts.pimSrf);
    EXPECT_EQ(first.counts.pimCrf, second.counts.pimCrf);
    EXPECT_EQ(first.corrected, second.corrected);
    EXPECT_EQ(first.uncorrectable, second.uncorrectable);
    EXPECT_EQ(first.scrubbed, second.scrubbed);
    EXPECT_GT(first.counts.total(), 0u);

    // A different seed produces a different fault sequence.
    const auto third = run(0xbeef);
    EXPECT_TRUE(third.counts.dramTransient !=
                    first.counts.dramTransient ||
                third.corrected != first.corrected ||
                third.counts.dramStuck != first.counts.dramStuck);
}

TEST(FaultInjector, DramFaultsNeedTouchedStorage)
{
    PimSystem sys(reliableConfig());
    FaultRates rates;
    rates.dramTransient = 10.0;
    FaultInjector injector(sys, rates, 1);
    injector.step(); // nothing allocated yet -> nothing to corrupt
    EXPECT_EQ(injector.counts().total(), 0u);
}

// ---------- register-file fault injection ----------

TEST(RegisterFaults, FlipsAreVisibleAndReversible)
{
    PimRegisterFile regs((PimConfig()));

    regs.setCrf(3, PimInst::exit().encode());
    const std::uint32_t word = regs.crf(3);
    regs.flipCrfBit(3, 30);
    EXPECT_EQ(regs.crf(3), word ^ (1u << 30));
    regs.flipCrfBit(3, 30);
    EXPECT_EQ(regs.crf(3), word); // XOR fault model is reversible

    LaneVector v = broadcast(Fp16(1.0f));
    regs.setGrf(0, 2, v);
    regs.flipGrfBit(0, 2, 16 * 5 + 9); // lane 5, bit 9
    EXPECT_EQ(regs.grf(0, 2)[5].bits(),
              static_cast<Fp16Bits>(Fp16(1.0f).bits() ^ (1u << 9)));
    EXPECT_EQ(regs.grf(0, 2)[4].bits(), Fp16(1.0f).bits());

    regs.setSrf(1, 6, Fp16(2.0f));
    regs.flipSrfBit(1, 6, 14);
    EXPECT_EQ(regs.srf(1, 6).bits(),
              static_cast<Fp16Bits>(Fp16(2.0f).bits() ^ (1u << 14)));
}

// ---------- CRF corruption: fault, not crash ----------

struct CorruptionFixture : public ::testing::Test
{
    CorruptionFixture()
        : pch(geom(), timing), pim(PimConfig{}, pch), conf(pim.confMap())
    {
        setQuiet(true);
    }

    static HbmGeometry geom()
    {
        HbmGeometry g;
        g.rowsPerBank = 256;
        return g;
    }

    void issue(const Command &cmd)
    {
        now = pch.earliestIssue(cmd, now);
        pch.issue(cmd, now);
    }

    void armWithProgram(const std::vector<PimInst> &insts)
    {
        for (unsigned u = 0; u < pim.numUnits(); ++u)
            for (unsigned i = 0; i < insts.size(); ++i)
                pim.unit(u).regs().setCrf(i, insts[i].encode());
        issue(Command::act(0, 0, conf.abmrRow));
        issue(Command::pre(0, 0));
        issue(Command::act(0, 0, conf.configRow));
        Burst on{};
        on[0] = 1;
        issue(Command::wr(0, 0, pim.opModeCol(), on));
        issue(Command::preAll());
        ASSERT_EQ(pim.mode(), PimMode::AbPim);
    }

    HbmTiming timing;
    PseudoChannel pch;
    PimChannel pim;
    PimConfMap conf;
    Cycle now = 0;
};

TEST_F(CorruptionFixture, CorruptedOpcodeFaultsTheUnitOnly)
{
    armWithProgram({
        PimInst::mov(OperandSpace::GrfA, 0, OperandSpace::GrfA, 1),
        PimInst::exit(),
    });
    // Flip an opcode bit on unit 0: MOV (3) becomes the undefined 7.
    pim.unit(0).regs().flipCrfBit(0, 30);
    ASSERT_FALSE(isValidEncoding(pim.unit(0).regs().crf(0)));

    issue(Command::act(0, 0, 7));
    issue(Command::rd(0, 0, 0)); // trigger

    EXPECT_TRUE(pim.unit(0).faulted());
    EXPECT_TRUE(pim.anyUnitFaulted());
    for (unsigned u = 1; u < pim.numUnits(); ++u)
        EXPECT_FALSE(pim.unit(u).faulted()) << "unit " << u;

    // Further triggers are absorbed silently — no crash, no execution.
    issue(Command::rd(0, 0, 1));
    EXPECT_TRUE(pim.unit(0).faulted());

    // Reloading the program (as the runtime's retry prologue does)
    // clears the sticky fault.
    pim.unit(0).resetProgram();
    EXPECT_FALSE(pim.unit(0).faulted());
}

TEST_F(CorruptionFixture, CorruptedJumpOffsetFaultsInsteadOfPanics)
{
    // JUMP back past CRF[0] — the decoded offset exceeds the program
    // counter, which only a corrupted word can produce.
    armWithProgram({
        PimInst::jump(5, 2),
        PimInst::exit(),
    });
    issue(Command::act(0, 0, 7));
    issue(Command::rd(0, 0, 0));
    EXPECT_TRUE(pim.anyUnitFaulted());
}

// ---------- runtime recovery: retry, then host fallback ----------

TEST(Recovery, PersistentDoubleFaultFallsBackToGoldenHostResult)
{
    setQuiet(true);
    PimSystem sys(reliableConfig());
    PimBlas blas(sys);
    blas.setMaxRetries(2);

    const std::size_t n = 512;
    Fp16Vector a(n, Fp16(1.0f)), b(n, Fp16(0.5f)), out;

    // Two stuck-at cells in the same 64-bit ECC word of the first
    // operand burst (channel 0, even bank 0, row 0, col 0). Fp16(1.0)
    // stores 0x00 in every low byte, so forcing bits 0 and 1 high plants
    // a persistent double-bit error that survives every re-preload.
    DataStore &store = sys.controller(0).channel().dataStore();
    store.setStuckBit(0, 0, 0, 0, true);
    store.setStuckBit(0, 0, 0, 1, true);

    const BlasTiming t = blas.add(a, b, out);

    EXPECT_EQ(t.retries, 2u);
    EXPECT_TRUE(t.hostFallback);
    EXPECT_GT(t.eccUncorrectable, 0u);
    EXPECT_GT(sys.errorLog().uncorrectable(), 0u);

    // The caller still gets the right answer, from the host golden path.
    const Fp16Vector golden = refAdd(a, b);
    ASSERT_EQ(out.size(), golden.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i].bits(), golden[i].bits()) << "element " << i;
}

TEST(Recovery, CleanSystemNeverRetries)
{
    PimSystem sys(reliableConfig());
    PimBlas blas(sys);
    Fp16Vector a(256, Fp16(2.0f)), b(256, Fp16(3.0f)), out;
    const BlasTiming t = blas.add(a, b, out);
    EXPECT_EQ(t.retries, 0u);
    EXPECT_FALSE(t.hostFallback);
    EXPECT_EQ(t.eccUncorrectable, 0u);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i].bits(), fp16Add(a[i], b[i]).bits());
}

// ---------- acceptance: an injected campaign completes correctly ----

TEST(Campaign, InjectedAppStyleRunCompletesWithCorrectResults)
{
    setQuiet(true);
    SystemConfig cfg = reliableConfig();
    cfg.controller.scrubEnabled = true;
    cfg.controller.scrubInterval = 1000;
    cfg.controller.scrubBurstsPerStep = 64;
    PimSystem sys(cfg);
    PimBlas blas(sys);

    FaultRates rates;
    rates.dramTransient = 2.0;
    rates.dramStuck = 0.5;
    rates.dramBurst = 0.25;
    rates.pimCrf = 0.25;
    FaultInjector injector(sys, rates, 0xacce97);

    Rng data(11);
    Fp16Vector a(2048), b(2048);
    for (auto &v : a)
        v = data.nextFp16();
    for (auto &v : b)
        v = data.nextFp16();
    const Fp16Vector golden = refAdd(a, b);

    unsigned fallbacks = 0;
    for (unsigned k = 0; k < 4; ++k) {
        Fp16Vector out;
        const BlasTiming t = blas.add(a, b, out);
        fallbacks += t.hostFallback ? 1 : 0;
        ASSERT_EQ(out.size(), golden.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i].bits(), golden[i].bits())
                << "kernel " << k << " element " << i;
        injector.runCampaign(2000, 5);
    }

    // The campaign really did plant faults, and the stack saw ECC work.
    EXPECT_GT(injector.counts().total(), 0u);
    EXPECT_GT(sys.errorLog().corrected() + sys.errorLog().uncorrectable(),
              0u);
    (void)fallbacks; // any value is fine: correctness is what's asserted
}

} // namespace
} // namespace pimsim
