/**
 * @file
 * Memory controller tests: data integrity through the full command path,
 * FR-FCFS row-hit prioritisation, ordered-window semantics, refresh, and
 * the LLC model.
 */

#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/controller.h"
#include "mem/llc.h"
#include "sim/system.h"

namespace pimsim {
namespace {

SystemConfig
tinyConfig(MemoryKind kind)
{
    SystemConfig c;
    c.kind = kind;
    c.numStacks = 1;
    c.geometry.rowsPerBank = 256;
    return c;
}

MemRequest
readReq(unsigned bg, unsigned ba, unsigned row, unsigned col,
        std::uint64_t id)
{
    MemRequest r;
    r.type = RequestType::Read;
    r.coord.bankGroup = bg;
    r.coord.bank = ba;
    r.coord.row = row;
    r.coord.col = col;
    r.id = id;
    return r;
}

MemRequest
writeReq(unsigned bg, unsigned ba, unsigned row, unsigned col,
         std::uint64_t id, const Burst &data)
{
    MemRequest r = readReq(bg, ba, row, col, id);
    r.type = RequestType::Write;
    r.data = data;
    return r;
}

TEST(Controller, WriteThenReadReturnsData)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));
    Burst data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i + 1);

    ASSERT_TRUE(sys.tryEnqueue(0, writeReq(1, 2, 10, 4, 1, data)));
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(1, 2, 10, 4, 2)));
    sys.runUntilIdle();

    const auto responses = sys.drain(0);
    ASSERT_EQ(responses.size(), 2u);
    const auto &rd = responses.back();
    EXPECT_EQ(rd.id, 2u);
    EXPECT_EQ(rd.data, data);
}

TEST(Controller, ManyRandomAccessesKeepIntegrity)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));
    Rng rng(313);
    std::map<std::tuple<unsigned, unsigned, unsigned, unsigned>, Burst>
        model;

    std::uint64_t id = 0;
    for (int round = 0; round < 40; ++round) {
        // A burst of writes...
        for (int i = 0; i < 30; ++i) {
            const unsigned bg = static_cast<unsigned>(rng.nextBelow(4));
            const unsigned ba = static_cast<unsigned>(rng.nextBelow(4));
            const unsigned row = static_cast<unsigned>(rng.nextBelow(32));
            const unsigned col = static_cast<unsigned>(rng.nextBelow(32));
            Burst data;
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.nextBelow(256));
            model[{bg, ba, row, col}] = data;
            while (!sys.tryEnqueue(0, writeReq(bg, ba, row, col, id, data)))
                sys.step();
            ++id;
        }
        sys.runUntilIdle();
        sys.drain(0);

        // ... then verify a sample of reads.
        std::vector<std::tuple<unsigned, unsigned, unsigned, unsigned>> keys;
        for (const auto &kv : model)
            keys.push_back(kv.first);
        std::vector<Burst> expected;
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 10 && !keys.empty(); ++i) {
            const auto &key = keys[rng.nextBelow(keys.size())];
            while (!sys.tryEnqueue(0, readReq(std::get<0>(key),
                                              std::get<1>(key),
                                              std::get<2>(key),
                                              std::get<3>(key), id)))
                sys.step();
            ids.push_back(id++);
            expected.push_back(model[key]);
        }
        sys.runUntilIdle();
        const auto responses = sys.drain(0);
        ASSERT_EQ(responses.size(), ids.size());
        for (const auto &resp : responses) {
            for (std::size_t i = 0; i < ids.size(); ++i) {
                if (resp.id == ids[i])
                    EXPECT_EQ(resp.data, expected[i]) << "id " << resp.id;
            }
        }
    }
}

TEST(Controller, RowHitsArePreferred)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));
    auto &ctrl = sys.controller(0);

    // Open row 1 with a first read, then queue a row-miss and a row-hit.
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 0, 1, 0, 1)));
    sys.runUntilIdle();
    sys.drain(0);

    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 0, 2, 0, 2))); // miss
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 0, 1, 5, 3))); // hit
    sys.runUntilIdle();
    const auto responses = sys.drain(0);
    ASSERT_EQ(responses.size(), 2u);
    // FR-FCFS: the younger row-hit completes first.
    EXPECT_EQ(responses[0].id, 3u);
    EXPECT_EQ(responses[1].id, 2u);
    EXPECT_GE(ctrl.stats().counter("cmd.PRE"), 1u);
}

TEST(Controller, OrderedRequestsStayInOrderAcrossRows)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));
    // Ordered (PIM) requests: a row-hit younger request must NOT pass an
    // older row-miss beyond the ordered window.
    MemRequest first = readReq(0, 0, 1, 0, 1);
    MemRequest miss = readReq(0, 0, 2, 0, 2);
    MemRequest hit = readReq(0, 0, 1, 5, 3);
    miss.ordered = true;
    hit.ordered = true;

    ASSERT_TRUE(sys.tryEnqueue(0, first));
    sys.runUntilIdle();
    sys.drain(0);

    // Ordered window is 8, but these two target different rows; FR-FCFS
    // would flip them, the ordered path must not flip across 9+.
    sys.controller(0).setOrderedWindow(1);
    ASSERT_TRUE(sys.tryEnqueue(0, miss));
    ASSERT_TRUE(sys.tryEnqueue(0, hit));
    sys.runUntilIdle();
    const auto responses = sys.drain(0);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].id, 2u);
    EXPECT_EQ(responses[1].id, 3u);
}

TEST(Controller, WriteStreakDrainsBeforeSwitchingToReads)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));

    // Open two rows in distinct banks and finish on a write, so the
    // controller's bus direction is "write" when the mix arrives.
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 1, 2, 0, 1)));
    sys.runUntilIdle();
    sys.drain(0);
    Burst data{};
    data[0] = 0xab;
    ASSERT_TRUE(sys.tryEnqueue(0, writeReq(0, 0, 1, 0, 2, data)));
    sys.runUntilIdle();
    sys.drain(0);

    // Two interleaved independent streams of row hits: reads to
    // (bank 1, row 2), writes to (bank 0, row 1), arriving R/W/R/W/R/W.
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 1, 2, 1, 10)));
    ASSERT_TRUE(sys.tryEnqueue(0, writeReq(0, 0, 1, 1, 11, data)));
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 1, 2, 2, 12)));
    ASSERT_TRUE(sys.tryEnqueue(0, writeReq(0, 0, 1, 2, 13, data)));
    ASSERT_TRUE(sys.tryEnqueue(0, readReq(0, 1, 2, 3, 14)));
    ASSERT_TRUE(sys.tryEnqueue(0, writeReq(0, 0, 1, 3, 15, data)));
    sys.runUntilIdle();
    const auto responses = sys.drain(0);
    ASSERT_EQ(responses.size(), 6u);

    // FR-FCFS with streak preference: the write streak continues (one
    // bus turnaround total), each stream in FIFO order within itself.
    EXPECT_EQ(responses[0].id, 11u);
    EXPECT_EQ(responses[1].id, 13u);
    EXPECT_EQ(responses[2].id, 15u);
    EXPECT_EQ(responses[3].id, 10u);
    EXPECT_EQ(responses[4].id, 12u);
    EXPECT_EQ(responses[5].id, 14u);
}

TEST(Controller, ActivatePrechargeRequestsDriveRows)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));
    MemRequest act;
    act.type = RequestType::Activate;
    act.coord.row = 42;
    ASSERT_TRUE(sys.tryEnqueue(0, act));
    sys.runUntilIdle();
    sys.drain(0);
    EXPECT_EQ(sys.controller(0).channel().bank(0).openRow, 42u);
    EXPECT_EQ(sys.controller(0).channel().bank(0).state, BankState::Active);

    MemRequest pre;
    pre.type = RequestType::Precharge;
    ASSERT_TRUE(sys.tryEnqueue(0, pre));
    sys.runUntilIdle();
    sys.drain(0);
    EXPECT_EQ(sys.controller(0).channel().bank(0).state, BankState::Idle);
}

TEST(Controller, RefreshHappensPeriodically)
{
    SystemConfig cfg = tinyConfig(MemoryKind::Hbm);
    PimSystem sys(cfg);
    // Keep traffic flowing long enough to cross several tREFI windows.
    std::uint64_t id = 0;
    for (int i = 0; i < 3000; ++i) {
        while (!sys.tryEnqueue(0, readReq(0, 0, 1, i % 32, id)))
            sys.step();
        ++id;
    }
    sys.runUntilIdle();
    sys.drain(0);
    EXPECT_GE(sys.controller(0).stats().counter("refresh"), 1u);
}

TEST(Controller, QueueBackpressure)
{
    PimSystem sys(tinyConfig(MemoryKind::Hbm));
    unsigned accepted = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        if (sys.tryEnqueue(0, readReq(0, 0, 1, i % 32, i)))
            ++accepted;
        else
            break;
    }
    EXPECT_EQ(accepted, sys.controller(0).config().queueDepth);
}

// ---------- LLC ----------

TEST(Llc, HitsAfterFirstTouch)
{
    Llc llc(LlcConfig{});
    EXPECT_FALSE(llc.access(0x1000, false).hit);
    EXPECT_TRUE(llc.access(0x1000, false).hit);
    EXPECT_TRUE(llc.access(0x1020, false).hit); // same 64 B line
    EXPECT_FALSE(llc.access(0x1040, false).hit);
}

TEST(Llc, StreamingMissesEverything)
{
    LlcConfig cfg;
    cfg.capacityBytes = 1 << 20;
    Llc llc(cfg);
    // Stream 16 MiB once: every line is a miss.
    for (Addr a = 0; a < (16u << 20); a += cfg.lineBytes)
        EXPECT_FALSE(llc.access(a, false).hit);
    EXPECT_DOUBLE_EQ(llc.missRate(), 1.0);
}

TEST(Llc, LruEviction)
{
    LlcConfig cfg;
    cfg.capacityBytes = 4096; // 4 sets x 16 ways x 64 B
    cfg.ways = 16;
    Llc llc(cfg);
    const unsigned sets = 4;
    // Fill one set with 16 distinct lines, then touch a 17th: the first
    // (LRU) line is evicted.
    for (unsigned i = 0; i < 16; ++i)
        llc.access(i * sets * 64, false);
    for (unsigned i = 1; i < 16; ++i)
        EXPECT_TRUE(llc.access(i * sets * 64, false).hit);
    llc.access(16 * sets * 64, false);
    EXPECT_FALSE(llc.access(0, false).hit); // evicted
}

TEST(Llc, DirtyEvictionsWriteBack)
{
    LlcConfig cfg;
    cfg.capacityBytes = 4096;
    cfg.ways = 16;
    Llc llc(cfg);
    const unsigned sets = 4;
    llc.access(0, true); // dirty
    for (unsigned i = 1; i <= 16; ++i)
        llc.access(i * sets * 64, false);
    bool saw_writeback = false;
    // Touch one more conflicting line; the dirty victim must write back.
    Llc llc2(cfg);
    llc2.access(0, true);
    for (unsigned i = 1; i <= 16; ++i) {
        const auto r = llc2.access(i * sets * 64, false);
        if (r.writeback && *r.writeback == 0)
            saw_writeback = true;
    }
    EXPECT_TRUE(saw_writeback);
    (void)saw_writeback;
}

TEST(Llc, FlushInvalidates)
{
    Llc llc(LlcConfig{});
    llc.access(0x40, false);
    EXPECT_TRUE(llc.access(0x40, false).hit);
    llc.flush();
    EXPECT_FALSE(llc.access(0x40, false).hit);
}

} // namespace
} // namespace pimsim
