/**
 * @file
 * Command-trace tests: the optional gem5-style trace stream records
 * every issued command with its cycle and mode.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "dram/pseudo_channel.h"

namespace pimsim {
namespace {

TEST(Trace, RecordsCommandsWithCycles)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    std::ostringstream trace;
    pch.setTrace(&trace);

    Cycle now = 0;
    auto go = [&](const Command &cmd) {
        now = pch.earliestIssue(cmd, now);
        pch.issue(cmd, now);
    };
    go(Command::act(0, 1, 7));
    go(Command::rd(0, 1, 3));
    Burst data{};
    go(Command::wr(0, 1, 4, data));
    go(Command::preAll());

    const std::string log = trace.str();
    EXPECT_NE(log.find("ACT bg0 ba1 row7"), std::string::npos);
    EXPECT_NE(log.find("RD bg0 ba1 col3"), std::string::npos);
    EXPECT_NE(log.find("WR bg0 ba1 col4"), std::string::npos);
    EXPECT_NE(log.find("PREA"), std::string::npos);
    // Lines start with the issue cycle.
    EXPECT_EQ(log.rfind("0: ACT", 0), 0u);
}

TEST(Trace, MarksAllBankMode)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    std::ostringstream trace;
    pch.setTrace(&trace);
    pch.setAllBankMode(true);

    Cycle now = pch.earliestIssue(Command::act(0, 0, 1), 0);
    pch.issue(Command::act(0, 0, 1), now);
    EXPECT_NE(trace.str().find("[AB]"), std::string::npos);
}

TEST(Trace, DisabledByDefault)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    // Nothing to observe directly; issuing with no trace must not crash.
    const Cycle t = pch.earliestIssue(Command::act(0, 0, 1), 0);
    pch.issue(Command::act(0, 0, 1), t);
    SUCCEED();
}

} // namespace
} // namespace pimsim
