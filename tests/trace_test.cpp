/**
 * @file
 * Command-trace tests: the optional gem5-style trace stream records
 * every issued command with its cycle and mode.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/pseudo_channel.h"
#include "stack/blas.h"

namespace pimsim {
namespace {

TEST(Trace, RecordsCommandsWithCycles)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    std::ostringstream trace;
    pch.setTrace(&trace);

    Cycle now = 0;
    auto go = [&](const Command &cmd) {
        now = pch.earliestIssue(cmd, now);
        pch.issue(cmd, now);
    };
    go(Command::act(0, 1, 7));
    go(Command::rd(0, 1, 3));
    Burst data{};
    go(Command::wr(0, 1, 4, data));
    go(Command::preAll());

    const std::string log = trace.str();
    EXPECT_NE(log.find("ACT bg0 ba1 row7"), std::string::npos);
    EXPECT_NE(log.find("RD bg0 ba1 col3"), std::string::npos);
    EXPECT_NE(log.find("WR bg0 ba1 col4"), std::string::npos);
    EXPECT_NE(log.find("PREA"), std::string::npos);
    // Lines start with the issue cycle.
    EXPECT_EQ(log.rfind("0: ACT", 0), 0u);
}

TEST(Trace, MarksAllBankMode)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    std::ostringstream trace;
    pch.setTrace(&trace);
    pch.setAllBankMode(true);

    Cycle now = pch.earliestIssue(Command::act(0, 0, 1), 0);
    pch.issue(Command::act(0, 0, 1), now);
    EXPECT_NE(trace.str().find("[AB]"), std::string::npos);
}

TEST(Trace, MarksSbModeOnPlainCommands)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    std::ostringstream trace;
    pch.setTrace(&trace);

    const Cycle t = pch.earliestIssue(Command::act(0, 0, 1), 0);
    pch.issue(Command::act(0, 0, 1), t);
    EXPECT_NE(trace.str().find("[SB]"), std::string::npos);
    EXPECT_EQ(trace.str().find("[AB"), std::string::npos);
}

TEST(Trace, DistinguishesAbFromAbPim)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    std::ostringstream trace;
    pch.setTrace(&trace);
    pch.setAllBankMode(true);

    Cycle now = pch.earliestIssue(Command::act(0, 0, 1), 0);
    pch.issue(Command::act(0, 0, 1), now);
    EXPECT_NE(trace.str().find("[AB]"), std::string::npos);
    EXPECT_EQ(trace.str().find("[AB-PIM]"), std::string::npos);

    // With the PIM-execution flag raised the label changes.
    pch.setPimModeActive(true);
    trace.str("");
    now = pch.earliestIssue(Command::rd(0, 0, 2), now);
    pch.issue(Command::rd(0, 0, 2), now);
    EXPECT_NE(trace.str().find("[AB-PIM]"), std::string::npos);

    // Dropping back to SB clears both flags' labelling.
    pch.setPimModeActive(false);
    pch.setAllBankMode(false);
    trace.str("");
    now = pch.earliestIssue(Command::rd(0, 0, 3), now);
    pch.issue(Command::rd(0, 0, 3), now);
    EXPECT_NE(trace.str().find("[SB]"), std::string::npos);
}

TEST(Trace, KernelExecutionShowsAllThreeModes)
{
    // End to end: a PIM elementwise kernel must drive the channel
    // through SB (staging), AB (mode-switch / config writes) and AB-PIM
    // (the computation itself), and the trace labels each phase.
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    cfg.geometry.rowsPerBank = 512;
    PimSystem sys(cfg);
    std::ostringstream trace;
    sys.controller(0).channel().setTrace(&trace);

    PimBlas blas(sys);
    Rng rng(1);
    Fp16Vector a(4096), b(4096), out;
    for (auto &x : a)
        x = rng.nextFp16();
    for (auto &x : b)
        x = rng.nextFp16();
    blas.add(a, b, out);

    const std::string log = trace.str();
    EXPECT_NE(log.find("[SB]"), std::string::npos);
    EXPECT_NE(log.find("[AB]"), std::string::npos);
    EXPECT_NE(log.find("[AB-PIM]"), std::string::npos);
}

TEST(Trace, DisabledByDefault)
{
    HbmGeometry geom;
    geom.rowsPerBank = 64;
    HbmTiming timing;
    PseudoChannel pch(geom, timing);
    // Nothing to observe directly; issuing with no trace must not crash.
    const Cycle t = pch.earliestIssue(Command::act(0, 0, 1), 0);
    pch.issue(Command::act(0, 0, 1), t);
    SUCCEED();
}

} // namespace
} // namespace pimsim
