/**
 * @file
 * Observability-layer tests: JSON emission/validation, the system-wide
 * stats registry, command-mix counter reconciliation against the
 * cycle-level device, and the Chrome-trace exporter.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "common/stats_registry.h"
#include "common/trace.h"
#include "stack/blas.h"

namespace pimsim {
namespace {

SystemConfig
smallPimSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 channels keeps tests fast
    c.geometry.rowsPerBank = 512;
    return c;
}

Fp16Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Fp16Vector v(n);
    for (auto &x : v)
        x = rng.nextFp16();
    return v;
}

// ------------------------------------------------------------------
// JSON writer / validator
// ------------------------------------------------------------------

TEST(Json, WriterEmitsValidDocument)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("name", "a \"quoted\"\nstring\t\\");
    w.field("count", std::uint64_t{42});
    w.field("neg", -7);
    w.field("rate", 0.25);
    w.field("flag", true);
    w.key("list").beginArray();
    w.value(1).value(2).value("three");
    w.beginObject().field("nested", false).endObject();
    w.endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();

    std::string error;
    EXPECT_TRUE(validateJson(os.str(), &error)) << error << "\n" << os.str();
}

TEST(Json, WriterClampsNonFiniteToNull)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("nan", std::nan(""));
    w.field("inf", 1e308 * 10);
    w.endObject();
    EXPECT_TRUE(validateJson(os.str(), nullptr)) << os.str();
    EXPECT_NE(os.str().find("null"), std::string::npos);
}

TEST(Json, ValidatorRejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "{'a': 1}",
          "[1 2]", "{\"a\": 01}", "nul", "\"unterminated",
          "{\"a\": 1} trailing", "[+1]", "[.5]", "{\"a\": NaN}"}) {
        std::string error;
        EXPECT_FALSE(validateJson(bad, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
    for (const char *good :
         {"null", "true", "-1.5e-3", "\"\"", "[]", "{}",
          "{\"a\": [1, {\"b\": null}]}", "\"\\u00e9\\n\""}) {
        std::string error;
        EXPECT_TRUE(validateJson(good, &error)) << good << ": " << error;
    }
}

TEST(Json, EscapedStringsRoundTripThroughTheValidator)
{
    // Every string the writer can be handed — quotes, backslashes,
    // control bytes, valid multi-byte UTF-8, malformed UTF-8 — must
    // produce a document the validator accepts.
    const std::string nasty[] = {
        "plain",
        "quote \" backslash \\ slash /",
        "\\\\network\\share\\\"path\"",
        std::string("embedded\0nul", 12),
        "\b\f\n\r\t",
        "\x01\x02\x1f control",
        "\x7f del",
        "caf\xc3\xa9 \xe6\xbc\xa2 \xf0\x9f\x9a\x80", // é 漢 🚀
        "\xff\xfe invalid bytes",
        "truncated \xe4\xb8",       // 3-byte sequence cut short
        "\x80 lone continuation",
        "overlong-ish \xc3",        // lead byte at end of string
    };
    for (const auto &s : nasty) {
        std::ostringstream os;
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.field("k", s);
        w.key(s).value(42); // keys are escaped through the same path
        w.endObject();
        std::string error;
        EXPECT_TRUE(validateJson(os.str(), &error))
            << error << "\n" << os.str();
    }

    // Malformed bytes are replaced, not emitted raw.
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("k", "\xff");
    w.endObject();
    EXPECT_NE(os.str().find("\\ufffd"), std::string::npos) << os.str();
}

// ------------------------------------------------------------------
// Stats registry
// ------------------------------------------------------------------

TEST(StatsRegistry, CounterTotalMatchesDottedSuffixesOnly)
{
    StatGroup a("a"), b("b"), c("c");
    a.add("rd", 3);
    b.add("rd", 5);
    c.add("rd", 100);

    StatsRegistry reg;
    reg.addGroup("ch0.pch", &a);
    reg.addGroup("ch1.pch", &b);
    reg.addGroup("mismatchpch", &c); // not a dotted ".pch" suffix

    EXPECT_EQ(reg.counterTotal("pch", "rd"), 8u);
    EXPECT_EQ(reg.counterTotal("ch0.pch", "rd"), 3u);
    EXPECT_EQ(reg.counterTotal("mismatchpch", "rd"), 100u); // exact match
    EXPECT_EQ(reg.group("ch1.pch"), &b);
    EXPECT_EQ(reg.group("absent"), nullptr);
}

TEST(StatsRegistry, ResetCoversGroupsAndHistograms)
{
    StatGroup g("g");
    g.add("n", 9);
    Histogram h(10, 8);
    h.sample(42);

    StatsRegistry reg;
    reg.addGroup("g", &g);
    reg.addHistogram("g.lat", &h);
    reg.reset();
    EXPECT_EQ(g.counter("n"), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(StatsRegistry, DumpsValidJsonWithHistogramSummaries)
{
    StatGroup g("g");
    g.add("events", 4);
    g.set("ratio", 0.5);
    Histogram h(10, 8);
    h.sample(15);
    h.sample(25);

    StatsRegistry reg;
    reg.addGroup("layer.g", &g);
    reg.addHistogram("layer.lat", &h);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string error;
    ASSERT_TRUE(validateJson(os.str(), &error)) << error << "\n" << os.str();
    EXPECT_NE(os.str().find("\"layer.g\""), std::string::npos);
    EXPECT_NE(os.str().find("\"layer.lat\""), std::string::npos);
    EXPECT_NE(os.str().find("\"events\""), std::string::npos);
    EXPECT_NE(os.str().find("\"p99\""), std::string::npos);

    std::ostringstream text;
    reg.dumpText(text);
    EXPECT_NE(text.str().find("layer.g.events 4"), std::string::npos);
    EXPECT_NE(text.str().find("layer.lat.count 2"), std::string::npos);
}

// ------------------------------------------------------------------
// Counter reconciliation against the cycle-level device
// ------------------------------------------------------------------

TEST(Observability, GemvCommandMixReconcilesAcrossLayers)
{
    PimSystem sys(smallPimSystem());
    PimBlas blas(sys);

    const unsigned m = 128, n = 256;
    const Fp16Vector w = randomVector(std::size_t{m} * n, 0xabc);
    const Fp16Vector x = randomVector(n, 0xdef);
    Fp16Vector y;
    blas.gemv(w, m, n, x, y);

    std::uint64_t total_rd_pim = 0;
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        auto &ctrl = sys.controller(ch);
        const StatGroup &cs = ctrl.stats();
        const StatGroup &ps = ctrl.channel().stats();

        // Every column request the controller issued reached the device
        // as a host RD, a host WR, or a PIM-intercepted column command.
        EXPECT_EQ(cs.counter("colIssued"),
                  ps.counter("rd") + ps.counter("wr") + ps.counter("pimCol"))
            << "channel " << ch;
        // The controller's RD-PIM bucket is exactly the device's count
        // of intercepted columns.
        EXPECT_EQ(cs.counter("cmd.RD-PIM"), ps.counter("pimCol"))
            << "channel " << ch;
        EXPECT_EQ(cs.counter("pimIssued"), ps.counter("pimCol"))
            << "channel " << ch;
        // Row-buffer verdicts cover every host column access.
        EXPECT_EQ(cs.counter("rowHit") + cs.counter("rowMiss"),
                  cs.counter("colIssued"))
            << "channel " << ch;
        total_rd_pim += ps.counter("pimCol");
    }
    EXPECT_GT(total_rd_pim, 0u); // the kernel really ran in PIM mode

    // The registry's cross-channel sums agree with the system helpers.
    StatsRegistry &reg = sys.statsRegistry();
    EXPECT_EQ(reg.counterTotal("pch", "rd"), sys.totalChannelStat("rd"));
    EXPECT_EQ(reg.counterTotal("pch", "pimCol"),
              sys.totalChannelStat("pimCol"));
    EXPECT_EQ(reg.counterTotal("ctrl", "cmd.RD-PIM"),
              sys.totalCtrlStat("cmd.RD-PIM"));
    EXPECT_EQ(reg.counterTotal("ctrl", "colIssued"),
              reg.counterTotal("pch", "rd") +
                  reg.counterTotal("pch", "wr") +
                  reg.counterTotal("pch", "pimCol"));

    // The JSON dump is valid and carries the command-mix counters.
    std::ostringstream os;
    sys.dumpStatsJson(os);
    std::string error;
    ASSERT_TRUE(validateJson(os.str(), &error)) << error;
    EXPECT_NE(os.str().find("\"cmd.RD-PIM\""), std::string::npos);
    EXPECT_NE(os.str().find("\"rowHitRate\""), std::string::npos);
    EXPECT_NE(os.str().find("\"busUtil\""), std::string::npos);
    EXPECT_NE(os.str().find("\"ch0.ctrl\""), std::string::npos);
}

// ------------------------------------------------------------------
// Chrome-trace exporter
// ------------------------------------------------------------------

/** Extract (pid, tid, ts) of every "X" span in serialised order. */
struct ParsedSpan
{
    int pid = 0;
    int tid = 0;
    double ts = 0.0;
};

std::vector<ParsedSpan>
parseSpans(const std::string &json)
{
    // write() emits each event's fields in a fixed order
    // (name, cat, ph, pid, tid, ts, ...), so a linear scan suffices.
    std::vector<ParsedSpan> spans;
    std::size_t pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
        ParsedSpan s;
        const std::size_t pid_at = json.find("\"pid\":", pos);
        s.pid = std::atoi(json.c_str() + pid_at + 6);
        const std::size_t tid_at = json.find("\"tid\":", pid_at);
        s.tid = std::atoi(json.c_str() + tid_at + 6);
        const std::size_t ts_at = json.find("\"ts\":", tid_at);
        s.ts = std::atof(json.c_str() + ts_at + 5);
        spans.push_back(s);
        pos = ts_at;
    }
    return spans;
}

TEST(TraceSession, WritesValidChromeTraceJson)
{
    TraceSession trace;
    trace.setProcessName(kTracePidDevice, "device");
    trace.setThreadName(kTracePidDevice, 0, "ch0");
    trace.span(kTracePidDevice, 0, "RD", "sb", 100.0, 10.0);
    trace.span(kTracePidDevice, 0, "ACT \"row 3\"", "sb", 50.0, 14.0);
    trace.instant(kTracePidRuntime, 0, "marker", "app", 120.0);
    trace.span(kTracePidRuntime, 1, "gemv", "blas", 0.0, 500.0, "batch",
               "4");

    std::ostringstream os;
    trace.write(os);
    const std::string out = os.str();
    std::string error;
    ASSERT_TRUE(validateJson(out, &error)) << error << "\n" << out;
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("process_name"), std::string::npos);
    EXPECT_NE(out.find("thread_name"), std::string::npos);
    EXPECT_NE(out.find("\"batch\":\"4\""), std::string::npos);
    EXPECT_EQ(trace.droppedEvents(), 0u);
}

TEST(TraceSession, SerialisesSpansInMonotonicTimestampOrder)
{
    // Recorded deliberately out of order (an enclosing span is emitted
    // after its children); the writer must serialise by timestamp.
    TraceSession trace;
    trace.span(kTracePidRuntime, 0, "child2", "c", 200.0, 50.0);
    trace.span(kTracePidRuntime, 0, "child1", "c", 100.0, 50.0);
    trace.span(kTracePidRuntime, 0, "parent", "c", 100.0, 150.0);
    trace.span(kTracePidDevice, 3, "RD", "sb", 150.0, 5.0);
    trace.span(kTracePidDevice, 3, "ACT", "sb", 120.0, 14.0);

    std::ostringstream os;
    trace.write(os);
    const auto spans = parseSpans(os.str());
    ASSERT_EQ(spans.size(), 5u);

    double last_device = -1.0, last_runtime = -1.0;
    for (const auto &s : spans) {
        double &last =
            s.pid == kTracePidDevice ? last_device : last_runtime;
        EXPECT_GE(s.ts, last);
        last = s.ts;
    }
}

TEST(TraceSession, DropsEventsPastTheCapInsteadOfGrowing)
{
    TraceSession trace(/*max_events=*/4);
    for (int i = 0; i < 10; ++i)
        trace.span(1, 0, "e", "c", i * 10.0, 1.0);
    EXPECT_EQ(trace.events().size(), 4u);
    EXPECT_EQ(trace.droppedEvents(), 6u);

    std::ostringstream os;
    trace.write(os);
    EXPECT_TRUE(validateJson(os.str(), nullptr));
    EXPECT_NE(os.str().find("\"droppedEvents\":6"), std::string::npos);
}

TEST(TraceSession, KeepsRecordOrderForEqualTimestamps)
{
    // The writer's sort is stable: events sharing a timestamp must
    // serialise in recording order, so an enclosing span recorded
    // before its zero-offset child stays first (Perfetto nests by
    // order at equal ts) and replays are byte-identical.
    TraceSession trace;
    trace.span(kTracePidServing, 0, "outer", "c", 100.0, 50.0);
    trace.span(kTracePidServing, 0, "inner", "c", 100.0, 20.0);
    trace.instant(kTracePidServing, 0, "mark", "c", 100.0);
    trace.span(kTracePidServing, 0, "early", "c", 50.0, 10.0);

    std::ostringstream os;
    trace.write(os);
    const std::string out = os.str();
    const std::size_t early = out.find("\"early\"");
    const std::size_t outer = out.find("\"outer\"");
    const std::size_t inner = out.find("\"inner\"");
    const std::size_t mark = out.find("\"mark\"");
    ASSERT_NE(early, std::string::npos);
    ASSERT_NE(mark, std::string::npos);
    EXPECT_LT(early, outer); // ts order across distinct timestamps
    EXPECT_LT(outer, inner); // record order within the 100.0 tie
    EXPECT_LT(inner, mark);

    // Byte-identical on a second serialisation (no unstable tie-break).
    std::ostringstream os2;
    trace.write(os2);
    EXPECT_EQ(out, os2.str());
}

TEST(TraceSession, SerialisesMetadataBeforeDataEvents)
{
    // Track names registered *after* the data was recorded must still
    // lead the stream — the viewer applies them to everything after.
    TraceSession trace;
    trace.span(kTracePidDevice, 0, "RD", "sb", 0.0, 1.0);
    trace.instant(kTracePidLlm, 2, "evict", "kv", 0.0);
    trace.setProcessName(kTracePidDevice, "device");
    trace.setThreadName(kTracePidLlm, 2, "requests");

    std::ostringstream os;
    trace.write(os);
    const std::string out = os.str();
    const std::size_t process_at = out.find("\"process_name\"");
    const std::size_t thread_at = out.find("\"thread_name\"");
    ASSERT_NE(process_at, std::string::npos);
    ASSERT_NE(thread_at, std::string::npos);
    const std::size_t first_data =
        std::min(out.find("\"ph\":\"X\""), out.find("\"ph\":\"i\""));
    ASSERT_NE(first_data, std::string::npos);
    EXPECT_LT(process_at, first_data);
    EXPECT_LT(thread_at, first_data);
}

TEST(TraceSession, MintsUniqueMonotonicFlowIds)
{
    TraceSession trace;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t id = trace.nextFlowId();
        if (!ids.empty()) {
            EXPECT_GT(id, ids.back());
        }
        ids.push_back(id);
        trace.flowStart(kTracePidServing, 0, "hop", "flow", i * 10.0, id);
        trace.flowEnd(kTracePidCluster, 1, "hop", "flow", i * 10.0 + 5.0,
                      id);
    }
    ASSERT_EQ(std::set<std::uint64_t>(ids.begin(), ids.end()).size(),
              ids.size());

    // Start/end events pair up 1:1 on the recorded ids.
    std::map<std::uint64_t, std::pair<int, int>> uses; // id -> (s, f)
    for (const auto &e : trace.events()) {
        if (e.phase == TraceEvent::Phase::FlowStart)
            ++uses[e.flowId].first;
        else if (e.phase == TraceEvent::Phase::FlowEnd)
            ++uses[e.flowId].second;
    }
    ASSERT_EQ(uses.size(), ids.size());
    for (const auto &[id, counts] : uses) {
        EXPECT_EQ(counts.first, 1) << "flow " << id;
        EXPECT_EQ(counts.second, 1) << "flow " << id;
    }

    std::ostringstream os;
    trace.write(os);
    EXPECT_TRUE(validateJson(os.str(), nullptr));
}

TEST(Observability, GemvTraceRecordsDeviceAndKernelSpans)
{
    PimSystem sys(smallPimSystem());
    PimBlas blas(sys);
    TraceSession trace;
    sys.setTraceSession(&trace);
    blas.setTrace(&trace);

    Fp16Vector a = randomVector(4096, 1), b = randomVector(4096, 2), out;
    blas.add(a, b, out);

    ASSERT_FALSE(trace.events().empty());
    bool saw_device = false, saw_kernel = false;
    for (const auto &e : trace.events()) {
        if (e.pid == kTracePidDevice)
            saw_device = true;
        if (e.pid == kTracePidRuntime && e.tid == 1 && e.cat == "blas")
            saw_kernel = true;
    }
    EXPECT_TRUE(saw_device);
    EXPECT_TRUE(saw_kernel);

    // The serialised file is valid and monotonic on every track.
    std::ostringstream os;
    trace.write(os);
    std::string error;
    ASSERT_TRUE(validateJson(os.str(), &error)) << error;
    std::map<std::pair<int, int>, double> last;
    for (const auto &s : parseSpans(os.str())) {
        const auto key = std::make_pair(s.pid, s.tid);
        auto it = last.find(key);
        if (it != last.end()) {
            EXPECT_GE(s.ts, it->second);
        }
        last[key] = s.ts;
    }
    EXPECT_GT(last.size(), 1u); // more than one track recorded
}

} // namespace
} // namespace pimsim
