/**
 * @file
 * BF16 datapath option tests (Table I's alternative the product did not
 * ship): the same microkernels execute with lanes interpreted as
 * bfloat16, verified against a BF16 host reference on identical bit
 * patterns.
 */

#include <gtest/gtest.h>

#include "common/bf16.h"
#include "common/rng.h"
#include "stack/blas.h"

namespace pimsim {
namespace {

SystemConfig
bf16Config()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1;
    c.geometry.rowsPerBank = 512;
    c.pim = c.pim.withBf16();
    return c;
}

/** Random BF16 bit patterns wrapped in the Fp16 carrier type. */
Fp16Vector
randomBf16Vector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Fp16Vector v(n);
    for (auto &x : v)
        x = Fp16::fromBits(Bf16(rng.nextFloat(-2.0f, 2.0f)).bits());
    return v;
}

Bf16
asBf16(Fp16 carrier)
{
    return Bf16::fromBits(carrier.bits());
}

TEST(Bf16Datapath, AddMatchesBf16Reference)
{
    PimSystem sys(bf16Config());
    PimBlas blas(sys);
    const auto a = randomBf16Vector(20000, 1);
    const auto b = randomBf16Vector(20000, 2);
    Fp16Vector out;
    blas.add(a, b, out);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Bf16 expect = bf16Add(asBf16(a[i]), asBf16(b[i]));
        EXPECT_EQ(out[i].bits(), expect.bits()) << i;
    }
}

TEST(Bf16Datapath, MulMatchesBf16Reference)
{
    PimSystem sys(bf16Config());
    PimBlas blas(sys);
    const auto a = randomBf16Vector(8000, 3);
    const auto b = randomBf16Vector(8000, 4);
    Fp16Vector out;
    blas.mul(a, b, out);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Bf16 expect = bf16Mul(asBf16(a[i]), asBf16(b[i]));
        EXPECT_EQ(out[i].bits(), expect.bits()) << i;
    }
}

TEST(Bf16Datapath, ReluIsFormatAgnostic)
{
    // ReLU is a sign-bit mux; it behaves identically for both formats.
    PimSystem sys(bf16Config());
    PimBlas blas(sys);
    const auto a = randomBf16Vector(4000, 5);
    Fp16Vector out;
    blas.relu(a, out);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::uint16_t expect =
            asBf16(a[i]).signBit() ? 0 : a[i].bits();
        EXPECT_EQ(out[i].bits(), expect) << i;
    }
}

TEST(Bf16Datapath, GemvMatchesBf16LanewiseReference)
{
    PimSystem sys(bf16Config());
    PimBlas blas(sys);
    const unsigned m = 64;
    const unsigned n = 256;
    const auto w = randomBf16Vector(std::size_t{m} * n, 6);
    const auto x = randomBf16Vector(n, 7);
    Fp16Vector y;
    blas.gemv(w, m, n, x, y);

    // Reference: same lane-partial structure, BF16 arithmetic.
    for (unsigned mm = 0; mm < m; ++mm) {
        Bf16 partial[kSimdLanes] = {};
        for (unsigned nb = 0; nb < (n + 127) / 128; ++nb) {
            for (unsigned j = 0; j < 8; ++j) {
                for (unsigned lane = 0; lane < kSimdLanes; ++lane) {
                    const std::uint64_t idx =
                        std::uint64_t{nb} * 128 + j * 16 + lane;
                    if (idx < n) {
                        partial[lane] =
                            bf16Mac(asBf16(w[std::uint64_t{mm} * n + idx]),
                                    asBf16(x[idx]), partial[lane]);
                    }
                }
            }
        }
        double sum = 0.0;
        for (const auto &p : partial)
            sum += static_cast<double>(p.toFloat());
        // The host reduction reads raw 16-bit lanes; in BF16 mode it
        // widens them as FP16. We therefore verify the *lane partials*
        // written back to memory instead of the reduced value: read the
        // partial burst directly.
        const unsigned slots =
            sys.numChannels() * sys.config().pim.unitsPerPch;
        const unsigned p_idx = (mm / 2) / slots;
        const unsigned slot = (mm / 2) % slots;
        const unsigned ch = slot / sys.config().pim.unitsPerPch;
        const unsigned u = slot % sys.config().pim.unitsPerPch;
        // out rows were allocated right after the W rows; recompute:
        const unsigned blocks = (n + 127) / 128;
        const unsigned w_rows_per_pass = (blocks + 3) / 4;
        const unsigned passes =
            static_cast<unsigned>((std::uint64_t{m} + 2 * slots - 1) /
                                  (2 * slots));
        const unsigned out_base = passes * w_rows_per_pass;
        const Burst burst = blas.driver().peek(
            ch, 2 * u + (mm % 2), out_base + p_idx / 32, p_idx % 32);
        const LaneVector lanes = burstToLanes(burst);
        for (unsigned lane = 0; lane < kSimdLanes; ++lane)
            EXPECT_EQ(lanes[lane].bits(), partial[lane].bits())
                << "row " << mm << " lane " << lane;
        (void)sum;
    }
    (void)y;
}

} // namespace
} // namespace pimsim
