/**
 * @file
 * Golden-reference self-tests: the host references must themselves obey
 * the algebraic properties the PIM datapath guarantees, and the
 * lane-partial GEMV must stay close to exact arithmetic.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

Fp16Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Fp16Vector v(n);
    for (auto &x : v)
        x = rng.nextFp16();
    return v;
}

TEST(Reference, AddIsCommutative)
{
    const auto a = randomVector(1000, 1);
    const auto b = randomVector(1000, 2);
    const auto ab = refAdd(a, b);
    const auto ba = refAdd(b, a);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(ab[i].bits(), ba[i].bits());
}

TEST(Reference, AddZeroIsIdentity)
{
    const auto a = randomVector(1000, 3);
    const Fp16Vector zero(a.size(), Fp16(0.0f));
    const auto sum = refAdd(a, zero);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(sum[i].bits(), a[i].bits());
}

TEST(Reference, MulOneIsIdentity)
{
    const auto a = randomVector(1000, 4);
    const Fp16Vector one(a.size(), Fp16(1.0f));
    const auto prod = refMul(a, one);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(prod[i].bits(), a[i].bits());
}

TEST(Reference, ReluIsIdempotent)
{
    const auto a = randomVector(1000, 5);
    const auto once = refRelu(a);
    const auto twice = refRelu(once);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(once[i].bits(), twice[i].bits());
        EXPECT_FALSE(once[i].signBit() && !once[i].isZero());
    }
}

TEST(Reference, BnWithUnitScaleZeroShiftIsIdentity)
{
    const auto a = randomVector(2048, 6);
    const Fp16Vector gamma(8, Fp16(1.0f));
    const Fp16Vector beta(8, Fp16(0.0f));
    const auto out = refBn(a, gamma, beta, /*slots=*/128);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(out[i].bits(), a[i].bits());
}

TEST(Reference, GemvZeroMatrixGivesZero)
{
    const unsigned m = 32, n = 200;
    const Fp16Vector w(std::size_t{m} * n, Fp16(0.0f));
    const auto x = randomVector(n, 7);
    const auto y = refGemv(w, m, n, x);
    for (unsigned i = 0; i < m; ++i)
        EXPECT_EQ(y[i].bits(), Fp16(0.0f).bits());
}

TEST(Reference, GemvIdentityExtractsX)
{
    // W = I (n x n): y == x up to the FP16 partial/reduction rounding,
    // which is exact here because each row has a single non-zero term.
    const unsigned n = 64;
    Fp16Vector w(std::size_t{n} * n, Fp16(0.0f));
    for (unsigned i = 0; i < n; ++i)
        w[std::size_t{i} * n + i] = Fp16(1.0f);
    const auto x = randomVector(n, 8);
    const auto y = refGemv(w, n, n, x);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(y[i].bits(), x[i].bits());
}

TEST(Reference, GemvTracksDoublePrecision)
{
    const unsigned m = 64, n = 1024;
    const auto w = randomVector(std::size_t{m} * n, 9);
    const auto x = randomVector(n, 10);
    const auto y16 = refGemv(w, m, n, x);
    const auto y64 = refGemvF64(w, m, n, x);
    for (unsigned i = 0; i < m; ++i) {
        const double got = y16[i].toFloat();
        const double tol = std::max(2.0, std::abs(y64[i]) * 0.1);
        EXPECT_NEAR(got, y64[i], tol) << "row " << i;
    }
}

TEST(Reference, GemvLinearityInX)
{
    // y(2x) == computed partials of doubled x; FP16 doubling is exact
    // (exponent bump), so the whole pipeline doubles exactly away from
    // overflow.
    const unsigned m = 16, n = 128;
    Rng rng(11);
    Fp16Vector w(std::size_t{m} * n), x(n), x2(n);
    for (auto &v : w)
        v = Fp16(rng.nextFloat(-0.25f, 0.25f));
    for (unsigned i = 0; i < n; ++i) {
        const float f = rng.nextFloat(-0.25f, 0.25f);
        x[i] = Fp16(f);
        x2[i] = Fp16(2.0f * x[i].toFloat());
    }
    const auto y = refGemv(w, m, n, x);
    const auto y2 = refGemv(w, m, n, x2);
    for (unsigned i = 0; i < m; ++i) {
        EXPECT_NEAR(y2[i].toFloat(), 2.0f * y[i].toFloat(),
                    std::abs(y[i].toFloat()) * 0.01 + 1e-3);
    }
}

} // namespace
} // namespace pimsim
