/**
 * @file
 * Load-generation tests: lognormal length sampling pinned against its
 * analytic moments, clamping, bursty (thinned) Poisson arrivals, and
 * deterministic replay of drawn traces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "serve/load_gen.h"

namespace pimsim::serve {
namespace {

// ------------------------------------------------------------------
// LengthSampler: empirical moments vs analytic predictions
// ------------------------------------------------------------------

TEST(LengthSampler, EmpiricalMeanMatchesAnalytic)
{
    LengthConfig cfg;
    cfg.medianTokens = 128.0;
    cfg.sigmaLog = 0.7;
    cfg.minTokens = 1;
    cfg.maxTokens = 100'000; // effectively unclamped
    LengthSampler sampler(cfg);

    Rng rng(0x10ad5eed);
    const unsigned n = 20'000;
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i)
        sum += sampler.sample(rng);
    const double mean = sum / n;
    // Lognormal mean = median * exp(sigma^2 / 2).
    EXPECT_NEAR(sampler.analyticMean(), 128.0 * std::exp(0.49 / 2.0),
                1e-9);
    EXPECT_NEAR(mean, sampler.analyticMean(),
                0.03 * sampler.analyticMean());
}

TEST(LengthSampler, EmpiricalP95MatchesAnalyticQuantile)
{
    LengthConfig cfg;
    cfg.medianTokens = 128.0;
    cfg.sigmaLog = 0.7;
    cfg.minTokens = 1;
    cfg.maxTokens = 100'000;
    LengthSampler sampler(cfg);

    Rng rng(0xfeed1);
    std::vector<unsigned> draws(20'000);
    for (auto &d : draws)
        d = sampler.sample(rng);
    std::sort(draws.begin(), draws.end());
    const double p95_emp =
        draws[static_cast<std::size_t>(0.95 * draws.size())];
    const double p95_ana = sampler.analyticQuantile(0.95);
    // Acklam's normal quantile is good to ~1e-9; the sampling error at
    // n=20k dominates the tolerance.
    EXPECT_NEAR(p95_ana, 128.0 * std::exp(0.7 * 1.6448536269514722),
                0.01 * p95_ana);
    EXPECT_NEAR(p95_emp, p95_ana, 0.05 * p95_ana);
    // Median passes through unchanged.
    EXPECT_NEAR(sampler.analyticQuantile(0.5), 128.0, 1e-6);
}

TEST(LengthSampler, ClampsToConfiguredRange)
{
    LengthConfig cfg;
    cfg.medianTokens = 128.0;
    cfg.sigmaLog = 1.5; // heavy tails exercise both clamps
    cfg.minTokens = 64;
    cfg.maxTokens = 256;
    LengthSampler sampler(cfg);

    Rng rng(3);
    bool hit_min = false, hit_max = false;
    for (unsigned i = 0; i < 5'000; ++i) {
        const unsigned d = sampler.sample(rng);
        ASSERT_GE(d, 64u);
        ASSERT_LE(d, 256u);
        hit_min |= d == 64u;
        hit_max |= d == 256u;
    }
    EXPECT_TRUE(hit_min);
    EXPECT_TRUE(hit_max);
}

TEST(LengthSampler, DeterministicForFixedSeed)
{
    LengthConfig cfg;
    LengthSampler sampler(cfg);
    Rng a(99), b(99);
    for (unsigned i = 0; i < 100; ++i)
        ASSERT_EQ(sampler.sample(a), sampler.sample(b));
}

// ------------------------------------------------------------------
// Bursty arrivals (thinned Poisson)
// ------------------------------------------------------------------

TEST(BurstyArrivals, WindowRateMatchesFactor)
{
    const double horizon_ns = 1e9; // one virtual second
    BurstSpec burst;
    burst.startNs = 0.4e9;
    burst.endNs = 0.6e9;
    burst.factor = 4.0;
    const auto arrivals = burstyPoissonArrivals(
        {ArrivalSpec{0, 2000.0}}, horizon_ns, 77, burst);

    std::size_t inside = 0, outside = 0;
    for (const auto &a : arrivals)
        (a.ns >= burst.startNs && a.ns < burst.endNs ? inside : outside)
            ++;
    // Inside: 0.2 s at 8000/s = 1600 expected; outside: 0.8 s at
    // 2000/s = 1600 expected. The ratio of *rates* is the burst factor.
    const double rate_in = static_cast<double>(inside) / 0.2;
    const double rate_out = static_cast<double>(outside) / 0.8;
    EXPECT_NEAR(rate_in / rate_out, 4.0, 0.5);
    EXPECT_NEAR(rate_out, 2000.0, 150.0);

    // Arrivals are time-ordered.
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        ASSERT_GE(arrivals[i].ns, arrivals[i - 1].ns);
}

TEST(BurstyArrivals, InactiveBurstMatchesPlainPoisson)
{
    const auto plain = burstyPoissonArrivals({ArrivalSpec{0, 1000.0}},
                                             1e9, 5, BurstSpec{});
    // factor 1 inside a window is also a no-op envelope-wise.
    BurstSpec unit;
    unit.startNs = 0.2e9;
    unit.endNs = 0.5e9;
    unit.factor = 1.0;
    const auto with_unit = burstyPoissonArrivals({ArrivalSpec{0, 1000.0}},
                                                 1e9, 5, unit);
    ASSERT_EQ(plain.size(), with_unit.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        ASSERT_EQ(plain[i].ns, with_unit[i].ns);
    EXPECT_NEAR(static_cast<double>(plain.size()), 1000.0, 100.0);
}

TEST(BurstyArrivals, DeterministicForFixedSeed)
{
    BurstSpec burst;
    burst.startNs = 0.1e9;
    burst.endNs = 0.3e9;
    burst.factor = 3.0;
    const auto a = burstyPoissonArrivals({ArrivalSpec{0, 500.0}}, 1e9,
                                         123, burst);
    const auto b = burstyPoissonArrivals({ArrivalSpec{0, 500.0}}, 1e9,
                                         123, burst);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ns, b[i].ns);
        ASSERT_EQ(a[i].tenant, b[i].tenant);
    }
}

} // namespace
} // namespace pimsim::serve
