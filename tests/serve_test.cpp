/**
 * @file
 * Serving-layer tests: admission control, batching schedulers, fair
 * share, channel/row sharding isolation, and deterministic replay.
 */

#include <gtest/gtest.h>

#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"
#include "serve/serving_engine.h"
#include "serve/shard.h"

namespace pimsim::serve {
namespace {

SystemConfig
smallSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 channels keeps tests fast
    c.geometry.rowsPerBank = 512;
    return c;
}

/** One small FC layer: a real PIM GEMV, but cheap to simulate. */
AppSpec
tinyApp(const std::string &name, unsigned dim = 256)
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = dim;
    fc.input = dim;
    fc.steps = 1;
    fc.pimEligible = true;

    AppSpec app;
    app.name = name;
    app.layers = {fc};
    return app;
}

ServeRequest
req(std::uint64_t id, unsigned tenant, double arrival_ns = 0.0)
{
    ServeRequest r;
    r.id = id;
    r.tenant = tenant;
    r.arrivalNs = arrival_ns;
    return r;
}

// ------------------------------------------------------------------
// Admission queue
// ------------------------------------------------------------------

TEST(RequestQueue, RejectsWhenFull)
{
    QueueConfig config;
    config.depth = 4;
    config.perTenantDepth = 2;
    RequestQueue q(config, 2);

    EXPECT_TRUE(q.tryPush(req(0, 0)));
    EXPECT_TRUE(q.tryPush(req(1, 0)));
    EXPECT_FALSE(q.tryPush(req(2, 0))); // per-tenant bound
    EXPECT_TRUE(q.tryPush(req(3, 1)));
    EXPECT_TRUE(q.tryPush(req(4, 1)));
    EXPECT_FALSE(q.tryPush(req(5, 1))); // per-tenant bound again

    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.admitted(0), 2u);
    EXPECT_EQ(q.rejected(0), 1u);
    EXPECT_EQ(q.admitted(1), 2u);
    EXPECT_EQ(q.rejected(1), 1u);

    // Draining tenant 0 reopens its per-tenant and global slots.
    q.popFront(0);
    q.popFront(0);
    EXPECT_TRUE(q.tryPush(req(6, 0)));
}

TEST(RequestQueue, GlobalDepthBindsAcrossTenants)
{
    QueueConfig config;
    config.depth = 3;
    RequestQueue q(config, 2);
    EXPECT_TRUE(q.tryPush(req(0, 0)));
    EXPECT_TRUE(q.tryPush(req(1, 0)));
    EXPECT_TRUE(q.tryPush(req(2, 1)));
    EXPECT_FALSE(q.tryPush(req(3, 1))); // global depth
    EXPECT_EQ(q.rejected(1), 1u);
}

TEST(RequestQueue, OldestTenantHonoursEligibility)
{
    RequestQueue q(QueueConfig{}, 3);
    EXPECT_TRUE(q.tryPush(req(0, 2)));
    EXPECT_TRUE(q.tryPush(req(1, 0)));

    EXPECT_EQ(q.oldestTenant({0, 1, 2}).value(), 2u);
    EXPECT_EQ(q.oldestTenant({0, 1}).value(), 0u);
    EXPECT_FALSE(q.oldestTenant({1}).has_value());
}

// ------------------------------------------------------------------
// Schedulers (unit level, no device)
// ------------------------------------------------------------------

TEST(Scheduler, FcfsPicksOldestAcrossTenantsBatchOne)
{
    RequestQueue q(QueueConfig{}, 2);
    EXPECT_TRUE(q.tryPush(req(0, 1)));
    EXPECT_TRUE(q.tryPush(req(1, 0)));

    auto sched = Scheduler::make(SchedulerConfig{}, {1.0, 1.0});
    auto batch = sched->pick(q, {0, 1}, 0.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->tenant, 1u);
    EXPECT_EQ(batch->size(), 1u);

    batch = sched->pick(q, {0, 1}, 0.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->tenant, 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(sched->pick(q, {0, 1}, 0.0).has_value());
}

TEST(Scheduler, BatchTimeoutWaitsForCompanionsThenFlushes)
{
    SchedulerConfig config;
    config.policy = SchedPolicy::BatchTimeout;
    config.maxBatch = 4;
    config.batchTimeoutNs = 1000.0;
    auto sched = Scheduler::make(config, {1.0});

    RequestQueue q(QueueConfig{}, 1);
    EXPECT_TRUE(q.tryPush(req(0, 0, 0.0)));
    EXPECT_TRUE(q.tryPush(req(1, 0, 10.0)));

    // Two of four queued, head not timed out: hold.
    EXPECT_FALSE(sched->pick(q, {0}, 500.0).has_value());
    EXPECT_DOUBLE_EQ(sched->nextReadyNs(q, {0}, 500.0), 1000.0);

    // Head timed out: flush the partial batch.
    auto batch = sched->pick(q, {0}, 1000.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 2u);

    // A full batch dispatches immediately, no timeout wait.
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_TRUE(q.tryPush(req(10 + i, 0, 2000.0)));
    batch = sched->pick(q, {0}, 2000.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 4u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(Scheduler, FairShareTracksWeightedServedTime)
{
    SchedulerConfig config;
    config.policy = SchedPolicy::FairShare;
    config.maxBatch = 1;
    auto sched = Scheduler::make(config, {3.0, 1.0});

    RequestQueue q(QueueConfig{1000, 0}, 2);
    std::uint64_t id = 0;
    for (unsigned i = 0; i < 100; ++i) {
        EXPECT_TRUE(q.tryPush(req(id++, 0)));
        EXPECT_TRUE(q.tryPush(req(id++, 1)));
    }

    // Saturated queue, equal per-dispatch cost: dispatch counts must
    // follow the 3:1 weights exactly.
    unsigned dispatched[2] = {0, 0};
    for (unsigned i = 0; i < 80; ++i) {
        auto batch = sched->pick(q, {0, 1}, 0.0);
        ASSERT_TRUE(batch.has_value());
        sched->onDispatched(*batch, 1000.0);
        ++dispatched[batch->tenant];
    }
    EXPECT_EQ(dispatched[0], 60u);
    EXPECT_EQ(dispatched[1], 20u);
}

TEST(Scheduler, FairShareIsWorkConserving)
{
    SchedulerConfig config;
    config.policy = SchedPolicy::FairShare;
    config.maxBatch = 2;
    auto sched = Scheduler::make(config, {8.0, 1.0});

    // Only the light tenant has work: it must still dispatch.
    RequestQueue q(QueueConfig{}, 2);
    EXPECT_TRUE(q.tryPush(req(0, 1)));
    auto batch = sched->pick(q, {0, 1}, 0.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->tenant, 1u);
}

TEST(Scheduler, FairSharePadsMissingWeightsWithDefault)
{
    SchedulerConfig config;
    config.policy = SchedPolicy::FairShare;
    config.maxBatch = 1;
    // Fewer weights than tenants: tenants 1 and 2 must behave as
    // weight-1.0 tenants instead of indexing past the weight arrays
    // (this read out of bounds before the lazy-padding fix).
    auto sched = Scheduler::make(config, {2.0});

    RequestQueue q(QueueConfig{1000, 0}, 3);
    std::uint64_t id = 0;
    for (unsigned i = 0; i < 40; ++i)
        for (unsigned t = 0; t < 3; ++t)
            EXPECT_TRUE(q.tryPush(req(id++, t)));

    unsigned dispatched[3] = {0, 0, 0};
    for (unsigned i = 0; i < 40; ++i) {
        auto batch = sched->pick(q, {0, 1, 2}, 0.0);
        ASSERT_TRUE(batch.has_value());
        sched->onDispatched(*batch, 1000.0);
        ++dispatched[batch->tenant];
    }
    // 2:1:1 effective weights over 40 equal-cost dispatches.
    EXPECT_EQ(dispatched[0], 20u);
    EXPECT_EQ(dispatched[1], 10u);
    EXPECT_EQ(dispatched[2], 10u);
}

TEST(Scheduler, FairShareHandlesEmptyWeightVector)
{
    SchedulerConfig config;
    config.policy = SchedPolicy::FairShare;
    config.maxBatch = 1;
    auto sched = Scheduler::make(config, {});

    RequestQueue q(QueueConfig{}, 2);
    EXPECT_TRUE(q.tryPush(req(0, 1)));
    auto batch = sched->pick(q, {0, 1}, 0.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->tenant, 1u);
    sched->onDispatched(*batch, 500.0);
}

// ------------------------------------------------------------------
// Shard plan
// ------------------------------------------------------------------

TEST(ShardPlan, EqualWeightsSplitChannelsAndRowsDisjointly)
{
    const ShardPlan plan = ShardPlan::sharded(16, 400, {1.0, 1.0});
    ASSERT_EQ(plan.numShards(), 2u);
    EXPECT_TRUE(plan.isSharded());

    const ShardSpec &a = plan.shard(plan.shardOf(0));
    const ShardSpec &b = plan.shard(plan.shardOf(1));
    EXPECT_EQ(a.numChannels, 8u);
    EXPECT_EQ(b.numChannels, 8u);
    EXPECT_EQ(a.firstChannel + a.numChannels, b.firstChannel);
    EXPECT_EQ(a.numRows + b.numRows, 400u);
    EXPECT_EQ(a.firstRow + a.numRows, b.firstRow);
}

TEST(ShardPlan, SkewedWeightsRoundChannelsToPowerOfTwo)
{
    const ShardPlan plan = ShardPlan::sharded(16, 400, {3.0, 1.0});
    const ShardSpec &heavy = plan.shard(plan.shardOf(0));
    const ShardSpec &light = plan.shard(plan.shardOf(1));
    EXPECT_EQ(heavy.numChannels, 8u); // floorPow2(12)
    EXPECT_EQ(light.numChannels, 4u); // floorPow2(4)
    EXPECT_EQ(heavy.numRows, 300u);
    EXPECT_EQ(light.numRows, 100u);
}

// ------------------------------------------------------------------
// Engine end to end
// ------------------------------------------------------------------

ServeConfig
oneTenantConfig()
{
    ServeConfig config;
    config.system = smallSystem();
    config.tenants = {TenantSpec{"a", tinyApp("tiny-a"), 1.0}};
    return config;
}

TEST(ServingEngine, SingleRequestCompletesWithServiceLatency)
{
    ServingEngine engine(oneTenantConfig());
    EXPECT_TRUE(engine.submit(0, 0.0));
    engine.drain();

    const auto done = engine.takeCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_GT(done[0].serviceNs(), 0.0);
    EXPECT_DOUBLE_EQ(done[0].queueNs(), 0.0);
    EXPECT_DOUBLE_EQ(done[0].latencyNs(), done[0].serviceNs());

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.completed, 1u);
    EXPECT_EQ(report.total.rejected, 0u);
    EXPECT_GT(report.total.service.p50Ns, 0.0);
    EXPECT_EQ(engine.system().serveStats().counter("tenant.a.completed"),
              1u);
}

TEST(ServingEngine, AdmissionRejectsBurstBeyondQueueDepth)
{
    ServeConfig config = oneTenantConfig();
    config.queue.depth = 4;
    ServingEngine engine(config);

    unsigned admitted = 0;
    for (unsigned i = 0; i < 10; ++i)
        admitted += engine.submit(0, 0.0) ? 1 : 0;
    // The first dispatches immediately, four queue, five bounce.
    EXPECT_EQ(admitted, 5u);
    engine.drain();

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.submitted, 10u);
    EXPECT_EQ(report.total.admitted, 5u);
    EXPECT_EQ(report.total.rejected, 5u);
    EXPECT_EQ(report.total.completed, 5u);
    EXPECT_EQ(engine.system().serveStats().counter("tenant.a.rejected"),
              5u);
}

ServeConfig
twoTenantConfig(bool sharded)
{
    ServeConfig config;
    config.system = smallSystem();
    config.tenants = {TenantSpec{"alpha", tinyApp("tiny-alpha"), 1.0},
                      TenantSpec{"beta", tinyApp("tiny-beta"), 1.0}};
    config.shardChannels = sharded;
    return config;
}

TEST(ServingEngine, ShardedDriversAreRowDisjointAndExhaustIndependently)
{
    ServingEngine engine(twoTenantConfig(true));
    ASSERT_TRUE(engine.plan().isSharded());

    PimDriver &a = engine.tenantDriver(0);
    PimDriver &b = engine.tenantDriver(1);

    // Disjoint row partitions covering distinct ranges.
    EXPECT_NE(&a, &b);
    const unsigned a_end = a.baseRow() + a.capacityRows();
    EXPECT_LE(a_end, b.baseRow());

    // Exhaust tenant a's partition entirely.
    PimRowBlock all{};
    ASSERT_EQ(a.allocRows(a.capacityRows(), all), PimStatus::Ok);
    EXPECT_GE(all.firstRow, a.baseRow());
    EXPECT_LE(all.firstRow + all.numRows, a_end);
    PimRowBlock more{};
    EXPECT_EQ(a.allocRows(1, more), PimStatus::OutOfRows);

    // Tenant b is untouched: full capacity still available, and every
    // block it hands out stays inside its own partition.
    EXPECT_EQ(b.freeRows(), b.capacityRows());
    PimRowBlock bb{};
    ASSERT_EQ(b.allocRows(8, bb), PimStatus::Ok);
    EXPECT_GE(bb.firstRow, b.baseRow());
    EXPECT_LT(bb.firstRow, b.baseRow() + b.capacityRows());
    EXPECT_GE(bb.firstRow, a_end); // never inside tenant a's shard
}

TEST(ServingEngine, ShardedChannelGroupsAreDisjoint)
{
    ServingEngine engine(twoTenantConfig(true));
    const ShardSpec &a = engine.plan().shard(engine.plan().shardOf(0));
    const ShardSpec &b = engine.plan().shard(engine.plan().shardOf(1));
    EXPECT_EQ(a.numChannels + b.numChannels, 16u);
    EXPECT_LE(a.firstChannel + a.numChannels, b.firstChannel);
}

TEST(ServingEngine, FairShareServesWeightedThroughputUnderSaturation)
{
    ServeConfig config = twoTenantConfig(false);
    config.tenants[0].weight = 3.0;
    config.tenants[1].weight = 1.0;
    config.sched.policy = SchedPolicy::FairShare;
    config.sched.maxBatch = 1;
    config.queue.depth = 1000;
    auto cache = std::make_shared<ServiceTimeCache>();
    config.timingCache = cache;
    ServingEngine engine(config);

    // Saturate: everything arrives up-front, the scheduler decides who
    // gets the device.
    for (unsigned i = 0; i < 40; ++i) {
        ASSERT_TRUE(engine.submit(0, 0.0));
        ASSERT_TRUE(engine.submit(1, 0.0));
    }
    // Stop mid-backlog: advance until ~half the work is done, then
    // compare served device time (the fair-share currency).
    engine.drain();

    const ServeReport report = engine.report();
    EXPECT_EQ(report.total.completed, 80u);
    // Both tenants run the same app, so served time per weight equal
    // means tenant 0 finished (nearly) 3x tenant 1's work before the
    // queues emptied; over the whole drain both complete everything,
    // so assert on queueing delay instead: the heavy tenant waited
    // less on average.
    const double wait0 = report.tenants[0].queue.meanNs;
    const double wait1 = report.tenants[1].queue.meanNs;
    EXPECT_LT(wait0, wait1);
    // And served-time accounting matches completions.
    EXPECT_GT(report.tenants[0].servedNs, 0.0);
    EXPECT_NEAR(report.tenants[0].servedNs, report.tenants[1].servedNs,
                report.tenants[0].servedNs * 0.05);
}

TEST(ServingEngine, DeterministicReplaySameSeedSameReport)
{
    const std::vector<ArrivalSpec> specs = {{0, 2000.0}, {1, 1000.0}};
    const double horizon = 5.0e7; // 50 ms
    const auto arrivals1 = poissonArrivals(specs, horizon, 42);
    const auto arrivals2 = poissonArrivals(specs, horizon, 42);
    ASSERT_EQ(arrivals1.size(), arrivals2.size());
    for (std::size_t i = 0; i < arrivals1.size(); ++i) {
        EXPECT_DOUBLE_EQ(arrivals1[i].ns, arrivals2[i].ns);
        EXPECT_EQ(arrivals1[i].tenant, arrivals2[i].tenant);
    }
    const auto arrivals3 = poissonArrivals(specs, horizon, 43);
    bool identical = arrivals1.size() == arrivals3.size();
    for (std::size_t i = 0; identical && i < arrivals1.size(); ++i)
        identical = arrivals1[i].ns == arrivals3[i].ns &&
                    arrivals1[i].tenant == arrivals3[i].tenant;
    EXPECT_FALSE(identical); // a different seed draws a different stream

    auto cache = std::make_shared<ServiceTimeCache>();
    ServeConfig config = twoTenantConfig(false);
    config.sched.policy = SchedPolicy::BatchTimeout;
    config.timingCache = cache;

    ServingEngine engine1(config);
    const ServeReport r1 = runOpenLoop(engine1, arrivals1);
    ServingEngine engine2(config);
    const ServeReport r2 = runOpenLoop(engine2, arrivals2);

    EXPECT_DOUBLE_EQ(r1.horizonNs, r2.horizonNs);
    EXPECT_EQ(r1.total.completed, r2.total.completed);
    EXPECT_EQ(r1.total.rejected, r2.total.rejected);
    EXPECT_EQ(r1.total.batches, r2.total.batches);
    ASSERT_EQ(r1.tenants.size(), r2.tenants.size());
    for (std::size_t t = 0; t < r1.tenants.size(); ++t) {
        EXPECT_EQ(r1.tenants[t].completed, r2.tenants[t].completed);
        EXPECT_DOUBLE_EQ(r1.tenants[t].e2e.p50Ns, r2.tenants[t].e2e.p50Ns);
        EXPECT_DOUBLE_EQ(r1.tenants[t].e2e.p95Ns, r2.tenants[t].e2e.p95Ns);
        EXPECT_DOUBLE_EQ(r1.tenants[t].e2e.p99Ns, r2.tenants[t].e2e.p99Ns);
        EXPECT_DOUBLE_EQ(r1.tenants[t].throughputRps,
                         r2.tenants[t].throughputRps);
    }
}

TEST(ShardServiceModelDeathTest, RejectsNonMultipleChannelCount)
{
    // 24 channels on 16-pch stacks is neither a whole number of stacks
    // nor a single smaller stack; the old code truncated 24/16 to one
    // stack and silently modelled a 16-channel shard.
    EXPECT_DEATH(ShardServiceModel(smallSystem(), 24, nullptr),
                 "not a multiple of pchPerStack");
}

TEST(ShardServiceModel, WholeStackMultiplesRebuildTheStackSplit)
{
    // 32 channels on 16-pch stacks: exactly two stacks, nothing dropped.
    ShardServiceModel model(smallSystem(), 32, nullptr);
    EXPECT_GT(model.serviceNs(tinyApp("tiny-32"), 1), 0.0);
}

TEST(ServingEngine, BatchingBeatsFcfsThroughputUnderSaturation)
{
    auto cache = std::make_shared<ServiceTimeCache>();

    // Calibrate: the per-request service time at batch 1.
    ShardServiceModel probe(smallSystem(), 16, cache);
    const double svc1 = probe.serviceNs(tinyApp("tiny-a"), 1);
    ASSERT_GT(svc1, 0.0);

    // Offer 2x the FCFS capacity for ~100 service times.
    const double rate = 2.0e9 / svc1;
    const double horizon = 100.0 * svc1;
    const auto arrivals =
        poissonArrivals({{0, rate}}, horizon, 7);

    ServeConfig fcfs;
    fcfs.system = smallSystem();
    fcfs.tenants = {TenantSpec{"a", tinyApp("tiny-a"), 1.0}};
    fcfs.timingCache = cache;
    fcfs.sched.policy = SchedPolicy::Fcfs;

    ServeConfig batched = fcfs;
    batched.sched.policy = SchedPolicy::BatchTimeout;
    batched.sched.maxBatch = 8;
    batched.sched.batchTimeoutNs = svc1;

    ServingEngine engineF(fcfs);
    const ServeReport rf = runOpenLoop(engineF, arrivals);
    ServingEngine engineB(batched);
    const ServeReport rb = runOpenLoop(engineB, arrivals);

    // Same offered load; batching amortises the kernel-launch overhead
    // so it must admit and complete more and sustain higher throughput.
    EXPECT_GT(rb.total.completed, rf.total.completed);
    EXPECT_LT(rb.total.rejected, rf.total.rejected);
    EXPECT_GT(rb.total.throughputRps, rf.total.throughputRps);
    EXPECT_LT(rb.total.batches, rb.total.completed); // real coalescing
}

TEST(ServingEngine, ClosedLoopCompletesExactlyTheRequestedCount)
{
    ServeConfig config = twoTenantConfig(false);
    config.sched.policy = SchedPolicy::BatchTimeout;
    config.queue.depth = 64;
    auto cache = std::make_shared<ServiceTimeCache>();
    config.timingCache = cache;
    ServingEngine engine(config);

    const ServeReport report = runClosedLoop(engine, 4, 20, 0.0);
    EXPECT_EQ(report.total.completed, 40u);
    EXPECT_EQ(report.total.rejected, 0u);
    EXPECT_EQ(report.tenants[0].completed, 20u);
    EXPECT_EQ(report.tenants[1].completed, 20u);
}

} // namespace
} // namespace pimsim::serve
