/**
 * @file
 * RequestTracer tests: tail-based keep policy, seeded replay
 * determinism, span-tree connectivity of flushed traces, per-trace
 * buffering caps, and exemplar retention in the stats registry.
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/reqtrace.h"
#include "common/stats.h"
#include "common/stats_registry.h"
#include "common/trace.h"

namespace pimsim {
namespace {

/** Find an arg value on a flushed TraceEvent ("" if absent). */
std::string
arg(const TraceEvent &e, const std::string &key)
{
    for (const auto &[k, v] : e.args) {
        if (k == key)
            return v;
    }
    return "";
}

/**
 * Drive a deterministic synthetic workload through a tracer: `n`
 * requests, every 17th erred, every 23rd hedged, latencies a fixed
 * function of the index. Returns the kept ids after flush, sorted.
 */
std::vector<std::uint64_t>
runWorkload(const RequestTracerConfig &config, int n)
{
    RequestTracer tracer(config);
    TraceSession session;
    for (int i = 0; i < n; ++i) {
        RequestTraceContext ctx = tracer.begin(i * 10.0);
        tracer.span(ctx, kTracePidServing, 0, "request", "serve",
                    i * 10.0, 5.0);
        TraceOutcome out;
        out.latencyNs = static_cast<double>((i * 37) % 1000);
        out.erred = (i % 17) == 0;
        out.hedged = (i % 23) == 0;
        tracer.end(ctx, out);
    }
    tracer.flush(session);
    std::vector<std::uint64_t> ids(tracer.keptTraceIds().begin(),
                                   tracer.keptTraceIds().end());
    std::sort(ids.begin(), ids.end());
    return ids;
}

// ------------------------------------------------------------------
// Keep policy
// ------------------------------------------------------------------

TEST(RequestTracer, MustKeepOutcomesAreAlwaysKept)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.0; // isolate the must-keep class
    config.slowestFraction = 0.0;
    RequestTracer tracer(config);

    const auto end_with = [&tracer](TraceOutcome out) {
        RequestTraceContext ctx = tracer.begin(0.0);
        tracer.span(ctx, kTracePidServing, 0, "r", "serve", 0.0, 1.0);
        tracer.end(ctx, out);
        return ctx.traceId;
    };

    TraceOutcome erred;
    erred.erred = true;
    TraceOutcome missed;
    missed.deadlineMissed = true;
    TraceOutcome hedged;
    hedged.hedged = true;
    TraceOutcome failed_over;
    failed_over.failedOver = true;
    TraceOutcome clean;
    clean.latencyNs = 1e9; // slow, but the slow pool is disabled

    EXPECT_TRUE(tracer.kept(end_with(erred)));
    EXPECT_TRUE(tracer.kept(end_with(missed)));
    EXPECT_TRUE(tracer.kept(end_with(hedged)));
    EXPECT_TRUE(tracer.kept(end_with(failed_over)));
    EXPECT_FALSE(tracer.kept(end_with(clean)));

    EXPECT_EQ(tracer.mustKeepCount(), 4u);
    EXPECT_EQ(tracer.headSampledCount(), 0u);
    EXPECT_EQ(tracer.tracesEnded(), 5u);
}

TEST(RequestTracer, SlowestPoolKeepsTheSlowestTerminals)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.0;
    config.slowestFraction = 0.05;
    RequestTracer tracer(config);
    TraceSession session;

    // Latency == trace index, ended in increasing order: the pool
    // always holds the slowest-so-far, so the final set is exactly the
    // ceil(0.05 * 100) = 5 slowest requests.
    std::vector<std::uint64_t> ids;
    for (int i = 1; i <= 100; ++i) {
        RequestTraceContext ctx = tracer.begin(0.0);
        ids.push_back(ctx.traceId);
        TraceOutcome out;
        out.latencyNs = static_cast<double>(i);
        tracer.end(ctx, out);
    }
    tracer.flush(session); // promotes the surviving candidates

    EXPECT_EQ(tracer.slowKeptCount(), 5u);
    EXPECT_EQ(tracer.keptTraceIds().size(), 5u);
    for (int i = 95; i < 100; ++i)
        EXPECT_TRUE(tracer.kept(ids[i])) << "latency " << i + 1;
    EXPECT_FALSE(tracer.kept(ids[0]));
}

TEST(RequestTracer, KeptCountsPartitionExactly)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.10;
    config.slowestFraction = 0.02;
    config.seed = 7;
    RequestTracer tracer(config);
    TraceSession session;
    for (int i = 0; i < 500; ++i) {
        RequestTraceContext ctx = tracer.begin(0.0);
        TraceOutcome out;
        out.latencyNs = static_cast<double>((i * 131) % 997);
        out.erred = (i % 50) == 0;
        tracer.end(ctx, out);
    }
    tracer.flush(session);

    EXPECT_EQ(tracer.keptTraceIds().size(),
              tracer.mustKeepCount() + tracer.headSampledCount() +
                  tracer.slowKeptCount());
    EXPECT_EQ(tracer.mustKeepCount(), 10u); // the erred requests
    EXPECT_GT(tracer.headSampledCount(), 0u);
    EXPECT_GT(tracer.slowKeptCount(), 0u);
}

// ------------------------------------------------------------------
// Replay determinism
// ------------------------------------------------------------------

TEST(RequestTracer, SameSeedReplaysBitIdenticalKeptSet)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.05;
    config.slowestFraction = 0.02;
    config.seed = 42;

    const auto first = runWorkload(config, 2000);
    const auto replay = runWorkload(config, 2000);
    EXPECT_EQ(first, replay);
    EXPECT_FALSE(first.empty());

    config.seed = 43; // a different seed picks a different head sample
    const auto other = runWorkload(config, 2000);
    EXPECT_NE(first, other);
}

TEST(RequestTracer, HeadSampleIsAPureFunctionOfIdAndSeed)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.25;
    config.seed = 9;
    const RequestTracer a(config), b(config);
    std::uint64_t sampled = 0;
    for (std::uint64_t id = 1; id <= 4000; ++id) {
        EXPECT_EQ(a.headSampled(id), b.headSampled(id));
        sampled += a.headSampled(id) ? 1 : 0;
    }
    // ~25% +- a loose tolerance: the hash is uniform, not exact.
    EXPECT_GT(sampled, 800u);
    EXPECT_LT(sampled, 1200u);

    config.headSampleRate = 0.0;
    EXPECT_FALSE(RequestTracer(config).headSampled(1));
    config.headSampleRate = 1.0;
    EXPECT_TRUE(RequestTracer(config).headSampled(1));
}

// ------------------------------------------------------------------
// Flushed span trees
// ------------------------------------------------------------------

TEST(RequestTracer, FlushedTraceFormsAConnectedSpanTree)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.0;
    config.slowestFraction = 0.0;
    RequestTracer tracer(config);
    TraceSession session;

    // Root span on the serving track, a cluster attempt under it, an
    // LLM decode iteration under the attempt, plus an instant and a
    // flow stitching serving -> cluster.
    RequestTraceContext root = tracer.begin(100.0);
    tracer.span(root, kTracePidServing, 0, "request", "serve", 100.0,
                900.0);
    RequestTraceContext attempt = tracer.child(root);
    tracer.span(attempt, kTracePidCluster, 2, "attempt", "rpc", 150.0,
                700.0);
    RequestTraceContext iter = tracer.child(attempt);
    tracer.span(iter, kTracePidLlm, 0, "decode-iter", "llm", 200.0,
                100.0);
    tracer.instant(attempt, kTracePidCluster, 2, "retry", "rpc", 400.0);
    tracer.flow(root, "dispatch", kTracePidServing, 0, 140.0,
                kTracePidCluster, 2, 150.0);

    TraceOutcome out;
    out.erred = true;
    tracer.end(root, out);
    tracer.flush(session);

    // Rebuild the tree from the emitted args.
    std::set<std::string> span_ids;
    std::map<std::string, std::string> parent_of;
    int roots = 0, flow_starts = 0, flow_ends = 0;
    for (const auto &e : session.events()) {
        if (e.phase == TraceEvent::Phase::FlowStart)
            ++flow_starts;
        if (e.phase == TraceEvent::Phase::FlowEnd)
            ++flow_ends;
        if (e.phase != TraceEvent::Phase::Complete &&
            e.phase != TraceEvent::Phase::Instant)
            continue;
        EXPECT_EQ(arg(e, "trace"), "1");
        ASSERT_FALSE(arg(e, "span").empty()) << e.name;
        ASSERT_FALSE(arg(e, "parent").empty()) << e.name;
        if (e.phase == TraceEvent::Phase::Complete) {
            span_ids.insert(arg(e, "span"));
            parent_of[arg(e, "span")] = arg(e, "parent");
            if (arg(e, "parent") == "0")
                ++roots;
        }
    }
    EXPECT_EQ(roots, 1);
    EXPECT_EQ(span_ids.size(), 3u);
    EXPECT_EQ(flow_starts, 1);
    EXPECT_EQ(flow_ends, 1);
    // Every non-root parent resolves to a recorded span: no orphans.
    for (const auto &[span, parent] : parent_of) {
        if (parent != "0") {
            EXPECT_TRUE(span_ids.count(parent))
                << "span " << span << " orphaned under " << parent;
        }
    }
    EXPECT_EQ(tracer.eventsFlushed(), 6u);
}

TEST(RequestTracer, FlowIdsStaySessionUniqueAcrossTraces)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.0;
    config.slowestFraction = 0.0;
    RequestTracer tracer(config);
    TraceSession session;
    session.flowStart(1, 0, "pre", "flow", 0.0,
                      session.nextFlowId()); // session already has one

    for (int i = 0; i < 3; ++i) {
        RequestTraceContext ctx = tracer.begin(0.0);
        tracer.flow(ctx, "hop", kTracePidServing, 0, 1.0,
                    kTracePidCluster, 0, 2.0);
        tracer.flow(ctx, "hop2", kTracePidCluster, 0, 3.0, kTracePidLlm,
                    0, 4.0);
        TraceOutcome out;
        out.erred = true;
        tracer.end(ctx, out);
    }
    tracer.flush(session);

    std::map<std::uint64_t, int> starts_per_id;
    for (const auto &e : session.events()) {
        if (e.phase == TraceEvent::Phase::FlowStart)
            ++starts_per_id[e.flowId];
    }
    ASSERT_EQ(starts_per_id.size(), 7u); // 1 pre-existing + 3*2 remapped
    for (const auto &[id, count] : starts_per_id)
        EXPECT_EQ(count, 1) << "flow id " << id << " reused";
}

TEST(RequestTracer, TruncatesPerTraceBufferAtTheCap)
{
    RequestTracerConfig config;
    config.headSampleRate = 0.0;
    config.slowestFraction = 0.0;
    config.maxEventsPerTrace = 4;
    RequestTracer tracer(config);
    TraceSession session;

    RequestTraceContext ctx = tracer.begin(0.0);
    for (int i = 0; i < 10; ++i)
        tracer.span(ctx, kTracePidServing, 0, "e", "serve", i * 10.0,
                    1.0);
    TraceOutcome out;
    out.erred = true;
    tracer.end(ctx, out);
    tracer.flush(session);

    EXPECT_EQ(tracer.eventsTruncated(), 6u);
    EXPECT_EQ(tracer.eventsFlushed(), 4u);
    // The truncation is visible in the trace itself as an instant.
    bool saw_marker = false;
    for (const auto &e : session.events()) {
        if (e.name == "trace-truncated") {
            saw_marker = true;
            EXPECT_EQ(arg(e, "dropped"), "6");
        }
    }
    EXPECT_TRUE(saw_marker);
}

TEST(RequestTracer, InactiveAndEndedContextsAreNoOps)
{
    RequestTracer tracer;
    TraceSession session;

    RequestTraceContext inactive; // traceId 0
    tracer.span(inactive, 1, 0, "x", "c", 0.0, 1.0);
    EXPECT_EQ(tracer.eventsBuffered(), 0u);
    EXPECT_FALSE(tracer.child(inactive).active());

    RequestTraceContext ctx = tracer.begin(0.0);
    TraceOutcome out;
    out.erred = true;
    tracer.end(ctx, out);
    tracer.end(ctx, out); // double end: no double counting
    EXPECT_EQ(tracer.tracesEnded(), 1u);
    tracer.span(ctx, 1, 0, "late", "c", 5.0, 1.0); // after terminal
    tracer.flush(session);
    for (const auto &e : session.events())
        EXPECT_NE(e.name, "late");
}

// ------------------------------------------------------------------
// Exemplars
// ------------------------------------------------------------------

TEST(RequestTracer, ExemplarRetentionPrunesToKeptTraces)
{
    Histogram h(100, 64);
    h.sample(150, /*trace_id=*/1);
    h.sample(160, /*trace_id=*/2);  // same bucket: newest wins the slot
    h.sample(1250, /*trace_id=*/3); // different bucket
    h.sample(1260, /*trace_id=*/0); // no exemplar recorded

    StatGroup g("g");
    Histogram owned(100, 64);
    owned.sample(50, /*trace_id=*/9);
    g.registerHistogram("owned", &owned);

    StatsRegistry reg;
    reg.addHistogram("lat", &h);
    reg.addGroup("grp", &g);

    std::unordered_set<std::uint64_t> kept = {2, 3};
    reg.retainExemplars(kept);

    std::set<std::uint64_t> surviving;
    for (const auto &[bucket, slots] : h.exemplars()) {
        (void)bucket;
        for (const auto &ex : slots)
            surviving.insert(ex.traceId);
    }
    EXPECT_TRUE(surviving.count(2));
    EXPECT_TRUE(surviving.count(3));
    EXPECT_FALSE(surviving.count(1));
    // The group-owned histogram's id 9 was not kept: pruned too.
    EXPECT_TRUE(owned.exemplars().empty());
}

} // namespace
} // namespace pimsim
