/**
 * @file
 * PIM channel tests beyond the unit level: the two-row register map
 * (2x variant), the HBM3-generation fast mode switch (Section VIII
 * future work), refresh interference during AB-PIM kernels, and
 * per-unit register readback routing.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stack/blas.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

Fp16Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Fp16Vector v(n);
    for (auto &x : v)
        x = rng.nextFp16();
    return v;
}

bool
bitEqual(const Fp16Vector &a, const Fp16Vector &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].bits() != b[i].bits())
            return false;
    return true;
}

SystemConfig
smallConfig()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1;
    c.geometry.rowsPerBank = 512;
    return c;
}

TEST(PimChannelMap, TwoXVariantSpillsIntoSecondConfigRow)
{
    SystemConfig cfg = smallConfig();
    cfg.pim = cfg.pim.withDoubleResources();
    PimSystem sys(cfg);
    PimChannel *pim = sys.controller(0).pim();

    // With CRF 64 (8 cols), GRF 2x16 (32 cols) and SRF/opmode, the map
    // exceeds one 32-column row.
    EXPECT_GE(pim->opModeCol(), 32u);
    const auto [row, col] = pim->configAddr(pim->opModeCol());
    EXPECT_EQ(row, pim->confMap().configRow2);
    EXPECT_EQ(col, pim->opModeCol() - 32);
    // Lower columns stay in the primary config row.
    EXPECT_EQ(pim->configAddr(0).first, pim->confMap().configRow);
}

TEST(PimChannelMap, RegisterReadbackRoutesByAddressedBank)
{
    SystemConfig cfg = smallConfig();
    PimSystem sys(cfg);
    PimChannel *pim = sys.controller(0).pim();
    auto &pch = sys.controller(0).channel();

    // Distinct GRF_A[0] contents per unit (set directly).
    for (unsigned u = 0; u < pim->numUnits(); ++u)
        pim->unit(u).regs().setGrf(0, 0,
                                   broadcast(Fp16(1.0f + u)));

    // Enter AB mode and read GRF_A[0] through different bank addresses.
    Cycle now = 0;
    auto go = [&](const Command &cmd) {
        now = pch.earliestIssue(cmd, now);
        return pch.issue(cmd, now);
    };
    go(Command::act(0, 0, pim->confMap().abmrRow));
    go(Command::pre(0, 0));
    go(Command::act(0, 0, pim->confMap().configRow));
    for (unsigned u = 0; u < pim->numUnits(); ++u) {
        const unsigned flat = 2 * u;
        const Command rd = Command::rd(flat / 4, flat % 4,
                                       pim->grfACol(0));
        const IssueResult r = go(rd);
        EXPECT_TRUE(r.intercepted);
        EXPECT_EQ(burstToLanes(r.data)[0].bits(),
                  Fp16(1.0f + u).bits())
            << "unit " << u;
    }
}

TEST(FastModeSwitch, EndToEndResultsStayBitExact)
{
    SystemConfig cfg = smallConfig();
    cfg.pim = cfg.pim.withFastModeSwitch();
    PimSystem sys(cfg);
    PimBlas blas(sys);
    const auto a = randomVector(20000, 1);
    const auto b = randomVector(20000, 2);
    Fp16Vector out;
    blas.add(a, b, out);
    EXPECT_TRUE(bitEqual(out, refAdd(a, b)));
    // And the system ends back in plain SB mode.
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch)
        EXPECT_EQ(sys.controller(ch).pim()->mode(), PimMode::Sb);
}

TEST(FastModeSwitch, CutsPerKernelOverhead)
{
    // The HBM3-generation option reduces small-kernel invocation cost:
    // exactly the overhead that throttles decoder-style layers.
    auto kernel_ns = [&](bool fast) {
        SystemConfig cfg = smallConfig();
        if (fast)
            cfg.pim = cfg.pim.withFastModeSwitch();
        PimSystem sys(cfg);
        PimBlas blas(sys);
        const auto w = randomVector(std::size_t{256} * 256, 3);
        const auto x = randomVector(256, 4);
        Fp16Vector y;
        return blas.gemv(w, 256, 256, x, y).ns;
    };
    const double baseline = kernel_ns(false);
    const double fast = kernel_ns(true);
    EXPECT_LT(fast, baseline);
}

TEST(FastModeSwitch, GemvStaysCorrect)
{
    SystemConfig cfg = smallConfig();
    cfg.pim = cfg.pim.withFastModeSwitch();
    PimSystem sys(cfg);
    PimBlas blas(sys);
    const unsigned m = 128, n = 384;
    const auto w = randomVector(std::size_t{m} * n, 5);
    const auto x = randomVector(n, 6);
    Fp16Vector y;
    blas.gemv(w, m, n, x, y);
    EXPECT_TRUE(bitEqual(y, refGemv(w, m, n, x)));
}

TEST(RefreshInterference, PimKernelSurvivesRefresh)
{
    // A long kernel spans several tREFI windows: the controller's
    // all-bank refresh closes rows mid-kernel, the open-page policy
    // reopens them, and results stay bit-exact.
    SystemConfig cfg = smallConfig();
    cfg.controller.refreshEnabled = true;
    PimSystem sys(cfg);
    PimBlas blas(sys);
    const auto a = randomVector(1u << 20, 7);
    const auto b = randomVector(1u << 20, 8);
    Fp16Vector out;
    const BlasTiming t = blas.add(a, b, out);
    EXPECT_TRUE(bitEqual(out, refAdd(a, b)));
    // The kernel really did cross refresh windows.
    const double refi_ns =
        cfg.timing.tREFI * cfg.timing.tCKns;
    EXPECT_GT(t.ns, 2 * refi_ns);
    EXPECT_GE(sys.controller(0).stats().counter("refresh"), 2u);
}

TEST(RefreshInterference, DisablingRefreshIsFasterButUnsafe)
{
    auto add_ns = [&](bool refresh) {
        SystemConfig cfg = smallConfig();
        cfg.controller.refreshEnabled = refresh;
        PimSystem sys(cfg);
        PimBlas blas(sys);
        const auto a = randomVector(1u << 20, 9);
        const auto b = randomVector(1u << 20, 10);
        Fp16Vector out;
        return blas.add(a, b, out).ns;
    };
    EXPECT_LT(add_ns(false), add_ns(true));
}

} // namespace
} // namespace pimsim
