/**
 * @file
 * On-die ECC tests (Section VIII): SEC-DED code properties, exhaustive
 * single-bit correction, double-bit detection, fault injection through
 * the data store, and end-to-end PIM execution over a faulty bank.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>

#include "common/logging.h"
#include "common/rng.h"
#include "dram/ecc.h"
#include "stack/blas.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

TEST(Ecc, StatusNamesAreStable)
{
    EXPECT_STREQ(eccStatusName(EccStatus::Ok), "Ok");
    EXPECT_STREQ(eccStatusName(EccStatus::Corrected), "Corrected");
    EXPECT_STREQ(eccStatusName(EccStatus::Uncorrectable), "Uncorrectable");
}

TEST(Ecc, StatusNamesAreExhaustiveAndDistinct)
{
    // Every enumerator maps to a real name (never the "?" fallback the
    // switch leaves for out-of-range values) and no two names collide.
    const EccStatus all[] = {EccStatus::Ok, EccStatus::Corrected,
                             EccStatus::Uncorrectable};
    for (std::size_t i = 0; i < std::size(all); ++i) {
        const char *name = eccStatusName(all[i]);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?");
        EXPECT_GT(std::strlen(name), 0u);
        for (std::size_t j = i + 1; j < std::size(all); ++j)
            EXPECT_STRNE(name, eccStatusName(all[j]));
    }
}

TEST(Ecc, CleanWordsPass)
{
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t data = rng.next();
        const std::uint8_t check = eccEncodeWord(data);
        std::uint64_t copy = data;
        EXPECT_EQ(eccDecodeWord(copy, check), EccStatus::Ok);
        EXPECT_EQ(copy, data);
    }
}

TEST(Ecc, EverySingleDataBitFlipIsCorrected)
{
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint64_t data = rng.next();
        const std::uint8_t check = eccEncodeWord(data);
        for (unsigned bit = 0; bit < 64; ++bit) {
            std::uint64_t corrupted = data ^ (std::uint64_t{1} << bit);
            EXPECT_EQ(eccDecodeWord(corrupted, check),
                      EccStatus::Corrected)
                << "bit " << bit;
            EXPECT_EQ(corrupted, data) << "bit " << bit;
        }
    }
}

TEST(Ecc, CheckBitFlipsAreCorrectedWithoutTouchingData)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint64_t data = rng.next();
        const std::uint8_t check = eccEncodeWord(data);
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::uint64_t copy = data;
            const auto corrupted_check =
                static_cast<std::uint8_t>(check ^ (1u << bit));
            EXPECT_EQ(eccDecodeWord(copy, corrupted_check),
                      EccStatus::Corrected);
            EXPECT_EQ(copy, data);
        }
    }
}

TEST(Ecc, DoubleBitFlipsAreDetected)
{
    Rng rng(4);
    for (int trial = 0; trial < 5000; ++trial) {
        const std::uint64_t data = rng.next();
        const std::uint8_t check = eccEncodeWord(data);
        const unsigned b1 = static_cast<unsigned>(rng.nextBelow(64));
        unsigned b2 = static_cast<unsigned>(rng.nextBelow(64));
        while (b2 == b1)
            b2 = static_cast<unsigned>(rng.nextBelow(64));
        std::uint64_t corrupted = data ^ (std::uint64_t{1} << b1) ^
                                  (std::uint64_t{1} << b2);
        EXPECT_EQ(eccDecodeWord(corrupted, check),
                  EccStatus::Uncorrectable);
    }
}

TEST(Ecc, BurstEncodeDecodeRoundTrip)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        Burst data;
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.nextBelow(256));
        const EccBytes check = eccEncodeBurst(data);
        Burst copy = data;
        EXPECT_EQ(eccDecodeBurst(copy, check), EccStatus::Ok);
        EXPECT_EQ(copy, data);

        // Flip one random bit: corrected.
        const unsigned bit =
            static_cast<unsigned>(rng.nextBelow(kBurstBytes * 8));
        copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_EQ(eccDecodeBurst(copy, check), EccStatus::Corrected);
        EXPECT_EQ(copy, data);
    }
}

// ---------- data store integration ----------

HbmGeometry
eccGeom()
{
    HbmGeometry g;
    g.rowsPerBank = 64;
    g.onDieEcc = true;
    return g;
}

TEST(EccDataStore, CorrectsInjectedFaultOnRead)
{
    DataStore store(eccGeom());
    Burst data;
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7 + 3);
    store.write(2, 5, 9, data);
    store.injectBitFlip(2, 5, 9, 100);
    EXPECT_EQ(store.read(2, 5, 9), data); // corrected transparently
    EXPECT_EQ(store.eccCorrected(), 1u);
    EXPECT_EQ(store.eccUncorrectable(), 0u);
}

TEST(EccDataStore, DetectsDoubleFault)
{
    setQuiet(true);
    DataStore store(eccGeom());
    Burst data{};
    data.fill(0x3c);
    store.write(0, 1, 0, data);
    store.injectBitFlip(0, 1, 0, 10);
    store.injectBitFlip(0, 1, 0, 11);
    store.read(0, 1, 0);
    EXPECT_EQ(store.eccUncorrectable(), 1u);
}

TEST(EccDataStore, UntouchedRowsReadZeroWithoutErrors)
{
    DataStore store(eccGeom());
    EXPECT_EQ(store.read(0, 0, 0), Burst{});
    EXPECT_EQ(store.eccCorrected(), 0u);
    EXPECT_EQ(store.eccUncorrectable(), 0u);
}

TEST(EccDataStore, ZeroColumnsOfWrittenRowsCheckClean)
{
    // Writing one column allocates the whole row; the other columns'
    // check bytes must validate the all-zero pattern.
    DataStore store(eccGeom());
    Burst data{};
    data.fill(0xff);
    store.write(1, 2, 3, data);
    EXPECT_EQ(store.read(1, 2, 4), Burst{});
    EXPECT_EQ(store.eccCorrected(), 0u);
    EXPECT_EQ(store.eccUncorrectable(), 0u);
}

TEST(EccDataStore, DoubleBitDetectedInEveryBurstWord)
{
    // A burst holds four independently-coded 64-bit words; a double
    // fault in any one of them must be detected.
    setQuiet(true);
    for (unsigned word = 0; word < 4; ++word) {
        DataStore store(eccGeom());
        Burst data{};
        data.fill(0x96);
        store.write(0, 2, 1, data);
        store.injectBitFlip(0, 2, 1, word * 64 + 5);
        store.injectBitFlip(0, 2, 1, word * 64 + 41);
        EccStatus ecc = EccStatus::Ok;
        store.read(0, 2, 1, &ecc);
        EXPECT_EQ(ecc, EccStatus::Uncorrectable) << "word " << word;
        EXPECT_EQ(store.eccUncorrectable(), 1u) << "word " << word;
    }
}

TEST(EccDataStore, ScrubRepairsSingleFaultInTheArray)
{
    DataStore store(eccGeom());
    Burst data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i + 1);
    store.write(3, 4, 5, data);
    store.injectBitFlip(3, 4, 5, 77);
    ASSERT_NE(store.readRaw(3, 4, 5), data); // stored copy is corrupt

    const ScrubOutcome outcome = store.scrubBurst(3, 4, 5);
    EXPECT_EQ(outcome.corrected, 1u);
    EXPECT_EQ(outcome.uncorrectable, 0u);
    EXPECT_EQ(store.readRaw(3, 4, 5), data); // repaired in place

    // The repaired burst reads clean — scrubbing prevented the single
    // fault from aging into a double one.
    EccStatus ecc = EccStatus::Corrected;
    EXPECT_EQ(store.read(3, 4, 5, &ecc), data);
    EXPECT_EQ(ecc, EccStatus::Ok);
}

TEST(EccDataStore, ScrubReportsButCannotRepairDoubleFault)
{
    setQuiet(true);
    DataStore store(eccGeom());
    Burst data{};
    data.fill(0x0f);
    store.write(1, 1, 1, data);
    store.injectBitFlip(1, 1, 1, 8);
    store.injectBitFlip(1, 1, 1, 9);
    const Burst corrupt = store.readRaw(1, 1, 1);

    const ScrubOutcome outcome = store.scrubBurst(1, 1, 1);
    EXPECT_EQ(outcome.corrected, 0u);
    EXPECT_EQ(outcome.uncorrectable, 1u);
    EXPECT_EQ(store.readRaw(1, 1, 1), corrupt); // left untouched
}

TEST(EccDataStore, StuckBitSurvivesRewriteAndStaysCorrectable)
{
    DataStore store(eccGeom());
    Burst data{};
    store.write(0, 3, 2, data); // all zeros
    store.setStuckBit(0, 3, 2, 12, true);
    EXPECT_EQ(store.stuckBitCount(), 1u);

    // The read corrects the defect (check bytes describe intent)...
    EXPECT_EQ(store.read(0, 3, 2), data);
    EXPECT_EQ(store.eccCorrected(), 1u);

    // ...and rewriting the burst does not clear the cell.
    store.write(0, 3, 2, data);
    EXPECT_NE(store.readRaw(0, 3, 2), data);
    EXPECT_EQ(store.read(0, 3, 2), data);

    // Scrubbing cannot permanently repair it either: the cell re-sticks.
    store.scrubBurst(0, 3, 2);
    EXPECT_NE(store.readRaw(0, 3, 2), data);

    store.clearStuckBits();
    EXPECT_EQ(store.stuckBitCount(), 0u);
    store.write(0, 3, 2, data);
    EXPECT_EQ(store.readRaw(0, 3, 2), data);
}

TEST(EccPim, PimKernelComputesCorrectlyOverFaultyBank)
{
    // Section VIII: PIM leverages the on-die ECC engine even in PIM
    // mode — a single-bit fault under a PIM operand is invisible.
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    cfg.geometry.rowsPerBank = 512;
    cfg.geometry.onDieEcc = true;
    PimSystem sys(cfg);
    PimBlas blas(sys);

    Rng rng(42);
    Fp16Vector a(4096), b(4096), out;
    for (auto &v : a)
        v = rng.nextFp16();
    for (auto &v : b)
        v = rng.nextFp16();

    // A clean PIM run over an ECC-protected device is bit-exact.
    const BlasTiming t = blas.add(a, b, out);
    (void)t;
    EXPECT_EQ(out.size(), a.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].bits(), fp16Add(a[i], b[i]).bits());

    // Now corrupt a result burst in place and confirm the driver's
    // readback (the next consumer's load) still sees corrected data.
    PimDriver &driver = blas.driver();
    const Burst before = driver.peek(0, 0, 0, 16);
    sys.controller(0).channel().dataStore().injectBitFlip(0, 0, 16, 42);
    EXPECT_EQ(driver.peek(0, 0, 0, 16), before);
    EXPECT_GE(sys.controller(0).channel().dataStore().eccCorrected(), 1u);
}

} // namespace
} // namespace pimsim
