/**
 * @file
 * PIM runtime preprocessor tests: the analytic cost model agrees with
 * the simulator on which path wins, and its estimates track simulated
 * kernel times.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "host/host_model.h"
#include "stack/blas.h"
#include "stack/preprocessor.h"

namespace pimsim {
namespace {

TEST(Preprocessor, OffloadsBatch1Gemv)
{
    const PimPreprocessor pre(SystemConfig::pimHbmSystem());
    EXPECT_TRUE(pre.gemv(1024, 4096, 1).usePim);
    EXPECT_TRUE(pre.gemv(8192, 8192, 1).usePim);
}

TEST(Preprocessor, KeepsBatchedGemmOnHost)
{
    // Fig. 10: by batch 4 the host wins on GEMV.
    const PimPreprocessor pre(SystemConfig::pimHbmSystem());
    EXPECT_FALSE(pre.gemv(8192, 8192, 8).usePim);
}

TEST(Preprocessor, NeverOffloadsConvolutions)
{
    const PimPreprocessor pre(SystemConfig::pimHbmSystem());
    EXPECT_FALSE(pre.conv(1e9).usePim);
    EXPECT_FALSE(pre.conv(1e6).usePim);
}

TEST(Preprocessor, OffloadsLargeElementwise)
{
    const PimPreprocessor pre(SystemConfig::pimHbmSystem());
    EXPECT_TRUE(pre.elementwise(8u << 20, 2).usePim);
}

TEST(Preprocessor, GemvEstimateTracksSimulation)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    PimSystem sys(cfg);
    PimBlas blas(sys);
    const PimPreprocessor pre(cfg);

    for (const auto [m, n] : {std::pair<unsigned, unsigned>{1024, 4096},
                              {2048, 4096}, {4096, 8192}}) {
        Rng rng(m ^ n);
        Fp16Vector w(std::size_t{m} * n), x(n), y;
        for (auto &v : w)
            v = rng.nextFp16();
        for (auto &v : x)
            v = rng.nextFp16();
        const BlasTiming t = blas.gemv(w, m, n, x, y);
        const double est = pre.pimGemvNs(m, n);
        EXPECT_GT(est, t.ns * 0.5) << m << "x" << n;
        EXPECT_LT(est, t.ns * 2.0) << m << "x" << n;
    }
}

TEST(Preprocessor, ElementwiseEstimateTracksSimulation)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    PimSystem sys(cfg);
    PimBlas blas(sys);
    const PimPreprocessor pre(cfg);

    Rng rng(99);
    const std::size_t n = 1u << 20;
    Fp16Vector a(n), b(n), out;
    for (auto &v : a)
        v = rng.nextFp16();
    for (auto &v : b)
        v = rng.nextFp16();
    const BlasTiming t = blas.add(a, b, out);
    const double est = pre.pimElementwiseNs(n, 2);
    EXPECT_GT(est, t.ns * 0.5);
    EXPECT_LT(est, t.ns * 2.0);
}

TEST(Preprocessor, DecisionMatchesMeasuredWinner)
{
    // The runtime's whole job: its verdicts agree with what actually
    // simulates faster.
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    PimSystem pim_sys(cfg);
    PimSystem hbm_sys(SystemConfig::hbmSystem());
    PimBlas blas(pim_sys);
    HostModel host(hbm_sys);
    const PimPreprocessor pre(cfg);

    for (unsigned batch : {1u, 8u}) {
        const unsigned m = 2048, n = 4096;
        Rng rng(batch);
        Fp16Vector w(std::size_t{m} * n), x(n), y;
        for (auto &v : w)
            v = rng.nextFp16();
        for (auto &v : x)
            v = rng.nextFp16();
        const double pim_ns = batch * blas.gemv(w, m, n, x, y).totalNs();
        const double host_ns = host.gemv(m, n, batch).ns;
        const OffloadDecision d = pre.gemv(m, n, batch);
        EXPECT_EQ(d.usePim, pim_ns < host_ns) << "batch " << batch;
    }
}

} // namespace
} // namespace pimsim
