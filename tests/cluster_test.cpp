/**
 * @file
 * Cluster-tier tests: link occupancy, the four-state health detector,
 * host-level chaos faults, and the ClusterEngine's failover, hedging,
 * admission, accounting, and deterministic-replay guarantees.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster_engine.h"
#include "cluster/host.h"
#include "cluster/interconnect.h"
#include "cluster/router.h"
#include "serve/chaos.h"

namespace pimsim::cluster {
namespace {

SystemConfig
smallSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 channels keeps tests fast
    c.geometry.rowsPerBank = 512;
    return c;
}

AppSpec
tinyApp(unsigned dim = 256)
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = dim;
    fc.input = dim;
    fc.steps = 1;
    fc.pimEligible = true;

    AppSpec app;
    app.name = "tiny-fc" + std::to_string(dim);
    app.layers = {fc};
    return app;
}

ClusterConfig
smallCluster(unsigned hosts = 2, unsigned stacks = 1)
{
    ClusterConfig c;
    c.system = smallSystem();
    c.numHosts = hosts;
    c.stacksPerHost = stacks;
    c.app = tinyApp();
    return c;
}

// ------------------------------------------------------------------
// Link occupancy
// ------------------------------------------------------------------

TEST(Link, UncontendedTransferPaysSerializationPlusLatency)
{
    LinkConfig cfg;
    cfg.latencyNs = 100.0;
    cfg.bandwidthGBs = 1.0; // 1 byte/ns
    Link link(cfg);

    EXPECT_DOUBLE_EQ(link.uncontendedNs(500), 600.0);
    EXPECT_DOUBLE_EQ(link.transfer(500, 0.0), 600.0);
    EXPECT_DOUBLE_EQ(link.busyNs(), 500.0);
}

TEST(Link, BackToBackTransfersSerialize)
{
    LinkConfig cfg;
    cfg.latencyNs = 100.0;
    cfg.bandwidthGBs = 1.0;
    Link link(cfg);

    // Both enter at t=0: the second waits for the first's 500ns of
    // serialization, then pays its own plus propagation.
    EXPECT_DOUBLE_EQ(link.transfer(500, 0.0), 600.0);
    EXPECT_DOUBLE_EQ(link.transfer(500, 0.0), 1100.0);
    // A transfer entering after the link idles starts immediately.
    EXPECT_DOUBLE_EQ(link.transfer(500, 2000.0), 2600.0);
    EXPECT_EQ(link.transfers(), 3u);
    EXPECT_DOUBLE_EQ(link.busyNs(), 1500.0);
}

// ------------------------------------------------------------------
// Health tracker state machine
// ------------------------------------------------------------------

HealthConfig
tightHealth()
{
    HealthConfig h;
    h.window = 4;
    h.minSamples = 2;
    h.suspectThreshold = 0.5;
    h.downThreshold = 1.0;
    h.recoverySuccesses = 2;
    return h;
}

TEST(HealthTracker, HealthySuspectDownRecoveringCycle)
{
    HealthTracker t{tightHealth()};
    EXPECT_EQ(t.state(), HealthState::Healthy);

    // One failure out of two -> 0.5 >= suspect threshold.
    t.record(true, 0.0);
    t.record(false, 1.0);
    EXPECT_EQ(t.state(), HealthState::Suspect);

    // All failures -> 1.0 >= down threshold.
    t.record(false, 2.0);
    t.record(false, 3.0);
    t.record(false, 4.0);
    EXPECT_EQ(t.state(), HealthState::Down);

    // While Down, a failed probe changes nothing; a success starts
    // probation, and any failure there sends it straight back Down.
    t.record(false, 5.0);
    EXPECT_EQ(t.state(), HealthState::Down);
    t.record(true, 6.0);
    EXPECT_EQ(t.state(), HealthState::Recovering);
    t.record(false, 7.0);
    EXPECT_EQ(t.state(), HealthState::Down);

    // Two consecutive successes complete the recovery.
    t.record(true, 8.0);
    t.record(true, 9.0);
    EXPECT_EQ(t.state(), HealthState::Recovering);
    t.record(true, 10.0);
    EXPECT_EQ(t.state(), HealthState::Healthy);

    EXPECT_EQ(t.entries(HealthState::Suspect), 1u);
    EXPECT_EQ(t.entries(HealthState::Down), 2u);
    EXPECT_EQ(t.entries(HealthState::Recovering), 2u);
    EXPECT_EQ(t.entries(HealthState::Healthy), 1u);
    EXPECT_EQ(t.transitions(), 6u);
}

TEST(HealthTracker, SuspectRecoversWhenWindowDilutes)
{
    HealthTracker t{tightHealth()};
    t.record(false, 0.0);
    t.record(true, 1.0);
    EXPECT_EQ(t.state(), HealthState::Suspect); // 1/2 failed
    // One more success dilutes the window under the threshold: trust
    // restored without a probe cycle.
    t.record(true, 2.0);
    EXPECT_EQ(t.state(), HealthState::Healthy);
}

TEST(HealthTracker, NoTransitionBelowMinSamples)
{
    HealthConfig h = tightHealth();
    h.minSamples = 3;
    HealthTracker t{h};
    t.record(false, 0.0);
    t.record(false, 1.0);
    EXPECT_EQ(t.state(), HealthState::Healthy); // only 2 samples
    t.record(false, 2.0);
    EXPECT_EQ(t.state(), HealthState::Down);
}

// ------------------------------------------------------------------
// Router eligibility and probing
// ------------------------------------------------------------------

TEST(ClusterRouter, DownHostsProbeAndSuspectsRefuseRetries)
{
    RouterConfig cfg;
    cfg.health = tightHealth();
    cfg.health.probeIntervalNs = 100.0;
    ClusterRouter r(cfg, 2);

    // Drive host 0 Down.
    for (int i = 0; i < 4; ++i)
        r.recordOutcome(0, false, static_cast<double>(i));
    EXPECT_EQ(r.state(0), HealthState::Down);
    EXPECT_FALSE(r.eligible(0, false));
    EXPECT_EQ(r.aliveHosts(), 1u);
    // Down was declared at t=1 (two samples suffice); the probe was
    // scheduled one interval later.
    EXPECT_DOUBLE_EQ(r.nextProbeNs(), 101.0);

    r.takeProbe(0);
    EXPECT_EQ(r.probesSent(0), 1u);
    r.recordOutcome(0, true, 103.0);
    EXPECT_EQ(r.state(0), HealthState::Recovering);
    EXPECT_TRUE(r.eligible(0, true)); // probation traffic allowed
    EXPECT_DOUBLE_EQ(r.nextProbeNs(), 203.0); // rescheduled

    // A Suspect host takes fresh work but never retries/hedges.
    r.recordOutcome(1, false, 0.0);
    r.recordOutcome(1, true, 1.0);
    EXPECT_EQ(r.state(1), HealthState::Suspect);
    EXPECT_TRUE(r.eligible(1, false));
    EXPECT_FALSE(r.eligible(1, true));
}

TEST(ClusterRouter, FailoverDisabledObservesButAlwaysRoutes)
{
    RouterConfig cfg;
    cfg.failover = false;
    cfg.health = tightHealth();
    ClusterRouter r(cfg, 2);
    for (int i = 0; i < 4; ++i)
        r.recordOutcome(0, false, static_cast<double>(i));
    EXPECT_EQ(r.state(0), HealthState::Down); // detector still sees it
    EXPECT_TRUE(r.eligible(0, true));         // but routing ignores it
    EXPECT_DOUBLE_EQ(r.nextProbeNs(), kNoEventNs); // and never probes
    EXPECT_EQ(r.nextRoundRobin(), 0u);
    EXPECT_EQ(r.nextRoundRobin(), 1u);
    EXPECT_EQ(r.nextRoundRobin(), 0u);
}

// ------------------------------------------------------------------
// Chaos host faults
// ------------------------------------------------------------------

TEST(ChaosHostFaults, CrashWindowsAndStragglerFactors)
{
    serve::ChaosConfig cfg;
    cfg.seed = 7;
    serve::ChaosCampaign chaos(cfg, 1);

    serve::HostFaultSpec crash;
    crash.kind = serve::HostFaultSpec::Kind::Crash;
    crash.host = 1;
    crash.startNs = 100.0;
    crash.endNs = 200.0;
    chaos.addHostFault(crash);

    serve::HostFaultSpec slow;
    slow.kind = serve::HostFaultSpec::Kind::Straggler;
    slow.host = 0;
    slow.startNs = 0.0;
    slow.endNs = 50.0;
    slow.factor = 8.0;
    chaos.addHostFault(slow);

    EXPECT_FALSE(chaos.hostCrashed(0, 100.0, 200.0)); // wrong host
    EXPECT_TRUE(chaos.hostCrashed(1, 150.0, 150.0));  // instant query
    EXPECT_TRUE(chaos.hostCrashed(1, 0.0, 101.0));    // overlaps start
    EXPECT_FALSE(chaos.hostCrashed(1, 200.0, 300.0)); // after revival

    EXPECT_DOUBLE_EQ(chaos.hostSlowdown(0, 25.0), 8.0);
    EXPECT_DOUBLE_EQ(chaos.hostSlowdown(0, 75.0), 1.0);
    EXPECT_DOUBLE_EQ(chaos.hostSlowdown(1, 25.0), 1.0);
}

TEST(ChaosHostFaults, FlakyLinkDrawsAreDeterministicPerTransfer)
{
    serve::ChaosConfig cfg;
    cfg.seed = 7;
    serve::ChaosCampaign chaos(cfg, 1);

    serve::HostFaultSpec flaky;
    flaky.kind = serve::HostFaultSpec::Kind::FlakyLink;
    flaky.host = 0;
    flaky.startNs = 0.0;
    flaky.endNs = 1e9;
    flaky.lossProb = 0.5;
    chaos.addHostFault(flaky);

    unsigned dropped = 0;
    for (std::uint64_t t = 0; t < 1000; ++t) {
        const bool d = chaos.linkDropped(0, t, 10.0);
        // Same transfer id, same answer, regardless of query order.
        EXPECT_EQ(chaos.linkDropped(0, t, 20.0), d);
        dropped += d ? 1u : 0u;
    }
    EXPECT_GT(dropped, 400u);
    EXPECT_LT(dropped, 600u);
    // Outside the window nothing drops.
    EXPECT_FALSE(chaos.linkDropped(0, 3, 2e9));
}

// ------------------------------------------------------------------
// Cluster engine
// ------------------------------------------------------------------

TEST(ClusterEngine, ServesAndReconcilesWithoutFaults)
{
    ClusterEngine eng(smallCluster(2, 2));
    const double gap = eng.attemptEstimateNs() / 2.0;
    for (int i = 0; i < 40; ++i)
        EXPECT_TRUE(eng.submit(static_cast<double>(i) * gap));
    eng.drain();

    const ClusterReport r = eng.report();
    r.reconcile();
    EXPECT_EQ(r.submitted, 40u);
    EXPECT_EQ(r.completed, 40u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.healthTransitions, 0u);
    EXPECT_GT(r.e2e.p50Ns, 0.0);
    // Work spread across both hosts.
    EXPECT_GT(r.hosts[0].dispatches, 0u);
    EXPECT_GT(r.hosts[1].dispatches, 0u);
}

ClusterConfig
failoverCluster()
{
    ClusterConfig c = smallCluster(2, 2);
    c.maxAttempts = 3;
    c.router.health.window = 4;
    c.router.health.minSamples = 2;
    c.router.health.suspectThreshold = 0.5;
    c.router.health.downThreshold = 0.75;
    c.router.health.recoverySuccesses = 2;
    return c;
}

TEST(ClusterEngine, HostCrashFailsOverAndRecovers)
{
    ClusterConfig cfg = failoverCluster();
    ClusterEngine probe(cfg);
    const double est = probe.attemptEstimateNs();
    cfg.router.health.probeIntervalNs = 4.0 * est;

    ClusterEngine eng(cfg);
    serve::ChaosConfig ccfg;
    ccfg.seed = 11;
    serve::ChaosCampaign chaos(ccfg, 1);
    serve::HostFaultSpec crash;
    crash.kind = serve::HostFaultSpec::Kind::Crash;
    crash.host = 0;
    crash.startNs = 10.0 * est;
    crash.endNs = 60.0 * est;
    chaos.addHostFault(crash);
    eng.setFaultModel(&chaos);

    const double gap = est / 1.5;
    const int n = 200;
    for (int i = 0; i < n; ++i)
        eng.submit(static_cast<double>(i) * gap);
    eng.drain();

    const ClusterReport r = eng.report();
    r.reconcile();
    // Failover keeps everything flowing: timeouts on host 0 retried on
    // host 1, nothing lost.
    EXPECT_EQ(r.completed, r.submitted);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.retries, 0u);
    // Host 0 was detected Down and came back.
    EXPECT_GE(r.hosts[0].entries[2], 1u); // down
    EXPECT_GE(r.hosts[0].entries[3], 1u); // recovering
    EXPECT_EQ(r.hosts[0].state, HealthState::Healthy);
    EXPECT_GT(r.hosts[0].probes, 0u);
}

TEST(ClusterEngine, FailoverDisabledLosesWhatTheDeadHostWasDealt)
{
    ClusterConfig cfg = failoverCluster();
    cfg.router.failover = false;
    cfg.maxAttempts = 1;
    ClusterEngine probe(cfg);
    const double est = probe.attemptEstimateNs();

    ClusterEngine eng(cfg);
    serve::ChaosConfig ccfg;
    ccfg.seed = 11;
    serve::ChaosCampaign chaos(ccfg, 1);
    serve::HostFaultSpec crash;
    crash.kind = serve::HostFaultSpec::Kind::Crash;
    crash.host = 0;
    crash.startNs = 10.0 * est;
    crash.endNs = 60.0 * est;
    chaos.addHostFault(crash);
    eng.setFaultModel(&chaos);

    const double gap = est / 1.5;
    for (int i = 0; i < 200; ++i)
        eng.submit(static_cast<double>(i) * gap);
    eng.drain();

    const ClusterReport r = eng.report();
    r.reconcile();
    // Round-robin keeps feeding the dead host; without retries every
    // one of those dispatches is lost.
    EXPECT_GT(r.failed, 0u);
    EXPECT_LT(r.completed, r.submitted);
}

TEST(ClusterEngine, HedgingCutsStragglerTailLatency)
{
    ClusterConfig cfg = smallCluster(3, 2);
    ClusterEngine probe(cfg);
    const double est = probe.attemptEstimateNs();

    serve::ChaosConfig ccfg;
    ccfg.seed = 5;
    serve::HostFaultSpec slow;
    slow.kind = serve::HostFaultSpec::Kind::Straggler;
    slow.host = 0;
    slow.startNs = 0.0;
    slow.endNs = 1e18;
    slow.factor = 20.0;

    const double gap = est * 1.5; // light load: hedges find capacity
    const int n = 300;

    double p99[2] = {0.0, 0.0};
    std::uint64_t hedges = 0;
    for (const bool hedged : {false, true}) {
        ClusterConfig c = cfg;
        c.hedge.enabled = hedged;
        c.hedge.minSamples = 16;
        ClusterEngine eng(c);
        serve::ChaosCampaign chaos(ccfg, 1);
        chaos.addHostFault(slow);
        eng.setFaultModel(&chaos);
        for (int i = 0; i < n; ++i)
            eng.submit(static_cast<double>(i) * gap);
        eng.drain();
        const ClusterReport r = eng.report();
        r.reconcile();
        EXPECT_EQ(r.completed, r.submitted);
        p99[hedged ? 1 : 0] = r.e2e.p99Ns;
        if (hedged)
            hedges = r.hedgesFired;
    }
    EXPECT_GT(hedges, 0u);
    EXPECT_LT(p99[1], p99[0]);
}

TEST(ClusterEngine, AdmissionShedsWhenCapacityCannotMeetDeadlines)
{
    ClusterConfig cfg = smallCluster(2, 1);
    ClusterEngine probe(cfg);
    const double est = probe.attemptEstimateNs();
    cfg.deadlineNs = 4.0 * est;
    cfg.queueDepth = 1000;

    ClusterEngine eng(cfg);
    // Overload at 4x capacity: most arrivals cannot make the deadline
    // and are shed at the door instead of timing out in the queue.
    const double gap = est / 8.0;
    for (int i = 0; i < 400; ++i)
        eng.submit(static_cast<double>(i) * gap);
    eng.drain();

    const ClusterReport r = eng.report();
    r.reconcile();
    EXPECT_GT(r.shed, 0u);
    EXPECT_GT(r.completed, 0u);
    // Admitted requests largely meet their deadline.
    EXPECT_LT(r.sloViolations, r.completed / 2);
}

TEST(ClusterEngine, SameSeedReplaysBitIdentical)
{
    ClusterConfig cfg = failoverCluster();
    cfg.hedge.enabled = true;
    ClusterEngine probe(cfg);
    const double est = probe.attemptEstimateNs();
    cfg.router.health.probeIntervalNs = 4.0 * est;

    serve::ChaosConfig ccfg;
    ccfg.seed = 42;
    serve::HostFaultSpec crash;
    crash.kind = serve::HostFaultSpec::Kind::Crash;
    crash.host = 1;
    crash.startNs = 20.0 * est;
    crash.endNs = 80.0 * est;
    serve::HostFaultSpec flaky;
    flaky.kind = serve::HostFaultSpec::Kind::FlakyLink;
    flaky.host = 0;
    flaky.startNs = 0.0;
    flaky.endNs = 1e18;
    flaky.lossProb = 0.05;

    std::string runs[2];
    for (int run = 0; run < 2; ++run) {
        ClusterEngine eng(cfg);
        serve::ChaosCampaign chaos(ccfg, 1);
        chaos.addHostFault(crash);
        chaos.addHostFault(flaky);
        eng.setFaultModel(&chaos);
        for (int i = 0; i < 300; ++i)
            eng.submit(static_cast<double>(i) * est / 1.5);
        eng.drain();
        runs[run] = eng.report().toJson();
    }
    EXPECT_EQ(runs[0], runs[1]);
    // The replay string includes health-state transition counts.
    EXPECT_NE(runs[0].find("health_transitions"), std::string::npos);
}

TEST(ClusterEngine, QueueBoundRejectsAndDeadlineExpiresQueued)
{
    ClusterConfig cfg = smallCluster(1, 1);
    cfg.admission = false; // force queue growth instead of shedding
    cfg.queueDepth = 4;
    ClusterEngine probe(cfg);
    const double est = probe.attemptEstimateNs();
    cfg.deadlineNs = 3.0 * est;

    ClusterEngine eng(cfg);
    unsigned accepted = 0;
    for (int i = 0; i < 50; ++i)
        accepted += eng.submit(static_cast<double>(i) * est / 10.0);
    eng.drain();

    const ClusterReport r = eng.report();
    r.reconcile();
    EXPECT_LT(accepted, 50u);
    EXPECT_GT(r.rejected, 0u);
    EXPECT_GT(r.timedOut, 0u);
}

} // namespace
} // namespace pimsim::cluster
