/**
 * @file
 * Unit and property tests for the software FP16/BF16 datapaths.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/bf16.h"
#include "common/fp16.h"
#include "common/rng.h"

namespace pimsim {
namespace {

TEST(Fp16, BasicConstants)
{
    EXPECT_EQ(Fp16(0.0f).bits(), 0x0000u);
    EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000u);
    EXPECT_EQ(Fp16(1.0f).bits(), 0x3c00u);
    EXPECT_EQ(Fp16(-1.0f).bits(), 0xbc00u);
    EXPECT_EQ(Fp16(2.0f).bits(), 0x4000u);
    EXPECT_EQ(Fp16(0.5f).bits(), 0x3800u);
    EXPECT_EQ(Fp16(65504.0f).bits(), 0x7bffu); // max finite
    EXPECT_EQ(Fp16(-65504.0f).bits(), 0xfbffu);
}

TEST(Fp16, RoundTripExactValues)
{
    // Every binary16 value converts to float and back identically.
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const Fp16 h = Fp16::fromBits(static_cast<Fp16Bits>(bits));
        if (h.isNan())
            continue; // NaN payload representation may differ
        const Fp16 round_trip(h.toFloat());
        EXPECT_EQ(round_trip.bits(), h.bits()) << "bits=" << bits;
    }
}

TEST(Fp16, NanPreserved)
{
    const Fp16 nan = Fp16::fromBits(0x7e01);
    EXPECT_TRUE(nan.isNan());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_TRUE(Fp16(std::nanf("")).isNan());
}

TEST(Fp16, InfinityHandling)
{
    const Fp16 inf(1e10f);
    EXPECT_TRUE(inf.isInf());
    EXPECT_FALSE(inf.signBit());
    const Fp16 ninf(-1e10f);
    EXPECT_TRUE(ninf.isInf());
    EXPECT_TRUE(ninf.signBit());
    // 65520 is the smallest value that rounds to infinity.
    EXPECT_TRUE(Fp16(65520.0f).isInf());
    EXPECT_FALSE(Fp16(65519.0f).isInf());
    EXPECT_EQ(Fp16(65519.0f).bits(), 0x7bffu);
}

TEST(Fp16, SubnormalsConvert)
{
    const float min_sub = std::ldexp(1.0f, -24);
    EXPECT_EQ(Fp16(min_sub).bits(), 0x0001u);
    EXPECT_FLOAT_EQ(Fp16::fromBits(0x0001).toFloat(), min_sub);
    const float max_sub = std::ldexp(1023.0f, -24);
    EXPECT_EQ(Fp16(max_sub).bits(), 0x03ffu);
    // Below half of the min subnormal rounds to zero.
    EXPECT_EQ(Fp16(std::ldexp(1.0f, -26)).bits(), 0x0000u);
    // Exactly half ties to even -> zero.
    EXPECT_EQ(Fp16(std::ldexp(1.0f, -25)).bits(), 0x0000u);
    // Just above half rounds up to the min subnormal.
    EXPECT_EQ(Fp16(std::ldexp(1.1f, -25)).bits(), 0x0001u);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half value;
    // RNE keeps the even mantissa (1.0).
    EXPECT_EQ(Fp16(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00u);
    // 1 + 3*2^-11 is halfway between odd and even; rounds up to even.
    EXPECT_EQ(Fp16(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02u);
    // Slightly above the halfway point rounds up.
    EXPECT_EQ(Fp16(1.0f + std::ldexp(1.2f, -11)).bits(), 0x3c01u);
}

TEST(Fp16, ConversionMatchesHardwareFp16)
{
#if defined(__F16C__) || defined(__aarch64__)
    // When the platform has native conversions, compare exhaustively.
    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        const float f = rng.nextFloat(-70000.0f, 70000.0f);
        const Fp16 ours(f);
        const _Float16 native = static_cast<_Float16>(f);
        Fp16Bits native_bits;
        std::memcpy(&native_bits, &native, sizeof(native_bits));
        EXPECT_EQ(ours.bits(), native_bits) << "f=" << f;
    }
#else
    GTEST_SKIP() << "no native FP16 support on this platform";
#endif
}

TEST(Fp16, AddProperties)
{
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        const Fp16 a = rng.nextFp16();
        const Fp16 b = rng.nextFp16();
        // Commutativity.
        EXPECT_EQ(fp16Add(a, b).bits(), fp16Add(b, a).bits());
        // Identity.
        EXPECT_EQ(fp16Add(a, Fp16(0.0f)).bits(), a.bits());
        // Correct rounding: float add of two halves is exact.
        EXPECT_EQ(fp16Add(a, b).bits(),
                  Fp16(a.toFloat() + b.toFloat()).bits());
    }
}

TEST(Fp16, MulProperties)
{
    Rng rng(13);
    for (int i = 0; i < 20000; ++i) {
        const Fp16 a = rng.nextFp16();
        const Fp16 b = rng.nextFp16();
        EXPECT_EQ(fp16Mul(a, b).bits(), fp16Mul(b, a).bits());
        EXPECT_EQ(fp16Mul(a, Fp16(1.0f)).bits(), a.bits());
        EXPECT_EQ(fp16Mul(a, b).bits(),
                  Fp16(a.toFloat() * b.toFloat()).bits());
    }
}

TEST(Fp16, MacIsNonFused)
{
    // MAC must round the product before adding (two roundings).
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const Fp16 a = rng.nextFp16();
        const Fp16 b = rng.nextFp16();
        const Fp16 c = rng.nextFp16();
        const Fp16 expected = fp16Add(fp16Mul(a, b), c);
        EXPECT_EQ(fp16Mac(a, b, c).bits(), expected.bits());
    }
}

TEST(Fp16, ReluIsSignBitMux)
{
    EXPECT_EQ(fp16Relu(Fp16(3.5f)).bits(), Fp16(3.5f).bits());
    EXPECT_EQ(fp16Relu(Fp16(-3.5f)).bits(), 0x0000u);
    EXPECT_EQ(fp16Relu(Fp16(-0.0f)).bits(), 0x0000u);
    EXPECT_EQ(fp16Relu(Fp16(0.0f)).bits(), 0x0000u);
    // Negative NaN flushes to zero (hardware muxes on the sign bit).
    EXPECT_EQ(fp16Relu(Fp16::fromBits(0xfe01)).bits(), 0x0000u);
    // Positive NaN passes through.
    EXPECT_TRUE(fp16Relu(Fp16::fromBits(0x7e01)).isNan());
    // Positive infinity passes through.
    EXPECT_TRUE(fp16Relu(Fp16::fromBits(0x7c00)).isInf());
}

TEST(Fp16, AllFiniteValuesSurviveRandomOps)
{
    // Property: ops on arbitrary finite inputs never produce trap
    // representations; results are always valid FP16 bit patterns.
    Rng rng(19);
    for (int i = 0; i < 50000; ++i) {
        const Fp16 a = rng.nextFp16AnyFinite();
        const Fp16 b = rng.nextFp16AnyFinite();
        const Fp16 sum = fp16Add(a, b);
        const Fp16 prod = fp16Mul(a, b);
        const float fs = sum.toFloat();
        const float fp = prod.toFloat();
        (void)fs;
        (void)fp;
        EXPECT_EQ(sum.bits(), Fp16(a.toFloat() + b.toFloat()).bits());
        EXPECT_EQ(prod.bits(), Fp16(a.toFloat() * b.toFloat()).bits());
    }
}

TEST(Bf16, BasicConstants)
{
    EXPECT_EQ(Bf16(0.0f).bits(), 0x0000u);
    EXPECT_EQ(Bf16(1.0f).bits(), 0x3f80u);
    EXPECT_EQ(Bf16(-2.0f).bits(), 0xc000u);
}

TEST(Bf16, RoundTrip)
{
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const Bf16 b = Bf16::fromBits(static_cast<std::uint16_t>(bits));
        if (b.isNan())
            continue;
        EXPECT_EQ(Bf16(b.toFloat()).bits(), b.bits()) << "bits=" << bits;
    }
}

TEST(Bf16, WiderDynamicRangeThanFp16)
{
    // The motivation in Section III-C: BF16 keeps FP32's exponent.
    const float big = 1e20f;
    EXPECT_TRUE(Fp16(big).isInf());
    EXPECT_FALSE(Bf16(big).isNan());
    EXPECT_FALSE(Bf16(big).isInf());
    EXPECT_NEAR(Bf16(big).toFloat(), big, big * 0.01f);
}

TEST(Bf16, RneRounding)
{
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const float f = rng.nextFloat(-1000.0f, 1000.0f);
        const Bf16 b(f);
        // Result must be one of the two neighbouring representable
        // values, and within half a ULP.
        const float back = b.toFloat();
        const float ulp = std::ldexp(1.0f, std::ilogb(f) - 7);
        EXPECT_LE(std::abs(back - f), ulp * 0.5f + 1e-30f) << f;
    }
}

TEST(Bf16, MacMatchesTwoStepRounding)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i) {
        const Bf16 a(rng.nextFloat(-2.0f, 2.0f));
        const Bf16 b(rng.nextFloat(-2.0f, 2.0f));
        const Bf16 c(rng.nextFloat(-2.0f, 2.0f));
        EXPECT_EQ(bf16Mac(a, b, c).bits(),
                  bf16Add(bf16Mul(a, b), c).bits());
    }
}

// ---------------------------------------------------------------------
// Overflow-band regression + batched-kernel equivalence suite.
//
// The production converter is a shift-and-carry machine; this reference
// is a different algorithm entirely — a neighbour search over the
// (monotonic) half-value line in double precision — so a bug in the
// band structure cannot hide in both.

/** Magnitude of half pattern `h`, with 0x7c00 standing in for the
 *  virtual next value 65536 (RNE overflows at its midpoint, 65520). */
double
refWiden(unsigned h)
{
    return h == 0x7c00u
               ? 65536.0
               : static_cast<double>(
                     fp16BitsToFloat(static_cast<Fp16Bits>(h)));
}

/** Correctly rounded (RNE) float -> binary16, by neighbour search. */
Fp16Bits
refFloatToFp16(float f)
{
    std::uint32_t fb;
    std::memcpy(&fb, &f, sizeof(fb));
    const Fp16Bits sign = static_cast<Fp16Bits>((fb >> 16) & 0x8000u);
    if (std::isnan(f))
        return static_cast<Fp16Bits>(sign | 0x7e00u); // payload untested
    const double x = std::abs(static_cast<double>(f));
    if (x >= 65536.0)
        return static_cast<Fp16Bits>(sign | 0x7c00u);
    // Largest candidate (including the virtual 65536) not above x.
    unsigned lo = 0, hi = 0x7c00u;
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (refWiden(mid) <= x)
            lo = mid;
        else
            hi = mid - 1;
    }
    const unsigned h0 = lo, h1 = std::min(lo + 1, 0x7c00u);
    const double d0 = x - refWiden(h0), d1 = refWiden(h1) - x;
    unsigned pick;
    if (d0 < d1)
        pick = h0;
    else if (d0 > d1)
        pick = h1;
    else
        pick = (h0 & 1u) ? h1 : h0; // tie: even mantissa wins
    if (pick >= 0x7c00u)
        return static_cast<Fp16Bits>(sign | 0x7c00u);
    return static_cast<Fp16Bits>(sign | pick);
}

/** The float sweep every narrowing test runs: all half values nudged
 *  across their rounding boundaries, plus the historic trouble spots. */
std::vector<float>
narrowingSweep()
{
    std::vector<float> sweep;
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const Fp16 h = Fp16::fromBits(static_cast<Fp16Bits>(bits));
        if (h.isNan() || h.isInf())
            continue;
        const float w = h.toFloat();
        sweep.push_back(w);
        sweep.push_back(std::nextafterf(w, 1e30f));
        sweep.push_back(std::nextafterf(w, -1e30f));
    }
    for (float f : {65504.0f, 65519.0f, 65519.99f, 65520.0f,
                    std::nextafterf(65520.0f, 0.0f),
                    std::nextafterf(65520.0f, 1e30f), 65536.0f, 1e30f,
                    std::ldexp(1.0f, -24), std::ldexp(1.0f, -25),
                    std::ldexp(3.0f, -25), std::ldexp(1.0f, -26),
                    std::nextafterf(std::ldexp(1.0f, -25), 1.0f)}) {
        sweep.push_back(f);
        sweep.push_back(-f);
    }
    Rng rng(31);
    for (int i = 0; i < 50000; ++i)
        sweep.push_back(rng.nextFloat(-70000.0f, 70000.0f));
    return sweep;
}

TEST(Fp16OverflowBand, PinnedBoundaryValues)
{
    // The regression this suite exists for: the overflow band must keep
    // 65504 (max finite) out of infinity and send exactly [65520, inf]
    // to infinity, with nothing in between unreachable.
    EXPECT_EQ(floatToFp16Bits(65504.0f), 0x7bffu);
    EXPECT_EQ(floatToFp16Bits(-65504.0f), 0xfbffu);
    EXPECT_EQ(floatToFp16Bits(65519.99f), 0x7bffu);
    EXPECT_EQ(floatToFp16Bits(std::nextafterf(65520.0f, 0.0f)), 0x7bffu);
    EXPECT_EQ(floatToFp16Bits(65520.0f), 0x7c00u); // midpoint ties to inf
    EXPECT_EQ(floatToFp16Bits(-65520.0f), 0xfc00u);
    EXPECT_EQ(floatToFp16Bits(std::nextafterf(65520.0f, 1e30f)), 0x7c00u);
    EXPECT_EQ(floatToFp16Bits(65536.0f), 0x7c00u);
}

TEST(Fp16OverflowBand, TieToEvenAtSubnormalFloor)
{
    // 2^-25 is exactly half the smallest subnormal: ties to even (zero).
    EXPECT_EQ(floatToFp16Bits(std::ldexp(1.0f, -25)), 0x0000u);
    EXPECT_EQ(floatToFp16Bits(-std::ldexp(1.0f, -25)), 0x8000u);
    // Just above half rounds up to the smallest subnormal.
    EXPECT_EQ(floatToFp16Bits(
                  std::nextafterf(std::ldexp(1.0f, -25), 1.0f)),
              0x0001u);
    // 3 * 2^-25 is halfway between subnormals 1 and 2: even (2) wins.
    EXPECT_EQ(floatToFp16Bits(std::ldexp(3.0f, -25)), 0x0002u);
}

TEST(Fp16OverflowBand, ScalarMatchesReferenceOnSweep)
{
    for (float f : narrowingSweep())
        EXPECT_EQ(floatToFp16Bits(f), refFloatToFp16(f)) << "f=" << f;
}

TEST(Fp16Batch, ExhaustiveWidenMatchesScalar)
{
    // All 2^16 patterns, bitwise (NaN payloads included).
    std::vector<Fp16Bits> half(0x10000);
    for (unsigned bits = 0; bits <= 0xffffu; ++bits)
        half[bits] = static_cast<Fp16Bits>(bits);
    std::vector<float> wide(half.size());
    fp16ToFloatN(half.data(), wide.data(), half.size());
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const float scalar = fp16BitsToFloat(half[bits]);
        std::uint32_t sb, bb;
        std::memcpy(&sb, &scalar, sizeof(sb));
        std::memcpy(&bb, &wide[bits], sizeof(bb));
        EXPECT_EQ(sb, bb) << "bits=" << bits;
    }
}

TEST(Fp16Batch, SweepMatchesScalarNarrowing)
{
    // The vectorized narrowing kernel substituted for the scalar one,
    // over the exact same sweep ScalarMatchesReferenceOnSweep pins.
    const std::vector<float> sweep = narrowingSweep();
    std::vector<Fp16Bits> batch(sweep.size());
    floatToFp16N(sweep.data(), batch.data(), sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i)
        EXPECT_EQ(batch[i], floatToFp16Bits(sweep[i]))
            << "f=" << sweep[i];
}

TEST(Fp16Batch, ExhaustiveRoundTripThroughBatchKernels)
{
    // widen -> narrow through the batch kernels reproduces every
    // non-NaN half exactly, like the scalar round-trip test above.
    std::vector<Fp16Bits> half;
    half.reserve(0x10000);
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        if (!Fp16::fromBits(static_cast<Fp16Bits>(bits)).isNan())
            half.push_back(static_cast<Fp16Bits>(bits));
    }
    std::vector<float> wide(half.size());
    std::vector<Fp16Bits> back(half.size());
    fp16ToFloatN(half.data(), wide.data(), half.size());
    floatToFp16N(wide.data(), back.data(), half.size());
    EXPECT_EQ(back, half);
}

TEST(Fp16Batch, RoundFloatNMatchesScalarRoundTrip)
{
    const std::vector<float> sweep = narrowingSweep();
    std::vector<float> rounded = sweep;
    fp16RoundFloatN(rounded.data(), rounded.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const float scalar =
            fp16BitsToFloat(floatToFp16Bits(sweep[i]));
        std::uint32_t sb, bb;
        std::memcpy(&sb, &scalar, sizeof(sb));
        std::memcpy(&bb, &rounded[i], sizeof(bb));
        EXPECT_EQ(sb, bb) << "f=" << sweep[i];
    }
}

TEST(Fp16Batch, RandomBitPatternsIncludingNaNs)
{
    // Full 32-bit bit-space fuzz: scalar and batch must agree bitwise
    // on every input, NaNs and infinities included.
    Rng rng(37);
    std::vector<float> in(20000);
    for (auto &f : in) {
        const std::uint32_t bits = static_cast<std::uint32_t>(rng.next());
        std::memcpy(&f, &bits, sizeof(f));
    }
    std::vector<Fp16Bits> batch(in.size());
    floatToFp16N(in.data(), batch.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(batch[i], floatToFp16Bits(in[i])) << "i=" << i;
}

TEST(Bf16Batch, ExhaustiveWidenMatchesScalar)
{
    std::vector<std::uint16_t> half(0x10000);
    for (unsigned bits = 0; bits <= 0xffffu; ++bits)
        half[bits] = static_cast<std::uint16_t>(bits);
    std::vector<float> wide(half.size());
    bf16ToFloatN(half.data(), wide.data(), half.size());
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const float scalar = bf16BitsToFloat(half[bits]);
        std::uint32_t sb, bb;
        std::memcpy(&sb, &scalar, sizeof(sb));
        std::memcpy(&bb, &wide[bits], sizeof(bb));
        EXPECT_EQ(sb, bb) << "bits=" << bits;
    }
}

TEST(Bf16Batch, NarrowAndRoundMatchScalar)
{
    Rng rng(41);
    std::vector<float> in(20000);
    for (auto &f : in) {
        const std::uint32_t bits = static_cast<std::uint32_t>(rng.next());
        std::memcpy(&f, &bits, sizeof(f));
    }
    std::vector<std::uint16_t> batch(in.size());
    floatToBf16N(in.data(), batch.data(), in.size());
    std::vector<float> rounded = in;
    bf16RoundFloatN(rounded.data(), rounded.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(batch[i], floatToBf16Bits(in[i])) << "i=" << i;
        const float scalar = bf16BitsToFloat(floatToBf16Bits(in[i]));
        std::uint32_t sb, bb;
        std::memcpy(&sb, &scalar, sizeof(sb));
        std::memcpy(&bb, &rounded[i], sizeof(bb));
        EXPECT_EQ(sb, bb) << "i=" << i;
    }
}

} // namespace
} // namespace pimsim
