/**
 * @file
 * Unit and property tests for the software FP16/BF16 datapaths.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/bf16.h"
#include "common/fp16.h"
#include "common/rng.h"

namespace pimsim {
namespace {

TEST(Fp16, BasicConstants)
{
    EXPECT_EQ(Fp16(0.0f).bits(), 0x0000u);
    EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000u);
    EXPECT_EQ(Fp16(1.0f).bits(), 0x3c00u);
    EXPECT_EQ(Fp16(-1.0f).bits(), 0xbc00u);
    EXPECT_EQ(Fp16(2.0f).bits(), 0x4000u);
    EXPECT_EQ(Fp16(0.5f).bits(), 0x3800u);
    EXPECT_EQ(Fp16(65504.0f).bits(), 0x7bffu); // max finite
    EXPECT_EQ(Fp16(-65504.0f).bits(), 0xfbffu);
}

TEST(Fp16, RoundTripExactValues)
{
    // Every binary16 value converts to float and back identically.
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const Fp16 h = Fp16::fromBits(static_cast<Fp16Bits>(bits));
        if (h.isNan())
            continue; // NaN payload representation may differ
        const Fp16 round_trip(h.toFloat());
        EXPECT_EQ(round_trip.bits(), h.bits()) << "bits=" << bits;
    }
}

TEST(Fp16, NanPreserved)
{
    const Fp16 nan = Fp16::fromBits(0x7e01);
    EXPECT_TRUE(nan.isNan());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_TRUE(Fp16(std::nanf("")).isNan());
}

TEST(Fp16, InfinityHandling)
{
    const Fp16 inf(1e10f);
    EXPECT_TRUE(inf.isInf());
    EXPECT_FALSE(inf.signBit());
    const Fp16 ninf(-1e10f);
    EXPECT_TRUE(ninf.isInf());
    EXPECT_TRUE(ninf.signBit());
    // 65520 is the smallest value that rounds to infinity.
    EXPECT_TRUE(Fp16(65520.0f).isInf());
    EXPECT_FALSE(Fp16(65519.0f).isInf());
    EXPECT_EQ(Fp16(65519.0f).bits(), 0x7bffu);
}

TEST(Fp16, SubnormalsConvert)
{
    const float min_sub = std::ldexp(1.0f, -24);
    EXPECT_EQ(Fp16(min_sub).bits(), 0x0001u);
    EXPECT_FLOAT_EQ(Fp16::fromBits(0x0001).toFloat(), min_sub);
    const float max_sub = std::ldexp(1023.0f, -24);
    EXPECT_EQ(Fp16(max_sub).bits(), 0x03ffu);
    // Below half of the min subnormal rounds to zero.
    EXPECT_EQ(Fp16(std::ldexp(1.0f, -26)).bits(), 0x0000u);
    // Exactly half ties to even -> zero.
    EXPECT_EQ(Fp16(std::ldexp(1.0f, -25)).bits(), 0x0000u);
    // Just above half rounds up to the min subnormal.
    EXPECT_EQ(Fp16(std::ldexp(1.1f, -25)).bits(), 0x0001u);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half value;
    // RNE keeps the even mantissa (1.0).
    EXPECT_EQ(Fp16(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00u);
    // 1 + 3*2^-11 is halfway between odd and even; rounds up to even.
    EXPECT_EQ(Fp16(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02u);
    // Slightly above the halfway point rounds up.
    EXPECT_EQ(Fp16(1.0f + std::ldexp(1.2f, -11)).bits(), 0x3c01u);
}

TEST(Fp16, ConversionMatchesHardwareFp16)
{
#if defined(__F16C__) || defined(__aarch64__)
    // When the platform has native conversions, compare exhaustively.
    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        const float f = rng.nextFloat(-70000.0f, 70000.0f);
        const Fp16 ours(f);
        const _Float16 native = static_cast<_Float16>(f);
        Fp16Bits native_bits;
        std::memcpy(&native_bits, &native, sizeof(native_bits));
        EXPECT_EQ(ours.bits(), native_bits) << "f=" << f;
    }
#else
    GTEST_SKIP() << "no native FP16 support on this platform";
#endif
}

TEST(Fp16, AddProperties)
{
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        const Fp16 a = rng.nextFp16();
        const Fp16 b = rng.nextFp16();
        // Commutativity.
        EXPECT_EQ(fp16Add(a, b).bits(), fp16Add(b, a).bits());
        // Identity.
        EXPECT_EQ(fp16Add(a, Fp16(0.0f)).bits(), a.bits());
        // Correct rounding: float add of two halves is exact.
        EXPECT_EQ(fp16Add(a, b).bits(),
                  Fp16(a.toFloat() + b.toFloat()).bits());
    }
}

TEST(Fp16, MulProperties)
{
    Rng rng(13);
    for (int i = 0; i < 20000; ++i) {
        const Fp16 a = rng.nextFp16();
        const Fp16 b = rng.nextFp16();
        EXPECT_EQ(fp16Mul(a, b).bits(), fp16Mul(b, a).bits());
        EXPECT_EQ(fp16Mul(a, Fp16(1.0f)).bits(), a.bits());
        EXPECT_EQ(fp16Mul(a, b).bits(),
                  Fp16(a.toFloat() * b.toFloat()).bits());
    }
}

TEST(Fp16, MacIsNonFused)
{
    // MAC must round the product before adding (two roundings).
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const Fp16 a = rng.nextFp16();
        const Fp16 b = rng.nextFp16();
        const Fp16 c = rng.nextFp16();
        const Fp16 expected = fp16Add(fp16Mul(a, b), c);
        EXPECT_EQ(fp16Mac(a, b, c).bits(), expected.bits());
    }
}

TEST(Fp16, ReluIsSignBitMux)
{
    EXPECT_EQ(fp16Relu(Fp16(3.5f)).bits(), Fp16(3.5f).bits());
    EXPECT_EQ(fp16Relu(Fp16(-3.5f)).bits(), 0x0000u);
    EXPECT_EQ(fp16Relu(Fp16(-0.0f)).bits(), 0x0000u);
    EXPECT_EQ(fp16Relu(Fp16(0.0f)).bits(), 0x0000u);
    // Negative NaN flushes to zero (hardware muxes on the sign bit).
    EXPECT_EQ(fp16Relu(Fp16::fromBits(0xfe01)).bits(), 0x0000u);
    // Positive NaN passes through.
    EXPECT_TRUE(fp16Relu(Fp16::fromBits(0x7e01)).isNan());
    // Positive infinity passes through.
    EXPECT_TRUE(fp16Relu(Fp16::fromBits(0x7c00)).isInf());
}

TEST(Fp16, AllFiniteValuesSurviveRandomOps)
{
    // Property: ops on arbitrary finite inputs never produce trap
    // representations; results are always valid FP16 bit patterns.
    Rng rng(19);
    for (int i = 0; i < 50000; ++i) {
        const Fp16 a = rng.nextFp16AnyFinite();
        const Fp16 b = rng.nextFp16AnyFinite();
        const Fp16 sum = fp16Add(a, b);
        const Fp16 prod = fp16Mul(a, b);
        const float fs = sum.toFloat();
        const float fp = prod.toFloat();
        (void)fs;
        (void)fp;
        EXPECT_EQ(sum.bits(), Fp16(a.toFloat() + b.toFloat()).bits());
        EXPECT_EQ(prod.bits(), Fp16(a.toFloat() * b.toFloat()).bits());
    }
}

TEST(Bf16, BasicConstants)
{
    EXPECT_EQ(Bf16(0.0f).bits(), 0x0000u);
    EXPECT_EQ(Bf16(1.0f).bits(), 0x3f80u);
    EXPECT_EQ(Bf16(-2.0f).bits(), 0xc000u);
}

TEST(Bf16, RoundTrip)
{
    for (unsigned bits = 0; bits <= 0xffffu; ++bits) {
        const Bf16 b = Bf16::fromBits(static_cast<std::uint16_t>(bits));
        if (b.isNan())
            continue;
        EXPECT_EQ(Bf16(b.toFloat()).bits(), b.bits()) << "bits=" << bits;
    }
}

TEST(Bf16, WiderDynamicRangeThanFp16)
{
    // The motivation in Section III-C: BF16 keeps FP32's exponent.
    const float big = 1e20f;
    EXPECT_TRUE(Fp16(big).isInf());
    EXPECT_FALSE(Bf16(big).isNan());
    EXPECT_FALSE(Bf16(big).isInf());
    EXPECT_NEAR(Bf16(big).toFloat(), big, big * 0.01f);
}

TEST(Bf16, RneRounding)
{
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const float f = rng.nextFloat(-1000.0f, 1000.0f);
        const Bf16 b(f);
        // Result must be one of the two neighbouring representable
        // values, and within half a ULP.
        const float back = b.toFloat();
        const float ulp = std::ldexp(1.0f, std::ilogb(f) - 7);
        EXPECT_LE(std::abs(back - f), ulp * 0.5f + 1e-30f) << f;
    }
}

TEST(Bf16, MacMatchesTwoStepRounding)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i) {
        const Bf16 a(rng.nextFloat(-2.0f, 2.0f));
        const Bf16 b(rng.nextFloat(-2.0f, 2.0f));
        const Bf16 c(rng.nextFloat(-2.0f, 2.0f));
        EXPECT_EQ(bf16Mac(a, b, c).bits(),
                  bf16Add(bf16Mul(a, b), c).bits());
    }
}

} // namespace
} // namespace pimsim
