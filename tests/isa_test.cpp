/**
 * @file
 * PIM ISA tests: Table III encoding round-trips and the Table II
 * operand-combination counts.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pim/isa.h"

namespace pimsim {
namespace {

TEST(PimIsa, Table2CombinationCounts)
{
    // Table II of the paper: MUL 32, ADD 40, MAC 14, MAD 28, MOV 24.
    EXPECT_EQ(countCombinations(PimOpcode::Mul), 32u);
    EXPECT_EQ(countCombinations(PimOpcode::Add), 40u);
    EXPECT_EQ(countCombinations(PimOpcode::Mac), 14u);
    EXPECT_EQ(countCombinations(PimOpcode::Mad), 28u);
    EXPECT_EQ(countCombinations(PimOpcode::Mov), 24u);

    // "PIM supports a total of 114 operand combinations for computations,
    // and 24 different ways of data movement" (Section III-C).
    const unsigned compute = countCombinations(PimOpcode::Mul) +
                             countCombinations(PimOpcode::Add) +
                             countCombinations(PimOpcode::Mac) +
                             countCombinations(PimOpcode::Mad);
    EXPECT_EQ(compute, 114u);
}

TEST(PimIsa, NoDoubleBankRead)
{
    for (PimOpcode op : {PimOpcode::Add, PimOpcode::Mul, PimOpcode::Mac,
                         PimOpcode::Mad}) {
        for (const auto &combo : enumerateCompute(op)) {
            EXPECT_FALSE(isBankSpace(combo[0]) && isBankSpace(combo[1]))
                << pimOpcodeName(op);
        }
    }
}

TEST(PimIsa, MacAccumulatesIntoGrfB)
{
    for (const auto &combo : enumerateCompute(PimOpcode::Mac))
        EXPECT_EQ(combo[2], OperandSpace::GrfB);
}

TEST(PimIsa, ControlEncodingRoundTrip)
{
    for (unsigned imm0 : {0u, 1u, 7u, 31u, 2047u}) {
        for (unsigned imm1 : {0u, 1u, 8u, 255u, 65535u}) {
            const PimInst jump = PimInst::jump(imm0, imm1);
            const PimInst decoded = PimInst::decode(jump.encode());
            EXPECT_EQ(decoded.opcode, PimOpcode::Jump);
            EXPECT_EQ(decoded.imm0, imm0);
            EXPECT_EQ(decoded.imm1, imm1);

            const PimInst nop = PimInst::nop(imm0);
            EXPECT_EQ(PimInst::decode(nop.encode()).imm0, imm0);
        }
    }
    EXPECT_EQ(PimInst::decode(PimInst::exit().encode()).opcode,
              PimOpcode::Exit);
}

TEST(PimIsa, DataAluEncodingRoundTripExhaustiveSpaces)
{
    const OperandSpace spaces[] = {
        OperandSpace::GrfA,    OperandSpace::GrfB, OperandSpace::EvenBank,
        OperandSpace::OddBank, OperandSpace::SrfM, OperandSpace::SrfA,
    };
    for (OperandSpace dst : spaces) {
        for (OperandSpace s0 : spaces) {
            for (OperandSpace s1 : spaces) {
                PimInst inst = PimInst::mac(dst, 3, s0, 5, s1, 7);
                const PimInst d = PimInst::decode(inst.encode());
                EXPECT_EQ(d, inst);
                EXPECT_EQ(d.dst, dst);
                EXPECT_EQ(d.src0, s0);
                EXPECT_EQ(d.src1, s1);
                EXPECT_EQ(d.dstIdx, 3u);
                EXPECT_EQ(d.src0Idx, 5u);
                EXPECT_EQ(d.src1Idx, 7u);
            }
        }
    }
}

TEST(PimIsa, FlagsRoundTrip)
{
    PimInst mov = PimInst::mov(OperandSpace::GrfA, 1, OperandSpace::EvenBank,
                               0, /*relu=*/true, /*aam=*/true);
    PimInst d = PimInst::decode(mov.encode());
    EXPECT_TRUE(d.relu);
    EXPECT_TRUE(d.aam);

    mov.relu = false;
    d = PimInst::decode(mov.encode());
    EXPECT_FALSE(d.relu);
    EXPECT_TRUE(d.aam);
}

TEST(PimIsa, RandomRoundTripProperty)
{
    Rng rng(31);
    for (int i = 0; i < 50000; ++i) {
        // Any 32-bit word decodes; re-encoding a decoded ALU/data word
        // preserves all architectural fields (unused bits are dropped).
        const PimOpcode ops[] = {PimOpcode::Nop, PimOpcode::Jump,
                                 PimOpcode::Exit, PimOpcode::Mov,
                                 PimOpcode::Fill, PimOpcode::Add,
                                 PimOpcode::Mul, PimOpcode::Mac,
                                 PimOpcode::Mad};
        PimInst inst;
        inst.opcode = ops[rng.nextBelow(9)];
        if (isControlOpcode(inst.opcode)) {
            inst.imm0 = static_cast<unsigned>(rng.nextBelow(2048));
            inst.imm1 = static_cast<unsigned>(rng.nextBelow(65536));
        } else {
            inst.dst = static_cast<OperandSpace>(rng.nextBelow(6));
            inst.src0 = static_cast<OperandSpace>(rng.nextBelow(6));
            inst.src1 = static_cast<OperandSpace>(rng.nextBelow(6));
            inst.src2 = static_cast<OperandSpace>(rng.nextBelow(6));
            inst.dstIdx = static_cast<unsigned>(rng.nextBelow(16));
            inst.src0Idx = static_cast<unsigned>(rng.nextBelow(16));
            inst.src1Idx = static_cast<unsigned>(rng.nextBelow(16));
            inst.aam = rng.nextBelow(2) != 0;
            inst.relu = rng.nextBelow(2) != 0;
        }
        EXPECT_EQ(PimInst::decode(inst.encode()), inst);
    }
}

TEST(PimIsa, DisassemblyIsReadable)
{
    EXPECT_EQ(PimInst::exit().disassemble(), "EXIT");
    EXPECT_EQ(PimInst::jump(3, 8).disassemble(), "JUMP -3, x8");
    const auto mac = PimInst::mac(OperandSpace::GrfB, 0,
                                  OperandSpace::EvenBank, 0,
                                  OperandSpace::GrfA, 2);
    EXPECT_EQ(mac.disassemble(), "MAC GRF_B[0], EVEN_BANK[0], GRF_A[2]");
}

TEST(PimIsa, SpaceClassification)
{
    EXPECT_TRUE(isGrfSpace(OperandSpace::GrfA));
    EXPECT_TRUE(isGrfSpace(OperandSpace::GrfB));
    EXPECT_TRUE(isBankSpace(OperandSpace::EvenBank));
    EXPECT_TRUE(isBankSpace(OperandSpace::OddBank));
    EXPECT_TRUE(isSrfSpace(OperandSpace::SrfM));
    EXPECT_TRUE(isSrfSpace(OperandSpace::SrfA));
    EXPECT_FALSE(isGrfSpace(OperandSpace::SrfM));
    EXPECT_FALSE(isBankSpace(OperandSpace::GrfA));
}

} // namespace
} // namespace pimsim
