/**
 * @file
 * Randomised property tests ("fuzzing") of the memory system and the
 * PIM sequencer:
 *
 *  - random legal DRAM command streams never violate device invariants
 *    and are replay-deterministic;
 *  - random mixed controller traffic preserves per-address program
 *    order (reads observe the latest earlier write);
 *  - microkernels with JUMP loops are equivalent to their unrolled
 *    straight-line form.
 */

#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/pseudo_channel.h"
#include "pim/pim_unit.h"
#include "sim/system.h"

namespace pimsim {
namespace {

HbmGeometry
smallGeom()
{
    HbmGeometry g;
    g.rowsPerBank = 64;
    return g;
}

// ---------- raw device fuzz ----------

struct DeviceTrace
{
    std::vector<Command> commands;
    std::vector<Cycle> cycles;
    std::vector<Burst> readData;
};

DeviceTrace
runRandomDeviceStream(std::uint64_t seed, unsigned steps)
{
    Rng rng(seed);
    HbmTiming timing;
    PseudoChannel pch(smallGeom(), timing);
    DeviceTrace trace;
    Cycle now = 0;

    for (unsigned i = 0; i < steps; ++i) {
        const unsigned bg = static_cast<unsigned>(rng.nextBelow(4));
        const unsigned ba = static_cast<unsigned>(rng.nextBelow(4));
        const unsigned flat = bg * 4 + ba;
        const bool active = pch.bank(flat).state == BankState::Active;

        Command cmd;
        const auto choice = rng.nextBelow(10);
        if (!active || choice == 0) {
            if (active)
                cmd = Command::pre(bg, ba);
            else
                cmd = Command::act(
                    bg, ba, static_cast<unsigned>(rng.nextBelow(64)));
        } else if (choice < 6) {
            cmd = Command::rd(bg, ba,
                              static_cast<unsigned>(rng.nextBelow(32)));
        } else if (choice < 9) {
            Burst data;
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.nextBelow(256));
            cmd = Command::wr(bg, ba,
                              static_cast<unsigned>(rng.nextBelow(32)),
                              data);
        } else {
            cmd = Command::pre(bg, ba);
        }

        const Cycle t = pch.earliestIssue(cmd, now);
        EXPECT_GE(t, now); // never in the past
        now = t;
        const IssueResult r = pch.issue(cmd, now);
        trace.commands.push_back(cmd);
        trace.cycles.push_back(now);
        if (cmd.type == CommandType::Rd) {
            EXPECT_EQ(r.dataCycle, now + timing.tCL + timing.tBL);
            trace.readData.push_back(r.data);
        }
        // Nudge time forward sometimes to vary issue density.
        now += rng.nextBelow(3);
    }
    return trace;
}

TEST(DeviceFuzz, RandomStreamsAreLegalAndDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const DeviceTrace a = runRandomDeviceStream(seed, 3000);
        const DeviceTrace b = runRandomDeviceStream(seed, 3000);
        ASSERT_EQ(a.cycles, b.cycles) << "seed " << seed;
        ASSERT_EQ(a.readData.size(), b.readData.size());
        for (std::size_t i = 0; i < a.readData.size(); ++i)
            EXPECT_EQ(a.readData[i], b.readData[i]);
    }
}

TEST(DeviceFuzz, DataMatchesShadowModel)
{
    Rng rng(77);
    HbmTiming timing;
    PseudoChannel pch(smallGeom(), timing);
    std::map<std::tuple<unsigned, unsigned, unsigned>, Burst> shadow;
    Cycle now = 0;

    for (unsigned i = 0; i < 5000; ++i) {
        const unsigned bg = static_cast<unsigned>(rng.nextBelow(4));
        const unsigned ba = static_cast<unsigned>(rng.nextBelow(4));
        const unsigned flat = bg * 4 + ba;
        const unsigned row = static_cast<unsigned>(rng.nextBelow(16));
        const unsigned col = static_cast<unsigned>(rng.nextBelow(32));

        // Open the right row.
        if (pch.bank(flat).state == BankState::Active &&
            pch.bank(flat).openRow != row) {
            const Command pre = Command::pre(bg, ba);
            now = pch.earliestIssue(pre, now);
            pch.issue(pre, now);
        }
        if (pch.bank(flat).state == BankState::Idle) {
            const Command act = Command::act(bg, ba, row);
            now = pch.earliestIssue(act, now);
            pch.issue(act, now);
        }

        if (rng.nextBelow(2) == 0) {
            Burst data;
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.nextBelow(256));
            const Command wr = Command::wr(bg, ba, col, data);
            now = pch.earliestIssue(wr, now);
            pch.issue(wr, now);
            shadow[{flat, row, col}] = data;
        } else {
            const Command rd = Command::rd(bg, ba, col);
            now = pch.earliestIssue(rd, now);
            const IssueResult r = pch.issue(rd, now);
            const auto it = shadow.find({flat, row, col});
            const Burst expect =
                it == shadow.end() ? Burst{} : it->second;
            EXPECT_EQ(r.data, expect);
        }
    }
}

// ---------- controller fuzz ----------

TEST(ControllerFuzz, PerAddressProgramOrderHolds)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    cfg.geometry.rowsPerBank = 64;
    PimSystem sys(cfg);
    Rng rng(123);

    // Shadow memory keyed by coordinate; writes apply in enqueue order.
    std::map<std::tuple<unsigned, unsigned, unsigned, unsigned>, Burst>
        shadow;
    std::map<std::uint64_t, Burst> expected_reads;
    std::uint64_t id = 0;

    for (unsigned round = 0; round < 60; ++round) {
        for (unsigned i = 0; i < 40; ++i) {
            MemRequest r;
            r.coord.bankGroup = static_cast<unsigned>(rng.nextBelow(4));
            r.coord.bank = static_cast<unsigned>(rng.nextBelow(4));
            r.coord.row = static_cast<unsigned>(rng.nextBelow(8));
            r.coord.col = static_cast<unsigned>(rng.nextBelow(8));
            const auto key = std::make_tuple(r.coord.bankGroup,
                                             r.coord.bank, r.coord.row,
                                             r.coord.col);
            r.id = id++;
            if (rng.nextBelow(2) == 0) {
                r.type = RequestType::Write;
                for (auto &byte : r.data)
                    byte = static_cast<std::uint8_t>(rng.nextBelow(256));
                shadow[key] = r.data;
            } else {
                r.type = RequestType::Read;
                const auto it = shadow.find(key);
                expected_reads[r.id] =
                    it == shadow.end() ? Burst{} : it->second;
            }
            while (!sys.tryEnqueue(0, r))
                sys.step();
        }
        sys.runUntilIdle();
        for (const auto &resp : sys.drain(0)) {
            if (resp.type != RequestType::Read)
                continue;
            const auto it = expected_reads.find(resp.id);
            ASSERT_NE(it, expected_reads.end());
            EXPECT_EQ(resp.data, it->second) << "request " << resp.id;
        }
    }
}

// ---------- microkernel loop-flattening equivalence ----------

std::vector<PimInst>
randomStraightLine(Rng &rng, unsigned count)
{
    std::vector<PimInst> body;
    const OperandSpace grf[] = {OperandSpace::GrfA, OperandSpace::GrfB};
    for (unsigned i = 0; i < count; ++i) {
        const OperandSpace dst = grf[rng.nextBelow(2)];
        const OperandSpace s0 = grf[rng.nextBelow(2)];
        const unsigned d = static_cast<unsigned>(rng.nextBelow(8));
        const unsigned a = static_cast<unsigned>(rng.nextBelow(8));
        const unsigned b = static_cast<unsigned>(rng.nextBelow(8));
        switch (rng.nextBelow(3)) {
          case 0:
            body.push_back(PimInst::add(dst, d, s0, a,
                                        OperandSpace::SrfA, b));
            break;
          case 1:
            body.push_back(PimInst::mul(dst, d, s0, a,
                                        OperandSpace::SrfM, b));
            break;
          default:
            body.push_back(PimInst::mov(dst, d, s0, a,
                                        rng.nextBelow(2) != 0));
            break;
        }
    }
    return body;
}

/** Execute a program on a fresh unit by issuing plain triggers. */
std::vector<Fp16Bits>
executeProgram(const std::vector<PimInst> &program, unsigned triggers,
               std::uint64_t seed)
{
    HbmTiming timing;
    PseudoChannel pch(smallGeom(), timing);
    PimConfig config;
    PimUnit unit(config, 0, pch, nullptr);

    // Seed the register files deterministically.
    Rng rng(seed);
    for (unsigned half = 0; half < 2; ++half) {
        for (unsigned i = 0; i < config.grfPerHalf; ++i) {
            LaneVector v;
            for (auto &lane : v)
                lane = rng.nextFp16();
            unit.regs().setGrf(half, i, v);
        }
    }
    for (unsigned file = 0; file < 2; ++file)
        for (unsigned i = 0; i < config.srfPerFile; ++i)
            unit.regs().setSrf(file, i, rng.nextFp16());

    for (unsigned i = 0; i < program.size(); ++i)
        unit.regs().setCrf(i, program[i].encode());
    unit.resetProgram();

    // Open a row so bank-free instructions can be triggered.
    const Command act = Command::act(0, 0, 1);
    pch.issue(act, pch.earliestIssue(act, 0));
    for (unsigned i = 0; i < triggers && !unit.halted(); ++i)
        unit.trigger(CommandType::Rd, i % 32, nullptr);

    std::vector<Fp16Bits> state;
    for (unsigned half = 0; half < 2; ++half)
        for (unsigned i = 0; i < config.grfPerHalf; ++i)
            for (const auto &lane : unit.regs().grf(half, i))
                state.push_back(lane.bits());
    return state;
}

TEST(MicrokernelFuzz, JumpLoopsEqualUnrolledPrograms)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 7919);
        const unsigned body_len = 1 + static_cast<unsigned>(
                                          rng.nextBelow(4));
        const unsigned iterations =
            1 + static_cast<unsigned>(rng.nextBelow(6));
        const auto body = randomStraightLine(rng, body_len);

        // Looped form: body + JUMP back + EXIT.
        std::vector<PimInst> looped = body;
        looped.push_back(PimInst::jump(body_len, iterations));
        looped.push_back(PimInst::exit());

        // Unrolled form: body repeated `iterations` times + EXIT.
        std::vector<PimInst> unrolled;
        for (unsigned i = 0; i < iterations; ++i)
            unrolled.insert(unrolled.end(), body.begin(), body.end());
        unrolled.push_back(PimInst::exit());
        ASSERT_LE(unrolled.size(), 32u)
            << "regenerate: unrolled form must fit the CRF";

        const unsigned triggers = body_len * iterations;
        // Trigger columns must line up between the two forms; using the
        // same arithmetic trigger count guarantees it.
        const auto a = executeProgram(looped, triggers, seed);
        const auto b = executeProgram(unrolled, triggers, seed);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

} // namespace
} // namespace pimsim
