/**
 * @file
 * Unit tests for the common utilities: bit helpers, RNG determinism,
 * statistics, and histograms.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "common/stats.h"

namespace pimsim {
namespace {

// ---------- bits ----------

TEST(Bits, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractInsertRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t value = rng.next();
        const unsigned lo = static_cast<unsigned>(rng.nextBelow(56));
        const unsigned width = 1 + static_cast<unsigned>(rng.nextBelow(8));
        const std::uint64_t field = rng.next() & maskBits(width);
        const std::uint64_t inserted = insertBits(value, lo, width, field);
        EXPECT_EQ(extractBits(inserted, lo, width), field);
        // Bits outside the field are untouched.
        const std::uint64_t m = maskBits(width) << lo;
        EXPECT_EQ(inserted & ~m, value & ~m);
    }
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_EQ(exactLog2(1), 0u);
    EXPECT_EQ(exactLog2(4096), 12u);
    EXPECT_EQ(floorLog2(5), 2u);
    EXPECT_EQ(floorLog2(1ull << 40), 40u);
}

TEST(Bits, RoundUpDivCeil)
{
    EXPECT_EQ(roundUp(0, 32), 0u);
    EXPECT_EQ(roundUp(1, 32), 32u);
    EXPECT_EQ(roundUp(32, 32), 32u);
    EXPECT_EQ(divCeil(0, 7), 0u);
    EXPECT_EQ(divCeil(7, 7), 1u);
    EXPECT_EQ(divCeil(8, 7), 2u);
}

// ---------- rng ----------

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    unsigned equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3u);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t bound = 1 + rng.nextBelow(1000);
        EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(9);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.nextBelow(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, Fp16InRange)
{
    // Floats just below 2 round up to exactly 2.0 in FP16, so the upper
    // bound is inclusive.
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const float f = rng.nextFp16().toFloat();
        EXPECT_GE(f, -2.0f);
        EXPECT_LE(f, 2.0f);
    }
}

TEST(Rng, AnyFiniteNeverInfNan)
{
    Rng rng(17);
    for (int i = 0; i < 50000; ++i) {
        const Fp16 h = rng.nextFp16AnyFinite();
        EXPECT_FALSE(h.isInf());
        EXPECT_FALSE(h.isNan());
    }
}

// ---------- stats ----------

TEST(Stats, CountersAccumulate)
{
    StatGroup g("test");
    EXPECT_EQ(g.counter("x"), 0u);
    g.add("x");
    g.add("x", 4);
    EXPECT_EQ(g.counter("x"), 5u);
}

TEST(Stats, ScalarsSetAndAdd)
{
    StatGroup g;
    g.set("v", 1.5);
    g.addScalar("v", 0.5);
    EXPECT_DOUBLE_EQ(g.scalar("v"), 2.0);
}

TEST(Stats, ResetZeroes)
{
    StatGroup g;
    g.add("a", 10);
    g.set("b", 3.0);
    g.reset();
    EXPECT_EQ(g.counter("a"), 0u);
    EXPECT_DOUBLE_EQ(g.scalar("b"), 0.0);
}

TEST(Stats, MergeSums)
{
    StatGroup a, b;
    a.add("x", 2);
    b.add("x", 3);
    b.add("y", 1);
    a.merge(b);
    EXPECT_EQ(a.counter("x"), 5u);
    EXPECT_EQ(a.counter("y"), 1u);
}

TEST(Stats, DumpFormat)
{
    StatGroup g("grp");
    g.add("count", 7);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.count 7\n");
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h(10, 5);
    for (std::uint64_t v : {0u, 5u, 12u, 49u, 100u})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 5 + 12 + 49 + 100) / 5.0);
    EXPECT_EQ(h.buckets()[0], 2u); // 0 and 5
    EXPECT_EQ(h.buckets()[1], 1u); // 12
    EXPECT_EQ(h.buckets()[4], 1u); // 49
    EXPECT_EQ(h.overflow(), 1u);   // 100
}

TEST(Histogram, EmptyIsSane)
{
    Histogram h(10, 4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Histogram, PercentilesInterpolateWithinBuckets)
{
    // 100 uniform samples 0..99 over 10-wide buckets: the interpolated
    // nearest-rank percentiles land on the exact sample values.
    Histogram h(10, 10);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.p50(), 50.0);
    EXPECT_DOUBLE_EQ(h.p95(), 95.0);
    EXPECT_DOUBLE_EQ(h.p99(), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 99.0); // clamped to max
}

TEST(Histogram, PercentileOverflowResolvesToMax)
{
    Histogram h(10, 2);
    h.sample(5);
    h.sample(15);
    h.sample(1000); // overflow bucket
    EXPECT_DOUBLE_EQ(h.p99(), 1000.0);
    EXPECT_DOUBLE_EQ(h.p50(), 20.0); // top of the second bucket
}

TEST(Histogram, PercentileSingleSampleClampsToThatValue)
{
    Histogram h(10, 4);
    h.sample(7);
    EXPECT_DOUBLE_EQ(h.p50(), 7.0);
    EXPECT_DOUBLE_EQ(h.p99(), 7.0);
}

TEST(Histogram, PercentileAllOverflowResolvesToMax)
{
    // Every sample past the last bucket: any percentile is max().
    Histogram h(10, 2);
    h.sample(500);
    h.sample(900);
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 900.0);
    EXPECT_DOUBLE_EQ(h.p50(), 900.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 900.0);
}

TEST(Histogram, PercentileClampsPArgumentToValidRange)
{
    Histogram h(10, 10);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    // p <= 0 clamps to the first-ranked sample, never below min().
    EXPECT_GE(h.percentile(0.0), static_cast<double>(h.min()));
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    // p > 1 clamps to the last-ranked sample, never above max().
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_LE(h.percentile(2.0), static_cast<double>(h.max()));
}

TEST(Histogram, PercentileBucketBoundaryInterpolation)
{
    // One sample per bucket boundary value: the interpolated position
    // of each rank is the top of its bucket, clamped to [min, max].
    Histogram h(10, 4);
    h.sample(10);
    h.sample(20);
    EXPECT_DOUBLE_EQ(h.p50(), 20.0); // rank 1 -> top of [10,20)
    EXPECT_DOUBLE_EQ(h.p99(), 20.0); // rank 2, clamped to max
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 20.0);
}

TEST(Histogram, ResetForgetsSamplesButKeepsShape)
{
    Histogram h(10, 4);
    for (std::uint64_t v : {3u, 17u, 1000u})
        h.sample(v);
    ASSERT_EQ(h.count(), 3u);
    ASSERT_EQ(h.overflow(), 1u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
    for (std::uint64_t b : h.buckets())
        EXPECT_EQ(b, 0u);

    // The bucket shape survives: samples land where they used to.
    h.sample(17);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.min(), 17u);
    EXPECT_EQ(h.max(), 17u);
}

TEST(StatGroup, ResetClearsRegisteredHistograms)
{
    StatGroup g("grp");
    Histogram h(10, 4);
    g.registerHistogram("latency", &h);
    EXPECT_EQ(g.histogram("latency"), &h);
    EXPECT_EQ(g.histogram("absent"), nullptr);

    g.add("count", 3);
    g.set("rate", 0.5);
    h.sample(25);
    ASSERT_EQ(h.count(), 1u);

    g.reset();
    EXPECT_EQ(g.counter("count"), 0u);
    EXPECT_DOUBLE_EQ(g.scalar("rate"), 0.0);
    EXPECT_EQ(h.count(), 0u); // reset reached the registered histogram
    EXPECT_EQ(g.histogram("latency"), &h); // registration survives
}

} // namespace
} // namespace pimsim
