/**
 * @file
 * End-to-end PIM BLAS integration tests: full command-level execution on
 * the simulated system, verified bit-exactly against the golden host
 * references, plus timing-shape sanity checks (fence cost, scaling).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stack/blas.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

SystemConfig
testConfig()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 channels keeps tests fast
    c.geometry.rowsPerBank = 512;
    return c;
}

Fp16Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Fp16Vector v(n);
    for (auto &x : v)
        x = rng.nextFp16();
    return v;
}

bool
bitEqual(const Fp16Vector &a, const Fp16Vector &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].bits() != b[i].bits())
            return false;
    return true;
}

class ElementwiseSize : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ElementwiseSize, AddMatchesReference)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const auto a = randomVector(GetParam(), 1);
    const auto b = randomVector(GetParam(), 2);
    Fp16Vector out;
    const BlasTiming t = blas.add(a, b, out);
    EXPECT_TRUE(bitEqual(out, refAdd(a, b)));
    EXPECT_GT(t.ns, 0.0);
    EXPECT_GT(t.commands, 0u);
}

TEST_P(ElementwiseSize, MulMatchesReference)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const auto a = randomVector(GetParam(), 3);
    const auto b = randomVector(GetParam(), 4);
    Fp16Vector out;
    blas.mul(a, b, out);
    EXPECT_TRUE(bitEqual(out, refMul(a, b)));
}

TEST_P(ElementwiseSize, ReluMatchesReference)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const auto a = randomVector(GetParam(), 5);
    Fp16Vector out;
    blas.relu(a, out);
    EXPECT_TRUE(bitEqual(out, refRelu(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementwiseSize,
                         ::testing::Values(std::size_t{16},
                                           std::size_t{100},
                                           std::size_t{2048},
                                           std::size_t{40000},
                                           std::size_t{131072}));

TEST(PimBlasBn, MatchesReference)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const unsigned slots =
        sys.numChannels() * sys.config().pim.unitsPerPch;
    const auto a = randomVector(30000, 6);
    const auto gamma = randomVector(8, 7);
    const auto beta = randomVector(8, 8);
    Fp16Vector out;
    blas.bn(a, gamma, beta, out);
    EXPECT_TRUE(bitEqual(out, refBn(a, gamma, beta, slots)));
}

struct GemvShape
{
    unsigned m;
    unsigned n;
};

class GemvShapes : public ::testing::TestWithParam<GemvShape>
{
};

TEST_P(GemvShapes, MatchesReferenceBitExactly)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const auto [m, n] = GetParam();
    const auto w = randomVector(std::size_t{m} * n, 11);
    const auto x = randomVector(n, 12);
    Fp16Vector y;
    const BlasTiming t = blas.gemv(w, m, n, x, y);
    EXPECT_TRUE(bitEqual(y, refGemv(w, m, n, x)));
    EXPECT_GT(t.ns, 0.0);

    // Cross-check against plain double GEMV: FP16 accumulation error on
    // a dot product of this size stays small for [-2,2) inputs.
    const auto exact = refGemvF64(w, m, n, x);
    for (unsigned i = 0; i < m; ++i) {
        const double got = static_cast<double>(y[i].toFloat());
        EXPECT_NEAR(got, exact[i], std::max(1.0, std::abs(exact[i])) * 0.15)
            << "row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvShapes,
    ::testing::Values(GemvShape{16, 128}, GemvShape{64, 256},
                      GemvShape{100, 200}, GemvShape{256, 512},
                      GemvShape{300, 130}, GemvShape{512, 1024}));

TEST(PimBlasGemv, MultiPassAccumulatorsAreCleared)
{
    // m > 2 * slots forces several passes through the same CRF loop; the
    // MOV-from-SRF_A clear must isolate passes.
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const unsigned slots = sys.numChannels() * sys.config().pim.unitsPerPch;
    const unsigned m = 2 * slots * 3; // three passes
    const unsigned n = 128;
    const auto w = randomVector(std::size_t{m} * n, 13);
    const auto x = randomVector(n, 14);
    Fp16Vector y;
    blas.gemv(w, m, n, x, y);
    EXPECT_TRUE(bitEqual(y, refGemv(w, m, n, x)));
}

TEST(PimBlasTiming, FencesCostTime)
{
    // Section VII-B: removing the per-window fences speeds PIM kernels
    // up substantially.
    PimSystem sys_fenced(testConfig());
    PimBlas fenced(sys_fenced);
    PimSystem sys_free(testConfig());
    PimBlas free(sys_free);
    free.setUseFences(false);
    sys_free.controller(0).setOrderedWindow(1);

    const auto a = randomVector(65536, 21);
    const auto b = randomVector(65536, 22);
    Fp16Vector out1, out2;
    const BlasTiming t1 = fenced.add(a, b, out1);
    const BlasTiming t2 = free.add(a, b, out2);
    EXPECT_TRUE(bitEqual(out1, out2));
    EXPECT_GT(t1.ns, t2.ns * 1.3) << "fences should cost >30%";
    EXPECT_GT(t1.fences, t2.fences);
}

TEST(PimBlasTiming, TimeScalesWithWork)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const auto a1 = randomVector(32768, 31);
    const auto b1 = randomVector(32768, 32);
    const auto a2 = randomVector(4 * 32768, 33);
    const auto b2 = randomVector(4 * 32768, 34);
    Fp16Vector out;
    const BlasTiming small = blas.add(a1, b1, out);
    const BlasTiming large = blas.add(a2, b2, out);
    EXPECT_GT(large.ns, small.ns * 2.0);
    EXPECT_LT(large.ns, small.ns * 8.0);
}

TEST(PimBlasModes, SystemReturnsToSbMode)
{
    PimSystem sys(testConfig());
    PimBlas blas(sys);
    const auto a = randomVector(1024, 41);
    const auto b = randomVector(1024, 42);
    Fp16Vector out;
    blas.add(a, b, out);
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        ASSERT_NE(sys.controller(ch).pim(), nullptr);
        EXPECT_EQ(sys.controller(ch).pim()->mode(), PimMode::Sb);
        EXPECT_FALSE(sys.controller(ch).channel().allBankMode());
    }
}

TEST(PimBlasDse, TwoBankAccessReducesCommands)
{
    SystemConfig base = testConfig();
    SystemConfig dse = testConfig();
    dse.pim = dse.pim.withTwoBankAccess();

    PimSystem sys1(base);
    PimSystem sys2(dse);
    PimBlas b1(sys1);
    PimBlas b2(sys2);
    const auto a = randomVector(32768, 51);
    const auto b = randomVector(32768, 52);
    Fp16Vector o1, o2;
    const BlasTiming t1 = b1.add(a, b, o1);
    const BlasTiming t2 = b2.add(a, b, o2);
    EXPECT_TRUE(bitEqual(o1, o2));
    EXPECT_LT(t2.commands, t1.commands);
    EXPECT_LT(t2.ns, t1.ns);
}

TEST(PimBlasDse, SrwGemvMatchesAndIsFaster)
{
    SystemConfig srw = testConfig();
    srw.pim = srw.pim.withSimultaneousRdWr();

    PimSystem sys1(testConfig());
    PimSystem sys2(srw);
    PimBlas b1(sys1);
    PimBlas b2(sys2);
    const unsigned m = 256;
    const unsigned n = 512;
    const auto w = randomVector(std::size_t{m} * n, 61);
    const auto x = randomVector(n, 62);
    Fp16Vector y1, y2;
    const BlasTiming t1 = b1.gemv(w, m, n, x, y1);
    const BlasTiming t2 = b2.gemv(w, m, n, x, y2);
    EXPECT_TRUE(bitEqual(y1, y2));
    EXPECT_LT(t2.commands, t1.commands);
    EXPECT_LT(t2.ns, t1.ns);
}

TEST(PimBlasDse, DoubleResourcesGemvStaysBitExact)
{
    // Regression: with a 16-deep GRF the AAM index is col % 16, so the
    // x-load columns must stay register-aligned (fixed bug).
    SystemConfig dse = testConfig();
    dse.pim = dse.pim.withDoubleResources();
    PimSystem sys(dse);
    PimBlas blas(sys);
    const unsigned m = 300;
    const unsigned n = 500;
    const auto w = randomVector(std::size_t{m} * n, 81);
    const auto x = randomVector(n, 82);
    Fp16Vector y;
    blas.gemv(w, m, n, x, y);
    EXPECT_TRUE(bitEqual(y, refGemv(w, m, n, x)));
}

TEST(PimBlasDse, DoubleResourcesWidensFenceWindow)
{
    SystemConfig dse = testConfig();
    dse.pim = dse.pim.withDoubleResources();
    PimSystem sys1(testConfig());
    PimSystem sys2(dse);
    PimBlas b1(sys1);
    PimBlas b2(sys2);
    const auto a = randomVector(65536, 71);
    const auto b = randomVector(65536, 72);
    Fp16Vector o1, o2;
    const BlasTiming t1 = b1.add(a, b, o1);
    const BlasTiming t2 = b2.add(a, b, o2);
    EXPECT_TRUE(bitEqual(o1, o2));
    EXPECT_LT(t2.fences, t1.fences);
    EXPECT_LT(t2.ns, t1.ns);
}

} // namespace
} // namespace pimsim
