/**
 * @file
 * Framework ("PIM custom op") tests: the six ops of Section V-A run on
 * the simulated hardware and match the host references bit-exactly,
 * including the full LSTM forward pass.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stack/framework.h"
#include "stack/reference.h"

namespace pimsim {
namespace {

SystemConfig
testConfig()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1;
    c.geometry.rowsPerBank = 512;
    return c;
}

Fp16Vector
randomVector(std::size_t n, std::uint64_t seed, float lo = -2.0f,
             float hi = 2.0f)
{
    Rng rng(seed);
    Fp16Vector v(n);
    for (auto &x : v)
        x = Fp16(rng.nextFloat(lo, hi));
    return v;
}

bool
bitEqual(const Fp16Vector &a, const Fp16Vector &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].bits() != b[i].bits())
            return false;
    return true;
}

TEST(PimOps, AddMulRelu)
{
    PimSystem sys(testConfig());
    PimOps ops(sys);
    const auto a = randomVector(5000, 1);
    const auto b = randomVector(5000, 2);
    EXPECT_TRUE(bitEqual(ops.add(a, b), refAdd(a, b)));
    EXPECT_TRUE(bitEqual(ops.mul(a, b), refMul(a, b)));
    EXPECT_TRUE(bitEqual(ops.relu(a), refRelu(a)));
    EXPECT_EQ(ops.profile().pimKernelCalls, 3u);
    EXPECT_GT(ops.profile().pimNs, 0.0);
}

TEST(PimOps, Bn)
{
    PimSystem sys(testConfig());
    PimOps ops(sys);
    const unsigned slots =
        sys.numChannels() * sys.config().pim.unitsPerPch;
    const auto a = randomVector(9000, 3);
    const auto gamma = randomVector(8, 4);
    const auto beta = randomVector(8, 5);
    EXPECT_TRUE(bitEqual(ops.bn(a, gamma, beta),
                         refBn(a, gamma, beta, slots)));
}

TEST(PimOps, Gemv)
{
    PimSystem sys(testConfig());
    PimOps ops(sys);
    const unsigned m = 96;
    const unsigned n = 160;
    const auto w = randomVector(std::size_t{m} * n, 6);
    const auto x = randomVector(n, 7);
    EXPECT_TRUE(bitEqual(ops.gemv(w, m, n, x), refGemv(w, m, n, x)));
}

TEST(PimOps, LstmMatchesReferenceBitExactly)
{
    PimSystem sys(testConfig());
    PimOps ops(sys);

    const unsigned hidden = 64;
    const unsigned steps = 6;
    LstmWeights weights;
    weights.hidden = hidden;
    weights.input = hidden;
    weights.w = randomVector(std::size_t{4} * hidden * 2 * hidden, 8,
                             -0.1f, 0.1f);
    weights.bias = randomVector(4 * hidden, 9, -0.05f, 0.05f);

    std::vector<Fp16Vector> inputs;
    for (unsigned t = 0; t < steps; ++t)
        inputs.push_back(randomVector(hidden, 100 + t, -1.0f, 1.0f));

    const auto got = ops.lstm(weights, inputs);
    const auto expected = refLstm(weights, inputs);
    ASSERT_EQ(got.size(), steps);
    for (unsigned t = 0; t < steps; ++t)
        EXPECT_TRUE(bitEqual(got[t], expected[t])) << "step " << t;
    // One gate GEMV kernel per step.
    EXPECT_EQ(ops.profile().pimKernelCalls, steps);
}

TEST(PimOps, LstmStateIsBounded)
{
    // Property: sigmoid/tanh gating keeps |h| <= 1 regardless of inputs.
    PimSystem sys(testConfig());
    PimOps ops(sys);
    const unsigned hidden = 32;
    LstmWeights weights;
    weights.hidden = hidden;
    weights.input = hidden;
    weights.w = randomVector(std::size_t{4} * hidden * 2 * hidden, 21);
    weights.bias = randomVector(4 * hidden, 22);
    std::vector<Fp16Vector> inputs(10, randomVector(hidden, 23));
    for (const auto &h : ops.lstm(weights, inputs))
        for (const auto &v : h)
            EXPECT_LE(std::abs(v.toFloat()), 1.0f);
}

TEST(PimOps, ProfileResets)
{
    PimSystem sys(testConfig());
    PimOps ops(sys);
    ops.add(randomVector(100, 31), randomVector(100, 32));
    EXPECT_GT(ops.profile().pimKernelCalls, 0u);
    ops.resetProfile();
    EXPECT_EQ(ops.profile().pimKernelCalls, 0u);
    EXPECT_DOUBLE_EQ(ops.profile().pimNs, 0.0);
}

} // namespace
} // namespace pimsim
