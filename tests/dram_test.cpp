/**
 * @file
 * DRAM substrate tests: address mapping, data store, bank timing and
 * the pseudo-channel state machine (SB and AB modes).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/address.h"
#include "dram/pseudo_channel.h"

namespace pimsim {
namespace {

HbmGeometry
smallGeom()
{
    HbmGeometry g;
    g.rowsPerBank = 256;
    return g;
}

// ---------- Address mapping ----------

class AddressMappingTest : public ::testing::TestWithParam<MappingScheme>
{
};

TEST_P(AddressMappingTest, RoundTripRandomAddresses)
{
    const AddressMapping map(smallGeom(), 64, GetParam());
    Rng rng(101);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr =
            (rng.nextBelow(map.capacity() / kBurstBytes)) * kBurstBytes;
        const DramCoord coord = map.decode(addr);
        EXPECT_EQ(map.encode(coord), addr);
    }
}

TEST_P(AddressMappingTest, RoundTripRandomCoords)
{
    const HbmGeometry g = smallGeom();
    const AddressMapping map(g, 16, GetParam());
    Rng rng(103);
    for (int i = 0; i < 20000; ++i) {
        DramCoord coord;
        coord.channel = static_cast<unsigned>(rng.nextBelow(16));
        coord.bankGroup =
            static_cast<unsigned>(rng.nextBelow(g.bankGroupsPerPch));
        coord.bank =
            static_cast<unsigned>(rng.nextBelow(g.banksPerBankGroup));
        coord.row = static_cast<unsigned>(rng.nextBelow(g.rowsPerBank));
        coord.col = static_cast<unsigned>(rng.nextBelow(g.colsPerRow));
        EXPECT_EQ(map.decode(map.encode(coord)), coord);
    }
}

TEST_P(AddressMappingTest, DistinctAddressesDistinctCoords)
{
    const AddressMapping map(smallGeom(), 4, GetParam());
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(kBurstBytes);
    EXPECT_NE(map.encode(a), map.encode(b));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AddressMappingTest,
                         ::testing::Values(MappingScheme::ChBgColBaRo,
                                           MappingScheme::ChColBgBaRo,
                                           MappingScheme::RoColBgBaCh));

TEST(AddressMapping, ChannelInterleaveIsFine)
{
    // With the default scheme, consecutive bursts hit different channels.
    const AddressMapping map(smallGeom(), 64);
    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(kBurstBytes).channel, 1u);
    EXPECT_EQ(map.decode(63 * kBurstBytes).channel, 63u);
    EXPECT_EQ(map.decode(64 * kBurstBytes).channel, 0u);
}

// ---------- Data store ----------

TEST(DataStore, ReadsZeroWhenUntouched)
{
    DataStore store(smallGeom());
    const Burst b = store.read(3, 10, 5);
    for (auto byte : b)
        EXPECT_EQ(byte, 0);
    EXPECT_EQ(store.allocatedBytes(), 0u);
}

TEST(DataStore, WriteReadRoundTrip)
{
    DataStore store(smallGeom());
    Rng rng(107);
    for (int i = 0; i < 5000; ++i) {
        const unsigned bank = static_cast<unsigned>(rng.nextBelow(16));
        const unsigned row = static_cast<unsigned>(rng.nextBelow(256));
        const unsigned col = static_cast<unsigned>(rng.nextBelow(32));
        Burst data;
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.nextBelow(256));
        store.write(bank, row, col, data);
        EXPECT_EQ(store.read(bank, row, col), data);
    }
}

TEST(DataStore, ColumnsAreIndependent)
{
    DataStore store(smallGeom());
    Burst a{};
    a.fill(0xaa);
    Burst b{};
    b.fill(0xbb);
    store.write(0, 0, 0, a);
    store.write(0, 0, 1, b);
    EXPECT_EQ(store.read(0, 0, 0), a);
    EXPECT_EQ(store.read(0, 0, 1), b);
    // Untouched column in an allocated row reads zero.
    EXPECT_EQ(store.read(0, 0, 2), Burst{});
}

// ---------- Pseudo channel timing ----------

struct PchFixture : public ::testing::Test
{
    PchFixture() : pch(smallGeom(), timing) {}

    /** Issue when legal, returning the issue cycle. */
    Cycle
    issueNext(const Command &cmd)
    {
        now = pch.earliestIssue(cmd, now);
        pch.issue(cmd, now);
        return now;
    }

    HbmTiming timing;
    PseudoChannel pch;
    Cycle now = 0;
};

TEST_F(PchFixture, ActToReadHonoursTrcd)
{
    const Cycle act = issueNext(Command::act(0, 0, 5));
    const Cycle rd = issueNext(Command::rd(0, 0, 0));
    EXPECT_GE(rd - act, timing.tRCDRD);
}

TEST_F(PchFixture, ActToPreHonoursTras)
{
    const Cycle act = issueNext(Command::act(1, 2, 9));
    const Cycle pre = issueNext(Command::pre(1, 2));
    EXPECT_GE(pre - act, timing.tRAS);
}

TEST_F(PchFixture, PreToActHonoursTrp)
{
    issueNext(Command::act(0, 0, 1));
    const Cycle pre = issueNext(Command::pre(0, 0));
    const Cycle act = issueNext(Command::act(0, 0, 2));
    EXPECT_GE(act - pre, timing.tRP);
}

TEST_F(PchFixture, BackToBackReadsSameBankGroupUseTccdL)
{
    issueNext(Command::act(0, 0, 1));
    issueNext(Command::act(0, 1, 1));
    const Cycle rd1 = issueNext(Command::rd(0, 0, 0));
    const Cycle rd2 = issueNext(Command::rd(0, 1, 0));
    EXPECT_GE(rd2 - rd1, timing.tCCDL);
}

TEST_F(PchFixture, BackToBackReadsAcrossBankGroupsUseTccdS)
{
    issueNext(Command::act(0, 0, 1));
    issueNext(Command::act(1, 0, 1));
    now += 100; // both banks long past tRCD
    const Cycle rd1 = issueNext(Command::rd(0, 0, 0));
    const Cycle rd2 = issueNext(Command::rd(1, 0, 0));
    EXPECT_EQ(rd2 - rd1, timing.tCCDS);
}

TEST_F(PchFixture, WriteToReadTurnaround)
{
    issueNext(Command::act(0, 0, 1));
    Burst data{};
    const Cycle wr = issueNext(Command::wr(0, 0, 0, data));
    const Cycle rd = issueNext(Command::rd(0, 0, 1));
    EXPECT_GE(rd - wr, timing.tCWL + timing.tBL + timing.tWTRL);
}

TEST_F(PchFixture, FourActivateWindow)
{
    // Five activates to different bank groups: the fifth must respect
    // tFAW relative to the first.
    std::vector<Cycle> acts;
    for (unsigned i = 0; i < 5; ++i)
        acts.push_back(issueNext(Command::act(i % 4, i / 4, 1)));
    EXPECT_GE(acts[4] - acts[0], timing.tFAW);
}

TEST_F(PchFixture, FunctionalReadBack)
{
    issueNext(Command::act(2, 1, 7));
    Burst data;
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    issueNext(Command::wr(2, 1, 4, data));
    now += 100;
    const IssueResult r = pch.issue(
        Command::rd(2, 1, 4), pch.earliestIssue(Command::rd(2, 1, 4), now));
    EXPECT_EQ(r.data, data);
    EXPECT_NE(r.dataCycle, kNoCycle);
}

TEST_F(PchFixture, ReadLatencyIsDeterministic)
{
    // PIM's key enabling property (Section III-A): every column command
    // completes with the same fixed latency, whenever it issues.
    issueNext(Command::act(0, 0, 3));
    std::vector<Cycle> latencies;
    for (unsigned i = 0; i < 8; ++i) {
        const Command cmd = Command::rd(0, 0, i);
        now = pch.earliestIssue(cmd, now + i * 13); // jittered issue times
        const IssueResult r = pch.issue(cmd, now);
        latencies.push_back(r.dataCycle - now);
    }
    for (Cycle lat : latencies)
        EXPECT_EQ(lat, timing.tCL + timing.tBL);
}

TEST_F(PchFixture, AllBankModeAppliesToEveryBank)
{
    pch.setAllBankMode(true);
    issueNext(Command::act(0, 0, 5));
    for (unsigned b = 0; b < 16; ++b) {
        EXPECT_EQ(pch.bank(b).state, BankState::Active);
        EXPECT_EQ(pch.bank(b).openRow, 5u);
    }
    Burst data{};
    data.fill(0x5a);
    issueNext(Command::wr(0, 0, 3, data));
    // AB-mode write broadcasts to every bank.
    for (unsigned b = 0; b < 16; ++b)
        EXPECT_EQ(pch.dataStore().read(b, 5, 3), data);
    issueNext(Command::preAll());
    EXPECT_TRUE(pch.allBanksIdle());
}

TEST_F(PchFixture, AbModeColumnsPacedAtTccdL)
{
    pch.setAllBankMode(true);
    issueNext(Command::act(0, 0, 1));
    const Cycle rd1 = issueNext(Command::rd(0, 0, 0));
    const Cycle rd2 = issueNext(Command::rd(0, 0, 1));
    EXPECT_EQ(rd2 - rd1, timing.tCCDL);
}

TEST_F(PchFixture, RefreshBlocksActivates)
{
    issueNext(Command::act(0, 0, 1));
    issueNext(Command::preAll());
    const Cycle ref = issueNext(Command::refresh());
    const Cycle act = issueNext(Command::act(0, 0, 1));
    EXPECT_GE(act - ref, timing.tRFC);
}

} // namespace
} // namespace pimsim
