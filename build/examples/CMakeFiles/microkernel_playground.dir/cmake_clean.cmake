file(REMOVE_RECURSE
  "CMakeFiles/microkernel_playground.dir/microkernel_playground.cpp.o"
  "CMakeFiles/microkernel_playground.dir/microkernel_playground.cpp.o.d"
  "microkernel_playground"
  "microkernel_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microkernel_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
