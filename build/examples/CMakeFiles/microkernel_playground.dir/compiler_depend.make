# Empty compiler generated dependencies file for microkernel_playground.
# This may be replaced when dependencies are built.
