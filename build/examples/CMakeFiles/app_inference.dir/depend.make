# Empty dependencies file for app_inference.
# This may be replaced when dependencies are built.
