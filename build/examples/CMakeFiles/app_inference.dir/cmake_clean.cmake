file(REMOVE_RECURSE
  "CMakeFiles/app_inference.dir/app_inference.cpp.o"
  "CMakeFiles/app_inference.dir/app_inference.cpp.o.d"
  "app_inference"
  "app_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
