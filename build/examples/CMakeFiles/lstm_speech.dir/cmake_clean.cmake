file(REMOVE_RECURSE
  "CMakeFiles/lstm_speech.dir/lstm_speech.cpp.o"
  "CMakeFiles/lstm_speech.dir/lstm_speech.cpp.o.d"
  "lstm_speech"
  "lstm_speech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
