# Empty dependencies file for lstm_speech.
# This may be replaced when dependencies are built.
