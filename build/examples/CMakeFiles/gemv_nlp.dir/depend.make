# Empty dependencies file for gemv_nlp.
# This may be replaced when dependencies are built.
