file(REMOVE_RECURSE
  "CMakeFiles/gemv_nlp.dir/gemv_nlp.cpp.o"
  "CMakeFiles/gemv_nlp.dir/gemv_nlp.cpp.o.d"
  "gemv_nlp"
  "gemv_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemv_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
