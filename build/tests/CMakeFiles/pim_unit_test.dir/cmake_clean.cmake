file(REMOVE_RECURSE
  "CMakeFiles/pim_unit_test.dir/pim_unit_test.cpp.o"
  "CMakeFiles/pim_unit_test.dir/pim_unit_test.cpp.o.d"
  "pim_unit_test"
  "pim_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
