# Empty dependencies file for pim_unit_test.
# This may be replaced when dependencies are built.
