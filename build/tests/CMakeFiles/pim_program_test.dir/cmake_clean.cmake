file(REMOVE_RECURSE
  "CMakeFiles/pim_program_test.dir/pim_program_test.cpp.o"
  "CMakeFiles/pim_program_test.dir/pim_program_test.cpp.o.d"
  "pim_program_test"
  "pim_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
