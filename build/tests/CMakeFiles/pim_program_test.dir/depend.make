# Empty dependencies file for pim_program_test.
# This may be replaced when dependencies are built.
