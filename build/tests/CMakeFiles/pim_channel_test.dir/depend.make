# Empty dependencies file for pim_channel_test.
# This may be replaced when dependencies are built.
