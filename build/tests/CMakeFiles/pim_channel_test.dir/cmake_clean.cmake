file(REMOVE_RECURSE
  "CMakeFiles/pim_channel_test.dir/pim_channel_test.cpp.o"
  "CMakeFiles/pim_channel_test.dir/pim_channel_test.cpp.o.d"
  "pim_channel_test"
  "pim_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
