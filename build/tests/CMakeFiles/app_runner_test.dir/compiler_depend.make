# Empty compiler generated dependencies file for app_runner_test.
# This may be replaced when dependencies are built.
