file(REMOVE_RECURSE
  "CMakeFiles/app_runner_test.dir/app_runner_test.cpp.o"
  "CMakeFiles/app_runner_test.dir/app_runner_test.cpp.o.d"
  "app_runner_test"
  "app_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
