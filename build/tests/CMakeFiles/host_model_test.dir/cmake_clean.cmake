file(REMOVE_RECURSE
  "CMakeFiles/host_model_test.dir/host_model_test.cpp.o"
  "CMakeFiles/host_model_test.dir/host_model_test.cpp.o.d"
  "host_model_test"
  "host_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
