# Empty compiler generated dependencies file for bench_table1_mac_units.
# This may be replaced when dependencies are built.
