file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mac_units.dir/bench_table1_mac_units.cpp.o"
  "CMakeFiles/bench_table1_mac_units.dir/bench_table1_mac_units.cpp.o.d"
  "bench_table1_mac_units"
  "bench_table1_mac_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mac_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
