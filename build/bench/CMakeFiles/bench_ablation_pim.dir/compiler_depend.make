# Empty compiler generated dependencies file for bench_ablation_pim.
# This may be replaced when dependencies are built.
