file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pim.dir/bench_ablation_pim.cpp.o"
  "CMakeFiles/bench_ablation_pim.dir/bench_ablation_pim.cpp.o.d"
  "bench_ablation_pim"
  "bench_ablation_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
