# Empty dependencies file for bench_fig12_system_energy.
# This may be replaced when dependencies are built.
