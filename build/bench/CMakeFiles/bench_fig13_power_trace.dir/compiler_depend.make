# Empty compiler generated dependencies file for bench_fig13_power_trace.
# This may be replaced when dependencies are built.
