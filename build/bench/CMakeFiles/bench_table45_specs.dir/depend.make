# Empty dependencies file for bench_table45_specs.
# This may be replaced when dependencies are built.
