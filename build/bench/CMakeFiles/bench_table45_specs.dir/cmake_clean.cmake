file(REMOVE_RECURSE
  "CMakeFiles/bench_table45_specs.dir/bench_table45_specs.cpp.o"
  "CMakeFiles/bench_table45_specs.dir/bench_table45_specs.cpp.o.d"
  "bench_table45_specs"
  "bench_table45_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table45_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
