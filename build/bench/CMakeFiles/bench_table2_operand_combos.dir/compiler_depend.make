# Empty compiler generated dependencies file for bench_table2_operand_combos.
# This may be replaced when dependencies are built.
