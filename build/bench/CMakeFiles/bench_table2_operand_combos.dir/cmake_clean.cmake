file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_operand_combos.dir/bench_table2_operand_combos.cpp.o"
  "CMakeFiles/bench_table2_operand_combos.dir/bench_table2_operand_combos.cpp.o.d"
  "bench_table2_operand_combos"
  "bench_table2_operand_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_operand_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
