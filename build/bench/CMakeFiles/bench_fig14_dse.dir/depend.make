# Empty dependencies file for bench_fig14_dse.
# This may be replaced when dependencies are built.
