file(REMOVE_RECURSE
  "libpimsim.a"
)
