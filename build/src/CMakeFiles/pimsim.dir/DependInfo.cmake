
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bf16.cpp" "src/CMakeFiles/pimsim.dir/common/bf16.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/common/bf16.cpp.o.d"
  "/root/repo/src/common/fp16.cpp" "src/CMakeFiles/pimsim.dir/common/fp16.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/common/fp16.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/pimsim.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/pimsim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/pimsim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/common/stats.cpp.o.d"
  "/root/repo/src/dram/address.cpp" "src/CMakeFiles/pimsim.dir/dram/address.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/dram/address.cpp.o.d"
  "/root/repo/src/dram/command.cpp" "src/CMakeFiles/pimsim.dir/dram/command.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/dram/command.cpp.o.d"
  "/root/repo/src/dram/datastore.cpp" "src/CMakeFiles/pimsim.dir/dram/datastore.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/dram/datastore.cpp.o.d"
  "/root/repo/src/dram/ecc.cpp" "src/CMakeFiles/pimsim.dir/dram/ecc.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/dram/ecc.cpp.o.d"
  "/root/repo/src/dram/pseudo_channel.cpp" "src/CMakeFiles/pimsim.dir/dram/pseudo_channel.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/dram/pseudo_channel.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/pimsim.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/energy/probe.cpp" "src/CMakeFiles/pimsim.dir/energy/probe.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/energy/probe.cpp.o.d"
  "/root/repo/src/energy/system_power.cpp" "src/CMakeFiles/pimsim.dir/energy/system_power.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/energy/system_power.cpp.o.d"
  "/root/repo/src/host/host_model.cpp" "src/CMakeFiles/pimsim.dir/host/host_model.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/host/host_model.cpp.o.d"
  "/root/repo/src/mem/controller.cpp" "src/CMakeFiles/pimsim.dir/mem/controller.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/mem/controller.cpp.o.d"
  "/root/repo/src/mem/llc.cpp" "src/CMakeFiles/pimsim.dir/mem/llc.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/mem/llc.cpp.o.d"
  "/root/repo/src/pim/isa.cpp" "src/CMakeFiles/pimsim.dir/pim/isa.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/pim/isa.cpp.o.d"
  "/root/repo/src/pim/pim_channel.cpp" "src/CMakeFiles/pimsim.dir/pim/pim_channel.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/pim/pim_channel.cpp.o.d"
  "/root/repo/src/pim/pim_unit.cpp" "src/CMakeFiles/pimsim.dir/pim/pim_unit.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/pim/pim_unit.cpp.o.d"
  "/root/repo/src/pim/registers.cpp" "src/CMakeFiles/pimsim.dir/pim/registers.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/pim/registers.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/pimsim.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/sim/system.cpp.o.d"
  "/root/repo/src/stack/app_runner.cpp" "src/CMakeFiles/pimsim.dir/stack/app_runner.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/app_runner.cpp.o.d"
  "/root/repo/src/stack/blas.cpp" "src/CMakeFiles/pimsim.dir/stack/blas.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/blas.cpp.o.d"
  "/root/repo/src/stack/driver.cpp" "src/CMakeFiles/pimsim.dir/stack/driver.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/driver.cpp.o.d"
  "/root/repo/src/stack/framework.cpp" "src/CMakeFiles/pimsim.dir/stack/framework.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/framework.cpp.o.d"
  "/root/repo/src/stack/pim_program.cpp" "src/CMakeFiles/pimsim.dir/stack/pim_program.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/pim_program.cpp.o.d"
  "/root/repo/src/stack/preprocessor.cpp" "src/CMakeFiles/pimsim.dir/stack/preprocessor.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/preprocessor.cpp.o.d"
  "/root/repo/src/stack/reference.cpp" "src/CMakeFiles/pimsim.dir/stack/reference.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/reference.cpp.o.d"
  "/root/repo/src/stack/workloads.cpp" "src/CMakeFiles/pimsim.dir/stack/workloads.cpp.o" "gcc" "src/CMakeFiles/pimsim.dir/stack/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
