/**
 * @file
 * Multi-tenant serving benchmark: tail latency and throughput of the
 * request-serving layer under load.
 *
 * Two tenants (GNMT and DS2, the paper's Section VII-A applications)
 * share one PIM-HBM stack. An open-loop Poisson load generator sweeps
 * offered load at 0.5x / 1.0x / 2.0x of the device's measured batch-1
 * capacity, against three scheduling policies (FCFS, batching with
 * timeout, weighted fair share). Per-tenant throughput and p50/p95/p99
 * end-to-end latency are reported as a table, as CSV and as JSON. A
 * closed-loop section sweeps concurrency for the batching policy.
 *
 * Kernel service times come from the real command-level simulator via
 * the shared ServiceTimeCache, so each distinct (app, batch) shape is
 * simulated exactly once across the whole sweep. Everything is seeded;
 * reruns are bit-identical.
 *
 * Flags (stripped before google/benchmark parsing):
 *   --json-out=FILE  result file (default BENCH_serving.json)
 *   --seed=N         override the arrival seed (recorded in the JSON
 *                    output)
 *   --trace-out=FILE Chrome-trace timeline of the overload batching
 *                    cell (tail-sampled per-request span trees)
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/reqtrace.h"
#include "common/trace.h"
#include "serve/load_gen.h"
#include "serve/serving_engine.h"

using namespace pimsim;
using namespace pimsim::bench;
using namespace pimsim::serve;

namespace {

std::uint64_t g_seed = 0x5e21e5; // overridable with --seed=
constexpr unsigned kMaxBatch = 8;
constexpr double kQueueDepth = 64;

SystemConfig
servedSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // one stack, 16 pseudo channels
    return c;
}

std::vector<TenantSpec>
tenantMix()
{
    return {TenantSpec{"gnmt", gnmtApp(), 1.0},
            TenantSpec{"ds2", ds2App(), 1.0}};
}

struct SweepCell
{
    SchedPolicy policy = SchedPolicy::Fcfs;
    double loadFactor = 0.0; ///< offered load / batch-1 capacity
    double offeredRps = 0.0; ///< total across tenants
    ServeReport report;
};

struct ClosedCell
{
    unsigned concurrency = 0;
    ServeReport report;
};

std::vector<SweepCell> g_cells;
std::vector<ClosedCell> g_closed;
double g_capacityRps = 0.0;
std::string g_traceOut;        // --trace-out=: trace the overload cell
unsigned g_threads = 1;        // --threads=: measurement-system workers
TraceSession g_trace;          // per-shard batch spans + request trees
RunSelfMetrics g_self;         // the run's own cost, into the preamble

ServeConfig
makeConfig(SchedPolicy policy, double batch_timeout_ns,
           const std::shared_ptr<ServiceTimeCache> &cache)
{
    ServeConfig config;
    config.system = servedSystem();
    config.tenants = tenantMix();
    config.queue.depth = static_cast<unsigned>(kQueueDepth);
    config.sched.policy = policy;
    config.sched.maxBatch = kMaxBatch;
    config.sched.batchTimeoutNs = batch_timeout_ns;
    config.timingCache = cache;
    config.simThreads = g_threads;
    // App-level latencies run to seconds under overload; widen the
    // histogram to 2 ms x 16384 = ~32 s so the tail stays resolvable.
    config.histBucketNs = 2'000'000;
    config.histBuckets = 16384;
    return config;
}

void
runSweep()
{
    setQuiet(true);
    if (!g_cells.empty())
        return;
    const auto wall_start = std::chrono::steady_clock::now();

    auto cache = std::make_shared<ServiceTimeCache>();

    // Calibrate: batch-1 service time of each tenant's app on the full
    // device defines the FCFS saturation point the sweep is relative to.
    ShardServiceModel probe(servedSystem(), 16, cache);
    const auto tenants = tenantMix();
    double mean_svc_ns = 0.0;
    for (const auto &t : tenants)
        mean_svc_ns += probe.serviceNs(t.app, 1);
    mean_svc_ns /= static_cast<double>(tenants.size());
    g_capacityRps = 1e9 / mean_svc_ns;

    const double horizon_ns = 300.0 * mean_svc_ns;
    const std::vector<double> loads = {0.5, 1.0, 2.0};
    const std::vector<SchedPolicy> policies = {
        SchedPolicy::Fcfs, SchedPolicy::BatchTimeout, SchedPolicy::FairShare};

    for (const SchedPolicy policy : policies) {
        for (const double load : loads) {
            // Split the offered load evenly across the tenants.
            const double per_tenant_rps =
                load * g_capacityRps / static_cast<double>(tenants.size());
            std::vector<ArrivalSpec> specs;
            for (unsigned t = 0; t < tenants.size(); ++t)
                specs.push_back(ArrivalSpec{t, per_tenant_rps});
            const auto arrivals = poissonArrivals(specs, horizon_ns, g_seed);

            SweepCell cell;
            cell.policy = policy;
            cell.loadFactor = load;
            cell.offeredRps = load * g_capacityRps;
            ServingEngine engine(makeConfig(policy, mean_svc_ns, cache));
            // Trace the most stressed batching cell: that is where
            // sampled span trees are worth reading.
            std::unique_ptr<RequestTracer> tracer;
            const bool traced = !g_traceOut.empty() &&
                                policy == SchedPolicy::BatchTimeout &&
                                load == 2.0;
            if (traced) {
                engine.setTrace(&g_trace);
                RequestTracerConfig rc;
                rc.seed = g_seed;
                tracer = std::make_unique<RequestTracer>(rc);
                engine.setRequestTracer(tracer.get());
            }
            cell.report = runOpenLoop(engine, arrivals);
            cell.report.reconcile();
            g_self.simulatedNs += engine.nowNs();
            if (traced)
                tracer->flush(g_trace);
            g_cells.push_back(std::move(cell));
        }
    }

    // Closed loop: sustainable throughput of the batching policy as the
    // per-tenant client concurrency grows.
    for (const unsigned conc : {1u, 4u, 16u}) {
        ClosedCell cell;
        cell.concurrency = conc;
        ServingEngine engine(
            makeConfig(SchedPolicy::BatchTimeout, mean_svc_ns, cache));
        cell.report = runClosedLoop(engine, conc, 60);
        cell.report.reconcile();
        g_self.simulatedNs += engine.nowNs();
        g_closed.push_back(std::move(cell));
    }

    g_self.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    g_self.traceEventsRecorded = g_trace.recordedEvents();
    g_self.traceEventsDropped = g_trace.droppedEvents();
}

void
printTenantRow(const std::string &policy, double load,
               const TenantReport &t)
{
    printRow({policy, fmt(load, 1), t.name, std::to_string(t.submitted),
              std::to_string(t.rejected), fmt(t.throughputRps, 1),
              fmtNs(t.e2e.p50Ns), fmtNs(t.e2e.p95Ns), fmtNs(t.e2e.p99Ns)},
             10);
}

void
printResults()
{
    char seed_text[32];
    std::snprintf(seed_text, sizeof(seed_text), "0x%llx",
                  static_cast<unsigned long long>(g_seed));
    printHeader("Serving sweep: 2 tenants (GNMT+DS2), open-loop Poisson "
                "(seed " +
                std::string(seed_text) + ")");
    std::printf("batch-1 capacity: %.1f req/s; queue depth %u; max batch "
                "%u\n\n",
                g_capacityRps, static_cast<unsigned>(kQueueDepth),
                kMaxBatch);
    printRow({"policy", "load", "tenant", "submit", "reject", "rps", "p50",
              "p95", "p99"},
             10);
    for (const auto &c : g_cells) {
        for (const auto &t : c.report.tenants)
            printTenantRow(schedPolicyName(c.policy), c.loadFactor, t);
        printTenantRow(schedPolicyName(c.policy), c.loadFactor,
                       c.report.total);
    }

    printHeader("CSV");
    std::printf("policy,load,tenant,submitted,admitted,rejected,completed,"
                "batches,throughput_rps,queue_p50_ns,e2e_p50_ns,e2e_p95_ns,"
                "e2e_p99_ns,e2e_mean_ns\n");
    for (const auto &c : g_cells) {
        for (const auto &t : c.report.tenants) {
            std::printf("%s,%.2f,%s,%llu,%llu,%llu,%llu,%llu,%.2f,%.0f,"
                        "%.0f,%.0f,%.0f,%.0f\n",
                        schedPolicyName(c.policy), c.loadFactor,
                        t.name.c_str(),
                        static_cast<unsigned long long>(t.submitted),
                        static_cast<unsigned long long>(t.admitted),
                        static_cast<unsigned long long>(t.rejected),
                        static_cast<unsigned long long>(t.completed),
                        static_cast<unsigned long long>(t.batches),
                        t.throughputRps, t.queue.p50Ns, t.e2e.p50Ns,
                        t.e2e.p95Ns, t.e2e.p99Ns, t.e2e.meanNs);
        }
    }

    printHeader("JSON");
    std::printf("[\n");
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
        const auto &c = g_cells[i];
        std::printf("  {\"policy\": \"%s\", \"load\": %.2f, \"total_rps\": "
                    "%.2f, \"rejected\": %llu, \"e2e_p50_ns\": %.0f, "
                    "\"e2e_p95_ns\": %.0f, \"e2e_p99_ns\": %.0f, "
                    "\"tenants\": [",
                    schedPolicyName(c.policy), c.loadFactor,
                    c.report.total.throughputRps,
                    static_cast<unsigned long long>(c.report.total.rejected),
                    c.report.total.e2e.p50Ns, c.report.total.e2e.p95Ns,
                    c.report.total.e2e.p99Ns);
        for (std::size_t t = 0; t < c.report.tenants.size(); ++t) {
            const auto &r = c.report.tenants[t];
            std::printf("{\"name\": \"%s\", \"rps\": %.2f, \"p99_ns\": "
                        "%.0f}%s",
                        r.name.c_str(), r.throughputRps, r.e2e.p99Ns,
                        t + 1 < c.report.tenants.size() ? ", " : "");
        }
        std::printf("]}%s\n", i + 1 < g_cells.size() ? "," : "");
    }
    std::printf("]\n");

    printHeader("Closed loop (batch policy, 60 requests/tenant)");
    printRow({"conc", "completed", "rps", "p50", "p95", "p99"}, 12);
    for (const auto &c : g_closed) {
        printRow({std::to_string(c.concurrency),
                  std::to_string(c.report.total.completed),
                  fmt(c.report.total.throughputRps, 1),
                  fmtNs(c.report.total.e2e.p50Ns),
                  fmtNs(c.report.total.e2e.p95Ns),
                  fmtNs(c.report.total.e2e.p99Ns)},
                 12);
    }

    std::printf("\nexpectation: at load 2.0 the batching policy amortises "
                "kernel launches and\nsustains higher throughput with fewer "
                "rejections than FCFS; fair share keeps\nthe two tenants' "
                "completed rates matched under overload.\n");
}

void
writeLatency(JsonWriter &w, const char *key, const LatencySummary &s)
{
    w.key(key).beginObject();
    w.field("mean_ns", s.meanNs);
    w.field("p50_ns", s.p50Ns);
    w.field("p95_ns", s.p95Ns);
    w.field("p99_ns", s.p99Ns);
    w.field("max_ns", s.maxNs);
    w.endObject();
}

void
writeTenant(JsonWriter &w, const TenantReport &t)
{
    w.beginObject();
    w.field("name", t.name);
    w.field("submitted", t.submitted);
    w.field("admitted", t.admitted);
    w.field("rejected", t.rejected);
    w.field("completed", t.completed);
    w.field("batches", t.batches);
    w.field("throughput_rps", t.throughputRps);
    writeLatency(w, "queue", t.queue);
    writeLatency(w, "e2e", t.e2e);
    w.endObject();
}

/** Machine-readable sweep results (BENCH_serving.json at the repo root). */
void
writeJsonReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return;
    }
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    writeBenchPreamble(w, "serving", g_seed, false,
                       "multi-tenant serving: policy x load sweep on 1 "
                       "PIM-HBM stack",
                       &g_self);
    w.field("capacity_rps", g_capacityRps);
    w.key("open_loop").beginArray();
    for (const auto &c : g_cells) {
        w.beginObject();
        w.field("policy", schedPolicyName(c.policy));
        w.field("load_factor", c.loadFactor);
        w.field("offered_rps", c.offeredRps);
        w.key("total");
        writeTenant(w, c.report.total);
        w.key("tenants").beginArray();
        for (const auto &t : c.report.tenants)
            writeTenant(w, t);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("closed_loop").beginArray();
    for (const auto &c : g_closed) {
        w.beginObject();
        w.field("concurrency", c.concurrency);
        w.key("total");
        writeTenant(w, c.report.total);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
BM_Serving(benchmark::State &state)
{
    for (auto _ : state)
        runSweep();
    const auto &c = g_cells.at(static_cast<std::size_t>(state.range(0)));
    state.counters["offered_rps"] = c.offeredRps;
    state.counters["rps"] = c.report.total.throughputRps;
    state.counters["rejected"] =
        static_cast<double>(c.report.total.rejected);
    state.counters["p50_ns"] = c.report.total.e2e.p50Ns;
    state.counters["p95_ns"] = c.report.total.e2e.p95Ns;
    state.counters["p99_ns"] = c.report.total.e2e.p99Ns;
    state.SetLabel(std::string(schedPolicyName(c.policy)) + "/load_" +
                   fmt(c.loadFactor, 1));
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_serving.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            g_traceOut = argv[i] + 12;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            g_seed = std::strtoull(argv[i] + 7, nullptr, 0);
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            g_threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    runSweep();
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
        const auto &c = g_cells[i];
        benchmark::RegisterBenchmark(
            ("Serving/" + std::string(schedPolicyName(c.policy)) +
             "/load_" + fmt(c.loadFactor, 1))
                .c_str(),
            BM_Serving)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    if (!json_out.empty())
        writeJsonReport(json_out);
    if (!g_traceOut.empty() && !g_trace.writeFile(g_traceOut))
        return 1;
    return 0;
}
