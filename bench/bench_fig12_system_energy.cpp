/**
 * @file
 * Fig. 12: relative power and energy of three systems — PROC-HBM (the
 * baseline processor + 4 HBM stacks), PIM-HBM (the same processor + 4
 * PIM-HBM stacks), and PROC-HBMx4 (a hypothetical processor with 16 HBM
 * stacks) — on GEMV, ADD, DS2, GNMT and AlexNet.
 *
 * Paper headlines: PIM-HBM is 8.25x more energy-efficient than PROC-HBM
 * on GEMV and 1.4x on ADD; 3.2x / 1.38x / 1.5x on DS2 / GNMT / AlexNet;
 * PROC-HBMx4 gains bandwidth but burns proportionally more power, so
 * its efficiency stays near PROC-HBM.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "energy/system_power.h"
#include "stack/workloads.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

struct Entry
{
    std::string name;
    // per system: (ns, avg W, J)
    std::map<std::string, SystemEnergy> bySystem;
};

std::vector<Entry> g_entries;

SystemEnergy
measure(Setup &setup, const std::string &workload, unsigned batch,
        bool pim_path)
{
    AppRunResult run;
    bool matched = false;
    for (const auto &micro : table6Microbenchmarks()) {
        if (micro.name == workload) {
            run = setup.runner->runMicro(micro, batch);
            matched = true;
        }
    }
    if (!matched) {
        for (const auto &app : allApps()) {
            if (app.name == workload) {
                run = setup.runner->runApp(app, batch);
                matched = true;
            }
        }
    }
    PIMSIM_ASSERT(matched, "unknown workload ", workload);

    SystemPowerModel power(EnergyModel{}, HostPowerParams{},
                           setup.system->numChannels());
    return power.appEnergy(run, pim_path);
}

void
runFig12()
{
    setQuiet(true);
    Setup proc_hbm = makeSetup(SystemConfig::hbmSystem());
    Setup pim_hbm = makeSetup(SystemConfig::pimHbmSystem());
    Setup proc_hbm_x4 = makeSetup(SystemConfig::hbmX4System());

    const char *workloads[] = {"GEMV3", "ADD3", "DS2", "GNMT", "AlexNet"};
    for (const char *w : workloads) {
        Entry e;
        e.name = w;
        e.bySystem["PROC-HBM"] = measure(proc_hbm, w, 1, false);
        e.bySystem["PIM-HBM"] = measure(pim_hbm, w, 1, true);
        e.bySystem["PROC-HBMx4"] = measure(proc_hbm_x4, w, 1, false);
        g_entries.push_back(e);
    }
}

void
printFig12()
{
    printHeader("Fig. 12: relative power and energy (normalised to "
                "PROC-HBM)");
    printRow({"workload", "system", "time", "avg power", "rel power",
              "rel energy", "eff gain"},
             13);
    for (const auto &e : g_entries) {
        const auto &base = e.bySystem.at("PROC-HBM");
        for (const char *sys : {"PROC-HBM", "PIM-HBM", "PROC-HBMx4"}) {
            const auto &s = e.bySystem.at(sys);
            printRow({e.name, sys, fmtNs(s.ns),
                      fmt(s.avgPowerW(), 1) + " W",
                      fmt(s.avgPowerW() / base.avgPowerW()),
                      fmt(s.totalJ() / base.totalJ()),
                      fmt(base.totalJ() / s.totalJ())},
                     13);
        }
    }
    std::printf("\npaper: PIM-HBM energy-efficiency gains over PROC-HBM: "
                "GEMV 8.25x, ADD 1.4x,\nDS2 3.2x, GNMT 1.38x, AlexNet "
                "1.5x; PROC-HBMx4 stays near PROC-HBM.\n");
}

void
BM_Fig12(benchmark::State &state)
{
    for (auto _ : state) {
        if (g_entries.empty())
            runFig12();
    }
    const auto &e = g_entries.at(static_cast<std::size_t>(state.range(0)));
    const auto &base = e.bySystem.at("PROC-HBM");
    const auto &pim = e.bySystem.at("PIM-HBM");
    state.counters["energy_eff_gain"] = base.totalJ() / pim.totalJ();
    state.counters["speedup"] = base.ns / pim.ns;
    state.SetLabel(e.name);
}

} // namespace

int
main(int argc, char **argv)
{
    runFig12();
    for (std::size_t i = 0; i < g_entries.size(); ++i) {
        benchmark::RegisterBenchmark(
            ("Fig12/" + g_entries[i].name).c_str(), BM_Fig12)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig12();
    return 0;
}
