/**
 * @file
 * Tables IV and V: the PIM execution-unit and PIM-HBM device
 * specifications, derived from the simulator's configuration objects
 * (so a config change shows up here immediately), checked against the
 * published numbers.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "pim/pim_config.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

void
printTables()
{
    const SystemConfig sys = SystemConfig::pimHbmSystem();
    const PimConfig &pim = sys.pim;
    const HbmTiming &t = sys.timing;

    printHeader("Table IV: PIM execution unit");
    printRow({"# of MUL/ADD FPUs",
              std::to_string(pim.lanes) + "/" + std::to_string(pim.lanes)},
             34);
    printRow({"Datapath width",
              "256 bits (16 bits x " + std::to_string(pim.lanes) +
                  " lanes)"},
             34);
    printRow({"Operating frequency",
              fmt(t.coreGHz() * 1000, 0) + " MHz (bus/4)"},
             34);
    printRow({"Throughput",
              fmt(PimConfig::unitGflops(0.3, pim.lanes), 1) +
                  " GFLOPS at 300 MHz"},
             34);
    printRow({"Equivalent gate count",
              std::to_string(PimConfig::kGateCount) + " (only logic)"},
             34);
    printRow({"Instruction registers",
              "32b x " + std::to_string(pim.crfEntries) + " (CRF)"},
             34);
    printRow({"Vector registers",
              "256b x " + std::to_string(2 * pim.grfPerHalf) + " (GRF)"},
             34);
    printRow({"Scalar registers",
              "16b x " + std::to_string(2 * pim.srfPerFile) + " (SRF)"},
             34);
    printRow({"Area", fmt(PimConfig::kAreaMm2, 3) + " mm^2"}, 34);

    printHeader("Table V: PIM-HBM device (one stack)");
    const double on_chip =
        sys.onChipBandwidthGBs() / sys.numStacks; // per stack
    const double off_chip =
        sys.offChipBandwidthGBs() / sys.numStacks;
    printRow({"Ext. clocking frequency", fmt(t.busGHz(), 1) + " GHz"}, 34);
    printRow({"Timing parameters", "Same as HBM2"}, 34);
    printRow({"# of pCHs", std::to_string(sys.geometry.pchPerStack)}, 34);
    printRow({"# of banks per pCH",
              std::to_string(sys.geometry.banksPerPch())},
             34);
    printRow({"# of PIM exe. units per pCH",
              std::to_string(pim.unitsPerPch)},
             34);
    printRow({"On-chip compute bandwidth",
              fmt(on_chip / 1000.0, 3) + " TB/s"},
             34);
    printRow({"Off-chip I/O bandwidth", fmt(off_chip, 1) + " GB/s"}, 34);
    printRow({"Capacity (modelled geometry)",
              fmt(static_cast<double>(sys.geometry.bytesPerStack()) /
                      (1ull << 30),
                  1) + " GB"},
             34);

    printHeader("Section VI system (4 stacks + 60-CU processor)");
    printRow({"Total off-chip bandwidth",
              fmt(sys.offChipBandwidthGBs() / 1000.0, 3) + " TB/s "
              "(paper: 1.229 TB/s)"},
             34);
    printRow({"Total on-chip compute bandwidth",
              fmt(sys.onChipBandwidthGBs() / 1000.0, 3) + " TB/s "
              "(paper: 4.915 TB/s)"},
             34);
}

void
BM_BandwidthDerivation(benchmark::State &state)
{
    const SystemConfig sys = SystemConfig::pimHbmSystem();
    double v = 0;
    for (auto _ : state) {
        v = sys.onChipBandwidthGBs();
        benchmark::DoNotOptimize(v);
    }
    state.counters["on_chip_GBs"] = sys.onChipBandwidthGBs();
    state.counters["off_chip_GBs"] = sys.offChipBandwidthGBs();
    state.counters["ratio"] =
        sys.onChipBandwidthGBs() / sys.offChipBandwidthGBs();
}
BENCHMARK(BM_BandwidthDerivation);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTables();
    return 0;
}
