/**
 * @file
 * Fig. 13: average system power of DS2 over time, HBM vs PIM-HBM.
 *
 * The paper's point: PIM-HBM improves energy efficiency through both a
 * shorter run AND lower average power during the (dominant) LSTM
 * phases, where the host merely drives command streams instead of
 * spinning on memory stalls.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "energy/system_power.h"
#include "stack/workloads.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

PowerTrace g_hbm_trace, g_pim_trace;
double g_hbm_ns = 0, g_pim_ns = 0;
double g_hbm_j = 0, g_pim_j = 0;

/** Build the per-layer phase schedule of DS2 on one system. */
std::vector<std::pair<double, double>>
ds2Phases(Setup &setup, bool pim_path, double *total_ns, double *total_j)
{
    SystemPowerModel power(EnergyModel{}, HostPowerParams{},
                           setup.system->numChannels());
    std::vector<std::pair<double, double>> phases;
    *total_ns = 0;
    *total_j = 0;
    for (const auto &layer : ds2App().layers) {
        AppSpec single;
        single.name = "layer";
        single.layers.push_back(layer);
        const AppRunResult run = setup.runner->runApp(single, 1);
        const SystemEnergy e = power.appEnergy(run, pim_path);
        phases.emplace_back(e.ns, e.avgPowerW());
        *total_ns += e.ns;
        *total_j += e.totalJ();
    }
    return phases;
}

void
runFig13()
{
    setQuiet(true);
    Setup hbm = makeSetup(SystemConfig::hbmSystem());
    Setup pim = makeSetup(SystemConfig::pimHbmSystem());

    const auto hbm_phases = ds2Phases(hbm, false, &g_hbm_ns, &g_hbm_j);
    const auto pim_phases = ds2Phases(pim, true, &g_pim_ns, &g_pim_j);

    const double sample = g_hbm_ns / 48.0; // ~48 samples for the longer run
    g_hbm_trace = SystemPowerModel::tracePhases(hbm_phases, sample);
    g_pim_trace = SystemPowerModel::tracePhases(pim_phases, sample);
}

void
printTrace(const char *name, const PowerTrace &trace)
{
    std::printf("%-8s", name);
    for (double w : trace.watts)
        std::printf(" %5.1f", w);
    std::printf("\n");
}

void
printFig13()
{
    printHeader("Fig. 13: DS2 average system power over time (W, sampled "
                "at equal intervals of the HBM run)");
    std::printf("sample interval: %s\n", fmtNs(g_hbm_trace.sampleNs).c_str());
    printTrace("HBM", g_hbm_trace);
    printTrace("PIM-HBM", g_pim_trace);
    std::printf("\nHBM:     total %s, energy %.2f J, avg %.1f W\n",
                fmtNs(g_hbm_ns).c_str(), g_hbm_j,
                g_hbm_j / g_hbm_ns * 1e9);
    std::printf("PIM-HBM: total %s, energy %.2f J, avg %.1f W\n",
                fmtNs(g_pim_ns).c_str(), g_pim_j,
                g_pim_j / g_pim_ns * 1e9);
    std::printf("\npaper: the PIM-HBM run is both shorter and at lower "
                "average power during the\nLSTM-dominated phases "
                "(Section VII-C).\n");
}

void
BM_Fig13(benchmark::State &state)
{
    for (auto _ : state) {
        if (g_hbm_trace.watts.empty())
            runFig13();
    }
    state.counters["hbm_avg_w"] = g_hbm_j / g_hbm_ns * 1e9;
    state.counters["pim_avg_w"] = g_pim_j / g_pim_ns * 1e9;
    state.counters["speedup"] = g_hbm_ns / g_pim_ns;
    state.counters["energy_gain"] = g_hbm_j / g_pim_j;
}

} // namespace

int
main(int argc, char **argv)
{
    runFig13();
    benchmark::RegisterBenchmark("Fig13/ds2_power_trace", BM_Fig13)
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig13();
    return 0;
}
