/**
 * @file
 * Chaos-serving benchmark: graceful degradation of the resilient
 * serving path under uncorrectable-fault campaigns.
 *
 * Two experiments on one PIM-HBM stack serving a two-tenant mix with
 * per-request deadlines:
 *
 *  - Rate x policy sweep: a steady per-shard fault rate (off /
 *    negligible / harsh / severe) against three resilience policies
 *    (none, retry-only, retry + circuit breaker). Reported per cell:
 *    goodput (completions inside their deadline per second), SLO
 *    violation rate, shed / timed-out / retried / host-fallback counts
 *    and breaker activity. The headline expectation is graceful
 *    degradation: a negligible fault rate (1e-6 faults/s) keeps goodput
 *    within measurement noise of fault-free, and under harsh rates the
 *    resilient policies keep completing work the naive one times out.
 *  - Fault burst: a quiet baseline interrupted by a high-rate burst in
 *    the middle third of the run, under the full resilience policy.
 *    Windowed p99 latency before / during / after the burst shows the
 *    path absorbing the storm and recovering (p99 after within 2x
 *    before).
 *
 * Service times come from the real command-level simulator through the
 * shared ServiceTimeCache; the fault process, retry jitter and arrivals
 * are all seeded, so reruns are bit-identical. Results are printed as a
 * table and written as BENCH_chaos.json (validated with validateJson
 * before the file is written; an invalid document is a hard error).
 *
 * Flags (stripped before google/benchmark parsing):
 *   --json-out=FILE  result file (default BENCH_chaos.json; "" disables)
 *   --smoke          shrink horizons/rates for CI sanitizer runs
 *   --seed=N         override the arrival/fault/retry seed (recorded in
 *                    the JSON output)
 *   --trace-out=FILE Chrome-trace timeline of the fault-burst run
 *                    (tail-sampled per-request span trees)
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/reqtrace.h"
#include "common/trace.h"
#include "serve/chaos.h"
#include "serve/load_gen.h"
#include "serve/serving_engine.h"

using namespace pimsim;
using namespace pimsim::bench;
using namespace pimsim::serve;

namespace {

std::uint64_t g_seed = 0xc4a05; // overridable with --seed=

bool g_smoke = false;

/** Resilience policy under test. */
enum class Policy
{
    None,        ///< no retries, no breaker: failed batches go to host
    Retry,       ///< exponential-backoff retries only
    RetryBreaker ///< retries + per-shard circuit breaker
};

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::None:
        return "none";
      case Policy::Retry:
        return "retry";
      case Policy::RetryBreaker:
        return "retry+breaker";
    }
    return "?";
}

SystemConfig
servedSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // one stack, 16 pseudo channels
    return c;
}

/** A small FC stack: real PIM GEMVs, cheap enough for wide sweeps. */
AppSpec
chatApp(const std::string &name, unsigned dim)
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = dim;
    fc.input = dim;
    fc.steps = 2;
    fc.pimEligible = true;

    AppSpec app;
    app.name = name;
    app.layers = {fc};
    return app;
}

std::vector<TenantSpec>
tenantMix(double deadline_ns)
{
    TenantSpec a{"chat", chatApp("chat", 768), 1.0, deadline_ns};
    TenantSpec b{"embed", chatApp("embed", 512), 1.0, deadline_ns};
    return {a, b};
}

struct ChaosCell
{
    Policy policy = Policy::None;
    double faultsPerSec = 0.0;
    ServeReport report;
    double goodputRps = 0.0;     ///< in-deadline completions per second
    double sloViolationRate = 0.0;
    std::uint64_t breakerOpens = 0;
    std::uint64_t batchFaults = 0;
};

struct BurstResult
{
    double faultsPerSec = 0.0;      ///< burst-window rate
    double p99BeforeNs = 0.0;
    double p99DuringNs = 0.0;
    double p99AfterNs = 0.0;
    std::uint64_t completions = 0;
    ServeReport report;
};

std::vector<ChaosCell> g_cells;
BurstResult g_burst;
double g_capacityRps = 0.0;
double g_deadlineNs = 0.0;
std::string g_traceOut;   // --trace-out=: trace the fault-burst run
TraceSession g_trace;
RunSelfMetrics g_self;

ServeConfig
makeConfig(Policy policy, double deadline_ns, double batch_timeout_ns,
           const std::shared_ptr<ServiceTimeCache> &cache)
{
    ServeConfig config;
    config.system = servedSystem();
    config.tenants = tenantMix(deadline_ns);
    config.queue.depth = 64;
    config.sched.policy = SchedPolicy::BatchTimeout;
    config.sched.maxBatch = 8;
    config.sched.batchTimeoutNs = batch_timeout_ns;
    config.timingCache = cache;
    config.histBucketNs = 50'000;
    config.histBuckets = 16384;
    config.retrySeed = g_seed ^ 0x7e57;

    switch (policy) {
      case Policy::None:
        config.retry.maxRetries = 0;
        break;
      case Policy::Retry:
        config.retry.maxRetries = 2;
        break;
      case Policy::RetryBreaker:
        config.retry.maxRetries = 2;
        config.breaker.enabled = true;
        config.breaker.window = 16;
        config.breaker.minSamples = 4;
        config.breaker.errorThreshold = 0.5;
        break;
    }
    return config;
}

void
fillDerived(ChaosCell &cell, double horizon_ns)
{
    const TenantReport &total = cell.report.total;
    const std::uint64_t good = total.completed - total.sloViolations;
    cell.goodputRps = horizon_ns > 0.0
                          ? static_cast<double>(good) / (horizon_ns * 1e-9)
                          : 0.0;
    cell.sloViolationRate =
        total.completed
            ? static_cast<double>(total.sloViolations) /
                  static_cast<double>(total.completed)
            : 0.0;
    for (const auto &s : cell.report.shards) {
        cell.breakerOpens += s.opens;
        cell.batchFaults += s.batchFaults;
    }
}

void
runSweep()
{
    if (!g_cells.empty())
        return;
    setQuiet(true);
    const auto wall_start = std::chrono::steady_clock::now();

    auto cache = std::make_shared<ServiceTimeCache>();

    // Calibrate offered load and deadlines from the measured batch-1
    // service times, as bench_serving does.
    ShardServiceModel probe(servedSystem(), 16, cache);
    const auto tenants = tenantMix(0.0);
    double mean_svc_ns = 0.0;
    for (const auto &t : tenants)
        mean_svc_ns += probe.serviceNs(t.app, 1);
    mean_svc_ns /= static_cast<double>(tenants.size());
    g_capacityRps = 1e9 / mean_svc_ns;
    g_deadlineNs = 25.0 * mean_svc_ns; // roomy SLO: queueing + one retry

    const double horizon_ns = (g_smoke ? 60.0 : 400.0) * mean_svc_ns;
    const double offered = 0.6 * g_capacityRps; // below saturation
    const double svc_s = mean_svc_ns * 1e-9;

    // Fault rates per shard, anchored to the service time: "harsh"
    // strikes ~5% of batches, "severe" ~20%.
    const std::vector<double> rates = {0.0, 1e-6, 0.05 / svc_s,
                                       0.2 / svc_s};
    const std::vector<Policy> policies = {Policy::None, Policy::Retry,
                                          Policy::RetryBreaker};

    std::vector<ArrivalSpec> specs;
    for (unsigned t = 0; t < tenants.size(); ++t)
        specs.push_back(
            ArrivalSpec{t, offered / static_cast<double>(tenants.size())});
    const auto arrivals = poissonArrivals(specs, horizon_ns, g_seed);

    for (const Policy policy : policies) {
        for (const double rate : rates) {
            ChaosCell cell;
            cell.policy = policy;
            cell.faultsPerSec = rate;
            ServingEngine engine(
                makeConfig(policy, g_deadlineNs, mean_svc_ns, cache));
            ChaosConfig chaos_config;
            chaos_config.faultsPerSec = rate;
            chaos_config.seed = g_seed ^ 0xfa017;
            ChaosCampaign chaos(chaos_config, engine.plan().numShards());
            engine.setFaultModel(&chaos);
            cell.report = runOpenLoop(engine, arrivals);
            cell.report.reconcile();
            fillDerived(cell, cell.report.horizonNs);
            g_self.simulatedNs += engine.nowNs();
            g_cells.push_back(std::move(cell));
        }
    }

    // Fault burst: quiet -> storm -> quiet under the full policy, with
    // windowed p99 computed from the raw completion stream.
    {
        const double burst_rate = 0.5 / svc_s;
        const double burst_horizon = (g_smoke ? 90.0 : 600.0) * mean_svc_ns;
        ServingEngine engine(makeConfig(Policy::RetryBreaker, g_deadlineNs,
                                        mean_svc_ns, cache));
        ChaosConfig chaos_config;
        chaos_config.faultsPerSec = 1e-6;
        chaos_config.burstStartNs = burst_horizon / 3.0;
        chaos_config.burstEndNs = 2.0 * burst_horizon / 3.0;
        chaos_config.burstFaultsPerSec = burst_rate;
        chaos_config.seed = g_seed ^ 0xb025;
        ChaosCampaign chaos(chaos_config, engine.plan().numShards());
        engine.setFaultModel(&chaos);
        // Trace the burst: the run where failover/retry span trees and
        // deadline misses are actually present.
        std::unique_ptr<RequestTracer> tracer;
        if (!g_traceOut.empty()) {
            engine.setTrace(&g_trace);
            RequestTracerConfig rc;
            rc.seed = g_seed;
            tracer = std::make_unique<RequestTracer>(rc);
            engine.setRequestTracer(tracer.get());
        }

        // Drive the engine directly (runOpenLoop discards the raw
        // completion stream, which the windowed p99 needs).
        const auto burst_arrivals =
            poissonArrivals(specs, burst_horizon, g_seed ^ 0xa221);
        for (const auto &a : burst_arrivals)
            engine.submit(a.tenant, std::max(a.ns, engine.nowNs()));
        engine.drain();
        g_self.simulatedNs += engine.nowNs();
        if (tracer)
            tracer->flush(g_trace);
        const auto completions = engine.takeCompletions();
        g_burst.report = engine.report();
        g_burst.report.reconcile();
        g_burst.faultsPerSec = burst_rate;

        std::vector<double> before, during, after;
        for (const ServeRequest &r : completions) {
            ++g_burst.completions;
            if (r.completeNs < chaos_config.burstStartNs)
                before.push_back(r.latencyNs());
            else if (r.completeNs < chaos_config.burstEndNs)
                during.push_back(r.latencyNs());
            else
                after.push_back(r.latencyNs());
        }
        auto p99 = [](std::vector<double> &v) {
            if (v.empty())
                return 0.0;
            std::sort(v.begin(), v.end());
            const auto idx = static_cast<std::size_t>(
                0.99 * static_cast<double>(v.size() - 1));
            return v[idx];
        };
        g_burst.p99BeforeNs = p99(before);
        g_burst.p99DuringNs = p99(during);
        g_burst.p99AfterNs = p99(after);
    }

    g_self.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    g_self.traceEventsRecorded = g_trace.recordedEvents();
    g_self.traceEventsDropped = g_trace.droppedEvents();
}

void
printResults()
{
    char seed_text[32];
    std::snprintf(seed_text, sizeof(seed_text), "0x%llx",
                  static_cast<unsigned long long>(g_seed));
    printHeader("Chaos serving sweep: 2 tenants, deadline " +
                fmtNs(g_deadlineNs) + ", open-loop 0.6x capacity (seed " +
                std::string(seed_text) + ")");
    std::printf("batch-1 capacity: %.1f req/s%s\n\n", g_capacityRps,
                g_smoke ? " [smoke horizons]" : "");
    printRow({"policy", "faults/s", "goodput", "sloViol%", "shed",
              "timedOut", "retries", "fallback", "opens", "faults"},
             12);
    for (const auto &c : g_cells) {
        const auto &t = c.report.total;
        printRow({policyName(c.policy), fmt(c.faultsPerSec, 1),
                  fmt(c.goodputRps, 1), fmt(100.0 * c.sloViolationRate, 2),
                  std::to_string(t.shed), std::to_string(t.timedOut),
                  std::to_string(t.retries),
                  std::to_string(t.fallbackCompleted),
                  std::to_string(c.breakerOpens),
                  std::to_string(c.batchFaults)},
                 12);
    }

    printHeader("Fault burst (retry+breaker policy)");
    std::printf("burst rate %.1f faults/s over the middle third; %llu "
                "completions\n",
                g_burst.faultsPerSec,
                static_cast<unsigned long long>(g_burst.completions));
    printRow({"window", "p99"}, 12);
    printRow({"before", fmtNs(g_burst.p99BeforeNs)}, 12);
    printRow({"during", fmtNs(g_burst.p99DuringNs)}, 12);
    printRow({"after", fmtNs(g_burst.p99AfterNs)}, 12);

    std::printf("\nexpectation: goodput at 1e-6 faults/s is within 10%% of "
                "fault-free; under harsh\nrates retry+breaker keeps goodput "
                "highest; p99 after the burst recovers to\nwithin 2x the "
                "pre-burst baseline.\n");
}

void
writeTotals(JsonWriter &w, const TenantReport &t)
{
    w.field("submitted", t.submitted);
    w.field("admitted", t.admitted);
    w.field("rejected", t.rejected);
    w.field("completed", t.completed);
    w.field("shed", t.shed);
    w.field("timed_out", t.timedOut);
    w.field("retries", t.retries);
    w.field("fallback_completed", t.fallbackCompleted);
    w.field("slo_violations", t.sloViolations);
    w.field("throughput_rps", t.throughputRps);
    w.field("e2e_p50_ns", t.e2e.p50Ns);
    w.field("e2e_p99_ns", t.e2e.p99Ns);
}

/** The whole result document as a JSON string. */
std::string
jsonReport()
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    writeBenchPreamble(w, "chaos_serving", g_seed, g_smoke,
                       "serving under injected faults on 1 PIM-HBM stack",
                       &g_self);
    w.field("capacity_rps", g_capacityRps);
    w.field("deadline_ns", g_deadlineNs);
    w.key("sweep").beginArray();
    for (const auto &c : g_cells) {
        w.beginObject();
        w.field("policy", policyName(c.policy));
        w.field("faults_per_sec", c.faultsPerSec);
        w.field("goodput_rps", c.goodputRps);
        w.field("slo_violation_rate", c.sloViolationRate);
        w.field("breaker_opens", c.breakerOpens);
        w.field("batch_faults", c.batchFaults);
        w.key("total").beginObject();
        writeTotals(w, c.report.total);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("burst").beginObject();
    w.field("faults_per_sec", g_burst.faultsPerSec);
    w.field("completions", g_burst.completions);
    w.field("p99_before_ns", g_burst.p99BeforeNs);
    w.field("p99_during_ns", g_burst.p99DuringNs);
    w.field("p99_after_ns", g_burst.p99AfterNs);
    w.key("total").beginObject();
    writeTotals(w, g_burst.report.total);
    w.endObject();
    w.endObject();
    w.endObject();
    os << "\n";
    return os.str();
}

/** Validate, then write BENCH_chaos.json. Invalid JSON is a hard fail
 *  (the CI smoke job relies on this self-check). */
bool
writeJsonReport(const std::string &path)
{
    const std::string text = jsonReport();
    std::string error;
    if (!validateJson(text, &error)) {
        std::fprintf(stderr, "BENCH_chaos JSON invalid: %s\n",
                     error.c_str());
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return false;
    }
    os << text;
    return true;
}

void
BM_Chaos(benchmark::State &state)
{
    for (auto _ : state)
        runSweep();
    const auto &c = g_cells.at(static_cast<std::size_t>(state.range(0)));
    state.counters["faults_per_sec"] = c.faultsPerSec;
    state.counters["goodput_rps"] = c.goodputRps;
    state.counters["slo_violation_rate"] = c.sloViolationRate;
    state.counters["shed"] = static_cast<double>(c.report.total.shed);
    state.counters["timed_out"] =
        static_cast<double>(c.report.total.timedOut);
    state.counters["retries"] = static_cast<double>(c.report.total.retries);
    state.counters["fallback"] =
        static_cast<double>(c.report.total.fallbackCompleted);
    state.counters["breaker_opens"] = static_cast<double>(c.breakerOpens);
    state.SetLabel(std::string(policyName(c.policy)) + "/rate_" +
                   fmt(c.faultsPerSec, 1));
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_chaos.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            g_traceOut = argv[i] + 12;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            g_seed = std::strtoull(argv[i] + 7, nullptr, 0);
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    runSweep();
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
        const auto &c = g_cells[i];
        benchmark::RegisterBenchmark(
            ("Chaos/" + std::string(policyName(c.policy)) + "/rate_" +
             fmt(c.faultsPerSec, 1))
                .c_str(),
            BM_Chaos)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    if (!json_out.empty() && !writeJsonReport(json_out))
        return 1;
    if (!g_traceOut.empty() && !g_trace.writeFile(g_traceOut))
        return 1;
    return 0;
}
