/**
 * @file
 * LLM decode-serving benchmark: continuous vs admit-once batching.
 *
 * One PIM-HBM stack (16 pseudo channels) serves a decoder-only
 * transformer (DecoderSpec::tiny) under production-shaped open-loop
 * traffic: lognormal prompt/output lengths, Poisson arrivals. The sweep
 * crosses batch policy {admit-once, continuous} x offered load {0.6,
 * 1.0, 1.4} x output-length profile {short, long}; loads are relative
 * to the calibrated full-batch decode token capacity, so "1.0" means
 * the offered token demand equals what the device can decode with a
 * full batch.
 *
 * Reported per cell: goodput (tokens/s of deadline-met completions),
 * p99 normalized latency (e2e per output token), TTFT, mean decode
 * batch, preemption/KV counters. In-binary acceptance requires
 * continuous batching to beat admit-once on BOTH goodput and p99
 * normalized latency in every cell (strictly at the highest load), the
 * terminal-state and KV-block accounting to reconcile in every cell,
 * and a same-seed replay to be bit-identical. Results go to
 * BENCH_llm.json (validated with validateJson before writing).
 *
 * Flags (stripped before google/benchmark parsing):
 *   --json-out=FILE   result file (default BENCH_llm.json; "" disables)
 *   --trace-out=FILE  write a Chrome trace of one continuous-batching
 *                     run (pid-6 "llm" track; default off)
 *   --smoke           shrink the sweep for CI sanitizer runs
 *   --seed=N          override the campaign seed (recorded in the JSON)
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/reqtrace.h"
#include "common/slo.h"
#include "common/trace.h"
#include "llm/trace_gen.h"
#include "serve/load_gen.h"

using namespace pimsim;
using namespace pimsim::bench;
using namespace pimsim::llm;

namespace {

std::uint64_t g_seed = 0x11a5eed;
bool g_smoke = false;
unsigned g_threads = 1; // --threads=: measurement-system workers

constexpr unsigned kMaxBatch = 8;

/** One sweep cell's outcome. */
struct Cell
{
    BatchPolicy policy = BatchPolicy::Continuous;
    double load = 0.0;
    std::string profile;
    double offeredRps = 0.0;
    double capacityRps = 0.0; ///< calibrated request capacity
    double deadlineNs = 0.0;
    LlmReport report;
};

/** Outcome of the tail-based-sampling experiment (one overload run). */
struct TailResult
{
    std::uint64_t requests = 0;
    std::uint64_t tracesEnded = 0;
    std::uint64_t kept = 0;
    std::uint64_t mustKeep = 0;
    std::uint64_t headSampled = 0;
    std::uint64_t slowKept = 0;
    std::uint64_t eventsFlushed = 0;
    std::uint64_t eventsTruncated = 0;
    std::uint64_t eventsRecorded = 0;
    std::uint64_t eventsDropped = 0;
    std::uint64_t mustKeepFloor = 0; ///< bad terminals from the report
    std::uint64_t exemplars = 0;
    std::uint64_t exemplarMisses = 0; ///< exemplar ids not in the kept set
    std::vector<std::uint64_t> keptIds; ///< sorted, for the replay diff
};

std::vector<Cell> g_cells;
double g_perTokenNs = 0.0;  ///< calibrated full-batch time per token
double g_capacityTps = 0.0; ///< calibrated decode tokens per second
bool g_replayIdentical = false;
TailResult g_tail;
bool g_tailReplayIdentical = false;
std::unique_ptr<SloMonitor> g_tailSlo;
RunSelfMetrics g_self;
std::vector<std::string> g_failures;
std::string g_traceOut;

void
check(bool ok, const std::string &what)
{
    if (!ok)
        g_failures.push_back(what);
}

SystemConfig
benchSystem()
{
    SystemConfig sys = SystemConfig::pimHbmSystem();
    sys.numStacks = 1; // one stack: 16 pseudo channels
    return sys;
}

/**
 * Decode-heavy serving mix: short prompts, long generations. This is
 * the regime the subsystem targets — decode iterations dominate device
 * time, so the comparison isolates the batching policy (padding waste,
 * wave-boundary queueing) rather than prefill handling, which is
 * policy-independent here (a joiner's prefill runs inside an iteration
 * under either policy).
 */
serve::LengthConfig
promptProfile()
{
    return serve::LengthConfig{64.0, 0.6, 8, 256};
}

serve::LengthConfig
outputProfile(bool long_outputs)
{
    if (long_outputs)
        return serve::LengthConfig{384.0, 0.6, 32, 1024};
    return serve::LengthConfig{192.0, 0.6, 16, 640};
}

LlmEngineConfig
cellConfig(BatchPolicy policy, double deadline_ns,
           const std::shared_ptr<serve::ServiceTimeCache> &cache)
{
    LlmEngineConfig cfg;
    cfg.system = benchSystem();
    cfg.decoder = DecoderSpec::tiny();
    cfg.tenants = {LlmTenantSpec{"prod", deadline_ns, 0}};
    cfg.batcher.policy = policy;
    cfg.batcher.maxBatch = kMaxBatch;
    cfg.batcher.maxQueue = 512;
    cfg.timingCache = cache;
    return cfg;
}

/** The engine's prefill pricing, mirrored for calibration (same
 *  memoised model, same default granules). */
double
prefillNs(serve::ShardServiceModel &model, const DecoderSpec &spec,
          unsigned ctx)
{
    const unsigned bucket = ctxBucket(ctx, 64);
    return model.serviceNs(decodeFfnApp(spec), bucket) +
           model.serviceNs(decodeAttnApp(spec, ctxBucket(ctx, 128)),
                           std::max(1u, bucket / 2));
}

/** Device time one request demands end to end: staged prefill plus
 *  decode at full-batch FFN amortisation and mid-stream context. */
double
requestDemandNs(serve::ShardServiceModel &model, const DecoderSpec &spec,
                double prompt_tokens, double output_tokens)
{
    const unsigned p = static_cast<unsigned>(prompt_tokens);
    const unsigned mid_ctx = static_cast<unsigned>(
        prompt_tokens + 0.5 * output_tokens);
    const double ffn_tok =
        model.serviceNs(decodeFfnApp(spec), kMaxBatch) / kMaxBatch;
    const double attn_tok =
        model.serviceNs(decodeAttnApp(spec, ctxBucket(mid_ctx, 128)), 1);
    return prefillNs(model, spec, p) +
           output_tokens * (ffn_tok + attn_tok);
}

/**
 * Calibrate the decode token capacity at a typical context length and
 * a full batch, through the same memoised service model every engine
 * in the sweep shares.
 */
void
calibrate(const std::shared_ptr<serve::ServiceTimeCache> &cache)
{
    const DecoderSpec spec = DecoderSpec::tiny();
    serve::ShardServiceModel model(benchSystem(),
                                   benchSystem().numChannels(), cache);
    const AppSpec ffn = decodeFfnApp(spec);
    const unsigned typ_ctx = static_cast<unsigned>(
        promptProfile().medianTokens +
        outputProfile(false).medianTokens / 2);
    const AppSpec attn = decodeAttnApp(spec, ctxBucket(typ_ctx, 128));
    const double iter_ns = model.serviceNs(ffn, kMaxBatch) +
                           kMaxBatch * model.serviceNs(attn, 1);
    g_perTokenNs = iter_ns / kMaxBatch;
    g_capacityTps = 1e9 / g_perTokenNs;
}

Cell
runCell(BatchPolicy policy, double load, bool long_outputs,
        const std::shared_ptr<serve::ServiceTimeCache> &cache,
        TraceSession *trace)
{
    Cell cell;
    cell.policy = policy;
    cell.load = load;
    cell.profile = long_outputs ? "long" : "short";

    LlmTrafficSpec traffic;
    traffic.tenant = 0;
    traffic.prompt = promptProfile();
    traffic.output = outputProfile(long_outputs);

    // Offered load is relative to the calibrated *request* capacity:
    // the device time a mean-length request demands end to end
    // (prefill included — the expensive part the naive token-capacity
    // number hides).
    const DecoderSpec spec = DecoderSpec::tiny();
    serve::ShardServiceModel model(benchSystem(),
                                   benchSystem().numChannels(), cache);
    const serve::LengthSampler prompt_sampler(traffic.prompt);
    const serve::LengthSampler out_sampler(traffic.output);
    const double demand_ns =
        requestDemandNs(model, spec, prompt_sampler.analyticMean(),
                        out_sampler.analyticMean());
    cell.capacityRps = 1e9 / demand_ns;
    cell.offeredRps = load * cell.capacityRps;
    traffic.ratePerSec = cell.offeredRps;

    // Roomy per-request SLO: 5x an unloaded p95-length request on the
    // batch-1 decode path (no FFN amortisation available).
    const double p95_prompt = prompt_sampler.analyticQuantile(0.95);
    const double p95_out = out_sampler.analyticQuantile(0.95);
    const double tok1_ns =
        model.serviceNs(decodeFfnApp(spec), 1) +
        model.serviceNs(
            decodeAttnApp(spec, ctxBucket(static_cast<unsigned>(
                                              p95_prompt + p95_out),
                                          128)),
            1);
    cell.deadlineNs =
        5.0 * (prefillNs(model, spec,
                         static_cast<unsigned>(p95_prompt)) +
               p95_out * tok1_ns);

    const std::uint64_t n = g_smoke ? 250 : 2'500;
    const double horizon_ns =
        static_cast<double>(n) * 1e9 / cell.offeredRps;
    const auto arrivals =
        drawLlmTrace({traffic}, horizon_ns, g_seed ^ 0x7a11);

    LlmEngine engine(cellConfig(policy, cell.deadlineNs, cache));
    if (trace != nullptr)
        engine.setTrace(trace);
    cell.report = runOpenLoop(engine, arrivals);
    cell.report.reconcile();
    return cell;
}

/**
 * Tail-based-sampling experiment: one continuous-batching run pushed
 * into overload (every deadline miss / shed / preemption is a must-keep
 * trace), short outputs so the event volume is bounded by policy, not
 * by luck. Fills `out` with the tracer's accounting and the sorted
 * kept-trace-id set; the caller runs it twice to prove the kept set is
 * seed-deterministic.
 */
std::unique_ptr<SloMonitor>
runTail(const std::shared_ptr<serve::ServiceTimeCache> &cache,
        TailResult *out)
{
    LlmTrafficSpec traffic;
    traffic.tenant = 0;
    traffic.prompt = promptProfile();
    // ~16-token outputs: even with ~half the 100k requests kept as
    // must-keep under overload, the flushed volume stays well inside
    // the session's 4M-event budget (~40 events per kept trace).
    traffic.output = serve::LengthConfig{16.0, 0.6, 4, 64};

    const DecoderSpec spec = DecoderSpec::tiny();
    serve::ShardServiceModel model(benchSystem(),
                                   benchSystem().numChannels(), cache);
    const serve::LengthSampler prompt_sampler(traffic.prompt);
    const serve::LengthSampler out_sampler(traffic.output);
    const double demand_ns =
        requestDemandNs(model, spec, prompt_sampler.analyticMean(),
                        out_sampler.analyticMean());
    const double capacity_rps = 1e9 / demand_ns;
    traffic.ratePerSec = 1.1 * capacity_rps; // sustained mild overload

    const double p95_prompt = prompt_sampler.analyticQuantile(0.95);
    const double p95_out = out_sampler.analyticQuantile(0.95);
    const double tok1_ns =
        model.serviceNs(decodeFfnApp(spec), 1) +
        model.serviceNs(
            decodeAttnApp(spec, ctxBucket(static_cast<unsigned>(
                                              p95_prompt + p95_out),
                                          128)),
            1);
    const double deadline_ns =
        5.0 * (prefillNs(model, spec,
                         static_cast<unsigned>(p95_prompt)) +
               p95_out * tok1_ns);

    const std::uint64_t n = g_smoke ? 5'000 : 100'000;
    const double horizon_ns =
        static_cast<double>(n) * 1e9 / traffic.ratePerSec;
    const auto arrivals =
        drawLlmTrace({traffic}, horizon_ns, g_seed ^ 0x7a11e);

    SloMonitorConfig slo_config;
    slo_config.windowNs = horizon_ns / 100.0;
    auto slo = std::make_unique<SloMonitor>(slo_config);

    LlmEngine engine(cellConfig(BatchPolicy::Continuous, deadline_ns,
                                cache));
    TraceSession trace;
    engine.setTrace(&trace);
    RequestTracerConfig rc;
    rc.seed = g_seed;
    rc.headSampleRate = 0.01;
    RequestTracer tracer(rc);
    engine.setRequestTracer(&tracer);

    const LlmReport report = runOpenLoop(engine, arrivals);
    report.reconcile();
    g_self.simulatedNs += engine.nowNs();
    slo->feed(engine.takeSloObservations());
    slo->finish(engine.nowNs());
    tracer.flush(trace);

    out->requests = report.total.submitted;
    out->tracesEnded = tracer.tracesEnded();
    out->kept = tracer.keptTraceIds().size();
    out->mustKeep = tracer.mustKeepCount();
    out->headSampled = tracer.headSampledCount();
    out->slowKept = tracer.slowKeptCount();
    out->eventsFlushed = tracer.eventsFlushed();
    out->eventsTruncated = tracer.eventsTruncated();
    out->eventsRecorded = trace.recordedEvents();
    out->eventsDropped = trace.droppedEvents();
    // Every request with a bad terminal is must-keep by definition;
    // the report gives an external floor the tracer cannot undercut.
    const LlmTenantReport &t = report.total;
    out->mustKeepFloor =
        t.rejected + t.shed + t.timedOut + t.sloViolations;

    // Exemplars pruned to the kept set must all resolve.
    engine.statsRegistry().retainExemplars(tracer.keptTraceIds());
    const auto &kept_set = tracer.keptTraceIds();
    for (const Histogram *h :
         {&engine.ttftHistogram(0), &engine.e2eHistogram(0)}) {
        for (const auto &[bucket, slot] : h->exemplars()) {
            (void)bucket;
            for (const auto &ex : slot) {
                ++out->exemplars;
                if (kept_set.find(ex.traceId) == kept_set.end())
                    ++out->exemplarMisses;
            }
        }
    }

    out->keptIds.assign(kept_set.begin(), kept_set.end());
    std::sort(out->keptIds.begin(), out->keptIds.end());
    return slo;
}

std::string
cellJson(const Cell &cell)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("policy", batchPolicyName(cell.policy));
    w.field("load", cell.load);
    w.field("profile", cell.profile);
    w.field("offered_rps", cell.offeredRps);
    w.field("capacity_rps", cell.capacityRps);
    w.field("deadline_ns", cell.deadlineNs);
    const LlmTenantReport &t = cell.report.total;
    w.field("submitted", t.submitted);
    w.field("admitted", t.admitted);
    w.field("completed", t.completed);
    w.field("rejected", t.rejected);
    w.field("shed", t.shed);
    w.field("timed_out", t.timedOut);
    w.field("slo_violations", t.sloViolations);
    w.field("preemptions", t.preemptions);
    w.field("tokens_out", t.tokensOut);
    w.field("goodput_tokens_per_sec", t.goodputTokensPerSec);
    w.field("p99_token_ns", t.perToken.p99Ns);
    w.field("p50_token_ns", t.perToken.p50Ns);
    w.field("p99_ttft_ns", t.ttft.p99Ns);
    w.field("p99_e2e_ns", t.e2e.p99Ns);
    w.field("iterations", cell.report.iterations);
    w.field("mean_batch", cell.report.meanBatch);
    w.key("kv").beginObject();
    w.field("blocks_allocated", cell.report.kvBlocksAllocated);
    w.field("blocks_freed", cell.report.kvBlocksFreed);
    w.field("peak_resident_blocks", cell.report.kvPeakResidentBlocks);
    w.field("alloc_failures", cell.report.kvAllocFailures);
    w.endObject();
    w.endObject();
    os << "\n";
    return os.str();
}

void
runExperiments()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    setQuiet(true);
    const auto wall_start = std::chrono::steady_clock::now();

    auto cache = std::make_shared<serve::ServiceTimeCache>();
    calibrate(cache);

    // 0.6 = comfortable, 0.8 = where admit-once's padding waste tips it
    // into effective overload, 1.0 = calibrated capacity. Past 1.0 both
    // policies drown in deadline-doomed arrivals (FCFS without
    // backlog-aware admission) and the comparison is noise.
    const std::vector<double> loads =
        g_smoke ? std::vector<double>{0.9}
                : std::vector<double>{0.6, 0.8, 1.0};
    const std::vector<bool> profiles =
        g_smoke ? std::vector<bool>{false} : std::vector<bool>{false, true};

    for (const bool long_outputs : profiles)
        for (const double load : loads)
            for (const BatchPolicy policy :
                 {BatchPolicy::AdmitOnce, BatchPolicy::Continuous})
                g_cells.push_back(
                    runCell(policy, load, long_outputs, cache, nullptr));

    // Same-seed replay of the last continuous cell must be
    // bit-identical (determinism is load-bearing for every number
    // above).
    {
        const Cell &orig = g_cells.back();
        const Cell replay =
            runCell(orig.policy, orig.load, orig.profile == "long", cache,
                    nullptr);
        g_replayIdentical = cellJson(replay) == cellJson(orig);
    }

    // Optional Chrome-trace artifact of one continuous run (pid 6).
    if (!g_traceOut.empty()) {
        TraceSession trace;
        runCell(BatchPolicy::Continuous, loads.back(), false, cache,
                &trace);
        trace.writeFile(g_traceOut);
    }

    // --- Tail-based sampling under sustained overload ------------------
    {
        g_tailSlo = runTail(cache, &g_tail); // the measurement
        TailResult replay;
        runTail(cache, &replay); // second run: kept-set determinism
        g_tailReplayIdentical = replay.keptIds == g_tail.keptIds;
    }

    // --- In-binary acceptance checks ----------------------------------
    const double top_load = loads.back();
    for (std::size_t i = 0; i + 1 < g_cells.size(); i += 2) {
        const Cell &once = g_cells[i];
        const Cell &cont = g_cells[i + 1];
        const std::string where = " at load " + fmt(once.load, 1) + "/" +
                                  once.profile;
        const bool strict = once.load == top_load;
        const double gp_once = once.report.total.goodputTokensPerSec;
        const double gp_cont = cont.report.total.goodputTokensPerSec;
        const double p99_once = once.report.total.perToken.p99Ns;
        const double p99_cont = cont.report.total.perToken.p99Ns;
        check(strict ? gp_cont > gp_once : gp_cont >= 0.98 * gp_once,
              "continuous goodput " + fmt(gp_cont, 0) +
                  " not beating admit-once " + fmt(gp_once, 0) + where);
        check(strict ? p99_cont < p99_once : p99_cont <= 1.02 * p99_once,
              "continuous p99 token latency " + fmtNs(p99_cont) +
                  " not beating admit-once " + fmtNs(p99_once) + where);
        // No mean-batch check: below saturation continuous legitimately
        // runs a *smaller* live batch than a backlogged admit-once wave
        // — it drains arrivals as they come instead of accumulating
        // them. The padding column (wave size) is what admit-once pays.
    }
    for (const Cell &cell : g_cells)
        check(cell.report.kvBlocksAllocated == cell.report.kvBlocksFreed,
              "KV blocks leaked in " + std::string(batchPolicyName(
                  cell.policy)) + "/" + fmt(cell.load, 1));
    check(g_replayIdentical, "same-seed replay diverged");

    // Tail-based sampling contract: every must-keep request kept (the
    // report's bad-terminal count is an external floor), the kept set
    // exactly partitioned across keep classes, nothing dropped at the
    // session, the event volume bounded, exemplars resolving, and the
    // kept-trace-id set bit-identical under the same seed.
    check(g_tail.mustKeep >= g_tail.mustKeepFloor,
          "tracer must-keep " + std::to_string(g_tail.mustKeep) +
              " below the report's bad-terminal floor " +
              std::to_string(g_tail.mustKeepFloor));
    check(g_tail.kept ==
              g_tail.mustKeep + g_tail.headSampled + g_tail.slowKept,
          "kept traces do not partition into must-keep + head + slow");
    check(g_tail.eventsDropped == 0,
          "trace session dropped " +
              std::to_string(g_tail.eventsDropped) + " events");
    check(g_tail.eventsRecorded < 4'000'000,
          "tail run recorded " + std::to_string(g_tail.eventsRecorded) +
              " events, over the 4M budget");
    check(g_tail.exemplars > 0 && g_tail.exemplarMisses == 0,
          "histogram exemplars reference discarded traces (" +
              std::to_string(g_tail.exemplarMisses) + "/" +
              std::to_string(g_tail.exemplars) + ")");
    check(g_tailReplayIdentical,
          "same-seed kept-trace-id set diverged");
    check(g_tailSlo->firingBetween(0.0, g_tailSlo->config().windowNs *
                                            100.0),
          "sustained overload never fired an SLO burn alert");

    g_self.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    g_self.traceEventsRecorded = g_tail.eventsRecorded;
    g_self.traceEventsDropped = g_tail.eventsDropped;
}

void
printResults()
{
    printHeader(
        "LLM decode serving: tiny decoder on 1 PIM-HBM stack, open loop" +
        std::string(g_smoke ? " [smoke]" : ""));
    std::printf("full-batch decode token time %s (%.0f tok/s); loads are "
                "relative to the per-profile request capacity\n",
                fmtNs(g_perTokenNs).c_str(), g_capacityTps);
    printRow({"policy", "load", "profile", "offered", "goodput-t/s",
              "p99-tok", "p99-ttft", "mean-batch", "timeout"},
             12);
    for (const Cell &cell : g_cells) {
        const LlmTenantReport &t = cell.report.total;
        printRow({batchPolicyName(cell.policy), fmt(cell.load, 1),
                  cell.profile, fmt(cell.offeredRps, 1),
                  fmt(t.goodputTokensPerSec, 0), fmtNs(t.perToken.p99Ns),
                  fmtNs(t.ttft.p99Ns), fmt(cell.report.meanBatch, 2),
                  std::to_string(t.timedOut)},
                 12);
    }
    std::printf("\nsame-seed replay bit-identical: %s\n",
                g_replayIdentical ? "yes" : "NO");
    std::printf("tail sampling (%llu req, 1%% head): kept %llu traces "
                "(%llu must-keep >= floor %llu, %llu head, %llu slow), "
                "%llu events, %llu dropped, kept set replay-identical: "
                "%s\n",
                static_cast<unsigned long long>(g_tail.requests),
                static_cast<unsigned long long>(g_tail.kept),
                static_cast<unsigned long long>(g_tail.mustKeep),
                static_cast<unsigned long long>(g_tail.mustKeepFloor),
                static_cast<unsigned long long>(g_tail.headSampled),
                static_cast<unsigned long long>(g_tail.slowKept),
                static_cast<unsigned long long>(g_tail.eventsRecorded),
                static_cast<unsigned long long>(g_tail.eventsDropped),
                g_tailReplayIdentical ? "yes" : "NO");
    if (g_failures.empty()) {
        std::printf("all acceptance checks passed\n");
    } else {
        for (const auto &f : g_failures)
            std::fprintf(stderr, "ACCEPTANCE FAILURE: %s\n", f.c_str());
    }
}

std::string
jsonReport()
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    writeBenchPreamble(w, "llm_serving", g_seed, g_smoke,
                       "tiny decoder, 1 PIM-HBM stack, maxBatch " +
                           std::to_string(kMaxBatch),
                       &g_self);
    w.field("per_token_ns", g_perTokenNs);
    w.field("capacity_tokens_per_sec", g_capacityTps);
    w.key("sweep").beginArray();
    for (const Cell &cell : g_cells) {
        // Re-emit the cell object inline (cellJson is a standalone
        // document used for the replay comparison).
        w.beginObject();
        w.field("policy", batchPolicyName(cell.policy));
        w.field("load", cell.load);
        w.field("profile", cell.profile);
        w.field("offered_rps", cell.offeredRps);
        w.field("capacity_rps", cell.capacityRps);
        w.field("deadline_ns", cell.deadlineNs);
        const LlmTenantReport &t = cell.report.total;
        w.field("submitted", t.submitted);
        w.field("admitted", t.admitted);
        w.field("completed", t.completed);
        w.field("rejected", t.rejected);
        w.field("shed", t.shed);
        w.field("timed_out", t.timedOut);
        w.field("slo_violations", t.sloViolations);
        w.field("preemptions", t.preemptions);
        w.field("tokens_out", t.tokensOut);
        w.field("goodput_tokens_per_sec", t.goodputTokensPerSec);
        w.field("p99_token_ns", t.perToken.p99Ns);
        w.field("p99_ttft_ns", t.ttft.p99Ns);
        w.field("p99_e2e_ns", t.e2e.p99Ns);
        w.field("iterations", cell.report.iterations);
        w.field("mean_batch", cell.report.meanBatch);
        w.key("kv").beginObject();
        w.field("blocks_allocated", cell.report.kvBlocksAllocated);
        w.field("blocks_freed", cell.report.kvBlocksFreed);
        w.field("peak_resident_blocks", cell.report.kvPeakResidentBlocks);
        w.field("alloc_failures", cell.report.kvAllocFailures);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.field("replay_identical", g_replayIdentical);
    w.key("tail").beginObject();
    w.field("requests", g_tail.requests);
    w.field("head_sample_rate", 0.01);
    w.field("traces_ended", g_tail.tracesEnded);
    w.field("kept", g_tail.kept);
    w.field("must_keep", g_tail.mustKeep);
    w.field("must_keep_floor", g_tail.mustKeepFloor);
    w.field("head_sampled", g_tail.headSampled);
    w.field("slow_kept", g_tail.slowKept);
    w.field("events_flushed", g_tail.eventsFlushed);
    w.field("events_truncated", g_tail.eventsTruncated);
    w.field("events_recorded", g_tail.eventsRecorded);
    w.field("events_dropped", g_tail.eventsDropped);
    w.field("exemplars", g_tail.exemplars);
    w.field("exemplar_misses", g_tail.exemplarMisses);
    w.field("kept_set_replay_identical", g_tailReplayIdentical);
    w.endObject();
    w.key("slo");
    g_tailSlo->writeJson(w);
    w.field("acceptance_failures",
            static_cast<std::uint64_t>(g_failures.size()));
    w.endObject();
    os << "\n";
    return os.str();
}

/** Validate, then write BENCH_llm.json. Invalid JSON is a hard fail
 *  (the CI smoke job relies on this self-check). */
bool
writeJsonReport(const std::string &path)
{
    const std::string text = jsonReport();
    std::string error;
    if (!validateJson(text, &error)) {
        std::fprintf(stderr, "BENCH_llm JSON invalid: %s\n", error.c_str());
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return false;
    }
    os << text;
    return true;
}

void
BM_LlmServing(benchmark::State &state)
{
    for (auto _ : state)
        runExperiments();
    const std::size_t i = static_cast<std::size_t>(state.range(0));
    if (i < g_cells.size()) {
        const Cell &cell = g_cells[i];
        const LlmTenantReport &t = cell.report.total;
        state.counters["goodput_tps"] = t.goodputTokensPerSec;
        state.counters["p99_token_ns"] = t.perToken.p99Ns;
        state.counters["mean_batch"] = cell.report.meanBatch;
        state.SetLabel(std::string(batchPolicyName(cell.policy)) + "/" +
                       fmt(cell.load, 1) + "/" + cell.profile);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_llm.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            g_traceOut = argv[i] + 12;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            g_seed = std::strtoull(argv[i] + 7, nullptr, 0);
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            g_threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    runExperiments();
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
        const Cell &cell = g_cells[i];
        const std::string name =
            "LlmServing/" + std::string(batchPolicyName(cell.policy)) +
            "/" + fmt(cell.load, 1) + "/" + cell.profile;
        benchmark::RegisterBenchmark(name.c_str(), BM_LlmServing)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    if (!json_out.empty() && !writeJsonReport(json_out))
        return 1;
    return g_failures.empty() ? 0 : 1;
}
