/**
 * @file
 * Simulator self-performance: how fast the simulator itself runs, as
 * opposed to how fast the simulated machine is. Two scenarios:
 *
 *  - parallel: the Table VI microbenchmark mix executed on the PIM-HBM
 *    system with 1 worker thread and with N worker threads. The two
 *    runs must be bit-identical (stats JSON, trace, error log) — this
 *    is asserted in-binary — and the N-thread run reports its
 *    wall-clock speedup.
 *  - lanes: the FP16 lane datapath with the scalar per-element
 *    converters versus the batched convert-once kernels
 *    (PimConfig::batchedLanes), plus a raw conversion micro. Results
 *    are bit-identical by construction; asserted here too.
 *
 * Output: BENCH_selfperf.json (simulated cycles/sec, memory
 * requests/sec, lane conversions/sec; per-variant wall clock and
 * speedups). CI runs `--smoke` and compares sim_cycles_per_sec against
 * the committed baseline as a perf regression guard.
 *
 * Flags:
 *   --smoke       tiny workload (CI guard; speedup asserts disabled)
 *   --threads=N   worker threads for the parallel scenario (default:
 *                 hardware concurrency, capped at 8)
 *   --json-out=F  result file (default BENCH_selfperf.json; "" disables)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/fp16.h"
#include "common/json.h"
#include "common/trace.h"
#include "stack/workloads.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

bool g_smoke = false;
unsigned g_threads = 0; // 0 = auto

double
nowMs()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clk::now().time_since_epoch())
        .count();
}

/** Everything one simulation run produces, for timing and equality. */
struct RunResult
{
    double wallMs = 0.0;
    std::uint64_t simCycles = 0;
    std::uint64_t memRequests = 0;
    std::uint64_t eccCorrected = 0;
    std::string statsJson;
    std::string trace;
};

/**
 * The measured workload: the Table VI microbenchmark mix at batches
 * 1 and 4, `reps` times, with scrubbing on so the epoch engine's scrub
 * and error-merge paths are exercised, under a Chrome-trace session so
 * per-channel trace staging is exercised too.
 */
RunResult
runSimScenario(unsigned threads, bool batched_lanes, unsigned reps)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.pim.batchedLanes = batched_lanes;
    cfg.controller.scrubEnabled = true;
    cfg.controller.scrubInterval = 2000;
    cfg.controller.scrubBurstsPerStep = 64;

    Setup s = makeSetup(cfg, threads);
    TraceSession trace;
    s.system->setTraceSession(&trace);
    s.blas->setTrace(&trace);
    s.runner->setTrace(&trace);

    // Smoke keeps the CI guard cheap: only the lightest GEMV and the
    // lightest element-wise micro, batch 1. Full mode runs the whole
    // Table VI mix at batches 1 and 4.
    std::vector<MicroSpec> micros = table6Microbenchmarks();
    std::vector<unsigned> batches = {1u, 4u};
    if (g_smoke) {
        const MicroSpec *gemv = nullptr;
        const MicroSpec *add = nullptr;
        for (const auto &m : micros) {
            const bool is_gemv = m.m != 0;
            auto cost = [](const MicroSpec &x) {
                return x.m ? static_cast<std::uint64_t>(x.m) * x.n
                           : x.elements;
            };
            const MicroSpec *&slot = is_gemv ? gemv : add;
            if (!slot || cost(m) < cost(*slot))
                slot = &m;
        }
        std::vector<MicroSpec> small;
        if (gemv)
            small.push_back(*gemv);
        if (add)
            small.push_back(*add);
        micros = std::move(small);
        batches = {1u};
    }

    RunResult r;
    const double t0 = nowMs();
    for (unsigned rep = 0; rep < reps; ++rep)
        for (const auto &micro : micros)
            for (unsigned batch : batches)
                s.runner->runMicro(micro, batch);
    r.wallMs = nowMs() - t0;

    r.simCycles = s.system->now();
    r.memRequests = s.system->totalCtrlStat("enqueued");
    r.eccCorrected = s.system->errorLog().corrected();
    std::ostringstream stats;
    s.system->dumpStatsJson(stats);
    r.statsJson = stats.str();
    std::ostringstream tr;
    trace.write(tr);
    r.trace = tr.str();
    return r;
}

/** Raw conversion micro: scalar per-element loop vs batch kernels. */
struct LaneResult
{
    double scalarMs = 0.0;
    double batchMs = 0.0;
    std::uint64_t lanes = 0;
};

LaneResult
runLaneMicro(unsigned reps)
{
    constexpr std::size_t kN = 1u << 16;
    std::vector<Fp16Bits> half(kN);
    for (std::size_t i = 0; i < kN; ++i)
        half[i] = static_cast<Fp16Bits>(i);
    std::vector<float> widened(kN);
    std::vector<Fp16Bits> narrowed(kN);

    LaneResult r;
    r.lanes = static_cast<std::uint64_t>(kN) * reps;

    double t0 = nowMs();
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < kN; ++i)
            widened[i] = fp16BitsToFloat(half[i]);
        for (std::size_t i = 0; i < kN; ++i)
            narrowed[i] = floatToFp16Bits(widened[i]);
    }
    r.scalarMs = nowMs() - t0;
    const std::vector<Fp16Bits> scalar_out = narrowed;

    t0 = nowMs();
    for (unsigned rep = 0; rep < reps; ++rep) {
        fp16ToFloatN(half.data(), widened.data(), kN);
        floatToFp16N(widened.data(), narrowed.data(), kN);
    }
    r.batchMs = nowMs() - t0;

    PIMSIM_ASSERT(scalar_out == narrowed,
                  "batched FP16 kernels diverged from the scalar path");
    return r;
}

void
assertIdentical(const RunResult &a, const RunResult &b, const char *what)
{
    PIMSIM_ASSERT(a.simCycles == b.simCycles, what,
                  ": simulated cycle counts diverged (", a.simCycles,
                  " vs ", b.simCycles, ")");
    PIMSIM_ASSERT(a.memRequests == b.memRequests, what,
                  ": memory request counts diverged");
    PIMSIM_ASSERT(a.eccCorrected == b.eccCorrected, what,
                  ": ECC corrected counts diverged");
    PIMSIM_ASSERT(a.statsJson == b.statsJson, what,
                  ": stats JSON diverged");
    PIMSIM_ASSERT(a.trace == b.trace, what, ": trace diverged");
}

double
perSec(std::uint64_t count, double wall_ms)
{
    return wall_ms > 0.0 ? static_cast<double>(count) * 1e3 / wall_ms
                         : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out = "BENCH_selfperf.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            g_threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         argv[i]);
            return 2;
        }
    }
    setQuiet(true);

    const unsigned hw = std::thread::hardware_concurrency();
    if (g_threads == 0)
        g_threads = hw ? std::min(hw, 8u) : 1u;

    const unsigned sim_reps = g_smoke ? 1 : 4;
    const unsigned lane_reps = g_smoke ? 64 : 1024;

    const double wall0 = nowMs();

    // Parallel scenario: identical workload at 1 and N threads. The
    // equality assertion is the point — speed without determinism is a
    // wrong simulator, fast.
    const RunResult serial = runSimScenario(1, true, sim_reps);
    const RunResult parallel = runSimScenario(g_threads, true, sim_reps);
    assertIdentical(serial, parallel, "threads=1 vs threads=N");
    const double par_speedup =
        parallel.wallMs > 0.0 ? serial.wallMs / parallel.wallMs : 1.0;

    // Lanes scenario: scalar vs batched FP16 inside the full simulator.
    const RunResult scalar_lanes = runSimScenario(1, false, sim_reps);
    assertIdentical(serial, scalar_lanes, "batched vs scalar lanes");
    const double lane_sim_speedup =
        serial.wallMs > 0.0 ? scalar_lanes.wallMs / serial.wallMs : 1.0;

    const LaneResult lanes = runLaneMicro(lane_reps);
    const double lane_micro_speedup =
        lanes.batchMs > 0.0 ? lanes.scalarMs / lanes.batchMs : 1.0;

    // The ISSUE's scaling floor only means something on real parallel
    // hardware and a non-trivial run; smoke runs and small machines
    // still assert determinism above.
    if (!g_smoke && hw >= 8 && g_threads >= 8) {
        PIMSIM_ASSERT(par_speedup >= 4.0,
                      "parallel self-speedup ", par_speedup,
                      "x is below the 4x floor at ", g_threads,
                      " threads on ", hw, " cores");
    }

    std::printf("selfperf (%s, %u threads, hw %u)\n",
                g_smoke ? "smoke" : "full", g_threads, hw);
    std::printf("  sim 1T:  %8.1f ms  %12.0f cyc/s  %10.0f req/s\n",
                serial.wallMs, perSec(serial.simCycles, serial.wallMs),
                perSec(serial.memRequests, serial.wallMs));
    std::printf("  sim %uT:  %8.1f ms  %12.0f cyc/s  %10.0f req/s  "
                "(%.2fx, bit-identical)\n",
                g_threads, parallel.wallMs,
                perSec(parallel.simCycles, parallel.wallMs),
                perSec(parallel.memRequests, parallel.wallMs),
                par_speedup);
    std::printf("  lanes scalar sim: %8.1f ms   batched sim: %8.1f ms  "
                "(%.2fx)\n",
                scalar_lanes.wallMs, serial.wallMs, lane_sim_speedup);
    std::printf("  lane micro: scalar %.1f ms, batched %.1f ms over "
                "%llu lanes (%.2fx)\n",
                lanes.scalarMs, lanes.batchMs,
                static_cast<unsigned long long>(lanes.lanes),
                lane_micro_speedup);

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os) {
            PIMSIM_WARN("cannot open bench output '", json_out, "'");
            return 1;
        }
        RunSelfMetrics self;
        self.wallMs = nowMs() - wall0;
        self.simulatedNs = static_cast<double>(serial.simCycles);
        JsonWriter w(os, /*pretty=*/true);
        w.beginObject();
        writeBenchPreamble(w, "selfperf", 0, g_smoke,
                           "simulator self-performance: parallel "
                           "channels + batched FP16 lanes",
                           &self);
        w.field("threads", g_threads);
        w.field("hardware_concurrency", hw);

        w.key("parallel").beginObject();
        w.field("sim_cycles", serial.simCycles);
        w.field("mem_requests", serial.memRequests);
        w.key("one_thread").beginObject();
        w.field("wall_ms", serial.wallMs);
        w.field("sim_cycles_per_sec", perSec(serial.simCycles,
                                             serial.wallMs));
        w.field("requests_per_sec", perSec(serial.memRequests,
                                           serial.wallMs));
        w.endObject();
        w.key("n_threads").beginObject();
        w.field("wall_ms", parallel.wallMs);
        w.field("sim_cycles_per_sec", perSec(parallel.simCycles,
                                             parallel.wallMs));
        w.field("requests_per_sec", perSec(parallel.memRequests,
                                           parallel.wallMs));
        w.endObject();
        w.field("speedup", par_speedup);
        w.field("bit_identical", true); // asserted above
        w.endObject();

        w.key("lanes").beginObject();
        w.key("sim").beginObject();
        w.field("scalar_wall_ms", scalar_lanes.wallMs);
        w.field("batched_wall_ms", serial.wallMs);
        w.field("speedup", lane_sim_speedup);
        w.endObject();
        w.key("micro").beginObject();
        w.field("lanes", lanes.lanes);
        w.field("scalar_wall_ms", lanes.scalarMs);
        w.field("batched_wall_ms", lanes.batchMs);
        w.field("scalar_lanes_per_sec", perSec(lanes.lanes,
                                               lanes.scalarMs));
        w.field("batched_lanes_per_sec", perSec(lanes.lanes,
                                                lanes.batchMs));
        w.field("speedup", lane_micro_speedup);
        w.endObject();
        w.endObject();

        w.endObject();
        os << "\n";
    }
    return 0;
}
