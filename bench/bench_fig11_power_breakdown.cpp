/**
 * @file
 * Fig. 11: power breakdown of HBM vs PIM-HBM over back-to-back DRAM RD
 * commands (2.4 Gbps pins). The paper's findings reproduced here:
 *
 *  - PIM-HBM draws only ~5.4% more power than HBM while sustaining 4x
 *    the on-chip bandwidth;
 *  - the internal global I/O bus and most of the PHY stop toggling in
 *    AB-PIM mode, paying for the 4x bank activity;
 *  - gating the residual buffer-die I/O toggle would put PIM-HBM ~10%
 *    *below* HBM (Section VII-C).
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "energy/probe.h"
#include "host/host_model.h"
#include "stack/pim_program.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

struct BreakdownResult
{
    EnergyBreakdown energy;
    double ns = 0.0;
    double bandwidthGBs = 0.0;

    double powerMw() const { return energy.total() / ns; }
};

/** Back-to-back reads on a standard HBM channel (no request scaling so
 *  the probe's event counts line up with the elapsed interval). */
BreakdownResult
hbmReadStream(std::uint64_t bursts)
{
    SystemConfig cfg = SystemConfig::hbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    HostModel host(sys);
    ActivityProbe probe(sys);
    const double ns =
        host.simulateStreamNs(bursts * kBurstBytes, /*write_fraction=*/0.0);
    ChannelActivity a = probe.delta();
    a.elapsedNs = ns * sys.numChannels();

    BreakdownResult r;
    r.ns = ns * sys.numChannels(); // per-channel-ns normalisation
    r.energy = EnergyModel().channelEnergy(a);
    // Per pseudo channel, to match the PIM-side metric.
    r.bandwidthGBs = static_cast<double>(bursts) * kBurstBytes / ns /
                     sys.numChannels();
    return r;
}

/**
 * Back-to-back AB-PIM MAC triggers: the paper's Fig. 11 measurement
 * streams column RD commands into one open row while every PIM unit
 * executes a MAC per trigger. Built directly on the low-level program
 * API (no fences, no row switches) to isolate steady-state power.
 */
BreakdownResult
pimMacStream(std::uint64_t triggers, bool gate_buffer_io)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    PimSystem sys(cfg);
    PimChannel *pim = sys.controller(0).pim();
    const PimConfMap conf = pim->confMap();

    // Microkernel: MAC GRF_B[aam] += EVEN_BANK * GRF_A[aam], forever.
    std::vector<PimInst> kernel = {
        PimInst::mac(OperandSpace::GrfB, 0, OperandSpace::EvenBank, 0,
                     OperandSpace::GrfA, 0, /*aam=*/true),
        PimInst::jump(1, 65535),
        PimInst::exit(),
    };

    ChannelProgram prog;
    ProgramBuilder builder(prog);
    builder.prechargeAll();
    builder.activate(conf.abmrRow);
    builder.precharge();
    builder.fence();
    // Load CRF words and arm AB-PIM.
    Burst crf{};
    for (unsigned i = 0; i < kernel.size(); ++i) {
        const std::uint32_t w = kernel[i].encode();
        for (unsigned b = 0; b < 4; ++b)
            crf[4 * i + b] =
                static_cast<std::uint8_t>((w >> (8 * b)) & 0xff);
    }
    builder.write(conf.configRow, 0, crf);
    Burst on{};
    on[0] = 1;
    const auto [op_row, op_col] = pim->configAddr(pim->opModeCol());
    builder.write(op_row, op_col, on);
    builder.prechargeAll();
    builder.fence();

    // The back-to-back trigger stream: one row, columns cycling.
    for (std::uint64_t i = 0; i < triggers; ++i)
        builder.read(/*row=*/0, static_cast<unsigned>(i % 32));
    builder.fence();
    builder.prechargeAll();
    Burst off{};
    builder.write(op_row, op_col, off);
    builder.prechargeAll();
    builder.activate(conf.sbmrRow);
    builder.precharge();
    builder.fence();

    ActivityProbe probe(sys);
    const PimRunResult run =
        runPimProgramReplicated(sys, prog, sys.numChannels());
    ChannelActivity act = probe.delta();
    act.elapsedNs = run.ns * sys.numChannels();

    EnergyParams params;
    params.gateBufferIo = gate_buffer_io;

    BreakdownResult r;
    r.ns = run.ns * sys.numChannels();
    r.energy = EnergyModel(params).channelEnergy(act);
    r.bandwidthGBs = static_cast<double>(act.pimBankReads +
                                         act.pimBankWrites) *
                     kBurstBytes / run.ns / sys.numChannels();
    return r;
}

BreakdownResult g_hbm, g_pim, g_pim_gated;

void
runFig11()
{
    if (g_hbm.ns != 0.0)
        return;
    g_hbm = hbmReadStream(260000);
    g_pim = pimMacStream(60000, false);
    g_pim_gated = pimMacStream(60000, true);
}

void
printFig11()
{
    auto print = [](const char *name, const BreakdownResult &r,
                    double base_power) {
        const EnergyBreakdown &e = r.energy;
        const double p = r.powerMw();
        std::printf("%-14s power=%7.1f mW/pCH (%.3fx)  bw=%7.1f GB/s\n",
                    name, p, p / base_power, r.bandwidthGBs);
        std::printf(
            "    background %4.1f%%  cell %4.1f%%  IOSA/dec %4.1f%%  "
            "global-bus %4.1f%%  PHY %4.1f%%  PIM %4.1f%%  ACT %4.1f%%  "
            "other %4.1f%%\n",
            100 * e.background / e.total(), 100 * e.cell / e.total(),
            100 * e.iosa / e.total(), 100 * e.globalBus / e.total(),
            100 * e.phy / e.total(), 100 * e.pimUnit / e.total(),
            100 * e.activation / e.total(), 100 * e.other / e.total());
    };

    printHeader("Fig. 11: power breakdown over back-to-back column "
                "commands (per pseudo channel)");
    const double base = g_hbm.powerMw();
    print("HBM (RD)", g_hbm, base);
    print("PIM-HBM", g_pim, base);
    print("PIM-HBM gated", g_pim_gated, base);
    std::printf("\npaper: PIM-HBM = 1.054x HBM at 4x on-chip bandwidth; "
                "gating the buffer-die\nI/O toggle would reach ~0.9x "
                "(Section VII-C).\n");
    std::printf("measured bandwidth ratio (on-chip PIM vs off-chip HBM): "
                "%.2fx\n",
                g_pim.bandwidthGBs / g_hbm.bandwidthGBs);
}

void
BM_Fig11(benchmark::State &state)
{
    for (auto _ : state)
        runFig11();
    state.counters["hbm_mw"] = g_hbm.powerMw();
    state.counters["pim_mw"] = g_pim.powerMw();
    state.counters["pim_over_hbm"] = g_pim.powerMw() / g_hbm.powerMw();
    state.counters["gated_over_hbm"] =
        g_pim_gated.powerMw() / g_hbm.powerMw();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    runFig11();
    benchmark::RegisterBenchmark("Fig11/power_breakdown", BM_Fig11)
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig11();
    return 0;
}
