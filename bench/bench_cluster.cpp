/**
 * @file
 * Cluster-tier benchmark: goodput and tail latency of a replicated
 * PIM-host fleet through a host kill and a straggler episode.
 *
 * Three experiments on a 4-host x 4-stack cluster (the paper's host
 * integrates four HBM2-PIM stacks):
 *
 *  - Host kill: host 0 crashes for the middle 30% of the run and then
 *    revives. With health-driven failover the router detects the dead
 *    replica (windowed failure detection), retries its timed-out
 *    dispatches cross-host, sheds what the surviving capacity cannot
 *    carry, and probes the host back through recovering -> healthy.
 *    Reported per window: goodput and p99. Asserted: post-kill
 *    steady-state goodput >= (M-1)/M of pre-kill, and the windowed SLO
 *    violation rate recovers after the revival (a measured recovery
 *    window, not an assumption).
 *  - Failover-disabled ablation: identical arrivals and fault process,
 *    static round-robin, no retries or hedging. The dead replica's
 *    share of the traffic is simply lost — the bench asserts the
 *    degradation is visible (failed > 0 and a worse kill-window goodput
 *    ratio than the resilient run).
 *  - Straggler episode: host 0 runs 8x slow for the middle third, at an
 *    equal fault rate with hedging on vs off. Hedged requests fire a
 *    backup copy after a p95-based delay; the bench asserts the hedged
 *    episode p99 is lower.
 *
 * Everything is seeded (arrivals, chaos draws) and the same seed
 * replays bit-identically — the bench re-runs the kill experiment and
 * compares serialized reports, including health-state transition
 * counts. Results go to BENCH_cluster.json (validated with validateJson
 * before writing; an invalid document is a hard error).
 *
 * Flags (stripped before google/benchmark parsing):
 *   --json-out=FILE  result file (default BENCH_cluster.json; "" disables)
 *   --smoke          shrink request counts for CI sanitizer runs
 *   --seed=N         override the campaign seed (recorded in the JSON)
 *   --trace-out=FILE Chrome-trace timeline of the kill/failover run
 *                    (tail-sampled per-request span trees, SLO alerts)
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster_engine.h"
#include "common/json.h"
#include "common/reqtrace.h"
#include "common/slo.h"
#include "common/trace.h"
#include "serve/chaos.h"
#include "serve/load_gen.h"

using namespace pimsim;
using namespace pimsim::bench;
using namespace pimsim::cluster;

namespace {

std::uint64_t g_seed = 0xc1a57e2;
bool g_smoke = false;

constexpr unsigned kHosts = 4;
constexpr unsigned kStacksPerHost = 4;
constexpr unsigned kWindows = 20;

/** One measurement window of the completion stream. */
struct Window
{
    double startNs = 0.0;
    double endNs = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t good = 0; ///< completed inside the deadline
    std::vector<double> latencies;

    double goodputRps() const
    {
        const double span = endNs - startNs;
        return span > 0.0 ? static_cast<double>(good) * 1e9 / span : 0.0;
    }
    double violationRate() const
    {
        return completed ? 1.0 - static_cast<double>(good) /
                                     static_cast<double>(completed)
                         : 0.0;
    }
    double p99Ns()
    {
        if (latencies.empty())
            return 0.0;
        std::sort(latencies.begin(), latencies.end());
        const auto idx = static_cast<std::size_t>(
            0.99 * static_cast<double>(latencies.size() - 1));
        return latencies[idx];
    }
};

struct KillResult
{
    ClusterReport report;
    std::vector<Window> windows;
    double preGoodputRps = 0.0;
    double killGoodputRps = 0.0; ///< steady state after detection
    double goodputRatio = 0.0;   ///< kill steady state / pre-kill
    double recoveryNs = -1.0;    ///< revival -> violation rate back down
};

struct StragglerResult
{
    ClusterReport report;
    double episodeP99Ns = 0.0;
};

KillResult g_kill;
KillResult g_noFailover;
StragglerResult g_hedged;
StragglerResult g_unhedged;
std::unique_ptr<SloMonitor> g_sloFailover;   // burn-rate monitor, kill run
std::unique_ptr<SloMonitor> g_sloNoFailover; // same feed, naive cluster
std::string g_traceOut; // --trace-out=: trace the kill/failover run
TraceSession g_trace;
RunSelfMetrics g_self;
bool g_replayIdentical = false;
double g_capacityRps = 0.0;
double g_offeredRps = 0.0;
double g_estNs = 0.0;
double g_deadlineNs = 0.0;
double g_horizonNs = 0.0;
double g_crashStartNs = 0.0;
double g_crashEndNs = 0.0;
std::vector<std::string> g_failures;

void
check(bool ok, const std::string &what)
{
    if (!ok)
        g_failures.push_back(what);
}

AppSpec
servedApp()
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = 512;
    fc.input = 512;
    fc.steps = 2;
    fc.pimEligible = true;

    AppSpec app;
    app.name = "cluster-fc512";
    app.layers = {fc};
    return app;
}

ClusterConfig
baseConfig(const std::shared_ptr<serve::ServiceTimeCache> &cache)
{
    ClusterConfig c;
    c.system = SystemConfig::pimHbmSystem();
    c.system.numStacks = 1; // per-stack template: 16 pseudo channels
    c.system.geometry.rowsPerBank = 512;
    c.numHosts = kHosts;
    c.stacksPerHost = kStacksPerHost;
    c.app = servedApp();
    c.queueDepth = 512;
    c.maxAttempts = 3;
    c.cache = cache;
    return c;
}

std::vector<double>
arrivalTimes(double rate_rps, double horizon_ns, std::uint64_t seed)
{
    const auto merged = serve::poissonArrivals(
        {serve::ArrivalSpec{0, rate_rps}}, horizon_ns, seed);
    std::vector<double> times;
    times.reserve(merged.size());
    for (const auto &a : merged)
        times.push_back(a.ns);
    return times;
}

ClusterReport
run(ClusterEngine &eng, serve::ChaosCampaign &chaos,
    const std::vector<double> &arrivals, std::vector<Window> *windows,
    SloMonitor *slo = nullptr)
{
    eng.setFaultModel(&chaos);
    for (const double ns : arrivals)
        eng.submit(std::max(ns, eng.nowNs()));
    eng.drain();
    g_self.simulatedNs += eng.nowNs();
    if (slo != nullptr) {
        // Observations carry their own timestamps, so one post-run feed
        // bins them into the right windows.
        slo->feed(eng.takeSloObservations());
        slo->finish(eng.nowNs());
    }
    const auto completions = eng.takeCompletions();
    if (windows != nullptr) {
        for (const ClusterCompletion &c : completions) {
            const auto i = std::min<std::size_t>(
                static_cast<std::size_t>(
                    (c.completeNs / g_horizonNs) *
                    static_cast<double>(kWindows)),
                windows->size() - 1);
            Window &w = (*windows)[i];
            ++w.completed;
            if (c.metDeadline())
                ++w.good;
            w.latencies.push_back(c.latencyNs());
        }
    }
    return eng.report();
}

std::vector<Window>
makeWindows()
{
    std::vector<Window> ws(kWindows);
    for (unsigned i = 0; i < kWindows; ++i) {
        ws[i].startNs =
            g_horizonNs * static_cast<double>(i) / kWindows;
        ws[i].endNs =
            g_horizonNs * static_cast<double>(i + 1) / kWindows;
    }
    return ws;
}

serve::ChaosCampaign
killCampaign()
{
    serve::ChaosConfig cfg;
    cfg.seed = g_seed;
    serve::ChaosCampaign chaos(cfg, 1);
    serve::HostFaultSpec crash;
    crash.kind = serve::HostFaultSpec::Kind::Crash;
    crash.host = 0;
    crash.startNs = g_crashStartNs;
    crash.endNs = g_crashEndNs;
    chaos.addHostFault(crash);
    return chaos;
}

void
analyzeKill(KillResult &r)
{
    // Pre-kill: windows fully before the crash, skipping warm-up.
    // Kill steady state: windows fully inside the crash, skipping the
    // first (failure detection happens there, at timeout granularity).
    double pre = 0.0, kill = 0.0;
    unsigned pre_n = 0, kill_n = 0;
    bool first_kill = true;
    for (auto &w : r.windows) {
        if (w.startNs == 0.0)
            continue; // warm-up
        if (w.endNs <= g_crashStartNs) {
            pre += w.goodputRps();
            ++pre_n;
        } else if (w.startNs >= g_crashStartNs &&
                   w.endNs <= g_crashEndNs) {
            if (first_kill) {
                first_kill = false; // detection window
                continue;
            }
            kill += w.goodputRps();
            ++kill_n;
        }
    }
    r.preGoodputRps = pre_n ? pre / pre_n : 0.0;
    r.killGoodputRps = kill_n ? kill / kill_n : 0.0;
    r.goodputRatio = r.preGoodputRps > 0.0
                         ? r.killGoodputRps / r.preGoodputRps
                         : 0.0;

    // Recovery window: first post-revival window whose SLO violation
    // rate is back within noise of the pre-kill baseline.
    double pre_viol = 0.0;
    unsigned pv_n = 0;
    for (auto &w : r.windows) {
        if (w.startNs > 0.0 && w.endNs <= g_crashStartNs) {
            pre_viol += w.violationRate();
            ++pv_n;
        }
    }
    pre_viol = pv_n ? pre_viol / pv_n : 0.0;
    const double tolerance = std::max(2.0 * pre_viol, 0.02);
    for (auto &w : r.windows) {
        if (w.startNs < g_crashEndNs)
            continue;
        if (w.completed > 0 && w.violationRate() <= tolerance) {
            r.recoveryNs = w.endNs - g_crashEndNs;
            break;
        }
    }
}

void
runExperiments()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    setQuiet(true);
    const auto wall_start = std::chrono::steady_clock::now();

    auto cache = std::make_shared<serve::ServiceTimeCache>();
    ClusterConfig cfg = baseConfig(cache);

    // Calibrate the run from the measured batch-1 attempt time.
    ClusterEngine probe(cfg);
    g_estNs = probe.attemptEstimateNs();
    g_capacityRps =
        static_cast<double>(kHosts * kStacksPerHost) * 1e9 / g_estNs;
    g_offeredRps = 0.6 * g_capacityRps; // below single-host-loss capacity
    g_deadlineNs = 30.0 * g_estNs;      // roomy SLO: queueing + one retry
    cfg.deadlineNs = g_deadlineNs;
    cfg.router.health.probeIntervalNs = 8.0 * g_estNs;

    const unsigned n = g_smoke ? 4'000 : 40'000;
    g_horizonNs = static_cast<double>(n) * 1e9 / g_offeredRps;
    g_crashStartNs = 0.35 * g_horizonNs;
    g_crashEndNs = 0.65 * g_horizonNs;
    const auto arrivals =
        arrivalTimes(g_offeredRps, g_horizonNs, g_seed ^ 0xa221);

    SloMonitorConfig slo_config;
    slo_config.windowNs = g_horizonNs / 100.0;

    // --- Host kill, failover on ---------------------------------------
    {
        ClusterEngine eng(cfg);
        std::unique_ptr<RequestTracer> tracer;
        if (!g_traceOut.empty()) {
            eng.setTrace(&g_trace);
            RequestTracerConfig rc;
            rc.seed = g_seed;
            tracer = std::make_unique<RequestTracer>(rc);
            eng.setRequestTracer(tracer.get());
        }
        auto chaos = killCampaign();
        g_kill.windows = makeWindows();
        g_sloFailover = std::make_unique<SloMonitor>(slo_config);
        g_kill.report =
            run(eng, chaos, arrivals, &g_kill.windows, g_sloFailover.get());
        analyzeKill(g_kill);
        if (tracer) {
            tracer->flush(g_trace);
            g_sloFailover->emitTrace(g_trace);
        }
    }

    // --- Host kill, failover off (ablation) ---------------------------
    {
        ClusterConfig naive = cfg;
        naive.router.failover = false;
        naive.maxAttempts = 1;
        naive.hedge.enabled = false;
        naive.admission = false; // nothing adapts: the naive cluster
        ClusterEngine eng(naive);
        auto chaos = killCampaign();
        g_noFailover.windows = makeWindows();
        g_sloNoFailover = std::make_unique<SloMonitor>(slo_config);
        g_noFailover.report = run(eng, chaos, arrivals,
                                  &g_noFailover.windows,
                                  g_sloNoFailover.get());
        analyzeKill(g_noFailover);
    }

    // --- Straggler episode, hedging on vs off -------------------------
    for (const bool hedged : {true, false}) {
        ClusterConfig scfg = cfg;
        scfg.hedge.enabled = hedged;
        scfg.hedge.minSamples = 64;
        ClusterEngine eng(scfg);
        serve::ChaosConfig ccfg;
        ccfg.seed = g_seed;
        serve::ChaosCampaign chaos(ccfg, 1);
        serve::HostFaultSpec slow;
        slow.kind = serve::HostFaultSpec::Kind::Straggler;
        slow.host = 0;
        slow.startNs = g_crashStartNs;
        slow.endNs = g_crashEndNs;
        slow.factor = 8.0;
        chaos.addHostFault(slow);
        StragglerResult &res = hedged ? g_hedged : g_unhedged;
        std::vector<Window> windows = makeWindows();
        res.report = run(eng, chaos, arrivals, &windows);
        std::vector<double> episode;
        for (auto &w : windows) {
            if (w.startNs >= g_crashStartNs && w.endNs <= g_crashEndNs)
                episode.insert(episode.end(), w.latencies.begin(),
                               w.latencies.end());
        }
        std::sort(episode.begin(), episode.end());
        res.episodeP99Ns =
            episode.empty()
                ? 0.0
                : episode[static_cast<std::size_t>(
                      0.99 * static_cast<double>(episode.size() - 1))];
    }

    // --- Same-seed replay ---------------------------------------------
    {
        ClusterEngine eng(cfg);
        auto chaos = killCampaign();
        const ClusterReport replay = run(eng, chaos, arrivals, nullptr);
        g_replayIdentical =
            replay.toJson() == g_kill.report.toJson();
    }

    // --- In-binary acceptance checks ----------------------------------
    if (!g_smoke)
        check(g_offeredRps >= 100'000.0,
              "offered load below 100k rps: " + fmt(g_offeredRps, 0));
    g_kill.report.reconcile();
    g_noFailover.report.reconcile();
    g_hedged.report.reconcile();
    g_unhedged.report.reconcile();
    const double floor =
        static_cast<double>(kHosts - 1) / static_cast<double>(kHosts);
    check(g_kill.goodputRatio >= floor,
          "failover goodput ratio " + fmt(g_kill.goodputRatio, 3) +
              " below (M-1)/M = " + fmt(floor, 3));
    check(g_kill.recoveryNs >= 0.0,
          "SLO violation rate never recovered after revival");
    check(g_kill.report.failed == 0,
          "failover run lost requests: " +
              std::to_string(g_kill.report.failed));
    check(g_noFailover.report.failed > 0,
          "ablation lost nothing - not a demonstrable degradation");
    check(g_noFailover.goodputRatio < g_kill.goodputRatio,
          "ablation goodput ratio not worse than failover");
    check(g_hedged.report.hedgesFired > 0, "no hedges fired");
    check(g_hedged.episodeP99Ns < g_unhedged.episodeP99Ns,
          "hedged episode p99 " + fmtNs(g_hedged.episodeP99Ns) +
              " not below unhedged " + fmtNs(g_unhedged.episodeP99Ns));
    check(g_replayIdentical, "same-seed replay diverged");

    // Burn-rate alerting: the naive cluster drops host 0's share of the
    // traffic on the floor during the kill, so the monitor must page
    // inside the crash window — and must be quiet in steady state
    // before the crash, in both runs.
    check(g_sloNoFailover->firingBetween(g_crashStartNs, g_crashEndNs),
          "no-failover: no SLO burn alert fired during the kill window");
    check(!g_sloNoFailover->firingBetween(0.0, g_crashStartNs),
          "no-failover: SLO alert fired before the crash (steady state)");
    check(!g_sloFailover->firingBetween(0.0, g_crashStartNs),
          "failover: SLO alert fired before the crash (steady state)");

    g_self.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    g_self.traceEventsRecorded = g_trace.recordedEvents();
    g_self.traceEventsDropped = g_trace.droppedEvents();
}

void
printResults()
{
    printHeader("Cluster: " + std::to_string(kHosts) + " hosts x " +
                std::to_string(kStacksPerHost) +
                " PIM stacks, open-loop 0.6x capacity (seed 0x" +
                [] {
                    std::ostringstream os;
                    os << std::hex << g_seed;
                    return os.str();
                }() +
                ")");
    std::printf("batch-1 attempt %s, capacity %.0f req/s, offered %.0f "
                "req/s, deadline %s%s\n",
                fmtNs(g_estNs).c_str(), g_capacityRps, g_offeredRps,
                fmtNs(g_deadlineNs).c_str(),
                g_smoke ? " [smoke]" : "");

    printHeader("Host kill (host 0 down for the middle 30%)");
    printRow({"mode", "pre-goodput", "kill-goodput", "ratio", "failed",
              "retries", "recovery"},
             14);
    for (const KillResult *r : {&g_kill, &g_noFailover}) {
        printRow({r == &g_kill ? "failover" : "no-failover",
                  fmt(r->preGoodputRps, 0), fmt(r->killGoodputRps, 0),
                  fmt(r->goodputRatio, 3),
                  std::to_string(r->report.failed),
                  std::to_string(r->report.retries),
                  r->recoveryNs >= 0.0 ? fmtNs(r->recoveryNs) : "never"},
                 14);
    }
    const auto &h0 = g_kill.report.hosts[0];
    std::printf("host 0 health: %llu down entries, %llu recovering, %llu "
                "probes, final state %s\n",
                static_cast<unsigned long long>(h0.entries[2]),
                static_cast<unsigned long long>(h0.entries[3]),
                static_cast<unsigned long long>(h0.probes),
                healthStateName(h0.state));

    printHeader("Straggler episode (host 0 8x slow for the middle 30%)");
    printRow({"mode", "episode-p99", "hedges", "wins", "cancels"}, 14);
    printRow({"hedged", fmtNs(g_hedged.episodeP99Ns),
              std::to_string(g_hedged.report.hedgesFired),
              std::to_string(g_hedged.report.hedgeWins),
              std::to_string(g_hedged.report.hedgeCancels)},
             14);
    printRow({"unhedged", fmtNs(g_unhedged.episodeP99Ns), "0", "0", "0"},
             14);

    std::printf("\nsame-seed replay bit-identical: %s\n",
                g_replayIdentical ? "yes" : "NO");
    std::printf("slo alerts (no-failover): fired in kill window %s, "
                "quiet pre-crash %s\n",
                g_sloNoFailover->firingBetween(g_crashStartNs,
                                               g_crashEndNs)
                    ? "yes"
                    : "NO",
                g_sloNoFailover->firingBetween(0.0, g_crashStartNs)
                    ? "NO"
                    : "yes");
    if (g_failures.empty()) {
        std::printf("all %d acceptance checks passed\n",
                    g_smoke ? 11 : 12);
    } else {
        for (const auto &f : g_failures)
            std::fprintf(stderr, "ACCEPTANCE FAILURE: %s\n", f.c_str());
    }
}

void
writeWindows(JsonWriter &w, std::vector<Window> &windows)
{
    w.beginArray();
    for (auto &win : windows) {
        w.beginObject();
        w.field("start_ns", win.startNs);
        w.field("goodput_rps", win.goodputRps());
        w.field("violation_rate", win.violationRate());
        w.field("p99_ns", win.p99Ns());
        w.endObject();
    }
    w.endArray();
}

void
writeKill(JsonWriter &w, KillResult &r)
{
    w.field("pre_goodput_rps", r.preGoodputRps);
    w.field("kill_goodput_rps", r.killGoodputRps);
    w.field("goodput_ratio", r.goodputRatio);
    w.field("recovery_ns", r.recoveryNs);
    w.field("completed", r.report.completed);
    w.field("failed", r.report.failed);
    w.field("timed_out", r.report.timedOut);
    w.field("shed", r.report.shed);
    w.field("retries", r.report.retries);
    w.field("probes", r.report.probes);
    w.field("health_transitions", r.report.healthTransitions);
    w.key("windows");
    writeWindows(w, r.windows);
}

std::string
jsonReport()
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    writeBenchPreamble(w, "cluster", g_seed, g_smoke,
                       "fault-tolerant cluster: replicated hosts, "
                       "failover, hedged requests",
                       &g_self);
    w.field("hosts", kHosts);
    w.field("stacks_per_host", kStacksPerHost);
    w.field("attempt_ns", g_estNs);
    w.field("capacity_rps", g_capacityRps);
    w.field("offered_rps", g_offeredRps);
    w.field("deadline_ns", g_deadlineNs);
    w.field("crash_start_ns", g_crashStartNs);
    w.field("crash_end_ns", g_crashEndNs);
    w.key("kill_failover").beginObject();
    writeKill(w, g_kill);
    w.key("slo");
    g_sloFailover->writeJson(w);
    w.endObject();
    w.key("kill_no_failover").beginObject();
    writeKill(w, g_noFailover);
    w.field("slo_fired_in_crash",
            g_sloNoFailover->firingBetween(g_crashStartNs, g_crashEndNs));
    w.field("slo_fired_pre_crash",
            g_sloNoFailover->firingBetween(0.0, g_crashStartNs));
    w.key("slo");
    g_sloNoFailover->writeJson(w);
    w.endObject();
    w.key("straggler").beginObject();
    w.field("hedged_p99_ns", g_hedged.episodeP99Ns);
    w.field("unhedged_p99_ns", g_unhedged.episodeP99Ns);
    w.field("hedges_fired", g_hedged.report.hedgesFired);
    w.field("hedge_wins", g_hedged.report.hedgeWins);
    w.field("hedge_cancels", g_hedged.report.hedgeCancels);
    w.endObject();
    w.field("replay_identical", g_replayIdentical);
    w.field("acceptance_failures",
            static_cast<std::uint64_t>(g_failures.size()));
    w.endObject();
    os << "\n";
    return os.str();
}

/** Validate, then write BENCH_cluster.json. Invalid JSON is a hard
 *  fail (the CI smoke job relies on this self-check). */
bool
writeJsonReport(const std::string &path)
{
    const std::string text = jsonReport();
    std::string error;
    if (!validateJson(text, &error)) {
        std::fprintf(stderr, "BENCH_cluster JSON invalid: %s\n",
                     error.c_str());
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return false;
    }
    os << text;
    return true;
}

void
BM_Cluster(benchmark::State &state)
{
    for (auto _ : state)
        runExperiments();
    switch (state.range(0)) {
      case 0:
        state.counters["goodput_ratio"] = g_kill.goodputRatio;
        state.counters["failed"] =
            static_cast<double>(g_kill.report.failed);
        state.counters["retries"] =
            static_cast<double>(g_kill.report.retries);
        state.counters["recovery_ns"] = g_kill.recoveryNs;
        state.SetLabel("kill/failover");
        break;
      case 1:
        state.counters["goodput_ratio"] = g_noFailover.goodputRatio;
        state.counters["failed"] =
            static_cast<double>(g_noFailover.report.failed);
        state.SetLabel("kill/no-failover");
        break;
      case 2:
        state.counters["episode_p99_ns"] = g_hedged.episodeP99Ns;
        state.counters["hedges_fired"] =
            static_cast<double>(g_hedged.report.hedgesFired);
        state.SetLabel("straggler/hedged");
        break;
      default:
        state.counters["episode_p99_ns"] = g_unhedged.episodeP99Ns;
        state.SetLabel("straggler/unhedged");
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_cluster.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            g_traceOut = argv[i] + 12;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            g_seed = std::strtoull(argv[i] + 7, nullptr, 0);
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    runExperiments();
    const char *names[] = {"Cluster/kill/failover",
                           "Cluster/kill/no_failover",
                           "Cluster/straggler/hedged",
                           "Cluster/straggler/unhedged"};
    for (int i = 0; i < 4; ++i)
        benchmark::RegisterBenchmark(names[i], BM_Cluster)
            ->Arg(i)
            ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    if (!json_out.empty() && !writeJsonReport(json_out))
        return 1;
    if (!g_traceOut.empty() && !g_trace.writeFile(g_traceOut))
        return 1;
    return g_failures.empty() ? 0 : 1;
}
