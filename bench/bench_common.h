/**
 * @file
 * Shared helpers for the benchmark harnesses: system construction and
 * paper-style table printing.
 */

#ifndef PIMSIM_BENCH_BENCH_COMMON_H
#define PIMSIM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "host/host_model.h"
#include "sim/system.h"
#include "stack/app_runner.h"
#include "stack/blas.h"

namespace pimsim::bench {

/** A complete evaluation setup: system + host model (+ PIM BLAS). */
struct Setup
{
    std::unique_ptr<PimSystem> system;
    std::unique_ptr<HostModel> host;
    std::unique_ptr<PimBlas> blas;
    std::unique_ptr<AppRunner> runner;
};

inline Setup
makeSetup(const SystemConfig &config, unsigned threads = 1)
{
    Setup s;
    s.system = std::make_unique<PimSystem>(config);
    s.system->setThreads(threads);
    s.host = std::make_unique<HostModel>(*s.system);
    if (config.withPim())
        s.blas = std::make_unique<PimBlas>(*s.system);
    s.runner = std::make_unique<AppRunner>(*s.host, s.blas.get());
    return s;
}

/** Fixed-width row printer for paper-style tables. */
inline void
printRow(const std::vector<std::string> &cells, int width = 12)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double value, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

inline std::string
fmtNs(double ns)
{
    char buf[64];
    if (ns >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
    return buf;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace pimsim::bench

#endif // PIMSIM_BENCH_BENCH_COMMON_H
