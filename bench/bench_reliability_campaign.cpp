/**
 * @file
 * Reliability campaign: fault-injection sweeps over the full software
 * stack (Section VIII's on-die ECC discussion, taken to its logical
 * end-to-end conclusion).
 *
 * For each injection rate and ECC setting, a PIM-HBM system runs a
 * sequence of element-wise kernels while the FaultInjector plants
 * transient flips, stuck-at cells, burst errors and PIM register faults
 * between kernels, and the controllers' patrol scrubbers walk the
 * touched rows. Every kernel result is compared bit-exactly against the
 * host golden reference, separating three outcomes:
 *
 *  - corrected:     ECC repaired the fault (demand access or scrub);
 *  - recovered:     the runtime saw an uncorrectable error or faulted
 *                   unit and retried / fell back to the host — the
 *                   caller still gets the right answer;
 *  - SDC:           silent data corruption — the output is wrong and
 *                   nothing reported an error (the ECC-off hazard).
 *
 * Identical seeds produce identical fault sequences and counts, so a
 * sweep is exactly reproducible. Results are printed as a table, as
 * CSV, and as a JSON array.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "reliability/fault_injector.h"
#include "stack/reference.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

constexpr std::uint64_t kSeed = 0x5eedc0de;
constexpr unsigned kKernels = 8;        ///< PIM kernels per cell
constexpr std::size_t kElements = 4096; ///< element-wise problem size
constexpr Cycle kStepCycles = 2000;     ///< cycles between injections
constexpr unsigned kStepsPerKernel = 4; ///< injection steps between kernels

struct CampaignCell
{
    double rate = 0.0; ///< expected DRAM transient faults per step
    bool ecc = false;

    std::uint64_t injected = 0;
    std::uint64_t corrected = 0;     ///< demand + scrub ECC corrections
    std::uint64_t uncorrectable = 0; ///< detected-uncorrectable events
    std::uint64_t scrubCorrected = 0;
    std::uint64_t scrubUncorrectable = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    unsigned kernels = 0;
    unsigned exact = 0; ///< kernels whose output matched golden bit-exactly
    unsigned sdc = 0;   ///< wrong output with no error reported

    double successRate() const
    {
        return kernels ? static_cast<double>(exact) / kernels : 1.0;
    }
};

/** The fault mix, scaled by one knob: mostly transients, some stuck-at
 *  cells, occasional SEC-DED-defeating bursts and register flips. */
FaultRates
mixAt(double rate)
{
    FaultRates r;
    r.dramTransient = rate;
    r.dramStuck = rate / 4;
    r.dramBurst = rate / 8;
    r.pimGrf = rate / 16;
    r.pimSrf = rate / 16;
    r.pimCrf = rate / 16;
    return r;
}

CampaignCell
runCell(double rate, bool ecc)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1;
    cfg.geometry.onDieEcc = ecc;
    cfg.controller.scrubEnabled = ecc; // scrubbing needs the code words
    cfg.controller.scrubInterval = kStepCycles / 2;
    cfg.controller.scrubBurstsPerStep = 64;

    PimSystem system(cfg);
    PimBlas blas(system);
    FaultInjector injector(system, mixAt(rate), kSeed);

    // One fixed problem; the golden answer never changes.
    Rng data(kSeed ^ 0xda7a);
    Fp16Vector a(kElements), b(kElements);
    for (auto &v : a)
        v = data.nextFp16();
    for (auto &v : b)
        v = data.nextFp16();
    const Fp16Vector golden = refAdd(a, b);

    CampaignCell cell;
    cell.rate = rate;
    cell.ecc = ecc;
    for (unsigned k = 0; k < kKernels; ++k) {
        Fp16Vector out;
        const BlasTiming t = blas.add(a, b, out);
        ++cell.kernels;
        cell.retries += t.retries;
        cell.fallbacks += t.hostFallback ? 1 : 0;

        bool exact = out.size() == golden.size();
        for (std::size_t i = 0; exact && i < golden.size(); ++i)
            exact = out[i].bits() == golden[i].bits();
        if (exact)
            ++cell.exact;
        else
            ++cell.sdc; // wrong answer, nothing reported: silent corruption

        // Let simulated time pass: the injector plants faults and the
        // controllers' scrubbers patrol the touched rows.
        injector.runCampaign(kStepCycles, kStepsPerKernel);
    }

    cell.injected = injector.counts().total();
    cell.corrected = system.errorLog().corrected();
    cell.uncorrectable = system.errorLog().uncorrectable();
    cell.scrubCorrected = system.totalCtrlStat("scrub.corrected");
    cell.scrubUncorrectable = system.totalCtrlStat("scrub.uncorrectable");
    return cell;
}

const std::vector<double> kRates = {0.0, 0.5, 2.0, 8.0};
std::vector<CampaignCell> g_cells;

void
runSweep()
{
    setQuiet(true);
    if (!g_cells.empty())
        return;
    for (const bool ecc : {true, false})
        for (const double rate : kRates)
            g_cells.push_back(runCell(rate, ecc));
}

void
printResults()
{
    printHeader("Reliability campaign: fault injection across the stack "
                "(seed 0x5eedc0de)");
    printRow({"rate", "ecc", "injected", "corrected", "uncorr", "scrubbed",
              "retries", "fallback", "sdc", "success"},
             10);
    for (const auto &c : g_cells) {
        printRow({fmt(c.rate, 1), c.ecc ? "on" : "off",
                  std::to_string(c.injected), std::to_string(c.corrected),
                  std::to_string(c.uncorrectable),
                  std::to_string(c.scrubCorrected),
                  std::to_string(c.retries), std::to_string(c.fallbacks),
                  std::to_string(c.sdc),
                  fmt(100.0 * c.successRate(), 1) + "%"},
                 10);
    }

    printHeader("CSV");
    std::printf("rate,ecc,injected,corrected,uncorrectable,"
                "scrub_corrected,scrub_uncorrectable,retries,fallbacks,"
                "kernels,exact,sdc,success_rate\n");
    for (const auto &c : g_cells) {
        std::printf("%.3f,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%u,%u,%u,"
                    "%.4f\n",
                    c.rate, c.ecc ? 1 : 0,
                    static_cast<unsigned long long>(c.injected),
                    static_cast<unsigned long long>(c.corrected),
                    static_cast<unsigned long long>(c.uncorrectable),
                    static_cast<unsigned long long>(c.scrubCorrected),
                    static_cast<unsigned long long>(c.scrubUncorrectable),
                    static_cast<unsigned long long>(c.retries),
                    static_cast<unsigned long long>(c.fallbacks),
                    c.kernels, c.exact, c.sdc, c.successRate());
    }

    printHeader("JSON");
    std::printf("[\n");
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
        const auto &c = g_cells[i];
        std::printf("  {\"rate\": %.3f, \"ecc\": %s, \"injected\": %llu, "
                    "\"corrected\": %llu, \"uncorrectable\": %llu, "
                    "\"scrub_corrected\": %llu, \"retries\": %llu, "
                    "\"fallbacks\": %llu, \"kernels\": %u, \"sdc\": %u, "
                    "\"success_rate\": %.4f}%s\n",
                    c.rate, c.ecc ? "true" : "false",
                    static_cast<unsigned long long>(c.injected),
                    static_cast<unsigned long long>(c.corrected),
                    static_cast<unsigned long long>(c.uncorrectable),
                    static_cast<unsigned long long>(c.scrubCorrected),
                    static_cast<unsigned long long>(c.retries),
                    static_cast<unsigned long long>(c.fallbacks),
                    c.kernels, c.sdc, c.successRate(),
                    i + 1 < g_cells.size() ? "," : "");
    }
    std::printf("]\n");

    std::printf("\nexpectation: with ECC on, faults either correct "
                "(demand/scrub) or surface as\nuncorrectable and recover "
                "via retry/host-fallback (success 100%%); with ECC off,\n"
                "stuck-at and burst faults pass silently into results "
                "(SDC > 0 at high rates).\n");
}

/** Machine-readable sweep results (BENCH_reliability.json at the repo
 *  root), written through JsonWriter so they are valid by construction. */
void
writeJsonReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return;
    }
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    writeBenchPreamble(w, "reliability", kSeed, false,
                       "fault-injection campaign: error rate x ECC");
    w.field("kernels_per_cell", kKernels);
    w.field("elements", kElements);
    w.key("cells").beginArray();
    for (const auto &c : g_cells) {
        w.beginObject();
        w.field("rate", c.rate);
        w.field("ecc", c.ecc);
        w.field("injected", c.injected);
        w.field("corrected", c.corrected);
        w.field("uncorrectable", c.uncorrectable);
        w.field("scrub_corrected", c.scrubCorrected);
        w.field("scrub_uncorrectable", c.scrubUncorrectable);
        w.field("retries", c.retries);
        w.field("fallbacks", c.fallbacks);
        w.field("kernels", c.kernels);
        w.field("exact", c.exact);
        w.field("sdc", c.sdc);
        w.field("success_rate", c.successRate());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
BM_Campaign(benchmark::State &state)
{
    for (auto _ : state)
        runSweep();
    const auto &c = g_cells.at(static_cast<std::size_t>(state.range(0)));
    state.counters["injected"] = static_cast<double>(c.injected);
    state.counters["corrected"] = static_cast<double>(c.corrected);
    state.counters["uncorrectable"] = static_cast<double>(c.uncorrectable);
    state.counters["retries"] = static_cast<double>(c.retries);
    state.counters["fallbacks"] = static_cast<double>(c.fallbacks);
    state.counters["sdc"] = static_cast<double>(c.sdc);
    state.counters["success_rate"] = c.successRate();
    state.SetLabel((c.ecc ? "ecc_on/rate_" : "ecc_off/rate_") +
                   fmt(c.rate, 1));
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_reliability.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    runSweep();
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
        const auto &c = g_cells[i];
        benchmark::RegisterBenchmark(
            ("Reliability/" + std::string(c.ecc ? "ecc_on" : "ecc_off") +
             "/rate_" + fmt(c.rate, 1))
                .c_str(),
            BM_Campaign)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    if (!json_out.empty())
        writeJsonReport(json_out);
    return 0;
}
