/**
 * @file
 * Fig. 14: design-space exploration of three enhanced PIM
 * microarchitectures that did not fit the product constraints
 * (Section VII-D), evaluated like the paper with a DRAMSim2-style
 * upper-bound methodology (no host compute/launch costs modelled):
 *
 *  - PIM-HBM-2x:  double CRF/GRF/SRF resources (+24% die size)
 *  - PIM-HBM-2BA: one instruction reads EVEN and ODD bank at once
 *  - PIM-HBM-SRW: simultaneous column RD and WR (write-bus operand)
 *
 * Paper: ~40% / ~20% / ~10% geo-mean gain over PIM-HBM respectively;
 * 2BA helps ADD most, SRW helps GEMV (~25%).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench_common.h"
#include "common/rng.h"
#include "stack/workloads.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

struct DseRow
{
    std::string workload;
    // variant name -> speedup over the HBM baseline
    std::map<std::string, double> speedup;
};

std::vector<DseRow> g_rows;
std::map<std::string, double> g_geomean; // variant -> gain over base PIM

/**
 * Upper-bound PIM kernel time: no host compute or launch overheads are
 * charged (the paper's DRAMSim2 methodology), but the AAM-window
 * synchronisation stays — it is an architectural property of driving
 * PIM through an unmodified host, and it is exactly what the 2x
 * variant's deeper GRF relaxes.
 */
double
pimUpperBoundNs(Setup &setup, const MicroSpec &micro)
{
    Rng rng(0xd5e ^ micro.m ^ micro.elements);
    if (micro.kind == MicroKind::Gemv) {
        Fp16Vector w(std::size_t{micro.m} * micro.n), x(micro.n), y;
        for (auto &v : w)
            v = rng.nextFp16();
        for (auto &v : x)
            v = rng.nextFp16();
        return setup.blas->gemv(w, micro.m, micro.n, x, y).ns;
    }
    Fp16Vector a(micro.elements), out;
    for (auto &v : a)
        v = rng.nextFp16();
    if (micro.kind == MicroKind::Add) {
        Fp16Vector b(micro.elements);
        for (auto &v : b)
            v = rng.nextFp16();
        return setup.blas->add(a, b, out).ns;
    }
    Fp16Vector gamma(8), beta(8);
    for (auto &v : gamma)
        v = rng.nextFp16();
    for (auto &v : beta)
        v = rng.nextFp16();
    return setup.blas->bn(a, gamma, beta, out).ns;
}

void
runFig14()
{
    setQuiet(true);
    Setup hbm = makeSetup(SystemConfig::hbmSystem());

    std::map<std::string, SystemConfig> variants;
    variants["PIM-HBM"] = SystemConfig::pimHbmSystem();
    {
        SystemConfig c = SystemConfig::pimHbmSystem();
        c.pim = c.pim.withDoubleResources();
        variants["PIM-HBM-2x"] = c;
    }
    {
        SystemConfig c = SystemConfig::pimHbmSystem();
        c.pim = c.pim.withTwoBankAccess();
        variants["PIM-HBM-2BA"] = c;
    }
    {
        SystemConfig c = SystemConfig::pimHbmSystem();
        c.pim = c.pim.withSimultaneousRdWr();
        variants["PIM-HBM-SRW"] = c;
    }

    std::vector<MicroSpec> workloads = table6Microbenchmarks();
    for (const auto &bn : bnMicrobenchmarks())
        workloads.push_back(bn);

    std::map<std::string, Setup> setups;
    for (const auto &[name, cfg] : variants)
        setups.emplace(name, makeSetup(cfg));

    std::map<std::string, std::vector<double>> gains;
    for (const auto &micro : workloads) {
        DseRow row;
        row.workload = micro.name;
        const auto h = hbm.runner->runMicro(micro, 1);
        double base_ns = 0.0;
        for (const auto &[name, cfg] : variants) {
            const double ns = pimUpperBoundNs(setups.at(name), micro);
            row.speedup[name] = h.ns / ns;
            if (name == "PIM-HBM")
                base_ns = ns;
        }
        for (const auto &[name, cfg] : variants) {
            if (name != "PIM-HBM")
                gains[name].push_back(row.speedup[name] /
                                      row.speedup["PIM-HBM"]);
        }
        (void)base_ns;
        g_rows.push_back(row);
    }
    for (const auto &[name, gs] : gains) {
        double log_sum = 0;
        for (double g : gs)
            log_sum += std::log(g);
        g_geomean[name] = std::exp(log_sum / gs.size());
    }
}

void
printFig14()
{
    printHeader("Fig. 14: DSE speedups over HBM (upper-bound: no host "
                "compute/launch costs)");
    printRow({"workload", "PIM-HBM", "PIM-HBM-2x", "PIM-HBM-2BA",
              "PIM-HBM-SRW"},
             14);
    for (const auto &row : g_rows) {
        printRow({row.workload, fmt(row.speedup.at("PIM-HBM")),
                  fmt(row.speedup.at("PIM-HBM-2x")),
                  fmt(row.speedup.at("PIM-HBM-2BA")),
                  fmt(row.speedup.at("PIM-HBM-SRW"))},
                 14);
    }
    printHeader("Geo-mean gain over base PIM-HBM");
    for (const auto &[name, g] : g_geomean)
        printRow({name, fmt(g)}, 16);
    std::printf("\npaper: 2x ~1.4x geo-mean (+24%% die), 2BA ~1.2x (+60%% "
                "power, biggest on ADD),\nSRW ~1.1x (~1.25x on GEMV).\n");
}

void
BM_Fig14(benchmark::State &state)
{
    for (auto _ : state) {
        if (g_rows.empty())
            runFig14();
    }
    const auto &row = g_rows.at(static_cast<std::size_t>(state.range(0)));
    state.counters["pim"] = row.speedup.at("PIM-HBM");
    state.counters["pim_2x"] = row.speedup.at("PIM-HBM-2x");
    state.counters["pim_2ba"] = row.speedup.at("PIM-HBM-2BA");
    state.counters["pim_srw"] = row.speedup.at("PIM-HBM-SRW");
    state.SetLabel(row.workload);
}

} // namespace

int
main(int argc, char **argv)
{
    runFig14();
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
        benchmark::RegisterBenchmark(
            ("Fig14/" + g_rows[i].workload).c_str(), BM_Fig14)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig14();
    return 0;
}
