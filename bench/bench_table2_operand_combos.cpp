/**
 * @file
 * Table II: supported operations, operand sources/destinations, and the
 * number of legal combinations (MUL 32, ADD 40, MAC 14, MAD 28 -> 114
 * compute combinations; 24 data movements). Also dumps the Table III
 * instruction formats by example.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "pim/isa.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

void
printTable2()
{
    printHeader("Table II: operand combinations per operation");
    printRow({"op", "combinations", "paper"}, 16);
    const std::pair<PimOpcode, unsigned> expected[] = {
        {PimOpcode::Mul, 32},
        {PimOpcode::Add, 40},
        {PimOpcode::Mac, 14},
        {PimOpcode::Mad, 28},
        {PimOpcode::Mov, 24},
    };
    unsigned compute_total = 0;
    for (const auto &[op, paper] : expected) {
        const unsigned count = countCombinations(op);
        printRow({pimOpcodeName(op), std::to_string(count),
                  std::to_string(paper)},
                 16);
        if (isArithmeticOpcode(op))
            compute_total += count;
    }
    std::printf("total compute combinations: %u (paper: 114)\n",
                compute_total);

    printHeader("Legal MAC combinations (SRC0, SRC1 -> DST)");
    for (const auto &combo : enumerateCompute(PimOpcode::Mac)) {
        std::printf("  MAC %s <- %s, %s\n", operandSpaceName(combo[2]),
                    operandSpaceName(combo[0]), operandSpaceName(combo[1]));
    }

    printHeader("Table III format examples (encode -> disassemble)");
    const PimInst examples[] = {
        PimInst::nop(4),
        PimInst::jump(3, 8),
        PimInst::exit(),
        PimInst::mov(OperandSpace::GrfA, 2, OperandSpace::EvenBank, 0,
                     /*relu=*/true),
        PimInst::fill(OperandSpace::GrfB, 1, OperandSpace::OddBank, 0,
                      /*aam=*/true),
        PimInst::add(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                     OperandSpace::SrfA, 0, true),
        PimInst::mul(OperandSpace::GrfB, 3, OperandSpace::EvenBank, 0,
                     OperandSpace::SrfM, 2),
        PimInst::mac(OperandSpace::GrfB, 0, OperandSpace::EvenBank, 0,
                     OperandSpace::GrfA, 5),
        PimInst::mad(OperandSpace::GrfA, 1, OperandSpace::OddBank, 0,
                     OperandSpace::SrfM, 4),
    };
    for (const auto &inst : examples) {
        std::printf("  0x%08x  %s\n", inst.encode(),
                    inst.disassemble().c_str());
    }
}

void
BM_CountCombinations(benchmark::State &state)
{
    const PimOpcode ops[] = {PimOpcode::Mul, PimOpcode::Add, PimOpcode::Mac,
                             PimOpcode::Mad, PimOpcode::Mov};
    const PimOpcode op = ops[state.range(0)];
    unsigned count = 0;
    for (auto _ : state) {
        count = countCombinations(op);
        benchmark::DoNotOptimize(count);
    }
    state.counters["combinations"] = count;
    state.SetLabel(pimOpcodeName(op));
}
BENCHMARK(BM_CountCombinations)->DenseRange(0, 4);

void
BM_EncodeDecodeRoundTrip(benchmark::State &state)
{
    const PimInst inst = PimInst::mac(OperandSpace::GrfB, 0,
                                      OperandSpace::EvenBank, 0,
                                      OperandSpace::GrfA, 5);
    for (auto _ : state) {
        auto decoded = PimInst::decode(inst.encode());
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_EncodeDecodeRoundTrip);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable2();
    return 0;
}
