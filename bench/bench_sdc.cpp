/**
 * @file
 * Silent-data-corruption defense benchmark: ABFT detection coverage on
 * the GEMV kernel and degraded-capacity serving under channel
 * quarantine.
 *
 * Part A (kernel coverage): for each GRF/SRF fault rate (expressed per
 * executed PIM op) two arms run the same seeded fault campaign on
 * identical systems -- one with ABFT off (the raw, possibly corrupted
 * result: ground truth) and one with ABFT on. Register flips do not
 * alter the command stream, so the arms consume bit-identical fault
 * sequences. Per trial the harness records the device's own exposure
 * counter (PimUnit::sdcExposed: planted bits actually consumed by the
 * datapath) and whether the raw result deviates beyond the fp16
 * checksum tolerance band. The in-binary acceptance gates:
 *
 *  - coverage: every ground-truth trial (exposed > 0 AND above-band
 *    deviation) is golden-confirmed by the ABFT arm (>= 99%);
 *  - zero silently-wrong: the ABFT arm never returns a result with an
 *    above-band tile deviation (it is corrected to golden instead);
 *  - replay: the same seed is bit-identical for every --threads value.
 *
 * Part B (serving): one PIM-HBM stack serves an open-loop FC tenant
 * while a ChaosCampaign SDC stream hammers one hot channel. The SDC
 * monitor quarantines the channel and the shard replans around it; the
 * acceptance gate is graceful degradation -- goodput loses at most the
 * withdrawn capacity fraction plus 10 percentage points.
 *
 * Flags (stripped before google/benchmark parsing):
 *   --json-out=FILE  result file (default BENCH_sdc.json; "" disables)
 *   --smoke          shrink trial counts/horizons for CI sanitizer runs
 *   --seed=N         override the fault/arrival seed (recorded in JSON)
 *   --threads=N      second arm of the replay check (default 4)
 *   --trace-out=FILE Chrome-trace timeline of the degraded serving run
 *                    (the pid-8 `sdc` track shows quarantine spans)
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/trace.h"
#include "pim/pim_channel.h"
#include "reliability/fault_injector.h"
#include "serve/chaos.h"
#include "serve/load_gen.h"
#include "serve/serving_engine.h"
#include "stack/reference.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

std::uint64_t g_seed = 0x5dcdef;
bool g_smoke = false;
unsigned g_threads = 4; // second arm of the replay check
std::string g_traceOut;
TraceSession g_trace;
RunSelfMetrics g_self;

constexpr unsigned kM = 256, kN = 256;
const std::vector<double> kRatesPerOp = {1e-6, 1e-5, 1e-4};

SystemConfig
benchSystem()
{
    SystemConfig c = SystemConfig::pimHbmSystem();
    c.numStacks = 1; // 16 pseudo channels x 8 units = 128 GEMV tiles
    c.geometry.rowsPerBank = 512;
    return c;
}

// ---------------------------------------------------------------- Part A

/** One (rate, ABFT) cell of the kernel coverage sweep. */
struct KernelCell
{
    double ratePerOp = 0.0;
    bool abft = false;

    unsigned trials = 0;
    std::uint64_t injected = 0; ///< register flips planted
    std::uint64_t exposed = 0;  ///< flips the datapath consumed
    unsigned truthTrials = 0;   ///< exposed > 0 AND above-band deviation
    unsigned detectedTruth = 0; ///< truth trials the ABFT arm confirmed
    unsigned silentAboveBand = 0; ///< returned results beyond the band
    std::uint64_t abftChecks = 0;
    std::uint64_t abftMismatches = 0;
    std::uint64_t abftUnverifiable = 0;
    std::uint64_t sdcConfirmed = 0;
    std::uint64_t sdcFalseAlarms = 0;
    double kernelNs = 0.0;
    double abftNs = 0.0;

    double coverage() const
    {
        return truthTrials ? static_cast<double>(detectedTruth) /
                                 static_cast<double>(truthTrials)
                           : 1.0;
    }
    double abftOverhead() const
    {
        return kernelNs > 0.0 ? abftNs / kernelNs : 0.0;
    }
};

/**
 * Mirror of the ABFT per-tile tolerance check, applied to an arbitrary
 * result vector: true when any (channel, unit) tile's checksum sums
 * deviate beyond the fp16 rounding band (non-finite tiles fall back to
 * a bit-compare against golden, exactly like the kernel's unverifiable
 * path).
 */
bool
anyTileAboveBand(const Fp16Vector &w, const Fp16Vector &x,
                 const Fp16Vector &y, const Fp16Vector &golden)
{
    const unsigned channels = 16, units = 8, slots = channels * units;
    const unsigned blocks = (kN + 127) / 128;
    const unsigned passes = (kM + 2 * slots - 1) / (2 * slots);
    const double eps = 0x1p-11, delta = 0x1p-25;
    const double roundings = 16.0 * blocks + 2.0;
    const double kSafety = 4.0;

    for (unsigned slot = 0; slot < slots; ++slot) {
        double y1 = 0.0, y2 = 0.0, cs1 = 0.0, cs2 = 0.0;
        double ca1 = 0.0, ca2 = 0.0, wsum = 0.0;
        unsigned rows = 0;
        bool finite = true, bits_differ = false;
        for (unsigned p = 0; p < passes; ++p) {
            for (unsigned k = 0; k < 2; ++k) {
                const std::uint64_t mm =
                    2ull * (std::uint64_t{p} * slots + slot) + k;
                if (mm >= kM)
                    continue;
                const double omega = 1.0 + 2.0 * p + k;
                for (unsigned j = 0; j < kN; ++j) {
                    const double wv =
                        static_cast<double>(w[mm * kN + j].toFloat());
                    const double xv = static_cast<double>(x[j].toFloat());
                    cs1 += wv * xv;
                    cs2 += omega * wv * xv;
                    ca1 += std::fabs(wv) * std::fabs(xv);
                    ca2 += omega * std::fabs(wv) * std::fabs(xv);
                    finite = finite && std::isfinite(wv) &&
                             std::isfinite(xv);
                }
                const double yv = static_cast<double>(y[mm].toFloat());
                y1 += yv;
                y2 += omega * yv;
                finite = finite && std::isfinite(yv);
                bits_differ =
                    bits_differ || y[mm].bits() != golden[mm].bits();
                wsum += omega;
                ++rows;
            }
        }
        if (rows == 0)
            continue;
        if (!finite || !std::isfinite(cs1) || !std::isfinite(cs2)) {
            if (bits_differ)
                return true; // saturated tile: only bits can testify
            continue;
        }
        const double tol1 =
            kSafety * roundings * (eps * ca1 + 16.0 * delta * rows);
        const double tol2 =
            kSafety * roundings * (eps * ca2 + 16.0 * delta * wsum);
        if (std::fabs(y1 - cs1) > tol1 || std::fabs(y2 - cs2) > tol2)
            return true;
    }
    return false;
}

struct ArmResult
{
    BlasTiming timing;
    Fp16Vector y;
    std::uint64_t injected = 0;
    std::uint64_t exposed = 0;
};

double g_opsPerKernel = 0.0; // probed once from a clean run

/** One seeded fault campaign trial on a fresh system. */
ArmResult
runArm(double rate_per_op, std::uint64_t trial_seed, bool abft_on,
       unsigned threads, const Fp16Vector &w, const Fp16Vector &x)
{
    PimSystem sys(benchSystem());
    sys.setThreads(threads);
    PimBlas blas(sys);
    blas.setAbft(abft_on);

    // Per-op rates -> expected flips per injection step (one step per
    // kernel): GRF dominates, SRF rides along at a quarter of the rate
    // (the prologue reload masks most SRF plants -- the exposure
    // counter, not the plant count, is the ground truth).
    FaultRates rates;
    rates.pimGrf = rate_per_op * g_opsPerKernel;
    rates.pimSrf = rate_per_op * g_opsPerKernel / 4.0;
    FaultInjector injector(sys, rates, trial_seed);
    injector.step();

    ArmResult r;
    r.timing = blas.gemv(w, kM, kN, x, r.y);
    r.injected = injector.counts().total();
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch)
        r.exposed += sys.controller(ch).pim()->sdcExposed();
    g_self.simulatedNs += r.timing.totalNs();
    return r;
}

std::vector<KernelCell> g_kernelCells;
bool g_replayOk = false;

void
runKernelSweep(const Fp16Vector &w, const Fp16Vector &x,
               const Fp16Vector &golden)
{
    const unsigned trials = g_smoke ? 15 : 150;
    for (const double rate : kRatesPerOp) {
        KernelCell off_cell, on_cell;
        off_cell.ratePerOp = on_cell.ratePerOp = rate;
        off_cell.abft = false;
        on_cell.abft = true;
        for (unsigned i = 0; i < trials; ++i) {
            const std::uint64_t trial_seed =
                g_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)) ^
                static_cast<std::uint64_t>(rate * 1e12);
            const ArmResult off =
                runArm(rate, trial_seed, false, 1, w, x);
            const ArmResult on = runArm(rate, trial_seed, true, 1, w, x);
            PIMSIM_ASSERT(off.injected == on.injected,
                          "arms diverged: ", off.injected, " vs ",
                          on.injected, " planted flips");

            auto tally = [](KernelCell &cell, const ArmResult &arm) {
                ++cell.trials;
                cell.injected += arm.injected;
                cell.exposed += arm.exposed;
                cell.abftChecks += arm.timing.abftChecks;
                cell.abftMismatches += arm.timing.abftMismatches;
                cell.abftUnverifiable += arm.timing.abftUnverifiable;
                cell.sdcConfirmed += arm.timing.sdcConfirmed;
                cell.sdcFalseAlarms += arm.timing.sdcFalseAlarms;
                cell.kernelNs += arm.timing.ns;
                cell.abftNs += arm.timing.abftNs;
            };
            tally(off_cell, off);
            tally(on_cell, on);

            // Ground truth comes from the unprotected arm: the device
            // consumed a plant AND the raw result left the band.
            const bool truth = off.exposed > 0 &&
                               anyTileAboveBand(w, x, off.y, golden);
            if (truth) {
                ++off_cell.truthTrials;
                ++on_cell.truthTrials;
                if (on.timing.sdcConfirmed > 0)
                    ++on_cell.detectedTruth;
            }
            if (anyTileAboveBand(w, x, off.y, golden))
                ++off_cell.silentAboveBand;
            if (anyTileAboveBand(w, x, on.y, golden))
                ++on_cell.silentAboveBand;
        }
        g_kernelCells.push_back(off_cell);
        g_kernelCells.push_back(on_cell);
    }

    // Replay: the highest-rate campaign is bit-identical for every
    // simulation thread count.
    const std::uint64_t replay_seed = g_seed ^ 0x9e3779b97f4a7c15ULL;
    const ArmResult a = runArm(1e-4, replay_seed, true, 1, w, x);
    const ArmResult b = runArm(1e-4, replay_seed, true, g_threads, w, x);
    g_replayOk = a.timing.ns == b.timing.ns &&
                 a.timing.abftMismatches == b.timing.abftMismatches &&
                 a.timing.sdcConfirmed == b.timing.sdcConfirmed &&
                 a.exposed == b.exposed && a.y.size() == b.y.size();
    for (std::size_t i = 0; g_replayOk && i < a.y.size(); ++i)
        g_replayOk = a.y[i].bits() == b.y[i].bits();
}

// ---------------------------------------------------------------- Part B

AppSpec
servedApp()
{
    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = 256;
    fc.input = 256;
    fc.steps = 1;
    fc.pimEligible = true;

    AppSpec app;
    app.name = "sdc-fc";
    app.layers = {fc};
    return app;
}

struct ServingResult
{
    serve::ServeReport report;
    double goodputRps = 0.0;
    double capacityFraction = 1.0; ///< active/total channels at drain
    unsigned withdrawn = 0;
};

double g_deadlineNs = 0.0;
double g_servedCapacityRps = 0.0;

ServingResult
runServing(bool degraded, const std::shared_ptr<serve::ServiceTimeCache> &cache,
           double horizon_ns, double offered_rps, bool traced)
{
    serve::ServeConfig config;
    config.system = benchSystem();
    config.tenants = {
        serve::TenantSpec{"fc", servedApp(), 1.0, g_deadlineNs}};
    config.queue.depth = 256;
    config.sched.maxBatch = 8;
    config.timingCache = cache;
    config.retrySeed = g_seed ^ 0x7e57;
    config.sdc.enabled = true;
    config.sdc.abft = true;
    config.sdc.quarantine = true;
    config.sdc.monitor.window = 8;
    config.sdc.monitor.minSamples = 2;
    config.sdc.monitor.suspectScore = 0.25;
    config.sdc.monitor.quarantineScore = 0.5;
    config.sdc.monitor.probationDelayNs = 500'000.0;
    config.sdc.monitor.probationCanaries = 2;
    config.sdc.canaryPeriodNs = 250'000.0;
    config.sdc.migrationNsPerRow = 100.0;

    serve::ServingEngine engine(std::move(config));
    if (traced)
        engine.setTrace(&g_trace);

    // The SDC process: a steady drizzle everywhere, a storm on channel
    // 0 dense enough that its units never survive a canary window.
    serve::ChaosConfig chaos_config;
    chaos_config.seed = g_seed ^ 0x5dc;
    chaos_config.sdcPerSec = degraded ? 20.0 : 0.0;
    chaos_config.sdcHotChannel = 0;
    chaos_config.sdcHotFactor = 5000.0;
    serve::ChaosCampaign chaos(chaos_config, engine.plan().numShards());
    if (degraded) {
        chaos.configureSdc(16, benchSystem().pim.unitsPerPch);
        engine.setSdcModel(&chaos);
    }

    std::vector<serve::ArrivalSpec> specs = {
        serve::ArrivalSpec{0, offered_rps}};
    const auto arrivals =
        serve::poissonArrivals(specs, horizon_ns, g_seed ^ 0xa221);
    for (const auto &a : arrivals)
        engine.submit(a.tenant, std::max(a.ns, engine.nowNs()));
    engine.drain();
    g_self.simulatedNs += engine.nowNs();

    ServingResult r;
    r.capacityFraction = engine.capacityFraction(0);
    r.report = engine.report();
    r.report.reconcile();
    r.withdrawn =
        static_cast<unsigned>(r.report.sdc.withdrawnChannels.size());
    const auto &t = r.report.total;
    const std::uint64_t good = t.completed - t.sloViolations;
    r.goodputRps = horizon_ns > 0.0
                       ? static_cast<double>(good) / (horizon_ns * 1e-9)
                       : 0.0;
    return r;
}

ServingResult g_baseline, g_degraded;
bool g_servingReplayOk = false;

void
runServingSweep()
{
    auto cache = std::make_shared<serve::ServiceTimeCache>();
    serve::ShardServiceModel probe(benchSystem(), 16, cache);
    const double svc_ns = probe.serviceNs(servedApp(), 1);
    g_servedCapacityRps = 1e9 / svc_ns;
    g_deadlineNs = 25.0 * svc_ns;
    const double horizon_ns = (g_smoke ? 100.0 : 600.0) * svc_ns;
    const double offered = 0.6 * g_servedCapacityRps;

    g_baseline = runServing(false, cache, horizon_ns, offered, false);
    g_degraded =
        runServing(true, cache, horizon_ns, offered, !g_traceOut.empty());

    // Serving replay: the quarantine/replan path is bit-identical for
    // every simulation thread count.
    auto digest = [&](const ServingResult &r) {
        return std::make_tuple(
            r.report.total.completed, r.report.total.retries,
            r.report.sdc.confirmed, r.report.sdc.quarantines,
            r.report.sdc.readmits, r.withdrawn, r.goodputRps,
            r.report.total.e2e.p99Ns);
    };
    // Re-run the degraded cell against a cache warmed with a different
    // thread count: a shared warm cache would short-circuit the
    // measurement systems and make the comparison vacuous.
    auto cold = std::make_shared<serve::ServiceTimeCache>();
    serve::ShardServiceModel probe_cold(benchSystem(), 16, cold);
    probe_cold.setSimThreads(g_threads);
    (void)probe_cold.serviceNs(servedApp(), 1);
    ServingResult again =
        runServing(true, cold, horizon_ns, offered, false);
    g_servingReplayOk = digest(g_degraded) == digest(again);
}

// ---------------------------------------------------------------- output

void
printResults()
{
    printHeader("SDC defense, part A: ABFT coverage on GEMV " +
                std::to_string(kM) + "x" + std::to_string(kN) +
                " (fault rates per PIM op)");
    printRow({"rate/op", "abft", "trials", "planted", "exposed", "truth",
              "caught", "silent>band", "falseAlarm", "overhead"},
             12);
    for (const auto &c : g_kernelCells) {
        printRow({fmt(c.ratePerOp * 1e6, 1) + "e-6",
                  c.abft ? "on" : "off", std::to_string(c.trials),
                  std::to_string(c.injected), std::to_string(c.exposed),
                  std::to_string(c.truthTrials),
                  std::to_string(c.detectedTruth),
                  std::to_string(c.silentAboveBand),
                  std::to_string(c.sdcFalseAlarms),
                  fmt(100.0 * c.abftOverhead(), 2) + "%"},
                 12);
    }
    std::printf("replay (threads 1 vs %u): %s\n", g_threads,
                g_replayOk ? "bit-identical" : "DIVERGED");

    printHeader("SDC defense, part B: serving under a hot-channel SDC "
                "storm");
    printRow({"arm", "goodput", "retries", "quarant", "readmits",
              "withdrawn", "capacity", "silentWrong"},
             12);
    auto serving_row = [](const char *name, const ServingResult &r) {
        printRow({name, fmt(r.goodputRps, 1),
                  std::to_string(r.report.total.retries),
                  std::to_string(r.report.sdc.quarantines),
                  std::to_string(r.report.sdc.readmits),
                  std::to_string(r.withdrawn), fmt(r.capacityFraction, 3),
                  std::to_string(r.report.total.silentlyWrong)},
                 12);
    };
    serving_row("baseline", g_baseline);
    serving_row("degraded", g_degraded);
    std::printf("serving replay (threads 1 vs %u): %s\n", g_threads,
                g_servingReplayOk ? "bit-identical" : "DIVERGED");

    std::printf(
        "\nexpectation: every above-band corruption the device exposes "
        "is confirmed by the\nABFT arm (coverage >= 99%%) and corrected "
        "to golden (zero silent results beyond\nthe band); quarantining "
        "the hot channel costs at most its capacity fraction\nplus 10%% "
        "of goodput.\n");
}

/** In-binary acceptance: hard-exit on any violated gate so CI smoke
 *  runs fail loudly instead of uploading a green-looking JSON. */
void
checkAcceptance()
{
    bool ok = true;
    auto fail = [&ok](const std::string &what) {
        std::fprintf(stderr, "ACCEPTANCE FAILED: %s\n", what.c_str());
        ok = false;
    };

    for (const auto &c : g_kernelCells) {
        if (!c.abft)
            continue;
        if (c.truthTrials > 0 && c.coverage() < 0.99)
            fail("coverage " + fmt(c.coverage(), 4) + " < 0.99 at rate " +
                 fmt(c.ratePerOp * 1e6, 2) + "e-6/op");
        if (c.silentAboveBand != 0)
            fail(std::to_string(c.silentAboveBand) +
                 " silently-wrong ABFT-on result(s) at rate " +
                 fmt(c.ratePerOp * 1e6, 2) + "e-6/op");
    }
    if (!g_replayOk)
        fail("kernel replay diverged across thread counts");
    if (!g_servingReplayOk)
        fail("serving replay diverged across thread counts");
    if (g_degraded.report.total.silentlyWrong != 0)
        fail("degraded serving completed silently-wrong batches");
    if (g_degraded.report.sdc.quarantines == 0)
        fail("the hot-channel storm never triggered a quarantine");

    // Graceful degradation: the goodput loss is bounded by the
    // withdrawn capacity fraction plus 10 percentage points.
    const double lost_capacity = 1.0 - g_degraded.capacityFraction;
    const double floor_rps =
        g_baseline.goodputRps * (1.0 - lost_capacity - 0.10);
    if (g_degraded.goodputRps < floor_rps)
        fail("goodput " + fmt(g_degraded.goodputRps, 1) +
             " rps under quarantine fell below the graceful-degradation "
             "floor " +
             fmt(floor_rps, 1) + " rps (baseline " +
             fmt(g_baseline.goodputRps, 1) + ", lost capacity " +
             fmt(lost_capacity, 3) + ")");

    if (!ok)
        std::exit(1);
}

void
writeServingJson(JsonWriter &w, const ServingResult &r)
{
    w.field("goodput_rps", r.goodputRps);
    w.field("capacity_fraction", r.capacityFraction);
    w.field("withdrawn_channels", r.withdrawn);
    w.field("completed", r.report.total.completed);
    w.field("retries", r.report.total.retries);
    w.field("silently_wrong", r.report.total.silentlyWrong);
    w.field("slo_violations", r.report.total.sloViolations);
    w.field("e2e_p99_ns", r.report.total.e2e.p99Ns);
    w.field("sdc_detected", r.report.sdc.detected);
    w.field("sdc_confirmed", r.report.sdc.confirmed);
    w.field("sdc_false_alarms", r.report.sdc.falseAlarms);
    w.field("quarantines", r.report.sdc.quarantines);
    w.field("readmits", r.report.sdc.readmits);
}

std::string
jsonReport()
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    writeBenchPreamble(w, "sdc", g_seed, g_smoke,
                       "ABFT coverage sweep + quarantine serving on 1 "
                       "PIM-HBM stack",
                       &g_self);
    w.field("gemv_m", kM);
    w.field("gemv_n", kN);
    w.field("ops_per_kernel", g_opsPerKernel);
    w.field("replay_threads", g_threads);
    w.field("kernel_replay_identical", g_replayOk);
    w.field("serving_replay_identical", g_servingReplayOk);
    w.key("coverage").beginArray();
    for (const auto &c : g_kernelCells) {
        w.beginObject();
        w.field("rate_per_op", c.ratePerOp);
        w.field("abft", c.abft);
        w.field("trials", c.trials);
        w.field("planted", c.injected);
        w.field("exposed", c.exposed);
        w.field("truth_trials", c.truthTrials);
        w.field("detected_truth", c.detectedTruth);
        w.field("coverage", c.coverage());
        w.field("silent_above_band", c.silentAboveBand);
        w.field("abft_checks", c.abftChecks);
        w.field("abft_mismatches", c.abftMismatches);
        w.field("abft_unverifiable", c.abftUnverifiable);
        w.field("sdc_confirmed", c.sdcConfirmed);
        w.field("false_alarms", c.sdcFalseAlarms);
        w.field("abft_overhead", c.abftOverhead());
        w.endObject();
    }
    w.endArray();
    w.key("serving").beginObject();
    w.field("capacity_rps", g_servedCapacityRps);
    w.field("deadline_ns", g_deadlineNs);
    w.key("baseline").beginObject();
    writeServingJson(w, g_baseline);
    w.endObject();
    w.key("degraded").beginObject();
    writeServingJson(w, g_degraded);
    w.endObject();
    w.endObject();
    w.endObject();
    os << "\n";
    return os.str();
}

/** Validate, then write BENCH_sdc.json. Invalid JSON is a hard fail
 *  (the CI smoke job relies on this self-check). */
bool
writeJsonReport(const std::string &path)
{
    const std::string text = jsonReport();
    std::string error;
    if (!validateJson(text, &error)) {
        std::fprintf(stderr, "BENCH_sdc JSON invalid: %s\n",
                     error.c_str());
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return false;
    }
    os << text;
    return true;
}

void
runAll()
{
    if (!g_kernelCells.empty())
        return;
    setQuiet(true);
    const auto wall_start = std::chrono::steady_clock::now();

    // Probe the clean kernel once: op count (the per-op -> per-step
    // rate conversion) and the shared data/golden triple.
    Rng rng(g_seed ^ 0xda7a);
    Fp16Vector w(std::size_t{kM} * kN), x(kN);
    for (auto &v : w)
        v = Fp16(rng.nextFloat(-0.125f, 0.125f));
    for (auto &v : x)
        v = Fp16(rng.nextFloat(-0.125f, 0.125f));
    {
        PimSystem sys(benchSystem());
        PimBlas blas(sys);
        Fp16Vector y;
        const BlasTiming t = blas.gemv(w, kM, kN, x, y);
        g_opsPerKernel = static_cast<double>(t.pimOps);
        g_self.simulatedNs += t.totalNs();
    }
    const Fp16Vector golden = refGemv(w, kM, kN, x);

    runKernelSweep(w, x, golden);
    runServingSweep();

    g_self.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    g_self.traceEventsRecorded = g_trace.recordedEvents();
    g_self.traceEventsDropped = g_trace.droppedEvents();
}

void
BM_SdcCoverage(benchmark::State &state)
{
    for (auto _ : state)
        runAll();
    const auto &c =
        g_kernelCells.at(static_cast<std::size_t>(state.range(0)));
    state.counters["rate_per_op"] = c.ratePerOp;
    state.counters["exposed"] = static_cast<double>(c.exposed);
    state.counters["truth_trials"] = static_cast<double>(c.truthTrials);
    state.counters["coverage"] = c.coverage();
    state.counters["silent_above_band"] =
        static_cast<double>(c.silentAboveBand);
    state.counters["abft_overhead"] = c.abftOverhead();
    state.SetLabel(std::string(c.abft ? "abft_on" : "abft_off") +
                   "/rate_" + fmt(c.ratePerOp * 1e6, 1) + "e-6");
}

void
BM_SdcServing(benchmark::State &state)
{
    for (auto _ : state)
        runAll();
    const ServingResult &r = state.range(0) ? g_degraded : g_baseline;
    state.counters["goodput_rps"] = r.goodputRps;
    state.counters["capacity_fraction"] = r.capacityFraction;
    state.counters["quarantines"] =
        static_cast<double>(r.report.sdc.quarantines);
    state.counters["silently_wrong"] =
        static_cast<double>(r.report.total.silentlyWrong);
    state.SetLabel(state.range(0) ? "degraded" : "baseline");
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_sdc.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            g_traceOut = argv[i] + 12;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            g_seed = std::strtoull(argv[i] + 7, nullptr, 0);
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            g_threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    if (g_threads < 1)
        g_threads = 1;

    runAll();
    for (std::size_t i = 0; i < g_kernelCells.size(); ++i) {
        const auto &c = g_kernelCells[i];
        benchmark::RegisterBenchmark(
            ("SdcCoverage/" + std::string(c.abft ? "abft_on" : "abft_off") +
             "/rate_" + fmt(c.ratePerOp * 1e6, 1) + "e-6")
                .c_str(),
            BM_SdcCoverage)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    for (int arm = 0; arm < 2; ++arm) {
        benchmark::RegisterBenchmark(
            (std::string("SdcServing/") + (arm ? "degraded" : "baseline"))
                .c_str(),
            BM_SdcServing)
            ->Arg(arm)
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    checkAcceptance();
    if (!json_out.empty() && !writeJsonReport(json_out))
        return 1;
    if (!g_traceOut.empty() && !g_trace.writeFile(g_traceOut))
        return 1;
    return 0;
}
