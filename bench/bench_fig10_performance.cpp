/**
 * @file
 * Fig. 10: relative performance of the PIM-HBM system over the HBM
 * system for the Table VI microbenchmarks and the five applications at
 * batch sizes 1, 2 and 4, plus the host LLC miss rates and the
 * fence-removal study of Section VII-B.
 *
 * Paper headlines this harness reproduces in shape:
 *   GEMV B1 up to 11.2x, ADD B1 ~1.6x, DS2 3.5x, GNMT 1.5x,
 *   AlexNet 1.4x, ResNet ~1.0x; B4 flips GEMV to HBM-favoured;
 *   removing fences buys ~2x on the microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "bench_common.h"
#include "common/json.h"
#include "stack/workloads.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

struct Fig10Row
{
    std::string name;
    std::map<unsigned, double> speedup;     // batch -> PIM/HBM speedup
    std::map<unsigned, double> missRate;    // batch -> HBM LLC miss rate
    std::map<unsigned, double> hbmNs;
    std::map<unsigned, double> pimNs;
};

std::vector<Fig10Row> g_rows;
std::map<unsigned, double> g_nofence_geomean;
unsigned g_threads = 1; // --threads=: sim workers (bit-identical results)

void
runFig10()
{
    setQuiet(true);
    Setup hbm = makeSetup(SystemConfig::hbmSystem(), g_threads);
    Setup pim = makeSetup(SystemConfig::pimHbmSystem(), g_threads);
    Setup pim_nofence = makeSetup(SystemConfig::pimHbmSystem(), g_threads);
    pim_nofence.blas->setUseFences(false);
    for (unsigned ch = 0; ch < pim_nofence.system->numChannels(); ++ch)
        pim_nofence.system->controller(ch).setOrderedWindow(1);

    const std::vector<unsigned> batches = {1, 2, 4};

    // Microbenchmarks.
    std::map<unsigned, std::vector<double>> fenced_gain;
    for (const auto &micro : table6Microbenchmarks()) {
        Fig10Row row;
        row.name = micro.name;
        for (unsigned b : batches) {
            const auto h = hbm.runner->runMicro(micro, b);
            const auto p = pim.runner->runMicro(micro, b);
            const auto pf = pim_nofence.runner->runMicro(micro, b);
            row.speedup[b] = h.ns / p.ns;
            row.missRate[b] = h.avgLlcMissRate;
            row.hbmNs[b] = h.ns;
            row.pimNs[b] = p.ns;
            fenced_gain[b].push_back(p.ns / pf.ns);
        }
        g_rows.push_back(row);
    }
    for (unsigned b : batches) {
        double log_sum = 0.0;
        for (double g : fenced_gain[b])
            log_sum += std::log(g);
        g_nofence_geomean[b] =
            std::exp(log_sum / fenced_gain[b].size());
    }

    // Applications.
    for (const auto &app : allApps()) {
        Fig10Row row;
        row.name = app.name;
        for (unsigned b : batches) {
            const auto h = hbm.runner->runApp(app, b);
            const auto p = pim.runner->runApp(app, b);
            row.speedup[b] = h.ns / p.ns;
            row.missRate[b] = h.avgLlcMissRate;
            row.hbmNs[b] = h.ns;
            row.pimNs[b] = p.ns;
        }
        g_rows.push_back(row);
    }
}

void
printFig10()
{
    printHeader("Fig. 10: relative performance (PIM-HBM vs HBM) and HBM "
                "LLC miss rates");
    printRow({"workload", "B1 speedup", "B2 speedup", "B4 speedup",
              "B1 miss%", "B2 miss%", "B4 miss%", "B1 HBM", "B1 PIM"});
    for (const auto &row : g_rows) {
        printRow({row.name, fmt(row.speedup.at(1)), fmt(row.speedup.at(2)),
                  fmt(row.speedup.at(4)),
                  fmt(100 * row.missRate.at(1), 0),
                  fmt(100 * row.missRate.at(2), 0),
                  fmt(100 * row.missRate.at(4), 0),
                  fmtNs(row.hbmNs.at(1)), fmtNs(row.pimNs.at(1))});
    }
    printHeader("Section VII-B fence study: microbenchmark geo-mean "
                "speedup of fence-free PIM over fenced PIM");
    printRow({"batch", "gain"});
    for (const auto &[b, g] : g_nofence_geomean)
        printRow({"B" + std::to_string(b), fmt(g)});
}

/** Machine-readable Fig. 10 results (BENCH_fig10.json at the repo root). */
void
writeJsonReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open bench output '", path, "'");
        return;
    }
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    // Seed 0: the fig10 workloads are fixed shapes, nothing is drawn.
    writeBenchPreamble(w, "fig10", 0, false,
                       "paper fig. 10: PIM speedup per workload x batch");
    w.key("rows").beginArray();
    for (const auto &row : g_rows) {
        w.beginObject();
        w.field("workload", row.name);
        w.key("batches").beginArray();
        for (const auto &[b, speedup] : row.speedup) {
            w.beginObject();
            w.field("batch", b);
            w.field("speedup", speedup);
            w.field("hbm_llc_miss", row.missRate.at(b));
            w.field("hbm_ns", row.hbmNs.at(b));
            w.field("pim_ns", row.pimNs.at(b));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("nofence_geomean").beginArray();
    for (const auto &[b, g] : g_nofence_geomean) {
        w.beginObject();
        w.field("batch", b);
        w.field("gain", g);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
BM_Fig10(benchmark::State &state)
{
    for (auto _ : state) {
        if (g_rows.empty())
            runFig10();
    }
    const auto &row = g_rows.at(static_cast<std::size_t>(state.range(0)));
    state.counters["speedup_b1"] = row.speedup.at(1);
    state.counters["speedup_b2"] = row.speedup.at(2);
    state.counters["speedup_b4"] = row.speedup.at(4);
    state.counters["hbm_llc_miss_b1"] = row.missRate.at(1);
    state.SetLabel(row.name);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google/benchmark sees (and rejects) them.
    std::string json_out = "BENCH_fig10.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            json_out = argv[i] + 11;
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            g_threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    runFig10();
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
        benchmark::RegisterBenchmark(("Fig10/" + g_rows[i].name).c_str(),
                                     BM_Fig10)
            ->Arg(static_cast<int>(i))
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig10();
    if (!json_out.empty())
        writeJsonReport(json_out);
    return 0;
}
