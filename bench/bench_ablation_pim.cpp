/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out (not a
 * paper figure): how PIM kernel performance responds to
 *
 *  - the GRF depth (= the AAM reorder window and fence interval that
 *    Section IV-C ties to functional correctness),
 *  - the fence/barrier cost the host pays,
 *  - the number of PIM execution units per pseudo channel (the paper's
 *    "trade-off between cost and on-chip compute bandwidth",
 *    Section III-A).
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "common/rng.h"
#include "stack/workloads.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

double
gemvNs(const SystemConfig &cfg)
{
    PimSystem sys(cfg);
    PimBlas blas(sys);
    Rng rng(5);
    const unsigned m = 2048, n = 4096;
    Fp16Vector w(std::size_t{m} * n), x(n), y;
    for (auto &v : w)
        v = rng.nextFp16();
    for (auto &v : x)
        v = rng.nextFp16();
    return blas.gemv(w, m, n, x, y).ns;
}

double
addNs(const SystemConfig &cfg)
{
    PimSystem sys(cfg);
    PimBlas blas(sys);
    Rng rng(6);
    const std::size_t len = 2u << 20;
    Fp16Vector a(len), b(len), out;
    for (auto &v : a)
        v = rng.nextFp16();
    for (auto &v : b)
        v = rng.nextFp16();
    return blas.add(a, b, out).ns;
}

void
printAblations()
{
    setQuiet(true);

    printHeader("Ablation: GRF depth (AAM window / fence interval)");
    printRow({"grfPerHalf", "GEMV2 time", "ADD1 time"}, 14);
    for (unsigned depth : {8u, 16u}) {
        SystemConfig cfg = SystemConfig::pimHbmSystem();
        cfg.pim.grfPerHalf = depth;
        cfg.pim.crfEntries = 64; // room for the register map either way
        printRow({std::to_string(depth), fmtNs(gemvNs(cfg)),
                  fmtNs(addNs(cfg))},
                 14);
    }

    printHeader("Ablation: fence cost (host barrier overhead)");
    printRow({"fenceNs", "GEMV2 time", "ADD1 time"}, 14);
    for (double fence : {0.0, 25.0, 100.0, 400.0}) {
        SystemConfig cfg = SystemConfig::pimHbmSystem();
        cfg.host.fenceNs = fence;
        printRow({fmt(fence, 0), fmtNs(gemvNs(cfg)), fmtNs(addNs(cfg))},
                 14);
    }

    printHeader("Ablation: HBM3-generation fast mode switch "
                "(Section VIII future work)");
    printRow({"mode protocol", "GEMV 256x256", "GEMV2", "ADD1"}, 16);
    {
        SystemConfig base = SystemConfig::pimHbmSystem();
        SystemConfig fast = SystemConfig::pimHbmSystem();
        fast.pim = fast.pim.withFastModeSwitch();
        auto small_gemv = [](const SystemConfig &cfg) {
            PimSystem sys(cfg);
            PimBlas blas(sys);
            Rng rng(11);
            Fp16Vector w(256 * 256), x(256), y;
            for (auto &v : w)
                v = rng.nextFp16();
            for (auto &v : x)
                v = rng.nextFp16();
            return blas.gemv(w, 256, 256, x, y).ns;
        };
        printRow({"ABMR/SBMR seq", fmtNs(small_gemv(base)),
                  fmtNs(gemvNs(base)), fmtNs(addNs(base))},
                 16);
        printRow({"register-only", fmtNs(small_gemv(fast)),
                  fmtNs(gemvNs(fast)), fmtNs(addNs(fast))},
                 16);
    }

    printHeader("Ablation: PIM units per pCH (cost vs bandwidth, "
                "Section III-A)");
    printRow({"units/pCH", "banks/unit", "ADD1 time"}, 14);
    for (unsigned units : {2u, 4u, 8u}) {
        SystemConfig cfg = SystemConfig::pimHbmSystem();
        cfg.pim.unitsPerPch = units;
        cfg.geometry.bankGroupsPerPch = units / 2;
        // Keep 2 banks per unit; fewer bank groups = fewer banks.
        printRow({std::to_string(units),
                  std::to_string(cfg.geometry.banksPerPch() / units),
                  fmtNs(addNs(cfg))},
                 14);
    }
}

void
BM_AblationGrfDepth(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.pim.grfPerHalf = static_cast<unsigned>(state.range(0));
    cfg.pim.crfEntries = 64;
    double ns = 0;
    for (auto _ : state)
        ns = addNs(cfg);
    state.counters["sim_ns"] = ns;
}
BENCHMARK(BM_AblationGrfDepth)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printAblations();
    return 0;
}
