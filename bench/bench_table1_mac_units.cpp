/**
 * @file
 * Table I: relative area and energy/op of MAC units in a 20 nm DRAM
 * process (INT16/INT8x2/FP16/BFLOAT16/FP32), plus the structural model
 * estimate behind the trade-off discussion of Section III-C.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/bf16.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "energy/energy_model.h"

using namespace pimsim;
using namespace pimsim::bench;

namespace {

const MacFormat kFormats[] = {
    MacFormat::Int16Acc48, MacFormat::Int8Acc48, MacFormat::Int8Acc32,
    MacFormat::Fp16,       MacFormat::Bf16,      MacFormat::Fp32,
};

void
printTable1()
{
    printHeader("Table I: relative area and energy/op of MAC units "
                "(normalised to INT16 w/ 48-bit accumulator)");
    printRow({"format", "area", "energy/op", "model-area", "model-energy"},
             24);
    for (MacFormat f : kFormats) {
        const auto [area_est, energy_est] = macModelEstimate(f);
        printRow({macFormatName(f), fmt(macRelativeArea(f)),
                  fmt(macRelativeEnergy(f)), fmt(area_est),
                  fmt(energy_est)},
                 24);
    }
    std::printf("\nSection III-C takeaways checked by this harness:\n"
                "  - FP32 MACs are ~4x the area of INT16: impractical "
                "in-DRAM.\n"
                "  - BF16 is slightly smaller/more efficient than FP16, "
                "but FP16 is\n    natively supported by host software "
                "stacks, so the product ships FP16.\n");
}

/** Throughput microbenchmarks of the software datapaths the simulator
 *  executes per lane (FP16 vs BF16 MAC). */
void
BM_Fp16Mac(benchmark::State &state)
{
    Rng rng(1);
    Fp16 a = rng.nextFp16(), b = rng.nextFp16(), acc;
    for (auto _ : state) {
        acc = fp16Mac(a, b, acc);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_Fp16Mac);

void
BM_Bf16Mac(benchmark::State &state)
{
    Rng rng(2);
    Bf16 a(rng.nextFloat(-2, 2)), b(rng.nextFloat(-2, 2)), acc;
    for (auto _ : state) {
        acc = bf16Mac(a, b, acc);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_Bf16Mac);

void
BM_MacAreaModel(benchmark::State &state)
{
    const MacFormat f = kFormats[state.range(0)];
    for (auto _ : state) {
        auto est = macModelEstimate(f);
        benchmark::DoNotOptimize(est);
    }
    state.counters["rel_area"] = macRelativeArea(f);
    state.counters["rel_energy"] = macRelativeEnergy(f);
    state.SetLabel(macFormatName(f));
}
BENCHMARK(BM_MacAreaModel)->DenseRange(0, 5)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable1();
    return 0;
}
