#!/usr/bin/env bash
# Build the tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# run the full test suite. Usage:
#
#   scripts/run_sanitized_tests.sh [build-dir]
#
# The sanitized build lives in its own directory (default build-asan) so
# it never disturbs the regular build tree.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPIMSIM_SANITIZE=address,undefined
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
