#!/usr/bin/env bash
# Build the tree with sanitizers and run the test suite. Usage:
#
#   scripts/run_sanitized_tests.sh [build-dir] [sanitizers] [ctest-regex]
#
#   build-dir    sanitized build tree (default: build-asan)
#   sanitizers   comma list for PIMSIM_SANITIZE
#                (default: address,undefined; use "thread" for TSan)
#   ctest-regex  optional -R filter (default: whole suite)
#
# Examples:
#   scripts/run_sanitized_tests.sh                       # ASan+UBSan, all
#   scripts/run_sanitized_tests.sh build-tsan thread \
#       'parallel_test|system_test'                      # TSan stress
#
# Each sanitized build lives in its own directory so it never disturbs
# the regular build tree.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
sanitizers="${2:-address,undefined}"
test_regex="${3:-}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPIMSIM_SANITIZE="${sanitizers}"
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "$(nproc)")
if [[ -n "${test_regex}" ]]; then
    ctest_args+=(-R "${test_regex}")
fi
ctest "${ctest_args[@]}"
