/**
 * @file
 * Memory requests as seen by a per-pCH memory controller.
 *
 * Host LD/ST instructions become Read/Write requests. The PIM device
 * driver additionally issues explicit row-management requests (Activate/
 * Precharge) to drive the paper's ACT+PRE mode-transition sequences
 * (Fig. 3); the commands that reach the DRAM device are still plain
 * JEDEC commands.
 */

#ifndef PIMSIM_MEM_REQUEST_H
#define PIMSIM_MEM_REQUEST_H

#include <cstdint>

#include "common/types.h"
#include "dram/address.h"
#include "dram/datastore.h"
#include "dram/ecc.h"

namespace pimsim {

/** Request types a controller accepts. */
enum class RequestType : std::uint8_t
{
    Read,         ///< one 32 B burst read
    Write,        ///< one 32 B burst write
    Activate,     ///< open a specific row (driver-initiated)
    Precharge,    ///< close the addressed bank's row
    PrechargeAll, ///< close every row in the pCH
};

/** One request to a single pseudo channel. */
struct MemRequest
{
    RequestType type = RequestType::Read;
    /** Coordinates within the pCH (channel field is redundant here). */
    DramCoord coord;
    /** Payload for writes. */
    Burst data{};
    /** Issue-order token assigned by the enqueuer. */
    std::uint64_t id = 0;
    /**
     * In-order (PIM) request: may not be reordered with respect to other
     * ordered requests beyond the controller's ordered window.
     */
    bool ordered = false;
};

/** A completed request, reported back to the issuer. */
struct MemResponse
{
    std::uint64_t id = 0;
    RequestType type = RequestType::Read;
    /** Read payload (or intercepted-register read payload). */
    Burst data{};
    /** Cycle at which data was valid / the write was accepted. */
    Cycle completion = 0;
    /** On-die ECC outcome of the array access behind a Read. */
    EccStatus ecc = EccStatus::Ok;
};

} // namespace pimsim

#endif // PIMSIM_MEM_REQUEST_H
