/**
 * @file
 * Last-level cache model for the host processor.
 *
 * A set-associative, write-back, write-allocate cache with LRU
 * replacement. The host baseline filters its memory accesses through
 * this cache; the resulting miss rate reproduces the batch-size
 * behaviour of Fig. 10 (B1 streams at ~100% misses, batching raises
 * reuse). PIM regions are uncacheable (Section VIII "Cache Bypassing")
 * and never enter the cache.
 */

#ifndef PIMSIM_MEM_LLC_H
#define PIMSIM_MEM_LLC_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace pimsim {

/** LLC geometry. */
struct LlcConfig
{
    std::uint64_t capacityBytes = 4ull << 20; ///< 4 MiB
    unsigned ways = 16;
    unsigned lineBytes = 64;
};

/** Outcome of one cache access. */
struct LlcResult
{
    bool hit = false;
    /** Address of a dirty line evicted by this access (write-back). */
    std::optional<Addr> writeback;
};

/** Functional set-associative LRU cache. */
class Llc
{
  public:
    explicit Llc(const LlcConfig &config);

    /** Access one address; allocates on miss. */
    LlcResult access(Addr addr, bool is_write);

    /** Invalidate everything (kernel boundary, uncacheable remap). */
    void flush();

    double missRate() const;
    std::uint64_t accesses() const { return hits_ + misses_; }
    std::uint64_t misses() const { return misses_; }

    const LlcConfig &config() const { return config_; }
    StatGroup &stats() { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    LlcConfig config_;
    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ * ways, set-major
    std::uint64_t useCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    StatGroup stats_;
};

} // namespace pimsim

#endif // PIMSIM_MEM_LLC_H
