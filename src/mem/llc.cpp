#include "mem/llc.h"

#include "common/bits.h"
#include "common/logging.h"

namespace pimsim {

Llc::Llc(const LlcConfig &config)
    : config_(config),
      numSets_(static_cast<unsigned>(config.capacityBytes /
                                     (config.ways * config.lineBytes))),
      lines_(static_cast<std::size_t>(numSets_) * config.ways),
      stats_("llc")
{
    PIMSIM_ASSERT(isPowerOfTwo(numSets_), "LLC sets must be a power of two");
    PIMSIM_ASSERT(isPowerOfTwo(config.lineBytes), "LLC line size");
}

LlcResult
Llc::access(Addr addr, bool is_write)
{
    const Addr line_addr = addr / config_.lineBytes;
    const unsigned set = static_cast<unsigned>(line_addr % numSets_);
    const Addr tag = line_addr / numSets_;
    Line *set_base = &lines_[static_cast<std::size_t>(set) * config_.ways];

    ++useCounter_;
    LlcResult result;

    // Hit?
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = set_base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useCounter_;
            line.dirty = line.dirty || is_write;
            ++hits_;
            result.hit = true;
            return result;
        }
    }

    // Miss: find a victim (invalid first, else LRU).
    ++misses_;
    Line *victim = set_base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = set_base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        const Addr victim_line = victim->tag * numSets_ + set;
        result.writeback = victim_line * config_.lineBytes;
        stats_.add("writebacks");
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = useCounter_;
    return result;
}

void
Llc::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

double
Llc::missRate() const
{
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(total);
}

} // namespace pimsim
