/**
 * @file
 * Per-pseudo-channel memory controller.
 *
 * Implements an FR-FCFS scheduler with an open-page policy (Rixner et
 * al., the scheduling the paper's Section IV-C motivates AAM against),
 * write draining, and all-bank refresh. Ordered (PIM) requests are only
 * reorderable within a configurable window, modelling the AAM tolerance
 * of the GRF depth; window 1 is strict in-order, a huge window models the
 * fence-free in-order-capable controller studied in Section VII-B.
 */

#ifndef PIMSIM_MEM_CONTROLLER_H
#define PIMSIM_MEM_CONTROLLER_H

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "dram/pseudo_channel.h"
#include "mem/request.h"
#include "pim/pim_channel.h"
#include "reliability/mem_error.h"

namespace pimsim {

/** Scheduler and queue configuration. */
struct ControllerConfig
{
    /** Request queue capacity. */
    unsigned queueDepth = 96;
    /** FR-FCFS candidate window for unordered (host) requests. */
    unsigned reorderWindow = 48;
    /** Reorder window for ordered (PIM) requests; 1 = strict in-order.
     *  The default 8 models FR-FCFS reordering that AAM tolerates within
     *  one GRF window (Section IV-C). */
    unsigned orderedWindow = 8;
    /** Enable periodic all-bank refresh. */
    bool refreshEnabled = true;
    /** Close a row after this many idle cycles (0 = leave open). */
    unsigned rowIdleTimeout = 0;
    /** Enable the background ECC scrubber (patrol scrub). */
    bool scrubEnabled = false;
    /** Cycles between scrub steps. */
    Cycle scrubInterval = 50000;
    /** Bursts checked per scrub step (when the controller is idle). */
    unsigned scrubBurstsPerStep = 8;
};

/**
 * One pseudo channel's controller, device, and (optionally) PIM logic.
 */
class MemoryController
{
  public:
    /**
     * @param with_pim  attach PIM execution units to the channel
     *                  (a PIM-HBM device vs a standard HBM device)
     */
    MemoryController(const HbmGeometry &geom, const HbmTiming &timing,
                     const ControllerConfig &config, bool with_pim,
                     const PimConfig &pim_config);

    /** True if another request can be accepted. */
    bool canEnqueue() const { return queue_.size() < config_.queueDepth; }

    /** Enqueue a request; the caller must have checked canEnqueue(). */
    void enqueue(const MemRequest &request);

    /**
     * Advance the controller at cycle `now`: issue at most one command.
     * @return the next cycle at which calling tick could make progress
     *         (kNoCycle when fully idle).
     */
    Cycle tick(Cycle now);

    /** All requests completed on or before `now` (destructive drain). */
    std::vector<MemResponse> drainResponses(Cycle now);

    /**
     * True iff no queued requests remain and every response has reached
     * its completion time (i.e. nothing needs further simulation —
     * completed responses may still await draining by the issuer).
     */
    bool idle(Cycle now) const
    {
        if (!queue_.empty())
            return false;
        for (const auto &r : pendingResponses_) {
            if (r.completion > now)
                return false;
        }
        return true;
    }

    /** Number of requests waiting in the queue. */
    std::size_t queuedRequests() const { return queue_.size(); }

    PseudoChannel &channel() { return *channel_; }
    const PseudoChannel &channel() const { return *channel_; }

    /** The PIM side of this channel (nullptr on a plain HBM device). */
    PimChannel *pim() { return pimChannel_.get(); }
    const PimChannel *pim() const { return pimChannel_.get(); }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    const ControllerConfig &config() const { return config_; }

    /** Override the ordered-request reorder window (fence study). */
    void setOrderedWindow(unsigned window) { config_.orderedWindow = window; }

    /**
     * Attach the system error log. Installs a DataStore hook so every
     * ECC event on a demand access (host RD or PIM operand fetch) is
     * recorded as a machine-check-style event attributed to `channel`.
     */
    void setErrorSink(MemErrorLog *log, unsigned channel);

    /**
     * Run the patrol scrubber if a scrub step is due at `now`. Walks
     * allocated rows burst by burst, repairing correctable faults in
     * place; runs only while the request queue is empty (idle cycles),
     * deferring one interval otherwise.
     *
     * @return the cycle of the next due scrub step (kNoCycle when
     *         scrubbing is disabled).
     */
    Cycle scrubTick(Cycle now);

    /** Next cycle a scrub step wants to run (kNoCycle when disabled). */
    Cycle nextScrubDue() const
    {
        return config_.scrubEnabled ? nextScrub_ : kNoCycle;
    }

    /** Enable/disable scrubbing at runtime (benchmark sweeps). */
    void setScrubEnabled(bool enabled) { config_.scrubEnabled = enabled; }

  private:
    struct Queued
    {
        MemRequest request;
        Cycle arrival;
        /** Set when the request needed a PRE/ACT (row-buffer miss). */
        bool rowMissed = false;
    };

    /** The command a queued request needs next, given bank state. */
    Command nextCommandFor(const Queued &entry) const;

    /** True if the request's target row is open (column command ready). */
    bool isRowHit(const Queued &entry) const;

    /** Pick the queue index to serve next (FR-FCFS). */
    std::optional<std::size_t> pickCandidate() const;

    Cycle refreshTick(Cycle now);
    /** Opportunistic PRE/ACT for a pending row-miss (host requests). */
    Cycle rowPrepTick(Cycle now, std::size_t chosen);
    void completeRequest(const Queued &entry, const IssueResult &result,
                         Cycle now);

    HbmGeometry geom_;
    HbmTiming timing_;
    ControllerConfig config_;
    std::unique_ptr<PseudoChannel> channel_;
    std::unique_ptr<PimChannel> pimChannel_;

    std::deque<Queued> queue_;
    std::vector<MemResponse> pendingResponses_;

    Cycle nextRefresh_;
    bool refreshing_ = false;
    /** Direction of the last issued column command (streak scheduling). */
    bool lastColWasWrite_ = false;

    // Reliability: error reporting and patrol scrub state.
    MemErrorLog *errorLog_ = nullptr;
    unsigned channelId_ = 0;
    /** Cycle stamp applied to error events raised from inside tick(). */
    Cycle lastNow_ = 0;
    Cycle nextScrub_;
    /** Flat (row-index * colsPerRow + col) scrub cursor. */
    std::size_t scrubPos_ = 0;

    StatGroup stats_;
};

} // namespace pimsim

#endif // PIMSIM_MEM_CONTROLLER_H
