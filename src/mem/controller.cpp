#include "mem/controller.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim {

MemoryController::MemoryController(const HbmGeometry &geom,
                                   const HbmTiming &timing,
                                   const ControllerConfig &config,
                                   bool with_pim,
                                   const PimConfig &pim_config)
    : geom_(geom), timing_(timing), config_(config),
      channel_(std::make_unique<PseudoChannel>(geom, timing)),
      nextRefresh_(timing.tREFI), nextScrub_(config.scrubInterval),
      stats_("ctrl")
{
    if (with_pim)
        pimChannel_ = std::make_unique<PimChannel>(pim_config, *channel_);
}

void
MemoryController::setErrorSink(MemErrorLog *log, unsigned channel)
{
    errorLog_ = log;
    channelId_ = channel;
    channel_->dataStore().setEccHook(
        [this](unsigned bank, unsigned row, unsigned col,
               EccStatus status) {
            const bool fatal = status == EccStatus::Uncorrectable;
            stats_.add(fatal ? "ecc.uncorrectable" : "ecc.corrected");
            if (!errorLog_)
                return;
            MemErrorEvent event;
            event.severity = fatal
                                 ? MemErrorEvent::Severity::Uncorrectable
                                 : MemErrorEvent::Severity::Corrected;
            event.origin = MemErrorEvent::Origin::Access;
            event.channel = channelId_;
            event.bank = bank;
            event.row = row;
            event.col = col;
            event.cycle = lastNow_;
            errorLog_->record(event);
        });
}

Cycle
MemoryController::scrubTick(Cycle now)
{
    if (!config_.scrubEnabled)
        return kNoCycle;
    if (now < nextScrub_)
        return nextScrub_;
    lastNow_ = now;
    const Cycle interval = std::max<Cycle>(config_.scrubInterval, 1);
    nextScrub_ = now + interval;

    // Patrol scrub steals only idle cycles: defer while demand requests
    // are queued (Section VIII's scrubber must not cost PIM bandwidth).
    if (!queue_.empty()) {
        stats_.add("scrub.deferred");
        return nextScrub_;
    }

    DataStore &store = channel_->dataStore();
    const auto rows = store.allocatedRows();
    if (rows.empty())
        return nextScrub_;
    const std::size_t bursts = rows.size() * geom_.colsPerRow;
    stats_.add("scrub.steps");

    for (unsigned n = 0; n < config_.scrubBurstsPerStep; ++n) {
        if (scrubPos_ >= bursts) {
            scrubPos_ = 0;
            stats_.add("scrub.passes");
        }
        const auto &[bank, row] = rows[scrubPos_ / geom_.colsPerRow];
        const auto col =
            static_cast<unsigned>(scrubPos_ % geom_.colsPerRow);
        const ScrubOutcome outcome = store.scrubBurst(bank, row, col);
        stats_.add("scrub.bursts");
        if (outcome.corrected) {
            stats_.add("scrub.corrected", outcome.corrected);
        }
        if (outcome.uncorrectable) {
            stats_.add("scrub.uncorrectable", outcome.uncorrectable);
        }
        if (errorLog_ && (outcome.corrected || outcome.uncorrectable)) {
            MemErrorEvent event;
            event.origin = MemErrorEvent::Origin::Scrub;
            event.channel = channelId_;
            event.bank = bank;
            event.row = row;
            event.col = col;
            event.cycle = now;
            event.severity = MemErrorEvent::Severity::Corrected;
            for (std::uint64_t i = 0; i < outcome.corrected; ++i)
                errorLog_->record(event);
            event.severity = MemErrorEvent::Severity::Uncorrectable;
            for (std::uint64_t i = 0; i < outcome.uncorrectable; ++i)
                errorLog_->record(event);
        }
        ++scrubPos_;
    }
    return nextScrub_;
}

void
MemoryController::enqueue(const MemRequest &request)
{
    PIMSIM_ASSERT(canEnqueue(), "enqueue on full controller queue");
    queue_.push_back(Queued{request, 0, false});
    stats_.add("enqueued");
    // Arrival-sampled queue depth: queueDepthSum / enqueued = mean depth
    // an arriving request finds ahead of it.
    stats_.add("queueDepthSum", queue_.size() - 1);
}

bool
MemoryController::isRowHit(const Queued &entry) const
{
    const auto &r = entry.request;
    const unsigned flat =
        r.coord.bankGroup * geom_.banksPerBankGroup + r.coord.bank;
    return channel_->bank(flat).rowOpen(r.coord.row);
}

Command
MemoryController::nextCommandFor(const Queued &entry) const
{
    const auto &r = entry.request;
    const unsigned bg = r.coord.bankGroup;
    const unsigned ba = r.coord.bank;
    const unsigned flat = bg * geom_.banksPerBankGroup + ba;
    const Bank &bank = channel_->bank(flat);

    switch (r.type) {
      case RequestType::Read:
      case RequestType::Write:
      case RequestType::Activate:
        if (bank.state == BankState::Active && bank.openRow != r.coord.row)
            return Command::pre(bg, ba);
        if (bank.state == BankState::Idle)
            return Command::act(bg, ba, r.coord.row);
        return r.type == RequestType::Write
                   ? Command::wr(bg, ba, r.coord.col, r.data)
                   : Command::rd(bg, ba, r.coord.col);
      case RequestType::Precharge:
        return Command::pre(bg, ba);
      case RequestType::PrechargeAll:
        return Command::preAll();
    }
    PIMSIM_PANIC("bad request type");
}

std::optional<std::size_t>
MemoryController::pickCandidate() const
{
    if (queue_.empty())
        return std::nullopt;

    // Build the candidate window. Ordered (PIM) requests never cross
    // unordered ones and only reorder among the first orderedWindow
    // ordered entries (the AAM tolerance of Section IV-C).
    const bool head_ordered = queue_.front().request.ordered;
    const unsigned window =
        head_ordered ? config_.orderedWindow : config_.reorderWindow;

    std::size_t limit = 0;
    for (; limit < queue_.size() && limit < window; ++limit) {
        if (queue_[limit].request.ordered != head_ordered)
            break;
    }
    if (limit == 0)
        limit = 1;

    // A candidate may not bypass an older access to the same burst
    // address (read-after-write / write-after-write ordering).
    auto conflicts_with_older = [&](std::size_t i) {
        const auto &c = queue_[i].request.coord;
        for (std::size_t j = 0; j < i; ++j) {
            const auto &o = queue_[j].request;
            if ((o.type == RequestType::Read ||
                 o.type == RequestType::Write) &&
                o.coord == c) {
                return true;
            }
        }
        return false;
    };

    // FR-FCFS with read/write streaks: switching the data-bus direction
    // costs a turnaround penalty, so among row hits prefer the oldest
    // request matching the last issued column type (write draining),
    // then any oldest row hit, then the oldest request.
    std::optional<std::size_t> any_hit;
    for (std::size_t i = 0; i < limit; ++i) {
        const auto &e = queue_[i];
        const auto t = e.request.type;
        if ((t == RequestType::Read || t == RequestType::Write) &&
            isRowHit(e) && !conflicts_with_older(i)) {
            if ((t == RequestType::Write) == lastColWasWrite_)
                return i;
            if (!any_hit)
                any_hit = i;
        }
    }
    if (any_hit)
        return any_hit;
    return 0;
}

Cycle
MemoryController::rowPrepTick(Cycle now, std::size_t chosen)
{
    // Find the oldest unordered row-miss in the window whose bank is not
    // wanted (at its currently open row) by any other windowed request,
    // and issue its PRE or ACT if legal right now.
    const std::size_t limit =
        std::min<std::size_t>(queue_.size(), config_.reorderWindow);
    Cycle best_wait = kNoCycle;
    for (std::size_t i = 0; i < limit; ++i) {
        if (i == chosen)
            continue;
        const auto &e = queue_[i];
        const auto type = e.request.type;
        if (e.request.ordered ||
            (type != RequestType::Read && type != RequestType::Write)) {
            continue;
        }
        if (isRowHit(e))
            continue;
        const unsigned flat = e.request.coord.bankGroup *
                                  geom_.banksPerBankGroup +
                              e.request.coord.bank;
        const Bank &bank = channel_->bank(flat);
        // Do not close a row that other windowed requests still hit.
        if (bank.state == BankState::Active) {
            bool wanted = false;
            for (std::size_t j = 0; j < limit && !wanted; ++j) {
                if (j == i)
                    continue;
                const auto &o = queue_[j].request;
                wanted = (o.type == RequestType::Read ||
                          o.type == RequestType::Write) &&
                         o.coord.bankGroup * geom_.banksPerBankGroup +
                                 o.coord.bank ==
                             flat &&
                         o.coord.row == bank.openRow;
            }
            if (wanted)
                continue;
        }
        const Command prep =
            bank.state == BankState::Active
                ? Command::pre(e.request.coord.bankGroup,
                               e.request.coord.bank)
                : Command::act(e.request.coord.bankGroup,
                               e.request.coord.bank, e.request.coord.row);
        const Cycle t = channel_->earliestIssue(prep, now);
        if (t == now) {
            channel_->issue(prep, now);
            stats_.add(std::string("prep.") + commandTypeName(prep.type));
            return now;
        }
        best_wait = std::min(best_wait, t);
    }
    return best_wait;
}

void
MemoryController::completeRequest(const Queued &entry,
                                  const IssueResult &result, Cycle now)
{
    MemResponse resp;
    resp.id = entry.request.id;
    resp.type = entry.request.type;
    switch (entry.request.type) {
      case RequestType::Read:
        resp.data = result.data;
        resp.completion = result.dataCycle;
        resp.ecc = result.ecc;
        break;
      case RequestType::Write:
        resp.completion = now + timing_.tCWL + timing_.tBL;
        break;
      default:
        resp.completion = now;
        break;
    }
    pendingResponses_.push_back(resp);
}

Cycle
MemoryController::refreshTick(Cycle now)
{
    if (channel_->anyBankActive()) {
        const Command cmd = Command::preAll();
        const Cycle t = channel_->earliestIssue(cmd, now);
        if (t == now) {
            channel_->issue(cmd, now);
            stats_.add("refreshPreA");
            return now + 1;
        }
        return t;
    }
    const Command cmd = Command::refresh();
    const Cycle t = channel_->earliestIssue(cmd, now);
    if (t == now) {
        channel_->issue(cmd, now);
        stats_.add("refresh");
        refreshing_ = false;
        nextRefresh_ = now + timing_.tREFI;
        return queue_.empty() ? nextRefresh_ : now + 1;
    }
    return t;
}

Cycle
MemoryController::tick(Cycle now)
{
    lastNow_ = now;
    // The earliest moment anything interesting can happen next.
    Cycle next = kNoCycle;
    if (!pendingResponses_.empty()) {
        for (const auto &r : pendingResponses_)
            next = std::min(next, std::max(r.completion, now + 1));
    }

    if (config_.refreshEnabled && !refreshing_ && now >= nextRefresh_)
        refreshing_ = true;

    if (refreshing_)
        return std::min(next, refreshTick(now));

    const auto candidate = pickCandidate();
    if (!candidate) {
        if (config_.refreshEnabled)
            next = std::min(next, std::max(nextRefresh_, now + 1));
        return next;
    }

    Queued &entry = queue_[*candidate];
    const auto &r = entry.request;
    const unsigned flat =
        r.coord.bankGroup * geom_.banksPerBankGroup + r.coord.bank;
    const Bank &bank = channel_->bank(flat);

    // Row-management requests that are already satisfied complete
    // without touching the command bus.
    const bool act_satisfied =
        r.type == RequestType::Activate && bank.rowOpen(r.coord.row);
    const bool pre_satisfied =
        r.type == RequestType::Precharge && bank.state == BankState::Idle;
    const bool prea_satisfied =
        r.type == RequestType::PrechargeAll && channel_->allBanksIdle();
    if (act_satisfied || pre_satisfied || prea_satisfied) {
        completeRequest(entry, IssueResult{}, now);
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(*candidate));
        return std::min(next, now + 1);
    }

    const Command cmd = nextCommandFor(entry);
    const Cycle t = channel_->earliestIssue(cmd, now);
    if (t != now) {
        // The preferred command is blocked (tCCD gap, turnaround, ...):
        // use the spare command-bus slot to prepare a row for a pending
        // row-miss (PRE/ACT overlap with the column stream). Only host
        // (unordered) requests are eligible — hoisting an ACT over
        // outstanding AB-PIM triggers would change the open row they
        // execute against.
        if (!entry.request.ordered) {
            const Cycle prep = rowPrepTick(now, *candidate);
            if (prep == now)
                return std::min(next, now + 1);
            next = std::min(next, prep);
        }
        return std::min(next, t);
    }

    const IssueResult result = channel_->issue(cmd, now);
    stats_.add(std::string("cmd.") + commandTypeName(cmd.type));

    const bool is_column =
        cmd.type == CommandType::Rd || cmd.type == CommandType::Wr;

    // A PRE or ACT issued on behalf of a column request marks it as a
    // row-buffer miss; the hit/miss verdict is recorded when its column
    // command finally issues.
    if (!is_column && (entry.request.type == RequestType::Read ||
                       entry.request.type == RequestType::Write)) {
        entry.rowMissed = true;
    }
    const bool request_done =
        is_column ||
        (r.type == RequestType::Activate && cmd.type == CommandType::Act) ||
        (r.type == RequestType::Precharge && cmd.type == CommandType::Pre) ||
        (r.type == RequestType::PrechargeAll &&
         cmd.type == CommandType::PreA);

    if (is_column) {
        lastColWasWrite_ = cmd.type == CommandType::Wr;
        stats_.add("colIssued");
        stats_.add(entry.rowMissed ? "rowMiss" : "rowHit");
        if (result.intercepted) {
            stats_.add("pimIssued");
            // Command-mix bucket for AB-PIM triggers (a RD/WR column
            // the PIM logic consumed): cmd.RD/cmd.WR count the bus
            // command, cmd.RD-PIM separates the PIM-executing subset.
            stats_.add("cmd.RD-PIM");
        }
    }

    if (request_done) {
        completeRequest(entry, result, now);
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(*candidate));
    }
    return std::min(next, now + 1);
}

std::vector<MemResponse>
MemoryController::drainResponses(Cycle now)
{
    std::vector<MemResponse> done;
    auto it = pendingResponses_.begin();
    while (it != pendingResponses_.end()) {
        if (it->completion <= now) {
            done.push_back(*it);
            it = pendingResponses_.erase(it);
        } else {
            ++it;
        }
    }
    std::sort(done.begin(), done.end(),
              [](const MemResponse &a, const MemResponse &b) {
                  return a.completion < b.completion ||
                         (a.completion == b.completion && a.id < b.id);
              });
    return done;
}

} // namespace pimsim
