/**
 * @file
 * Health-driven request routing across replicated hosts.
 *
 * The router places data-parallel replicas of the served application on
 * every host and keeps one windowed failure detector per host — the
 * four-state machine a production load balancer runs:
 *
 *   Healthy ----(failure fraction >= suspect threshold)----> Suspect
 *   Suspect ----(fraction >= down threshold)---------------> Down
 *   Suspect ----(fraction falls back under suspect)--------> Healthy
 *   Down -------(a probe succeeds)-------------------------> Recovering
 *   Recovering -(K consecutive successes)------------------> Healthy
 *   Recovering -(any failure)------------------------------> Down
 *
 * Outcomes come from real dispatches and from active probes; the router
 * schedules a probe at every probe interval for any host that is not
 * Healthy, which is what lets a Down host ever come back. Routing rules:
 * Down hosts are never picked; Suspect hosts are skipped while any
 * Healthy/Recovering host can take the work — and a cross-host retry or
 * a hedge never lands on a Suspect host at all (re-picking a replica the
 * detector already distrusts is how retry storms start).
 *
 * With failover disabled the router degrades to static round-robin over
 * all replicas (the ablation the cluster bench measures); the trackers
 * still observe outcomes so the report shows what detection would have
 * seen.
 */

#ifndef PIMSIM_CLUSTER_ROUTER_H
#define PIMSIM_CLUSTER_ROUTER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/scheduler.h" // kNoEventNs

namespace pimsim::cluster {

/** The serving layer's "no event pending" sentinel, shared here. */
using serve::kNoEventNs;

/** Failure-detector states. */
enum class HealthState
{
    Healthy,    ///< full traffic
    Suspect,    ///< error window elevated: no retries or hedges land here
    Down,       ///< no traffic; probes only
    Recovering, ///< probation traffic after a successful probe
};

const char *healthStateName(HealthState state);

/** Failure-detection configuration (per host). */
struct HealthConfig
{
    /** Sliding window of most recent dispatch/probe outcomes. */
    unsigned window = 16;
    /** Outcomes required in the window before any transition. */
    unsigned minSamples = 4;
    /** Failure fraction at or above which Healthy becomes Suspect. */
    double suspectThreshold = 0.3;
    /** Failure fraction at or above which the host is declared Down. */
    double downThreshold = 0.6;
    /** Probe cadence for hosts that are not Healthy. */
    double probeIntervalNs = 1'000'000.0;
    /** Consecutive Recovering successes required to re-enter Healthy. */
    unsigned recoverySuccesses = 3;
};

/** One host's windowed failure detector. */
class HealthTracker
{
  public:
    HealthTracker() = default;
    explicit HealthTracker(const HealthConfig &config) : config_(config) {}

    HealthState state() const { return state_; }
    double stateSinceNs() const { return stateSinceNs_; }

    /** Report one dispatch or probe outcome observed at `now_ns`. */
    void record(bool ok, double now_ns);

    /** Total state transitions so far. */
    std::uint64_t transitions() const { return transitions_; }
    /** Times the given state was entered. */
    std::uint64_t entries(HealthState state) const
    {
        return entries_[static_cast<unsigned>(state)];
    }

  private:
    void transition(HealthState next, double now_ns);
    double failureFraction() const;

    HealthConfig config_;
    HealthState state_ = HealthState::Healthy;
    double stateSinceNs_ = 0.0;
    std::deque<bool> window_; ///< true = failure
    unsigned windowErrors_ = 0;
    unsigned consecutiveOk_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t entries_[4] = {0, 0, 0, 0};
};

/** Router policy knobs. */
struct RouterConfig
{
    /**
     * Health-driven routing. Off: static round-robin over every
     * replica, no probes — the naive cluster the bench degrades.
     */
    bool failover = true;
    HealthConfig health;
};

/** Replica placement + health bookkeeping + probe scheduling. */
class ClusterRouter
{
  public:
    ClusterRouter(const RouterConfig &config, unsigned num_hosts);

    unsigned numHosts() const
    {
        return static_cast<unsigned>(trackers_.size());
    }

    HealthState state(unsigned host) const
    {
        return trackers_[host].state();
    }
    const HealthTracker &tracker(unsigned host) const
    {
        return trackers_[host];
    }

    /**
     * Report a dispatch or probe outcome of `host`. Drives the state
     * machine and (re)schedules probing while the host is not Healthy.
     */
    void recordOutcome(unsigned host, bool ok, double now_ns);

    /**
     * May a fresh dispatch route to `host`? Retries and hedges pass
     * `avoid_suspect` — they must not re-pick a distrusted replica.
     * With failover disabled every host is always eligible.
     */
    bool eligible(unsigned host, bool avoid_suspect) const;

    /** Hosts not counted as Down (capacity estimation). */
    unsigned aliveHosts() const;

    /** Static round-robin pick (failover-disabled path). */
    unsigned nextRoundRobin();

    /** Earliest pending probe (kNoEventNs when none). */
    double nextProbeNs() const;
    /** Host whose probe is due at `now_ns` (-1 when none). */
    int dueProbeHost(double now_ns) const;
    /** Consume the due probe of `host` (recordOutcome reschedules). */
    void takeProbe(unsigned host);

    std::uint64_t probesSent(unsigned host) const
    {
        return probesSent_[host];
    }
    std::uint64_t totalTransitions() const;

  private:
    RouterConfig config_;
    std::vector<HealthTracker> trackers_;
    std::vector<double> probeAtNs_;
    std::vector<std::uint64_t> probesSent_;
    unsigned roundRobin_ = 0;
};

} // namespace pimsim::cluster

#endif // PIMSIM_CLUSTER_ROUTER_H
