#include "cluster/host.h"

#include "common/logging.h"
#include "pim/pim_config.h"

namespace pimsim::cluster {

HostModel::HostModel(unsigned id, const SystemConfig &base,
                     unsigned num_stacks, const LinkConfig &link,
                     std::shared_ptr<serve::ServiceTimeCache> cache)
    : id_(id), link_(link)
{
    PIMSIM_ASSERT(num_stacks >= 1, "a host needs >= 1 stack");
    PIMSIM_ASSERT(base.withPim(), "cluster hosts serve PIM-HBM stacks");

    // Carve the host's channel space into per-stack shards: equal
    // weights give each stack exactly its pchPerStack channels.
    const unsigned pim_rows =
        PimConfMap::forRows(base.geometry.rowsPerBank).firstReservedRow();
    plan_ = serve::ShardPlan::sharded(
        num_stacks * base.geometry.pchPerStack, pim_rows,
        std::vector<double>(num_stacks, 1.0));

    // Stacks are homogeneous, so one memoised stack-sized timing oracle
    // prices every stack.
    model_ = std::make_unique<serve::ShardServiceModel>(
        base, base.geometry.pchPerStack, std::move(cache));
    stacks_.resize(num_stacks);
}

int
HostModel::freeStack() const
{
    for (unsigned s = 0; s < stacks_.size(); ++s) {
        if (!stacks_[s].busy && !stacks_[s].quarantined)
            return static_cast<int>(s);
    }
    return -1;
}

void
HostModel::quarantineStack(unsigned stack)
{
    PIMSIM_ASSERT(stack < stacks_.size(), "bad stack id ", stack);
    stacks_[stack].quarantined = true;
}

void
HostModel::restoreStack(unsigned stack)
{
    PIMSIM_ASSERT(stack < stacks_.size(), "bad stack id ", stack);
    stacks_[stack].quarantined = false;
}

unsigned
HostModel::activeStacks() const
{
    unsigned active = 0;
    for (const Stack &s : stacks_) {
        if (!s.quarantined)
            ++active;
    }
    return active;
}

void
HostModel::occupy(unsigned stack, double now_ns, double until_ns,
                  std::uint64_t dispatch)
{
    PIMSIM_ASSERT(stack < stacks_.size(), "bad stack id ", stack);
    PIMSIM_ASSERT(!stacks_[stack].busy, "stack ", stack, " already busy");
    PIMSIM_ASSERT(until_ns >= now_ns, "occupancy ends in the past");
    stacks_[stack].busy = true;
    stacks_[stack].sinceNs = now_ns;
    stacks_[stack].dispatch = dispatch;
    ++busy_;
    ++dispatches_;
    (void)until_ns; // completion is the engine's event, not the host's
}

void
HostModel::release(unsigned stack, double now_ns)
{
    PIMSIM_ASSERT(stack < stacks_.size(), "bad stack id ", stack);
    PIMSIM_ASSERT(stacks_[stack].busy, "stack ", stack, " is not busy");
    busyNs_ += now_ns - stacks_[stack].sinceNs;
    stacks_[stack].busy = false;
    --busy_;
}

} // namespace pimsim::cluster
