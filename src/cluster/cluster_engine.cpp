#include "cluster/cluster_engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/trace.h"

namespace pimsim::cluster {

void
ClusterReport::reconcile() const
{
    const std::uint64_t terminal =
        completed + shed + rejected + timedOut + failed;
    PIMSIM_ASSERT(terminal == submitted, "cluster accounting leak: ",
                  completed, " completed + ", shed, " shed + ", rejected,
                  " rejected + ", timedOut, " timed out + ", failed,
                  " failed != ", submitted, " submitted");
}

std::string
ClusterReport::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("horizon_ns", horizonNs);
    w.field("submitted", submitted);
    w.field("completed", completed);
    w.field("rejected", rejected);
    w.field("shed", shed);
    w.field("timed_out", timedOut);
    w.field("failed", failed);
    w.field("slo_violations", sloViolations);
    w.field("retries", retries);
    w.field("hedges_fired", hedgesFired);
    w.field("hedge_wins", hedgeWins);
    w.field("hedge_cancels", hedgeCancels);
    w.field("probes", probes);
    w.field("health_transitions", healthTransitions);
    w.field("throughput_rps", throughputRps);
    w.field("goodput_rps", goodputRps);
    w.key("e2e_ns").beginObject();
    w.field("mean", e2e.meanNs);
    w.field("p50", e2e.p50Ns);
    w.field("p95", e2e.p95Ns);
    w.field("p99", e2e.p99Ns);
    w.field("max", e2e.maxNs);
    w.endObject();
    w.key("hosts").beginArray();
    for (const auto &h : hosts) {
        w.beginObject();
        w.field("host", h.host);
        w.field("state", healthStateName(h.state));
        w.field("dispatches", h.dispatches);
        w.field("failures", h.failures);
        w.field("probes", h.probes);
        w.field("transitions", h.transitions);
        w.key("entries").beginObject();
        w.field("healthy", h.entries[0]);
        w.field("suspect", h.entries[1]);
        w.field("down", h.entries[2]);
        w.field("recovering", h.entries[3]);
        w.endObject();
        w.field("busy_ns", h.busyNs);
        w.field("utilization", h.utilization);
        w.field("link_utilization", h.linkUtilization);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.str();
}

ClusterEngine::ClusterEngine(const ClusterConfig &config)
    : config_(config),
      router_(config.router, config.numHosts),
      attemptH_(config.histBucketNs, config.histBuckets),
      e2eH_(config.histBucketNs, config.histBuckets)
{
    PIMSIM_ASSERT(config.numHosts >= 1, "a cluster needs >= 1 host");
    PIMSIM_ASSERT(config.maxAttempts >= 1, "need >= 1 dispatch attempt");
    PIMSIM_ASSERT(config.queueDepth >= 1, "need a router queue");

    auto cache = config_.cache ? config_.cache
                               : std::make_shared<serve::ServiceTimeCache>();
    config_.cache = cache;
    hosts_.reserve(config.numHosts);
    for (unsigned h = 0; h < config.numHosts; ++h) {
        hosts_.push_back(std::make_unique<HostModel>(
            h, config_.system, config_.stacksPerHost, config_.link, cache));
    }

    const Link &link = hosts_[0]->link();
    attemptEstimateNs_ = link.uncontendedNs(config_.link.requestBytes) +
                         hosts_[0]->serviceNs(config_.app, 1) +
                         link.uncontendedNs(config_.link.responseBytes);
    timeoutNs_ = config_.timeoutNs > 0.0 ? config_.timeoutNs
                                         : 6.0 * attemptEstimateNs_;

    hostFailures_.assign(config.numHosts, 0);
    traceState_.assign(config.numHosts, HealthState::Healthy);
    traceSinceNs_.assign(config.numHosts, 0.0);
}

void
ClusterEngine::setTrace(TraceSession *session)
{
    trace_ = session;
    if (trace_ == nullptr)
        return;
    trace_->setProcessName(kTracePidCluster, "cluster");
    trace_->setThreadName(kTracePidCluster, requestTid(), "router");
    for (unsigned h = 0; h < numHosts(); ++h) {
        trace_->setThreadName(kTracePidCluster, static_cast<int>(h),
                              "host" + std::to_string(h));
        traceSinceNs_[h] = nowNs_;
        traceState_[h] = router_.state(h);
    }
}

double
ClusterEngine::hedgeDelayNs() const
{
    double delay;
    if (attemptH_.count() >= config_.hedge.minSamples) {
        // The p95 scan walks every bucket; refresh it at most once per
        // 256 completions rather than per dispatch.
        if (hedgeDelaySamples_ == 0 ||
            attemptH_.count() - hedgeDelaySamples_ >= 256) {
            cachedHedgeDelayNs_ = attemptH_.p95();
            hedgeDelaySamples_ = attemptH_.count();
        }
        delay = cachedHedgeDelayNs_;
    } else {
        delay = config_.hedge.initialDelayNs > 0.0
                    ? config_.hedge.initialDelayNs
                    : 4.0 * attemptEstimateNs_;
    }
    return std::max(delay, config_.hedge.floorNs);
}

double
ClusterEngine::backlogEstimateNs() const
{
    const unsigned alive_hosts =
        config_.router.failover ? router_.aliveHosts() : numHosts();
    if (alive_hosts == 0)
        return kNoEventNs; // nobody can serve: shed everything
    const double alive_stacks =
        static_cast<double>(alive_hosts) *
        static_cast<double>(config_.stacksPerHost);
    // Work ahead of a new arrival: everything queued plus everything
    // already occupying a stack, spread over the surviving capacity.
    std::uint64_t in_flight = 0;
    for (const auto &host : hosts_)
        in_flight += host->busyStacks();
    return static_cast<double>(queue_.size() + in_flight) *
           attemptEstimateNs_ / alive_stacks;
}

bool
ClusterEngine::submit(double arrival_ns)
{
    PIMSIM_ASSERT(arrival_ns >= nowNs_, "arrival in the past");
    advanceTo(arrival_ns);
    ++submitted_;
    const std::uint64_t id = nextId_++;
    const double deadline =
        config_.deadlineNs > 0.0 ? arrival_ns + config_.deadlineNs : 0.0;

    Queued q{id, arrival_ns, deadline, 0, -1, {}};
    if (reqTracer_ != nullptr)
        q.trace = reqTracer_->begin(arrival_ns);

    if (queue_.size() >= config_.queueDepth) {
        ++rejected_;
        finishRequestTrace(q.trace, arrival_ns, deadline, nowNs_,
                           "rejected", /*erred=*/true, false, false);
        return false;
    }
    if (config_.admission && deadline > 0.0) {
        const double eta =
            nowNs_ + backlogEstimateNs() + attemptEstimateNs_;
        if (eta > deadline) {
            ++shed_;
            finishRequestTrace(q.trace, arrival_ns, deadline, nowNs_,
                               "shed", /*erred=*/true, false, false);
            return false;
        }
    }
    queue_.push_back(q);
    dispatchAll();
    return true;
}

void
ClusterEngine::advanceTo(double ns)
{
    PIMSIM_ASSERT(ns >= nowNs_, "cluster clock can only move forward");
    for (double e = nextEventNs(); e <= ns; e = nextEventNs()) {
        nowNs_ = e;
        processDue();
    }
    nowNs_ = std::max(nowNs_, ns);
    processDue();
}

void
ClusterEngine::drain()
{
    while (!queue_.empty() || !active_.empty()) {
        const double e = nextEventNs();
        PIMSIM_ASSERT(e != kNoEventNs, "cluster drain stuck with ",
                      queue_.size(), " queued and ", active_.size(),
                      " in flight");
        advanceTo(e);
    }
    if (trace_ != nullptr) {
        // Close the open health span of every host at the drain point.
        for (unsigned h = 0; h < numHosts(); ++h) {
            if (nowNs_ > traceSinceNs_[h]) {
                trace_->span(kTracePidCluster, static_cast<int>(h),
                             healthStateName(traceState_[h]), "health",
                             traceSinceNs_[h], nowNs_ - traceSinceNs_[h]);
                traceSinceNs_[h] = nowNs_;
            }
        }
    }
    report().reconcile();
}

double
ClusterEngine::nextEventNs() const
{
    double next = router_.nextProbeNs();
    for (const auto &[id, a] : active_) {
        (void)id;
        if (a.primary.active)
            next = std::min(next, a.primary.eventNs);
        if (a.hedge.active)
            next = std::min(next, a.hedge.eventNs);
        if (!a.hedgeFired && a.primary.active)
            next = std::min(next, a.hedgeAtNs);
    }
    for (const auto &q : queue_) {
        if (q.deadlineNs > 0.0)
            next = std::min(next, q.deadlineNs);
    }
    return next;
}

void
ClusterEngine::processDue()
{
    // Fixed phase order keeps same-timestamp ties deterministic:
    // probes, copy events (id order, primary before hedge), hedge
    // timers, queue expiry, then dispatch into the freed capacity.
    for (int h = router_.dueProbeHost(nowNs_); h >= 0;
         h = router_.dueProbeHost(nowNs_)) {
        fireProbe(static_cast<unsigned>(h));
    }

    std::vector<std::uint64_t> due;
    for (const auto &[id, a] : active_) {
        if ((a.primary.active && a.primary.eventNs <= nowNs_) ||
            (a.hedge.active && a.hedge.eventNs <= nowNs_))
            due.push_back(id);
    }
    for (const std::uint64_t id : due) {
        auto it = active_.find(id);
        if (it == active_.end())
            continue;
        Active &a = it->second;
        if (a.primary.active && a.primary.eventNs <= nowNs_)
            finishCopy(a, a.primary, /*is_hedge=*/false);
        it = active_.find(id);
        if (it == active_.end())
            continue;
        Active &b = it->second;
        if (b.hedge.active && b.hedge.eventNs <= nowNs_)
            finishCopy(b, b.hedge, /*is_hedge=*/true);
    }

    std::vector<std::uint64_t> hedging;
    for (const auto &[id, a] : active_) {
        if (!a.hedgeFired && a.primary.active && a.hedgeAtNs <= nowNs_)
            hedging.push_back(id);
    }
    for (const std::uint64_t id : hedging) {
        const auto it = active_.find(id);
        if (it != active_.end())
            fireHedge(it->second);
    }

    expireQueue();
    dispatchAll();
}

void
ClusterEngine::expireQueue()
{
    const auto expired = [this](const Queued &q) {
        return q.deadlineNs > 0.0 && q.deadlineNs <= nowNs_;
    };
    const auto n = std::count_if(queue_.begin(), queue_.end(), expired);
    if (n == 0)
        return;
    timedOut_ += static_cast<std::uint64_t>(n);
    for (const Queued &q : queue_) {
        if (expired(q)) {
            finishRequestTrace(q.trace, q.arrivalNs, q.deadlineNs, nowNs_,
                               "queue-timeout", /*erred=*/true,
                               /*hedged=*/false, q.attempts > 1);
        }
    }
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(), expired),
                 queue_.end());
}

int
ClusterEngine::pickHost(bool avoid_suspect, int exclude)
{
    if (numHosts() == 1)
        exclude = -1; // a one-host cluster has nowhere else to go
    if (!config_.router.failover) {
        // Static round-robin over every replica, skipping only busy
        // hosts (and an excluded retry source) — the naive cluster.
        for (unsigned i = 0; i < numHosts(); ++i) {
            const unsigned h = router_.nextRoundRobin();
            if (static_cast<int>(h) == exclude)
                continue;
            if (hosts_[h]->freeStack() >= 0)
                return static_cast<int>(h);
        }
        return -1;
    }

    // First pass never lands on a Suspect host; a fresh dispatch may
    // fall back to one when nothing better has capacity, a retry or
    // hedge may not.
    for (const bool strict : {true, false}) {
        if (!strict && avoid_suspect)
            break;
        int best = -1;
        unsigned best_busy = 0;
        for (unsigned h = 0; h < numHosts(); ++h) {
            if (static_cast<int>(h) == exclude)
                continue;
            if (!router_.eligible(h, strict))
                continue;
            if (hosts_[h]->freeStack() < 0)
                continue;
            const unsigned busy = hosts_[h]->busyStacks();
            if (best < 0 || busy < best_busy) {
                best = static_cast<int>(h);
                best_busy = busy;
            }
        }
        if (best >= 0)
            return best;
    }
    return -1;
}

std::uint64_t
ClusterEngine::transferId(const Active &a, bool is_hedge) const
{
    // Unique per dispatch attempt so every copy draws its own flaky-
    // link outcome; the fault model mixes this through SplitMix64.
    return (a.id << 12) | (std::uint64_t{a.attempts} << 1) |
           (is_hedge ? 1u : 0u);
}

bool
ClusterEngine::startCopy(Active &a, Copy &c, unsigned host_id,
                         bool is_hedge)
{
    HostModel &host = *hosts_[host_id];
    const int stack = host.freeStack();
    if (stack < 0)
        return false;

    const double slow =
        faults_ != nullptr ? faults_->hostSlowdown(host_id, nowNs_) : 1.0;
    const double svc = host.serviceNs(config_.app, 1) * slow;
    const double at_host =
        host.link().transfer(config_.link.requestBytes, nowNs_);
    const double done =
        at_host + svc + host.link().uncontendedNs(config_.link.responseBytes);

    const std::uint64_t tid = transferId(a, is_hedge);
    const bool doomed =
        faults_ != nullptr &&
        (faults_->hostCrashed(host_id, nowNs_, done) ||
         faults_->linkDropped(host_id, tid, nowNs_));

    c.active = true;
    c.host = host_id;
    c.stack = static_cast<unsigned>(stack);
    c.dispatchNs = nowNs_;
    c.trace = reqTracer_ != nullptr ? reqTracer_->child(a.trace)
                                    : RequestTraceContext{};
    // A doomed copy holds its stack until the client-side timeout fires
    // — failure detection is not free.
    c.eventNs = doomed ? nowNs_ + timeoutNs_ : done;
    c.doomed = doomed;
    host.occupy(c.stack, nowNs_, c.eventNs, a.id);
    return true;
}

void
ClusterEngine::finishCopy(Active &a, Copy &c, bool is_hedge)
{
    hosts_[c.host]->release(c.stack, nowNs_);
    c.active = false;
    const bool ok = !c.doomed;
    if (!ok)
        ++hostFailures_[c.host];
    router_.recordOutcome(c.host, ok, nowNs_);
    noteHealth(c.host);

    if (reqTracer_ != nullptr) {
        const char *name = ok ? (is_hedge ? "rpc hedge" : "rpc")
                              : "rpc failed";
        reqTracer_->span(c.trace, kTracePidCluster,
                         static_cast<int>(c.host), name, "rpc",
                         c.dispatchNs, nowNs_ - c.dispatchNs);
    }

    if (ok) {
        attemptH_.sample(static_cast<std::uint64_t>(nowNs_ - c.dispatchNs),
                         a.trace.traceId);
        completeRequest(a, c, /*hedge_won=*/is_hedge);
        active_.erase(a.id);
        return;
    }

    // This copy failed. If its twin is still in flight the request
    // survives on that copy alone.
    Copy &other = is_hedge ? a.primary : a.hedge;
    if (!is_hedge)
        a.hedgeAtNs = kNoEventNs; // nothing left to hedge against
    if (other.active)
        return;

    if (a.attempts < config_.maxAttempts) {
        // Cross-host retry: never back to the host that just failed,
        // never to a Suspect replica.
        const unsigned failed_host = c.host;
        const int h = pickHost(/*avoid_suspect=*/true,
                               static_cast<int>(failed_host));
        if (h >= 0 && startCopy(a, a.primary, static_cast<unsigned>(h),
                                /*is_hedge=*/false)) {
            ++a.attempts;
            ++retries_;
            if (config_.hedge.enabled && !a.hedgeFired)
                a.hedgeAtNs = nowNs_ + hedgeDelayNs();
            if (trace_ != nullptr)
                trace_->instant(kTracePidCluster, h, "failover",
                                "cluster", nowNs_);
            if (reqTracer_ != nullptr) {
                reqTracer_->instant(a.trace, kTracePidCluster, h,
                                    "failover", "failover", nowNs_);
                reqTracer_->flow(a.trace, "failover", kTracePidCluster,
                                 static_cast<int>(failed_host), nowNs_,
                                 kTracePidCluster, h, nowNs_);
            }
            return;
        }
        // No eligible capacity right now: back to the queue front with
        // the failed host remembered, so the budget survives the wait.
        ++retries_;
        queue_.push_front(Queued{a.id, a.arrivalNs, a.deadlineNs,
                                 a.attempts, static_cast<int>(c.host),
                                 a.trace});
        active_.erase(a.id);
        return;
    }

    ++failed_;
    finishRequestTrace(a.trace, a.arrivalNs, a.deadlineNs, nowNs_,
                       "attempts-exhausted", /*erred=*/true,
                       a.hedgeFired, a.attempts > 1);
    active_.erase(a.id);
}

void
ClusterEngine::completeRequest(Active &a, const Copy &winner,
                               bool hedge_won)
{
    // Cancel the losing copy: its stack frees immediately, and its
    // unknown outcome never reaches the failure detector.
    Copy &loser = hedge_won ? a.primary : a.hedge;
    if (loser.active) {
        hosts_[loser.host]->release(loser.stack, nowNs_);
        loser.active = false;
        ++hedgeCancels_;
        if (reqTracer_ != nullptr) {
            reqTracer_->span(loser.trace, kTracePidCluster,
                             static_cast<int>(loser.host), "rpc cancelled",
                             "rpc", loser.dispatchNs,
                             nowNs_ - loser.dispatchNs);
        }
    }
    if (hedge_won)
        ++hedgeWins_;

    ++completed_;
    const double lat = nowNs_ - a.arrivalNs;
    e2eH_.sample(static_cast<std::uint64_t>(lat), a.trace.traceId);
    if (a.deadlineNs > 0.0 && nowNs_ > a.deadlineNs)
        ++sloViolations_;
    completions_.push_back(ClusterCompletion{
        a.id, a.arrivalNs, nowNs_, a.deadlineNs, winner.host,
        std::max(a.attempts, 1u), hedge_won});
    finishRequestTrace(a.trace, a.arrivalNs, a.deadlineNs, nowNs_,
                       /*terminal=*/nullptr, /*erred=*/false,
                       a.hedgeFired, a.attempts > 1);
}

void
ClusterEngine::fireHedge(Active &a)
{
    a.hedgeAtNs = kNoEventNs;
    if (!config_.hedge.enabled || !a.primary.active || a.hedgeFired)
        return;
    const int h = pickHost(/*avoid_suspect=*/true,
                           static_cast<int>(a.primary.host));
    if (h < 0) {
        // No spare eligible capacity right now. Retry shortly — the
        // primary completing bounds how long this can recur.
        a.hedgeAtNs = nowNs_ + 0.25 * attemptEstimateNs_;
        return;
    }
    if (!startCopy(a, a.hedge, static_cast<unsigned>(h),
                   /*is_hedge=*/true))
        return;
    a.hedgeFired = true;
    ++hedgesFired_;
    if (trace_ != nullptr)
        trace_->instant(kTracePidCluster, h, "hedge", "cluster", nowNs_);
    if (reqTracer_ != nullptr) {
        reqTracer_->instant(a.trace, kTracePidCluster, h, "hedge",
                            "hedge", nowNs_);
        reqTracer_->flow(a.trace, "hedge", kTracePidCluster,
                         static_cast<int>(a.primary.host), nowNs_,
                         kTracePidCluster, h, nowNs_);
    }
}

void
ClusterEngine::fireProbe(unsigned host_id)
{
    router_.takeProbe(host_id);
    const std::uint64_t tid = (std::uint64_t{0xffff} << 48) |
                              (std::uint64_t{host_id} << 32) |
                              router_.probesSent(host_id);
    const bool ok =
        faults_ == nullptr ||
        (!faults_->hostCrashed(host_id, nowNs_, nowNs_) &&
         !faults_->linkDropped(host_id, tid, nowNs_));
    router_.recordOutcome(host_id, ok, nowNs_);
    noteHealth(host_id);
    if (trace_ != nullptr)
        trace_->instant(kTracePidCluster, static_cast<int>(host_id),
                        ok ? "probe-ok" : "probe-fail", "cluster", nowNs_);
}

void
ClusterEngine::noteHealth(unsigned host_id)
{
    if (trace_ == nullptr)
        return;
    const HealthState s = router_.state(host_id);
    if (s == traceState_[host_id])
        return;
    if (nowNs_ > traceSinceNs_[host_id]) {
        trace_->span(kTracePidCluster, static_cast<int>(host_id),
                     healthStateName(traceState_[host_id]), "health",
                     traceSinceNs_[host_id],
                     nowNs_ - traceSinceNs_[host_id]);
    }
    traceState_[host_id] = s;
    traceSinceNs_[host_id] = nowNs_;
}

void
ClusterEngine::dispatchAll()
{
    while (!queue_.empty()) {
        const Queued q = queue_.front();
        const int h =
            pickHost(/*avoid_suspect=*/q.attempts > 0, q.lastHost);
        if (h < 0)
            break; // head-of-line blocks until capacity frees
        queue_.pop_front();

        Active a;
        a.id = q.id;
        a.arrivalNs = q.arrivalNs;
        a.deadlineNs = q.deadlineNs;
        a.attempts = q.attempts;
        a.trace = q.trace;
        if (reqTracer_ != nullptr && q.attempts == 0 &&
            nowNs_ > q.arrivalNs) {
            // Router queue wait before the first dispatch (requeued
            // retries have no recorded wait start; their gap is visible
            // between the failed and the next rpc span).
            reqTracer_->span(reqTracer_->child(a.trace),
                             kTracePidCluster, requestTid(), "queue",
                             "queue", q.arrivalNs, nowNs_ - q.arrivalNs);
        }
        const bool started = startCopy(a, a.primary,
                                       static_cast<unsigned>(h),
                                       /*is_hedge=*/false);
        PIMSIM_ASSERT(started, "picked host ", h, " had no free stack");
        ++a.attempts;
        if (config_.hedge.enabled)
            a.hedgeAtNs = nowNs_ + hedgeDelayNs();
        active_.emplace(a.id, a);
    }
}

void
ClusterEngine::finishRequestTrace(const RequestTraceContext &ctx,
                                  double arrival_ns, double deadline_ns,
                                  double end_ns, const char *terminal,
                                  bool erred, bool hedged,
                                  bool failed_over)
{
    const bool missed =
        !erred && deadline_ns > 0.0 && end_ns > deadline_ns;
    sloObs_.push_back(SloObservation{end_ns, !erred && !missed});
    if (reqTracer_ == nullptr || !ctx.active())
        return;
    if (terminal != nullptr) {
        reqTracer_->instant(ctx, kTracePidCluster, requestTid(),
                            terminal, "terminal", end_ns);
    }
    reqTracer_->span(ctx, kTracePidCluster, requestTid(), "request",
                    "request", arrival_ns, end_ns - arrival_ns);
    TraceOutcome outcome;
    outcome.latencyNs = end_ns - arrival_ns;
    outcome.erred = erred;
    outcome.deadlineMissed = missed;
    outcome.hedged = hedged;
    outcome.failedOver = failed_over;
    reqTracer_->end(ctx, outcome);
}

std::vector<SloObservation>
ClusterEngine::takeSloObservations()
{
    return std::exchange(sloObs_, {});
}

std::vector<ClusterCompletion>
ClusterEngine::takeCompletions()
{
    return std::exchange(completions_, {});
}

ClusterReport
ClusterEngine::report() const
{
    ClusterReport r;
    r.horizonNs = nowNs_;
    r.submitted = submitted_;
    r.completed = completed_;
    r.rejected = rejected_;
    r.shed = shed_;
    r.timedOut = timedOut_;
    r.failed = failed_;
    r.sloViolations = sloViolations_;
    r.retries = retries_;
    r.hedgesFired = hedgesFired_;
    r.hedgeWins = hedgeWins_;
    r.hedgeCancels = hedgeCancels_;
    r.healthTransitions = router_.totalTransitions();
    if (nowNs_ > 0.0) {
        r.throughputRps =
            static_cast<double>(completed_) * 1e9 / nowNs_;
        r.goodputRps =
            static_cast<double>(completed_ - sloViolations_) * 1e9 /
            nowNs_;
    }
    r.e2e.meanNs = e2eH_.mean();
    r.e2e.p50Ns = e2eH_.p50();
    r.e2e.p95Ns = e2eH_.p95();
    r.e2e.p99Ns = e2eH_.p99();
    r.e2e.maxNs = static_cast<double>(e2eH_.max());
    r.hosts.reserve(hosts_.size());
    for (unsigned h = 0; h < numHosts(); ++h) {
        HostReport hr;
        hr.host = h;
        hr.state = router_.state(h);
        hr.dispatches = hosts_[h]->dispatches();
        hr.failures = hostFailures_[h];
        hr.probes = router_.probesSent(h);
        const HealthTracker &t = router_.tracker(h);
        hr.transitions = t.transitions();
        hr.entries[0] = t.entries(HealthState::Healthy);
        hr.entries[1] = t.entries(HealthState::Suspect);
        hr.entries[2] = t.entries(HealthState::Down);
        hr.entries[3] = t.entries(HealthState::Recovering);
        r.probes += hr.probes;
        hr.busyNs = hosts_[h]->busyNs();
        hr.utilization = hosts_[h]->utilization(nowNs_);
        hr.linkUtilization = hosts_[h]->link().utilization(nowNs_);
        r.hosts.push_back(hr);
    }
    return r;
}

} // namespace pimsim::cluster
