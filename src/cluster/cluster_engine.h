/**
 * @file
 * The fault-tolerant cluster tier: M replicated hosts behind one router.
 *
 * ClusterEngine is a discrete-event simulation on the same virtual
 * nanosecond clock as the serving engine, one level up: requests arrive
 * at a cluster router, pass global admission control, and are routed to
 * a data-parallel replica — a HostModel of N PIM stacks behind a
 * bandwidth/latency/occupancy link. Dispatch cost is link transfer +
 * the stack's command-level kernel time (memoised ShardServiceModel) +
 * response latency.
 *
 * Fault tolerance:
 *  - A serve::HostFaultModel (ChaosCampaign in benches) injects host
 *    crashes, straggler slowdowns, and flaky-link loss. A dispatch whose
 *    host dies mid-service or whose transfer drops is observed as a
 *    failure after the client-side timeout, not at its would-be
 *    completion: dead hosts cost detection latency, exactly as in a real
 *    cluster.
 *  - Every outcome feeds the router's per-host failure detector
 *    (healthy -> suspect -> down -> recovering); Down hosts take no
 *    traffic and are probed back to life.
 *  - Failed attempts retry cross-host — never on the failed host and
 *    never on a Suspect replica — until the attempt budget is spent.
 *  - A hedged request fires one backup copy to a second replica once
 *    the primary has been outstanding longer than the p95 of recent
 *    attempt latencies; the first success wins and the loser is
 *    cancelled (its stack frees immediately).
 *  - Global admission control sheds arrivals whose deadline cannot be
 *    met by the surviving capacity (Down hosts do not count).
 *
 * After drain(), every submitted request is exactly one of {completed,
 * shed, rejected, timed out, failed}; reconcile() asserts it. The same
 * configuration and submission sequence replay to a bit-identical
 * report, including health-state transition counts.
 */

#ifndef PIMSIM_CLUSTER_CLUSTER_ENGINE_H
#define PIMSIM_CLUSTER_CLUSTER_ENGINE_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/host.h"
#include "cluster/interconnect.h"
#include "cluster/router.h"
#include "common/reqtrace.h"
#include "common/slo.h"
#include "common/stats.h"
#include "serve/resilience.h"
#include "serve/serving_engine.h" // LatencySummary
#include "sim/system_config.h"
#include "stack/workloads.h"

namespace pimsim {
class TraceSession;
}

namespace pimsim::cluster {

/** Hedged-request policy. */
struct HedgeConfig
{
    bool enabled = false;
    /** Completed attempts required before the p95 delay is trusted. */
    unsigned minSamples = 32;
    /** Hedge delay until then (0 = 4x the batch-1 attempt estimate). */
    double initialDelayNs = 0.0;
    /** Lower bound on the hedge delay (avoids hedging every request
     *  when the latency distribution is tight). */
    double floorNs = 0.0;
};

/** Full cluster-tier configuration. */
struct ClusterConfig
{
    /** Per-stack system template (geometry, timing, PIM config). */
    SystemConfig system = SystemConfig::pimHbmSystem();
    unsigned numHosts = 4;
    /** The paper's host integrates 4 HBM2-PIM stacks. */
    unsigned stacksPerHost = 4;
    /** The replicated application (one per request, batch 1). */
    AppSpec app;
    /** Relative completion deadline per request (0 disables). */
    double deadlineNs = 0.0;
    /** Router-side queue bound (admission hard-rejects beyond it). */
    unsigned queueDepth = 256;
    /** Total dispatch attempts per request (1 = no cross-host retry). */
    unsigned maxAttempts = 3;
    /**
     * Client-side failure-detection timeout: a doomed dispatch is
     * observed failed this long after it left the router
     * (0 = 6x the batch-1 attempt estimate).
     */
    double timeoutNs = 0.0;
    LinkConfig link;
    RouterConfig router;
    HedgeConfig hedge;
    /** Shed arrivals whose deadline the surviving capacity cannot meet. */
    bool admission = true;
    /** Attempt-latency histogram shape (hedge delay + report tails). */
    std::uint64_t histBucketNs = 1'000;
    std::size_t histBuckets = 16'384;
    std::shared_ptr<serve::ServiceTimeCache> cache;
};

/** One completed request, for windowed post-processing in benches. */
struct ClusterCompletion
{
    std::uint64_t id = 0;
    double arrivalNs = 0.0;
    double completeNs = 0.0;
    double deadlineNs = 0.0; ///< absolute; 0 = none
    unsigned host = 0;       ///< replica that won
    unsigned attempts = 1;
    bool hedgeWon = false;

    double latencyNs() const { return completeNs - arrivalNs; }
    bool metDeadline() const
    {
        return deadlineNs <= 0.0 || completeNs <= deadlineNs;
    }
};

/** One host's slice of the cluster report. */
struct HostReport
{
    unsigned host = 0;
    HealthState state = HealthState::Healthy;
    std::uint64_t dispatches = 0;
    std::uint64_t failures = 0;
    std::uint64_t probes = 0;
    std::uint64_t transitions = 0;
    /** Entry counts per state: [healthy, suspect, down, recovering]. */
    std::uint64_t entries[4] = {0, 0, 0, 0};
    double busyNs = 0.0;
    double utilization = 0.0;
    double linkUtilization = 0.0;
};

/** Whole-run cluster outcome. */
struct ClusterReport
{
    double horizonNs = 0.0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t timedOut = 0;
    /** Attempt budget exhausted without a success. */
    std::uint64_t failed = 0;
    std::uint64_t sloViolations = 0;
    std::uint64_t retries = 0; ///< cross-host re-dispatches
    std::uint64_t hedgesFired = 0;
    std::uint64_t hedgeWins = 0;
    std::uint64_t hedgeCancels = 0;
    std::uint64_t probes = 0;
    std::uint64_t healthTransitions = 0;
    double throughputRps = 0.0;
    /** In-deadline completions per second. */
    double goodputRps = 0.0;
    serve::LatencySummary e2e;
    std::vector<HostReport> hosts;

    /**
     * PIMSIM_ASSERT that every submitted request reached exactly one
     * terminal state: completed + shed + rejected + timedOut + failed
     * == submitted. Valid after drain().
     */
    void reconcile() const;

    /** The report as a canonical JSON document (replay comparison,
     *  bench output embedding). */
    std::string toJson() const;
};

/** The replicated serving system: M hosts x N stacks behind a router. */
class ClusterEngine
{
  public:
    explicit ClusterEngine(const ClusterConfig &config);

    unsigned numHosts() const
    {
        return static_cast<unsigned>(hosts_.size());
    }
    HostModel &host(unsigned h) { return *hosts_[h]; }
    ClusterRouter &router() { return router_; }

    /** Batch-1 attempt estimate: link RTT + transfer + kernel time. */
    double attemptEstimateNs() const { return attemptEstimateNs_; }
    /** The failure-detection timeout in force. */
    double timeoutNs() const { return timeoutNs_; }
    /** The hedge delay a request dispatched now would get. */
    double hedgeDelayNs() const;

    /** Successful attempt latencies (drives the hedge-delay p95). */
    const Histogram &attemptHistogram() const { return attemptH_; }
    /** Request end-to-end latencies, completions only. */
    const Histogram &e2eHistogram() const { return e2eH_; }

    /**
     * Attach the host-level fault source (nullptr detaches). Queried at
     * dispatch time over the attempt's service window. Not owned.
     */
    void setFaultModel(serve::HostFaultModel *faults) { faults_ = faults; }

    /** Record health spans and hedge/failover instants on the cluster
     *  trace track (pid 5, one tid per host); nullptr disables. */
    void setTrace(TraceSession *session);

    /**
     * Attach a per-request causal tracer (nullptr detaches). Every
     * arrival is minted a RequestTraceContext; its queue wait, every
     * RPC copy (primary, retries, hedge), failover/hedge instants with
     * cross-host flow edges, and its terminal state are buffered as a
     * span tree and tail-sampled at the tracer. Not owned.
     */
    void setRequestTracer(RequestTracer *tracer) { reqTracer_ = tracer; }

    /**
     * Per-request terminal observations (timestamp + met-its-SLO)
     * accumulated since the last call — the SloMonitor feed. Sheds,
     * rejections, timeouts, failures and late completions are bad;
     * in-deadline completions are good.
     */
    std::vector<SloObservation> takeSloObservations();

    /**
     * Submit one request arriving at `arrival_ns` (>= the engine clock).
     * @return false when admission shed or rejected it.
     */
    bool submit(double arrival_ns);

    /** Advance the virtual clock, serving everything due by `ns`. */
    void advanceTo(double ns);

    /** Serve until queue, flights, hedges and probes are quiescent. */
    void drain();

    /** Next internal event; kNoEventNs when fully idle. */
    double nextEventNs() const;

    double nowNs() const { return nowNs_; }

    /** Completions since the last call (windowed bench analysis). */
    std::vector<ClusterCompletion> takeCompletions();

    /** Aggregate outcome over everything served so far. */
    ClusterReport report() const;

  private:
    /** One copy of a request occupying one stack of one host. */
    struct Copy
    {
        bool active = false;
        unsigned host = 0;
        unsigned stack = 0;
        double dispatchNs = 0.0;
        double eventNs = 0.0; ///< completion or timeout observation
        bool doomed = false;  ///< crash/link-drop decided at dispatch
        /** This copy's "rpc" span identity (child of the request). */
        RequestTraceContext trace;
    };

    /** A request between admission and its terminal state. */
    struct Active
    {
        std::uint64_t id = 0;
        double arrivalNs = 0.0;
        double deadlineNs = 0.0; ///< absolute; 0 = none
        unsigned attempts = 0;
        Copy primary;
        Copy hedge;
        bool hedgeFired = false;
        double hedgeAtNs = kNoEventNs;
        RequestTraceContext trace; ///< the request's root span
    };

    struct Queued
    {
        std::uint64_t id = 0;
        double arrivalNs = 0.0;
        double deadlineNs = 0.0;
        unsigned attempts = 0; ///< > 0 for requeued retries
        int lastHost = -1;     ///< host the last attempt failed on
        RequestTraceContext trace;
    };

    void processDue();
    void dispatchAll();
    /** Start one copy of `a` on `host_id`; returns false if no stack. */
    bool startCopy(Active &a, Copy &c, unsigned host_id, bool is_hedge);
    void finishCopy(Active &a, Copy &c, bool is_hedge);
    void fireHedge(Active &a);
    void fireProbe(unsigned host_id);
    void expireQueue();
    /** Least-loaded eligible host with a free stack (-1 when none). */
    int pickHost(bool avoid_suspect, int exclude);
    void completeRequest(Active &a, const Copy &winner, bool hedge_won);
    void noteHealth(unsigned host_id);
    /** The per-request track on the cluster pid ("router" timeline). */
    int requestTid() const { return static_cast<int>(numHosts()); }
    /** Close a request's trace (root span + outcome) and record its
     *  SLO observation. `terminal` names non-completed ends. */
    void finishRequestTrace(const RequestTraceContext &ctx,
                            double arrival_ns, double deadline_ns,
                            double end_ns, const char *terminal,
                            bool erred, bool hedged, bool failed_over);
    double backlogEstimateNs() const;
    std::uint64_t transferId(const Active &a, bool is_hedge) const;

    ClusterConfig config_;
    std::vector<std::unique_ptr<HostModel>> hosts_;
    ClusterRouter router_;
    serve::HostFaultModel *faults_ = nullptr;

    std::deque<Queued> queue_;
    std::map<std::uint64_t, Active> active_;

    Histogram attemptH_; ///< successful attempt latencies (hedge p95)
    Histogram e2eH_;     ///< request end-to-end latencies
    mutable double cachedHedgeDelayNs_ = 0.0;
    mutable std::uint64_t hedgeDelaySamples_ = 0;

    double attemptEstimateNs_ = 0.0;
    double timeoutNs_ = 0.0;

    // Terminal-state accounting.
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t sloViolations_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t hedgesFired_ = 0;
    std::uint64_t hedgeWins_ = 0;
    std::uint64_t hedgeCancels_ = 0;
    std::vector<std::uint64_t> hostFailures_;

    std::vector<ClusterCompletion> completions_;
    std::vector<SloObservation> sloObs_;

    RequestTracer *reqTracer_ = nullptr;
    TraceSession *trace_ = nullptr;
    std::vector<HealthState> traceState_;
    std::vector<double> traceSinceNs_;

    double nowNs_ = 0.0;
    std::uint64_t nextId_ = 0;
};

} // namespace pimsim::cluster

#endif // PIMSIM_CLUSTER_CLUSTER_ENGINE_H
