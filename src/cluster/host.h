/**
 * @file
 * One cluster host: N PIM-HBM stacks behind one interconnect link.
 *
 * The paper's evaluation host 2.5D-integrates four HBM2-PIM stacks; a
 * cluster host models exactly that. Each stack is an independent server
 * (a PIM kernel owns its stack's channels' lock-step AB mode), priced by
 * the same command-level ShardServiceModel the serving layer uses — the
 * stacks are homogeneous, so the host carves its channel space with a
 * ShardPlan and shares one memoised timing oracle across stacks.
 * Dispatches reach a stack through the host's Link (see interconnect.h).
 *
 * The host itself has no failure logic; health is observed and decided
 * by the ClusterRouter from dispatch outcomes, and faults are produced
 * by a serve::HostFaultModel on the cluster engine's clock.
 */

#ifndef PIMSIM_CLUSTER_HOST_H
#define PIMSIM_CLUSTER_HOST_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/interconnect.h"
#include "serve/service_model.h"
#include "serve/shard.h"
#include "sim/system_config.h"
#include "stack/workloads.h"

namespace pimsim::cluster {

/** N stacks + one link, dispatchable one kernel per stack. */
class HostModel
{
  public:
    /**
     * @param id          the host's cluster-wide index
     * @param base        per-stack system configuration (geometry and
     *                    timing; the channel count is derived from
     *                    `num_stacks` x pchPerStack)
     * @param num_stacks  PIM stacks on this host (the paper's host: 4)
     * @param link        router<->host link parameters
     * @param cache       shared service-time memo (may be nullptr)
     */
    HostModel(unsigned id, const SystemConfig &base, unsigned num_stacks,
              const LinkConfig &link,
              std::shared_ptr<serve::ServiceTimeCache> cache);

    unsigned id() const { return id_; }
    unsigned numStacks() const
    {
        return static_cast<unsigned>(stacks_.size());
    }

    /** The per-stack shard layout (disjoint channel groups). */
    const serve::ShardPlan &plan() const { return plan_; }

    /** Kernel time of one dispatch of `app` at `batch` on one stack. */
    double serviceNs(const AppSpec &app, unsigned batch)
    {
        return model_->serviceNs(app, batch);
    }

    Link &link() { return link_; }
    const Link &link() const { return link_; }

    /** Lowest-numbered idle, non-quarantined stack (-1 when none). */
    int freeStack() const;
    unsigned busyStacks() const { return busy_; }

    // ---- Degraded-capacity serving (SDC quarantine) ----
    // A stack whose device-level SDC monitor withdrew a channel is
    // quarantined as a whole: freeStack() skips it, so the router sees
    // the host at reduced per-host capacity until the stack is restored.

    /** Withdraw `stack` from dispatching (idempotent; busy dispatches
     *  run to completion). */
    void quarantineStack(unsigned stack);
    /** Return `stack` to dispatching (idempotent). */
    void restoreStack(unsigned stack);
    bool stackQuarantined(unsigned stack) const
    {
        return stacks_[stack].quarantined;
    }
    /** Stacks currently dispatchable. */
    unsigned activeStacks() const;
    /** activeStacks / numStacks in (0, 1]. */
    double capacityFraction() const
    {
        return stacks_.empty()
                   ? 1.0
                   : static_cast<double>(activeStacks()) /
                         static_cast<double>(stacks_.size());
    }

    /** Mark `stack` busy with `dispatch` until `until_ns`. */
    void occupy(unsigned stack, double now_ns, double until_ns,
                std::uint64_t dispatch);
    /** Free `stack` at `now_ns` (early for cancelled hedges). */
    void release(unsigned stack, double now_ns);

    bool busy(unsigned stack) const { return stacks_[stack].busy; }
    std::uint64_t dispatchOn(unsigned stack) const
    {
        return stacks_[stack].dispatch;
    }

    std::uint64_t dispatches() const { return dispatches_; }
    /** Accumulated stack-busy time (for utilization reporting). */
    double busyNs() const { return busyNs_; }
    double utilization(double horizon_ns) const
    {
        return horizon_ns > 0.0
                   ? busyNs_ / (horizon_ns *
                                static_cast<double>(stacks_.size()))
                   : 0.0;
    }

  private:
    struct Stack
    {
        bool busy = false;
        bool quarantined = false;
        double sinceNs = 0.0;
        std::uint64_t dispatch = 0;
    };

    unsigned id_;
    serve::ShardPlan plan_;
    std::unique_ptr<serve::ShardServiceModel> model_;
    Link link_;
    std::vector<Stack> stacks_;
    unsigned busy_ = 0;
    std::uint64_t dispatches_ = 0;
    double busyNs_ = 0.0;
};

} // namespace pimsim::cluster

#endif // PIMSIM_CLUSTER_HOST_H
