#include "cluster/router.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim::cluster {

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Healthy:
        return "healthy";
      case HealthState::Suspect:
        return "suspect";
      case HealthState::Down:
        return "down";
      case HealthState::Recovering:
        return "recovering";
    }
    return "?";
}

void
HealthTracker::transition(HealthState next, double now_ns)
{
    if (next == state_)
        return;
    state_ = next;
    stateSinceNs_ = now_ns;
    ++transitions_;
    ++entries_[static_cast<unsigned>(next)];
    switch (next) {
      case HealthState::Down:
        // The pre-crash window is history; only probes matter now.
        window_.clear();
        windowErrors_ = 0;
        consecutiveOk_ = 0;
        break;
      case HealthState::Recovering:
        consecutiveOk_ = 0;
        break;
      case HealthState::Healthy:
        window_.clear();
        windowErrors_ = 0;
        consecutiveOk_ = 0;
        break;
      case HealthState::Suspect:
        break;
    }
}

double
HealthTracker::failureFraction() const
{
    return window_.empty()
               ? 0.0
               : static_cast<double>(windowErrors_) /
                     static_cast<double>(window_.size());
}

void
HealthTracker::record(bool ok, double now_ns)
{
    switch (state_) {
      case HealthState::Down:
        if (ok)
            transition(HealthState::Recovering, now_ns);
        return;
      case HealthState::Recovering:
        if (!ok) {
            transition(HealthState::Down, now_ns);
        } else if (++consecutiveOk_ >= config_.recoverySuccesses) {
            transition(HealthState::Healthy, now_ns);
        }
        return;
      case HealthState::Healthy:
      case HealthState::Suspect:
        break;
    }

    window_.push_back(!ok);
    if (!ok)
        ++windowErrors_;
    while (window_.size() > config_.window) {
        if (window_.front())
            --windowErrors_;
        window_.pop_front();
    }
    if (window_.size() < config_.minSamples)
        return;

    const double frac = failureFraction();
    if (frac >= config_.downThreshold) {
        transition(HealthState::Down, now_ns);
    } else if (frac >= config_.suspectThreshold) {
        transition(HealthState::Suspect, now_ns);
    } else if (state_ == HealthState::Suspect) {
        // Recent successes diluted the window back under the
        // suspicion threshold: trust restored without a probe cycle.
        transition(HealthState::Healthy, now_ns);
    }
}

ClusterRouter::ClusterRouter(const RouterConfig &config, unsigned num_hosts)
    : config_(config)
{
    PIMSIM_ASSERT(num_hosts >= 1, "a cluster needs >= 1 host");
    PIMSIM_ASSERT(config.health.minSamples >= 1 &&
                      config.health.minSamples <= config.health.window,
                  "health minSamples must be in [1, window]");
    PIMSIM_ASSERT(config.health.suspectThreshold <=
                      config.health.downThreshold,
                  "suspect threshold above down threshold");
    trackers_.assign(num_hosts, HealthTracker(config.health));
    probeAtNs_.assign(num_hosts, kNoEventNs);
    probesSent_.assign(num_hosts, 0);
}

void
ClusterRouter::recordOutcome(unsigned host, bool ok, double now_ns)
{
    PIMSIM_ASSERT(host < trackers_.size(), "bad host id ", host);
    trackers_[host].record(ok, now_ns);
    if (!config_.failover)
        return; // observe only; never probe
    if (trackers_[host].state() == HealthState::Healthy) {
        probeAtNs_[host] = kNoEventNs;
    } else if (probeAtNs_[host] == kNoEventNs) {
        probeAtNs_[host] = now_ns + config_.health.probeIntervalNs;
    }
}

bool
ClusterRouter::eligible(unsigned host, bool avoid_suspect) const
{
    if (!config_.failover)
        return true;
    switch (trackers_[host].state()) {
      case HealthState::Healthy:
      case HealthState::Recovering:
        return true;
      case HealthState::Suspect:
        return !avoid_suspect;
      case HealthState::Down:
        return false;
    }
    return false;
}

unsigned
ClusterRouter::aliveHosts() const
{
    unsigned alive = 0;
    for (const auto &t : trackers_) {
        if (t.state() != HealthState::Down)
            ++alive;
    }
    return alive;
}

unsigned
ClusterRouter::nextRoundRobin()
{
    const unsigned host = roundRobin_;
    roundRobin_ = (roundRobin_ + 1) % numHosts();
    return host;
}

double
ClusterRouter::nextProbeNs() const
{
    double next = kNoEventNs;
    for (const double at : probeAtNs_)
        next = std::min(next, at);
    return next;
}

int
ClusterRouter::dueProbeHost(double now_ns) const
{
    for (unsigned h = 0; h < probeAtNs_.size(); ++h) {
        if (probeAtNs_[h] <= now_ns)
            return static_cast<int>(h);
    }
    return -1;
}

void
ClusterRouter::takeProbe(unsigned host)
{
    PIMSIM_ASSERT(host < probeAtNs_.size(), "bad host id ", host);
    PIMSIM_ASSERT(probeAtNs_[host] != kNoEventNs, "no probe pending");
    ++probesSent_[host];
    // recordOutcome() reschedules if the host is still not Healthy;
    // cleared first so the outcome sees "no probe pending".
    probeAtNs_[host] = kNoEventNs;
}

std::uint64_t
ClusterRouter::totalTransitions() const
{
    std::uint64_t total = 0;
    for (const auto &t : trackers_)
        total += t.transitions();
    return total;
}

} // namespace pimsim::cluster
