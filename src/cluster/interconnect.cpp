#include "cluster/interconnect.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim::cluster {

double
Link::uncontendedNs(unsigned bytes) const
{
    PIMSIM_ASSERT(config_.bandwidthGBs > 0.0,
                  "link bandwidth must be positive");
    // bytes / (GB/s) == bytes / (bytes/ns) == ns.
    return static_cast<double>(bytes) / config_.bandwidthGBs +
           config_.latencyNs;
}

double
Link::transfer(unsigned bytes, double now_ns)
{
    PIMSIM_ASSERT(config_.bandwidthGBs > 0.0,
                  "link bandwidth must be positive");
    const double serialize_ns =
        static_cast<double>(bytes) / config_.bandwidthGBs;
    const double start_ns = std::max(now_ns, busyUntilNs_);
    busyUntilNs_ = start_ns + serialize_ns;
    busyNs_ += serialize_ns;
    ++transfers_;
    return busyUntilNs_ + config_.latencyNs;
}

} // namespace pimsim::cluster
