/**
 * @file
 * Per-link interconnect cost model for the cluster tier.
 *
 * Every host hangs off the cluster router behind one full-duplex link
 * with three costs: propagation latency (paid by every transfer),
 * serialization time (bytes / bandwidth), and occupancy — the
 * router-to-host direction serialises transfers one after another, so a
 * loaded link queues exactly like a DRAM data bus. The response
 * direction is modelled uncontended (full duplex, and responses are
 * paced by the per-stack service completions that produced them).
 *
 * NeuPIMs evaluates batched GEMV-offload PIM serving behind a real
 * interconnect simulator (booksim); this is the analytical tier of the
 * same idea — enough fidelity for queueing effects without per-flit
 * simulation.
 */

#ifndef PIMSIM_CLUSTER_INTERCONNECT_H
#define PIMSIM_CLUSTER_INTERCONNECT_H

#include <cstdint>

namespace pimsim::cluster {

/** One router<->host link's parameters. */
struct LinkConfig
{
    /** One-way propagation latency (paid per direction). */
    double latencyNs = 500.0;
    /** Serialization bandwidth in GB/s (1 GB/s == 1 byte/ns). */
    double bandwidthGBs = 32.0;
    /** Request payload (input activations + dispatch metadata). */
    unsigned requestBytes = 4096;
    /** Response payload (output activations + status). */
    unsigned responseBytes = 4096;
};

/** Occupancy-tracking link: transfers serialise in schedule order. */
class Link
{
  public:
    Link() = default;
    explicit Link(const LinkConfig &config) : config_(config) {}

    const LinkConfig &config() const { return config_; }

    /**
     * Schedule a `bytes`-byte transfer entering the link at `now_ns`.
     * The payload starts serialising when the link frees, and lands
     * after serialization plus propagation latency.
     * @return arrival time of the last byte at the far end
     */
    double transfer(unsigned bytes, double now_ns);

    /**
     * Cost of an uncontended transfer (serialization + latency) —
     * the response direction and capacity estimates use this.
     */
    double uncontendedNs(unsigned bytes) const;

    /** Round-trip propagation latency. */
    double rttNs() const { return 2.0 * config_.latencyNs; }

    std::uint64_t transfers() const { return transfers_; }
    /** Accumulated serialization time (occupancy). */
    double busyNs() const { return busyNs_; }
    /** Occupancy fraction over a horizon. */
    double utilization(double horizon_ns) const
    {
        return horizon_ns > 0.0 ? busyNs_ / horizon_ns : 0.0;
    }

  private:
    LinkConfig config_;
    double busyUntilNs_ = 0.0;
    double busyNs_ = 0.0;
    std::uint64_t transfers_ = 0;
};

} // namespace pimsim::cluster

#endif // PIMSIM_CLUSTER_INTERCONNECT_H
