/**
 * @file
 * Iteration-level batching for LLM decode.
 *
 * Classic batch scheduling (AdmitOnce) forms a batch, pads every
 * member to the longest output in the wave, and runs the wave to
 * completion before forming the next: short requests finish early but
 * their slots keep burning full-batch FFN compute as padding, and
 * queued requests wait for the wave's longest member. Continuous
 * batching rebuilds the batch *every decode iteration*: completed
 * requests leave at an iteration boundary (their compute slot is
 * reclaimed immediately) and queued requests join the moment a slot
 * and enough KV blocks are free. costBatch() exposes the distinction
 * to the cost model: for AdmitOnce it stays at the wave's admitted
 * size until the wave drains, for Continuous it is the live batch.
 *
 * KV pressure is resolved by evict-and-requeue: when a decode step
 * cannot grow some sequence's cache, the *youngest* running request is
 * evicted (its blocks freed, its progress discarded) and requeued at
 * the *front* of the wait queue in age order. Oldest-first victims
 * would starve long requests; youngest-first eviction plus front
 * requeue preserves FCFS age order, so every request eventually
 * becomes the oldest and can no longer be chosen as a victim.
 *
 * Invariant (checked by reconcile): joins + rejoins ==
 * leavesCompleted + leavesPreempted + running.
 */

#ifndef PIMSIM_LLM_BATCHER_H
#define PIMSIM_LLM_BATCHER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/reqtrace.h"
#include "llm/kv_cache.h"

namespace pimsim::llm {

/** Batch scheduling policies under comparison. */
enum class BatchPolicy
{
    AdmitOnce,  ///< static batches run to completion
    Continuous, ///< join/leave at every iteration boundary
};

const char *batchPolicyName(BatchPolicy policy);

/** One decode request's full lifecycle record. */
struct LlmRequest
{
    std::uint64_t id = 0;
    unsigned tenant = 0;
    unsigned promptTokens = 0;
    unsigned outputTokens = 0;
    double arrivalNs = 0.0;
    /** Absolute deadline (arrival + SLO); <= 0 means none. */
    double deadlineNs = 0.0;

    unsigned decoded = 0;      ///< output tokens produced so far
    unsigned preemptions = 0;  ///< evict-and-requeue count
    double firstTokenNs = -1.0; ///< TTFT timestamp (< 0 until produced)
    double completeNs = 0.0;
    KvSeqId kvSeq;             ///< valid only while running
    /** Causal trace identity (inactive unless a RequestTracer is set). */
    RequestTraceContext trace;

    unsigned contextTokens() const { return promptTokens + decoded; }
    bool done() const { return decoded >= outputTokens; }
    bool hasDeadline() const { return deadlineNs > 0.0; }
};

/** Batcher knobs. */
struct BatcherConfig
{
    BatchPolicy policy = BatchPolicy::Continuous;
    /** Max requests decoding in one iteration. */
    unsigned maxBatch = 8;
    /** Wait-queue depth; beyond it submissions are rejected. */
    unsigned maxQueue = 256;
};

/** The iteration-level batch scheduler. */
class ContinuousBatcher
{
  public:
    ContinuousBatcher(const BatcherConfig &config, KvCacheManager &kv);

    /** Queue a request; false when the wait queue is full. */
    bool admit(LlmRequest request);

    /**
     * Form the working batch for the iteration starting at `now`:
     * join waiters (policy-dependent), then guarantee every member can
     * grow its KV cache by one token, evicting youngest members on
     * pressure. Members that joined this iteration and survived the
     * capacity pass are copied into `joined` — the engine prices their
     * prefill (over contextTokens(), which on a rejoin includes the
     * recompute of already-produced tokens) into the iteration.
     * @return false when there is nothing to run.
     */
    bool beginIteration(double now, std::vector<LlmRequest> &joined);

    /**
     * Account one finished decode iteration ending at `end_ns`: every
     * running member produced a token; members that reached their
     * output length leave the batch (KV released) and are returned.
     */
    std::vector<LlmRequest> finishIteration(double end_ns);

    /**
     * Drop queued requests whose deadline has passed (shed before
     * spending any decode work on them). Returns the dropped requests.
     */
    std::vector<LlmRequest> expireQueued(double now);

    bool idle() const { return running_.empty() && waiting_.empty(); }
    std::size_t runningSize() const { return running_.size(); }

    /**
     * The batch size the FFN weight GEMVs are priced at. Continuous:
     * the live batch. AdmitOnce: the wave's admitted size until every
     * member of the wave has finished — early finishers become padding
     * that still occupies its compute slot (classic static batching).
     */
    unsigned costBatch() const
    {
        const unsigned live = static_cast<unsigned>(running_.size());
        if (config_.policy == BatchPolicy::AdmitOnce)
            return waveBatch_ > live ? waveBatch_ : live;
        return live;
    }

    std::size_t queueDepth() const { return waiting_.size(); }
    const std::vector<LlmRequest> &running() const { return running_; }

    std::uint64_t joins() const { return joins_; }
    std::uint64_t rejoins() const { return rejoins_; }
    std::uint64_t leavesCompleted() const { return leavesCompleted_; }
    std::uint64_t leavesPreempted() const { return leavesPreempted_; }
    std::uint64_t queueRejects() const { return queueRejects_; }

    /** PIMSIM_ASSERTs the join/leave ledger balances. */
    void reconcile() const;

    /**
     * Attach a per-request causal tracer (nullptr detaches): evict-and-
     * requeue emits a "kv-evict" instant on the victim's span tree
     * (pid 6, KV track). Not owned.
     */
    void setRequestTracer(RequestTracer *tracer) { reqTracer_ = tracer; }

  private:
    /** Evict the youngest running member; requeue front, age-ordered. */
    void preemptYoungest();

    BatcherConfig config_;
    KvCacheManager &kv_;
    RequestTracer *reqTracer_ = nullptr;
    double nowNs_ = 0.0; ///< last beginIteration timestamp (evict traces)
    std::deque<LlmRequest> waiting_; ///< FCFS by arrival (age order)
    std::vector<LlmRequest> running_; ///< age order (oldest first)
    unsigned waveBatch_ = 0; ///< AdmitOnce: padded size of current wave

    std::uint64_t joins_ = 0;
    std::uint64_t rejoins_ = 0;
    std::uint64_t leavesCompleted_ = 0;
    std::uint64_t leavesPreempted_ = 0;
    std::uint64_t queueRejects_ = 0;
};

} // namespace pimsim::llm

#endif // PIMSIM_LLM_BATCHER_H
