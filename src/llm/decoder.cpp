#include "llm/decoder.h"

#include "common/logging.h"

namespace pimsim::llm {

std::uint64_t
DecoderSpec::weightBytes() const
{
    const std::uint64_t qkv =
        std::uint64_t{hiddenDim + 2 * kvDim()} * hiddenDim;
    const std::uint64_t out = std::uint64_t{hiddenDim} * hiddenDim;
    const std::uint64_t ffn = 2ULL * ffnDim * hiddenDim;
    return (qkv + out + ffn) * layers * 2ULL; // FP16
}

void
DecoderSpec::validate() const
{
    PIMSIM_ASSERT(layers >= 1, "DecoderSpec needs at least one layer");
    PIMSIM_ASSERT(heads >= 1 && hiddenDim % heads == 0,
                  "hiddenDim must divide evenly into heads (", hiddenDim,
                  " / ", heads, ")");
    PIMSIM_ASSERT(kvHeads >= 1 && kvHeads <= heads && heads % kvHeads == 0,
                  "kvHeads must divide heads (", heads, " / ", kvHeads, ")");
    PIMSIM_ASSERT(ffnDim >= 1, "DecoderSpec needs a positive ffnDim");
    PIMSIM_ASSERT(maxContextTokens >= 1,
                  "DecoderSpec needs a positive context limit");
}

DecoderSpec
DecoderSpec::tiny()
{
    DecoderSpec s;
    s.name = "tiny";
    s.layers = 4;
    s.hiddenDim = 512;
    s.heads = 8;
    s.kvHeads = 4;
    s.ffnDim = 1536;
    s.maxContextTokens = 2048;
    return s;
}

DecoderSpec
DecoderSpec::small()
{
    DecoderSpec s;
    s.name = "small";
    s.layers = 12;
    s.hiddenDim = 768;
    s.heads = 12;
    s.kvHeads = 4;
    s.ffnDim = 3072;
    s.maxContextTokens = 2048;
    return s;
}

unsigned
ctxBucket(unsigned ctx, unsigned granule)
{
    PIMSIM_ASSERT(granule >= 1, "zero context-bucket granule");
    if (ctx == 0)
        return granule;
    return ((ctx + granule - 1) / granule) * granule;
}

namespace {

LayerSpec
fcLayer(unsigned m, unsigned n, unsigned steps)
{
    LayerSpec layer;
    layer.kind = LayerSpec::Kind::Fc;
    layer.hidden = m;
    layer.input = n;
    layer.steps = steps;
    // Decode iterations are issued as pre-staged command buffers (the
    // AAM macro path of Section V-B): every step's launch is known at
    // iteration start, so launches amortise like encoder-style layers.
    layer.inputsAvailable = true;
    layer.pimEligible = true;
    return layer;
}

} // namespace

AppSpec
decodeFfnApp(const DecoderSpec &spec)
{
    spec.validate();
    AppSpec app;
    app.name = "llm." + spec.name + ".decode-ffn";
    const unsigned h = spec.hiddenDim;
    // Fused QKV projection: rows = q-dim + k-dim + v-dim.
    app.layers.push_back(fcLayer(h + 2 * spec.kvDim(), h, spec.layers));
    app.layers.push_back(fcLayer(h, h, spec.layers)); // attn output
    app.layers.push_back(fcLayer(spec.ffnDim, h, spec.layers)); // FFN up
    app.layers.push_back(fcLayer(h, spec.ffnDim, spec.layers)); // FFN down
    return app;
}

AppSpec
decodeAttnApp(const DecoderSpec &spec, unsigned ctx_bucket)
{
    spec.validate();
    PIMSIM_ASSERT(ctx_bucket >= 1, "zero attention context bucket");
    AppSpec app;
    app.name =
        "llm." + spec.name + ".decode-attn@" + std::to_string(ctx_bucket);
    const unsigned steps = spec.layers * spec.kvHeads;
    // score = K . q : (ctx x headDim) GEMV per KV head per layer
    app.layers.push_back(fcLayer(ctx_bucket, spec.headDim(), steps));
    // context = V^T . softmax(score) : (headDim x ctx) GEMV
    app.layers.push_back(fcLayer(spec.headDim(), ctx_bucket, steps));
    return app;
}

} // namespace pimsim::llm
