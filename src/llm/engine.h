/**
 * @file
 * The LLM decode-serving engine: iteration-level scheduling on PIM.
 *
 * A discrete-event simulation on the serving layer's virtual nanosecond
 * clock, shaped like ServingEngine but with *iterations* as the service
 * unit instead of whole requests. Each decode iteration runs the full
 * batch one token forward; its duration is lowered through the decoder
 * model onto the memoised ShardServiceModel path:
 *
 *   iter_ns = sum_joiners prefill(ctx)            — staged context
 *           + ffn(batch)                          — batched weight GEMVs
 *           + sum_members attn(ctxBucket(ctx), 1) — private KV GEMVs
 *
 * Prefill of a joiner prices the batched pass over its context through
 * the same weight GEMVs (batch = context bucket) plus the causal
 * attention triangle (attention at the full-context shape, batch =
 * bucket/2, the arithmetic mean of a growing window).
 *
 * Model weights are pinned in PIM rows at construction; the remaining
 * PIM region is partitioned per tenant into KvCacheManager pools, so
 * one tenant's decode state can never evict another's. Requests carry
 * deadlines: hopeless ones are shed at admission (optimistic service
 * estimate), queued ones time out at iteration boundaries, and late
 * completions count as SLO violations. After drain(), every submitted
 * request is exactly one of {completed, shed, timed out, rejected},
 * the batcher's join/leave ledger balances, and the KV accounting
 * reconciles to the block (allocated == freed + resident, zero live
 * sequences).
 *
 * Determinism: no randomness lives in the engine at all — identical
 * submission sequences replay to bit-identical reports.
 */

#ifndef PIMSIM_LLM_ENGINE_H
#define PIMSIM_LLM_ENGINE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slo.h"
#include "common/stats.h"
#include "llm/batcher.h"
#include "llm/decoder.h"
#include "llm/kv_cache.h"
#include "serve/resilience.h"
#include "serve/service_model.h"
#include "serve/serving_engine.h"
#include "sim/system.h"
#include "stack/driver.h"

namespace pimsim {
class TraceSession;
}

namespace pimsim::llm {

/** One tenant of the LLM engine. */
struct LlmTenantSpec
{
    std::string name;
    /** Completion deadline from arrival; <= 0 disables. */
    double deadlineNs = 0.0;
    /** KV block cap inside the tenant's partition (0 = partition only). */
    std::uint64_t kvBlockCap = 0;
};

/** Full LLM-serving configuration. */
struct LlmEngineConfig
{
    SystemConfig system = SystemConfig::pimHbmSystem();
    DecoderSpec decoder = DecoderSpec::tiny();
    std::vector<LlmTenantSpec> tenants;
    BatcherConfig batcher;
    KvCacheConfig kv;
    /** Attention context-length bucket (memo-table granularity). */
    unsigned ctxGranule = 128;
    /** Prompt-length bucket for prefill pricing. */
    unsigned prefillGranule = 64;
    /** Shed at admission when the optimistic estimate misses the
     *  deadline (only tenants with one). */
    bool deadlineAdmission = true;
    /** Latency histogram shape (values in ns). */
    std::uint64_t histBucketNs = 20'000;
    std::size_t histBuckets = 8192;
    /** Optional cross-engine service-time memo (benchmark sweeps). */
    std::shared_ptr<serve::ServiceTimeCache> timingCache;
    /** Worker threads for the measurement system (bit-identical; see
     *  PimSystem::setThreads). */
    unsigned simThreads = 1;
};

/** Per-tenant (or aggregate) LLM serving outcome. */
struct LlmTenantReport
{
    std::string name;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0; ///< queue full or infeasible
    std::uint64_t shed = 0;     ///< deadline unreachable at admission
    std::uint64_t timedOut = 0; ///< expired in the queue
    std::uint64_t completed = 0;
    std::uint64_t preemptions = 0; ///< evict-and-requeue events
    std::uint64_t sloViolations = 0;
    std::uint64_t tokensOut = 0; ///< tokens of completed requests
    /** Tokens of completed requests that met their deadline, /s. */
    double goodputTokensPerSec = 0.0;
    serve::LatencySummary ttft;     ///< arrival -> first token
    serve::LatencySummary perToken; ///< normalized: e2e / output tokens
    serve::LatencySummary e2e;      ///< arrival -> completion
};

/** Whole-run LLM serving outcome. */
struct LlmReport
{
    double horizonNs = 0.0;
    std::vector<LlmTenantReport> tenants;
    LlmTenantReport total;

    std::uint64_t iterations = 0;
    double meanBatch = 0.0; ///< mean decode batch over iterations
    std::uint64_t faultedIterations = 0;

    std::uint64_t kvBlocksAllocated = 0;
    std::uint64_t kvBlocksFreed = 0;
    std::uint64_t kvPeakResidentBlocks = 0;
    std::uint64_t kvAllocFailures = 0;

    /**
     * PIMSIM_ASSERT terminal-state accounting per tenant and in
     * aggregate: completed + shed + timedOut + rejected == submitted
     * and KV block conservation (allocated == freed + resident-at-
     * report, which is zero after drain). Benches re-assert on the
     * reports they publish.
     */
    void reconcile() const;
};

/** The LLM decode-serving system on one PIM-HBM configuration. */
class LlmEngine
{
  public:
    explicit LlmEngine(const LlmEngineConfig &config);

    unsigned numTenants() const
    {
        return static_cast<unsigned>(tenants_.size());
    }

    /**
     * Submit one request of `tenant` arriving at `arrival_ns` (>= the
     * engine clock) with the given prompt/output token counts.
     * @return false when admission control rejected or shed it.
     */
    bool submit(unsigned tenant, double arrival_ns, unsigned prompt_tokens,
                unsigned output_tokens);

    /** Advance the virtual clock, finishing every iteration due by `ns`. */
    void advanceTo(double ns);

    /** Serve until the queue and the batch are empty, then reconcile. */
    void drain();

    /** Next iteration boundary; serve::kNoEventNs when idle. */
    double nextEventNs() const;

    /** Requests completed since the last call (closed-loop feedback). */
    std::vector<LlmRequest> takeCompletions();

    double nowNs() const { return nowNs_; }

    const DecoderSpec &decoder() const { return config_.decoder; }
    const KvCacheManager &kv() const { return *kv_; }
    const ContinuousBatcher &batcher() const { return *batcher_; }

    /** The primary system's stats registry (exemplar pruning, extra
     *  registrations such as the trace self-stats group). */
    StatsRegistry &statsRegistry();

    /** One tenant's latency histograms (timeseries tracking). */
    const Histogram &ttftHistogram(unsigned tenant) const
    {
        return tenants_[tenant].ttftH;
    }
    const Histogram &e2eHistogram(unsigned tenant) const
    {
        return tenants_[tenant].e2eH;
    }

    /**
     * Attach the source of uncorrectable fault events (nullptr
     * detaches; shard 0 is queried — the engine runs the device as one
     * shard). A fault inside an iteration's window wastes it: no
     * tokens are produced and the same batch re-runs. Not owned.
     */
    void setFaultModel(serve::FaultModel *model) { faults_ = model; }

    /**
     * Record iterations on the pid-6 "llm" Chrome-trace track (nullptr
     * disables): tid 0 gets one span per decode iteration with batch /
     * join / prefill args, tid 1 gets KV-occupancy spans between
     * iteration boundaries.
     */
    void setTrace(TraceSession *session);

    /**
     * Attach a per-request causal tracer (nullptr detaches). Every
     * submitted request is minted a RequestTraceContext; its queue
     * wait, every decode iteration it participates in, first-token and
     * KV-evict instants, and its terminal state are buffered as a span
     * tree on pid 6 tid 2 and tail-sampled at the tracer. Not owned.
     */
    void setRequestTracer(RequestTracer *tracer);

    /**
     * Per-request terminal observations (timestamp + met-its-SLO)
     * accumulated since the last call — the SloMonitor feed. Sheds,
     * rejections, timeouts and late completions are bad; in-deadline
     * completions are good.
     */
    std::vector<SloObservation> takeSloObservations();

    /** Aggregate statistics over everything served so far. */
    LlmReport report() const;

    /**
     * Dump the full stats registry (device counters plus the "llm" and
     * "llm.kv" groups and per-tenant latency histograms) as JSON,
     * refreshing the registry-visible values first.
     */
    void writeStats(std::ostream &os) const;

  private:
    struct TenantState
    {
        TenantState(const LlmTenantSpec &s, std::uint64_t bucket_ns,
                    std::size_t buckets)
            : spec(s), ttftH(bucket_ns, buckets),
              perTokenH(bucket_ns, buckets), e2eH(bucket_ns, buckets)
        {
        }

        LlmTenantSpec spec;
        Histogram ttftH;
        Histogram perTokenH;
        Histogram e2eH;
        std::uint64_t submitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t shed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t completed = 0;
        std::uint64_t preemptions = 0;
        std::uint64_t sloViolations = 0;
        std::uint64_t tokensOut = 0;
        std::uint64_t goodTokens = 0; ///< tokens of SLO-met completions
    };

    /** Price one iteration of the current batch starting at `now`. */
    double iterationNs(const std::vector<LlmRequest> &joined) const;
    double prefillNs(unsigned context_tokens) const;
    double svcFfn(unsigned batch) const;
    double svcAttn(unsigned ctx_bucket) const;
    /** Optimistic completion estimate for deadline admission. */
    double estimateNs(unsigned tenant, unsigned prompt, unsigned output);

    /** Start the next iteration if any work is runnable. */
    void dispatch();
    /** Finish the in-flight iteration (fault check, token accounting). */
    void finishIteration();
    /** Time out queued requests whose deadline has passed. */
    void expireDue();
    void recordCompletion(const LlmRequest &request);
    void traceKvSpan(double start_ns, double end_ns);
    /** Close a request's trace (root span + outcome) and record its
     *  SLO observation. `terminal` names non-completed ends. */
    void finishRequestTrace(const LlmRequest &request, double end_ns,
                            const char *terminal, bool erred);
    LlmTenantReport summarise(const TenantState &t, double horizon_ns) const;

    LlmEngineConfig config_;
    std::unique_ptr<PimSystem> system_;
    std::unique_ptr<PimDriver> weightDriver_;
    PimRowBlock weightBlock_;
    std::vector<std::unique_ptr<PimDriver>> kvPartitions_;
    std::unique_ptr<KvCacheManager> kv_;
    std::unique_ptr<ContinuousBatcher> batcher_;
    mutable std::unique_ptr<serve::ShardServiceModel> model_;
    AppSpec ffnApp_;
    std::vector<TenantState> tenants_;

    serve::FaultModel *faults_ = nullptr;
    TraceSession *trace_ = nullptr;
    RequestTracer *reqTracer_ = nullptr;
    std::vector<SloObservation> sloObs_;
    mutable StatGroup stats_{"llm"};

    bool iterationInFlight_ = false;
    double iterationStartNs_ = 0.0;
    double iterationEndNs_ = 0.0;
    std::vector<LlmRequest> lastJoined_;

    std::uint64_t iterations_ = 0;
    std::uint64_t faultedIterations_ = 0;
    std::uint64_t batchTokenSum_ = 0; ///< sum of batch sizes over iters

    std::vector<LlmRequest> completions_;
    double nowNs_ = 0.0;
    double lastKvMarkNs_ = 0.0;
    std::uint64_t nextId_ = 1;
};

} // namespace pimsim::llm

#endif // PIMSIM_LLM_ENGINE_H
