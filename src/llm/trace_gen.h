/**
 * @file
 * Production-shaped LLM traffic generation.
 *
 * Serving traces published from production LLM fleets share two shapes
 * this module reproduces deterministically: token lengths are heavy-
 * tailed (clamped lognormal prompt/output draws via the serving
 * layer's LengthSampler) and arrivals are bursty (rate-multiplier
 * windows realised by the thinning construction shared with
 * ChaosCampaign). Every draw flows from one campaign seed, so a trace
 * replays bit-identically.
 */

#ifndef PIMSIM_LLM_TRACE_GEN_H
#define PIMSIM_LLM_TRACE_GEN_H

#include <cstdint>
#include <vector>

#include "llm/engine.h"
#include "serve/load_gen.h"

namespace pimsim::llm {

/** One tenant's LLM traffic description. */
struct LlmTrafficSpec
{
    unsigned tenant = 0;
    double ratePerSec = 0.0; ///< mean Poisson arrival rate
    serve::LengthConfig prompt{512.0, 0.8, 8, 1536};
    serve::LengthConfig output{64.0, 0.7, 4, 512};
};

/** A scheduled LLM submission. */
struct LlmArrival
{
    double ns = 0.0;
    unsigned tenant = 0;
    unsigned promptTokens = 0;
    unsigned outputTokens = 0;
};

/**
 * Pre-draw a complete LLM trace over `horizon_ns`: (bursty) Poisson
 * arrival times per tenant with lognormal prompt/output lengths
 * attached, merged time-sorted. Deterministic in `seed`; pass an
 * inactive BurstSpec for steady traffic.
 */
std::vector<LlmArrival>
drawLlmTrace(const std::vector<LlmTrafficSpec> &specs, double horizon_ns,
             std::uint64_t seed, const serve::BurstSpec &burst = {});

/**
 * Feed a pre-drawn trace through `engine`, then drain it.
 * @return the engine's final report (reconciled by drain()).
 */
LlmReport runOpenLoop(LlmEngine &engine,
                      const std::vector<LlmArrival> &arrivals);

} // namespace pimsim::llm

#endif // PIMSIM_LLM_TRACE_GEN_H
