#include "llm/batcher.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"
#include "common/trace.h"

namespace pimsim::llm {

const char *
batchPolicyName(BatchPolicy policy)
{
    switch (policy) {
    case BatchPolicy::AdmitOnce:
        return "admit-once";
    case BatchPolicy::Continuous:
        return "continuous";
    }
    return "?";
}

namespace {

/** Strict arrival-age order; id breaks exact-tie timestamps. */
bool
olderThan(const LlmRequest &a, const LlmRequest &b)
{
    return std::tie(a.arrivalNs, a.id) < std::tie(b.arrivalNs, b.id);
}

} // namespace

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config,
                                     KvCacheManager &kv)
    : config_(config), kv_(kv)
{
    PIMSIM_ASSERT(config_.maxBatch >= 1, "zero batch size");
    PIMSIM_ASSERT(config_.maxQueue >= 1, "zero queue depth");
}

bool
ContinuousBatcher::admit(LlmRequest request)
{
    if (waiting_.size() >= config_.maxQueue) {
        ++queueRejects_;
        return false;
    }
    // Arrivals come time-ordered, so this is normally push_back; the
    // sorted insert keeps the age invariant unconditional.
    const auto pos = std::lower_bound(
        waiting_.begin(), waiting_.end(), request,
        [](const LlmRequest &a, const LlmRequest &b) {
            return olderThan(a, b);
        });
    waiting_.insert(pos, std::move(request));
    return true;
}

bool
ContinuousBatcher::beginIteration(double now, std::vector<LlmRequest> &joined)
{
    joined.clear();
    nowNs_ = now;

    // Join pass. AdmitOnce only refills an empty batch (the static
    // baseline); Continuous tops the batch up every iteration.
    const bool may_join =
        config_.policy == BatchPolicy::Continuous || running_.empty();
    std::vector<std::uint64_t> joined_ids;
    while (may_join && !waiting_.empty() &&
           running_.size() < config_.maxBatch) {
        LlmRequest &head = waiting_.front();
        const KvSeqId seq = kv_.createSeq(head.tenant);
        // A joiner stages its whole context (prompt, plus recompute of
        // prior output on a rejoin) before decoding. Head-of-line
        // blocking on failure is deliberate: skipping ahead to smaller
        // requests would starve large ones.
        if (!kv_.reserve(seq, head.contextTokens())) {
            kv_.release(seq);
            break;
        }
        LlmRequest req = std::move(head);
        waiting_.pop_front();
        req.kvSeq = seq;
        if (req.preemptions > 0)
            ++rejoins_;
        else
            ++joins_;
        joined_ids.push_back(req.id);
        const auto pos =
            std::lower_bound(running_.begin(), running_.end(), req,
                             [](const LlmRequest &a, const LlmRequest &b) {
                                 return olderThan(a, b);
                             });
        running_.insert(pos, std::move(req));
    }

    // Decode-capacity pass: every member must be able to append one
    // token this iteration. Under pressure the youngest member is
    // evicted and requeued; the oldest is never a victim while anyone
    // younger runs, which is what makes the scheme starvation-free.
    std::size_t i = 0;
    while (i < running_.size()) {
        if (kv_.reserve(running_[i].kvSeq,
                        std::uint64_t{running_[i].contextTokens()} + 1)) {
            ++i;
            continue;
        }
        PIMSIM_ASSERT(running_.size() > 1,
                      "sole running request cannot grow its KV cache; "
                      "admission feasibility check was bypassed");
        preemptYoungest();
        // If the victim was the failing member itself, i now points
        // past the shrunk batch and the loop terminates naturally.
    }

    for (const std::uint64_t id : joined_ids)
        for (const LlmRequest &r : running_)
            if (r.id == id)
                joined.push_back(r);

    // A fresh AdmitOnce wave is padded to its admitted size: the cost
    // model keeps pricing the FFN at waveBatch_ until the wave drains.
    if (config_.policy == BatchPolicy::AdmitOnce && !joined_ids.empty())
        waveBatch_ = static_cast<unsigned>(running_.size());
    return !running_.empty();
}

std::vector<LlmRequest>
ContinuousBatcher::finishIteration(double end_ns)
{
    std::vector<LlmRequest> completed;
    for (auto it = running_.begin(); it != running_.end();) {
        LlmRequest &r = *it;
        ++r.decoded;
        if (r.firstTokenNs < 0.0)
            r.firstTokenNs = end_ns;
        if (r.done()) {
            r.completeNs = end_ns;
            kv_.release(r.kvSeq);
            r.kvSeq = KvSeqId{};
            ++leavesCompleted_;
            completed.push_back(std::move(r));
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
    if (running_.empty())
        waveBatch_ = 0; // wave drained; padding slots are released
    return completed;
}

std::vector<LlmRequest>
ContinuousBatcher::expireQueued(double now)
{
    std::vector<LlmRequest> expired;
    for (auto it = waiting_.begin(); it != waiting_.end();) {
        if (it->hasDeadline() && it->deadlineNs <= now) {
            expired.push_back(std::move(*it));
            it = waiting_.erase(it);
        } else {
            ++it;
        }
    }
    return expired;
}

void
ContinuousBatcher::reconcile() const
{
    PIMSIM_ASSERT(joins_ + rejoins_ ==
                      leavesCompleted_ + leavesPreempted_ + running_.size(),
                  "batch ledger drift: joins ", joins_, " + rejoins ",
                  rejoins_, " != completed ", leavesCompleted_,
                  " + preempted ", leavesPreempted_, " + running ",
                  running_.size());
}

void
ContinuousBatcher::preemptYoungest()
{
    PIMSIM_ASSERT(!running_.empty(), "preempt on empty batch");
    LlmRequest victim = std::move(running_.back());
    running_.pop_back();
    kv_.release(victim.kvSeq);
    victim.kvSeq = KvSeqId{};
    ++victim.preemptions;
    ++leavesPreempted_;
    if (reqTracer_ != nullptr) {
        // The eviction lands on the KV track so the victim's span tree
        // shows *why* its decode has a hole.
        reqTracer_->instant(victim.trace, kTracePidLlm, 1, "kv-evict",
                            "kv", nowNs_);
    }
    // Requeue at the age-correct position — for the youngest running
    // member that is the queue front, ahead of everything that arrived
    // after it joined.
    const auto pos = std::lower_bound(
        waiting_.begin(), waiting_.end(), victim,
        [](const LlmRequest &a, const LlmRequest &b) {
            return olderThan(a, b);
        });
    waiting_.insert(pos, std::move(victim));
}

} // namespace pimsim::llm
