/**
 * @file
 * Paged KV-cache allocator over PIM row accounting.
 *
 * Decode state (the K and V vectors of every resident token) is the
 * resource that makes LLM serving hard: it grows every iteration and
 * outlives the request's position in any batch. Following the paged
 * approach, sequences own chains of fixed-size *token blocks*
 * (`blockTokens` tokens each), and each block maps onto a run of
 * device-wide PIM rows obtained from a `PimDriver` partition — the same
 * row extents the AB-mode lock-step pattern requires, so attention
 * GEMVs read the cache with one ACT per row across all banks.
 *
 * Capacity is per tenant: each tenant allocates from its own PimDriver
 * partition (hard isolation, mirroring the serving layer's row
 * sharding) and is additionally clamped by a block cap. Allocation
 * failure is a recoverable signal the batcher turns into preemption,
 * not an error.
 *
 * Accounting is exact by construction and checked by reconcile():
 * blocksAllocated == blocksFreed + resident blocks, globally and per
 * tenant, at any quiescent point.
 */

#ifndef PIMSIM_LLM_KV_CACHE_H
#define PIMSIM_LLM_KV_CACHE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "llm/decoder.h"
#include "stack/driver.h"

namespace pimsim::llm {

/** KV paging parameters. */
struct KvCacheConfig
{
    /** Tokens per block; vLLM-style small blocks bound internal
     *  fragmentation to blockTokens-1 tokens per sequence. */
    unsigned blockTokens = 32;
};

/** Opaque handle to one sequence's block chain. */
struct KvSeqId
{
    std::uint64_t value = 0;
    bool operator<(const KvSeqId &o) const { return value < o.value; }
    bool operator==(const KvSeqId &o) const { return value == o.value; }
};

/** Paged KV-cache allocator (one per LLM engine). */
class KvCacheManager
{
  public:
    /**
     * @param spec         decoder whose kvBytesPerToken() sizes blocks
     * @param config       paging parameters
     * @param row_bytes    bytes one device-wide PIM row holds (bytes
     *                     per DRAM row x banks x channels)
     * @param tenants      one PimDriver partition per tenant
     *                     (non-owning; must outlive the manager)
     * @param block_caps   per-tenant block caps (0 = partition-limited
     *                     only); size must match `tenants`
     */
    KvCacheManager(const DecoderSpec &spec, const KvCacheConfig &config,
                   std::uint64_t row_bytes,
                   std::vector<PimDriver *> tenants,
                   std::vector<std::uint64_t> block_caps);

    /** Rows each block occupies in its tenant's partition. */
    unsigned rowsPerBlock() const { return rowsPerBlock_; }
    unsigned blockTokens() const { return config_.blockTokens; }

    /** Blocks needed to hold `tokens` tokens. */
    std::uint64_t blocksFor(std::uint64_t tokens) const;

    /** Hard block cap for `tenant` (cap and partition combined). */
    std::uint64_t capBlocks(unsigned tenant) const;

    /** Create an empty sequence owned by `tenant`. */
    KvSeqId createSeq(unsigned tenant);

    /**
     * Grow `seq` until it holds at least `tokens` tokens, allocating
     * blocks as needed. All-or-nothing: on failure nothing changes and
     * the caller preempts or rejects. Shrinking never happens here —
     * KV state is append-only until release.
     */
    bool reserve(KvSeqId seq, std::uint64_t tokens);

    /** Free every block of `seq` and forget it. */
    void release(KvSeqId seq);

    /** Blocks currently held by `seq`. */
    std::uint64_t seqBlocks(KvSeqId seq) const;

    /** Blocks resident across all live sequences. */
    std::uint64_t residentBlocks() const { return residentBlocks_; }
    /** Blocks resident for one tenant. */
    std::uint64_t residentBlocks(unsigned tenant) const;

    std::uint64_t blocksAllocated() const { return blocksAllocated_; }
    std::uint64_t blocksFreed() const { return blocksFreed_; }
    std::uint64_t allocFailures() const { return allocFailures_; }
    std::uint64_t peakResidentBlocks() const { return peakResident_; }

    /** Live sequences (for leak checks at drain). */
    std::size_t liveSeqs() const { return seqs_.size(); }

    /**
     * PIMSIM_ASSERTs allocated == freed + resident, globally and per
     * tenant, and that per-sequence chains sum to the resident count.
     */
    void reconcile() const;

    /** Refresh fragmentation scalars and return the stats group
     *  ("llm.kv": counters + free-row / largest-extent / internal-frag
     *  scalars) for StatsRegistry registration. */
    StatGroup &statsGroup();

  private:
    struct Sequence
    {
        unsigned tenant = 0;
        std::uint64_t tokens = 0;
        std::vector<PimRowBlock> blocks;
    };

    DecoderSpec spec_;
    KvCacheConfig config_;
    unsigned rowsPerBlock_ = 1;
    std::vector<PimDriver *> tenants_;
    std::vector<std::uint64_t> blockCaps_;

    std::map<KvSeqId, Sequence> seqs_;
    std::uint64_t nextSeq_ = 1;

    std::uint64_t blocksAllocated_ = 0;
    std::uint64_t blocksFreed_ = 0;
    std::uint64_t allocFailures_ = 0;
    std::uint64_t residentBlocks_ = 0;
    std::uint64_t peakResident_ = 0;
    std::vector<std::uint64_t> residentPerTenant_;
    std::vector<std::uint64_t> allocatedPerTenant_;
    std::vector<std::uint64_t> freedPerTenant_;

    StatGroup stats_;
};

} // namespace pimsim::llm

#endif // PIMSIM_LLM_KV_CACHE_H
