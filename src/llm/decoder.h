/**
 * @file
 * Decoder-layer model: lowering transformer decode onto PIM GEMVs.
 *
 * Transformer decode is the paper's sweet spot restated: every matrix
 * in the layer stack multiplies a single activation vector per request
 * per step, so the whole iteration is a bag of memory-bound GEMVs —
 * exactly the bank-parallel FP16 MAC op of Section IV. This module
 * describes a decoder (`DecoderSpec`) and lowers one decode iteration
 * into two AppSpec shapes priced by the existing memoised
 * ShardServiceModel path:
 *
 *  - decodeFfnApp(): the weight GEMVs (QKV projection, attention
 *    output, FFN up/down) shared by every request in the batch. Their
 *    weights are resident, so batching across requests amortises the
 *    per-kernel launch overhead — the lever continuous batching pulls.
 *  - decodeAttnApp(ctx): the KV-cache GEMVs (score = K·q, context =
 *    V·softmax) whose matrix is each request's own cache. These cannot
 *    batch across requests, and their shape grows with context length;
 *    context lengths are bucketed (ctxBucket) so the memo table stays
 *    small while million-token campaigns stay cycle-accurate per shape.
 *
 * GQA (kvHeads < heads) shrinks both the KV bytes per token and the
 * attention GEMV count, which is why it is first-class in the spec.
 */

#ifndef PIMSIM_LLM_DECODER_H
#define PIMSIM_LLM_DECODER_H

#include <cstdint>
#include <string>

#include "stack/workloads.h"

namespace pimsim::llm {

/** Architecture of one decoder-only transformer. */
struct DecoderSpec
{
    std::string name = "decoder";
    unsigned layers = 4;
    unsigned hiddenDim = 512;
    unsigned heads = 8;
    /** Grouped-query attention: KV heads (== heads means full MHA). */
    unsigned kvHeads = 4;
    unsigned ffnDim = 1536;
    /** Hard context limit (prompt + generated), tokens. */
    unsigned maxContextTokens = 2048;

    unsigned headDim() const { return hiddenDim / heads; }
    unsigned kvDim() const { return kvHeads * headDim(); }

    /** K + V bytes appended per token across all layers (FP16). */
    std::uint64_t kvBytesPerToken() const
    {
        return 2ULL * layers * kvDim() * 2ULL;
    }

    /** Total weight bytes (FP16) for row-budget accounting. */
    std::uint64_t weightBytes() const;

    /** PIMSIM_ASSERTs the spec is internally consistent. */
    void validate() const;

    /** ~10M-param toy model: fast enough for tests and smoke runs. */
    static DecoderSpec tiny();
    /** ~125M-param small model: the bench's default subject. */
    static DecoderSpec small();
};

/**
 * Round `ctx` up to a multiple of `granule` (minimum one granule).
 * Bucketing bounds the number of distinct attention shapes the service
 * cache must measure: at granule 128 a 2048-token window costs at most
 * 16 cycle-level simulations per batch size, ever.
 */
unsigned ctxBucket(unsigned ctx, unsigned granule);

/**
 * The batched weight-GEMV portion of one decode iteration: QKV
 * projection, attention output projection, FFN up and down, with
 * steps = layers. Service time is a function of the decode batch size.
 */
AppSpec decodeFfnApp(const DecoderSpec &spec);

/**
 * The per-request KV-cache GEMV portion of one decode iteration at
 * context bucket `ctx_bucket`: score (ctx x headDim) and context
 * (headDim x ctx) GEMVs, steps = layers x kvHeads. Always priced at
 * batch 1 — a request's cache is private.
 */
AppSpec decodeAttnApp(const DecoderSpec &spec, unsigned ctx_bucket);

} // namespace pimsim::llm

#endif // PIMSIM_LLM_DECODER_H
