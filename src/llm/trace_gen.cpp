#include "llm/trace_gen.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"
#include "common/rng.h"

namespace pimsim::llm {

std::vector<LlmArrival>
drawLlmTrace(const std::vector<LlmTrafficSpec> &specs, double horizon_ns,
             std::uint64_t seed, const serve::BurstSpec &burst)
{
    std::vector<LlmArrival> out;
    for (const LlmTrafficSpec &spec : specs) {
        std::vector<serve::ArrivalSpec> one{{spec.tenant, spec.ratePerSec}};
        const std::vector<serve::Arrival> times =
            serve::burstyPoissonArrivals(one, horizon_ns, seed, burst);
        // Length draws ride a distinct stream offset so adding/removing
        // a burst (which changes how many uniforms the arrival process
        // consumes) cannot silently reshape the lengths.
        Rng lengths(seed ^ 0x11a5eed5ULL ^
                    (0x9e3779b97f4a7c15ULL * (std::uint64_t{spec.tenant} + 1)));
        const serve::LengthSampler promptLen(spec.prompt);
        const serve::LengthSampler outputLen(spec.output);
        for (const serve::Arrival &a : times) {
            LlmArrival arrival;
            arrival.ns = a.ns;
            arrival.tenant = spec.tenant;
            arrival.promptTokens = promptLen.sample(lengths);
            arrival.outputTokens = outputLen.sample(lengths);
            out.push_back(arrival);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const LlmArrival &a, const LlmArrival &b) {
                  return std::tie(a.ns, a.tenant) < std::tie(b.ns, b.tenant);
              });
    return out;
}

LlmReport
runOpenLoop(LlmEngine &engine, const std::vector<LlmArrival> &arrivals)
{
    for (const LlmArrival &a : arrivals)
        engine.submit(a.tenant, std::max(a.ns, engine.nowNs()),
                      a.promptTokens, a.outputTokens);
    engine.drain();
    engine.takeCompletions();
    return engine.report();
}

} // namespace pimsim::llm
