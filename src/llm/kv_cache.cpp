#include "llm/kv_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim::llm {

KvCacheManager::KvCacheManager(const DecoderSpec &spec,
                               const KvCacheConfig &config,
                               std::uint64_t row_bytes,
                               std::vector<PimDriver *> tenants,
                               std::vector<std::uint64_t> block_caps)
    : spec_(spec), config_(config), tenants_(std::move(tenants)),
      blockCaps_(std::move(block_caps)), stats_("llm.kv")
{
    spec_.validate();
    PIMSIM_ASSERT(config_.blockTokens >= 1, "zero KV block size");
    PIMSIM_ASSERT(row_bytes >= 1, "zero device row bytes");
    PIMSIM_ASSERT(!tenants_.empty(), "KV cache needs at least one tenant");
    PIMSIM_ASSERT(blockCaps_.size() == tenants_.size(),
                  "block_caps size (", blockCaps_.size(),
                  ") != tenant count (", tenants_.size(), ")");
    for (const PimDriver *driver : tenants_)
        PIMSIM_ASSERT(driver != nullptr, "null tenant KV partition");

    const std::uint64_t block_bytes =
        std::uint64_t{config_.blockTokens} * spec_.kvBytesPerToken();
    rowsPerBlock_ = static_cast<unsigned>(
        std::max<std::uint64_t>(1, (block_bytes + row_bytes - 1) / row_bytes));

    residentPerTenant_.assign(tenants_.size(), 0);
    allocatedPerTenant_.assign(tenants_.size(), 0);
    freedPerTenant_.assign(tenants_.size(), 0);
}

std::uint64_t
KvCacheManager::blocksFor(std::uint64_t tokens) const
{
    return (tokens + config_.blockTokens - 1) / config_.blockTokens;
}

std::uint64_t
KvCacheManager::capBlocks(unsigned tenant) const
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "tenant out of range");
    const std::uint64_t partition_blocks =
        tenants_[tenant]->capacityRows() / rowsPerBlock_;
    const std::uint64_t cap = blockCaps_[tenant];
    return cap == 0 ? partition_blocks : std::min(cap, partition_blocks);
}

KvSeqId
KvCacheManager::createSeq(unsigned tenant)
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "tenant out of range");
    const KvSeqId id{nextSeq_++};
    Sequence seq;
    seq.tenant = tenant;
    seqs_.emplace(id, std::move(seq));
    return id;
}

bool
KvCacheManager::reserve(KvSeqId seq, std::uint64_t tokens)
{
    const auto it = seqs_.find(seq);
    PIMSIM_ASSERT(it != seqs_.end(), "reserve on unknown KV sequence ",
                  seq.value);
    Sequence &s = it->second;
    const std::uint64_t want = blocksFor(tokens);
    const std::uint64_t have = s.blocks.size();
    if (want <= have) {
        s.tokens = std::max(s.tokens, tokens);
        return true;
    }
    const std::uint64_t grow = want - have;
    // Per-tenant cap first: a request over cap must never be able to
    // evict its way to admission (that would be livelock, not policy).
    if (residentPerTenant_[s.tenant] + grow > capBlocks(s.tenant)) {
        ++allocFailures_;
        return false;
    }
    PimDriver &driver = *tenants_[s.tenant];
    std::vector<PimRowBlock> fresh;
    fresh.reserve(grow);
    for (std::uint64_t i = 0; i < grow; ++i) {
        PimRowBlock block;
        if (driver.allocRows(rowsPerBlock_, block) != PimStatus::Ok) {
            // All-or-nothing: roll back this reserve's partial blocks.
            for (const PimRowBlock &b : fresh) {
                const PimStatus st = driver.freeBlock(b);
                PIMSIM_ASSERT(st == PimStatus::Ok,
                              "rollback free failed: ", pimStatusName(st));
            }
            ++allocFailures_;
            return false;
        }
        fresh.push_back(block);
    }
    for (const PimRowBlock &b : fresh)
        s.blocks.push_back(b);
    s.tokens = std::max(s.tokens, tokens);
    blocksAllocated_ += grow;
    allocatedPerTenant_[s.tenant] += grow;
    residentBlocks_ += grow;
    residentPerTenant_[s.tenant] += grow;
    peakResident_ = std::max(peakResident_, residentBlocks_);
    return true;
}

void
KvCacheManager::release(KvSeqId seq)
{
    const auto it = seqs_.find(seq);
    PIMSIM_ASSERT(it != seqs_.end(), "release of unknown KV sequence ",
                  seq.value);
    Sequence &s = it->second;
    PimDriver &driver = *tenants_[s.tenant];
    const std::uint64_t count = s.blocks.size();
    for (const PimRowBlock &b : s.blocks) {
        const PimStatus st = driver.freeBlock(b);
        PIMSIM_ASSERT(st == PimStatus::Ok,
                      "KV block free failed: ", pimStatusName(st));
    }
    blocksFreed_ += count;
    freedPerTenant_[s.tenant] += count;
    PIMSIM_ASSERT(residentBlocks_ >= count &&
                      residentPerTenant_[s.tenant] >= count,
                  "resident underflow on KV release");
    residentBlocks_ -= count;
    residentPerTenant_[s.tenant] -= count;
    seqs_.erase(it);
}

std::uint64_t
KvCacheManager::seqBlocks(KvSeqId seq) const
{
    const auto it = seqs_.find(seq);
    PIMSIM_ASSERT(it != seqs_.end(), "seqBlocks of unknown KV sequence ",
                  seq.value);
    return it->second.blocks.size();
}

std::uint64_t
KvCacheManager::residentBlocks(unsigned tenant) const
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "tenant out of range");
    return residentPerTenant_[tenant];
}

void
KvCacheManager::reconcile() const
{
    PIMSIM_ASSERT(blocksAllocated_ == blocksFreed_ + residentBlocks_,
                  "KV accounting drift: allocated ", blocksAllocated_,
                  " != freed ", blocksFreed_, " + resident ",
                  residentBlocks_);
    std::uint64_t chained = 0;
    for (const auto &[id, s] : seqs_)
        chained += s.blocks.size();
    PIMSIM_ASSERT(chained == residentBlocks_,
                  "KV chain total ", chained, " != resident counter ",
                  residentBlocks_);
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        PIMSIM_ASSERT(allocatedPerTenant_[t] ==
                          freedPerTenant_[t] + residentPerTenant_[t],
                      "KV accounting drift for tenant ", t, ": allocated ",
                      allocatedPerTenant_[t], " != freed ", freedPerTenant_[t],
                      " + resident ", residentPerTenant_[t]);
    }
}

StatGroup &
KvCacheManager::statsGroup()
{
    stats_.reset();
    stats_.add("blocksAllocated", blocksAllocated_);
    stats_.add("blocksFreed", blocksFreed_);
    stats_.add("allocFailures", allocFailures_);
    stats_.add("residentBlocks", residentBlocks_);
    stats_.add("peakResidentBlocks", peakResident_);
    stats_.add("liveSeqs", seqs_.size());
    stats_.set("rowsPerBlock", static_cast<double>(rowsPerBlock_));
    std::uint64_t free_rows = 0;
    unsigned largest_extent = 0;
    std::uint64_t capacity_rows = 0;
    for (const PimDriver *driver : tenants_) {
        free_rows += driver->freeRows();
        largest_extent = std::max(largest_extent, driver->largestFreeExtent());
        capacity_rows += driver->capacityRows();
    }
    stats_.set("freeRows", static_cast<double>(free_rows));
    stats_.set("largestFreeExtent", static_cast<double>(largest_extent));
    stats_.set("capacityRows", static_cast<double>(capacity_rows));
    // Internal fragmentation: resident token capacity unused by the
    // sequences that own it (last-block slack).
    std::uint64_t capacity_tokens = 0;
    std::uint64_t used_tokens = 0;
    for (const auto &[id, s] : seqs_) {
        capacity_tokens += s.blocks.size() * config_.blockTokens;
        used_tokens += std::min<std::uint64_t>(
            s.tokens, s.blocks.size() * config_.blockTokens);
    }
    stats_.set("internalFragTokens",
               static_cast<double>(capacity_tokens - used_tokens));
    return stats_;
}

} // namespace pimsim::llm
