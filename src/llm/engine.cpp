#include "llm/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "serve/scheduler.h"

namespace pimsim::llm {

namespace {

serve::LatencySummary
summariseHist(const Histogram &h)
{
    serve::LatencySummary s;
    if (h.count() == 0)
        return s;
    s.meanNs = h.mean();
    s.p50Ns = h.p50();
    s.p95Ns = h.p95();
    s.p99Ns = h.p99();
    s.maxNs = static_cast<double>(h.max());
    return s;
}

} // namespace

void
LlmReport::reconcile() const
{
    const auto check = [](const LlmTenantReport &t) {
        PIMSIM_ASSERT(t.completed + t.shed + t.timedOut + t.rejected ==
                          t.submitted,
                      "LLM terminal-state drift for '", t.name,
                      "': completed ", t.completed, " + shed ", t.shed,
                      " + timedOut ", t.timedOut, " + rejected ", t.rejected,
                      " != submitted ", t.submitted);
        PIMSIM_ASSERT(t.admitted == t.submitted - t.rejected - t.shed,
                      "LLM admission drift for '", t.name, "'");
    };
    for (const LlmTenantReport &t : tenants)
        check(t);
    check(total);
    PIMSIM_ASSERT(kvBlocksAllocated == kvBlocksFreed,
                  "KV blocks leaked across the run: allocated ",
                  kvBlocksAllocated, " != freed ", kvBlocksFreed);
}

LlmEngine::LlmEngine(const LlmEngineConfig &config) : config_(config)
{
    config_.decoder.validate();
    PIMSIM_ASSERT(!config_.tenants.empty(), "LLM engine needs tenants");
    PIMSIM_ASSERT(config_.system.withPim(),
                  "LLM decode serving requires a PIM system");
    PIMSIM_ASSERT(config_.ctxGranule >= 1 && config_.prefillGranule >= 1,
                  "zero bucketing granule");

    system_ = std::make_unique<PimSystem>(config_.system);
    const unsigned channels = system_->numChannels();

    // Pin the model weights in PIM rows first; decode state pages into
    // whatever is left.
    weightDriver_ = std::make_unique<PimDriver>(*system_);
    const std::uint64_t row_bytes =
        config_.system.geometry.bytesPerRow() *
        config_.system.geometry.banksPerPch() * channels;
    const std::uint64_t weight_rows_needed =
        (config_.decoder.weightBytes() + row_bytes - 1) / row_bytes;
    PIMSIM_ASSERT(weight_rows_needed < weightDriver_->capacityRows(),
                  "decoder weights (", weight_rows_needed,
                  " rows) do not fit the PIM region (",
                  weightDriver_->capacityRows(), " rows)");
    const PimStatus st = weightDriver_->allocRows(
        static_cast<unsigned>(weight_rows_needed), weightBlock_);
    PIMSIM_ASSERT(st == PimStatus::Ok,
                  "weight residency allocation failed: ", pimStatusName(st));

    // Partition the remaining rows per tenant: hard KV isolation, the
    // row-range analogue of the serving layer's channel sharding.
    const unsigned kv_first = weightBlock_.firstRow + weightBlock_.numRows;
    const unsigned kv_total = weightDriver_->baseRow() +
                              weightDriver_->capacityRows() - kv_first;
    const unsigned tenants = static_cast<unsigned>(config_.tenants.size());
    const unsigned span = kv_total / tenants;
    PIMSIM_ASSERT(span >= 1, "no PIM rows left for the KV cache");
    std::vector<PimDriver *> partitions;
    std::vector<std::uint64_t> caps;
    for (unsigned t = 0; t < tenants; ++t) {
        kvPartitions_.push_back(std::make_unique<PimDriver>(
            *system_, kv_first + t * span, span));
        partitions.push_back(kvPartitions_.back().get());
        caps.push_back(config_.tenants[t].kvBlockCap);
    }
    kv_ = std::make_unique<KvCacheManager>(config_.decoder, config_.kv,
                                           row_bytes, std::move(partitions),
                                           std::move(caps));
    batcher_ = std::make_unique<ContinuousBatcher>(config_.batcher, *kv_);
    model_ = std::make_unique<serve::ShardServiceModel>(
        config_.system, channels, config_.timingCache);
    model_->setSimThreads(config_.simThreads);
    ffnApp_ = decodeFfnApp(config_.decoder);

    tenants_.reserve(config_.tenants.size());
    for (const LlmTenantSpec &spec : config_.tenants)
        tenants_.emplace_back(spec, config_.histBucketNs,
                              config_.histBuckets);
    // Histogram registration only after tenants_ reached its final size
    // (reallocation would dangle the registered pointers).
    StatsRegistry &registry = system_->statsRegistry();
    for (TenantState &t : tenants_) {
        const std::string base = "llm.tenant." + t.spec.name;
        registry.addHistogram(base + ".ttftNs", &t.ttftH);
        registry.addHistogram(base + ".perTokenNs", &t.perTokenH);
        registry.addHistogram(base + ".e2eNs", &t.e2eH);
    }
    registry.addGroup("llm", &stats_);
    registry.addGroup("llm.kv", &kv_->statsGroup());
}

bool
LlmEngine::submit(unsigned tenant, double arrival_ns, unsigned prompt_tokens,
                  unsigned output_tokens)
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "tenant out of range");
    PIMSIM_ASSERT(arrival_ns >= nowNs_, "time ran backwards on submit");
    PIMSIM_ASSERT(prompt_tokens >= 1 && output_tokens >= 1,
                  "empty prompt or output");
    advanceTo(arrival_ns);
    TenantState &t = tenants_[tenant];
    ++t.submitted;

    LlmRequest req;
    req.id = nextId_++;
    req.tenant = tenant;
    req.promptTokens = prompt_tokens;
    req.outputTokens = output_tokens;
    req.arrivalNs = arrival_ns;
    if (t.spec.deadlineNs > 0.0)
        req.deadlineNs = arrival_ns + t.spec.deadlineNs;
    if (reqTracer_ != nullptr)
        req.trace = reqTracer_->begin(arrival_ns);

    // Feasibility: an admitted request must be guaranteed to fit its
    // tenant's KV budget at terminal length, or preemption could churn
    // forever without ever seating it.
    const unsigned total_tokens = prompt_tokens + output_tokens;
    if (total_tokens > config_.decoder.maxContextTokens ||
        kv_->blocksFor(total_tokens) > kv_->capBlocks(tenant)) {
        ++t.rejected;
        finishRequestTrace(req, nowNs_, "rejected", /*erred=*/true);
        return false;
    }

    if (config_.deadlineAdmission && req.hasDeadline()) {
        // Optimistic estimate (zero queueing, full batch amortisation
        // unavailable): if even that misses the deadline, shed now
        // rather than burning decode iterations on a doomed request.
        const double est = estimateNs(tenant, prompt_tokens, output_tokens);
        if (arrival_ns + est > req.deadlineNs) {
            ++t.shed;
            finishRequestTrace(req, nowNs_, "shed", /*erred=*/true);
            return false;
        }
    }

    const LlmRequest admitted = req; // admit() consumes the request
    if (!batcher_->admit(std::move(req))) {
        ++t.rejected;
        finishRequestTrace(admitted, nowNs_, "queue-full",
                           /*erred=*/true);
        return false;
    }
    if (!iterationInFlight_)
        dispatch();
    return true;
}

void
LlmEngine::advanceTo(double ns)
{
    PIMSIM_ASSERT(ns >= nowNs_, "time ran backwards");
    while (iterationInFlight_ && iterationEndNs_ <= ns) {
        nowNs_ = iterationEndNs_;
        finishIteration();
        expireDue();
        dispatch();
    }
    nowNs_ = std::max(nowNs_, ns);
    expireDue();
    if (!iterationInFlight_)
        dispatch();
}

void
LlmEngine::drain()
{
    while (true) {
        expireDue();
        if (!iterationInFlight_)
            dispatch();
        const double next = nextEventNs();
        if (next == serve::kNoEventNs)
            break;
        advanceTo(next);
    }
    PIMSIM_ASSERT(batcher_->idle(), "drain left work behind");
    PIMSIM_ASSERT(kv_->liveSeqs() == 0, "drain left ", kv_->liveSeqs(),
                  " live KV sequences");
    batcher_->reconcile();
    kv_->reconcile();
}

double
LlmEngine::nextEventNs() const
{
    return iterationInFlight_ ? iterationEndNs_ : serve::kNoEventNs;
}

StatsRegistry &
LlmEngine::statsRegistry()
{
    return system_->statsRegistry();
}

std::vector<LlmRequest>
LlmEngine::takeCompletions()
{
    std::vector<LlmRequest> out;
    out.swap(completions_);
    return out;
}

void
LlmEngine::setTrace(TraceSession *session)
{
    trace_ = session;
    if (trace_ != nullptr) {
        trace_->setProcessName(kTracePidLlm, "llm");
        trace_->setThreadName(kTracePidLlm, 0, "decode iterations");
        trace_->setThreadName(kTracePidLlm, 1, "kv occupancy");
        trace_->setThreadName(kTracePidLlm, 2, "requests");
    }
}

void
LlmEngine::setRequestTracer(RequestTracer *tracer)
{
    reqTracer_ = tracer;
    batcher_->setRequestTracer(tracer);
}

std::vector<SloObservation>
LlmEngine::takeSloObservations()
{
    std::vector<SloObservation> out;
    out.swap(sloObs_);
    return out;
}

double
LlmEngine::svcFfn(unsigned batch) const
{
    return model_->serviceNs(ffnApp_, batch);
}

double
LlmEngine::svcAttn(unsigned ctx_bucket) const
{
    return model_->serviceNs(decodeAttnApp(config_.decoder, ctx_bucket), 1);
}

double
LlmEngine::prefillNs(unsigned context_tokens) const
{
    const unsigned bucket = ctxBucket(context_tokens, config_.prefillGranule);
    // Weight GEMVs batch across the whole staged context; the causal
    // attention triangle averages to the full-context shape at half the
    // context's batch.
    return svcFfn(bucket) +
           model_->serviceNs(
               decodeAttnApp(config_.decoder,
                             ctxBucket(context_tokens, config_.ctxGranule)),
               std::max(1u, bucket / 2));
}

double
LlmEngine::iterationNs(const std::vector<LlmRequest> &joined) const
{
    double ns = 0.0;
    for (const LlmRequest &r : joined)
        ns += prefillNs(std::max(1u, r.contextTokens()));
    // costBatch(), not runningSize(): an AdmitOnce wave keeps paying
    // for its padding slots until the longest member finishes.
    ns += svcFfn(batcher_->costBatch());
    for (const LlmRequest &r : batcher_->running())
        ns += svcAttn(ctxBucket(r.contextTokens(), config_.ctxGranule));
    return ns;
}

double
LlmEngine::estimateNs(unsigned tenant, unsigned prompt, unsigned output)
{
    (void)tenant;
    const double per_token =
        svcFfn(1) +
        svcAttn(ctxBucket(prompt + output, config_.ctxGranule));
    return prefillNs(prompt) + output * per_token;
}

void
LlmEngine::dispatch()
{
    PIMSIM_ASSERT(!iterationInFlight_, "dispatch over a running iteration");
    if (!batcher_->beginIteration(nowNs_, lastJoined_))
        return;
    if (reqTracer_ != nullptr) {
        for (const LlmRequest &r : lastJoined_) {
            if (r.preemptions == 0 && nowNs_ > r.arrivalNs) {
                reqTracer_->span(reqTracer_->child(r.trace), kTracePidLlm,
                                 2, "queue", "queue", r.arrivalNs,
                                 nowNs_ - r.arrivalNs);
            } else if (r.preemptions > 0) {
                reqTracer_->instant(r.trace, kTracePidLlm, 2, "rejoin",
                                    "batch", nowNs_);
            }
            // Link the request's span tree to the shared decode-iteration
            // timeline it now rides.
            reqTracer_->flow(r.trace, "join", kTracePidLlm, 2, nowNs_,
                             kTracePidLlm, 0, nowNs_);
        }
    }
    const double dur = iterationNs(lastJoined_);
    iterationStartNs_ = nowNs_;
    iterationEndNs_ = nowNs_ + dur;
    iterationInFlight_ = true;
}

void
LlmEngine::finishIteration()
{
    PIMSIM_ASSERT(iterationInFlight_, "finish without an iteration");
    iterationInFlight_ = false;
    const double start = iterationStartNs_;
    const double end = iterationEndNs_;
    const std::uint64_t batch = batcher_->runningSize();
    ++iterations_;
    batchTokenSum_ += batch;

    const bool faulted =
        faults_ != nullptr && faults_->faultEvents(0, start, end) > 0;
    if (trace_ != nullptr) {
        trace_->span(kTracePidLlm, 0,
                     faulted ? "decode-iter(fault)" : "decode-iter", "llm",
                     start, end - start, "batch", std::to_string(batch));
        trace_->span(kTracePidLlm, 1, "kv", "llm", start, end - start,
                     "residentBlocks",
                     std::to_string(kv_->residentBlocks()));
        if (!lastJoined_.empty())
            trace_->instant(kTracePidLlm, 0,
                            "join x" + std::to_string(lastJoined_.size()),
                            "llm", start);
    }
    if (reqTracer_ != nullptr) {
        // Every member of the batch decoded (or lost) one token this
        // iteration: each gets a child span of its own request tree.
        const char *name = faulted ? "decode-iter(fault)" : "decode-iter";
        for (const LlmRequest &r : batcher_->running()) {
            reqTracer_->span(reqTracer_->child(r.trace), kTracePidLlm, 2,
                             name, "iter", start, end - start);
            if (!faulted && r.firstTokenNs < 0.0)
                reqTracer_->instant(r.trace, kTracePidLlm, 2,
                                    "first-token", "token", end);
        }
    }
    lastJoined_.clear();
    if (faulted) {
        // The fault struck mid-iteration: the batch's token is lost and
        // the same iteration re-runs (KV state is intact — AB-mode rows
        // are re-written by the retry).
        ++faultedIterations_;
        return;
    }
    for (LlmRequest &done : batcher_->finishIteration(end))
        recordCompletion(done);
}

void
LlmEngine::expireDue()
{
    for (const LlmRequest &dead : batcher_->expireQueued(nowNs_)) {
        TenantState &t = tenants_[dead.tenant];
        ++t.timedOut;
        t.preemptions += dead.preemptions;
        finishRequestTrace(dead, nowNs_, "queue-timeout", /*erred=*/true);
    }
}

void
LlmEngine::finishRequestTrace(const LlmRequest &request, double end_ns,
                              const char *terminal, bool erred)
{
    const bool missed = !erred && request.hasDeadline() &&
                        end_ns > request.deadlineNs;
    sloObs_.push_back(SloObservation{end_ns, !erred && !missed});
    if (reqTracer_ == nullptr || !request.trace.active())
        return;
    if (terminal != nullptr) {
        reqTracer_->instant(request.trace, kTracePidLlm, 2, terminal,
                            "terminal", end_ns);
    }
    reqTracer_->span(request.trace, kTracePidLlm, 2, "request", "request",
                     request.arrivalNs, end_ns - request.arrivalNs);
    TraceOutcome outcome;
    outcome.latencyNs = end_ns - request.arrivalNs;
    outcome.erred = erred;
    outcome.deadlineMissed = missed;
    // Evict-and-requeue is the LLM tier's failover analogue: preempted
    // requests are always worth keeping.
    outcome.failedOver = request.preemptions > 0;
    reqTracer_->end(request.trace, outcome);
}

void
LlmEngine::recordCompletion(const LlmRequest &request)
{
    TenantState &t = tenants_[request.tenant];
    ++t.completed;
    t.tokensOut += request.outputTokens;
    t.preemptions += request.preemptions;
    t.ttftH.sample(static_cast<std::uint64_t>(
                       std::max(0.0, request.firstTokenNs -
                                         request.arrivalNs)),
                   request.trace.traceId);
    const double e2e = std::max(0.0, request.completeNs - request.arrivalNs);
    // Normalized latency (e2e per output token): the standard metric
    // for comparing batch schedulers — it charges queueing and
    // preemption stalls to every token, which raw inter-token gaps
    // would hide.
    t.perTokenH.sample(static_cast<std::uint64_t>(
                           e2e / std::max(1u, request.outputTokens)),
                       request.trace.traceId);
    t.e2eH.sample(static_cast<std::uint64_t>(e2e), request.trace.traceId);
    if (request.hasDeadline() && request.completeNs > request.deadlineNs)
        ++t.sloViolations;
    else
        t.goodTokens += request.outputTokens;
    finishRequestTrace(request, request.completeNs, /*terminal=*/nullptr,
                       /*erred=*/false);
    completions_.push_back(request);
}

LlmTenantReport
LlmEngine::summarise(const TenantState &t, double horizon_ns) const
{
    LlmTenantReport r;
    r.name = t.spec.name;
    r.submitted = t.submitted;
    r.rejected = t.rejected;
    r.shed = t.shed;
    r.timedOut = t.timedOut;
    r.completed = t.completed;
    r.admitted = t.submitted - t.rejected - t.shed;
    r.preemptions = t.preemptions;
    r.sloViolations = t.sloViolations;
    r.tokensOut = t.tokensOut;
    r.goodputTokensPerSec =
        horizon_ns > 0.0 ? t.goodTokens * 1e9 / horizon_ns : 0.0;
    r.ttft = summariseHist(t.ttftH);
    r.perToken = summariseHist(t.perTokenH);
    r.e2e = summariseHist(t.e2eH);
    return r;
}

LlmReport
LlmEngine::report() const
{
    LlmReport report;
    report.horizonNs = nowNs_;
    TenantState total(LlmTenantSpec{"total", 0.0, 0}, 1, 1);
    for (const TenantState &t : tenants_) {
        report.tenants.push_back(summarise(t, nowNs_));
        total.submitted += t.submitted;
        total.rejected += t.rejected;
        total.shed += t.shed;
        total.timedOut += t.timedOut;
        total.completed += t.completed;
        total.preemptions += t.preemptions;
        total.sloViolations += t.sloViolations;
        total.tokensOut += t.tokensOut;
        total.goodTokens += t.goodTokens;
    }
    report.total = summarise(total, nowNs_);
    // Aggregate quantiles cannot be rebuilt from per-tenant quantiles:
    // with one tenant the totals are exact, otherwise take the max of
    // the per-tenant tails — conservative for acceptance checks.
    report.total.ttft = serve::LatencySummary{};
    report.total.perToken = serve::LatencySummary{};
    report.total.e2e = serve::LatencySummary{};
    if (tenants_.size() == 1) {
        report.total.ttft = report.tenants[0].ttft;
        report.total.perToken = report.tenants[0].perToken;
        report.total.e2e = report.tenants[0].e2e;
    } else {
        for (const LlmTenantReport &t : report.tenants) {
            report.total.ttft.p99Ns =
                std::max(report.total.ttft.p99Ns, t.ttft.p99Ns);
            report.total.perToken.p99Ns =
                std::max(report.total.perToken.p99Ns, t.perToken.p99Ns);
            report.total.e2e.p99Ns =
                std::max(report.total.e2e.p99Ns, t.e2e.p99Ns);
            report.total.ttft.maxNs =
                std::max(report.total.ttft.maxNs, t.ttft.maxNs);
            report.total.perToken.maxNs =
                std::max(report.total.perToken.maxNs, t.perToken.maxNs);
            report.total.e2e.maxNs =
                std::max(report.total.e2e.maxNs, t.e2e.maxNs);
        }
    }
    report.iterations = iterations_;
    report.meanBatch =
        iterations_ > 0
            ? static_cast<double>(batchTokenSum_) / iterations_
            : 0.0;
    report.faultedIterations = faultedIterations_;
    report.kvBlocksAllocated = kv_->blocksAllocated();
    report.kvBlocksFreed = kv_->blocksFreed();
    report.kvPeakResidentBlocks = kv_->peakResidentBlocks();
    report.kvAllocFailures = kv_->allocFailures();

    // Refresh the registry-visible counters alongside the report.
    StatGroup &stats = stats_;
    stats.reset();
    stats.add("iterations", iterations_);
    stats.add("faultedIterations", faultedIterations_);
    stats.add("submitted", report.total.submitted);
    stats.add("completed", report.total.completed);
    stats.add("rejected", report.total.rejected);
    stats.add("shed", report.total.shed);
    stats.add("timedOut", report.total.timedOut);
    stats.add("preemptions", report.total.preemptions);
    stats.add("tokensOut", report.total.tokensOut);
    stats.set("meanBatch", report.meanBatch);
    (void)kv_->statsGroup();
    return report;
}

void
LlmEngine::writeStats(std::ostream &os) const
{
    (void)report(); // refresh the registry-visible llm/llm.kv groups
    system_->statsRegistry().dumpJson(os);
}

} // namespace pimsim::llm
