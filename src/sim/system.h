/**
 * @file
 * The assembled system: one host socket and its (PIM-)HBM stacks.
 *
 * PimSystem owns one MemoryController per pseudo channel (64 for the
 * default four-stack configuration), the global address mapping, and the
 * simulated clock. Callers enqueue requests per channel and pump the
 * event loop; the loop skips dead cycles using the controllers' next-
 * event hints, so large idle gaps cost nothing.
 *
 * Channels are architecturally independent between barriers (the paper's
 * Section III pseudo-channel model): below PimSystem no channel ever
 * reads another channel's state, and cross-channel interaction happens
 * only through the caller's enqueue/drain between pump calls. step(),
 * advance() and runUntilIdle() therefore execute as *epochs*: every
 * channel runs all of its own events in [now_, target] independently
 * (optionally on a worker pool, see setThreads), then a barrier merges
 * the per-channel error-log and trace staging buffers in deterministic
 * (time, channel) order. Output — stats JSON, trace files, the error
 * log — is bit-identical to a single-threaded run (DESIGN.md §14).
 */

#ifndef PIMSIM_SIM_SYSTEM_H
#define PIMSIM_SIM_SYSTEM_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/stats_registry.h"
#include "dram/address.h"
#include "mem/controller.h"
#include "reliability/mem_error.h"
#include "sim/system_config.h"
#include "sim/worker_pool.h"

namespace pimsim {

class TraceSession;

/** One host + memory system instance. */
class PimSystem
{
  public:
    explicit PimSystem(const SystemConfig &config);
    ~PimSystem(); // out of line: TraceSession is only forward-declared

    const SystemConfig &config() const { return config_; }
    const AddressMapping &mapping() const { return mapping_; }

    unsigned numChannels() const
    {
        return static_cast<unsigned>(controllers_.size());
    }

    MemoryController &controller(unsigned channel)
    {
        return *controllers_[channel];
    }

    /** Current simulated bus cycle. */
    Cycle now() const { return now_; }

    /** Nanoseconds elapsed since construction. */
    double nowNs() const
    {
        return static_cast<double>(now_) * config_.timing.tCKns;
    }

    double nsPerCycle() const { return config_.timing.tCKns; }
    Cycle nsToCycles(double ns) const
    {
        return static_cast<Cycle>(ns / config_.timing.tCKns + 0.5);
    }

    /** Enqueue a request on a channel if the queue has space. */
    bool tryEnqueue(unsigned channel, const MemRequest &request);

    /**
     * Advance the clock to the next event and tick every due controller.
     * @return false when every controller is idle (no work remains).
     */
    bool step();

    /** Advance time by exactly `cycles`, ticking controllers as needed. */
    void advance(Cycle cycles);

    /** Run until all controllers are idle. */
    void runUntilIdle();

    /** Drain completed responses from one channel. */
    std::vector<MemResponse> drain(unsigned channel)
    {
        return controllers_[channel]->drainResponses(now_);
    }

    /** True iff every controller is idle. */
    bool allIdle() const;

    /** Sum of a named counter over all channels' device stats. */
    std::uint64_t totalChannelStat(const std::string &stat) const;
    /** Sum of a named counter over all channels' PIM stats. */
    std::uint64_t totalPimStat(const std::string &stat) const;
    /** Sum of a named counter over all channels' controller stats. */
    std::uint64_t totalCtrlStat(const std::string &stat) const;

    /**
     * System-wide machine-check log: every ECC event seen by any channel
     * (demand access or scrub) lands here. The runtime polls it to
     * decide whether a PIM kernel's data can be trusted. The accessor
     * first drains any per-channel staging events (e.g. from a driver
     * DataStore access between pump calls), so the log is always current
     * when read from the caller's thread.
     */
    MemErrorLog &errorLog();
    const MemErrorLog &errorLog() const;

    /**
     * Serving-layer statistics (admissions, rejections, completions per
     * tenant). The ServingEngine publishes its counters here so system-
     * level dumps include serving behaviour next to device stats.
     */
    StatGroup &serveStats() { return serveStats_; }
    const StatGroup &serveStats() const { return serveStats_; }

    /**
     * The system-wide stats registry. Every controller ("ch<N>.ctrl"),
     * pseudo channel ("ch<N>.pch"), PIM channel ("ch<N>.pim") and the
     * serving group ("serve") are registered at construction; higher
     * layers (serving engine, benches) add their own entries.
     */
    StatsRegistry &statsRegistry() { return registry_; }
    const StatsRegistry &statsRegistry() const { return registry_; }

    /**
     * Refresh derived scalars (per-channel row-buffer hit rate, bus
     * utilisation against the current clock, mean arrival queue depth)
     * so a following dump reports rates next to raw counters.
     */
    void updateDerivedStats();

    /** updateDerivedStats() + registry text/JSON dump. */
    void dumpStats(std::ostream &os);
    void dumpStatsJson(std::ostream &os);

    /**
     * Attach (or detach, with nullptr) a Chrome-trace session: every
     * pseudo channel records its command spans on a per-channel device
     * track. Channel events are staged per channel and merged into
     * `session` at every epoch barrier, so the session only ever sees
     * single-threaded access and the final file is bit-identical no
     * matter how many simulation threads run.
     */
    void setTraceSession(TraceSession *session);

    /**
     * Tick channels on `threads` OS threads (including the caller);
     * 1 (the default) is fully serial with no pool. Results are
     * bit-identical for every thread count. Note the PseudoChannel
     * text-trace ostream is a serial-only debugging aid: attach it only
     * with threads == 1.
     */
    void setThreads(unsigned threads);
    unsigned threads() const { return threads_; }

  private:
    /**
     * Run one channel's events (and, for advance(), scrub steps) up to
     * and including `target`. Returns the last cycle at which the
     * channel actually did work (now_ if it did none).
     */
    Cycle runChannelEpoch(unsigned ch, Cycle target, bool allow_scrub);
    /** Dispatch runChannelEpoch over all channels, then merge sinks. */
    void runEpoch(Cycle target, bool allow_scrub);
    /** True if the channel has an event or scrub step at or before
     *  `target` (seen from now_). */
    bool channelDue(unsigned ch, Cycle target, bool allow_scrub) const;
    /** Drain per-channel staging buffers into the global error log and
     *  trace session in deterministic (time, channel) order. */
    void mergeEpochSinks();
    /** Event-loop invariant: a non-idle channel must have a live
     *  next-tick hint (enqueues must go through tryEnqueue). */
    void assertTickInvariant() const;

    SystemConfig config_;
    AddressMapping mapping_;
    MemErrorLog errorLog_;
    StatsRegistry registry_;
    StatGroup serveStats_{"serve"};
    std::vector<std::unique_ptr<MemoryController>> controllers_;
    std::vector<Cycle> nextTick_;
    Cycle now_ = 0;

    // Parallel execution state (DESIGN.md §14).
    unsigned threads_ = 1;
    std::unique_ptr<SimThreadPool> pool_;
    std::vector<Cycle> epochLast_;
    std::vector<std::unique_ptr<MemErrorLog>> errorStaging_;
    TraceSession *traceSession_ = nullptr;
    std::vector<std::unique_ptr<TraceSession>> traceStaging_;
};

} // namespace pimsim

#endif // PIMSIM_SIM_SYSTEM_H
