#include "sim/worker_pool.h"

#include <cstdint>

namespace pimsim {

SimThreadPool::SimThreadPool(unsigned threads)
{
    const unsigned n = threads > 1 ? threads - 1 : 0;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SimThreadPool::~SimThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
SimThreadPool::drain(Job &job)
{
    for (;;) {
        const std::size_t i = job.next.fetch_add(1);
        if (i >= job.count)
            return;
        job.fn(i);
        // The final increment releases every worker's writes; the
        // caller's acquire read of completed then sees them all (the
        // RMW chain forms one release sequence).
        if (job.completed.fetch_add(1) + 1 == job.count) {
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void
SimThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        // A worker that woke late for an already-finished job sees its
        // cursor exhausted and simply goes back to sleep; each Job owns
        // its cursor, so a stale wake can never touch a newer job's
        // indices with an older job's function.
        if (job)
            drain(*job);
    }
}

void
SimThreadPool::parallelFor(std::size_t count,
                           const std::function<void(std::size_t)> &fn)
{
    if (workers_.empty() || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    auto job = std::make_shared<Job>();
    job->fn = fn;
    job->count = count;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++generation_;
    }
    start_.notify_all();
    drain(*job);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return job->completed.load() == count; });
}

} // namespace pimsim
