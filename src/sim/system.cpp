#include "sim/system.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/trace.h"

namespace pimsim {

PimSystem::PimSystem(const SystemConfig &config)
    : config_(config),
      mapping_(config.geometry, config.numChannels(), config.mapping)
{
    for (unsigned ch = 0; ch < config.numChannels(); ++ch) {
        controllers_.push_back(std::make_unique<MemoryController>(
            config.geometry, config.timing, config.controller,
            config.withPim(), config.pim));
        controllers_.back()->setErrorSink(&errorLog_, ch);
        nextTick_.push_back(0);

        auto &ctrl = *controllers_.back();
        const std::string base = "ch" + std::to_string(ch);
        registry_.addGroup(base + ".ctrl", &ctrl.stats());
        registry_.addGroup(base + ".pch", &ctrl.channel().stats());
        if (ctrl.pim())
            registry_.addGroup(base + ".pim", &ctrl.pim()->stats());
    }
    registry_.addGroup("serve", &serveStats_);
}

void
PimSystem::updateDerivedStats()
{
    const double cycles = static_cast<double>(now_);
    for (auto &c : controllers_) {
        StatGroup &ctrl = c->stats();
        const std::uint64_t hits = ctrl.counter("rowHit");
        const std::uint64_t misses = ctrl.counter("rowMiss");
        if (hits + misses) {
            ctrl.set("rowHitRate", static_cast<double>(hits) /
                                       static_cast<double>(hits + misses));
        }
        const std::uint64_t enq = ctrl.counter("enqueued");
        if (enq) {
            ctrl.set("meanQueueDepth",
                     static_cast<double>(ctrl.counter("queueDepthSum")) /
                         static_cast<double>(enq));
        }
        StatGroup &pch = c->channel().stats();
        if (cycles > 0.0) {
            pch.set("busUtil",
                    static_cast<double>(pch.counter("busCycles")) / cycles);
            pch.set("pimBusUtil",
                    static_cast<double>(pch.counter("pimBusCycles")) /
                        cycles);
        }
    }
}

void
PimSystem::dumpStats(std::ostream &os)
{
    updateDerivedStats();
    registry_.dumpText(os);
}

void
PimSystem::dumpStatsJson(std::ostream &os)
{
    updateDerivedStats();
    registry_.dumpJson(os);
}

void
PimSystem::setTraceSession(TraceSession *session)
{
    if (session) {
        session->setProcessName(kTracePidDevice, "device");
        for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
            session->setThreadName(kTracePidDevice, static_cast<int>(ch),
                                   "ch" + std::to_string(ch));
        }
    }
    for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
        controllers_[ch]->channel().setTraceSession(session,
                                                    static_cast<int>(ch));
    }
}

bool
PimSystem::tryEnqueue(unsigned channel, const MemRequest &request)
{
    PIMSIM_ASSERT(channel < controllers_.size(), "bad channel ", channel);
    auto &ctrl = *controllers_[channel];
    if (!ctrl.canEnqueue())
        return false;
    ctrl.enqueue(request);
    nextTick_[channel] = now_;
    return true;
}

bool
PimSystem::step()
{
    // Find the earliest pending controller event.
    Cycle target = kNoCycle;
    for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
        if (!controllers_[ch]->idle(now_))
            target = std::min(target, std::max(nextTick_[ch], now_));
    }
    if (target == kNoCycle)
        return false;

    now_ = target;
    for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
        if (controllers_[ch]->idle(now_))
            continue;
        while (nextTick_[ch] <= now_) {
            const Cycle next = controllers_[ch]->tick(now_);
            if (next == kNoCycle) {
                nextTick_[ch] = kNoCycle;
                break;
            }
            PIMSIM_ASSERT(next > now_, "controller did not advance");
            nextTick_[ch] = next;
        }
    }
    return true;
}

void
PimSystem::advance(Cycle cycles)
{
    const Cycle deadline = now_ + cycles;
    while (now_ < deadline) {
        Cycle target = deadline;
        for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
            if (!controllers_[ch]->idle(now_))
                target = std::min(target, std::max(nextTick_[ch], now_));
            // Patrol-scrub steps ride on advance()'s explicit time
            // budget (step()/runUntilIdle() must stay scrub-free or an
            // enabled scrubber would keep them from ever going idle).
            const Cycle scrub = controllers_[ch]->nextScrubDue();
            if (scrub != kNoCycle)
                target = std::min(target, std::max(scrub, now_));
        }
        now_ = target;
        for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
            controllers_[ch]->scrubTick(now_);
            if (controllers_[ch]->idle(now_))
                continue;
            while (nextTick_[ch] <= now_) {
                const Cycle next = controllers_[ch]->tick(now_);
                if (next == kNoCycle) {
                    nextTick_[ch] = kNoCycle;
                    break;
                }
                nextTick_[ch] = next;
            }
        }
        if (target == deadline)
            break;
    }
    now_ = deadline;
}

void
PimSystem::runUntilIdle()
{
    while (step()) {
    }
}

bool
PimSystem::allIdle() const
{
    return std::all_of(controllers_.begin(), controllers_.end(),
                       [this](const auto &c) { return c->idle(now_); });
}

std::uint64_t
PimSystem::totalChannelStat(const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_)
        total += c->channel().stats().counter(stat);
    return total;
}

std::uint64_t
PimSystem::totalCtrlStat(const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_)
        total += c->stats().counter(stat);
    return total;
}

std::uint64_t
PimSystem::totalPimStat(const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_) {
        if (c->pim())
            total += c->pim()->stats().counter(stat);
    }
    return total;
}

} // namespace pimsim
