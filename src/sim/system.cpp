#include "sim/system.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/trace.h"

namespace pimsim {

namespace {

/** Staging logs must never evict: the barrier merge needs every event
 *  to replay counters and handlers exactly. Cleared every epoch, so the
 *  high-water mark is one epoch's events per channel. */
constexpr std::size_t kUnboundedLog = ~std::size_t{0};

} // namespace

PimSystem::PimSystem(const SystemConfig &config)
    : config_(config),
      mapping_(config.geometry, config.numChannels(), config.mapping)
{
    for (unsigned ch = 0; ch < config.numChannels(); ++ch) {
        controllers_.push_back(std::make_unique<MemoryController>(
            config.geometry, config.timing, config.controller,
            config.withPim(), config.pim));
        // Channels record ECC events into per-channel staging logs while
        // ticking (possibly concurrently); mergeEpochSinks() replays
        // them into errorLog_ at every barrier.
        errorStaging_.push_back(
            std::make_unique<MemErrorLog>(kUnboundedLog));
        controllers_.back()->setErrorSink(errorStaging_.back().get(), ch);
        nextTick_.push_back(0);

        auto &ctrl = *controllers_.back();
        const std::string base = "ch" + std::to_string(ch);
        registry_.addGroup(base + ".ctrl", &ctrl.stats());
        registry_.addGroup(base + ".pch", &ctrl.channel().stats());
        if (ctrl.pim())
            registry_.addGroup(base + ".pim", &ctrl.pim()->stats());
    }
    registry_.addGroup("serve", &serveStats_);
}

PimSystem::~PimSystem() = default;

MemErrorLog &
PimSystem::errorLog()
{
    // Driver/runtime DataStore accesses between pump calls record into
    // the per-channel staging logs; fold them in before the caller looks.
    mergeEpochSinks();
    return errorLog_;
}

const MemErrorLog &
PimSystem::errorLog() const
{
    const_cast<PimSystem *>(this)->mergeEpochSinks();
    return errorLog_;
}

void
PimSystem::updateDerivedStats()
{
    const double cycles = static_cast<double>(now_);
    for (auto &c : controllers_) {
        StatGroup &ctrl = c->stats();
        const std::uint64_t hits = ctrl.counter("rowHit");
        const std::uint64_t misses = ctrl.counter("rowMiss");
        if (hits + misses) {
            ctrl.set("rowHitRate", static_cast<double>(hits) /
                                       static_cast<double>(hits + misses));
        }
        const std::uint64_t enq = ctrl.counter("enqueued");
        if (enq) {
            ctrl.set("meanQueueDepth",
                     static_cast<double>(ctrl.counter("queueDepthSum")) /
                         static_cast<double>(enq));
        }
        StatGroup &pch = c->channel().stats();
        if (cycles > 0.0) {
            pch.set("busUtil",
                    static_cast<double>(pch.counter("busCycles")) / cycles);
            pch.set("pimBusUtil",
                    static_cast<double>(pch.counter("pimBusCycles")) /
                        cycles);
        }
    }
}

void
PimSystem::dumpStats(std::ostream &os)
{
    updateDerivedStats();
    registry_.dumpText(os);
}

void
PimSystem::dumpStatsJson(std::ostream &os)
{
    updateDerivedStats();
    registry_.dumpJson(os);
}

void
PimSystem::setTraceSession(TraceSession *session)
{
    traceSession_ = session;
    traceStaging_.clear();
    if (session) {
        session->setProcessName(kTracePidDevice, "device");
        for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
            session->setThreadName(kTracePidDevice, static_cast<int>(ch),
                                   "ch" + std::to_string(ch));
        }
        // Channels record into per-channel staging sessions (merged at
        // every barrier) so ticking never touches the shared session.
        // Staging carries the same cap as the destination: it can always
        // hold at least as much as the global session could still admit.
        for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
            traceStaging_.push_back(
                std::make_unique<TraceSession>(session->maxEvents()));
        }
    }
    for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
        controllers_[ch]->channel().setTraceSession(
            session ? traceStaging_[ch].get() : nullptr,
            static_cast<int>(ch));
    }
}

void
PimSystem::setThreads(unsigned threads)
{
    threads_ = std::max(1u, threads);
    pool_.reset();
    if (threads_ > 1)
        pool_ = std::make_unique<SimThreadPool>(threads_);
}

bool
PimSystem::tryEnqueue(unsigned channel, const MemRequest &request)
{
    PIMSIM_ASSERT(channel < controllers_.size(), "bad channel ", channel);
    auto &ctrl = *controllers_[channel];
    if (!ctrl.canEnqueue())
        return false;
    ctrl.enqueue(request);
    nextTick_[channel] = now_;
    return true;
}

void
PimSystem::assertTickInvariant() const
{
    // If a controller reports pending work while its next-tick hint was
    // cleared to kNoCycle, the sentinel would win the target-min below
    // and the loop would silently report "no work" with work pending.
    // The only way to get here is enqueueing on MemoryController
    // directly; tryEnqueue() re-arms the hint on every accept.
    for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
        PIMSIM_ASSERT(nextTick_[ch] != kNoCycle ||
                          controllers_[ch]->idle(now_),
                      "channel ", ch,
                      " has pending work but a cleared next-tick hint; "
                      "requests must go through PimSystem::tryEnqueue");
    }
}

Cycle
PimSystem::runChannelEpoch(unsigned ch, Cycle target, bool allow_scrub)
{
    // Channels are independent below PimSystem, and every global target
    // the serial loop would pick is a no-op for channels whose own next
    // event lies later — so replaying just this channel's event (and
    // scrub) times in order is exactly the serial execution, state for
    // state. All writes land in channel-local state or this channel's
    // staging sinks.
    MemoryController &ctrl = *controllers_[ch];
    Cycle ch_now = now_;
    Cycle last = now_;
    for (;;) {
        Cycle next = kNoCycle;
        if (!ctrl.idle(ch_now))
            next = std::max(nextTick_[ch], ch_now);
        if (allow_scrub) {
            const Cycle scrub = ctrl.nextScrubDue();
            if (scrub != kNoCycle)
                next = std::min(next, std::max(scrub, ch_now));
        }
        if (next == kNoCycle || next > target) {
            // An idle channel's hint is dead until tryEnqueue re-arms
            // it: clear it so bypassing tryEnqueue (direct
            // MemoryController::enqueue) trips the invariant check
            // instead of silently riding a stale hint value.
            if (ctrl.idle(ch_now))
                nextTick_[ch] = kNoCycle;
            return last;
        }
        ch_now = next;
        last = next;
        if (allow_scrub)
            ctrl.scrubTick(ch_now);
        if (ctrl.idle(ch_now))
            continue;
        while (nextTick_[ch] <= ch_now) {
            const Cycle n = ctrl.tick(ch_now);
            if (n == kNoCycle) {
                nextTick_[ch] = kNoCycle;
                break;
            }
            PIMSIM_ASSERT(n > ch_now, "controller did not advance");
            nextTick_[ch] = n;
        }
    }
}

bool
PimSystem::channelDue(unsigned ch, Cycle target, bool allow_scrub) const
{
    const MemoryController &ctrl = *controllers_[ch];
    if (!ctrl.idle(now_) && std::max(nextTick_[ch], now_) <= target)
        return true;
    if (allow_scrub) {
        const Cycle scrub = ctrl.nextScrubDue();
        if (scrub != kNoCycle && std::max(scrub, now_) <= target)
            return true;
    }
    return false;
}

void
PimSystem::runEpoch(Cycle target, bool allow_scrub)
{
    const unsigned n = numChannels();
    epochLast_.assign(n, now_);
    // Fan out only when at least two channels actually have work in the
    // epoch; a single due channel (common in fine-grained step() driving)
    // is cheaper on the calling thread.
    unsigned due = 0;
    if (pool_) {
        for (unsigned ch = 0; ch < n && due < 2; ++ch) {
            if (channelDue(ch, target, allow_scrub))
                ++due;
        }
    }
    if (pool_ && due >= 2) {
        pool_->parallelFor(n, [&](std::size_t ch) {
            epochLast_[ch] = runChannelEpoch(static_cast<unsigned>(ch),
                                             target, allow_scrub);
        });
    } else {
        for (unsigned ch = 0; ch < n; ++ch)
            epochLast_[ch] = runChannelEpoch(ch, target, allow_scrub);
    }
    mergeEpochSinks();
}

void
PimSystem::mergeEpochSinks()
{
    // Replay staged ECC events into the global log in (cycle, channel)
    // order — exactly the order the serial target-by-target sweep
    // records them in (channels tick in index order at each target).
    // record() reproduces counters, the bounded ring, and handler calls.
    bool any = false;
    for (const auto &log : errorStaging_) {
        if (!log->recent().empty()) {
            any = true;
            break;
        }
    }
    if (any) {
        std::vector<MemErrorEvent> merged;
        for (auto &log : errorStaging_) {
            merged.insert(merged.end(), log->recent().begin(),
                          log->recent().end());
            log->clear();
        }
        std::stable_sort(merged.begin(), merged.end(),
                         [](const MemErrorEvent &a, const MemErrorEvent &b) {
                             return a.cycle < b.cycle;
                         });
        for (const MemErrorEvent &e : merged)
            errorLog_.record(e);
    }

    // Device trace events: appending per-channel buffers in channel
    // order reproduces the serial insertion order after write()'s stable
    // timestamp sort (equal-timestamp events share a target cycle, where
    // the serial loop also ticked channels in index order).
    if (traceSession_) {
        for (auto &staging : traceStaging_) {
            const std::uint64_t dropped = staging->takeDropped();
            auto events = staging->takeEvents();
            if (!events.empty() || dropped)
                traceSession_->append(std::move(events), dropped);
        }
    }
}

bool
PimSystem::step()
{
    assertTickInvariant();
    // Find the earliest pending controller event.
    Cycle target = kNoCycle;
    for (unsigned ch = 0; ch < controllers_.size(); ++ch) {
        if (!controllers_[ch]->idle(now_))
            target = std::min(target, std::max(nextTick_[ch], now_));
    }
    if (target == kNoCycle)
        return false;

    runEpoch(target, /*allow_scrub=*/false);
    now_ = target;
    return true;
}

void
PimSystem::advance(Cycle cycles)
{
    assertTickInvariant();
    // Patrol-scrub steps ride on advance()'s explicit time budget
    // (step()/runUntilIdle() must stay scrub-free or an enabled scrubber
    // would keep them from ever going idle).
    const Cycle deadline = now_ + cycles;
    runEpoch(deadline, /*allow_scrub=*/true);
    now_ = deadline;
}

void
PimSystem::runUntilIdle()
{
    assertTickInvariant();
    // One unbounded epoch: every channel drains its own backlog to
    // completion, which is also the coarsest (fastest) parallel grain.
    runEpoch(kNoCycle - 1, /*allow_scrub=*/false);
    Cycle last = now_;
    for (const Cycle c : epochLast_)
        last = std::max(last, c);
    now_ = last;
}

bool
PimSystem::allIdle() const
{
    return std::all_of(controllers_.begin(), controllers_.end(),
                       [this](const auto &c) { return c->idle(now_); });
}

std::uint64_t
PimSystem::totalChannelStat(const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_)
        total += c->channel().stats().counter(stat);
    return total;
}

std::uint64_t
PimSystem::totalCtrlStat(const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_)
        total += c->stats().counter(stat);
    return total;
}

std::uint64_t
PimSystem::totalPimStat(const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &c : controllers_) {
        if (c->pim())
            total += c->pim()->stats().counter(stat);
    }
    return total;
}

} // namespace pimsim
