/**
 * @file
 * Persistent worker pool for parallel per-channel simulation.
 *
 * SimThreadPool runs index-based jobs across N threads (N-1 workers plus
 * the calling thread). PimSystem dispatches one index per pseudo channel
 * at each epoch; workers pull indices from a shared atomic cursor, so a
 * channel with a deep event backlog does not serialise the others behind
 * a static partition. parallelFor() is a full barrier: it returns only
 * after every index has been processed, which is what gives the epoch
 * scheme its determinism (no channel state is touched by two threads,
 * and all cross-channel merging happens after the barrier on the caller).
 */

#ifndef PIMSIM_SIM_WORKER_POOL_H
#define PIMSIM_SIM_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pimsim {

/** A fixed-size pool executing parallel index loops with a barrier. */
class SimThreadPool
{
  public:
    /**
     * @param threads  total concurrency including the calling thread;
     *                 the pool spawns threads-1 workers. Clamped to >= 1.
     */
    explicit SimThreadPool(unsigned threads);
    ~SimThreadPool();

    SimThreadPool(const SimThreadPool &) = delete;
    SimThreadPool &operator=(const SimThreadPool &) = delete;

    /** Total concurrency (workers + caller). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, count), distributing indices over the
     * pool; the caller participates. Returns after all calls complete
     * (all worker writes are visible to the caller). fn must not itself
     * call parallelFor on the same pool.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    /**
     * One parallelFor invocation. Each job owns its index cursor and
     * completion count so a worker that wakes late for an old job finds
     * that job's cursor exhausted instead of stealing indices from a
     * newer one.
     */
    struct Job
    {
        std::function<void(std::size_t)> fn;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
    };

    void workerLoop();
    /** Pull and run indices until the job is exhausted. */
    void drain(Job &job);

    std::mutex mutex_;
    std::condition_variable start_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;

    // Current job, written under mutex_ before workers are woken.
    std::shared_ptr<Job> job_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace pimsim

#endif // PIMSIM_SIM_WORKER_POOL_H
