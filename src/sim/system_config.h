/**
 * @file
 * Top-level system configurations (Section VI).
 *
 * The paper's evaluation system 2.5D-integrates four (PIM-)HBM stacks
 * with an unmodified 60-CU processor at 1.725 GHz: 1.229 TB/s of off-chip
 * bandwidth, 4.915 TB/s of on-chip PIM compute bandwidth.
 */

#ifndef PIMSIM_SIM_SYSTEM_CONFIG_H
#define PIMSIM_SIM_SYSTEM_CONFIG_H

#include "dram/address.h"
#include "dram/geometry.h"
#include "dram/timing.h"
#include "host/host_config.h"
#include "mem/controller.h"
#include "pim/pim_config.h"

namespace pimsim {

/** Which device populates the interposer. */
enum class MemoryKind
{
    Hbm,    ///< standard HBM2 stacks
    PimHbm, ///< PIM-HBM stacks
};

/** A complete system: host + stacks. */
struct SystemConfig
{
    MemoryKind kind = MemoryKind::PimHbm;
    unsigned numStacks = 4;
    HbmGeometry geometry;
    HbmTiming timing = HbmTiming::at12GHz();
    MappingScheme mapping = MappingScheme::ChBgColBaRo;
    ControllerConfig controller;
    PimConfig pim;
    HostConfig host;

    unsigned numChannels() const
    {
        return numStacks * geometry.pchPerStack;
    }

    bool withPim() const { return kind == MemoryKind::PimHbm; }

    /** Peak off-chip bandwidth in GB/s across all stacks. */
    double offChipBandwidthGBs() const
    {
        return timing.pchIoBandwidthGBs() * numChannels();
    }

    /** Peak on-chip PIM compute bandwidth in GB/s across all stacks. */
    double onChipBandwidthGBs() const
    {
        // Each PIM unit consumes one 32 B bank burst per tCCD_L; with a
        // unit per bank pair, 8 bursts stream per pCH per tCCD_L.
        return timing.bankAbBandwidthGBs() * pim.unitsPerPch *
               numChannels();
    }

    /** The paper's evaluation configs. */
    static SystemConfig pimHbmSystem()
    {
        SystemConfig c;
        c.kind = MemoryKind::PimHbm;
        return c;
    }

    static SystemConfig hbmSystem()
    {
        SystemConfig c;
        c.kind = MemoryKind::Hbm;
        return c;
    }

    /** PROC-HBMx4: a hypothetical host with 4x the HBM stacks (Fig. 12). */
    static SystemConfig hbmX4System()
    {
        SystemConfig c;
        c.kind = MemoryKind::Hbm;
        c.numStacks = 16;
        return c;
    }
};

} // namespace pimsim

#endif // PIMSIM_SIM_SYSTEM_CONFIG_H
