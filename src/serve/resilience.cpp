#include "serve/resilience.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pimsim::serve {

void
RetryPolicy::validate() const
{
    // jitterFrac > 1 would let the +/-j draw turn the whole delay
    // negative; catch the misconfiguration where it is written instead
    // of deep in a chaos sweep where backoffNs()'s clamp hides it.
    PIMSIM_ASSERT(jitterFrac >= 0.0 && jitterFrac <= 1.0,
                  "RetryPolicy.jitterFrac must be in [0, 1], got ",
                  jitterFrac);
    PIMSIM_ASSERT(baseBackoffNs >= 0.0,
                  "RetryPolicy.baseBackoffNs must be >= 0, got ",
                  baseBackoffNs);
    PIMSIM_ASSERT(maxBackoffNs >= 0.0,
                  "RetryPolicy.maxBackoffNs must be >= 0, got ",
                  maxBackoffNs);
}

double
RetryPolicy::backoffNs(unsigned retry, Rng &rng) const
{
    PIMSIM_ASSERT(retry >= 1, "retry index is 1-based");
    const double exponent = static_cast<double>(retry - 1);
    double delay = baseBackoffNs * std::pow(2.0, exponent);
    delay = std::min(delay, maxBackoffNs);
    if (jitterFrac > 0.0) {
        // Equal jitter: uniform in [1 - j, 1 + j) around the exponential
        // delay. (Not AWS-style "full jitter", which draws from
        // [0, delay); with j <= 1 this variant keeps a useful floor
        // under the delay while still decorrelating retries that failed
        // together.)
        const double u = rng.nextDouble();
        delay *= 1.0 + jitterFrac * (2.0 * u - 1.0);
    }
    // Defense in depth: validate() bounds jitterFrac, but an
    // unvalidated ad-hoc policy must still never schedule into the past.
    return std::max(delay, 0.0);
}

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

void
CircuitBreaker::transition(BreakerState next, double now_ns)
{
    if (next == state_)
        return;
    state_ = next;
    stateSinceNs_ = now_ns;
    switch (next) {
      case BreakerState::Open:
        ++opens_;
        openUntilNs_ = now_ns + config_.openNs;
        window_.clear();
        windowErrors_ = 0;
        probeInFlight_ = false;
        break;
      case BreakerState::HalfOpen:
        break;
      case BreakerState::Closed:
        ++closes_;
        window_.clear();
        windowErrors_ = 0;
        probeInFlight_ = false;
        break;
    }
}

DispatchRoute
CircuitBreaker::route(double now_ns)
{
    if (!config_.enabled)
        return DispatchRoute::Pim;
    switch (state_) {
      case BreakerState::Closed:
        return DispatchRoute::Pim;
      case BreakerState::Open:
        if (now_ns < openUntilNs_)
            return DispatchRoute::Host;
        transition(BreakerState::HalfOpen, now_ns);
        [[fallthrough]];
      case BreakerState::HalfOpen:
        if (probeInFlight_)
            return DispatchRoute::Host;
        probeInFlight_ = true;
        ++probes_;
        return DispatchRoute::PimProbe;
    }
    return DispatchRoute::Pim;
}

void
CircuitBreaker::record(bool ok, double now_ns)
{
    if (!config_.enabled)
        return;
    if (state_ == BreakerState::HalfOpen) {
        // The probe verdict decides alone; the pre-trip window is gone.
        probeInFlight_ = false;
        transition(ok ? BreakerState::Closed : BreakerState::Open, now_ns);
        return;
    }
    if (state_ != BreakerState::Closed)
        return; // stale completion from before the trip: ignore

    window_.push_back(!ok);
    if (!ok)
        ++windowErrors_;
    while (window_.size() > config_.window) {
        if (window_.front())
            --windowErrors_;
        window_.pop_front();
    }
    if (window_.size() >= config_.minSamples &&
        static_cast<double>(windowErrors_) >=
            config_.errorThreshold * static_cast<double>(window_.size())) {
        transition(BreakerState::Open, now_ns);
    }
}

} // namespace pimsim::serve
