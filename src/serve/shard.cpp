#include "serve/shard.h"

#include "common/logging.h"

namespace pimsim::serve {

unsigned
floorPow2(unsigned n)
{
    PIMSIM_ASSERT(n >= 1, "floorPow2 of 0");
    unsigned p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

ShardPlan
ShardPlan::shared(unsigned total_channels, unsigned pim_rows,
                  unsigned num_tenants)
{
    ShardPlan plan;
    plan.shards_.push_back(
        ShardSpec{0, total_channels, 0, pim_rows});
    plan.shardOf_.assign(num_tenants, 0);
    plan.sharded_ = false;
    return plan;
}

ShardPlan
ShardPlan::sharded(unsigned total_channels, unsigned pim_rows,
                   const std::vector<double> &weights)
{
    PIMSIM_ASSERT(!weights.empty(), "sharded plan needs tenants");
    double total_weight = 0.0;
    for (double w : weights)
        total_weight += w > 0.0 ? w : 1.0;

    ShardPlan plan;
    plan.sharded_ = true;
    unsigned channel_cursor = 0;
    unsigned row_cursor = 0;
    for (std::size_t t = 0; t < weights.size(); ++t) {
        const double w = weights[t] > 0.0 ? weights[t] : 1.0;
        const double frac = w / total_weight;

        ShardSpec spec;
        const unsigned fair_channels = static_cast<unsigned>(
            static_cast<double>(total_channels) * frac);
        spec.numChannels = floorPow2(fair_channels >= 1 ? fair_channels : 1);
        spec.firstChannel = channel_cursor;
        PIMSIM_ASSERT(channel_cursor + spec.numChannels <= total_channels,
                      "shard plan overflows ", total_channels, " channels");
        channel_cursor += spec.numChannels;

        // Rows split exactly (no power-of-two constraint); the last
        // tenant absorbs the rounding remainder.
        spec.firstRow = row_cursor;
        spec.numRows =
            t + 1 == weights.size()
                ? pim_rows - row_cursor
                : static_cast<unsigned>(static_cast<double>(pim_rows) * frac);
        row_cursor += spec.numRows;

        plan.shardOf_.push_back(static_cast<unsigned>(plan.shards_.size()));
        plan.shards_.push_back(spec);
    }
    return plan;
}

std::vector<unsigned>
ShardPlan::tenantsOf(unsigned s) const
{
    std::vector<unsigned> tenants;
    for (unsigned t = 0; t < shardOf_.size(); ++t) {
        if (shardOf_[t] == s)
            tenants.push_back(t);
    }
    return tenants;
}

} // namespace pimsim::serve
