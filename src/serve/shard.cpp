#include "serve/shard.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim::serve {

void
assertDisjointRowRanges(const std::vector<ShardSpec> &shards)
{
    // Sort the non-empty slices by start; disjointness then reduces to
    // each slice ending before the next begins.
    std::vector<ShardSpec> sorted;
    for (const ShardSpec &s : shards) {
        if (s.numRows > 0)
            sorted.push_back(s);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const ShardSpec &a, const ShardSpec &b) {
                  return a.firstRow < b.firstRow;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        const unsigned prev_end =
            sorted[i - 1].firstRow + sorted[i - 1].numRows;
        PIMSIM_ASSERT(prev_end <= sorted[i].firstRow,
                      "tenant row isolation violated: slice [",
                      sorted[i - 1].firstRow, ", ", prev_end,
                      ") overlaps slice starting at ",
                      sorted[i].firstRow);
    }
}

unsigned
floorPow2(unsigned n)
{
    PIMSIM_ASSERT(n >= 1, "floorPow2 of 0");
    unsigned p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

ShardPlan
ShardPlan::shared(unsigned total_channels, unsigned pim_rows,
                  unsigned num_tenants)
{
    ShardPlan plan;
    plan.shards_.push_back(
        ShardSpec{0, total_channels, 0, pim_rows});
    plan.shardOf_.assign(num_tenants, 0);
    plan.quarantined_.assign(total_channels, 0);
    plan.sharded_ = false;
    return plan;
}

ShardPlan
ShardPlan::sharded(unsigned total_channels, unsigned pim_rows,
                   const std::vector<double> &weights)
{
    PIMSIM_ASSERT(!weights.empty(), "sharded plan needs tenants");
    double total_weight = 0.0;
    for (double w : weights)
        total_weight += w > 0.0 ? w : 1.0;

    ShardPlan plan;
    plan.sharded_ = true;
    plan.quarantined_.assign(total_channels, 0);
    unsigned channel_cursor = 0;
    unsigned row_cursor = 0;
    for (std::size_t t = 0; t < weights.size(); ++t) {
        const double w = weights[t] > 0.0 ? weights[t] : 1.0;
        const double frac = w / total_weight;

        ShardSpec spec;
        const unsigned fair_channels = static_cast<unsigned>(
            static_cast<double>(total_channels) * frac);
        spec.numChannels = floorPow2(fair_channels >= 1 ? fair_channels : 1);
        spec.firstChannel = channel_cursor;
        PIMSIM_ASSERT(channel_cursor + spec.numChannels <= total_channels,
                      "shard plan overflows ", total_channels, " channels");
        channel_cursor += spec.numChannels;

        // Rows split exactly (no power-of-two constraint); the last
        // tenant absorbs the rounding remainder.
        spec.firstRow = row_cursor;
        spec.numRows =
            t + 1 == weights.size()
                ? pim_rows - row_cursor
                : static_cast<unsigned>(static_cast<double>(pim_rows) * frac);
        row_cursor += spec.numRows;

        plan.shardOf_.push_back(static_cast<unsigned>(plan.shards_.size()));
        plan.shards_.push_back(spec);
    }
    return plan;
}

void
ShardPlan::quarantineChannel(unsigned channel)
{
    PIMSIM_ASSERT(channel < quarantined_.size(), "bad channel ", channel);
    quarantined_[channel] = 1;
}

void
ShardPlan::restoreChannel(unsigned channel)
{
    PIMSIM_ASSERT(channel < quarantined_.size(), "bad channel ", channel);
    quarantined_[channel] = 0;
}

bool
ShardPlan::channelQuarantined(unsigned channel) const
{
    PIMSIM_ASSERT(channel < quarantined_.size(), "bad channel ", channel);
    return quarantined_[channel] != 0;
}

unsigned
ShardPlan::activeChannelsOf(unsigned s) const
{
    const ShardSpec &spec = shards_[s];
    unsigned active = 0;
    for (unsigned c = 0; c < spec.numChannels; ++c) {
        if (!channelQuarantined(spec.firstChannel + c))
            ++active;
    }
    return active;
}

double
ShardPlan::capacityFraction(unsigned s) const
{
    const ShardSpec &spec = shards_[s];
    if (spec.numChannels == 0)
        return 1.0;
    return static_cast<double>(activeChannelsOf(s)) /
           static_cast<double>(spec.numChannels);
}

std::vector<unsigned>
ShardPlan::tenantsOf(unsigned s) const
{
    std::vector<unsigned> tenants;
    for (unsigned t = 0; t < shardOf_.size(); ++t) {
        if (shardOf_[t] == s)
            tenants.push_back(t);
    }
    return tenants;
}

} // namespace pimsim::serve
