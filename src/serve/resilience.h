/**
 * @file
 * Serving-path resilience primitives.
 *
 * The paper's software stack degrades to host execution when the PIM
 * path cannot be trusted (Section VI / VIII); this header gives the
 * serving layer the same posture at datacenter granularity:
 *
 *  - RetryPolicy: exponential backoff + jitter for batches whose kernel
 *    reported an uncorrectable EccStatus or a transient shard failure,
 *    capped by a retry budget — after the budget is spent the batch is
 *    re-dispatched on the host golden path (PimBlas's hostFallback,
 *    modelled by HostFallbackModel).
 *  - CircuitBreaker: per-shard closed -> open -> half-open state machine
 *    driven by a sliding window of recent batch outcomes. A tripped
 *    shard routes its tenants to host fallback until a probe dispatch
 *    succeeds, so a persistently faulting device stops burning retry
 *    budget on every batch.
 *  - FaultModel: the engine-facing source of uncorrectable fault events
 *    on the serving clock (implemented by ChaosCampaign for chaos
 *    testing; tests plug in deterministic stubs).
 *
 * Everything is deterministic: backoff jitter flows from the engine's
 * seeded Rng and breakers react only to simulated time.
 */

#ifndef PIMSIM_SERVE_RESILIENCE_H
#define PIMSIM_SERVE_RESILIENCE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"

namespace pimsim::serve {

/** Retry/backoff configuration for failed PIM batches. */
struct RetryPolicy
{
    /**
     * PIM re-dispatches allowed after the first failed attempt. 0 means
     * a failed batch goes straight to host fallback.
     */
    unsigned maxRetries = 2;
    /** Backoff before the first retry. */
    double baseBackoffNs = 50'000.0;
    /** Backoff cap (exponential growth saturates here). */
    double maxBackoffNs = 2'000'000.0;
    /** Equal-jitter fraction in [0, 1]: the delay is drawn uniformly
     *  from base * [1-j, 1+j). */
    double jitterFrac = 0.25;

    /**
     * Assert the configuration is sane (jitterFrac in [0, 1], backoffs
     * non-negative). Engines call this when the policy is installed so a
     * bad config fails at setup, not mid-campaign.
     */
    void validate() const;

    /**
     * Backoff before retry number `retry` (1-based): exponential in the
     * retry index, capped, jittered from `rng`, never negative.
     * Deterministic for a seeded generator.
     */
    double backoffNs(unsigned retry, Rng &rng) const;
};

/** Circuit-breaker states (the classic three-state machine). */
enum class BreakerState
{
    Closed,   ///< shard healthy, batches run on PIM
    Open,     ///< shard tripped, batches route to host fallback
    HalfOpen, ///< cool-down expired, one probe batch tests the shard
};

const char *breakerStateName(BreakerState state);

/** Per-shard circuit-breaker configuration. */
struct BreakerConfig
{
    bool enabled = false;
    /** Sliding window of most recent PIM batch outcomes. */
    unsigned window = 16;
    /** Outcomes required in the window before the breaker may trip. */
    unsigned minSamples = 4;
    /** Error fraction in the window at or above which the shard trips. */
    double errorThreshold = 0.5;
    /** Cool-down after tripping before a half-open probe is allowed. */
    double openNs = 4'000'000.0;
};

/** Where a dispatch should execute, as decided by the breaker. */
enum class DispatchRoute
{
    Pim,      ///< normal PIM execution
    PimProbe, ///< half-open probe on the PIM path
    Host,     ///< shard tripped: host-fallback execution
};

/**
 * One shard's circuit breaker. The caller (ServingEngine) asks route()
 * before every dispatch and reports every PIM-path outcome through
 * record(); host-path outcomes never count, so a tripped shard's error
 * window can only be cleared by a successful probe.
 */
class CircuitBreaker
{
  public:
    CircuitBreaker() = default;
    explicit CircuitBreaker(const BreakerConfig &config) : config_(config) {}

    BreakerState state() const { return state_; }
    /** Simulated time the current state was entered. */
    double stateSinceNs() const { return stateSinceNs_; }

    /**
     * Route the next dispatch at time `now_ns`. In Open state, a call at
     * or past the cool-down expiry transitions to HalfOpen and grants
     * the probe; while a probe is outstanding every other dispatch
     * routes to the host.
     */
    DispatchRoute route(double now_ns);

    /** Report a PIM-path batch outcome (probe outcomes included). */
    void record(bool ok, double now_ns);

    std::uint64_t opens() const { return opens_; }
    std::uint64_t closes() const { return closes_; }
    std::uint64_t probes() const { return probes_; }

  private:
    void transition(BreakerState next, double now_ns);

    BreakerConfig config_;
    BreakerState state_ = BreakerState::Closed;
    double stateSinceNs_ = 0.0;
    double openUntilNs_ = 0.0;
    bool probeInFlight_ = false;

    /** Sliding outcome window (true = failure). */
    std::deque<bool> window_;
    unsigned windowErrors_ = 0;

    std::uint64_t opens_ = 0;
    std::uint64_t closes_ = 0;
    std::uint64_t probes_ = 0;
};

/**
 * Engine-facing source of uncorrectable fault events on the serving
 * clock. faultEvents() is pure accounting over a deterministic event
 * process: the engine asks, per completed PIM batch, how many events
 * struck the batch's shard during its service window and treats any
 * non-zero answer as an uncorrectable kernel outcome.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /** Fault events striking `shard` in [start_ns, end_ns). */
    virtual unsigned faultEvents(unsigned shard, double start_ns,
                                 double end_ns) = 0;
};

/** One silent-corruption event pinned to its device location. */
struct SdcEvent
{
    double ns = 0.0;      ///< serving-clock instant the value corrupted
    unsigned channel = 0; ///< absolute pseudo-channel index
    unsigned unit = 0;    ///< PIM unit within the channel
};

/**
 * Engine-facing source of silent-data-corruption events on the serving
 * clock. Unlike FaultModel's events these are never reported by the
 * device: a batch whose service window covers one completes normally
 * with a wrong result unless the ABFT layer catches it. Events carry
 * the (channel, unit) that produced the bad value, so the SdcMonitor
 * can localize. Implemented by ChaosCampaign; tests plug in stubs.
 */
class SdcModel
{
  public:
    virtual ~SdcModel() = default;

    /** SDC events striking `channel` in [start_ns, end_ns), ascending. */
    virtual std::vector<SdcEvent> sdcEvents(unsigned channel,
                                            double start_ns,
                                            double end_ns) = 0;
};

/**
 * Cluster-facing source of host-level fault processes: whole-host
 * crashes, straggler slowdowns, and flaky-link transfer loss. All
 * queries are pure functions of (configuration, seed), so identical
 * scenarios replay bit-identically regardless of query order.
 * Implemented by ChaosCampaign for chaos benches; tests plug in
 * deterministic stubs.
 */
class HostFaultModel
{
  public:
    virtual ~HostFaultModel() = default;

    /** True when a crash window of `host` intersects [start_ns, end_ns]
     *  (an instant query passes start == end). */
    virtual bool hostCrashed(unsigned host, double start_ns,
                             double end_ns) = 0;

    /** Service-time multiplier of `host` at time `ns` (>= 1.0; the
     *  product of every straggler window covering the instant). */
    virtual double hostSlowdown(unsigned host, double ns) = 0;

    /** True when transfer `transfer_id` to/from `host` at time `ns` is
     *  lost on a flaky link. One draw per id: hedged copies and retries
     *  carry distinct ids, so their fates are independent. */
    virtual bool linkDropped(unsigned host, std::uint64_t transfer_id,
                             double ns) = 0;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_RESILIENCE_H
