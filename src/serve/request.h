/**
 * @file
 * Serving-layer request types.
 *
 * One ServeRequest is one inference invocation of a tenant's application
 * (the tenant's AppSpec at batch 1); the batching scheduler may coalesce
 * several into one AppRunner dispatch. All timestamps are virtual
 * nanoseconds on the serving clock.
 */

#ifndef PIMSIM_SERVE_REQUEST_H
#define PIMSIM_SERVE_REQUEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/reqtrace.h"
#include "stack/workloads.h"

namespace pimsim::serve {

/** One tenant's standing configuration. */
struct TenantSpec
{
    std::string name;
    /** The application a request of this tenant runs (one AppSpec per
     *  tenant keeps batches homogeneous by construction). */
    AppSpec app;
    /** Fair-share / shard-size weight (relative). */
    double weight = 1.0;
    /**
     * Relative completion deadline for every request of this tenant
     * (ns after arrival); 0 disables deadlines. Requests that cannot
     * meet it are shed at admission, requests that outlive it in the
     * queue are timed out, and late completions count as SLO
     * violations.
     */
    double deadlineNs = 0.0;
};

/** One inference request travelling through the serving layer. */
struct ServeRequest
{
    std::uint64_t id = 0; ///< global admission order (tie-breaker)
    unsigned tenant = 0;

    double arrivalNs = 0.0;  ///< submission time
    double dispatchNs = 0.0; ///< left the queue for the device (last try)
    double completeNs = 0.0; ///< result available

    /** Absolute completion deadline (arrival + tenant deadline; 0 = none). */
    double deadlineNs = 0.0;
    /** Device dispatches so far (retries = attempts - 1). */
    unsigned attempts = 0;
    /** Result came from the host golden path (shard tripped / retries
     *  exhausted), not the PIM kernel. */
    bool hostFallback = false;

    /** Causal trace identity (inactive unless a RequestTracer is set). */
    RequestTraceContext trace;

    bool hasDeadline() const { return deadlineNs > 0.0; }

    double queueNs() const { return dispatchNs - arrivalNs; }
    double serviceNs() const { return completeNs - dispatchNs; }
    double latencyNs() const { return completeNs - arrivalNs; }
};

/** A scheduler decision: requests of one tenant served as one dispatch. */
struct Batch
{
    unsigned tenant = 0;
    std::vector<ServeRequest> requests;

    unsigned size() const
    {
        return static_cast<unsigned>(requests.size());
    }
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_REQUEST_H
