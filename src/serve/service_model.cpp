#include "serve/service_model.h"

#include "common/logging.h"

namespace pimsim::serve {

ShardServiceModel::ShardServiceModel(const SystemConfig &base,
                                     unsigned channels,
                                     std::shared_ptr<ServiceTimeCache> cache)
    : config_(base), channels_(channels), cache_(std::move(cache))
{
    PIMSIM_ASSERT(channels_ >= 1, "shard needs at least one channel");
    // Rebuild the stack/channel split for the shard's channel count; the
    // per-channel geometry, timing and host model stay the base's.
    if (channels_ >= config_.geometry.pchPerStack) {
        // A truncating divide here would silently model a smaller shard
        // (e.g. 24 channels on 16-pch stacks would drop 8 channels).
        PIMSIM_ASSERT(channels_ % config_.geometry.pchPerStack == 0,
                      "shard channel count ", channels_,
                      " is not a multiple of pchPerStack ",
                      config_.geometry.pchPerStack);
        config_.numStacks = channels_ / config_.geometry.pchPerStack;
    } else {
        config_.numStacks = 1;
        config_.geometry.pchPerStack = channels_;
    }
}

void
ShardServiceModel::setSimThreads(unsigned threads)
{
    simThreads_ = std::max(1u, threads);
    if (system_)
        system_->setThreads(simThreads_);
}

void
ShardServiceModel::ensureRunner()
{
    if (runner_)
        return;
    system_ = std::make_unique<PimSystem>(config_);
    system_->setThreads(simThreads_);
    host_ = std::make_unique<HostModel>(*system_);
    blas_ = config_.withPim() ? std::make_unique<PimBlas>(*system_) : nullptr;
    runner_ = std::make_unique<AppRunner>(*host_, blas_.get());
}

double
ShardServiceModel::serviceNs(const AppSpec &app, unsigned batch)
{
    PIMSIM_ASSERT(batch >= 1, "batch must be >= 1");
    const ServiceTimeCache::Key key{channels_, app.name, batch};
    if (cache_) {
        if (const double *hit = cache_->find(key))
            return *hit;
    }
    ensureRunner();
    const double ns = runner_->runApp(app, batch).ns;
    if (cache_)
        cache_->insert(key, ns);
    return ns;
}

HostFallbackModel::HostFallbackModel(const SystemConfig &base,
                                     std::shared_ptr<ServiceTimeCache> cache)
    : config_(base), cache_(std::move(cache))
{
    // The host path never issues PIM commands; measuring on a plain-HBM
    // system keeps the lazily-built measurement stack minimal.
    config_.kind = MemoryKind::Hbm;
}

void
HostFallbackModel::setSimThreads(unsigned threads)
{
    simThreads_ = std::max(1u, threads);
    if (system_)
        system_->setThreads(simThreads_);
}

void
HostFallbackModel::ensureRunner()
{
    if (runner_)
        return;
    system_ = std::make_unique<PimSystem>(config_);
    system_->setThreads(simThreads_);
    host_ = std::make_unique<HostModel>(*system_);
    runner_ = std::make_unique<AppRunner>(*host_, nullptr);
}

double
HostFallbackModel::serviceNs(const AppSpec &app, unsigned batch)
{
    PIMSIM_ASSERT(batch >= 1, "batch must be >= 1");
    const ServiceTimeCache::Key key{ServiceTimeCache::kHostChannels, app.name,
                                    batch};
    if (cache_) {
        if (const double *hit = cache_->find(key))
            return *hit;
    }
    ensureRunner();
    const double ns = runner_->runApp(app, batch).ns;
    if (cache_)
        cache_->insert(key, ns);
    return ns;
}

} // namespace pimsim::serve
