/**
 * @file
 * Bounded admission queue in front of the batching scheduler.
 *
 * Requests wait in per-tenant FIFOs under one global depth bound (plus
 * an optional per-tenant bound so a flooding tenant cannot monopolise
 * the queue). Admission control is a hard reject — the serving layer
 * reports rejections instead of queueing unboundedly, which is what
 * keeps the tail latency of admitted requests meaningful.
 */

#ifndef PIMSIM_SERVE_REQUEST_QUEUE_H
#define PIMSIM_SERVE_REQUEST_QUEUE_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace pimsim::serve {

/** Admission-control configuration. */
struct QueueConfig
{
    /** Total queued requests across all tenants. */
    unsigned depth = 64;
    /** Per-tenant cap (0 = bounded only by the global depth). */
    unsigned perTenantDepth = 0;
};

/** Bounded multi-tenant FIFO with rejection accounting. */
class RequestQueue
{
  public:
    RequestQueue(const QueueConfig &config, unsigned num_tenants);

    /**
     * Admit a request if the global and per-tenant bounds allow it.
     * @return true when admitted; false counts as a rejection.
     */
    bool tryPush(const ServeRequest &request);

    /** Pop the oldest request of one tenant (must be non-empty). */
    ServeRequest popFront(unsigned tenant);

    std::size_t size() const { return total_; }
    bool empty() const { return total_ == 0; }
    std::size_t sizeForTenant(unsigned tenant) const
    {
        return queues_[tenant].size();
    }

    /** Oldest queued request of a tenant (nullptr when empty). */
    const ServeRequest *front(unsigned tenant) const
    {
        return queues_[tenant].empty() ? nullptr : &queues_[tenant].front();
    }

    /**
     * Tenant owning the globally oldest queued request among `eligible`
     * (admission id breaks ties); nullopt when all are empty.
     */
    std::optional<unsigned>
    oldestTenant(const std::vector<unsigned> &eligible) const;

    std::uint64_t admitted(unsigned tenant) const
    {
        return admitted_[tenant];
    }
    std::uint64_t rejected(unsigned tenant) const
    {
        return rejected_[tenant];
    }

  private:
    QueueConfig config_;
    std::vector<std::deque<ServeRequest>> queues_;
    std::vector<std::uint64_t> admitted_;
    std::vector<std::uint64_t> rejected_;
    std::size_t total_ = 0;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_REQUEST_QUEUE_H
