#include "serve/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim::serve {

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Fcfs:
        return "fcfs";
      case SchedPolicy::BatchTimeout:
        return "batch";
      case SchedPolicy::FairShare:
        return "fair";
    }
    return "?";
}

double
Scheduler::nextReadyNs(const RequestQueue &, const std::vector<unsigned> &,
                       double) const
{
    // Work-conserving policies dispatch immediately or not at all.
    return kNoEventNs;
}

void
Scheduler::onDispatched(const Batch &, double)
{
}

namespace {

/** Pop up to `limit` requests of one tenant into a batch. */
Batch
takeBatch(RequestQueue &queue, unsigned tenant, unsigned limit)
{
    Batch batch;
    batch.tenant = tenant;
    while (batch.size() < limit && queue.sizeForTenant(tenant) > 0)
        batch.requests.push_back(queue.popFront(tenant));
    return batch;
}

class FcfsScheduler : public Scheduler
{
  public:
    std::optional<Batch> pick(RequestQueue &queue,
                              const std::vector<unsigned> &eligible,
                              double) override
    {
        const auto tenant = queue.oldestTenant(eligible);
        if (!tenant)
            return std::nullopt;
        return takeBatch(queue, *tenant, 1);
    }
};

class BatchTimeoutScheduler : public Scheduler
{
  public:
    explicit BatchTimeoutScheduler(const SchedulerConfig &config)
        : config_(config)
    {
    }

    std::optional<Batch> pick(RequestQueue &queue,
                              const std::vector<unsigned> &eligible,
                              double now) override
    {
        // A full batch dispatches immediately; prefer the oldest head so
        // FCFS order is kept among equally-ready tenants.
        std::optional<unsigned> full;
        std::optional<unsigned> expired;
        for (unsigned t : eligible) {
            const ServeRequest *head = queue.front(t);
            if (!head)
                continue;
            if (queue.sizeForTenant(t) >= config_.maxBatch &&
                (!full || head->id < queue.front(*full)->id)) {
                full = t;
            }
            // Written as arrival + timeout <= now so the comparison is
            // bit-identical to the nextReadyNs() timer (a rearranged
            // form can round differently and miss the timer instant).
            if (head->arrivalNs + config_.batchTimeoutNs <= now &&
                (!expired || head->id < queue.front(*expired)->id)) {
                expired = t;
            }
        }
        if (full)
            return takeBatch(queue, *full, config_.maxBatch);
        if (expired)
            return takeBatch(queue, *expired, config_.maxBatch);
        return std::nullopt;
    }

    double nextReadyNs(const RequestQueue &queue,
                       const std::vector<unsigned> &eligible,
                       double) const override
    {
        double ready = kNoEventNs;
        for (unsigned t : eligible) {
            const ServeRequest *head = queue.front(t);
            if (head)
                ready = std::min(ready,
                                 head->arrivalNs + config_.batchTimeoutNs);
        }
        return ready;
    }

  private:
    SchedulerConfig config_;
};

class FairShareScheduler : public Scheduler
{
  public:
    FairShareScheduler(const SchedulerConfig &config,
                       const std::vector<double> &weights)
        : config_(config), weights_(weights), servedNs_(weights.size(), 0.0)
    {
        for (auto &w : weights_)
            w = w > 0.0 ? w : 1.0;
    }

    std::optional<Batch> pick(RequestQueue &queue,
                              const std::vector<unsigned> &eligible,
                              double) override
    {
        // Least normalised service first (start-time fairness); ties go
        // to the lower tenant id for determinism.
        std::optional<unsigned> best;
        for (unsigned t : eligible) {
            if (queue.sizeForTenant(t) == 0)
                continue;
            ensureTenant(t);
            if (!best ||
                servedNs_[t] / weights_[t] <
                    servedNs_[*best] / weights_[*best]) {
                best = t;
            }
        }
        if (!best)
            return std::nullopt;
        return takeBatch(queue, *best, config_.maxBatch);
    }

    void onDispatched(const Batch &batch, double service_ns) override
    {
        ensureTenant(batch.tenant);
        servedNs_[batch.tenant] += service_ns;
    }

  private:
    /**
     * Grow the accounting arrays to cover tenant id `t`. Callers may
     * construct the scheduler with fewer weights than tenants (or none);
     * unspecified tenants get the default weight 1.0 instead of an
     * out-of-bounds read.
     */
    void ensureTenant(unsigned t)
    {
        if (t < weights_.size())
            return;
        weights_.resize(t + 1, 1.0);
        servedNs_.resize(t + 1, 0.0);
    }

    SchedulerConfig config_;
    std::vector<double> weights_;
    std::vector<double> servedNs_;
};

} // namespace

std::unique_ptr<Scheduler>
Scheduler::make(const SchedulerConfig &config,
                const std::vector<double> &weights)
{
    PIMSIM_ASSERT(config.maxBatch >= 1, "maxBatch must be >= 1");
    switch (config.policy) {
      case SchedPolicy::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedPolicy::BatchTimeout:
        return std::make_unique<BatchTimeoutScheduler>(config);
      case SchedPolicy::FairShare:
        return std::make_unique<FairShareScheduler>(config, weights);
    }
    PIMSIM_PANIC("bad scheduling policy");
}

} // namespace pimsim::serve
