#include "serve/serving_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/trace.h"
#include "pim/pim_config.h"

namespace pimsim::serve {

namespace {

std::vector<double>
tenantWeights(const std::vector<TenantSpec> &tenants)
{
    std::vector<double> w;
    w.reserve(tenants.size());
    for (const auto &t : tenants)
        w.push_back(t.weight > 0.0 ? t.weight : 1.0);
    return w;
}

std::uint64_t
toNsSample(double ns)
{
    return ns <= 0.0 ? 0
                     : static_cast<std::uint64_t>(std::llround(ns));
}

LatencySummary
summariseHistogram(const Histogram &h)
{
    LatencySummary s;
    s.meanNs = h.mean();
    s.p50Ns = h.p50();
    s.p95Ns = h.p95();
    s.p99Ns = h.p99();
    s.maxNs = static_cast<double>(h.max());
    return s;
}

} // namespace

ServingEngine::ServingEngine(const ServeConfig &config)
    : config_(config),
      system_(std::make_unique<PimSystem>(config.system)),
      plan_(ShardPlan::shared(0, 0, 0)),
      queue_(config.queue,
             static_cast<unsigned>(config.tenants.size()))
{
    PIMSIM_ASSERT(!config.tenants.empty(), "serving needs >= 1 tenant");
    PIMSIM_ASSERT(config.system.withPim(),
                  "the serving layer drives a PIM-HBM system");

    const unsigned pim_rows =
        PimConfMap::forRows(config.system.geometry.rowsPerBank)
            .firstReservedRow();
    const auto weights = tenantWeights(config.tenants);
    plan_ = config.shardChannels
                ? ShardPlan::sharded(system_->numChannels(), pim_rows,
                                     weights)
                : ShardPlan::shared(system_->numChannels(), pim_rows,
                                    static_cast<unsigned>(
                                        config.tenants.size()));

    if (plan_.isSharded()) {
        for (unsigned t = 0; t < config.tenants.size(); ++t) {
            const ShardSpec &spec = plan_.shard(plan_.shardOf(t));
            drivers_.push_back(std::make_unique<PimDriver>(
                *system_, spec.firstRow, spec.numRows));
        }
    } else {
        drivers_.push_back(std::make_unique<PimDriver>(*system_));
    }

    for (unsigned s = 0; s < plan_.numShards(); ++s) {
        models_.push_back(std::make_unique<ShardServiceModel>(
            config.system, floorPow2(plan_.shard(s).numChannels),
            config.timingCache));
    }
    servers_.resize(plan_.numShards());

    sched_ = Scheduler::make(config.sched, weights);

    for (const auto &spec : config.tenants) {
        TenantState state{spec,
                          0,
                          0,
                          0,
                          0.0,
                          Histogram(config.histBucketNs, config.histBuckets),
                          Histogram(config.histBucketNs, config.histBuckets),
                          Histogram(config.histBucketNs, config.histBuckets)};
        tenants_.push_back(std::move(state));
    }

    // Register the latency histograms only once tenants_ has its final
    // size: a later push_back would reallocate and dangle the pointers.
    auto &registry = system_->statsRegistry();
    for (auto &t : tenants_) {
        const std::string base = "serve.tenant." + t.spec.name;
        registry.addHistogram(base + ".queueNs", &t.queueH);
        registry.addHistogram(base + ".serviceNs", &t.serviceH);
        registry.addHistogram(base + ".e2eNs", &t.e2eH);
    }
}

void
ServingEngine::setTrace(TraceSession *session)
{
    trace_ = session;
    if (!trace_)
        return;
    trace_->setProcessName(kTracePidServing, "serving");
    for (unsigned s = 0; s < plan_.numShards(); ++s) {
        trace_->setThreadName(kTracePidServing, static_cast<int>(s),
                              "shard" + std::to_string(s));
    }
}

PimDriver &
ServingEngine::tenantDriver(unsigned tenant)
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "bad tenant id ", tenant);
    return plan_.isSharded() ? *drivers_[tenant] : *drivers_[0];
}

bool
ServingEngine::submit(unsigned tenant, double arrival_ns)
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "bad tenant id ", tenant);
    PIMSIM_ASSERT(arrival_ns >= nowNs_,
                  "submission in the past: ", arrival_ns, " < ", nowNs_);
    advanceTo(arrival_ns);

    ServeRequest request;
    request.id = nextId_++;
    request.tenant = tenant;
    request.arrivalNs = arrival_ns;

    auto &state = tenants_[tenant];
    ++state.submitted;
    auto &stats = system_->serveStats();
    stats.add("tenant." + state.spec.name + ".submitted");
    if (!queue_.tryPush(request)) {
        stats.add("tenant." + state.spec.name + ".rejected");
        return false;
    }
    stats.add("tenant." + state.spec.name + ".admitted");
    dispatchAll();
    return true;
}

double
ServingEngine::nextEventNs() const
{
    double next = kNoEventNs;
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (servers_[s].busy) {
            next = std::min(next, servers_[s].freeNs);
        } else {
            next = std::min(next, sched_->nextReadyNs(
                                      queue_, plan_.tenantsOf(s), nowNs_));
        }
    }
    return next;
}

void
ServingEngine::advanceTo(double ns)
{
    while (true) {
        const double event = nextEventNs();
        if (event > ns) // also catches kNoEventNs
            break;
        nowNs_ = std::max(nowNs_, event);
        completeDue();
        dispatchAll();
    }
    nowNs_ = std::max(nowNs_, ns);
}

void
ServingEngine::drain()
{
    while (true) {
        const double event = nextEventNs();
        if (event == kNoEventNs)
            break;
        advanceTo(event);
    }
}

void
ServingEngine::completeDue()
{
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (servers_[s].busy && servers_[s].freeNs <= nowNs_)
            finishBatch(s);
    }
}

void
ServingEngine::dispatchAll()
{
    for (unsigned s = 0; s < servers_.size(); ++s) {
        while (!servers_[s].busy) {
            auto batch =
                sched_->pick(queue_, plan_.tenantsOf(s), nowNs_);
            if (!batch)
                break;
            const double service_ns = models_[s]->serviceNs(
                tenants_[batch->tenant].spec.app, batch->size());
            sched_->onDispatched(*batch, service_ns);
            for (auto &r : batch->requests)
                r.dispatchNs = nowNs_;
            auto &stats = system_->serveStats();
            stats.add("batchesDispatched");
            stats.add("queueDepthSum", queue_.size());
            if (trace_) {
                trace_->span(kTracePidServing, static_cast<int>(s),
                             tenants_[batch->tenant].spec.name + " b" +
                                 std::to_string(batch->size()),
                             "batch", nowNs_, service_ns);
            }
            servers_[s].busy = true;
            servers_[s].freeNs = nowNs_ + service_ns;
            servers_[s].serviceNs = service_ns;
            servers_[s].inFlight = std::move(*batch);
        }
    }
}

void
ServingEngine::finishBatch(unsigned shard)
{
    Server &server = servers_[shard];
    const unsigned tenant = server.inFlight.tenant;
    auto &state = tenants_[tenant];

    for (auto &r : server.inFlight.requests) {
        r.completeNs = server.freeNs;
        state.queueH.sample(toNsSample(r.queueNs()));
        state.serviceH.sample(toNsSample(r.serviceNs()));
        state.e2eH.sample(toNsSample(r.latencyNs()));
        ++state.completed;
        completions_.push_back(r);
    }
    ++state.batches;
    state.servedNs += server.serviceNs;

    auto &stats = system_->serveStats();
    stats.add("tenant." + state.spec.name + ".completed",
              server.inFlight.size());
    stats.add("tenant." + state.spec.name + ".batches");

    server.busy = false;
    server.inFlight = Batch{};
}

std::vector<ServeRequest>
ServingEngine::takeCompletions()
{
    std::vector<ServeRequest> out;
    out.swap(completions_);
    return out;
}

TenantReport
ServingEngine::summarise(const TenantState &t, double horizon_ns) const
{
    TenantReport r;
    r.name = t.spec.name;
    r.submitted = t.submitted;
    r.completed = t.completed;
    r.batches = t.batches;
    r.servedNs = t.servedNs;
    r.throughputRps =
        horizon_ns > 0.0
            ? static_cast<double>(t.completed) / (horizon_ns * 1e-9)
            : 0.0;
    r.queue = summariseHistogram(t.queueH);
    r.service = summariseHistogram(t.serviceH);
    r.e2e = summariseHistogram(t.e2eH);
    return r;
}

ServeReport
ServingEngine::report() const
{
    ServeReport report;
    report.horizonNs = nowNs_;
    report.total.name = "total";
    for (unsigned t = 0; t < tenants_.size(); ++t) {
        TenantReport r = summarise(tenants_[t], nowNs_);
        r.admitted = queue_.admitted(t);
        r.rejected = queue_.rejected(t);
        report.total.submitted += r.submitted;
        report.total.admitted += r.admitted;
        report.total.rejected += r.rejected;
        report.total.completed += r.completed;
        report.total.batches += r.batches;
        report.total.servedNs += r.servedNs;
        report.tenants.push_back(std::move(r));
    }
    report.total.throughputRps =
        nowNs_ > 0.0
            ? static_cast<double>(report.total.completed) / (nowNs_ * 1e-9)
            : 0.0;

    // Aggregate latency summaries: weighted mean, worst-tenant tails
    // (per-tenant histograms are not mergeable sample-exactly; the
    // conservative max keeps the headline honest).
    auto aggregate = [&](auto pick_member) {
        LatencySummary s;
        std::uint64_t n = 0;
        for (unsigned t = 0; t < tenants_.size(); ++t) {
            const LatencySummary &src = pick_member(report.tenants[t]);
            const std::uint64_t c = report.tenants[t].completed;
            s.meanNs += src.meanNs * static_cast<double>(c);
            n += c;
            s.p50Ns = std::max(s.p50Ns, src.p50Ns);
            s.p95Ns = std::max(s.p95Ns, src.p95Ns);
            s.p99Ns = std::max(s.p99Ns, src.p99Ns);
            s.maxNs = std::max(s.maxNs, src.maxNs);
        }
        if (n)
            s.meanNs /= static_cast<double>(n);
        return s;
    };
    report.total.queue =
        aggregate([](const TenantReport &r) -> const LatencySummary & {
            return r.queue;
        });
    report.total.service =
        aggregate([](const TenantReport &r) -> const LatencySummary & {
            return r.service;
        });
    report.total.e2e =
        aggregate([](const TenantReport &r) -> const LatencySummary & {
            return r.e2e;
        });
    return report;
}

} // namespace pimsim::serve
