#include "serve/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "pim/pim_config.h"

namespace pimsim::serve {

namespace {

std::vector<double>
tenantWeights(const std::vector<TenantSpec> &tenants)
{
    std::vector<double> w;
    w.reserve(tenants.size());
    for (const auto &t : tenants)
        w.push_back(t.weight > 0.0 ? t.weight : 1.0);
    return w;
}

std::uint64_t
toNsSample(double ns)
{
    return ns <= 0.0 ? 0
                     : static_cast<std::uint64_t>(std::llround(ns));
}

LatencySummary
summariseHistogram(const Histogram &h)
{
    LatencySummary s;
    s.meanNs = h.mean();
    s.p50Ns = h.p50();
    s.p95Ns = h.p95();
    s.p99Ns = h.p99();
    s.maxNs = static_cast<double>(h.max());
    return s;
}

} // namespace

ServingEngine::ServingEngine(const ServeConfig &config)
    : config_(config),
      system_(std::make_unique<PimSystem>(config.system)),
      plan_(ShardPlan::shared(0, 0, 0)),
      queue_(config.queue,
             static_cast<unsigned>(config.tenants.size())),
      retryRng_(config.retrySeed)
{
    PIMSIM_ASSERT(!config.tenants.empty(), "serving needs >= 1 tenant");
    PIMSIM_ASSERT(config.system.withPim(),
                  "the serving layer drives a PIM-HBM system");
    config.retry.validate();
    if (config.sdc.enabled) {
        config.sdc.monitor.validate();
        PIMSIM_ASSERT(config.sdc.canaryPeriodNs > 0.0,
                      "canary period must be positive");
        PIMSIM_ASSERT(config.sdc.migrationNsPerRow >= 0.0,
                      "migration cost must be non-negative");
    }

    const unsigned pim_rows =
        PimConfMap::forRows(config.system.geometry.rowsPerBank)
            .firstReservedRow();
    const auto weights = tenantWeights(config.tenants);
    plan_ = config.shardChannels
                ? ShardPlan::sharded(system_->numChannels(), pim_rows,
                                     weights)
                : ShardPlan::shared(system_->numChannels(), pim_rows,
                                    static_cast<unsigned>(
                                        config.tenants.size()));

    plan_.assertRowIsolation();
    if (plan_.isSharded()) {
        for (unsigned t = 0; t < config.tenants.size(); ++t) {
            const ShardSpec &spec = plan_.shard(plan_.shardOf(t));
            drivers_.push_back(std::make_unique<PimDriver>(
                *system_, spec.firstRow, spec.numRows));
        }
    } else {
        drivers_.push_back(std::make_unique<PimDriver>(*system_));
    }

    if (config.sdc.enabled) {
        sdcMonitor_ = std::make_unique<SdcMonitor>(
            system_->numChannels(), config.system.pim.unitsPerPch,
            config.sdc.monitor);
        system_->statsRegistry().addGroup("sdc", &sdcMonitor_->stats());
    }
    canaryDueNs_ = kNoEventNs;
    lastCanaryNs_.assign(system_->numChannels(), 0.0);

    for (unsigned s = 0; s < plan_.numShards(); ++s) {
        models_.push_back(std::make_unique<ShardServiceModel>(
            config.system, floorPow2(plan_.shard(s).numChannels),
            config.timingCache));
    }
    hostModel_ = std::make_unique<HostFallbackModel>(config.system,
                                                     config.timingCache);
    for (auto &model : models_)
        model->setSimThreads(config.simThreads);
    hostModel_->setSimThreads(config.simThreads);
    servers_.resize(plan_.numShards());
    shards_.resize(plan_.numShards());
    for (auto &shard : shards_)
        shard.breaker = CircuitBreaker(config.breaker);

    sched_ = Scheduler::make(config.sched, weights);

    for (const auto &spec : config.tenants) {
        TenantState state{spec,
                          Histogram(config.histBucketNs, config.histBuckets),
                          Histogram(config.histBucketNs, config.histBuckets),
                          Histogram(config.histBucketNs, config.histBuckets)};
        tenants_.push_back(std::move(state));
    }

    // Register the latency histograms only once tenants_ has its final
    // size: a later push_back would reallocate and dangle the pointers.
    auto &registry = system_->statsRegistry();
    for (auto &t : tenants_) {
        const std::string base = "serve.tenant." + t.spec.name;
        registry.addHistogram(base + ".queueNs", &t.queueH);
        registry.addHistogram(base + ".serviceNs", &t.serviceH);
        registry.addHistogram(base + ".e2eNs", &t.e2eH);
    }
}

void
ServingEngine::setTrace(TraceSession *session)
{
    trace_ = session;
    if (sdcMonitor_)
        sdcMonitor_->setTrace(session);
    if (!trace_)
        return;
    trace_->setProcessName(kTracePidServing, "serving");
    trace_->setProcessName(kTracePidResilience, "resilience");
    for (unsigned s = 0; s < plan_.numShards(); ++s) {
        trace_->setThreadName(kTracePidServing, static_cast<int>(s),
                              "shard" + std::to_string(s));
        trace_->setThreadName(kTracePidResilience, static_cast<int>(s),
                              "shard" + std::to_string(s));
    }
}

PimDriver &
ServingEngine::tenantDriver(unsigned tenant)
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "bad tenant id ", tenant);
    return plan_.isSharded() ? *drivers_[tenant] : *drivers_[0];
}

double
ServingEngine::capacityPenalty(unsigned s) const
{
    if (!sdcMonitor_ || !config_.sdc.quarantine)
        return 1.0;
    const unsigned total = plan_.shard(s).numChannels;
    const unsigned active = plan_.activeChannelsOf(s);
    if (total == 0 || active == 0 || active == total)
        return 1.0;
    // Work redistribution: a GEMV's output rows stripe over the shard's
    // channels, so the same work on `active` of `total` channels takes
    // proportionally longer. (The shard-sized timing model stays at the
    // plan size; the analytic scale avoids the power-of-two cliff a
    // rebuilt 15-channel model would hit.)
    return static_cast<double>(total) / static_cast<double>(active);
}

double
ServingEngine::svc1Ns(unsigned tenant)
{
    auto &state = tenants_[tenant];
    if (state.svc1Ns < 0.0) {
        state.svc1Ns = models_[plan_.shardOf(tenant)]->serviceNs(
            state.spec.app, 1);
    }
    // Degraded capacity stretches the admission estimate too, so the
    // deadline gate sheds what the thinner shard cannot carry.
    return state.svc1Ns * capacityPenalty(plan_.shardOf(tenant));
}

double
ServingEngine::backlogNs(unsigned s)
{
    // Heuristic work estimate ahead of a new arrival on shard `s`:
    // the busy remainder, one dispatch per pending retry, and the queue
    // amortised over the scheduler's batch size. It deliberately ignores
    // fault risk — optimistic admission errs toward timing out in the
    // queue (still accounted) rather than shedding reachable work.
    double backlog = 0.0;
    if (servers_[s].busy)
        backlog += servers_[s].freeNs - nowNs_;
    for (const auto &pending : shards_[s].retries)
        backlog += svc1Ns(pending.batch.tenant);
    const double per_batch =
        static_cast<double>(std::max(config_.sched.maxBatch, 1u));
    for (unsigned t : plan_.tenantsOf(s)) {
        backlog += static_cast<double>(queue_.sizeForTenant(t)) *
                   svc1Ns(t) / per_batch;
    }
    return backlog;
}

void
ServingEngine::finishRequestTrace(ServeRequest &request, double end_ns,
                                  const char *terminal, bool erred)
{
    const bool missed =
        !erred && request.hasDeadline() && end_ns > request.deadlineNs;
    sloObs_.push_back(SloObservation{end_ns, !erred && !missed});
    if (reqTracer_ == nullptr || !request.trace.active())
        return;
    if (terminal != nullptr) {
        reqTracer_->instant(request.trace,
                            kTracePidServing,
                            static_cast<int>(plan_.shardOf(request.tenant)),
                            terminal, "terminal", end_ns);
    }
    reqTracer_->span(request.trace, kTracePidServing,
                     static_cast<int>(plan_.shardOf(request.tenant)),
                     "request " + tenants_[request.tenant].spec.name,
                     "request", request.arrivalNs,
                     end_ns - request.arrivalNs);
    TraceOutcome outcome;
    outcome.latencyNs = end_ns - request.arrivalNs;
    outcome.erred = erred;
    outcome.deadlineMissed = missed;
    outcome.failedOver = request.attempts > 1 || request.hostFallback;
    reqTracer_->end(request.trace, outcome);
}

bool
ServingEngine::submit(unsigned tenant, double arrival_ns)
{
    PIMSIM_ASSERT(tenant < tenants_.size(), "bad tenant id ", tenant);
    PIMSIM_ASSERT(arrival_ns >= nowNs_,
                  "submission in the past: ", arrival_ns, " < ", nowNs_);
    advanceTo(arrival_ns);

    auto &state = tenants_[tenant];

    ServeRequest request;
    request.id = nextId_++;
    request.tenant = tenant;
    request.arrivalNs = arrival_ns;
    if (state.spec.deadlineNs > 0.0)
        request.deadlineNs = arrival_ns + state.spec.deadlineNs;
    if (reqTracer_ != nullptr)
        request.trace = reqTracer_->begin(arrival_ns);

    ++state.submitted;
    auto &stats = system_->serveStats();
    stats.add("tenant." + state.spec.name + ".submitted");

    if (config_.deadlineAdmission && request.hasDeadline()) {
        const unsigned s = plan_.shardOf(tenant);
        const double estimate =
            nowNs_ + backlogNs(s) + svc1Ns(tenant);
        if (estimate > request.deadlineNs) {
            ++state.shed;
            stats.add("tenant." + state.spec.name + ".shed");
            finishRequestTrace(request, nowNs_, "shed", true);
            return false;
        }
    }

    if (!queue_.tryPush(request)) {
        stats.add("tenant." + state.spec.name + ".rejected");
        finishRequestTrace(request, nowNs_, "rejected", true);
        return false;
    }
    stats.add("tenant." + state.spec.name + ".admitted");
    dispatchAll();
    return true;
}

double
ServingEngine::nextEventNs() const
{
    double next = kNoEventNs;
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (servers_[s].busy) {
            next = std::min(next, servers_[s].freeNs);
        } else if (shards_[s].holdUntilNs > nowNs_) {
            // A migration hold defers every pick; the hold expiry is the
            // shard's next event (reporting ready work here would spin
            // the event loop against the dispatch gate).
            next = std::min(next, shards_[s].holdUntilNs);
        } else {
            next = std::min(next, sched_->nextReadyNs(
                                      queue_, plan_.tenantsOf(s), nowNs_));
            for (const auto &pending : shards_[s].retries)
                next = std::min(next, pending.readyNs);
        }
    }
    // Queued deadlines fire as events so timeouts happen at the instant
    // the deadline passes, not lazily at the next dispatch. A tenant's
    // relative deadline is constant, so its FIFO front expires first.
    for (unsigned t = 0; t < tenants_.size(); ++t) {
        const ServeRequest *head = queue_.front(t);
        if (head && head->hasDeadline())
            next = std::min(next, head->deadlineNs);
    }
    // Probation cool-downs and canary rounds advance only while other
    // work exists: pending canaries alone must not keep drain() alive
    // against an unbounded fault process.
    if (next < kNoEventNs && sdcMonitor_) {
        next = std::min(next, sdcMonitor_->nextEventNs());
        next = std::min(next, canaryDueNs_);
    }
    return next;
}

void
ServingEngine::advanceTo(double ns)
{
    while (true) {
        const double event = nextEventNs();
        if (event > ns) // also catches kNoEventNs
            break;
        nowNs_ = std::max(nowNs_, event);
        completeDue();
        expireDue();
        runSdcDue();
        dispatchAll();
    }
    nowNs_ = std::max(nowNs_, ns);
}

void
ServeReport::reconcile() const
{
    const auto check = [](const TenantReport &t) {
        const std::uint64_t terminal =
            t.completed + t.shed + t.timedOut + t.rejected;
        PIMSIM_ASSERT(terminal == t.submitted,
                      "serve accounting leak for '", t.name, "': ",
                      t.completed, " completed + ", t.shed, " shed + ",
                      t.timedOut, " timed out + ", t.rejected,
                      " rejected != ", t.submitted, " submitted");
    };
    for (const TenantReport &t : tenants)
        check(t);
    check(total);
}

void
ServingEngine::drain()
{
    while (true) {
        const double event = nextEventNs();
        if (event == kNoEventNs)
            break;
        advanceTo(event);
    }
    report().reconcile();
    // Close any breaker span still running so traces written before the
    // engine dies show the final open/half-open interval.
    for (unsigned s = 0; s < shards_.size(); ++s) {
        ShardState &shard = shards_[s];
        if (trace_ && shard.traceState != BreakerState::Closed &&
            nowNs_ > shard.traceSinceNs) {
            trace_->span(kTracePidResilience, static_cast<int>(s),
                         breakerStateName(shard.traceState), "breaker",
                         shard.traceSinceNs, nowNs_ - shard.traceSinceNs);
        }
        shard.traceSinceNs = nowNs_;
    }
}

void
ServingEngine::completeDue()
{
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (servers_[s].busy && servers_[s].freeNs <= nowNs_)
            finishBatch(s);
    }
}

void
ServingEngine::expireDue()
{
    auto &stats = system_->serveStats();
    for (unsigned t = 0; t < tenants_.size(); ++t) {
        while (true) {
            const ServeRequest *head = queue_.front(t);
            if (!head || !head->hasDeadline() ||
                head->deadlineNs > nowNs_)
                break;
            ServeRequest expired = *head;
            queue_.popFront(t);
            ++tenants_[t].timedOut;
            stats.add("tenant." + tenants_[t].spec.name + ".timedOut");
            finishRequestTrace(expired, nowNs_, "queue-timeout", true);
        }
    }
}

int
ServingEngine::dueRetryIndex(unsigned s) const
{
    // Earliest ready time wins; insertion order (scheduling order)
    // breaks ties deterministically.
    int best = -1;
    for (unsigned i = 0; i < shards_[s].retries.size(); ++i) {
        const PendingRetry &pending = shards_[s].retries[i];
        if (pending.readyNs > nowNs_)
            continue;
        if (best < 0 ||
            pending.readyNs < shards_[s].retries[best].readyNs)
            best = static_cast<int>(i);
    }
    return best;
}

void
ServingEngine::noteBreakerState(unsigned s)
{
    ShardState &shard = shards_[s];
    const BreakerState now_state = shard.breaker.state();
    if (now_state == shard.traceState)
        return;
    auto &stats = system_->serveStats();
    const std::string base = "breaker.shard" + std::to_string(s);
    switch (now_state) {
      case BreakerState::Open:
        stats.add(base + ".opened");
        break;
      case BreakerState::HalfOpen:
        stats.add(base + ".halfOpen");
        break;
      case BreakerState::Closed:
        stats.add(base + ".closed");
        break;
    }
    if (trace_ && shard.traceState != BreakerState::Closed) {
        const double since = shard.breaker.stateSinceNs();
        trace_->span(kTracePidResilience, static_cast<int>(s),
                     breakerStateName(shard.traceState), "breaker",
                     shard.traceSinceNs,
                     std::max(since, shard.traceSinceNs) -
                         shard.traceSinceNs);
    }
    shard.traceState = now_state;
    shard.traceSinceNs = shard.breaker.stateSinceNs();
}

void
ServingEngine::startBatch(unsigned s, Batch &&batch, bool force_host)
{
    // A shard with every channel withdrawn has no PIM capacity left:
    // its tenants ride the host golden path until probation re-admits.
    if (!force_host && sdcMonitor_ && config_.sdc.quarantine &&
        plan_.shard(s).numChannels > 0 && plan_.activeChannelsOf(s) == 0)
        force_host = true;

    DispatchRoute route = DispatchRoute::Host;
    if (!force_host) {
        route = shards_[s].breaker.route(nowNs_);
        noteBreakerState(s); // Open -> HalfOpen happens inside route()
    }
    const bool host = route == DispatchRoute::Host;

    auto &state = tenants_[batch.tenant];
    const double service_ns =
        host ? hostModel_->serviceNs(state.spec.app, batch.size())
             : models_[s]->serviceNs(state.spec.app, batch.size()) *
                   capacityPenalty(s);
    sched_->onDispatched(batch, service_ns);
    for (auto &r : batch.requests) {
        r.dispatchNs = nowNs_;
        ++r.attempts;
        if (reqTracer_ != nullptr && r.trace.active()) {
            if (r.attempts == 1) {
                reqTracer_->span(reqTracer_->child(r.trace),
                                 kTracePidServing, static_cast<int>(s),
                                 "queue", "queue", r.arrivalNs,
                                 nowNs_ - r.arrivalNs);
            } else {
                reqTracer_->instant(r.trace, kTracePidServing,
                                    static_cast<int>(s),
                                    "retry a" + std::to_string(r.attempts),
                                    "retry", nowNs_);
            }
            reqTracer_->span(reqTracer_->child(r.trace),
                             kTracePidServing, static_cast<int>(s),
                             host ? "attempt host" : "attempt",
                             host ? "fallback" : "batch", nowNs_,
                             service_ns);
        }
    }

    auto &stats = system_->serveStats();
    stats.add("batchesDispatched");
    stats.add("queueDepthSum", queue_.size());
    if (trace_) {
        const char *cat = host ? "fallback"
                         : route == DispatchRoute::PimProbe ? "probe"
                                                            : "batch";
        trace_->span(kTracePidServing, static_cast<int>(s),
                     state.spec.name + " b" +
                         std::to_string(batch.size()) +
                         (host ? " host" : ""),
                     cat, nowNs_, service_ns);
    }
    servers_[s].busy = true;
    servers_[s].freeNs = nowNs_ + service_ns;
    servers_[s].serviceNs = service_ns;
    servers_[s].fallback = host;
    servers_[s].probe = route == DispatchRoute::PimProbe;
    servers_[s].inFlight = std::move(batch);
}

void
ServingEngine::dispatchAll()
{
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (shards_[s].holdUntilNs > nowNs_)
            continue; // weight-stripe migration in progress
        while (!servers_[s].busy) {
            // Due retries are older work: they run before fresh picks.
            const int retry = dueRetryIndex(s);
            if (retry >= 0) {
                PendingRetry pending =
                    std::move(shards_[s].retries[retry]);
                shards_[s].retries.erase(shards_[s].retries.begin() +
                                         retry);
                startBatch(s, std::move(pending.batch),
                           pending.forceHost);
                continue;
            }
            auto batch =
                sched_->pick(queue_, plan_.tenantsOf(s), nowNs_);
            if (!batch)
                break;
            startBatch(s, std::move(*batch), false);
        }
    }
}

void
ServingEngine::finishBatch(unsigned shard)
{
    Server &server = servers_[shard];
    ShardState &res = shards_[shard];
    const unsigned tenant = server.inFlight.tenant;
    auto &state = tenants_[tenant];
    auto &stats = system_->serveStats();

    // The host golden path is fault-immune (PimBlas's hostFallback
    // contract); only PIM batches consult the fault process.
    unsigned faults = 0;
    if (!server.fallback && faults_) {
        faults = faults_->faultEvents(
            shard, server.freeNs - server.serviceNs, server.freeNs);
    }
    const bool failed = faults > 0;
    if (faults > 0) {
        res.batchFaults += faults;
        stats.add("shard" + std::to_string(shard) + ".batchFaults",
                  faults);
        if (trace_) {
            trace_->instant(kTracePidResilience,
                            static_cast<int>(shard), "batchFault",
                            "fault", server.freeNs);
        }
    }
    if (!server.fallback) {
        res.breaker.record(!failed, server.freeNs);
        noteBreakerState(shard);
    }

    // Silent corruptions: invisible to the device's error reporting,
    // so they only matter on batches that completed "successfully".
    bool sdc_rerun = false;
    bool sdc_silent = false;
    if (!failed && !server.fallback && sdcModel_ &&
        config_.sdc.enabled) {
        const bool struck = applySdcOutcomes(
            shard, server.freeNs - server.serviceNs, server.freeNs);
        if (struck) {
            // With ABFT the checksum catches the corruption and the
            // batch re-executes on the host golden path; without it the
            // batch completes and serves wrong values.
            sdc_rerun = config_.sdc.abft;
            sdc_silent = !config_.sdc.abft;
        }
    }

    // Device time is consumed whether or not the batch succeeded.
    state.servedNs += server.serviceNs;

    if (sdc_rerun) {
        PendingRetry pending;
        pending.batch = std::move(server.inFlight);
        pending.readyNs = server.freeNs;
        pending.forceHost = true;
        state.retries += pending.batch.size();
        stats.add("tenant." + state.spec.name + ".sdcReruns",
                  pending.batch.size());
        if (trace_) {
            trace_->instant(kTracePidResilience,
                            static_cast<int>(shard), "sdcDetected",
                            "sdc", server.freeNs);
        }
        res.retries.push_back(std::move(pending));
    } else if (failed) {
        Batch batch = std::move(server.inFlight);
        const unsigned attempts = batch.requests.empty()
                                      ? 1u
                                      : batch.requests.front().attempts;
        PendingRetry pending;
        pending.batch = std::move(batch);
        if (attempts <= config_.retry.maxRetries) {
            // Budget left: back off exponentially with jitter.
            pending.readyNs =
                server.freeNs +
                config_.retry.backoffNs(attempts, retryRng_);
            pending.forceHost = false;
            state.retries += pending.batch.size();
            stats.add("tenant." + state.spec.name + ".retries",
                      pending.batch.size());
        } else {
            // Budget spent: straight to the host golden path.
            pending.readyNs = server.freeNs;
            pending.forceHost = true;
        }
        res.retries.push_back(std::move(pending));
    } else {
        for (auto &r : server.inFlight.requests) {
            r.completeNs = server.freeNs;
            r.hostFallback = server.fallback;
            state.queueH.sample(toNsSample(r.queueNs()),
                                r.trace.traceId);
            state.serviceH.sample(toNsSample(r.serviceNs()),
                                  r.trace.traceId);
            state.e2eH.sample(toNsSample(r.latencyNs()),
                              r.trace.traceId);
            ++state.completed;
            if (server.fallback) {
                ++state.fallbackCompleted;
                stats.add("tenant." + state.spec.name +
                          ".fallbackCompleted");
            }
            if (sdc_silent) {
                ++state.silentlyWrong;
                stats.add("tenant." + state.spec.name +
                          ".silentlyWrong");
            }
            if (r.hasDeadline() && r.completeNs > r.deadlineNs) {
                ++state.sloViolations;
                stats.add("tenant." + state.spec.name +
                          ".sloViolations");
            }
            // A silently wrong completion burns SLO error budget like
            // an error: the user saw a bad answer on time.
            finishRequestTrace(r, r.completeNs, nullptr, sdc_silent);
            completions_.push_back(r);
        }
        ++state.batches;
        stats.add("tenant." + state.spec.name + ".completed",
                  server.inFlight.size());
        stats.add("tenant." + state.spec.name + ".batches");
    }

    server.busy = false;
    server.fallback = false;
    server.probe = false;
    server.inFlight = Batch{};
}

bool
ServingEngine::applySdcOutcomes(unsigned shard, double start_ns,
                                double end_ns)
{
    const ShardSpec &spec = plan_.shard(shard);
    auto &stats = system_->serveStats();
    const unsigned units = sdcMonitor_->unitsPerChannel();
    bool struck = false;
    std::vector<std::uint8_t> unit_struck(units);
    for (unsigned c = 0; c < spec.numChannels; ++c) {
        const unsigned ch = spec.firstChannel + c;
        if (plan_.channelQuarantined(ch))
            continue; // withdrawn channels ran no part of this batch
        const std::vector<SdcEvent> events =
            sdcModel_->sdcEvents(ch, start_ns, end_ns);
        if (!events.empty()) {
            struck = true;
            stats.add("sdc.batchEvents", events.size());
        }
        // Localization needs detection: only the ABFT arm feeds the
        // monitor (an undefended serving path never learns it served
        // garbage, which is exactly the point).
        if (!config_.sdc.abft)
            continue;
        std::fill(unit_struck.begin(), unit_struck.end(), 0);
        for (const SdcEvent &e : events) {
            if (e.unit < units)
                unit_struck[e.unit] = 1;
        }
        for (unsigned u = 0; u < units; ++u) {
            if (unit_struck[u]) {
                sdcMonitor_->recordDetected(ch, u, end_ns);
                sdcMonitor_->recordConfirmed(ch, u, end_ns);
            } else {
                sdcMonitor_->recordClean(ch, u, end_ns);
            }
        }
    }
    if (struck)
        reconcileQuarantine();
    return struck;
}

void
ServingEngine::reconcileQuarantine()
{
    if (!sdcMonitor_ || !config_.sdc.quarantine)
        return;
    auto &stats = system_->serveStats();
    for (unsigned s = 0; s < plan_.numShards(); ++s) {
        const ShardSpec &spec = plan_.shard(s);
        bool changed = false;
        for (unsigned c = 0; c < spec.numChannels; ++c) {
            const unsigned ch = spec.firstChannel + c;
            const bool withdrawn = sdcMonitor_->channelWithdrawn(ch);
            if (withdrawn == plan_.channelQuarantined(ch))
                continue;
            changed = true;
            if (withdrawn) {
                plan_.quarantineChannel(ch);
                stats.add("sdc.channelQuarantined");
            } else {
                plan_.restoreChannel(ch);
                stats.add("sdc.channelRestored");
            }
            if (trace_) {
                trace_->instant(kTracePidResilience,
                                static_cast<int>(s),
                                (withdrawn ? "quarantine ch"
                                           : "restore ch") +
                                    std::to_string(ch),
                                "sdc", nowNs_);
            }
        }
        if (!changed)
            continue;
        // The capacity change replans the shard: the same row slices on
        // a different channel set. Row isolation must survive.
        plan_.assertRowIsolation();
        if (config_.sdc.migrationNsPerRow > 0.0) {
            // Re-striping pauses dispatch while the affected weight
            // rows stream to their new homes.
            unsigned resident_rows = 0;
            if (plan_.isSharded()) {
                for (unsigned t : plan_.tenantsOf(s)) {
                    resident_rows += drivers_[t]->capacityRows() -
                                     drivers_[t]->freeRows();
                }
            } else {
                resident_rows = drivers_[0]->capacityRows() -
                                drivers_[0]->freeRows();
            }
            if (resident_rows > 0) {
                shards_[s].holdUntilNs = std::max(
                    shards_[s].holdUntilNs,
                    nowNs_ + static_cast<double>(resident_rows) *
                                 config_.sdc.migrationNsPerRow);
                stats.add("sdc.migrations");
            }
        }
    }
}

void
ServingEngine::runSdcDue()
{
    if (!sdcMonitor_)
        return;
    sdcMonitor_->advanceTo(nowNs_);

    auto any_probation = [&]() {
        for (unsigned ch = 0; ch < sdcMonitor_->numChannels(); ++ch) {
            if (sdcMonitor_->channelOnProbation(ch))
                return true;
        }
        return false;
    };
    if (!any_probation()) {
        canaryDueNs_ = kNoEventNs;
        return;
    }
    if (canaryDueNs_ == kNoEventNs)
        canaryDueNs_ = nowNs_ + config_.sdc.canaryPeriodNs;
    if (canaryDueNs_ > nowNs_)
        return;

    // One canary round: every probation channel runs a host-verified
    // canary kernel behind the serving fence (no serving capacity is
    // consumed). The canary is clean iff no SDC event struck the
    // channel since the previous round.
    auto &stats = system_->serveStats();
    for (unsigned ch = 0; ch < sdcMonitor_->numChannels(); ++ch) {
        if (!sdcMonitor_->channelOnProbation(ch))
            continue;
        const double window_start =
            std::max(lastCanaryNs_[ch],
                     nowNs_ - config_.sdc.canaryPeriodNs);
        const bool clean =
            sdcModel_ == nullptr ||
            sdcModel_->sdcEvents(ch, window_start, nowNs_).empty();
        lastCanaryNs_[ch] = nowNs_;
        stats.add(clean ? "sdc.canaryOk" : "sdc.canaryFailed");
        for (unsigned u = 0; u < sdcMonitor_->unitsPerChannel(); ++u) {
            if (sdcMonitor_->state(ch, u) == UnitHealth::Probation)
                sdcMonitor_->recordCanary(ch, u, clean, nowNs_);
        }
    }
    reconcileQuarantine();
    canaryDueNs_ = any_probation() ? nowNs_ + config_.sdc.canaryPeriodNs
                                   : kNoEventNs;
}

std::vector<ServeRequest>
ServingEngine::takeCompletions()
{
    std::vector<ServeRequest> out;
    out.swap(completions_);
    return out;
}

std::vector<SloObservation>
ServingEngine::takeSloObservations()
{
    std::vector<SloObservation> out;
    out.swap(sloObs_);
    return out;
}

TenantReport
ServingEngine::summarise(const TenantState &t, double horizon_ns) const
{
    TenantReport r;
    r.name = t.spec.name;
    r.submitted = t.submitted;
    r.completed = t.completed;
    r.batches = t.batches;
    r.shed = t.shed;
    r.timedOut = t.timedOut;
    r.retries = t.retries;
    r.fallbackCompleted = t.fallbackCompleted;
    r.sloViolations = t.sloViolations;
    r.silentlyWrong = t.silentlyWrong;
    r.servedNs = t.servedNs;
    r.throughputRps =
        horizon_ns > 0.0
            ? static_cast<double>(t.completed) / (horizon_ns * 1e-9)
            : 0.0;
    r.queue = summariseHistogram(t.queueH);
    r.service = summariseHistogram(t.serviceH);
    r.e2e = summariseHistogram(t.e2eH);
    return r;
}

ServeReport
ServingEngine::report() const
{
    ServeReport report;
    report.horizonNs = nowNs_;
    report.total.name = "total";
    for (unsigned t = 0; t < tenants_.size(); ++t) {
        TenantReport r = summarise(tenants_[t], nowNs_);
        r.admitted = queue_.admitted(t);
        r.rejected = queue_.rejected(t);
        report.total.submitted += r.submitted;
        report.total.admitted += r.admitted;
        report.total.rejected += r.rejected;
        report.total.completed += r.completed;
        report.total.batches += r.batches;
        report.total.shed += r.shed;
        report.total.timedOut += r.timedOut;
        report.total.retries += r.retries;
        report.total.fallbackCompleted += r.fallbackCompleted;
        report.total.sloViolations += r.sloViolations;
        report.total.silentlyWrong += r.silentlyWrong;
        report.total.servedNs += r.servedNs;
        report.tenants.push_back(std::move(r));
    }
    report.total.throughputRps =
        nowNs_ > 0.0
            ? static_cast<double>(report.total.completed) / (nowNs_ * 1e-9)
            : 0.0;

    for (unsigned s = 0; s < shards_.size(); ++s) {
        ShardResilienceReport r;
        r.shard = s;
        r.state = shards_[s].breaker.state();
        r.opens = shards_[s].breaker.opens();
        r.closes = shards_[s].breaker.closes();
        r.probes = shards_[s].breaker.probes();
        r.batchFaults = shards_[s].batchFaults;
        report.shards.push_back(r);
    }

    if (sdcMonitor_) {
        report.sdc.detected = sdcMonitor_->detected();
        report.sdc.confirmed = sdcMonitor_->confirmed();
        report.sdc.falseAlarms = sdcMonitor_->falseAlarms();
        report.sdc.quarantines = sdcMonitor_->quarantines();
        report.sdc.readmits = sdcMonitor_->readmits();
        report.sdc.withdrawnChannels = sdcMonitor_->withdrawnChannels();
    }

    // Aggregate latency summaries: weighted mean, worst-tenant tails
    // (per-tenant histograms are not mergeable sample-exactly; the
    // conservative max keeps the headline honest).
    auto aggregate = [&](auto pick_member) {
        LatencySummary s;
        std::uint64_t n = 0;
        for (unsigned t = 0; t < tenants_.size(); ++t) {
            const LatencySummary &src = pick_member(report.tenants[t]);
            const std::uint64_t c = report.tenants[t].completed;
            s.meanNs += src.meanNs * static_cast<double>(c);
            n += c;
            s.p50Ns = std::max(s.p50Ns, src.p50Ns);
            s.p95Ns = std::max(s.p95Ns, src.p95Ns);
            s.p99Ns = std::max(s.p99Ns, src.p99Ns);
            s.maxNs = std::max(s.maxNs, src.maxNs);
        }
        if (n)
            s.meanNs /= static_cast<double>(n);
        return s;
    };
    report.total.queue =
        aggregate([](const TenantReport &r) -> const LatencySummary & {
            return r.queue;
        });
    report.total.service =
        aggregate([](const TenantReport &r) -> const LatencySummary & {
            return r.service;
        });
    report.total.e2e =
        aggregate([](const TenantReport &r) -> const LatencySummary & {
            return r.e2e;
        });
    return report;
}

} // namespace pimsim::serve
