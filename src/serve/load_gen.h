/**
 * @file
 * Deterministic load generators for the serving engine.
 *
 * Two standard serving-bench shapes:
 *
 *  - Open loop: each tenant submits a Poisson stream (exponential
 *    inter-arrivals from the repo's seeded Rng) regardless of how the
 *    system keeps up. Saturation shows up as queueing delay and
 *    admission rejections — the honest tail-latency methodology.
 *  - Closed loop: a fixed concurrency per tenant; each completion
 *    immediately (plus think time) triggers the next submission.
 *    Measures sustainable throughput without unbounded queues.
 *
 * Production-shaped traffic additions:
 *
 *  - LengthSampler: clamped lognormal token-length draws (the standard
 *    fit for prompt/output lengths in published serving traces).
 *  - burstyPoissonArrivals: a piecewise-constant-rate Poisson process
 *    realised by thinning against the peak-rate envelope (the same
 *    technique ChaosCampaign uses for fault storms), so a burst window
 *    multiplies the arrival rate without re-seeding the stream.
 *
 * The same seed replays the same arrival sequence exactly.
 */

#ifndef PIMSIM_SERVE_LOAD_GEN_H
#define PIMSIM_SERVE_LOAD_GEN_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "serve/serving_engine.h"

namespace pimsim::serve {

/** One tenant's open-loop traffic description. */
struct ArrivalSpec
{
    unsigned tenant = 0;
    double ratePerSec = 0.0; ///< mean Poisson arrival rate
};

/** A scheduled submission. */
struct Arrival
{
    double ns = 0.0;
    unsigned tenant = 0;
};

/**
 * Pre-draw Poisson arrival times for every tenant over `horizon_ns`,
 * merged into one time-sorted sequence. Deterministic in `seed`; ties
 * break by tenant id then draw order.
 */
std::vector<Arrival> poissonArrivals(const std::vector<ArrivalSpec> &specs,
                                     double horizon_ns,
                                     std::uint64_t seed);

/** A rate-multiplier window for bursty open-loop traffic. */
struct BurstSpec
{
    /** Burst window [startNs, endNs) on the serving clock. */
    double startNs = 0.0;
    double endNs = 0.0;
    /** Arrival-rate multiplier inside the window (>= 0; 1 = no burst). */
    double factor = 1.0;

    bool active() const { return factor != 1.0 && endNs > startNs; }
};

/**
 * Poisson arrivals whose rate is each tenant's base rate outside the
 * burst window and `factor` times it inside, realised by thinning
 * against the peak-rate envelope. Deterministic in `seed`; with an
 * inactive burst the draw sequence differs from poissonArrivals (the
 * envelope draw consumes more randomness) but the statistics match.
 */
std::vector<Arrival>
burstyPoissonArrivals(const std::vector<ArrivalSpec> &specs,
                      double horizon_ns, std::uint64_t seed,
                      const BurstSpec &burst);

/** Clamped-lognormal token-length distribution. */
struct LengthConfig
{
    /** Median of the unclamped lognormal (= exp(mu)), in tokens. */
    double medianTokens = 128.0;
    /** Lognormal shape parameter (sigma of the underlying normal). */
    double sigmaLog = 0.7;
    /** Clamp range (inclusive); production traces are always bounded
     *  by tokenizer context limits. */
    unsigned minTokens = 1;
    unsigned maxTokens = 4096;
};

/** Deterministic sampler over one LengthConfig. */
class LengthSampler
{
  public:
    explicit LengthSampler(const LengthConfig &config);

    /** One clamped-lognormal draw (consumes two uniforms from `rng`). */
    unsigned sample(Rng &rng) const;

    /** Analytic mean of the unclamped lognormal: exp(mu + sigma^2/2). */
    double analyticMean() const;

    /** Analytic p-th quantile of the unclamped lognormal. */
    double analyticQuantile(double p) const;

    const LengthConfig &config() const { return config_; }

  private:
    LengthConfig config_;
};

/**
 * Feed a pre-drawn arrival sequence through `engine`, then drain it.
 * @return the engine's final report.
 */
ServeReport runOpenLoop(ServingEngine &engine,
                        const std::vector<Arrival> &arrivals);

/**
 * Closed-loop run: keep `concurrency` requests of each tenant in flight
 * until each tenant has completed `requests_per_tenant`, resubmitting on
 * completion after `think_ns` of client think time.
 * @return the engine's final report.
 */
ServeReport runClosedLoop(ServingEngine &engine, unsigned concurrency,
                          std::uint64_t requests_per_tenant,
                          double think_ns = 0.0);

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_LOAD_GEN_H
