/**
 * @file
 * Deterministic load generators for the serving engine.
 *
 * Two standard serving-bench shapes:
 *
 *  - Open loop: each tenant submits a Poisson stream (exponential
 *    inter-arrivals from the repo's seeded Rng) regardless of how the
 *    system keeps up. Saturation shows up as queueing delay and
 *    admission rejections — the honest tail-latency methodology.
 *  - Closed loop: a fixed concurrency per tenant; each completion
 *    immediately (plus think time) triggers the next submission.
 *    Measures sustainable throughput without unbounded queues.
 *
 * The same seed replays the same arrival sequence exactly.
 */

#ifndef PIMSIM_SERVE_LOAD_GEN_H
#define PIMSIM_SERVE_LOAD_GEN_H

#include <cstdint>
#include <vector>

#include "serve/serving_engine.h"

namespace pimsim::serve {

/** One tenant's open-loop traffic description. */
struct ArrivalSpec
{
    unsigned tenant = 0;
    double ratePerSec = 0.0; ///< mean Poisson arrival rate
};

/** A scheduled submission. */
struct Arrival
{
    double ns = 0.0;
    unsigned tenant = 0;
};

/**
 * Pre-draw Poisson arrival times for every tenant over `horizon_ns`,
 * merged into one time-sorted sequence. Deterministic in `seed`; ties
 * break by tenant id then draw order.
 */
std::vector<Arrival> poissonArrivals(const std::vector<ArrivalSpec> &specs,
                                     double horizon_ns,
                                     std::uint64_t seed);

/**
 * Feed a pre-drawn arrival sequence through `engine`, then drain it.
 * @return the engine's final report.
 */
ServeReport runOpenLoop(ServingEngine &engine,
                        const std::vector<Arrival> &arrivals);

/**
 * Closed-loop run: keep `concurrency` requests of each tenant in flight
 * until each tenant has completed `requests_per_tenant`, resubmitting on
 * completion after `think_ns` of client think time.
 * @return the engine's final report.
 */
ServeReport runClosedLoop(ServingEngine &engine, unsigned concurrency,
                          std::uint64_t requests_per_tenant,
                          double think_ns = 0.0);

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_LOAD_GEN_H
