#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "common/logging.h"
#include "common/rng.h"

namespace pimsim::serve {

namespace {

/** Per-tenant stream seed: decorrelate tenants under one campaign seed. */
std::uint64_t
streamSeed(std::uint64_t seed, unsigned tenant)
{
    return seed + 0x9e3779b97f4a7c15ULL * (std::uint64_t{tenant} + 1);
}

} // namespace

std::vector<Arrival>
poissonArrivals(const std::vector<ArrivalSpec> &specs, double horizon_ns,
                std::uint64_t seed)
{
    PIMSIM_ASSERT(horizon_ns > 0.0, "empty arrival horizon");
    std::vector<Arrival> arrivals;
    for (const auto &spec : specs) {
        if (spec.ratePerSec <= 0.0)
            continue;
        Rng rng(streamSeed(seed, spec.tenant));
        const double mean_gap_ns = 1e9 / spec.ratePerSec;
        double t = 0.0;
        while (true) {
            // Exponential inter-arrival via inverse transform; nextDouble
            // is in [0, 1) so the log argument stays positive.
            const double u = rng.nextDouble();
            t += -std::log(1.0 - u) * mean_gap_ns;
            if (t > horizon_ns)
                break;
            arrivals.push_back(Arrival{t, spec.tenant});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  return std::tie(a.ns, a.tenant) < std::tie(b.ns, b.tenant);
              });
    return arrivals;
}

std::vector<Arrival>
burstyPoissonArrivals(const std::vector<ArrivalSpec> &specs,
                      double horizon_ns, std::uint64_t seed,
                      const BurstSpec &burst)
{
    PIMSIM_ASSERT(horizon_ns > 0.0, "empty arrival horizon");
    PIMSIM_ASSERT(burst.factor >= 0.0, "negative burst factor");
    const double peak = std::max(1.0, burst.factor);
    std::vector<Arrival> arrivals;
    for (const auto &spec : specs) {
        if (spec.ratePerSec <= 0.0)
            continue;
        Rng rng(streamSeed(seed, spec.tenant));
        // Draw a homogeneous Poisson process at the envelope (peak)
        // rate, then thin each candidate by accept probability
        // rate(t) / peak_rate — the same construction ChaosCampaign
        // uses for fault storms.
        const double envelope_gap_ns = 1e9 / (spec.ratePerSec * peak);
        double t = 0.0;
        while (true) {
            const double u = rng.nextDouble();
            t += -std::log(1.0 - u) * envelope_gap_ns;
            if (t > horizon_ns)
                break;
            const bool in_burst =
                burst.active() && t >= burst.startNs && t < burst.endNs;
            const double rate_factor = in_burst ? burst.factor : 1.0;
            if (rng.nextDouble() < rate_factor / peak)
                arrivals.push_back(Arrival{t, spec.tenant});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  return std::tie(a.ns, a.tenant) < std::tie(b.ns, b.tenant);
              });
    return arrivals;
}

LengthSampler::LengthSampler(const LengthConfig &config) : config_(config)
{
    PIMSIM_ASSERT(config_.medianTokens > 0.0, "non-positive length median");
    PIMSIM_ASSERT(config_.sigmaLog >= 0.0, "negative lognormal sigma");
    PIMSIM_ASSERT(config_.minTokens >= 1 &&
                      config_.minTokens <= config_.maxTokens,
                  "bad length clamp range [", config_.minTokens, ", ",
                  config_.maxTokens, "]");
}

unsigned
LengthSampler::sample(Rng &rng) const
{
    // Box-Muller over two uniforms; 1 - u keeps the log argument
    // positive since nextDouble() is in [0, 1).
    const double u1 = rng.nextDouble();
    const double u2 = rng.nextDouble();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                     std::cos(kTwoPi * u2);
    const double mu = std::log(config_.medianTokens);
    const double draw = std::exp(mu + config_.sigmaLog * z);
    const double clamped =
        std::min(static_cast<double>(config_.maxTokens),
                 std::max(static_cast<double>(config_.minTokens), draw));
    return static_cast<unsigned>(std::lround(clamped));
}

double
LengthSampler::analyticMean() const
{
    const double mu = std::log(config_.medianTokens);
    return std::exp(mu + 0.5 * config_.sigmaLog * config_.sigmaLog);
}

double
LengthSampler::analyticQuantile(double p) const
{
    PIMSIM_ASSERT(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
    // Acklam-style rational approximation of the standard normal
    // quantile, accurate to ~1e-9 — plenty for test tolerances.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    double z;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double mu = std::log(config_.medianTokens);
    return std::exp(mu + config_.sigmaLog * z);
}

ServeReport
runOpenLoop(ServingEngine &engine, const std::vector<Arrival> &arrivals)
{
    for (const auto &a : arrivals)
        engine.submit(a.tenant, std::max(a.ns, engine.nowNs()));
    engine.drain();
    engine.takeCompletions();
    return engine.report();
}

ServeReport
runClosedLoop(ServingEngine &engine, unsigned concurrency,
              std::uint64_t requests_per_tenant, double think_ns)
{
    PIMSIM_ASSERT(concurrency >= 1, "closed loop needs concurrency >= 1");
    const unsigned tenants = engine.numTenants();

    // (ns, tenant, seq) min-heap of scheduled submissions; seq keeps
    // replay deterministic under exact-tie timestamps.
    using Entry = std::tuple<double, unsigned, std::uint64_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    std::uint64_t seq = 0;

    std::vector<std::uint64_t> remaining(tenants, requests_per_tenant);
    for (unsigned t = 0; t < tenants; ++t) {
        for (unsigned c = 0; c < concurrency && remaining[t] > 0; ++c) {
            heap.emplace(0.0, t, seq++);
            --remaining[t];
        }
    }

    while (true) {
        if (!heap.empty()) {
            const auto [ns, tenant, s] = heap.top();
            heap.pop();
            const bool admitted =
                engine.submit(tenant, std::max(ns, engine.nowNs()));
            PIMSIM_ASSERT(admitted,
                          "closed-loop rejection: size the queue depth to "
                          "at least concurrency x tenants (",
                          concurrency, " x ", tenants, ")");
        } else {
            const double event = engine.nextEventNs();
            if (event == kNoEventNs)
                break;
            engine.advanceTo(event);
        }
        for (const auto &done : engine.takeCompletions()) {
            if (remaining[done.tenant] > 0) {
                heap.emplace(done.completeNs + think_ns, done.tenant, seq++);
                --remaining[done.tenant];
            }
        }
    }
    engine.drain();
    engine.takeCompletions();
    return engine.report();
}

} // namespace pimsim::serve
