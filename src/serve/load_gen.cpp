#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "common/logging.h"
#include "common/rng.h"

namespace pimsim::serve {

namespace {

/** Per-tenant stream seed: decorrelate tenants under one campaign seed. */
std::uint64_t
streamSeed(std::uint64_t seed, unsigned tenant)
{
    return seed + 0x9e3779b97f4a7c15ULL * (std::uint64_t{tenant} + 1);
}

} // namespace

std::vector<Arrival>
poissonArrivals(const std::vector<ArrivalSpec> &specs, double horizon_ns,
                std::uint64_t seed)
{
    PIMSIM_ASSERT(horizon_ns > 0.0, "empty arrival horizon");
    std::vector<Arrival> arrivals;
    for (const auto &spec : specs) {
        if (spec.ratePerSec <= 0.0)
            continue;
        Rng rng(streamSeed(seed, spec.tenant));
        const double mean_gap_ns = 1e9 / spec.ratePerSec;
        double t = 0.0;
        while (true) {
            // Exponential inter-arrival via inverse transform; nextDouble
            // is in [0, 1) so the log argument stays positive.
            const double u = rng.nextDouble();
            t += -std::log(1.0 - u) * mean_gap_ns;
            if (t > horizon_ns)
                break;
            arrivals.push_back(Arrival{t, spec.tenant});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  return std::tie(a.ns, a.tenant) < std::tie(b.ns, b.tenant);
              });
    return arrivals;
}

ServeReport
runOpenLoop(ServingEngine &engine, const std::vector<Arrival> &arrivals)
{
    for (const auto &a : arrivals)
        engine.submit(a.tenant, std::max(a.ns, engine.nowNs()));
    engine.drain();
    engine.takeCompletions();
    return engine.report();
}

ServeReport
runClosedLoop(ServingEngine &engine, unsigned concurrency,
              std::uint64_t requests_per_tenant, double think_ns)
{
    PIMSIM_ASSERT(concurrency >= 1, "closed loop needs concurrency >= 1");
    const unsigned tenants = engine.numTenants();

    // (ns, tenant, seq) min-heap of scheduled submissions; seq keeps
    // replay deterministic under exact-tie timestamps.
    using Entry = std::tuple<double, unsigned, std::uint64_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    std::uint64_t seq = 0;

    std::vector<std::uint64_t> remaining(tenants, requests_per_tenant);
    for (unsigned t = 0; t < tenants; ++t) {
        for (unsigned c = 0; c < concurrency && remaining[t] > 0; ++c) {
            heap.emplace(0.0, t, seq++);
            --remaining[t];
        }
    }

    while (true) {
        if (!heap.empty()) {
            const auto [ns, tenant, s] = heap.top();
            heap.pop();
            const bool admitted =
                engine.submit(tenant, std::max(ns, engine.nowNs()));
            PIMSIM_ASSERT(admitted,
                          "closed-loop rejection: size the queue depth to "
                          "at least concurrency x tenants (",
                          concurrency, " x ", tenants, ")");
        } else {
            const double event = engine.nextEventNs();
            if (event == kNoEventNs)
                break;
            engine.advanceTo(event);
        }
        for (const auto &done : engine.takeCompletions()) {
            if (remaining[done.tenant] > 0) {
                heap.emplace(done.completeNs + think_ns, done.tenant, seq++);
                --remaining[done.tenant];
            }
        }
    }
    engine.drain();
    engine.takeCompletions();
    return engine.report();
}

} // namespace pimsim::serve
