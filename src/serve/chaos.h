/**
 * @file
 * Chaos campaigns: deterministic uncorrectable-fault processes on the
 * serving clock.
 *
 * ChaosCampaign drives the serving engine's FaultModel hook with a
 * per-shard Poisson process of uncorrectable fault events whose rate is
 * piecewise constant in virtual time: a steady-state rate plus an
 * optional burst window at a higher rate (the "fault storm" a chaos
 * test sweeps across). Because batch service windows are queried against
 * the same pre-drawn event stream, faults land mid-batch exactly where
 * the process puts them — a batch fails iff an event falls inside its
 * occupancy of the shard.
 *
 * The campaign can additionally be coupled to a device-level
 * FaultInjector: every generated event then also plants a real
 * SEC-DED-defeating DRAM burst fault in the live PimSystem, so the
 * machine-check log and fault counters of the served device reflect the
 * same campaign the queueing model saw.
 *
 * The campaign also carries host-level fault processes for the cluster
 * tier (HostFaultModel): scheduled whole-host crash windows, straggler
 * windows that multiply service times, and flaky-link windows that drop
 * a deterministic fraction of transfers. Crash and straggler windows
 * are scenario-scheduled (a chaos bench kills host 2 at a known time);
 * flaky-link loss is a per-transfer hash draw, so the verdict for one
 * transfer never depends on how many others were queried before it.
 *
 * Determinism: one seed per campaign, one decorrelated stream per
 * shard; identical configuration replays the identical event sequence.
 */

#ifndef PIMSIM_SERVE_CHAOS_H
#define PIMSIM_SERVE_CHAOS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "serve/resilience.h"

namespace pimsim {
class FaultInjector;
}

namespace pimsim::serve {

/** Fault-process configuration (rates are per shard). */
struct ChaosConfig
{
    /** Steady-state uncorrectable fault events per second. */
    double faultsPerSec = 0.0;
    /** Burst window [burstStartNs, burstEndNs) on the serving clock. */
    double burstStartNs = 0.0;
    double burstEndNs = 0.0;
    /** Event rate inside the burst window (replaces the base rate). */
    double burstFaultsPerSec = 0.0;
    std::uint64_t seed = 0x5eed;

    // Silent-corruption process (SdcModel; rates are per channel).
    /** Steady-state silent-corruption events per second per channel. */
    double sdcPerSec = 0.0;
    /** Optional sick channel whose SDC rate is multiplied (-1: none). */
    int sdcHotChannel = -1;
    /** Rate multiplier of the sick channel (>= 0). */
    double sdcHotFactor = 1.0;
};

/** One scheduled host-level fault episode. */
struct HostFaultSpec
{
    enum class Kind
    {
        Crash,     ///< the host is dead for the whole window
        Straggler, ///< service times are multiplied by `factor`
        FlakyLink, ///< each transfer drops with probability `lossProb`
    };

    Kind kind = Kind::Crash;
    unsigned host = 0;
    /** Active window [startNs, endNs) on the serving clock. */
    double startNs = 0.0;
    double endNs = 0.0;
    /** Straggler service-time multiplier (>= 1). */
    double factor = 1.0;
    /** FlakyLink per-transfer drop probability in [0, 1]. */
    double lossProb = 0.0;
};

const char *hostFaultKindName(HostFaultSpec::Kind kind);

/** A deterministic per-shard fault-event process. */
class ChaosCampaign : public FaultModel,
                      public HostFaultModel,
                      public SdcModel
{
  public:
    ChaosCampaign(const ChaosConfig &config, unsigned num_shards);

    unsigned faultEvents(unsigned shard, double start_ns,
                         double end_ns) override;

    /**
     * Arm the silent-corruption process: one decorrelated Poisson stream
     * per channel at sdcPerSec (the hot channel at sdcPerSec *
     * sdcHotFactor), each event pinned to a uniformly drawn PIM unit.
     * Must be called before sdcEvents(); idempotent re-arming resets the
     * streams.
     */
    void configureSdc(unsigned num_channels, unsigned units_per_channel);

    // SdcModel
    std::vector<SdcEvent> sdcEvents(unsigned channel, double start_ns,
                                    double end_ns) override;

    /** Schedule one host-level fault episode (validated). */
    void addHostFault(const HostFaultSpec &spec);

    const std::vector<HostFaultSpec> &hostFaults() const
    {
        return hostFaults_;
    }

    // HostFaultModel
    bool hostCrashed(unsigned host, double start_ns,
                     double end_ns) override;
    double hostSlowdown(unsigned host, double ns) override;
    bool linkDropped(unsigned host, std::uint64_t transfer_id,
                     double ns) override;

    /**
     * Mirror every generated fault event into a live device: each event
     * plants one uncorrectable DRAM burst fault through `injector`
     * (nullptr detaches). Events generated before coupling are not
     * replayed.
     */
    void coupleInjector(FaultInjector *injector) { injector_ = injector; }

    /** The instantaneous event rate (faults/sec) at time `ns`. */
    double rateAt(double ns) const;

    /** Total events generated so far, across all shards. */
    std::uint64_t eventsGenerated() const { return generated_; }

    /** The event times drawn so far for one shard (ascending). */
    const std::vector<double> &events(unsigned shard) const
    {
        return streams_[shard].events;
    }

  private:
    /** Extend `shard`'s event stream to cover [0, until_ns). */
    void extend(unsigned shard, double until_ns);
    /** Extend `channel`'s SDC stream to cover [0, until_ns). */
    void extendSdc(unsigned channel, double until_ns);

    struct Stream
    {
        explicit Stream(std::uint64_t seed) : rng(seed) {}
        Rng rng;
        double candidateNs = 0.0; ///< last thinning candidate drawn
        std::vector<double> events;
    };

    struct SdcStream
    {
        explicit SdcStream(std::uint64_t seed) : rng(seed) {}
        Rng rng;
        double lastNs = 0.0; ///< last exponential arrival drawn
        std::vector<SdcEvent> events;
    };

    ChaosConfig config_;
    double maxRate_; ///< thinning envelope (faults/sec)
    FaultInjector *injector_ = nullptr;
    std::vector<Stream> streams_;
    std::vector<SdcStream> sdcStreams_;
    unsigned sdcUnitsPerChannel_ = 0;
    std::vector<HostFaultSpec> hostFaults_;
    std::uint64_t generated_ = 0;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_CHAOS_H
