/**
 * @file
 * Chaos campaigns: deterministic uncorrectable-fault processes on the
 * serving clock.
 *
 * ChaosCampaign drives the serving engine's FaultModel hook with a
 * per-shard Poisson process of uncorrectable fault events whose rate is
 * piecewise constant in virtual time: a steady-state rate plus an
 * optional burst window at a higher rate (the "fault storm" a chaos
 * test sweeps across). Because batch service windows are queried against
 * the same pre-drawn event stream, faults land mid-batch exactly where
 * the process puts them — a batch fails iff an event falls inside its
 * occupancy of the shard.
 *
 * The campaign can additionally be coupled to a device-level
 * FaultInjector: every generated event then also plants a real
 * SEC-DED-defeating DRAM burst fault in the live PimSystem, so the
 * machine-check log and fault counters of the served device reflect the
 * same campaign the queueing model saw.
 *
 * Determinism: one seed per campaign, one decorrelated stream per
 * shard; identical configuration replays the identical event sequence.
 */

#ifndef PIMSIM_SERVE_CHAOS_H
#define PIMSIM_SERVE_CHAOS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "serve/resilience.h"

namespace pimsim {
class FaultInjector;
}

namespace pimsim::serve {

/** Fault-process configuration (rates are per shard). */
struct ChaosConfig
{
    /** Steady-state uncorrectable fault events per second. */
    double faultsPerSec = 0.0;
    /** Burst window [burstStartNs, burstEndNs) on the serving clock. */
    double burstStartNs = 0.0;
    double burstEndNs = 0.0;
    /** Event rate inside the burst window (replaces the base rate). */
    double burstFaultsPerSec = 0.0;
    std::uint64_t seed = 0x5eed;
};

/** A deterministic per-shard fault-event process. */
class ChaosCampaign : public FaultModel
{
  public:
    ChaosCampaign(const ChaosConfig &config, unsigned num_shards);

    unsigned faultEvents(unsigned shard, double start_ns,
                         double end_ns) override;

    /**
     * Mirror every generated fault event into a live device: each event
     * plants one uncorrectable DRAM burst fault through `injector`
     * (nullptr detaches). Events generated before coupling are not
     * replayed.
     */
    void coupleInjector(FaultInjector *injector) { injector_ = injector; }

    /** The instantaneous event rate (faults/sec) at time `ns`. */
    double rateAt(double ns) const;

    /** Total events generated so far, across all shards. */
    std::uint64_t eventsGenerated() const { return generated_; }

    /** The event times drawn so far for one shard (ascending). */
    const std::vector<double> &events(unsigned shard) const
    {
        return streams_[shard].events;
    }

  private:
    /** Extend `shard`'s event stream to cover [0, until_ns). */
    void extend(unsigned shard, double until_ns);

    struct Stream
    {
        explicit Stream(std::uint64_t seed) : rng(seed) {}
        Rng rng;
        double candidateNs = 0.0; ///< last thinning candidate drawn
        std::vector<double> events;
    };

    ChaosConfig config_;
    double maxRate_; ///< thinning envelope (faults/sec)
    FaultInjector *injector_ = nullptr;
    std::vector<Stream> streams_;
    std::uint64_t generated_ = 0;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_CHAOS_H
