#include "serve/chaos.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "reliability/fault_injector.h"

namespace pimsim::serve {

namespace {

/** Decorrelate per-shard streams under one campaign seed. */
std::uint64_t
shardSeed(std::uint64_t seed, unsigned shard)
{
    return seed ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{shard} + 1));
}

} // namespace

ChaosCampaign::ChaosCampaign(const ChaosConfig &config, unsigned num_shards)
    : config_(config),
      maxRate_(std::max(config.faultsPerSec, config.burstFaultsPerSec))
{
    PIMSIM_ASSERT(config.faultsPerSec >= 0.0 &&
                      config.burstFaultsPerSec >= 0.0,
                  "fault rates must be non-negative");
    PIMSIM_ASSERT(config.burstEndNs >= config.burstStartNs,
                  "burst window ends before it starts");
    streams_.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s)
        streams_.emplace_back(shardSeed(config.seed, s));
}

double
ChaosCampaign::rateAt(double ns) const
{
    if (ns >= config_.burstStartNs && ns < config_.burstEndNs)
        return config_.burstFaultsPerSec;
    return config_.faultsPerSec;
}

void
ChaosCampaign::extend(unsigned shard, double until_ns)
{
    if (maxRate_ <= 0.0)
        return;
    Stream &stream = streams_[shard];
    const double mean_gap_ns = 1e9 / maxRate_;
    while (stream.candidateNs < until_ns) {
        // Thinning: draw a homogeneous process at the envelope rate and
        // accept each candidate with probability rate(t) / maxRate —
        // yields the piecewise-constant inhomogeneous process exactly.
        const double u = stream.rng.nextDouble();
        stream.candidateNs += -std::log(1.0 - u) * mean_gap_ns;
        const double accept = rateAt(stream.candidateNs) / maxRate_;
        if (stream.rng.nextDouble() < accept) {
            stream.events.push_back(stream.candidateNs);
            ++generated_;
            if (injector_)
                injector_->injectUncorrectableBurst();
        }
    }
}

unsigned
ChaosCampaign::faultEvents(unsigned shard, double start_ns, double end_ns)
{
    PIMSIM_ASSERT(shard < streams_.size(), "bad shard id ", shard);
    if (end_ns <= start_ns)
        return 0;
    extend(shard, end_ns);
    const auto &ev = streams_[shard].events;
    const auto lo = std::lower_bound(ev.begin(), ev.end(), start_ns);
    const auto hi = std::lower_bound(lo, ev.end(), end_ns);
    return static_cast<unsigned>(hi - lo);
}

} // namespace pimsim::serve
