#include "serve/chaos.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "reliability/fault_injector.h"

namespace pimsim::serve {

namespace {

/** Decorrelate per-shard streams under one campaign seed. */
std::uint64_t
shardSeed(std::uint64_t seed, unsigned shard)
{
    return seed ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{shard} + 1));
}

} // namespace

ChaosCampaign::ChaosCampaign(const ChaosConfig &config, unsigned num_shards)
    : config_(config),
      maxRate_(std::max(config.faultsPerSec, config.burstFaultsPerSec))
{
    PIMSIM_ASSERT(config.faultsPerSec >= 0.0 &&
                      config.burstFaultsPerSec >= 0.0,
                  "fault rates must be non-negative");
    PIMSIM_ASSERT(config.burstEndNs >= config.burstStartNs,
                  "burst window ends before it starts");
    streams_.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s)
        streams_.emplace_back(shardSeed(config.seed, s));
}

double
ChaosCampaign::rateAt(double ns) const
{
    if (ns >= config_.burstStartNs && ns < config_.burstEndNs)
        return config_.burstFaultsPerSec;
    return config_.faultsPerSec;
}

void
ChaosCampaign::extend(unsigned shard, double until_ns)
{
    if (maxRate_ <= 0.0)
        return;
    Stream &stream = streams_[shard];
    const double mean_gap_ns = 1e9 / maxRate_;
    while (stream.candidateNs < until_ns) {
        // Thinning: draw a homogeneous process at the envelope rate and
        // accept each candidate with probability rate(t) / maxRate —
        // yields the piecewise-constant inhomogeneous process exactly.
        const double u = stream.rng.nextDouble();
        stream.candidateNs += -std::log(1.0 - u) * mean_gap_ns;
        const double accept = rateAt(stream.candidateNs) / maxRate_;
        if (stream.rng.nextDouble() < accept) {
            stream.events.push_back(stream.candidateNs);
            ++generated_;
            if (injector_)
                injector_->injectUncorrectableBurst();
        }
    }
}

unsigned
ChaosCampaign::faultEvents(unsigned shard, double start_ns, double end_ns)
{
    PIMSIM_ASSERT(shard < streams_.size(), "bad shard id ", shard);
    if (end_ns <= start_ns)
        return 0;
    extend(shard, end_ns);
    const auto &ev = streams_[shard].events;
    const auto lo = std::lower_bound(ev.begin(), ev.end(), start_ns);
    const auto hi = std::lower_bound(lo, ev.end(), end_ns);
    return static_cast<unsigned>(hi - lo);
}

void
ChaosCampaign::configureSdc(unsigned num_channels,
                            unsigned units_per_channel)
{
    PIMSIM_ASSERT(num_channels > 0 && units_per_channel > 0,
                  "SDC process needs a device shape");
    PIMSIM_ASSERT(config_.sdcPerSec >= 0.0 && config_.sdcHotFactor >= 0.0,
                  "SDC rates must be non-negative");
    sdcUnitsPerChannel_ = units_per_channel;
    sdcStreams_.clear();
    sdcStreams_.reserve(num_channels);
    // A different decorrelation constant keeps the SDC streams
    // independent of the shard fault streams under the same seed.
    for (unsigned ch = 0; ch < num_channels; ++ch) {
        sdcStreams_.emplace_back(
            config_.seed ^
            (0xd1b54a32d192ed03ULL * (std::uint64_t{ch} + 1)));
    }
}

void
ChaosCampaign::extendSdc(unsigned channel, double until_ns)
{
    double rate = config_.sdcPerSec;
    if (config_.sdcHotChannel >= 0 &&
        channel == static_cast<unsigned>(config_.sdcHotChannel))
        rate *= config_.sdcHotFactor;
    if (rate <= 0.0)
        return;
    SdcStream &stream = sdcStreams_[channel];
    const double mean_gap_ns = 1e9 / rate;
    while (stream.lastNs < until_ns) {
        const double u = stream.rng.nextDouble();
        stream.lastNs += -std::log(1.0 - u) * mean_gap_ns;
        SdcEvent event;
        event.ns = stream.lastNs;
        event.channel = channel;
        event.unit = static_cast<unsigned>(
            stream.rng.nextBelow(sdcUnitsPerChannel_));
        stream.events.push_back(event);
    }
}

std::vector<SdcEvent>
ChaosCampaign::sdcEvents(unsigned channel, double start_ns, double end_ns)
{
    PIMSIM_ASSERT(channel < sdcStreams_.size(),
                  "SDC query for channel ", channel,
                  " outside the configured device (",
                  sdcStreams_.size(), " channels; call configureSdc)");
    if (end_ns <= start_ns)
        return {};
    extendSdc(channel, end_ns);
    const auto &ev = sdcStreams_[channel].events;
    const auto lo = std::lower_bound(
        ev.begin(), ev.end(), start_ns,
        [](const SdcEvent &e, double t) { return e.ns < t; });
    const auto hi = std::lower_bound(
        lo, ev.end(), end_ns,
        [](const SdcEvent &e, double t) { return e.ns < t; });
    return {lo, hi};
}

const char *
hostFaultKindName(HostFaultSpec::Kind kind)
{
    switch (kind) {
      case HostFaultSpec::Kind::Crash:
        return "crash";
      case HostFaultSpec::Kind::Straggler:
        return "straggler";
      case HostFaultSpec::Kind::FlakyLink:
        return "flaky-link";
    }
    return "?";
}

void
ChaosCampaign::addHostFault(const HostFaultSpec &spec)
{
    PIMSIM_ASSERT(spec.endNs >= spec.startNs,
                  "host-fault window ends before it starts");
    PIMSIM_ASSERT(spec.factor >= 1.0,
                  "straggler factor must be >= 1, got ", spec.factor);
    PIMSIM_ASSERT(spec.lossProb >= 0.0 && spec.lossProb <= 1.0,
                  "link loss probability must be in [0, 1], got ",
                  spec.lossProb);
    hostFaults_.push_back(spec);
}

bool
ChaosCampaign::hostCrashed(unsigned host, double start_ns, double end_ns)
{
    for (const auto &f : hostFaults_) {
        if (f.kind != HostFaultSpec::Kind::Crash || f.host != host)
            continue;
        // The crash window [s, e) intersects the closed query interval.
        if (f.startNs <= end_ns && start_ns < f.endNs)
            return true;
    }
    return false;
}

double
ChaosCampaign::hostSlowdown(unsigned host, double ns)
{
    double factor = 1.0;
    for (const auto &f : hostFaults_) {
        if (f.kind == HostFaultSpec::Kind::Straggler && f.host == host &&
            ns >= f.startNs && ns < f.endNs)
            factor *= f.factor;
    }
    return factor;
}

bool
ChaosCampaign::linkDropped(unsigned host, std::uint64_t transfer_id,
                           double ns)
{
    for (const auto &f : hostFaults_) {
        if (f.kind != HostFaultSpec::Kind::FlakyLink || f.host != host ||
            ns < f.startNs || ns >= f.endNs || f.lossProb <= 0.0)
            continue;
        // One hash draw per (campaign, host, transfer): query-order
        // independent, distinct across retries and hedged copies.
        SplitMix64 mix(config_.seed ^
                       (0xf1a4ba1e5eedULL * (std::uint64_t{host} + 1)) ^
                       transfer_id);
        const double u =
            static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
        if (u < f.lossProb)
            return true;
    }
    return false;
}

} // namespace pimsim::serve
