/**
 * @file
 * The multi-tenant serving engine: queue -> scheduler -> sharded device.
 *
 * The engine is a discrete-event simulation on a virtual nanosecond
 * clock. Requests are submitted with an arrival time, pass admission
 * control (bounded RequestQueue plus optional deadline-aware shedding),
 * wait for the batching scheduler, and occupy their tenant's shard for
 * the service time the ShardServiceModel measured on the real
 * command-level simulator. Each shard serves one batch at a time (a PIM
 * kernel owns its channels' lock-step AB mode); distinct shards serve
 * concurrently.
 *
 * Resilience: an attached FaultModel may declare a PIM batch failed
 * (an uncorrectable fault event struck its shard mid-service). Failed
 * batches retry with exponential backoff under a RetryPolicy budget and
 * fall back to the host golden path (HostFallbackModel) once the budget
 * is spent. A per-shard CircuitBreaker watches outcome windows and
 * routes a persistently faulting shard's tenants to host fallback until
 * a half-open probe succeeds. Tenants may carry deadlines: requests
 * that cannot meet them are shed at admission, requests that outlive
 * them in the queue are timed out, and late completions count as SLO
 * violations. After drain(), every submitted request is exactly one of
 * {completed, shed, timed out, rejected}.
 *
 * Everything is deterministic: the same configuration and the same
 * submission sequence replay to bit-identical statistics (retry jitter
 * flows from a seeded Rng, fault processes from seeded streams).
 */

#ifndef PIMSIM_SERVE_SERVING_ENGINE_H
#define PIMSIM_SERVE_SERVING_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/slo.h"
#include "common/stats.h"
#include "reliability/sdc_monitor.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/resilience.h"
#include "serve/scheduler.h"
#include "serve/service_model.h"
#include "serve/shard.h"
#include "sim/system.h"
#include "stack/driver.h"

namespace pimsim {
class TraceSession;
}

namespace pimsim::serve {

/** Silent-data-corruption defense policy of the serving layer. */
struct SdcPolicy
{
    /** Consult the attached SdcModel at all. */
    bool enabled = false;
    /**
     * ABFT verification on PIM batches: every SDC event striking a
     * batch is detected and the batch re-executes on the host golden
     * path (no silently wrong completion). With ABFT off, struck
     * batches complete normally with wrong results (silentlyWrong).
     */
    bool abft = true;
    /** Withdraw channels the monitor quarantines and replan capacity. */
    bool quarantine = true;
    /** Thresholds of the per-(channel, unit) health state machine. */
    SdcMonitorConfig monitor;
    /** Cadence of probation canary kernels per withdrawn channel. */
    double canaryPeriodNs = 1'000'000.0;
    /**
     * Re-replicating a withdrawn channel's weight stripe onto the
     * surviving channels pauses the shard's dispatch for
     * migrationNsPerRow per resident row (0: instant migration).
     */
    double migrationNsPerRow = 100.0;
};

/** Full serving-layer configuration. */
struct ServeConfig
{
    /** The served system (channel count, geometry, PIM config). */
    SystemConfig system = SystemConfig::pimHbmSystem();
    QueueConfig queue;
    SchedulerConfig sched;
    std::vector<TenantSpec> tenants;
    /** Pin each tenant to its own channel/row shard. */
    bool shardChannels = false;
    /** Latency histogram shape (values in ns). */
    std::uint64_t histBucketNs = 20'000;
    std::size_t histBuckets = 8192;
    /** Optional cross-engine service-time memo (benchmark sweeps). */
    std::shared_ptr<ServiceTimeCache> timingCache;

    /** Retry/backoff policy for batches a FaultModel failed. */
    RetryPolicy retry;
    /** Per-shard circuit breaker (disabled by default). */
    BreakerConfig breaker;
    /** Silent-corruption defense (disabled by default). */
    SdcPolicy sdc;
    /**
     * Shed requests at admission when the shard's backlog estimate says
     * their deadline cannot be met (only tenants with a deadline).
     */
    bool deadlineAdmission = true;
    /** Seed of the retry-backoff jitter stream. */
    std::uint64_t retrySeed = 0x7e57;
    /**
     * Worker threads for the per-shard measurement systems (see
     * PimSystem::setThreads). Bit-identical for any value; only the
     * wall-clock cost of filling the service-time cache changes.
     */
    unsigned simThreads = 1;
};

/** Latency distribution summary extracted from a Histogram. */
struct LatencySummary
{
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
    double maxNs = 0.0;
};

/** Per-tenant (or aggregate) serving outcome. */
struct TenantReport
{
    std::string name;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    /** Shed at admission: the deadline was unreachable. */
    std::uint64_t shed = 0;
    /** Expired in the queue past their deadline. */
    std::uint64_t timedOut = 0;
    /** PIM re-dispatches of failed batches (per request). */
    std::uint64_t retries = 0;
    /** Completions served by the host golden path. */
    std::uint64_t fallbackCompleted = 0;
    /** Completions that landed after their deadline. */
    std::uint64_t sloViolations = 0;
    /** Completions returned with silently corrupted results (only
     *  possible with the SDC defense's ABFT arm off). */
    std::uint64_t silentlyWrong = 0;
    double servedNs = 0.0; ///< device time consumed (failed tries too)
    double throughputRps = 0.0;
    LatencySummary queue;   ///< arrival -> dispatch
    LatencySummary service; ///< dispatch -> completion
    LatencySummary e2e;     ///< arrival -> completion
};

/** One shard's resilience outcome. */
struct ShardResilienceReport
{
    unsigned shard = 0;
    BreakerState state = BreakerState::Closed;
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    std::uint64_t probes = 0;
    /** Fault events that struck this shard's PIM batches. */
    std::uint64_t batchFaults = 0;
};

/** Whole-run SDC-defense outcome (zeros when the defense is off). */
struct SdcDefenseReport
{
    std::uint64_t detected = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t falseAlarms = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t readmits = 0;
    /** Channels withdrawn from serving at report time. */
    std::vector<unsigned> withdrawnChannels;
};

/** Whole-run serving outcome. */
struct ServeReport
{
    double horizonNs = 0.0; ///< virtual time covered
    std::vector<TenantReport> tenants;
    TenantReport total; ///< all tenants aggregated
    std::vector<ShardResilienceReport> shards;
    SdcDefenseReport sdc;

    /**
     * PIMSIM_ASSERT that every submitted request reached exactly one
     * terminal state, per tenant and in aggregate: completed + shed +
     * timed-out + rejected == submitted. Valid once the engine is
     * drained; the engine asserts it there, benches re-assert on the
     * reports they publish.
     */
    void reconcile() const;
};

/** The request-serving system on top of one PIM-HBM configuration. */
class ServingEngine
{
  public:
    explicit ServingEngine(const ServeConfig &config);

    unsigned numTenants() const
    {
        return static_cast<unsigned>(tenants_.size());
    }

    /**
     * Submit one request of `tenant` arriving at `arrival_ns` (must not
     * precede the engine clock; time never runs backwards).
     * @return false when admission control rejected or shed it.
     */
    bool submit(unsigned tenant, double arrival_ns);

    /** Advance the virtual clock, serving everything due by `ns`. */
    void advanceTo(double ns);

    /** Serve until queue, retries and shards are empty. */
    void drain();

    /** Next internal event (completion, batch timeout, queue deadline,
     *  or retry becoming ready); kNoEventNs when fully idle. */
    double nextEventNs() const;

    /** Requests completed since the last call (closed-loop feedback). */
    std::vector<ServeRequest> takeCompletions();

    double nowNs() const { return nowNs_; }

    /** The shard layout in force. */
    const ShardPlan &plan() const { return plan_; }

    /**
     * The row allocator serving a tenant's weight residency. Sharded
     * engines return the tenant's partitioned driver (disjoint row
     * ranges); shared engines return the common driver.
     */
    PimDriver &tenantDriver(unsigned tenant);

    /** The primary system (shard plan, drivers, serve stats). */
    PimSystem &system() { return *system_; }

    /**
     * Attach the source of uncorrectable fault events (nullptr
     * detaches). The model is queried once per completed PIM batch over
     * its shard-occupancy interval; any event inside it fails the
     * batch. Not owned; must outlive the engine or be detached.
     */
    void setFaultModel(FaultModel *model) { faults_ = model; }

    /**
     * Attach the source of silent-corruption events (nullptr detaches;
     * not owned). Consulted only when config.sdc.enabled: each PIM
     * batch queries its shard's active channels over the batch's
     * occupancy interval, and probation canaries query the window since
     * the previous canary. The same model must stay attached for the
     * whole run for the replay to be deterministic.
     */
    void setSdcModel(SdcModel *model) { sdcModel_ = model; }

    /** The health/quarantine tracker (nullptr when the defense is off). */
    const SdcMonitor *sdcMonitor() const { return sdcMonitor_.get(); }

    /** Channels of shard `s` currently serving. */
    unsigned activeChannels(unsigned s) const
    {
        return plan_.activeChannelsOf(s);
    }
    /** Serving capacity of shard `s` as a fraction of its plan size. */
    double capacityFraction(unsigned s) const
    {
        return plan_.capacityFraction(s);
    }

    /** One shard's circuit breaker (read-only observation). */
    const CircuitBreaker &breaker(unsigned shard) const
    {
        return shards_[shard].breaker;
    }

    /** Aggregate statistics over everything served so far. */
    ServeReport report() const;

    /**
     * Record batch dispatches on the serving track of a Chrome-trace
     * session (nullptr disables): one span per batch on its shard's
     * timeline, from dispatch to completion. Resilience events (breaker
     * open / half-open spans, batch-fault instants) land on their own
     * track.
     */
    void setTrace(TraceSession *session);

    /**
     * Attach a per-request causal tracer (nullptr detaches). Every
     * submitted request is minted a RequestTraceContext; its queue
     * wait, batch attempts, retries and terminal state are buffered as
     * a span tree and tail-sampled at the tracer (see
     * common/reqtrace.h). Not owned; must outlive the engine's use.
     */
    void setRequestTracer(RequestTracer *tracer) { reqTracer_ = tracer; }

    /**
     * Per-request terminal observations (timestamp + met-its-SLO)
     * accumulated since the last call — the SloMonitor feed. Sheds,
     * rejections, timeouts and late completions are bad; in-deadline
     * completions are good.
     */
    std::vector<SloObservation> takeSloObservations();

  private:
    struct TenantState
    {
        TenantSpec spec;
        Histogram queueH;
        Histogram serviceH;
        Histogram e2eH;
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t batches = 0;
        std::uint64_t shed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t retries = 0;
        std::uint64_t fallbackCompleted = 0;
        std::uint64_t sloViolations = 0;
        std::uint64_t silentlyWrong = 0;
        double servedNs = 0.0;
        /** Memoised batch-1 PIM service time (admission estimate). */
        double svc1Ns = -1.0;
    };

    struct Server
    {
        bool busy = false;
        double freeNs = 0.0;
        Batch inFlight;
        double serviceNs = 0.0;
        bool fallback = false; ///< running on the host golden path
        bool probe = false;    ///< a half-open breaker probe
    };

    /** A failed batch waiting out its backoff before re-dispatch. */
    struct PendingRetry
    {
        double readyNs = 0.0;
        Batch batch;
        /** Retry budget spent: re-dispatch on the host path. */
        bool forceHost = false;
    };

    /** Per-shard resilience state. */
    struct ShardState
    {
        CircuitBreaker breaker;
        std::vector<PendingRetry> retries;
        std::uint64_t batchFaults = 0;
        /** Breaker state currently drawn on the trace track. */
        BreakerState traceState = BreakerState::Closed;
        double traceSinceNs = 0.0;
        /** Dispatch paused until here (weight-stripe migration). */
        double holdUntilNs = 0.0;
    };

    /** Complete every in-flight batch due by the current clock. */
    void completeDue();
    /** Time out queued requests whose deadline has passed. */
    void expireDue();
    /** Dispatch as many batches as idle shards and policy allow. */
    void dispatchAll();
    /** Put one batch on shard `s` now (breaker decides the route). */
    void startBatch(unsigned s, Batch &&batch, bool force_host);
    void finishBatch(unsigned shard);
    /** Index into shards_[s].retries of the due retry to run (or -1). */
    int dueRetryIndex(unsigned s) const;
    /** Batch-1 PIM service time of a tenant, memoised. */
    double svc1Ns(unsigned tenant);
    /** Admission estimate of shard `s` work ahead of a new arrival. */
    double backlogNs(unsigned s);
    /** Emit breaker state-change trace spans and stats. */
    void noteBreakerState(unsigned s);
    /** Service-time multiplier of shard `s` under withdrawn channels
     *  (total / active; +inf is never returned — see dispatch gating). */
    double capacityPenalty(unsigned s) const;
    /** Feed one PIM batch's SDC events through ABFT + monitor. Returns
     *  true when the batch must re-execute on the host golden path. */
    bool applySdcOutcomes(unsigned shard, double start_ns, double end_ns);
    /** Quarantine newly withdrawn channels / restore re-admitted ones,
     *  pausing dispatch for the migration where capacity changed. */
    void reconcileQuarantine();
    /** Probation bookkeeping due by the clock: monitor cool-downs and
     *  canary kernels. */
    void runSdcDue();
    /** Close a request's trace (root span + outcome) and record its
     *  SLO observation. `terminal` names non-completed ends. */
    void finishRequestTrace(ServeRequest &request, double end_ns,
                            const char *terminal, bool erred);
    TenantReport summarise(const TenantState &t, double horizon_ns) const;

    ServeConfig config_;
    std::unique_ptr<PimSystem> system_;
    ShardPlan plan_;
    std::vector<std::unique_ptr<PimDriver>> drivers_; ///< per tenant
    std::vector<std::unique_ptr<ShardServiceModel>> models_; ///< per shard
    std::unique_ptr<HostFallbackModel> hostModel_;
    std::vector<Server> servers_;     ///< per shard
    std::vector<ShardState> shards_;  ///< per shard
    RequestQueue queue_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<TenantState> tenants_;

    FaultModel *faults_ = nullptr;
    SdcModel *sdcModel_ = nullptr;
    std::unique_ptr<SdcMonitor> sdcMonitor_;
    /** Next probation canary round (kNoEventNs: none scheduled). */
    double canaryDueNs_;
    /** Last canary round per channel (canary window start). */
    std::vector<double> lastCanaryNs_;
    Rng retryRng_;

    std::vector<ServeRequest> completions_;
    std::vector<SloObservation> sloObs_;
    TraceSession *trace_ = nullptr;
    RequestTracer *reqTracer_ = nullptr;
    double nowNs_ = 0.0;
    std::uint64_t nextId_ = 0;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_SERVING_ENGINE_H
