/**
 * @file
 * The multi-tenant serving engine: queue -> scheduler -> sharded device.
 *
 * The engine is a discrete-event simulation on a virtual nanosecond
 * clock. Requests are submitted with an arrival time, pass admission
 * control (bounded RequestQueue), wait for the batching scheduler, and
 * occupy their tenant's shard for the service time the ShardServiceModel
 * measured on the real command-level simulator. Each shard serves one
 * batch at a time (a PIM kernel owns its channels' lock-step AB mode);
 * distinct shards serve concurrently.
 *
 * Everything is deterministic: the same configuration and the same
 * submission sequence replay to bit-identical statistics.
 */

#ifndef PIMSIM_SERVE_SERVING_ENGINE_H
#define PIMSIM_SERVE_SERVING_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"
#include "serve/service_model.h"
#include "serve/shard.h"
#include "sim/system.h"
#include "stack/driver.h"

namespace pimsim {
class TraceSession;
}

namespace pimsim::serve {

/** Full serving-layer configuration. */
struct ServeConfig
{
    /** The served system (channel count, geometry, PIM config). */
    SystemConfig system = SystemConfig::pimHbmSystem();
    QueueConfig queue;
    SchedulerConfig sched;
    std::vector<TenantSpec> tenants;
    /** Pin each tenant to its own channel/row shard. */
    bool shardChannels = false;
    /** Latency histogram shape (values in ns). */
    std::uint64_t histBucketNs = 20'000;
    std::size_t histBuckets = 8192;
    /** Optional cross-engine service-time memo (benchmark sweeps). */
    std::shared_ptr<ServiceTimeCache> timingCache;
};

/** Latency distribution summary extracted from a Histogram. */
struct LatencySummary
{
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
    double maxNs = 0.0;
};

/** Per-tenant (or aggregate) serving outcome. */
struct TenantReport
{
    std::string name;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    double servedNs = 0.0; ///< device time consumed
    double throughputRps = 0.0;
    LatencySummary queue;   ///< arrival -> dispatch
    LatencySummary service; ///< dispatch -> completion
    LatencySummary e2e;     ///< arrival -> completion
};

/** Whole-run serving outcome. */
struct ServeReport
{
    double horizonNs = 0.0; ///< virtual time covered
    std::vector<TenantReport> tenants;
    TenantReport total; ///< all tenants aggregated
};

/** The request-serving system on top of one PIM-HBM configuration. */
class ServingEngine
{
  public:
    explicit ServingEngine(const ServeConfig &config);

    unsigned numTenants() const
    {
        return static_cast<unsigned>(tenants_.size());
    }

    /**
     * Submit one request of `tenant` arriving at `arrival_ns` (must not
     * precede the engine clock; time never runs backwards).
     * @return false when admission control rejected it.
     */
    bool submit(unsigned tenant, double arrival_ns);

    /** Advance the virtual clock, serving everything due by `ns`. */
    void advanceTo(double ns);

    /** Serve until queue and shards are empty. */
    void drain();

    /** Next internal event (completion or batch timeout); kNoEventNs
     *  when the engine is fully idle. */
    double nextEventNs() const;

    /** Requests completed since the last call (closed-loop feedback). */
    std::vector<ServeRequest> takeCompletions();

    double nowNs() const { return nowNs_; }

    /** The shard layout in force. */
    const ShardPlan &plan() const { return plan_; }

    /**
     * The row allocator serving a tenant's weight residency. Sharded
     * engines return the tenant's partitioned driver (disjoint row
     * ranges); shared engines return the common driver.
     */
    PimDriver &tenantDriver(unsigned tenant);

    /** The primary system (shard plan, drivers, serve stats). */
    PimSystem &system() { return *system_; }

    /** Aggregate statistics over everything served so far. */
    ServeReport report() const;

    /**
     * Record batch dispatches on the serving track of a Chrome-trace
     * session (nullptr disables): one span per batch on its shard's
     * timeline, from dispatch to completion.
     */
    void setTrace(TraceSession *session);

  private:
    struct TenantState
    {
        TenantSpec spec;
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t batches = 0;
        double servedNs = 0.0;
        Histogram queueH;
        Histogram serviceH;
        Histogram e2eH;
    };

    struct Server
    {
        bool busy = false;
        double freeNs = 0.0;
        Batch inFlight;
        double serviceNs = 0.0;
    };

    /** Complete every in-flight batch due by the current clock. */
    void completeDue();
    /** Dispatch as many batches as idle shards and policy allow. */
    void dispatchAll();
    void finishBatch(unsigned shard);
    TenantReport summarise(const TenantState &t, double horizon_ns) const;

    ServeConfig config_;
    std::unique_ptr<PimSystem> system_;
    ShardPlan plan_;
    std::vector<std::unique_ptr<PimDriver>> drivers_; ///< per tenant
    std::vector<std::unique_ptr<ShardServiceModel>> models_; ///< per shard
    std::vector<Server> servers_;                            ///< per shard
    RequestQueue queue_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<TenantState> tenants_;

    std::vector<ServeRequest> completions_;
    TraceSession *trace_ = nullptr;
    double nowNs_ = 0.0;
    std::uint64_t nextId_ = 0;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_SERVING_ENGINE_H
