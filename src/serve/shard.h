/**
 * @file
 * Channel sharding: pinning tenants to disjoint pseudo-channel groups.
 *
 * A shard is a contiguous group of pseudo channels plus a disjoint slice
 * of the PIM row space. Sharded tenants get hard isolation on both axes:
 * their kernels only occupy their own channels (modelled by a
 * shard-sized timing system, see ShardServiceModel) and their weights
 * only occupy their own rows (enforced by a partitioned PimDriver).
 *
 * Because the address mapping and the lock-step AB mode want power-of-
 * two channel counts, each tenant's shard is the largest power of two
 * at or below its proportional share; leftover channels stay unassigned
 * (exactly the fragmentation a real deployment would see).
 */

#ifndef PIMSIM_SERVE_SHARD_H
#define PIMSIM_SERVE_SHARD_H

#include <cstdint>
#include <vector>

namespace pimsim::serve {

/** One shard: a channel group and a PIM row slice. */
struct ShardSpec
{
    unsigned firstChannel = 0;
    unsigned numChannels = 0;
    unsigned firstRow = 0;
    unsigned numRows = 0;
};

/** Largest power of two <= n (n >= 1). */
unsigned floorPow2(unsigned n);

/**
 * PIMSIM_ASSERT that the shards' (firstRow, numRows) slices are pairwise
 * disjoint: cross-tenant row overlap would let one tenant's weight
 * residency alias another's. Engines call this after every (re)plan;
 * empty slices are allowed.
 */
void assertDisjointRowRanges(const std::vector<ShardSpec> &shards);

/** Tenant -> shard assignment over one system's channels and rows. */
class ShardPlan
{
  public:
    /** All tenants share one shard spanning the whole system. */
    static ShardPlan shared(unsigned total_channels, unsigned pim_rows,
                            unsigned num_tenants);

    /**
     * One shard per tenant: channel groups sized by weight (rounded down
     * to a power of two, at least 1), row slices split proportionally.
     */
    static ShardPlan sharded(unsigned total_channels, unsigned pim_rows,
                             const std::vector<double> &weights);

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    unsigned shardOf(unsigned tenant) const { return shardOf_[tenant]; }
    const ShardSpec &shard(unsigned s) const { return shards_[s]; }

    /** Tenants assigned to shard `s`. */
    std::vector<unsigned> tenantsOf(unsigned s) const;

    /** True when every tenant has its own shard. */
    bool isSharded() const { return sharded_; }

    // ---- Degraded-capacity serving (SDC quarantine) ----
    // Quarantining withdraws a channel from every shard that contains
    // it; the shard's tenants keep their row slice (rows are striped
    // across the shard's channels, so surviving channels absorb the
    // withdrawn channel's stripe) but serve on fewer channels until the
    // channel is restored.

    /** Withdraw `channel` from serving (idempotent). */
    void quarantineChannel(unsigned channel);
    /** Return `channel` to serving (idempotent). */
    void restoreChannel(unsigned channel);
    bool channelQuarantined(unsigned channel) const;
    /** Channels of shard `s` currently serving. */
    unsigned activeChannelsOf(unsigned s) const;
    /** activeChannelsOf / numChannels in [0, 1]. */
    double capacityFraction(unsigned s) const;

    /** Assert tenant row isolation over the current shard set. */
    void assertRowIsolation() const { assertDisjointRowRanges(shards_); }

  private:
    std::vector<ShardSpec> shards_;
    std::vector<unsigned> shardOf_; ///< tenant -> shard index
    std::vector<std::uint8_t> quarantined_; ///< per absolute channel
    bool sharded_ = false;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_SHARD_H
