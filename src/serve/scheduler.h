/**
 * @file
 * Batching schedulers: how queued requests become device dispatches.
 *
 * Three policies, in increasing sophistication:
 *
 *  - FCFS: the globally oldest request dispatches alone (batch 1). The
 *    baseline — every request pays the full per-dispatch kernel-launch
 *    overhead, so throughput saturates early under load.
 *  - Batching with timeout: requests of one tenant coalesce until the
 *    batch is full or the oldest member has waited `batchTimeoutNs`.
 *    Amortises launch overhead (Section VII-B's encoder/decoder
 *    asymmetry writ large) at a bounded queueing-delay cost.
 *  - Per-tenant fair share: work-conserving weighted scheduling; the
 *    tenant with the least served time per weight dispatches next
 *    (batched greedily). Bounds cross-tenant interference without
 *    requiring channel sharding.
 */

#ifndef PIMSIM_SERVE_SCHEDULER_H
#define PIMSIM_SERVE_SCHEDULER_H

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "serve/request.h"
#include "serve/request_queue.h"

namespace pimsim::serve {

/** Sentinel "no event pending" timestamp. */
inline constexpr double kNoEventNs = std::numeric_limits<double>::infinity();

/** Scheduling policy selector. */
enum class SchedPolicy
{
    Fcfs,         ///< one request per dispatch, arrival order
    BatchTimeout, ///< batch until full or the head request times out
    FairShare,    ///< weighted least-served-first, batched greedily
};

const char *schedPolicyName(SchedPolicy policy);

/** Scheduler knobs. */
struct SchedulerConfig
{
    SchedPolicy policy = SchedPolicy::Fcfs;
    /** Largest batch one dispatch may carry (>= 1). */
    unsigned maxBatch = 4;
    /** BatchTimeout: longest the head request waits for companions. */
    double batchTimeoutNs = 1.0e6;
};

/** Policy interface: pick work for an idle shard. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Form the next batch from `queue` at time `now`, considering only
     * the tenants in `eligible` (those pinned to the idle shard).
     * Returns nullopt when no batch should dispatch yet.
     */
    virtual std::optional<Batch> pick(RequestQueue &queue,
                                      const std::vector<unsigned> &eligible,
                                      double now) = 0;

    /**
     * Earliest future time at which pick() could return a batch without
     * any new arrival (kNoEventNs if only an arrival or a completion can
     * unblock it). Drives the engine's timeout timers.
     */
    virtual double nextReadyNs(const RequestQueue &queue,
                               const std::vector<unsigned> &eligible,
                               double now) const;

    /** Accounting callback after the engine prices a dispatched batch. */
    virtual void onDispatched(const Batch &batch, double service_ns);

    /** Build the policy named by `config`. */
    static std::unique_ptr<Scheduler> make(const SchedulerConfig &config,
                                           const std::vector<double> &weights);
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_SCHEDULER_H
