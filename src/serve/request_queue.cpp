#include "serve/request_queue.h"

#include "common/logging.h"

namespace pimsim::serve {

RequestQueue::RequestQueue(const QueueConfig &config, unsigned num_tenants)
    : config_(config),
      queues_(num_tenants),
      admitted_(num_tenants, 0),
      rejected_(num_tenants, 0)
{
}

bool
RequestQueue::tryPush(const ServeRequest &request)
{
    PIMSIM_ASSERT(request.tenant < queues_.size(), "bad tenant id ",
                  request.tenant);
    const bool global_full = total_ >= config_.depth;
    const bool tenant_full =
        config_.perTenantDepth != 0 &&
        queues_[request.tenant].size() >= config_.perTenantDepth;
    if (global_full || tenant_full) {
        ++rejected_[request.tenant];
        return false;
    }
    queues_[request.tenant].push_back(request);
    ++admitted_[request.tenant];
    ++total_;
    return true;
}

ServeRequest
RequestQueue::popFront(unsigned tenant)
{
    PIMSIM_ASSERT(!queues_[tenant].empty(), "pop from empty tenant queue ",
                  tenant);
    ServeRequest r = queues_[tenant].front();
    queues_[tenant].pop_front();
    --total_;
    return r;
}

std::optional<unsigned>
RequestQueue::oldestTenant(const std::vector<unsigned> &eligible) const
{
    std::optional<unsigned> best;
    for (unsigned t : eligible) {
        const ServeRequest *head = front(t);
        if (!head)
            continue;
        if (!best || head->id < front(*best)->id)
            best = t;
    }
    return best;
}

} // namespace pimsim::serve
