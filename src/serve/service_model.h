/**
 * @file
 * Per-shard service-time model.
 *
 * The serving engine needs serviceNs(app, batch) for a tenant pinned to
 * a g-channel shard. PIM latency is deterministic (the architecture's
 * core property), so each distinct (app, batch) is executed once on a
 * shard-sized system through the real AppRunner/PimBlas command-level
 * path and memoised; the queueing simulation then replays the measured
 * number. A cross-engine cache lets benchmark sweeps share measurements
 * between policy/rate cells instead of re-simulating identical kernels.
 */

#ifndef PIMSIM_SERVE_SERVICE_MODEL_H
#define PIMSIM_SERVE_SERVICE_MODEL_H

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "host/host_model.h"
#include "sim/system.h"
#include "stack/app_runner.h"
#include "stack/blas.h"

namespace pimsim::serve {

/** Shared (shard channels, app name, batch) -> service ns memo. */
class ServiceTimeCache
{
  public:
    using Key = std::tuple<unsigned, std::string, unsigned>;

    const double *find(const Key &key) const
    {
        const auto it = memo_.find(key);
        return it == memo_.end() ? nullptr : &it->second;
    }

    void insert(const Key &key, double ns) { memo_[key] = ns; }

    std::size_t size() const { return memo_.size(); }

  private:
    std::map<Key, double> memo_;
};

/** Timing oracle for one shard size. */
class ShardServiceModel
{
  public:
    /**
     * @param base      the serving system's configuration; geometry and
     *                  timing are inherited, only the channel count is
     *                  replaced by the shard's
     * @param channels  pseudo channels in the shard (power of two)
     * @param cache     optional cross-engine memo (may be nullptr)
     */
    ShardServiceModel(const SystemConfig &base, unsigned channels,
                      std::shared_ptr<ServiceTimeCache> cache);

    /** End-to-end service time of one dispatch of `app` at `batch`. */
    double serviceNs(const AppSpec &app, unsigned batch);

    unsigned channels() const { return channels_; }

  private:
    /** The measurement system is built on first miss only. */
    void ensureRunner();

    SystemConfig config_;
    unsigned channels_;
    std::shared_ptr<ServiceTimeCache> cache_;

    std::unique_ptr<PimSystem> system_;
    std::unique_ptr<HostModel> host_;
    std::unique_ptr<PimBlas> blas_;
    std::unique_ptr<AppRunner> runner_;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_SERVICE_MODEL_H
