/**
 * @file
 * Per-shard service-time model.
 *
 * The serving engine needs serviceNs(app, batch) for a tenant pinned to
 * a g-channel shard. PIM latency is deterministic (the architecture's
 * core property), so each distinct (app, batch) is executed once on a
 * shard-sized system through the real AppRunner/PimBlas command-level
 * path and memoised; the queueing simulation then replays the measured
 * number. A cross-engine cache lets benchmark sweeps share measurements
 * between policy/rate cells instead of re-simulating identical kernels.
 */

#ifndef PIMSIM_SERVE_SERVICE_MODEL_H
#define PIMSIM_SERVE_SERVICE_MODEL_H

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "host/host_model.h"
#include "sim/system.h"
#include "stack/app_runner.h"
#include "stack/blas.h"

namespace pimsim::serve {

/**
 * Shared (shard channels, app name, batch) -> service ns memo. Host
 * fallback timings share the map under the reserved channel count 0
 * (no real shard has zero channels).
 */
class ServiceTimeCache
{
  public:
    using Key = std::tuple<unsigned, std::string, unsigned>;

    /** Reserved channel-count key for host-fallback measurements. */
    static constexpr unsigned kHostChannels = 0;

    const double *find(const Key &key) const
    {
        const auto it = memo_.find(key);
        return it == memo_.end() ? nullptr : &it->second;
    }

    void insert(const Key &key, double ns) { memo_[key] = ns; }

    std::size_t size() const { return memo_.size(); }

  private:
    std::map<Key, double> memo_;
};

/** Timing oracle for one shard size. */
class ShardServiceModel
{
  public:
    /**
     * @param base      the serving system's configuration; geometry and
     *                  timing are inherited, only the channel count is
     *                  replaced by the shard's
     * @param channels  pseudo channels in the shard (power of two)
     * @param cache     optional cross-engine memo (may be nullptr)
     */
    ShardServiceModel(const SystemConfig &base, unsigned channels,
                      std::shared_ptr<ServiceTimeCache> cache);

    /** End-to-end service time of one dispatch of `app` at `batch`. */
    double serviceNs(const AppSpec &app, unsigned batch);

    unsigned channels() const { return channels_; }

    /**
     * Simulation threads for the measurement system (see
     * PimSystem::setThreads; results are bit-identical for any count).
     * Applies to the lazily built runner, so call before the first miss
     * for full effect.
     */
    void setSimThreads(unsigned threads);

  private:
    /** The measurement system is built on first miss only. */
    void ensureRunner();

    SystemConfig config_;
    unsigned channels_;
    unsigned simThreads_ = 1;
    std::shared_ptr<ServiceTimeCache> cache_;

    std::unique_ptr<PimSystem> system_;
    std::unique_ptr<HostModel> host_;
    std::unique_ptr<PimBlas> blas_;
    std::unique_ptr<AppRunner> runner_;
};

/**
 * Timing oracle for the host-fallback path: the same AppSpec executed
 * entirely on the host baseline (AppRunner without PIM BLAS — the
 * golden path PimBlas itself falls back to). Used by the serving
 * engine to price batches whose shard is tripped or whose retry budget
 * is exhausted; the host path is assumed fault-immune, exactly like
 * PimBlas's hostFallback recomputation.
 */
class HostFallbackModel
{
  public:
    /**
     * @param base   the serving system's configuration (host model
     *               parameters and memory geometry are inherited)
     * @param cache  optional cross-engine memo (may be nullptr); host
     *               entries use ServiceTimeCache::kHostChannels
     */
    HostFallbackModel(const SystemConfig &base,
                      std::shared_ptr<ServiceTimeCache> cache);

    /** Host execution time of one dispatch of `app` at `batch`. */
    double serviceNs(const AppSpec &app, unsigned batch);

    /** Simulation threads for the measurement system (bit-identical). */
    void setSimThreads(unsigned threads);

  private:
    /** The measurement system is built on first miss only. */
    void ensureRunner();

    SystemConfig config_;
    unsigned simThreads_ = 1;
    std::shared_ptr<ServiceTimeCache> cache_;

    std::unique_ptr<PimSystem> system_;
    std::unique_ptr<HostModel> host_;
    std::unique_ptr<AppRunner> runner_;
};

} // namespace pimsim::serve

#endif // PIMSIM_SERVE_SERVICE_MODEL_H
