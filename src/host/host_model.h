/**
 * @file
 * Host-baseline kernel execution model.
 *
 * The HBM baseline runs the same workloads on the host processor. Time
 * per kernel is the maximum of three genuinely simulated/modelled terms:
 *
 *  1. DRAM streaming time — the kernel's miss traffic pushed through the
 *     same cycle-level controllers (with the streaming-kernel MLP),
 *  2. load-issue time — for unoptimised, latency-bound kernels such as
 *     the stock GEMV (Section VII-B: "GEMV provided by the software
 *     stack of the processor is not optimized to fully utilize the
 *     off-chip memory bandwidth"), limited by scalar-load throughput on
 *     the CUs the kernel can occupy,
 *  3. compute time — peak-FLOPs bound for dense kernels,
 *
 * plus the kernel-launch overhead. LLC miss rates come from a functional
 * cache simulation of the kernel's access trace.
 */

#ifndef PIMSIM_HOST_HOST_MODEL_H
#define PIMSIM_HOST_HOST_MODEL_H

#include <cstdint>
#include <map>

#include "mem/llc.h"
#include "sim/system.h"

namespace pimsim {

/** Result of one host kernel execution. */
struct HostKernelResult
{
    double ns = 0.0;
    double llcMissRate = 1.0;
    double dramNs = 0.0;    ///< simulated memory-stream component
    double issueNs = 0.0;   ///< load-issue-bound component
    double computeNs = 0.0; ///< FLOP-bound component
};

/** Host execution model bound to a system (used for the HBM baseline). */
class HostModel
{
  public:
    explicit HostModel(PimSystem &system);

    /**
     * Stock (unoptimised) GEMV/GEMM of one M x N weight matrix with
     * `batch` input columns, FP16.
     */
    HostKernelResult gemv(unsigned m, unsigned n, unsigned batch);

    /**
     * Streaming element-wise kernel touching `read_bytes` of input and
     * `write_bytes` of output once.
     */
    HostKernelResult elementwise(std::uint64_t read_bytes,
                                 std::uint64_t write_bytes);

    /** Compute-bound kernel (convolutions). */
    HostKernelResult computeBound(double flops);

    /**
     * Simulate a sequential burst stream of `bytes` through the DRAM
     * system with the host's streaming MLP; returns nanoseconds.
     * `write_fraction` of the requests are writes. Results are memoised.
     */
    double simulateStreamNs(std::uint64_t bytes, double write_fraction);

    const HostConfig &config() const { return system_.config().host; }

  private:
    double launchNs() const { return config().kernelLaunchNs; }

    PimSystem &system_;
    std::map<std::pair<std::uint64_t, int>, double> streamCache_;
};

} // namespace pimsim

#endif // PIMSIM_HOST_HOST_MODEL_H
