/**
 * @file
 * Host-processor model parameters.
 *
 * The paper integrates PIM-HBM with an *unmodified* commercial processor
 * (60 compute units at 1.725 GHz) and drives PIM purely through memory
 * requests. We model the host at the fidelity that determines the
 * paper's results: load-issue throughput, thread-level parallelism
 * available per kernel, LLC behaviour, fence/barrier stalls, and
 * kernel-launch overhead. Rationale for each default is recorded in
 * EXPERIMENTS.md.
 */

#ifndef PIMSIM_HOST_HOST_CONFIG_H
#define PIMSIM_HOST_HOST_CONFIG_H

#include "mem/llc.h"

namespace pimsim {

/** Host processor and software-stack cost model. */
struct HostConfig
{
    /** Compute units (Section VI: 60 CUs at 1.725 GHz). */
    unsigned computeUnits = 60;
    double coreGHz = 1.725;

    /** Threads per wavefront (work items scheduled together). */
    unsigned waveSize = 64;

    /** Peak FP16 FLOPs per cycle per CU for compute-bound kernels. */
    double flopsPerCyclePerCu = 128.0;
    /** Achieved fraction of peak FLOPs for tuned dense kernels. */
    double computeEfficiency = 0.6;
    /** Achieved fraction of peak FLOPs for batch-1 convolutions (small
     *  GEMMs occupy the CUs poorly). */
    double convEfficiency = 0.15;

    /**
     * Scalar-load issue rate (loads per cycle per CU) for unoptimised,
     * latency-bound kernels such as the stock GEMV (Section VII-B: "GEMV
     * provided by the software stack ... is not optimized").
     */
    double scalarLoadsPerCyclePerCu = 1.2;

    /** Outstanding 32 B requests per channel for streaming kernels. */
    unsigned streamingOutstanding = 64;

    /** Kernel-launch overhead in nanoseconds (limits GNMT, Fig. 10). */
    double kernelLaunchNs = 4500.0;

    /** Cost of one fence/barrier beyond draining in-flight requests. */
    double fenceNs = 25.0;

    LlcConfig llc;

    double peakFlops() const
    {
        return computeUnits * coreGHz * 1e9 * flopsPerCyclePerCu;
    }
};

} // namespace pimsim

#endif // PIMSIM_HOST_HOST_CONFIG_H
