#include "host/host_model.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace pimsim {

HostModel::HostModel(PimSystem &system) : system_(system) {}

double
HostModel::simulateStreamNs(std::uint64_t bytes, double write_fraction)
{
    if (bytes == 0)
        return 0.0;

    // Memoise on (burst count, write fraction percent): layer shapes
    // repeat heavily in the application models.
    const std::uint64_t bursts = divCeil(bytes, kBurstBytes);
    const auto key = std::make_pair(
        bursts, static_cast<int>(write_fraction * 100.0 + 0.5));
    const auto it = streamCache_.find(key);
    if (it != streamCache_.end())
        return it->second;

    // To keep large streams affordable, simulate up to a cap and scale
    // linearly (streaming is steady-state after the first few rows).
    const std::uint64_t cap = 400000;
    const std::uint64_t sim_bursts = std::min(bursts, cap);
    const double scale =
        static_cast<double>(bursts) / static_cast<double>(sim_bursts);

    const unsigned channels = system_.numChannels();
    const unsigned outstanding = config().streamingOutstanding;
    const auto &geom = system_.config().geometry;

    // Round-robin sequential placement, mirroring the default fine
    // channel interleave of the address mapping.
    std::vector<std::uint64_t> issued(channels, 0);
    std::vector<std::uint64_t> inflight(channels, 0);
    std::vector<std::uint64_t> target(channels, 0);
    for (std::uint64_t i = 0; i < sim_bursts; ++i)
        ++target[i % channels];

    const Cycle start = system_.now();
    std::uint64_t write_marker = 0;
    auto make_request = [&](unsigned ch, std::uint64_t seq) {
        MemRequest r;
        const std::uint64_t burst_in_ch = seq;
        const std::uint64_t cols = geom.colsPerRow;
        const std::uint64_t per_bg_cols = cols; // spread bank groups first
        const std::uint64_t bg = burst_in_ch % geom.bankGroupsPerPch;
        const std::uint64_t rest = burst_in_ch / geom.bankGroupsPerPch;
        r.coord.bankGroup = static_cast<unsigned>(bg);
        r.coord.col = static_cast<unsigned>(rest % per_bg_cols);
        const std::uint64_t rows = rest / per_bg_cols;
        r.coord.bank =
            static_cast<unsigned>(rows % geom.banksPerBankGroup);
        r.coord.row = static_cast<unsigned>(
            (rows / geom.banksPerBankGroup) % (geom.rowsPerBank - 8));
        write_marker += static_cast<std::uint64_t>(write_fraction * 1000);
        if (write_marker >= 1000) {
            write_marker -= 1000;
            r.type = RequestType::Write;
        } else {
            r.type = RequestType::Read;
        }
        r.id = seq;
        (void)ch;
        return r;
    };

    bool work_left = true;
    while (work_left) {
        work_left = false;
        for (unsigned ch = 0; ch < channels; ++ch) {
            for (const auto &resp : system_.drain(ch)) {
                (void)resp;
                --inflight[ch];
            }
            while (issued[ch] < target[ch] && inflight[ch] < outstanding &&
                   system_.tryEnqueue(ch,
                                      make_request(ch, issued[ch]))) {
                ++issued[ch];
                ++inflight[ch];
            }
            if (issued[ch] < target[ch] || inflight[ch] > 0)
                work_left = true;
        }
        if (work_left && !system_.step()) {
            // Responses may trail controller idleness.
            system_.advance(1);
        }
    }
    // Drain the final completions.
    for (unsigned ch = 0; ch < channels; ++ch)
        system_.drain(ch);

    const double ns =
        static_cast<double>(system_.now() - start) * system_.nsPerCycle();
    const double total = ns * scale;
    streamCache_[key] = total;
    return total;
}

HostKernelResult
HostModel::gemv(unsigned m, unsigned n, unsigned batch)
{
    HostKernelResult result;
    const HostConfig &host = config();
    const double w_bytes = 2.0 * m * n;
    const double loads = static_cast<double>(m) * n;

    // The stock GEMV parallelises across output rows only; small M
    // cannot occupy every CU (one wavefront per 64 rows).
    const double waves = std::ceil(static_cast<double>(m) / host.waveSize);
    const double active_cus =
        std::min<double>(host.computeUnits, std::max(1.0, waves));

    // Batching turns the level-2 kernel into a level-3 one: each W
    // element loaded once feeds `batch` MACs, amortising the scalar-load
    // bottleneck (Section VII-B's B1 -> B4 trend). The exponent < 1
    // reflects imperfect register blocking in the stock kernel; it is
    // calibrated so GEMV's B2 ratio lands near the paper's 3.2x.
    const double amortise = std::min(std::pow(batch, 0.7), 8.0);
    result.issueNs = loads / (active_cus * host.coreGHz *
                              host.scalarLoadsPerCyclePerCu * amortise);

    result.dramNs = simulateStreamNs(static_cast<std::uint64_t>(w_bytes),
                                     /*write_fraction=*/0.02);

    const double flops = 2.0 * m * n * batch;
    result.computeNs =
        flops / (host.peakFlops() * host.computeEfficiency) * 1e9;

    result.ns = std::max({result.issueNs, result.dramNs, result.computeNs}) +
                launchNs();

    // LLC behaviour: W streams (one miss per line); the reused x/y tiles
    // contribute hit traffic that grows with batch. The per-line hit
    // factor is calibrated against Fig. 10's reported miss rates (B1
    // ~100%, B4 70-80%); see EXPERIMENTS.md.
    LlcConfig llc_cfg = host.llc;
    Llc llc(llc_cfg);
    const std::uint64_t sample_lines =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(w_bytes) /
                                    llc_cfg.lineBytes,
                                200000);
    const double extra_hits = 0.02 + (batch - 1) * 0.11;
    double hit_accum = 0.0;
    const Addr reuse_base = 1ull << 30;
    for (std::uint64_t line = 0; line < sample_lines; ++line) {
        llc.access(line * llc_cfg.lineBytes, false); // W stream
        hit_accum += extra_hits;
        while (hit_accum >= 1.0) {
            hit_accum -= 1.0;
            llc.access(reuse_base + (line % 64) * llc_cfg.lineBytes, false);
        }
    }
    result.llcMissRate = llc.missRate();
    return result;
}

HostKernelResult
HostModel::elementwise(std::uint64_t read_bytes, std::uint64_t write_bytes)
{
    HostKernelResult result;
    const std::uint64_t total = read_bytes + write_bytes;
    const double wf =
        total ? static_cast<double>(write_bytes) / total : 0.0;
    result.dramNs = simulateStreamNs(total, wf);
    // Vectorised streaming kernels saturate load issue; compute is
    // negligible. Everything streams: the LLC misses ~100%.
    result.ns = result.dramNs + launchNs();
    result.llcMissRate = 1.0;
    return result;
}

HostKernelResult
HostModel::computeBound(double flops)
{
    HostKernelResult result;
    const HostConfig &host = config();
    result.computeNs =
        flops / (host.peakFlops() * host.convEfficiency) * 1e9;
    result.ns = result.computeNs + launchNs();
    // Compute-bound layers reuse their tiles heavily.
    result.llcMissRate = 0.1;
    return result;
}

} // namespace pimsim
