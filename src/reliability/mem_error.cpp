#include "reliability/mem_error.h"

#include <algorithm>

namespace pimsim {

const char *
memErrorSeverityName(MemErrorEvent::Severity severity)
{
    switch (severity) {
      case MemErrorEvent::Severity::Corrected:
        return "Corrected";
      case MemErrorEvent::Severity::Uncorrectable:
        return "Uncorrectable";
    }
    return "?";
}

const char *
memErrorOriginName(MemErrorEvent::Origin origin)
{
    switch (origin) {
      case MemErrorEvent::Origin::Access:
        return "Access";
      case MemErrorEvent::Origin::Scrub:
        return "Scrub";
    }
    return "?";
}

void
MemErrorLog::record(const MemErrorEvent &event)
{
    if (event.channel >= correctedPerCh_.size()) {
        correctedPerCh_.resize(event.channel + 1, 0);
        uncorrectablePerCh_.resize(event.channel + 1, 0);
    }
    if (event.severity == MemErrorEvent::Severity::Corrected) {
        ++corrected_;
        ++correctedPerCh_[event.channel];
    } else {
        ++uncorrectable_;
        ++uncorrectablePerCh_[event.channel];
    }
    if (events_.size() >= maxEvents_)
        events_.erase(events_.begin());
    events_.push_back(event);
    if (handler_)
        handler_(event);
}

std::uint64_t
MemErrorLog::correctedOn(unsigned channel) const
{
    return channel < correctedPerCh_.size() ? correctedPerCh_[channel] : 0;
}

std::uint64_t
MemErrorLog::uncorrectableOn(unsigned channel) const
{
    return channel < uncorrectablePerCh_.size() ? uncorrectablePerCh_[channel]
                                                : 0;
}

void
MemErrorLog::clear()
{
    events_.clear();
    std::fill(correctedPerCh_.begin(), correctedPerCh_.end(), 0);
    std::fill(uncorrectablePerCh_.begin(), uncorrectablePerCh_.end(), 0);
    corrected_ = 0;
    uncorrectable_ = 0;
}

} // namespace pimsim
