/**
 * @file
 * Machine-check-style memory error reporting.
 *
 * Section VIII argues PIM must leverage the on-die ECC engine "even in
 * PIM mode". This module is the software-visible half of that story:
 * every ECC event observed anywhere in the device — host reads, PIM
 * bank-operand fetches, scrubber sweeps — is raised as a MemErrorEvent
 * into a per-system MemErrorLog instead of being silently swallowed.
 * The runtime polls the log (or installs a handler) to drive its
 * retry / host-fallback recovery policy.
 */

#ifndef PIMSIM_RELIABILITY_MEM_ERROR_H
#define PIMSIM_RELIABILITY_MEM_ERROR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace pimsim {

/** One ECC event, attributed to a device location and simulated time. */
struct MemErrorEvent
{
    enum class Severity : std::uint8_t
    {
        Corrected,     ///< single-bit fault repaired in flight
        Uncorrectable, ///< double-bit fault detected; data is suspect
    };

    enum class Origin : std::uint8_t
    {
        Access, ///< demand read (host RD or PIM bank-operand fetch)
        Scrub,  ///< background scrubber sweep
    };

    Severity severity = Severity::Corrected;
    Origin origin = Origin::Access;
    unsigned channel = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;
    Cycle cycle = 0;
};

const char *memErrorSeverityName(MemErrorEvent::Severity severity);
const char *memErrorOriginName(MemErrorEvent::Origin origin);

/** Callback invoked synchronously for every recorded event. */
using MemErrorHandler = std::function<void(const MemErrorEvent &)>;

/**
 * System-wide error log: running counters per channel plus a bounded
 * ring of the most recent events (so long fault campaigns cannot grow
 * memory without bound).
 */
class MemErrorLog
{
  public:
    explicit MemErrorLog(std::size_t max_events = 1024)
        : maxEvents_(max_events)
    {
    }

    void record(const MemErrorEvent &event);

    /** Total corrected / uncorrectable events since the last clear. */
    std::uint64_t corrected() const { return corrected_; }
    std::uint64_t uncorrectable() const { return uncorrectable_; }

    /** Per-channel counters (0 for channels never seen). */
    std::uint64_t correctedOn(unsigned channel) const;
    std::uint64_t uncorrectableOn(unsigned channel) const;

    /** The most recent events, oldest first (bounded). */
    const std::vector<MemErrorEvent> &recent() const { return events_; }

    /** Install a synchronous observer (replaces any previous one). */
    void setHandler(MemErrorHandler handler)
    {
        handler_ = std::move(handler);
    }

    void clear();

  private:
    std::size_t maxEvents_;
    std::vector<MemErrorEvent> events_;
    std::vector<std::uint64_t> correctedPerCh_;
    std::vector<std::uint64_t> uncorrectablePerCh_;
    std::uint64_t corrected_ = 0;
    std::uint64_t uncorrectable_ = 0;
    MemErrorHandler handler_;
};

} // namespace pimsim

#endif // PIMSIM_RELIABILITY_MEM_ERROR_H
