#include "reliability/sdc_monitor.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/trace.h"

namespace pimsim {

const char *
unitHealthName(UnitHealth state)
{
    switch (state) {
      case UnitHealth::Healthy:
        return "healthy";
      case UnitHealth::Suspect:
        return "suspect";
      case UnitHealth::Quarantined:
        return "quarantined";
      case UnitHealth::Probation:
        return "probation";
    }
    return "?";
}

void
SdcMonitorConfig::validate() const
{
    PIMSIM_ASSERT(window > 0, "SDC monitor window must be > 0");
    PIMSIM_ASSERT(minSamples >= 1 && minSamples <= window,
                  "SDC monitor minSamples must be in [1, window], got ",
                  minSamples, " with window ", window);
    PIMSIM_ASSERT(suspectScore > 0.0 && suspectScore < quarantineScore,
                  "suspect score must be positive and below the "
                  "quarantine score, got ",
                  suspectScore, " vs ", quarantineScore);
    PIMSIM_ASSERT(quarantineScore <= 1.0,
                  "quarantine score must be <= 1, got ", quarantineScore);
    PIMSIM_ASSERT(probationDelayNs >= 0.0,
                  "probation cool-down must be non-negative, got ",
                  probationDelayNs);
    PIMSIM_ASSERT(probationCanaries >= 1,
                  "probation needs >= 1 canary kernel");
}

SdcMonitor::SdcMonitor(unsigned channels, unsigned units_per_channel,
                       const SdcMonitorConfig &config)
    : channels_(channels), unitsPerChannel_(units_per_channel),
      config_(config),
      units_(std::size_t{channels} * units_per_channel),
      stats_("sdc")
{
    PIMSIM_ASSERT(channels > 0 && units_per_channel > 0,
                  "SDC monitor needs a PIM device to watch");
    config.validate();
}

SdcMonitor::Unit &
SdcMonitor::unit(unsigned channel, unsigned index)
{
    PIMSIM_ASSERT(channel < channels_ && index < unitsPerChannel_,
                  "bad SDC monitor target ", channel, "/", index);
    return units_[std::size_t{channel} * unitsPerChannel_ + index];
}

const SdcMonitor::Unit &
SdcMonitor::unit(unsigned channel, unsigned index) const
{
    PIMSIM_ASSERT(channel < channels_ && index < unitsPerChannel_,
                  "bad SDC monitor target ", channel, "/", index);
    return units_[std::size_t{channel} * unitsPerChannel_ + index];
}

double
SdcMonitor::scoreOf(const Unit &u) const
{
    if (u.window.size() < config_.minSamples)
        return 0.0;
    return static_cast<double>(u.windowErrors) /
           static_cast<double>(u.window.size());
}

void
SdcMonitor::transition(unsigned channel, unsigned index, UnitHealth next,
                       double now_ns)
{
    Unit &u = unit(channel, index);
    if (u.state == next)
        return;
    if (trace_) {
        trace_->setProcessName(kTracePidSdc, "sdc");
        trace_->setThreadName(kTracePidSdc, static_cast<int>(channel),
                              "ch" + std::to_string(channel));
        // Non-healthy intervals render as spans; the instant marks the
        // edge so single-event zooms still show what happened.
        if (u.state != UnitHealth::Healthy && now_ns > u.stateSinceNs) {
            trace_->span(kTracePidSdc, static_cast<int>(channel),
                         "u" + std::to_string(index) + " " +
                             unitHealthName(u.state),
                         "health", u.stateSinceNs,
                         now_ns - u.stateSinceNs);
        }
        trace_->instant(kTracePidSdc, static_cast<int>(channel),
                        "u" + std::to_string(index) + " -> " +
                            unitHealthName(next),
                        "health", now_ns);
    }
    stats_.add(std::string("transition.") + unitHealthName(next));
    u.state = next;
    u.stateSinceNs = now_ns;
    if (next == UnitHealth::Quarantined) {
        ++quarantines_;
        stats_.add("quarantines");
        u.probationAtNs = now_ns + config_.probationDelayNs;
        u.canaryOk = 0;
        u.window.clear();
        u.windowErrors = 0;
    } else if (next == UnitHealth::Probation) {
        u.canaryOk = 0;
    } else if (next == UnitHealth::Healthy) {
        u.window.clear();
        u.windowErrors = 0;
    }
}

void
SdcMonitor::recordOutcome(unsigned channel, unsigned index, bool sdc,
                          double now_ns)
{
    Unit &u = unit(channel, index);
    // Outcomes reaching a fenced-off unit (a kernel already in flight
    // when the quarantine landed) must not fight the canary flow.
    if (u.state == UnitHealth::Quarantined ||
        u.state == UnitHealth::Probation)
        return;
    u.window.push_back(sdc);
    if (sdc)
        ++u.windowErrors;
    while (u.window.size() > config_.window) {
        if (u.window.front())
            --u.windowErrors;
        u.window.pop_front();
    }
    const double s = scoreOf(u);
    if (s >= config_.quarantineScore) {
        transition(channel, index, UnitHealth::Quarantined, now_ns);
    } else if (s >= config_.suspectScore) {
        transition(channel, index, UnitHealth::Suspect, now_ns);
    } else if (u.state == UnitHealth::Suspect) {
        transition(channel, index, UnitHealth::Healthy, now_ns);
    }
}

void
SdcMonitor::recordClean(unsigned channel, unsigned unit_index,
                        double now_ns)
{
    stats_.add("clean");
    recordOutcome(channel, unit_index, false, now_ns);
}

void
SdcMonitor::recordDetected(unsigned channel, unsigned unit_index,
                           double now_ns)
{
    ++detected_;
    stats_.add("detected");
    if (trace_) {
        trace_->instant(kTracePidSdc, static_cast<int>(channel),
                        "u" + std::to_string(unit_index) + " detect",
                        "abft", now_ns);
    }
}

void
SdcMonitor::recordConfirmed(unsigned channel, unsigned unit_index,
                            double now_ns)
{
    ++confirmed_;
    stats_.add("confirmed");
    if (trace_) {
        trace_->instant(kTracePidSdc, static_cast<int>(channel),
                        "u" + std::to_string(unit_index) + " confirm",
                        "abft", now_ns);
    }
    recordOutcome(channel, unit_index, true, now_ns);
}

void
SdcMonitor::recordFalseAlarm(unsigned channel, unsigned unit_index,
                             double now_ns)
{
    ++falseAlarms_;
    stats_.add("falseAlarm");
    recordOutcome(channel, unit_index, false, now_ns);
}

void
SdcMonitor::advanceTo(double now_ns)
{
    for (unsigned ch = 0; ch < channels_; ++ch) {
        for (unsigned u = 0; u < unitsPerChannel_; ++u) {
            Unit &target = unit(ch, u);
            if (target.state == UnitHealth::Quarantined &&
                target.probationAtNs <= now_ns)
                transition(ch, u, UnitHealth::Probation,
                           std::max(target.probationAtNs, now_ns));
        }
    }
}

double
SdcMonitor::nextEventNs() const
{
    double next = std::numeric_limits<double>::infinity();
    for (const Unit &u : units_) {
        if (u.state == UnitHealth::Quarantined)
            next = std::min(next, u.probationAtNs);
    }
    return next;
}

void
SdcMonitor::recordCanary(unsigned channel, unsigned unit_index, bool ok,
                         double now_ns)
{
    Unit &u = unit(channel, unit_index);
    PIMSIM_ASSERT(u.state == UnitHealth::Probation,
                  "canary outcome for a unit not on probation (",
                  unitHealthName(u.state), ")");
    stats_.add(ok ? "canaryOk" : "canaryFailed");
    if (!ok) {
        transition(channel, unit_index, UnitHealth::Quarantined, now_ns);
        return;
    }
    if (++u.canaryOk >= config_.probationCanaries) {
        ++readmits_;
        stats_.add("readmits");
        transition(channel, unit_index, UnitHealth::Healthy, now_ns);
    }
}

UnitHealth
SdcMonitor::state(unsigned channel, unsigned unit_index) const
{
    return unit(channel, unit_index).state;
}

double
SdcMonitor::score(unsigned channel, unsigned unit_index) const
{
    return scoreOf(unit(channel, unit_index));
}

bool
SdcMonitor::channelWithdrawn(unsigned channel) const
{
    for (unsigned u = 0; u < unitsPerChannel_; ++u) {
        const UnitHealth s = state(channel, u);
        if (s == UnitHealth::Quarantined || s == UnitHealth::Probation)
            return true;
    }
    return false;
}

bool
SdcMonitor::channelOnProbation(unsigned channel) const
{
    for (unsigned u = 0; u < unitsPerChannel_; ++u) {
        if (state(channel, u) == UnitHealth::Probation)
            return true;
    }
    return false;
}

std::vector<unsigned>
SdcMonitor::withdrawnChannels() const
{
    std::vector<unsigned> out;
    for (unsigned ch = 0; ch < channels_; ++ch) {
        if (channelWithdrawn(ch))
            out.push_back(ch);
    }
    return out;
}

} // namespace pimsim
