/**
 * @file
 * Deterministic fault-injection campaigns over a PimSystem.
 *
 * Models the device-level fault classes a reliability study of the
 * paper's PIM-HBM cares about:
 *
 *  - transient single-bit flips in the DRAM arrays (particle strikes /
 *    retention failures) — repaired by on-die SEC-DED or the scrubber;
 *  - stuck-at cells (manufacturing / wear-out defects) — re-corrupt the
 *    array after every write, so scrubbing cannot permanently clear them;
 *  - burst errors — several flips clustered in a short span, the pattern
 *    that defeats a per-word SEC-DED code (uncorrectable);
 *  - bit flips in the PIM execution units' register files (GRF/SRF/CRF),
 *    which have no ECC — CRF corruption yields illegal instructions the
 *    decode stage must detect rather than crash on.
 *
 * All randomness flows from the repo's deterministic Rng: a campaign with
 * the same seed, rates and target system injects exactly the same faults.
 */

#ifndef PIMSIM_RELIABILITY_FAULT_INJECTOR_H
#define PIMSIM_RELIABILITY_FAULT_INJECTOR_H

#include <cstdint>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace pimsim {

class PimSystem;

/**
 * Expected fault counts per injection step, by region. Values above 1
 * inject multiple faults per step; fractional parts are resolved by a
 * Bernoulli draw, so long campaigns converge to the configured rate.
 */
struct FaultRates
{
    double dramTransient = 0.0; ///< single-bit flips in DRAM arrays
    double dramStuck = 0.0;     ///< new stuck-at cells in DRAM arrays
    double dramBurst = 0.0;     ///< clustered multi-bit array faults
    double pimGrf = 0.0;        ///< GRF lane bit flips
    double pimSrf = 0.0;        ///< SRF scalar bit flips
    double pimCrf = 0.0;        ///< CRF instruction-word bit flips

    bool any() const
    {
        return dramTransient > 0 || dramStuck > 0 || dramBurst > 0 ||
               pimGrf > 0 || pimSrf > 0 || pimCrf > 0;
    }
};

/** Running totals of injected faults, by class. */
struct FaultCounts
{
    std::uint64_t dramTransient = 0;
    std::uint64_t dramStuck = 0;
    std::uint64_t dramBurst = 0;
    std::uint64_t pimGrf = 0;
    std::uint64_t pimSrf = 0;
    std::uint64_t pimCrf = 0;

    std::uint64_t total() const
    {
        return dramTransient + dramStuck + dramBurst + pimGrf + pimSrf +
               pimCrf;
    }
};

/**
 * Injects faults into a live PimSystem and schedules injections over
 * simulated time (the campaign controller).
 */
class FaultInjector
{
  public:
    FaultInjector(PimSystem &system, const FaultRates &rates,
                  std::uint64_t seed);

    /**
     * Perform one injection step: draw a fault count for every region
     * from its rate and plant the faults. DRAM faults only target rows
     * that are currently allocated (touched) — faults in never-written
     * rows are invisible to any workload and would only dilute the
     * campaign.
     */
    void step();

    /**
     * Run a campaign: `steps` times, advance simulated time by
     * `interval` cycles and perform one injection step.
     */
    void runCampaign(Cycle interval, unsigned steps);

    /**
     * Plant exactly one uncorrectable (SEC-DED-defeating) DRAM burst
     * fault, independent of the configured rates. External campaign
     * drivers — the serving layer's ChaosCampaign — use this to mirror
     * their fault events into the live device.
     * @return false when no channel has an allocated row to corrupt.
     */
    bool injectUncorrectableBurst();

    const FaultRates &rates() const { return rates_; }
    const FaultCounts &counts() const { return counts_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    /** Number of faults to inject this step for a given rate. */
    unsigned drawCount(double rate);

    /**
     * Pick a random allocated DRAM burst across all channels.
     * @return false if no channel has any allocated row yet.
     */
    bool pickDramBurst(unsigned &channel, unsigned &bank, unsigned &row,
                       unsigned &col);

    void injectDramTransient();
    void injectDramStuck();
    void injectDramBurst();
    void injectPimGrf();
    void injectPimSrf();
    void injectPimCrf();

    /** Pick a random PIM unit. @return false if the device has no PIM. */
    bool pickPimUnit(unsigned &channel, unsigned &unit);

    PimSystem &system_;
    FaultRates rates_;
    Rng rng_;
    FaultCounts counts_;
    StatGroup stats_;
};

} // namespace pimsim

#endif // PIMSIM_RELIABILITY_FAULT_INJECTOR_H
