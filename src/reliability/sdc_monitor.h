/**
 * @file
 * Online silent-data-corruption localization over (channel, PIM unit).
 *
 * The ABFT layer (PimBlas checksum verification) classifies each kernel
 * tile outcome as clean, detected (checksum tripped), confirmed (golden
 * recompute disagreed — a real SDC) or false alarm (golden agreed). The
 * monitor attributes those outcomes to the (channel, unit) that produced
 * the tile and maintains a per-unit sliding outcome window, driving a
 * device-local health state machine shaped like the cluster
 * HealthTracker:
 *
 *   healthy -> suspect      window error score >= suspectScore
 *   suspect -> quarantined  window error score >= quarantineScore
 *   suspect -> healthy      score drops back below suspectScore
 *   quarantined -> probation  cool-down expired (advanceTo)
 *   probation -> healthy    probationCanaries verified canary kernels
 *   probation -> quarantined  a canary failed (cool-down restarts)
 *
 * A channel is withdrawn from serving while any of its units is
 * quarantined or on probation; the serving layer replans shards around
 * withdrawn channels and runs canaries behind the fence. Everything is
 * deterministic: state is a pure function of the recorded sequence.
 */

#ifndef PIMSIM_RELIABILITY_SDC_MONITOR_H
#define PIMSIM_RELIABILITY_SDC_MONITOR_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.h"

namespace pimsim {

class TraceSession;

/** Per-unit health states (see file comment for the transitions). */
enum class UnitHealth
{
    Healthy,
    Suspect,
    Quarantined,
    Probation,
};

const char *unitHealthName(UnitHealth state);

/** Quarantine thresholds and probation policy. */
struct SdcMonitorConfig
{
    /** Sliding window of most recent verified tile outcomes per unit. */
    unsigned window = 32;
    /** Outcomes required in the window before scores are acted on. */
    unsigned minSamples = 4;
    /** Error fraction at or above which a unit becomes suspect. */
    double suspectScore = 0.25;
    /** Error fraction at or above which a unit is quarantined. */
    double quarantineScore = 0.5;
    /** Cool-down after quarantine before probation canaries start. */
    double probationDelayNs = 5'000'000.0;
    /** Consecutive verified canaries required to re-admit a unit. */
    unsigned probationCanaries = 3;

    /**
     * Assert the configuration is sane (window > 0, minSamples in
     * [1, window], 0 < suspectScore < quarantineScore <= 1, canary count
     * >= 1, non-negative cool-down). Engines call this when the monitor
     * is installed so a bad config fails at setup, not mid-campaign.
     */
    void validate() const;
};

/** Windowed SDC scores and quarantine state per (channel, unit). */
class SdcMonitor
{
  public:
    SdcMonitor(unsigned channels, unsigned units_per_channel,
               const SdcMonitorConfig &config);

    // ---- Verified kernel-tile outcomes (the ABFT layer's feed) ----
    /** Checksum verified, no mismatch. */
    void recordClean(unsigned channel, unsigned unit, double now_ns);
    /** Checksum mismatch, before golden confirmation. */
    void recordDetected(unsigned channel, unsigned unit, double now_ns);
    /** Golden recompute disagreed: a real silent corruption. */
    void recordConfirmed(unsigned channel, unsigned unit, double now_ns);
    /** Golden recompute agreed: the checksum band tripped spuriously. */
    void recordFalseAlarm(unsigned channel, unsigned unit, double now_ns);

    // ---- Probation flow ----
    /** Move quarantined units whose cool-down expired to probation. */
    void advanceTo(double now_ns);
    /** Earliest pending probation entry (+inf when none). */
    double nextEventNs() const;
    /** Report one canary kernel outcome for a unit on probation. */
    void recordCanary(unsigned channel, unsigned unit, bool ok,
                      double now_ns);

    UnitHealth state(unsigned channel, unsigned unit) const;
    /** Window error fraction (0 until minSamples outcomes arrive). */
    double score(unsigned channel, unsigned unit) const;

    /** True while any unit of `channel` is quarantined or on probation. */
    bool channelWithdrawn(unsigned channel) const;
    /** Channels currently withdrawn, ascending. */
    std::vector<unsigned> withdrawnChannels() const;
    /** True while any unit of `channel` is on probation (canaries due). */
    bool channelOnProbation(unsigned channel) const;

    std::uint64_t detected() const { return detected_; }
    std::uint64_t confirmed() const { return confirmed_; }
    std::uint64_t falseAlarms() const { return falseAlarms_; }
    std::uint64_t quarantines() const { return quarantines_; }
    std::uint64_t readmits() const { return readmits_; }

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_);
    }
    unsigned unitsPerChannel() const { return unitsPerChannel_; }
    const SdcMonitorConfig &config() const { return config_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Record unit health transitions on the pid-8 `sdc` track of a
     * Chrome-trace session (nullptr disables): one tid per channel,
     * spans for non-healthy intervals, instants for detect / confirm /
     * quarantine / re-admit events.
     */
    void setTrace(TraceSession *session) { trace_ = session; }

  private:
    struct Unit
    {
        UnitHealth state = UnitHealth::Healthy;
        std::deque<bool> window; ///< true = confirmed SDC
        unsigned windowErrors = 0;
        double probationAtNs = 0.0; ///< cool-down expiry when quarantined
        unsigned canaryOk = 0;
        double stateSinceNs = 0.0;
    };

    Unit &unit(unsigned channel, unsigned index);
    const Unit &unit(unsigned channel, unsigned index) const;
    /** Push one outcome and run the score-driven transitions. */
    void recordOutcome(unsigned channel, unsigned index, bool sdc,
                       double now_ns);
    void transition(unsigned channel, unsigned index, UnitHealth next,
                    double now_ns);
    double scoreOf(const Unit &u) const;

    unsigned channels_;
    unsigned unitsPerChannel_;
    SdcMonitorConfig config_;
    std::vector<Unit> units_; ///< channel-major [channel * units + unit]

    std::uint64_t detected_ = 0;
    std::uint64_t confirmed_ = 0;
    std::uint64_t falseAlarms_ = 0;
    std::uint64_t quarantines_ = 0;
    std::uint64_t readmits_ = 0;

    StatGroup stats_;
    TraceSession *trace_ = nullptr;
};

} // namespace pimsim

#endif // PIMSIM_RELIABILITY_SDC_MONITOR_H
