#include "reliability/fault_injector.h"

#include <vector>

#include "common/logging.h"
#include "dram/datastore.h"
#include "pim/pim_channel.h"
#include "sim/system.h"

namespace pimsim {

FaultInjector::FaultInjector(PimSystem &system, const FaultRates &rates,
                             std::uint64_t seed)
    : system_(system), rates_(rates), rng_(seed), stats_("faultInjector")
{
}

unsigned
FaultInjector::drawCount(double rate)
{
    if (rate <= 0.0)
        return 0;
    const auto whole = static_cast<unsigned>(rate);
    const double frac = rate - whole;
    return whole + (rng_.nextDouble() < frac ? 1u : 0u);
}

bool
FaultInjector::pickDramBurst(unsigned &channel, unsigned &bank,
                             unsigned &row, unsigned &col)
{
    // Weight channels by their allocated-row count so faults land
    // uniformly over touched storage, not uniformly over channels.
    const unsigned channels = system_.numChannels();
    std::vector<std::size_t> rowCount(channels, 0);
    std::size_t total = 0;
    for (unsigned ch = 0; ch < channels; ++ch) {
        rowCount[ch] =
            system_.controller(ch).channel().dataStore().allocatedRows()
                .size();
        total += rowCount[ch];
    }
    if (total == 0)
        return false;

    std::size_t pick = rng_.nextBelow(total);
    unsigned ch = 0;
    while (pick >= rowCount[ch]) {
        pick -= rowCount[ch];
        ++ch;
    }
    const auto rows =
        system_.controller(ch).channel().dataStore().allocatedRows();
    channel = ch;
    bank = rows[pick].first;
    row = rows[pick].second;
    col = static_cast<unsigned>(
        rng_.nextBelow(system_.config().geometry.colsPerRow));
    return true;
}

bool
FaultInjector::pickPimUnit(unsigned &channel, unsigned &unit)
{
    if (!system_.config().withPim())
        return false;
    channel = static_cast<unsigned>(rng_.nextBelow(system_.numChannels()));
    PimChannel *pim = system_.controller(channel).pim();
    if (!pim || pim->numUnits() == 0)
        return false;
    unit = static_cast<unsigned>(rng_.nextBelow(pim->numUnits()));
    return true;
}

void
FaultInjector::injectDramTransient()
{
    unsigned ch, bank, row, col;
    if (!pickDramBurst(ch, bank, row, col))
        return;
    const auto bit = static_cast<unsigned>(rng_.nextBelow(kBurstBytes * 8));
    system_.controller(ch).channel().dataStore().injectBitFlip(bank, row,
                                                               col, bit);
    ++counts_.dramTransient;
    stats_.add("dramTransient");
}

void
FaultInjector::injectDramStuck()
{
    unsigned ch, bank, row, col;
    if (!pickDramBurst(ch, bank, row, col))
        return;
    const auto bit = static_cast<unsigned>(rng_.nextBelow(kBurstBytes * 8));
    const bool value = (rng_.next() & 1) != 0;
    system_.controller(ch).channel().dataStore().setStuckBit(bank, row, col,
                                                             bit, value);
    ++counts_.dramStuck;
    stats_.add("dramStuck");
}

void
FaultInjector::injectDramBurst()
{
    unsigned ch, bank, row, col;
    if (!pickDramBurst(ch, bank, row, col))
        return;
    // Three flips clustered in an 8-bit span: guaranteed to put at least
    // two errors into one 64-bit ECC word, defeating SEC-DED.
    const auto base =
        static_cast<unsigned>(rng_.nextBelow(kBurstBytes * 8 - 8));
    DataStore &store = system_.controller(ch).channel().dataStore();
    unsigned planted = 0;
    unsigned offset = 0;
    while (planted < 3 && offset < 8) {
        if (planted == 0 || (rng_.next() & 1) != 0) {
            store.injectBitFlip(bank, row, col, base + offset);
            ++planted;
        }
        ++offset;
    }
    ++counts_.dramBurst;
    stats_.add("dramBurst");
}

void
FaultInjector::injectPimGrf()
{
    unsigned ch, unit;
    if (!pickPimUnit(ch, unit))
        return;
    PimRegisterFile &regs = system_.controller(ch).pim()->unit(unit).regs();
    const auto half = static_cast<unsigned>(rng_.nextBelow(2));
    const auto index =
        static_cast<unsigned>(rng_.nextBelow(regs.grfPerHalf()));
    const auto bit =
        static_cast<unsigned>(rng_.nextBelow(kSimdLanes * 16));
    regs.flipGrfBit(half, index, bit);
    ++counts_.pimGrf;
    stats_.add("pimGrf");
}

void
FaultInjector::injectPimSrf()
{
    unsigned ch, unit;
    if (!pickPimUnit(ch, unit))
        return;
    PimRegisterFile &regs = system_.controller(ch).pim()->unit(unit).regs();
    const auto file = static_cast<unsigned>(rng_.nextBelow(2));
    const auto index =
        static_cast<unsigned>(rng_.nextBelow(regs.srfPerFile()));
    const auto bit = static_cast<unsigned>(rng_.nextBelow(16));
    regs.flipSrfBit(file, index, bit);
    ++counts_.pimSrf;
    stats_.add("pimSrf");
}

void
FaultInjector::injectPimCrf()
{
    unsigned ch, unit;
    if (!pickPimUnit(ch, unit))
        return;
    PimRegisterFile &regs = system_.controller(ch).pim()->unit(unit).regs();
    const auto index =
        static_cast<unsigned>(rng_.nextBelow(regs.crfEntries()));
    const auto bit = static_cast<unsigned>(rng_.nextBelow(32));
    regs.flipCrfBit(index, bit);
    ++counts_.pimCrf;
    stats_.add("pimCrf");
}

bool
FaultInjector::injectUncorrectableBurst()
{
    const std::uint64_t before = counts_.dramBurst;
    injectDramBurst();
    return counts_.dramBurst != before;
}

void
FaultInjector::step()
{
    stats_.add("steps");
    for (unsigned n = drawCount(rates_.dramTransient); n > 0; --n)
        injectDramTransient();
    for (unsigned n = drawCount(rates_.dramStuck); n > 0; --n)
        injectDramStuck();
    for (unsigned n = drawCount(rates_.dramBurst); n > 0; --n)
        injectDramBurst();
    for (unsigned n = drawCount(rates_.pimGrf); n > 0; --n)
        injectPimGrf();
    for (unsigned n = drawCount(rates_.pimSrf); n > 0; --n)
        injectPimSrf();
    for (unsigned n = drawCount(rates_.pimCrf); n > 0; --n)
        injectPimCrf();
}

void
FaultInjector::runCampaign(Cycle interval, unsigned steps)
{
    PIMSIM_INFORM("fault campaign: ", steps, " steps every ", interval,
                  " cycles");
    for (unsigned s = 0; s < steps; ++s) {
        system_.advance(interval);
        step();
    }
}

} // namespace pimsim
