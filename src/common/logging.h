/**
 * @file
 * Status and error reporting in the gem5 spirit.
 *
 * - panic():  a simulator bug; something that must never happen. Aborts.
 * - fatal():  a user error (bad configuration, invalid arguments). Exits 1.
 * - warn():   suspicious but survivable condition.
 * - inform(): plain status output.
 */

#ifndef PIMSIM_COMMON_LOGGING_H
#define PIMSIM_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace pimsim {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Globally silence warn()/inform() (used by benches to keep output clean). */
void setQuiet(bool quiet);
bool isQuiet();

namespace detail {

inline std::string
formatMessage()
{
    return {};
}

template <typename T, typename... Rest>
std::string
formatMessage(const T &first, const Rest &...rest)
{
    std::ostringstream os;
    os << first;
    return os.str() + formatMessage(rest...);
}

} // namespace detail
} // namespace pimsim

#define PIMSIM_PANIC(...)                                                     \
    ::pimsim::panicImpl(__FILE__, __LINE__,                                   \
                        ::pimsim::detail::formatMessage(__VA_ARGS__))

#define PIMSIM_FATAL(...)                                                     \
    ::pimsim::fatalImpl(__FILE__, __LINE__,                                   \
                        ::pimsim::detail::formatMessage(__VA_ARGS__))

#define PIMSIM_WARN(...)                                                      \
    ::pimsim::warnImpl(::pimsim::detail::formatMessage(__VA_ARGS__))

#define PIMSIM_INFORM(...)                                                    \
    ::pimsim::informImpl(::pimsim::detail::formatMessage(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define PIMSIM_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            PIMSIM_PANIC("assertion failed: " #cond " ",                      \
                         ::pimsim::detail::formatMessage(__VA_ARGS__));       \
        }                                                                     \
    } while (0)

#endif // PIMSIM_COMMON_LOGGING_H
