/**
 * @file
 * Lightweight statistics collection.
 *
 * Every simulated object owns a StatGroup; stats are named counters or
 * scalars that can be dumped in a stable order. Histograms support the
 * latency distributions used by the benches.
 */

#ifndef PIMSIM_COMMON_STATS_H
#define PIMSIM_COMMON_STATS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace pimsim {

/** A named set of counters/scalars with hierarchical dotted names. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = {}) : name_(std::move(name)) {}

    /** Add delta to a counter, creating it at zero on first use. */
    void add(const std::string &stat, std::uint64_t delta = 1)
    {
        counters_[stat] += delta;
    }

    /** Set a floating-point scalar stat. */
    void set(const std::string &stat, double value) { scalars_[stat] = value; }

    /** Add delta to a floating-point scalar stat. */
    void addScalar(const std::string &stat, double delta)
    {
        scalars_[stat] += delta;
    }

    /** Current value of a counter (0 if never touched). */
    std::uint64_t counter(const std::string &stat) const
    {
        auto it = counters_.find(stat);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Current value of a scalar (0.0 if never touched). */
    double scalar(const std::string &stat) const
    {
        auto it = scalars_.find(stat);
        return it == scalars_.end() ? 0.0 : it->second;
    }

    /**
     * Register a histogram the group reports alongside its counters.
     * Non-owning: the histogram must outlive the group (or be
     * re-registered). reset() clears registered histograms too, so a
     * long-lived engine can reuse one group across measurement windows.
     */
    void registerHistogram(const std::string &stat, class Histogram *hist);

    /** A registered histogram by name (nullptr if absent). */
    class Histogram *histogram(const std::string &stat) const;

    /**
     * Reset all counters and scalars to zero and clear every registered
     * histogram (names are kept).
     */
    void reset();

    /** Merge another group's stats into this one (sums). */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &scalars() const { return scalars_; }
    const std::map<std::string, class Histogram *> &histograms() const
    {
        return histograms_;
    }

    /** Print "group.stat value" lines in sorted order. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, class Histogram *> histograms_;
};

/** Simple fixed-bucket histogram for latency distributions. */
class Histogram
{
  public:
    /**
     * A sampled value annotated with the trace id of the request that
     * produced it — the OpenMetrics "exemplar" idea: a histogram bucket
     * links to a concrete trace showing *why* a sample landed there.
     */
    struct Exemplar
    {
        std::uint64_t value = 0;
        std::uint64_t traceId = 0;
    };

    /** Buckets [0,width), [width,2*width), ...; overflow collects the rest. */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void sample(std::uint64_t value);

    /**
     * sample() plus an exemplar: remember up to kExemplarsPerBucket
     * recent (value, trace_id) pairs for the bucket the value lands in
     * (newest overwrites oldest). trace_id 0 records no exemplar.
     */
    void sample(std::uint64_t value, std::uint64_t trace_id);

    /**
     * Drop every exemplar whose trace id is not in `kept` — called
     * after tail-based sampling decides which traces survive, so a
     * stats dump never links to a trace that was discarded.
     */
    void retainExemplars(const std::unordered_set<std::uint64_t> &kept);

    /**
     * Exemplars by bucket index (buckets().size() = the overflow
     * bucket), insertion-ordered oldest first within a bucket.
     */
    const std::map<std::size_t, std::vector<Exemplar>> &exemplars() const
    {
        return exemplars_;
    }

    static constexpr std::size_t kExemplarsPerBucket = 2;

    /**
     * Forget every sample (bucket counts, overflow, min/max/sum); the
     * bucket shape is kept. Long-lived engines reuse histograms across
     * measurement windows — without this, stale samples accumulate.
     */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;

    /**
     * Approximate p-th percentile (p in (0, 1], e.g. 0.99) by linear
     * interpolation inside the owning bucket, clamped to [min, max].
     * Samples that landed in the overflow bucket resolve to max().
     * An empty histogram reports 0.
     */
    double percentile(double p) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }


    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }

    void dump(std::ostream &os) const;

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::map<std::size_t, std::vector<Exemplar>> exemplars_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace pimsim

#endif // PIMSIM_COMMON_STATS_H
