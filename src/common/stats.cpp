#include "common/stats.h"

#include <algorithm>
#include <ostream>

namespace pimsim {

void
StatGroup::registerHistogram(const std::string &stat, Histogram *hist)
{
    histograms_[stat] = hist;
}

Histogram *
StatGroup::histogram(const std::string &stat) const
{
    auto it = histograms_.find(stat);
    return it == histograms_.end() ? nullptr : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
    for (auto &kv : scalars_)
        kv.second = 0.0;
    for (auto &kv : histograms_) {
        if (kv.second)
            kv.second->reset();
    }
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto &kv : other.scalars_)
        scalars_[kv.first] += kv.second;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = name_.empty() ? "" : name_ + ".";
    for (const auto &kv : counters_)
        os << prefix << kv.first << " " << kv.second << "\n";
    for (const auto &kv : scalars_)
        os << prefix << kv.first << " " << kv.second << "\n";
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width ? bucket_width : 1), buckets_(num_buckets, 0)
{
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    exemplars_.clear();
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

void
Histogram::sample(std::uint64_t value)
{
    const std::size_t idx = value / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Histogram::sample(std::uint64_t value, std::uint64_t trace_id)
{
    sample(value);
    if (trace_id == 0)
        return;
    const std::size_t idx =
        std::min(static_cast<std::size_t>(value / bucketWidth_),
                 buckets_.size()); // buckets_.size() = overflow bucket
    auto &slot = exemplars_[idx];
    if (slot.size() >= kExemplarsPerBucket)
        slot.erase(slot.begin());
    slot.push_back(Exemplar{value, trace_id});
}

void
Histogram::retainExemplars(const std::unordered_set<std::uint64_t> &kept)
{
    for (auto it = exemplars_.begin(); it != exemplars_.end();) {
        auto &slot = it->second;
        slot.erase(std::remove_if(slot.begin(), slot.end(),
                                  [&](const Exemplar &e) {
                                      return kept.count(e.traceId) == 0;
                                  }),
                   slot.end());
        if (slot.empty())
            it = exemplars_.erase(it);
        else
            ++it;
    }
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    // Rank of the percentile sample, 1-based (nearest-rank definition).
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p * static_cast<double>(count_) + 0.5));

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (cumulative + buckets_[i] >= rank) {
            // Interpolate the rank's position within this bucket.
            const double within =
                static_cast<double>(rank - cumulative) /
                static_cast<double>(buckets_[i]);
            const double value =
                static_cast<double>(i * bucketWidth_) +
                within * static_cast<double>(bucketWidth_);
            return std::min(std::max(value, static_cast<double>(min())),
                            static_cast<double>(max_));
        }
        cumulative += buckets_[i];
    }
    // The rank fell into the overflow bucket.
    return static_cast<double>(max_);
}

void
Histogram::dump(std::ostream &os) const
{
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i]) {
            os << "[" << i * bucketWidth_ << "," << (i + 1) * bucketWidth_
               << ") " << buckets_[i] << "\n";
        }
    }
    if (overflow_)
        os << "[overflow) " << overflow_ << "\n";
}

} // namespace pimsim
