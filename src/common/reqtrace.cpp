#include "common/reqtrace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace pimsim {

namespace {

/** One SplitMix64 step: a stateless 64-bit mix of (traceId ^ seed). */
std::uint64_t
mix64(std::uint64_t x)
{
    return SplitMix64(x).next();
}

} // namespace

RequestTraceContext
RequestTracer::begin(double ts_ns)
{
    (void)ts_ns; // admission time is recorded by the root span itself
    RequestTraceContext ctx;
    ctx.traceId = nextTraceId_++;
    ctx.spanId = nextSpanId_++;
    ctx.parentSpanId = 0;
    TraceBuffer buf;
    buf.rootSpanId = ctx.spanId;
    active_.emplace(ctx.traceId, std::move(buf));
    ++tracesStarted_;
    return ctx;
}

RequestTraceContext
RequestTracer::child(const RequestTraceContext &parent)
{
    if (!parent.active())
        return {};
    RequestTraceContext ctx;
    ctx.traceId = parent.traceId;
    ctx.spanId = nextSpanId_++;
    ctx.parentSpanId = parent.spanId;
    return ctx;
}

std::uint16_t
RequestTracer::internName(const std::string &name)
{
    auto it = nameIds_.find(name);
    if (it != nameIds_.end())
        return it->second;
    PIMSIM_ASSERT(names_.size() < 0xFFFF,
                  "RequestTracer name-intern table overflow");
    const auto id = static_cast<std::uint16_t>(names_.size());
    names_.push_back(name);
    nameIds_.emplace(name, id);
    return id;
}

std::uint8_t
RequestTracer::internCat(const std::string &cat)
{
    auto it = catIds_.find(cat);
    if (it != catIds_.end())
        return it->second;
    PIMSIM_ASSERT(cats_.size() < 0xFF,
                  "RequestTracer category-intern table overflow");
    const auto id = static_cast<std::uint8_t>(cats_.size());
    cats_.push_back(cat);
    catIds_.emplace(cat, id);
    return id;
}

void
RequestTracer::buffer(const RequestTraceContext &ctx,
                      TraceEvent::Phase phase, int pid, int tid,
                      const std::string &name, const std::string &cat,
                      double ts_ns, double dur_ns, std::uint32_t flow_id)
{
    if (!ctx.active())
        return;
    auto it = active_.find(ctx.traceId);
    if (it == active_.end())
        return; // already terminal (or never begun): drop silently
    TraceBuffer &buf = it->second;
    if (buf.events.size() >= config_.maxEventsPerTrace) {
        ++buf.truncated;
        ++eventsTruncated_;
        return;
    }
    BufferedEvent e;
    e.tsNs = ts_ns;
    e.durNs = dur_ns;
    e.spanId = ctx.spanId;
    e.parentSpanId = ctx.parentSpanId;
    e.flowId = flow_id;
    e.nameId = internName(name);
    e.catId = internCat(cat);
    e.phase = static_cast<std::uint8_t>(phase);
    buf.events.push_back(e);
    buf.tracks.push_back(static_cast<std::uint32_t>(pid) << 16 |
                         (static_cast<std::uint32_t>(tid) & 0xFFFF));
    ++eventsBuffered_;
    ++eventsLive_;
}

void
RequestTracer::span(const RequestTraceContext &ctx, int pid, int tid,
                    const std::string &name, const std::string &cat,
                    double start_ns, double dur_ns)
{
    buffer(ctx, TraceEvent::Phase::Complete, pid, tid, name, cat,
           start_ns, dur_ns, 0);
}

void
RequestTracer::instant(const RequestTraceContext &ctx, int pid, int tid,
                       const std::string &name, const std::string &cat,
                       double ts_ns)
{
    buffer(ctx, TraceEvent::Phase::Instant, pid, tid, name, cat, ts_ns,
           0.0, 0);
}

void
RequestTracer::flow(const RequestTraceContext &ctx,
                    const std::string &name, int src_pid, int src_tid,
                    double src_ts_ns, int dst_pid, int dst_tid,
                    double dst_ts_ns)
{
    if (!ctx.active())
        return;
    const std::uint32_t id = nextFlowId_++;
    buffer(ctx, TraceEvent::Phase::FlowStart, src_pid, src_tid, name,
           "flow", src_ts_ns, 0.0, id);
    buffer(ctx, TraceEvent::Phase::FlowEnd, dst_pid, dst_tid, name,
           "flow", dst_ts_ns, 0.0, id);
}

bool
RequestTracer::headSampled(std::uint64_t trace_id) const
{
    if (config_.headSampleRate <= 0.0)
        return false;
    if (config_.headSampleRate >= 1.0)
        return true;
    // Top 53 bits as a uniform double in [0, 1): stateless, so the
    // decision depends only on (traceId, seed) — replay-stable.
    const double u =
        static_cast<double>(mix64(trace_id ^ config_.seed) >> 11) *
        0x1.0p-53;
    return u < config_.headSampleRate;
}

void
RequestTracer::keep(std::uint64_t trace_id, TraceBuffer &&buf)
{
    keptIds_.insert(trace_id);
    retained_.emplace(trace_id, std::move(buf));
}

void
RequestTracer::discard(TraceBuffer &&buf)
{
    eventsLive_ -= buf.events.size();
    TraceBuffer released(std::move(buf));
    (void)released;
}

void
RequestTracer::end(const RequestTraceContext &ctx,
                   const TraceOutcome &outcome)
{
    if (!ctx.active())
        return;
    auto it = active_.find(ctx.traceId);
    if (it == active_.end())
        return; // double end()
    TraceBuffer buf = std::move(it->second);
    active_.erase(it);
    ++tracesEnded_;

    if (outcome.mustKeep()) {
        ++mustKeep_;
        keep(ctx.traceId, std::move(buf));
        return;
    }
    if (headSampled(ctx.traceId)) {
        ++headSampled_;
        keep(ctx.traceId, std::move(buf));
        return;
    }
    if (config_.slowestFraction <= 0.0) {
        discard(std::move(buf));
        return;
    }
    // Slowest-k% pool. Capacity tracks the terminal count seen so far,
    // so early in the run the pool is small and grows with it; an
    // early-evicted trace cannot re-enter, which makes the final set an
    // approximation of the true slowest-k% — but a deterministic one.
    candidates_.emplace(std::make_pair(outcome.latencyNs, ctx.traceId),
                        std::move(buf));
    const auto capacity = static_cast<std::size_t>(std::max(
        1.0, std::ceil(config_.slowestFraction *
                       static_cast<double>(tracesEnded_))));
    while (candidates_.size() > capacity) {
        auto fastest = candidates_.begin();
        discard(std::move(fastest->second));
        candidates_.erase(fastest);
    }
}

void
RequestTracer::flushTrace(
    TraceSession &session, std::uint64_t trace_id, const TraceBuffer &buf,
    std::unordered_map<std::uint32_t, std::uint64_t> &flow_remap)
{
    const std::string trace_str = std::to_string(trace_id);
    for (std::size_t i = 0; i < buf.events.size(); ++i) {
        const BufferedEvent &e = buf.events[i];
        const int pid = static_cast<int>(buf.tracks[i] >> 16);
        const int tid = static_cast<int>(buf.tracks[i] & 0xFFFF);
        const std::string &name = names_[e.nameId];
        const std::string &cat = cats_[e.catId];
        const auto phase = static_cast<TraceEvent::Phase>(e.phase);
        switch (phase) {
          case TraceEvent::Phase::Complete:
            session.span(pid, tid, name, cat, e.tsNs, e.durNs,
                         {{"trace", trace_str},
                          {"span", std::to_string(e.spanId)},
                          {"parent", std::to_string(e.parentSpanId)}});
            break;
          case TraceEvent::Phase::Instant:
            session.instant(pid, tid, name, cat, e.tsNs,
                            {{"trace", trace_str},
                             {"span", std::to_string(e.spanId)},
                             {"parent",
                              std::to_string(e.parentSpanId)}});
            break;
          case TraceEvent::Phase::FlowStart:
          case TraceEvent::Phase::FlowStep:
          case TraceEvent::Phase::FlowEnd: {
            auto [remapped, inserted] =
                flow_remap.try_emplace(e.flowId, 0);
            if (inserted)
                remapped->second = session.nextFlowId();
            if (phase == TraceEvent::Phase::FlowStart)
                session.flowStart(pid, tid, name, cat, e.tsNs,
                                  remapped->second);
            else if (phase == TraceEvent::Phase::FlowStep)
                session.flowStep(pid, tid, name, cat, e.tsNs,
                                 remapped->second);
            else
                session.flowEnd(pid, tid, name, cat, e.tsNs,
                                remapped->second);
            break;
          }
        }
        ++eventsFlushed_;
    }
    if (buf.truncated > 0) {
        session.instant(kTracePidSlo, 0, "trace-truncated", "reqtrace",
                        buf.events.empty() ? 0.0 : buf.events.back().tsNs,
                        {{"trace", trace_str},
                         {"dropped", std::to_string(buf.truncated)}});
    }
}

void
RequestTracer::flush(TraceSession &session)
{
    // Promote the surviving slowest-k% candidates.
    for (auto &[key, buf] : candidates_) {
        ++slowKept_;
        keep(key.second, std::move(buf));
    }
    candidates_.clear();

    // Emit in trace-id order so the output is replay-stable.
    std::unordered_map<std::uint32_t, std::uint64_t> flow_remap;
    for (auto &[trace_id, buf] : retained_) {
        flushTrace(session, trace_id, buf, flow_remap);
        eventsLive_ -= buf.events.size();
        buf = TraceBuffer{}; // release the buffer, keep the id
    }
    retained_.clear();
}

} // namespace pimsim
