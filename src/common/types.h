/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef PIMSIM_COMMON_TYPES_H
#define PIMSIM_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace pimsim {

/** Simulated time in memory-bus clock ticks (tCK units). */
using Cycle = std::uint64_t;

/** Physical byte address within the simulated memory space. */
using Addr = std::uint64_t;

/** Raw IEEE-754 binary16 bit pattern. */
using Fp16Bits = std::uint16_t;

/** Sentinel for "no cycle scheduled yet". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/** Bytes moved by one DRAM column command (256-bit burst). */
inline constexpr std::size_t kBurstBytes = 32;

/** FP16 lanes in one 256-bit burst / one SIMD operation. */
inline constexpr std::size_t kSimdLanes = 16;

} // namespace pimsim

#endif // PIMSIM_COMMON_TYPES_H
