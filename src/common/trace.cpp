#include "common/trace.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <ostream>

#include "common/json.h"
#include "common/logging.h"
#include "common/stats_registry.h"

namespace pimsim {

bool
TraceSession::admit()
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        selfStats_.add("eventsDropped");
        return false;
    }
    selfStats_.add("eventsRecorded");
    return true;
}

void
TraceSession::span(int pid, int tid, const std::string &name,
                   const std::string &cat, double start_ns, double dur_ns)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = TraceEvent::Phase::Complete;
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.cat = cat;
    e.tsUs = start_ns / 1e3;
    e.durUs = dur_ns / 1e3;
    events_.push_back(std::move(e));
}

void
TraceSession::span(int pid, int tid, const std::string &name,
                   const std::string &cat, double start_ns, double dur_ns,
                   const std::string &arg_key, const std::string &arg_value)
{
    span(pid, tid, name, cat, start_ns, dur_ns,
         {{arg_key, arg_value}});
}

void
TraceSession::span(int pid, int tid, const std::string &name,
                   const std::string &cat, double start_ns, double dur_ns,
                   std::vector<std::pair<std::string, std::string>> args)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = TraceEvent::Phase::Complete;
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.cat = cat;
    e.tsUs = start_ns / 1e3;
    e.durUs = dur_ns / 1e3;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSession::instant(int pid, int tid, const std::string &name,
                      const std::string &cat, double ts_ns)
{
    instant(pid, tid, name, cat, ts_ns, {});
}

void
TraceSession::instant(int pid, int tid, const std::string &name,
                      const std::string &cat, double ts_ns,
                      std::vector<std::pair<std::string, std::string>> args)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = TraceEvent::Phase::Instant;
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.cat = cat;
    e.tsUs = ts_ns / 1e3;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSession::flow(TraceEvent::Phase phase, int pid, int tid,
                   const std::string &name, const std::string &cat,
                   double ts_ns, std::uint64_t flow_id)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = phase;
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.cat = cat;
    e.tsUs = ts_ns / 1e3;
    e.flowId = flow_id;
    events_.push_back(std::move(e));
}

void
TraceSession::flowStart(int pid, int tid, const std::string &name,
                        const std::string &cat, double ts_ns,
                        std::uint64_t flow_id)
{
    flow(TraceEvent::Phase::FlowStart, pid, tid, name, cat, ts_ns, flow_id);
}

void
TraceSession::flowStep(int pid, int tid, const std::string &name,
                       const std::string &cat, double ts_ns,
                       std::uint64_t flow_id)
{
    flow(TraceEvent::Phase::FlowStep, pid, tid, name, cat, ts_ns, flow_id);
}

void
TraceSession::flowEnd(int pid, int tid, const std::string &name,
                      const std::string &cat, double ts_ns,
                      std::uint64_t flow_id)
{
    flow(TraceEvent::Phase::FlowEnd, pid, tid, name, cat, ts_ns, flow_id);
}

void
TraceSession::append(std::vector<TraceEvent> &&events,
                     std::uint64_t upstream_dropped)
{
    if (upstream_dropped) {
        dropped_ += upstream_dropped;
        selfStats_.add("eventsDropped", upstream_dropped);
    }
    for (auto &e : events) {
        if (!admit())
            continue;
        events_.push_back(std::move(e));
    }
}

std::vector<TraceEvent>
TraceSession::takeEvents()
{
    std::vector<TraceEvent> out = std::move(events_);
    events_.clear();
    return out;
}

std::uint64_t
TraceSession::takeDropped()
{
    const std::uint64_t out = dropped_;
    dropped_ = 0;
    return out;
}

void
TraceSession::setProcessName(int pid, const std::string &name)
{
    processNames_[pid] = name;
}

void
TraceSession::setThreadName(int pid, int tid, const std::string &name)
{
    threadNames_[{pid, tid}] = name;
}

void
TraceSession::registerStats(StatsRegistry &registry)
{
    registry.addGroup("trace", &selfStats_);
}

namespace {

const char *
phaseString(TraceEvent::Phase phase)
{
    switch (phase) {
      case TraceEvent::Phase::Complete:
        return "X";
      case TraceEvent::Phase::Instant:
        return "i";
      case TraceEvent::Phase::FlowStart:
        return "s";
      case TraceEvent::Phase::FlowStep:
        return "t";
      case TraceEvent::Phase::FlowEnd:
        return "f";
    }
    return "X";
}

} // namespace

void
TraceSession::write(std::ostream &os) const
{
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("traceEvents").beginArray();

    // Metadata events first: they name the tracks in the viewer.
    for (const auto &[pid, name] : processNames_) {
        w.beginObject();
        w.field("name", "process_name");
        w.field("ph", "M");
        w.field("pid", pid);
        w.field("tid", 0);
        w.key("args").beginObject().field("name", name).endObject();
        w.endObject();
    }
    for (const auto &[key, name] : threadNames_) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", key.first);
        w.field("tid", key.second);
        w.key("args").beginObject().field("name", name).endObject();
        w.endObject();
    }

    // Serialise in timestamp order so every track reads monotonically.
    // Layered recorders emit enclosing spans after their children (the
    // duration is only known at the end), so recording order is not
    // time order; the stable sort keeps nesting ties deterministic.
    std::vector<std::size_t> order(events_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return events_[a].tsUs < events_[b].tsUs;
                     });

    for (const std::size_t i : order) {
        const TraceEvent &e = events_[i];
        w.beginObject();
        w.field("name", e.name);
        if (!e.cat.empty())
            w.field("cat", e.cat);
        w.field("ph", phaseString(e.phase));
        w.field("pid", e.pid);
        w.field("tid", e.tid);
        w.field("ts", e.tsUs);
        switch (e.phase) {
          case TraceEvent::Phase::Complete:
            w.field("dur", e.durUs);
            break;
          case TraceEvent::Phase::Instant:
            w.field("s", "t"); // thread-scoped instant
            break;
          case TraceEvent::Phase::FlowStart:
          case TraceEvent::Phase::FlowStep:
            w.field("id", e.flowId);
            break;
          case TraceEvent::Phase::FlowEnd:
            w.field("id", e.flowId);
            w.field("bp", "e"); // bind to the enclosing slice
            break;
        }
        if (!e.args.empty()) {
            w.key("args").beginObject();
            for (const auto &[k, v] : e.args)
                w.field(k, v);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.field("displayTimeUnit", "ns");
    w.field("droppedEvents", dropped_);
    w.endObject();
    os << "\n";
}

bool
TraceSession::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open trace output '", path, "'");
        return false;
    }
    if (dropped_ > 0) {
        PIMSIM_WARN("trace '", path, "' is truncated: ", dropped_,
                    " events dropped past the ", maxEvents_,
                    "-event cap");
    }
    write(os);
    return static_cast<bool>(os);
}

} // namespace pimsim
