/**
 * @file
 * Windowed SLO monitoring and metrics timeseries.
 *
 * End-of-run aggregates (StatsRegistry) answer "how did the run go";
 * they cannot answer "when did it go bad". This header adds the time
 * dimension:
 *
 *  - MetricsTimeseries snapshots registered counters and histograms
 *    into fixed simulated-time windows: per-window counter rates and
 *    per-window p50/p95/p99 computed from bucket-count deltas, so a
 *    latency regression is visible *as it happens*, not smeared over
 *    the whole run.
 *
 *  - SloMonitor consumes per-request terminal observations
 *    (SloObservation: timestamp + good/bad) from the engines and
 *    computes multi-window error-budget burn rates in the Google SRE
 *    style: burn = badFraction / (1 - target), alert rules pair a long
 *    window (sustained burn) with a short window (still happening),
 *    and fire/resolve transitions are recorded — and emitted as
 *    instants on the pid-7 "slo" trace track so alerts line up with
 *    the device/serving/cluster/llm timelines in Perfetto.
 *
 * Everything runs on simulated time and observed data only, so the
 * monitor is replay-stable like the rest of the stack.
 */

#ifndef PIMSIM_COMMON_SLO_H
#define PIMSIM_COMMON_SLO_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace pimsim {

class JsonWriter;
class TraceSession;

/** One request's terminal fate, as fed to the SloMonitor. */
struct SloObservation
{
    double tsNs = 0.0; ///< simulated time of the terminal event
    bool good = true;  ///< met its deadline/SLO and did not error
};

/**
 * One burn-rate alert rule: fire when the error-budget burn rate over
 * the last `longWindows` windows AND over the last `shortWindows`
 * windows both reach `burnThreshold`. The long window makes the alert
 * meaningful (sustained burn), the short window makes it resolve
 * quickly once the episode ends.
 */
struct SloAlertRule
{
    std::string name = "page";
    double burnThreshold = 10.0;
    unsigned longWindows = 3;
    unsigned shortWindows = 1;
};

struct SloMonitorConfig
{
    double target = 0.99;  ///< SLO target (fraction of good requests)
    double windowNs = 1e6; ///< evaluation window, simulated ns
    /** Alert rules; defaults to a fast "page" + slow "ticket" pair. */
    std::vector<SloAlertRule> rules;
};

/** Multi-window, multi-burn-rate SLO alerting over simulated time. */
class SloMonitor
{
  public:
    explicit SloMonitor(const SloMonitorConfig &config);

    void observe(double ts_ns, bool good);
    void observe(const SloObservation &o) { observe(o.tsNs, o.good); }
    void feed(const std::vector<SloObservation> &observations);

    /**
     * Evaluate every window up to and including the one containing
     * `horizon_ns` and record alert transitions. Call once after the
     * run (idempotent: re-evaluates from scratch).
     */
    void finish(double horizon_ns);

    struct AlertTransition
    {
        std::string rule;
        double tsNs = 0.0; ///< window end at which the state flipped
        bool firing = false;
        double longBurn = 0.0;
        double shortBurn = 0.0;
    };

    const std::vector<AlertTransition> &transitions() const
    {
        return transitions_;
    }

    /** Was any rule firing at any instant of [start_ns, end_ns)? */
    bool firingBetween(double start_ns, double end_ns) const;
    /** Was `rule` firing at any instant of [start_ns, end_ns)? */
    bool firingBetween(const std::string &rule, double start_ns,
                       double end_ns) const;

    /** Burn rate over the last `windows` windows ending at `window`. */
    double burnRate(std::size_t window, unsigned windows) const;

    std::uint64_t totalGood() const { return totalGood_; }
    std::uint64_t totalBad() const { return totalBad_; }
    std::size_t numWindows() const { return windows_.size(); }
    const SloMonitorConfig &config() const { return config_; }

    /**
     * Emit alert fire/resolve instants on the pid-7 "slo" track, one
     * tid per rule, with burn rates as args. Call after finish().
     */
    void emitTrace(TraceSession &session) const;

    /** Emit {"target": ..., "rules": [...]} into an open value slot. */
    void writeJson(JsonWriter &w) const;

  private:
    struct Window
    {
        std::uint64_t good = 0;
        std::uint64_t bad = 0;
    };
    struct FiringInterval
    {
        std::string rule;
        double startNs = 0.0;
        double endNs = 0.0; ///< horizon end if still firing at finish()
    };

    SloMonitorConfig config_;
    std::vector<Window> windows_;
    std::vector<AlertTransition> transitions_;
    std::vector<FiringInterval> intervals_;
    std::uint64_t totalGood_ = 0;
    std::uint64_t totalBad_ = 0;
    double horizonNs_ = 0.0;
};

/**
 * Snapshots registered counters / histograms into fixed simulated-time
 * windows. Sources are non-owning pointers and are read at window
 * boundaries via advanceTo(); counters report per-window rates (delta
 * per second), histograms report per-window count and p50/p95/p99
 * derived from bucket-count deltas.
 */
class MetricsTimeseries
{
  public:
    explicit MetricsTimeseries(double window_ns);

    void trackCounter(const std::string &label, const StatGroup *group,
                      const std::string &stat);
    void trackHistogram(const std::string &label, const Histogram *hist);

    /**
     * Close every window whose end time is <= ts_ns. The sources are
     * read once per call, so if the caller lets simulated time jump
     * several windows between calls, the whole delta lands in the
     * first window closed (call at least once per window for exact
     * attribution).
     */
    void advanceTo(double ts_ns);

    /** Close the final (possibly partial) window at `ts_ns`. */
    void finish(double ts_ns);

    std::size_t numWindows() const { return numWindows_; }
    double windowNs() const { return windowNs_; }

    /** Per-window rate series for a tracked counter (empty if unknown). */
    const std::vector<double> &counterRates(const std::string &label) const;

    /** Per-window p-th percentile series for a tracked histogram. */
    std::vector<double> histogramPercentiles(const std::string &label,
                                             double p) const;

    /** Emit the whole timeseries into an open value slot. */
    void writeJson(JsonWriter &w) const;

    /** Standalone JSON document; false (and a warning) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct CounterTrack
    {
        std::string label;
        const StatGroup *group = nullptr;
        std::string stat;
        std::uint64_t prev = 0;
        std::vector<double> rates;
    };
    struct HistogramTrack
    {
        std::string label;
        const Histogram *hist = nullptr;
        std::vector<std::uint64_t> prevBuckets;
        std::uint64_t prevOverflow = 0;
        std::uint64_t prevCount = 0;
        std::vector<std::uint64_t> counts;
        /** Per-window delta-distribution percentiles. */
        std::vector<double> p50, p95, p99;
    };

    void closeWindow(double span_ns);

    double windowNs_;
    double nextWindowEndNs_;
    std::size_t numWindows_ = 0;
    bool finished_ = false;
    std::vector<CounterTrack> counters_;
    std::vector<HistogramTrack> histograms_;
};

} // namespace pimsim

#endif // PIMSIM_COMMON_SLO_H
