/**
 * @file
 * Software bfloat16 arithmetic.
 *
 * Table I of the paper compares BFLOAT16 MAC units against FP16/INT units;
 * Section III-C discusses why FP16 was chosen for the product. We provide a
 * BF16 datapath so the trade-off can be exercised in simulation (DSE) and
 * so the Table I harness can validate numerics of both formats.
 */

#ifndef PIMSIM_COMMON_BF16_H
#define PIMSIM_COMMON_BF16_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace pimsim {

/** Value type wrapping a bfloat16 bit pattern (top 16 bits of binary32). */
class Bf16
{
  public:
    constexpr Bf16() : bits_(0) {}

    static constexpr Bf16 fromBits(std::uint16_t bits)
    {
        Bf16 b;
        b.bits_ = bits;
        return b;
    }

    /** Convert from float with round-to-nearest-even. */
    explicit Bf16(float value);

    /** Widen to float (exact: append 16 zero bits). */
    float toFloat() const;

    constexpr std::uint16_t bits() const { return bits_; }
    constexpr bool signBit() const { return (bits_ >> 15) != 0; }

    bool isInf() const { return (bits_ & 0x7fffu) == 0x7f80u; }
    bool isNan() const
    {
        return (bits_ & 0x7f80u) == 0x7f80u && (bits_ & 0x7fu) != 0;
    }

    constexpr bool operator==(const Bf16 &o) const { return bits_ == o.bits_; }
    constexpr bool operator!=(const Bf16 &o) const { return bits_ != o.bits_; }

  private:
    std::uint16_t bits_;
};

/** BF16 addition: round(a + b) with RNE. */
Bf16 bf16Add(Bf16 a, Bf16 b);
/** BF16 multiplication: round(a * b) with RNE. */
Bf16 bf16Mul(Bf16 a, Bf16 b);
/** BF16 non-fused multiply-accumulate. */
Bf16 bf16Mac(Bf16 a, Bf16 b, Bf16 c);

/** Round a binary32 value to bfloat16 bits (RNE, NaN preserved quiet). */
std::uint16_t floatToBf16Bits(float value);
/** Widen bfloat16 bits to float. */
float bf16BitsToFloat(std::uint16_t bits);

/**
 * Batch conversion kernels (see fp16.h): bit-identical to applying the
 * scalar conversions per element, used by the PIM unit's convert-once
 * SIMD row passes.
 */
void bf16ToFloatN(const std::uint16_t *in, float *out, std::size_t n);
void floatToBf16N(const float *in, std::uint16_t *out, std::size_t n);
/** Round `n` floats to bfloat16 precision in place. */
void bf16RoundFloatN(float *vals, std::size_t n);

std::ostream &operator<<(std::ostream &os, Bf16 b);

} // namespace pimsim

#endif // PIMSIM_COMMON_BF16_H
