/**
 * @file
 * Bit-field helpers used by the PIM instruction encoder/decoder and the
 * DRAM address mapper.
 */

#ifndef PIMSIM_COMMON_BITS_H
#define PIMSIM_COMMON_BITS_H

#include <cstdint>

#include "common/logging.h"

namespace pimsim {

/** Mask with the low n bits set (n in [0,64]). */
constexpr std::uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+width) of value. */
constexpr std::uint64_t
extractBits(std::uint64_t value, unsigned lo, unsigned width)
{
    return (value >> lo) & maskBits(width);
}

/** Return value with bits [lo, lo+width) replaced by field. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned lo, unsigned width,
           std::uint64_t field)
{
    const std::uint64_t m = maskBits(width) << lo;
    return (value & ~m) | ((field << lo) & m);
}

/** True iff value is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** log2 of a power of two (asserts on non-powers). */
inline unsigned
exactLog2(std::uint64_t value)
{
    PIMSIM_ASSERT(isPowerOfTwo(value), "exactLog2 of non-power-of-two ",
                  value);
    return floorLog2(value);
}

/** Round value up to the next multiple of a power-of-two alignment. */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace pimsim

#endif // PIMSIM_COMMON_BITS_H
