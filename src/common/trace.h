/**
 * @file
 * Chrome trace-event timeline recording.
 *
 * TraceSession collects duration ("X"), instant ("i") and flow
 * ("s"/"t"/"f") events on (pid, tid) tracks and serialises them in the
 * Chrome trace-event JSON format, loadable in chrome://tracing and
 * https://ui.perfetto.dev. Recording is opt-in: components hold a
 * TraceSession pointer that is nullptr by default, so the simulator
 * pays nothing when tracing is off.
 *
 * Track convention (kept stable so traces from different tools line up):
 *   pid 1 "device"   — one tid per pseudo channel (DRAM command spans)
 *   pid 2 "runtime"  — tid 0: application layers, tid 1: PIM BLAS
 *                      kernels
 *   pid 3 "serving"  — one tid per shard (batch occupancy spans)
 *   pid 4 "resilience" — one tid per shard (circuit-breaker open /
 *                      half-open spans, batch-fault instants)
 *   pid 5 "cluster"  — one tid per host (health-state spans, hedge /
 *                      failover / probe instants)
 *   pid 6 "llm"      — tid 0: decode iterations (one span per
 *                      iteration, batch-size args), tid 1: KV-cache
 *                      occupancy spans between iteration boundaries,
 *                      tid 2: sampled per-request span trees
 *   pid 7 "slo"      — SLO monitor burn-rate alert fire/resolve
 *                      instants (one tid per alert rule)
 *   pid 8 "sdc"      — one tid per channel (unit health-state spans,
 *                      ABFT detect / confirm / quarantine / re-admit
 *                      instants)
 *
 * Flow events (flowStart/flowStep/flowEnd) draw arrows between spans on
 * different tracks — e.g. a cluster failover links the timed-out RPC on
 * the dead host to its retry on the survivor. Events sharing a flow id
 * form one chain; RequestTracer mints ids from a session-unique counter.
 */

#ifndef PIMSIM_COMMON_TRACE_H
#define PIMSIM_COMMON_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace pimsim {

class StatsRegistry;

/** Stable pids for the standard tracks (see file comment). */
inline constexpr int kTracePidDevice = 1;
inline constexpr int kTracePidRuntime = 2;
inline constexpr int kTracePidServing = 3;
inline constexpr int kTracePidResilience = 4;
inline constexpr int kTracePidCluster = 5;
inline constexpr int kTracePidLlm = 6;
inline constexpr int kTracePidSlo = 7;
inline constexpr int kTracePidSdc = 8;

/** One recorded trace event. */
struct TraceEvent
{
    enum class Phase
    {
        Complete,  ///< "X": a span with a duration
        Instant,   ///< "i": a point event
        FlowStart, ///< "s": start of a flow arrow
        FlowStep,  ///< "t": intermediate flow point
        FlowEnd,   ///< "f": end of a flow arrow (binds to enclosing slice)
    };

    Phase phase = Phase::Complete;
    int pid = 0;
    int tid = 0;
    double tsUs = 0.0;  ///< start timestamp, microseconds
    double durUs = 0.0; ///< duration, microseconds (Complete only)
    std::uint64_t flowId = 0; ///< flow-chain id (flow phases only)
    std::string name;
    std::string cat;
    /** Optional flat string args rendered as the event's "args" object. */
    std::vector<std::pair<std::string, std::string>> args;
};

/** An opt-in recording of one simulation's timeline. */
class TraceSession
{
  public:
    /**
     * @param max_events  hard cap on recorded events; recording beyond
     *                    it increments droppedEvents() instead of
     *                    growing without bound.
     */
    explicit TraceSession(std::size_t max_events = 4'000'000)
        : maxEvents_(max_events)
    {
    }

    /** Record a duration span. Times are nanoseconds of simulated time. */
    void span(int pid, int tid, const std::string &name,
              const std::string &cat, double start_ns, double dur_ns);

    /** Record a duration span with one "args" annotation. */
    void span(int pid, int tid, const std::string &name,
              const std::string &cat, double start_ns, double dur_ns,
              const std::string &arg_key, const std::string &arg_value);

    /** Record a duration span with an arbitrary "args" object. */
    void span(int pid, int tid, const std::string &name,
              const std::string &cat, double start_ns, double dur_ns,
              std::vector<std::pair<std::string, std::string>> args);

    /** Record a point event. */
    void instant(int pid, int tid, const std::string &name,
                 const std::string &cat, double ts_ns);

    /** Record a point event with an arbitrary "args" object. */
    void instant(int pid, int tid, const std::string &name,
                 const std::string &cat, double ts_ns,
                 std::vector<std::pair<std::string, std::string>> args);

    /**
     * Record one point of a flow chain. Events sharing `flow_id` are
     * drawn as arrows between their enclosing slices; a chain needs a
     * FlowStart and a FlowEnd (FlowStep for intermediate hops). Use
     * nextFlowId() for a session-unique id.
     */
    void flowStart(int pid, int tid, const std::string &name,
                   const std::string &cat, double ts_ns,
                   std::uint64_t flow_id);
    void flowStep(int pid, int tid, const std::string &name,
                  const std::string &cat, double ts_ns,
                  std::uint64_t flow_id);
    void flowEnd(int pid, int tid, const std::string &name,
                 const std::string &cat, double ts_ns,
                 std::uint64_t flow_id);

    /** Mint a flow id unique within this session (starts at 1). */
    std::uint64_t nextFlowId() { return nextFlowId_++; }

    /** Name a process / thread track (emitted as metadata events). */
    void setProcessName(int pid, const std::string &name);
    void setThreadName(int pid, int tid, const std::string &name);

    const std::vector<TraceEvent> &events() const { return events_; }
    std::uint64_t droppedEvents() const { return dropped_; }
    std::uint64_t recordedEvents() const { return events_.size(); }
    std::size_t maxEvents() const { return maxEvents_; }

    /**
     * Append pre-built events (the parallel simulator's per-channel
     * staging buffers, merged at epoch barriers). Each event passes
     * through the same cap/self-stats accounting as direct recording;
     * `upstream_dropped` adds drops that already happened in a staging
     * session so droppedEvents() stays an exact total.
     */
    void append(std::vector<TraceEvent> &&events,
                std::uint64_t upstream_dropped = 0);

    /** Move out all recorded events, leaving the session empty
     *  (used to drain staging sessions at epoch barriers). */
    std::vector<TraceEvent> takeEvents();

    /** Return and reset the dropped-event count (staging drain). */
    std::uint64_t takeDropped();

    /**
     * Register the session's self-accounting counters (recorded /
     * dropped events) in `registry` under group "trace". The counters
     * are kept current as events are recorded, so a stats dump taken at
     * any point reflects them. Non-owning on both sides: this session
     * must outlive the registry's use of the group.
     */
    void registerStats(StatsRegistry &registry);

    /**
     * Serialise as a Chrome trace-event JSON object:
     * {"traceEvents": [...], "displayTimeUnit": "ns",
     *  "droppedEvents": N}. droppedEvents is always present so
     * truncation is visible (0 means the recording is complete).
     */
    void write(std::ostream &os) const;

    /** write() to a file; returns false (and warns) on I/O failure.
     *  Also warns when droppedEvents() is nonzero: the file is valid
     *  but truncated. */
    bool writeFile(const std::string &path) const;

  private:
    bool admit();
    void flow(TraceEvent::Phase phase, int pid, int tid,
              const std::string &name, const std::string &cat,
              double ts_ns, std::uint64_t flow_id);

    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::uint64_t nextFlowId_ = 1;
    std::vector<TraceEvent> events_;
    std::map<int, std::string> processNames_;
    std::map<std::pair<int, int>, std::string> threadNames_;
    StatGroup selfStats_{"trace"};
};

} // namespace pimsim

#endif // PIMSIM_COMMON_TRACE_H
