/**
 * @file
 * Chrome trace-event timeline recording.
 *
 * TraceSession collects duration ("X") and instant ("i") events on
 * (pid, tid) tracks and serialises them in the Chrome trace-event JSON
 * format, loadable in chrome://tracing and https://ui.perfetto.dev.
 * Recording is opt-in: components hold a TraceSession pointer that is
 * nullptr by default, so the simulator pays nothing when tracing is
 * off.
 *
 * Track convention (kept stable so traces from different tools line up):
 *   pid 1 "device"   — one tid per pseudo channel (DRAM command spans)
 *   pid 2 "runtime"  — tid 0: application layers, tid 1: PIM BLAS
 *                      kernels
 *   pid 3 "serving"  — one tid per shard (batch occupancy spans)
 *   pid 4 "resilience" — one tid per shard (circuit-breaker open /
 *                      half-open spans, batch-fault instants)
 *   pid 5 "cluster"  — one tid per host (health-state spans, hedge /
 *                      failover / probe instants)
 *   pid 6 "llm"      — tid 0: decode iterations (one span per
 *                      iteration, batch-size args), tid 1: KV-cache
 *                      occupancy spans between iteration boundaries
 */

#ifndef PIMSIM_COMMON_TRACE_H
#define PIMSIM_COMMON_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pimsim {

/** Stable pids for the standard tracks (see file comment). */
inline constexpr int kTracePidDevice = 1;
inline constexpr int kTracePidRuntime = 2;
inline constexpr int kTracePidServing = 3;
inline constexpr int kTracePidResilience = 4;
inline constexpr int kTracePidCluster = 5;
inline constexpr int kTracePidLlm = 6;

/** One recorded trace event. */
struct TraceEvent
{
    enum class Phase
    {
        Complete, ///< "X": a span with a duration
        Instant,  ///< "i": a point event
    };

    Phase phase = Phase::Complete;
    int pid = 0;
    int tid = 0;
    double tsUs = 0.0;  ///< start timestamp, microseconds
    double durUs = 0.0; ///< duration, microseconds (Complete only)
    std::string name;
    std::string cat;
    /** Optional flat string args rendered as the event's "args" object. */
    std::vector<std::pair<std::string, std::string>> args;
};

/** An opt-in recording of one simulation's timeline. */
class TraceSession
{
  public:
    /**
     * @param max_events  hard cap on recorded events; recording beyond
     *                    it increments droppedEvents() instead of
     *                    growing without bound.
     */
    explicit TraceSession(std::size_t max_events = 4'000'000)
        : maxEvents_(max_events)
    {
    }

    /** Record a duration span. Times are nanoseconds of simulated time. */
    void span(int pid, int tid, const std::string &name,
              const std::string &cat, double start_ns, double dur_ns);

    /** Record a duration span with one "args" annotation. */
    void span(int pid, int tid, const std::string &name,
              const std::string &cat, double start_ns, double dur_ns,
              const std::string &arg_key, const std::string &arg_value);

    /** Record a point event. */
    void instant(int pid, int tid, const std::string &name,
                 const std::string &cat, double ts_ns);

    /** Name a process / thread track (emitted as metadata events). */
    void setProcessName(int pid, const std::string &name);
    void setThreadName(int pid, int tid, const std::string &name);

    const std::vector<TraceEvent> &events() const { return events_; }
    std::uint64_t droppedEvents() const { return dropped_; }

    /**
     * Serialise as a Chrome trace-event JSON object:
     * {"traceEvents": [...], "displayTimeUnit": "ns"}.
     */
    void write(std::ostream &os) const;

    /** write() to a file; returns false (and warns) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    bool admit();

    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> events_;
    std::map<int, std::string> processNames_;
    std::map<std::pair<int, int>, std::string> threadNames_;
};

} // namespace pimsim

#endif // PIMSIM_COMMON_TRACE_H
