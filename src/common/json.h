/**
 * @file
 * Minimal JSON emission and validation.
 *
 * The observability layer (stats dumps, Chrome traces, bench result
 * files) emits machine-readable JSON; JsonWriter keeps that emission
 * structurally correct (balanced containers, comma placement, string
 * escaping) without pulling in an external dependency. validateJson()
 * is a strict syntax checker used by tests and smoke runs to prove an
 * emitted file parses.
 */

#ifndef PIMSIM_COMMON_JSON_H
#define PIMSIM_COMMON_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pimsim {

/** Escape a string for inclusion in a JSON document (adds no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer with automatic comma/indent management.
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("counters").beginObject();
 *   w.field("rd", 42);
 *   w.endObject();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {
    }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t{v}); }
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &value(bool v);

    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void prepareValue();
    void newline();

    struct Level
    {
        bool isObject = false;
        bool hasItems = false;
    };

    std::ostream &os_;
    bool pretty_;
    bool pendingKey_ = false;
    std::vector<Level> stack_;
};

/**
 * Strict JSON syntax check (RFC 8259 grammar; no extensions).
 * On failure returns false and, if `error` is non-null, a message with
 * the byte offset of the first violation.
 */
bool validateJson(const std::string &text, std::string *error = nullptr);

/** `unix_seconds` as an ISO-8601 UTC timestamp ("2026-01-31T08:15:00Z"). */
std::string iso8601Utc(std::int64_t unix_seconds);

/** The current wall clock as an ISO-8601 UTC timestamp. */
std::string iso8601UtcNow();

/**
 * Self-metrics of one bench run: how expensive the run itself was.
 * The first datapoint toward a BENCH_selfperf.json trajectory — the
 * benches measure themselves so a simulator slowdown shows up in the
 * same artifacts as a modeled-system regression.
 */
struct RunSelfMetrics
{
    double wallMs = 0.0;       ///< wall-clock time of the experiments
    double simulatedNs = 0.0;  ///< virtual time covered by the run
    std::uint64_t traceEventsRecorded = 0;
    std::uint64_t traceEventsDropped = 0;

    /** Simulated nanoseconds advanced per wall-clock second. */
    double simNsPerWallSec() const
    {
        return wallMs > 0.0 ? simulatedNs * 1e3 / wallMs : 0.0;
    }
};

/**
 * Emit the standard BENCH_*.json metadata preamble into an open object:
 * bench name, campaign seed, smoke flag, one-line config summary, and
 * the ISO-8601 generation timestamp. Every bench result writer uses
 * this so downstream tooling can rely on one schema. When `self` is
 * non-null a "self" object records the run's own cost (wall-clock ms,
 * simulated-ns-per-wall-second, trace events recorded/dropped).
 */
void writeBenchPreamble(JsonWriter &w, const std::string &bench,
                        std::uint64_t seed, bool smoke,
                        const std::string &config_summary,
                        const RunSelfMetrics *self = nullptr);

} // namespace pimsim

#endif // PIMSIM_COMMON_JSON_H
