#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ctime>

#include "common/logging.h"

namespace pimsim {

namespace {

/**
 * Length of the well-formed UTF-8 sequence starting at s[i], or 0 if
 * the bytes there are not valid UTF-8 (truncated sequence, stray
 * continuation byte, overlong encoding, surrogate, or > U+10FFFF).
 */
std::size_t
utf8SequenceLength(const std::string &s, std::size_t i)
{
    const auto byte = [&](std::size_t k) {
        return static_cast<unsigned char>(s[k]);
    };
    const auto cont = [&](std::size_t k) {
        return k < s.size() && (byte(k) & 0xC0) == 0x80;
    };
    const unsigned char b0 = byte(i);
    if (b0 >= 0xC2 && b0 <= 0xDF)
        return cont(i + 1) ? 2 : 0;
    if (b0 == 0xE0) // exclude overlong: next byte must be A0..BF
        return cont(i + 1) && byte(i + 1) >= 0xA0 && cont(i + 2) ? 3 : 0;
    if (b0 == 0xED) // exclude UTF-16 surrogates: next byte must be 80..9F
        return cont(i + 1) && byte(i + 1) <= 0x9F && cont(i + 2) ? 3 : 0;
    if ((b0 >= 0xE1 && b0 <= 0xEC) || b0 == 0xEE || b0 == 0xEF)
        return cont(i + 1) && cont(i + 2) ? 3 : 0;
    if (b0 == 0xF0) // exclude overlong: next byte must be 90..BF
        return cont(i + 1) && byte(i + 1) >= 0x90 && cont(i + 2) &&
                       cont(i + 3)
                   ? 4
                   : 0;
    if (b0 >= 0xF1 && b0 <= 0xF3)
        return cont(i + 1) && cont(i + 2) && cont(i + 3) ? 4 : 0;
    if (b0 == 0xF4) // exclude > U+10FFFF: next byte must be 80..8F
        return cont(i + 1) && byte(i + 1) <= 0x8F && cont(i + 2) &&
                       cont(i + 3)
                   ? 4
                   : 0;
    return 0; // 0x80..0xC1, 0xC0/0xC1 overlongs, 0xF5..0xFF
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size();) {
        const char c = s[i];
        switch (c) {
          case '"':
            out += "\\\"";
            ++i;
            continue;
          case '\\':
            out += "\\\\";
            ++i;
            continue;
          case '\b':
            out += "\\b";
            ++i;
            continue;
          case '\f':
            out += "\\f";
            ++i;
            continue;
          case '\n':
            out += "\\n";
            ++i;
            continue;
          case '\r':
            out += "\\r";
            ++i;
            continue;
          case '\t':
            out += "\\t";
            ++i;
            continue;
          default:
            break;
        }
        const unsigned char b = static_cast<unsigned char>(c);
        if (b < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(b));
            out += buf;
            ++i;
        } else if (b < 0x80) {
            out += c;
            ++i;
        } else {
            // Non-ASCII: pass well-formed UTF-8 through untouched so
            // the output stays readable; replace each malformed byte
            // with an escaped U+FFFD so the document is always valid
            // UTF-8 (strict parsers reject raw invalid bytes even
            // inside strings).
            const std::size_t len = utf8SequenceLength(s, i);
            if (len > 0) {
                out.append(s, i, len);
                i += len;
            } else {
                out += "\\ufffd";
                ++i;
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    if (!pretty_)
        return;
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepareValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!stack_.empty()) {
        PIMSIM_ASSERT(!stack_.back().isObject,
                      "JSON object member needs key()");
        if (stack_.back().hasItems)
            os_ << ",";
        stack_.back().hasItems = true;
        newline();
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    os_ << "{";
    stack_.push_back(Level{true, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PIMSIM_ASSERT(!stack_.empty() && stack_.back().isObject && !pendingKey_,
                  "unbalanced endObject");
    const bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        newline();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    os_ << "[";
    stack_.push_back(Level{false, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PIMSIM_ASSERT(!stack_.empty() && !stack_.back().isObject,
                  "unbalanced endArray");
    const bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        newline();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    PIMSIM_ASSERT(!stack_.empty() && stack_.back().isObject && !pendingKey_,
                  "key() outside an object");
    if (stack_.back().hasItems)
        os_ << ",";
    stack_.back().hasItems = true;
    newline();
    os_ << "\"" << jsonEscape(name) << (pretty_ ? "\": " : "\":");
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepareValue();
    os_ << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    // NaN/Inf are not representable in JSON; clamp to null.
    if (std::isnan(v) || std::isinf(v)) {
        os_ << "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
    return *this;
}

namespace {

/** Recursive-descent JSON syntax checker. */
class Validator
{
  public:
    explicit Validator(const std::string &text) : text_(text) {}

    bool
    run(std::string *error)
    {
        skipWs();
        if (!parseValue()) {
            fail(error);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            msg_ = "trailing content";
            fail(error);
            return false;
        }
        return true;
    }

  private:
    void
    fail(std::string *error)
    {
        if (error) {
            *error = msg_.empty() ? "malformed JSON" : msg_;
            *error += " at byte " + std::to_string(pos_);
        }
    }

    bool
    eof() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return text_[pos_];
    }

    void
    skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' ||
                          peek() == '\n' || peek() == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) {
            msg_ = "bad literal";
            return false;
        }
        pos_ += len;
        return true;
    }

    bool
    parseString()
    {
        if (eof() || peek() != '"') {
            msg_ = "expected string";
            return false;
        }
        ++pos_;
        while (!eof()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                msg_ = "unescaped control character in string";
                return false;
            }
            if (c == '\\') {
                ++pos_;
                if (eof()) {
                    msg_ = "truncated escape";
                    return false;
                }
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i]))) {
                            msg_ = "bad \\u escape";
                            return false;
                        }
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    msg_ = "bad escape character";
                    return false;
                }
            }
            ++pos_;
        }
        msg_ = "unterminated string";
        return false;
    }

    bool
    parseNumber()
    {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            msg_ = "bad number";
            return false;
        }
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                msg_ = "bad fraction";
                return false;
            }
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                msg_ = "bad exponent";
                return false;
            }
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    parseValue()
    {
        if (++depth_ > 512) {
            msg_ = "nesting too deep";
            return false;
        }
        skipWs();
        if (eof()) {
            msg_ = "unexpected end of input";
            return false;
        }
        bool ok = false;
        switch (peek()) {
          case '{':
            ok = parseObject();
            break;
          case '[':
            ok = parseArray();
            break;
          case '"':
            ok = parseString();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = parseNumber();
            break;
        }
        --depth_;
        return ok;
    }

    bool
    parseObject()
    {
        ++pos_; // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (eof() || peek() != ':') {
                msg_ = "expected ':'";
                return false;
            }
            ++pos_;
            if (!parseValue())
                return false;
            skipWs();
            if (eof()) {
                msg_ = "unterminated object";
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            msg_ = "expected ',' or '}'";
            return false;
        }
    }

    bool
    parseArray()
    {
        ++pos_; // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!parseValue())
                return false;
            skipWs();
            if (eof()) {
                msg_ = "unterminated array";
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            msg_ = "expected ',' or ']'";
            return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string msg_;
};

} // namespace

bool
validateJson(const std::string &text, std::string *error)
{
    return Validator(text).run(error);
}

std::string
iso8601Utc(std::int64_t unix_seconds)
{
    const std::time_t t = static_cast<std::time_t>(unix_seconds);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &t);
#else
    gmtime_r(&t, &tm);
#endif
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec);
    return buf;
}

std::string
iso8601UtcNow()
{
    return iso8601Utc(static_cast<std::int64_t>(std::time(nullptr)));
}

void
writeBenchPreamble(JsonWriter &w, const std::string &bench,
                   std::uint64_t seed, bool smoke,
                   const std::string &config_summary,
                   const RunSelfMetrics *self)
{
    w.field("bench", bench);
    w.field("seed", seed);
    w.field("smoke", smoke);
    w.field("config", config_summary);
    w.field("generated_at", iso8601UtcNow());
    if (self != nullptr) {
        w.key("self").beginObject();
        w.field("wall_ms", self->wallMs);
        w.field("simulated_ns", self->simulatedNs);
        w.field("sim_ns_per_wall_s", self->simNsPerWallSec());
        w.field("trace_events_recorded", self->traceEventsRecorded);
        w.field("trace_events_dropped", self->traceEventsDropped);
        w.endObject();
    }
}

} // namespace pimsim
